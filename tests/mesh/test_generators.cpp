#include "mesh/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

TEST(Generators, GradedLineEndpointsAndMonotonicity) {
    const auto x = mesh::graded_line(-2.0, 3.0, 10, 1.3);
    ASSERT_EQ(x.size(), 11u);
    EXPECT_DOUBLE_EQ(x.front(), -2.0);
    EXPECT_DOUBLE_EQ(x.back(), 3.0);
    for (std::size_t i = 1; i < x.size(); ++i) EXPECT_GT(x[i], x[i - 1]);
    // Growth ratio between consecutive intervals matches.
    for (std::size_t i = 2; i < x.size(); ++i)
        EXPECT_NEAR((x[i] - x[i - 1]) / (x[i - 1] - x[i - 2]), 1.3, 1e-9);
}

TEST(Generators, BluffBodyHasAllBoundaryTags) {
    const auto m = mesh::bluff_body_mesh();
    int inflow = 0, outflow = 0, side = 0, body = 0, untagged = 0;
    for (const auto& e : m.edges()) {
        if (!e.is_boundary()) continue;
        switch (e.tag) {
            case mesh::BoundaryTag::Inflow: ++inflow; break;
            case mesh::BoundaryTag::Outflow: ++outflow; break;
            case mesh::BoundaryTag::Side: ++side; break;
            case mesh::BoundaryTag::Body: ++body; break;
            default: ++untagged; break;
        }
    }
    EXPECT_GT(inflow, 0);
    EXPECT_GT(outflow, 0);
    EXPECT_GT(side, 0);
    EXPECT_GT(body, 0);
    EXPECT_EQ(untagged, 0) << "every boundary edge must carry a tag";
}

TEST(Generators, BluffBodyAreaExcludesHole) {
    mesh::BluffBodyParams p;
    const auto m = mesh::bluff_body_mesh(p);
    const double full = (p.x_max - p.x_min) * (p.y_max - p.y_min);
    const double hole = (2.0 * p.body_half) * (2.0 * p.body_half);
    EXPECT_NEAR(m.total_area(), full - hole, 1e-9);
}

TEST(Generators, BluffBodyBodyEdgesOnHoleBoundary) {
    mesh::BluffBodyParams p;
    const auto m = mesh::bluff_body_mesh(p);
    const double h = p.body_half;
    for (const auto& e : m.edges()) {
        if (e.tag != mesh::BoundaryTag::Body) continue;
        const auto& a = m.vertex(static_cast<std::size_t>(e.v0));
        const auto& b = m.vertex(static_cast<std::size_t>(e.v1));
        for (const auto* v : {&a, &b}) {
            EXPECT_LE(std::abs(v->x), h + 1e-9);
            EXPECT_LE(std::abs(v->y), h + 1e-9);
        }
    }
}

TEST(Generators, FlappingMeshRefinementScales) {
    const auto m1 = mesh::flapping_body_mesh(1);
    const auto m2 = mesh::flapping_body_mesh(2);
    EXPECT_GT(m2.num_elements(), 3 * m1.num_elements());
}

TEST(Generators, TensorQuadsMatchCoordinateLines) {
    const std::vector<double> xs = {0.0, 0.5, 2.0};
    const std::vector<double> ys = {-1.0, 0.0};
    const auto m = mesh::tensor_quads(xs, ys);
    EXPECT_EQ(m.num_elements(), 2u);
    EXPECT_NEAR(m.total_area(), 2.0, 1e-12);
}

} // namespace
