#include "mesh/mesh.hpp"

#include <gtest/gtest.h>

#include "mesh/generators.hpp"

namespace {

TEST(Mesh, RectangleQuadCounts) {
    const auto m = mesh::rectangle_quads(4, 3, 0.0, 4.0, 0.0, 3.0);
    EXPECT_EQ(m.num_elements(), 12u);
    EXPECT_EQ(m.num_vertices(), 20u);
    // Edges: horizontal 4*4 + vertical 5*3 = 31.
    EXPECT_EQ(m.num_edges(), 31u);
    EXPECT_NEAR(m.total_area(), 12.0, 1e-12);
}

TEST(Mesh, InteriorEdgesHaveTwoElements) {
    const auto m = mesh::rectangle_quads(3, 3, 0.0, 1.0, 0.0, 1.0);
    std::size_t boundary = 0, interior = 0;
    for (const auto& e : m.edges()) {
        if (e.is_boundary()) {
            ++boundary;
            EXPECT_LT(e.elem[1], 0);
        } else {
            ++interior;
            EXPECT_GE(e.elem[1], 0);
            EXPECT_NE(e.elem[0], e.elem[1]);
        }
    }
    EXPECT_EQ(boundary, 12u);
    EXPECT_EQ(interior, 12u);
}

TEST(Mesh, ElementEdgeBackReferencesAreConsistent) {
    const auto m = mesh::rectangle_tris(3, 2, 0.0, 1.0, 0.0, 1.0);
    for (std::size_t e = 0; e < m.num_elements(); ++e) {
        const int ne = m.element(e).num_vertices();
        for (int le = 0; le < ne; ++le) {
            const int id = m.element_edge(e, static_cast<std::size_t>(le));
            ASSERT_GE(id, 0);
            const auto& edge = m.edge(static_cast<std::size_t>(id));
            const bool found = (edge.elem[0] == static_cast<int>(e) && edge.local[0] == le) ||
                               (edge.elem[1] == static_cast<int>(e) && edge.local[1] == le);
            EXPECT_TRUE(found);
        }
    }
}

TEST(Mesh, AllElementsPositiveArea) {
    for (const auto& m :
         {mesh::rectangle_quads(5, 5, -1.0, 1.0, -1.0, 1.0),
          mesh::rectangle_tris(4, 4, 0.0, 2.0, 0.0, 1.0), mesh::bluff_body_mesh()}) {
        for (std::size_t e = 0; e < m.num_elements(); ++e)
            EXPECT_GT(m.element_area(e), 0.0) << "element " << e;
    }
}

TEST(Mesh, DualGraphSymmetry) {
    const auto m = mesh::rectangle_quads(4, 4, 0.0, 1.0, 0.0, 1.0);
    std::vector<int> xadj, adj;
    m.dual_graph(xadj, adj);
    ASSERT_EQ(xadj.size(), m.num_elements() + 1);
    for (std::size_t v = 0; v < m.num_elements(); ++v) {
        for (int k = xadj[v]; k < xadj[v + 1]; ++k) {
            const int u = adj[static_cast<std::size_t>(k)];
            bool back = false;
            for (int k2 = xadj[static_cast<std::size_t>(u)];
                 k2 < xadj[static_cast<std::size_t>(u) + 1]; ++k2)
                back |= adj[static_cast<std::size_t>(k2)] == static_cast<int>(v);
            EXPECT_TRUE(back);
        }
    }
}

TEST(Mesh, VertexMutationPreservesTopology) {
    auto m = mesh::rectangle_quads(2, 2, 0.0, 1.0, 0.0, 1.0);
    const std::size_t ne = m.num_edges();
    m.set_vertex(4, {0.52, 0.47}); // centre vertex
    EXPECT_EQ(m.num_edges(), ne);
    EXPECT_NEAR(m.total_area(), 1.0, 1e-12); // interior move preserves total
}

} // namespace
