#include "blaslite/blas.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

namespace {

std::vector<double> random_vec(std::size_t n, unsigned seed) {
    std::mt19937 gen(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<double> v(n);
    for (auto& x : v) x = dist(gen);
    return v;
}

TEST(BlasLite, DcopyCopies) {
    const auto x = random_vec(133, 1);
    std::vector<double> y(133, 0.0);
    blaslite::dcopy(x, y);
    EXPECT_EQ(x, y);
}

TEST(BlasLite, DaxpyMatchesReference) {
    const auto x = random_vec(97, 2);
    auto y = random_vec(97, 3);
    const auto y0 = y;
    blaslite::daxpy(2.5, x, y);
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_NEAR(y[i], y0[i] + 2.5 * x[i], 1e-14);
}

TEST(BlasLite, DdotMatchesReference) {
    const auto x = random_vec(1001, 4);
    const auto y = random_vec(1001, 5);
    double ref = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) ref += x[i] * y[i];
    EXPECT_NEAR(blaslite::ddot(x, y), ref, 1e-10);
}

TEST(BlasLite, DdotHandlesShortTails) {
    for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u}) {
        const auto x = random_vec(n, 6);
        const auto y = random_vec(n, 7);
        double ref = 0.0;
        for (std::size_t i = 0; i < n; ++i) ref += x[i] * y[i];
        EXPECT_NEAR(blaslite::ddot(x, y), ref, 1e-12) << "n=" << n;
    }
}

TEST(BlasLite, DvmulAndDvvtvp) {
    const auto x = random_vec(64, 8);
    const auto y = random_vec(64, 9);
    std::vector<double> z(64);
    blaslite::dvmul(x, y, z);
    for (std::size_t i = 0; i < 64; ++i) EXPECT_DOUBLE_EQ(z[i], x[i] * y[i]);
    auto z2 = z;
    blaslite::dvvtvp(x, y, z2);
    for (std::size_t i = 0; i < 64; ++i) EXPECT_NEAR(z2[i], 2.0 * x[i] * y[i], 1e-14);
}

void reference_gemm(double alpha, const std::vector<double>& a, const std::vector<double>& b,
                    double beta, std::vector<double>& c, std::size_t m, std::size_t n,
                    std::size_t k) {
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double s = 0.0;
            for (std::size_t p = 0; p < k; ++p) s += a[i * k + p] * b[p * n + j];
            c[i * n + j] = alpha * s + beta * c[i * n + j];
        }
    }
}

class GemmSizes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmSizes, MatchesReference) {
    const auto [m, n, k] = GetParam();
    const auto mu = static_cast<std::size_t>(m);
    const auto nu = static_cast<std::size_t>(n);
    const auto ku = static_cast<std::size_t>(k);
    const auto a = random_vec(mu * ku, 10);
    const auto b = random_vec(ku * nu, 11);
    auto c = random_vec(mu * nu, 12);
    auto ref = c;
    reference_gemm(1.3, a, b, 0.7, ref, mu, nu, ku);
    blaslite::dgemm(1.3, a.data(), ku, b.data(), nu, 0.7, c.data(), nu, mu, nu, ku);
    for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-11 * ku);
}

INSTANTIATE_TEST_SUITE_P(SmallAndBlocked, GemmSizes,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{2, 3, 4},
                                           std::tuple{5, 5, 5}, std::tuple{8, 16, 4},
                                           std::tuple{20, 20, 20}, std::tuple{64, 64, 64},
                                           std::tuple{65, 64, 63}, std::tuple{100, 37, 129},
                                           std::tuple{130, 130, 130}));

TEST(BlasLite, GemvNormalAndTranspose) {
    const std::size_t m = 17, n = 23;
    const auto a = random_vec(m * n, 13);
    const auto x = random_vec(n, 14);
    const auto xt = random_vec(m, 15);
    std::vector<double> y(m, 1.0), yt(n, 1.0);
    blaslite::dgemv(2.0, a.data(), n, m, n, x.data(), 0.5, y.data());
    blaslite::dgemv_t(2.0, a.data(), n, m, n, xt.data(), 0.5, yt.data());
    for (std::size_t i = 0; i < m; ++i) {
        double s = 0.0;
        for (std::size_t j = 0; j < n; ++j) s += a[i * n + j] * x[j];
        EXPECT_NEAR(y[i], 2.0 * s + 0.5, 1e-12);
    }
    for (std::size_t j = 0; j < n; ++j) {
        double s = 0.0;
        for (std::size_t i = 0; i < m; ++i) s += a[i * n + j] * xt[i];
        EXPECT_NEAR(yt[j], 2.0 * s + 0.5, 1e-12);
    }
}

TEST(BlasLiteCounters, DgemmChargesExpectedFlops) {
    blaslite::reset_thread_counts();
    const std::size_t n = 10;
    const auto a = random_vec(n * n, 16);
    const auto b = random_vec(n * n, 17);
    std::vector<double> c(n * n, 0.0);
    blaslite::CountScope scope;
    blaslite::dgemm_square(1.0, a.data(), b.data(), 0.0, c.data(), n);
    const auto d = scope.delta();
    EXPECT_EQ(d.flops, 2 * n * n * n + n * n);
    EXPECT_EQ(d.calls, 1u);
    EXPECT_GT(d.bytes(), 0u);
}

TEST(BlasLiteCounters, ScopesNest) {
    std::vector<double> x(100, 1.0), y(100, 2.0);
    blaslite::CountScope outer;
    blaslite::daxpy(1.0, x, y);
    {
        blaslite::CountScope inner;
        blaslite::daxpy(1.0, x, y);
        EXPECT_EQ(inner.delta().flops, 200u);
    }
    EXPECT_EQ(outer.delta().flops, 400u);
}

} // namespace
