#include "blaslite/blas.hpp"

#include <gtest/gtest.h>

#include <random>
#include <tuple>
#include <vector>

namespace {

std::vector<double> random_vec(std::size_t n, unsigned seed) {
    std::mt19937 gen(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<double> v(n);
    for (auto& x : v) x = dist(gen);
    return v;
}

// Plain triple-loop row-major reference with the same per-element
// accumulation order as the micro-kernel (ascending p), so comparisons can be
// bitwise where the test wants them to be.
void reference_gemm(double alpha, const double* a, std::size_t lda, const double* b,
                    std::size_t ldb, double beta, double* c, std::size_t ldc, std::size_t m,
                    std::size_t n, std::size_t k) {
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double s = 0.0;
            for (std::size_t p = 0; p < k; ++p) s += a[i * lda + p] * b[p * ldb + j];
            c[i * ldc + j] = alpha * s + beta * c[i * ldc + j];
        }
    }
}

// Sizes chosen to exercise both dispatch regimes of dgemm: the unblocked
// small path (n < 8 or tiny flop counts) and the packed micro-kernel path
// (wide n, k > 0), including ragged row tails (m % 4) and column tails
// (n % 8).
class BatchGemmSizes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BatchGemmSizes, DgemmMatchesReference) {
    const auto [mi, ni, ki] = GetParam();
    const auto m = static_cast<std::size_t>(mi);
    const auto n = static_cast<std::size_t>(ni);
    const auto k = static_cast<std::size_t>(ki);
    const auto a = random_vec(m * k, 11);
    const auto b = random_vec(k * n, 12);
    auto c = random_vec(m * n, 13);
    auto ref = c;
    reference_gemm(1.25, a.data(), k, b.data(), n, -0.5, ref.data(), n, m, n, k);
    blaslite::dgemm(1.25, a.data(), k, b.data(), n, -0.5, c.data(), n, m, n, k);
    EXPECT_LT(blaslite::max_abs_diff(c, ref), 1e-12 * static_cast<double>(k + 1))
        << "m=" << m << " n=" << n << " k=" << k;
}

TEST_P(BatchGemmSizes, DgemmCmMatchesTransposedReference) {
    const auto [mi, ni, ki] = GetParam();
    const auto m = static_cast<std::size_t>(mi);
    const auto n = static_cast<std::size_t>(ni);
    const auto k = static_cast<std::size_t>(ki);
    // Column-major A (m x k, lda=m) is the row-major k x m buffer transposed;
    // run the row-major reference on the swapped operands.
    const auto a = random_vec(m * k, 21);
    const auto b = random_vec(k * n, 22);
    auto c = random_vec(m * n, 23);
    auto ref = c;
    // ref (col-major m x n, ldc=m) viewed row-major is n x m: ref' = B'*A'.
    reference_gemm(2.0, b.data(), k, a.data(), m, 0.25, ref.data(), m, n, m, k);
    blaslite::dgemm_cm(2.0, a.data(), m, b.data(), k, 0.25, c.data(), m, m, n, k);
    EXPECT_LT(blaslite::max_abs_diff(c, ref), 1e-12 * static_cast<double>(k + 1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BatchGemmSizes,
                         ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 2),
                                           std::make_tuple(4, 8, 9), std::make_tuple(5, 7, 16),
                                           std::make_tuple(12, 20, 25),
                                           std::make_tuple(13, 33, 81),
                                           std::make_tuple(100, 64, 81),
                                           std::make_tuple(81, 256, 100),
                                           std::make_tuple(7, 129, 1),
                                           std::make_tuple(64, 6, 64)));

TEST(BatchGemm, BatchIsBitwiseEqualToPerItemCalls) {
    // The contract the golden-equivalence tests in tests/nektar rely on:
    // dgemm_batch_same_a(a, items...) produces bit-identical output to the
    // per-item dgemm_cm loop, for both the packed path (m >= 8) and the
    // small-path fallback (m < 8).
    for (const auto& [m, k, n, nitems] :
         {std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>{100, 81, 24, 5},
          {81, 100, 16, 3},
          {6, 9, 10, 4},   // m < 8: small path
          {32, 0, 7, 2},   // k == 0: pure beta scaling
          {40, 25, 0, 3}}) {
        const auto a = random_vec(m * k, 31);
        const auto bs = random_vec(k * n * nitems + 1, 32);
        auto c_batch = random_vec(m * n * nitems + 1, 33);
        auto c_loop = c_batch;

        std::vector<blaslite::GemmBatchItem> items(nitems);
        for (std::size_t i = 0; i < nitems; ++i)
            items[i] = {bs.data() + i * k * n, c_batch.data() + i * m * n};
        blaslite::dgemm_batch_same_a(1.5, a.data(), m, m, k, items, n, k, m, 0.5);

        for (std::size_t i = 0; i < nitems; ++i)
            blaslite::dgemm_cm(1.5, a.data(), m, bs.data() + i * k * n, k, 0.5,
                               c_loop.data() + i * m * n, m, m, n, k);
        for (std::size_t i = 0; i < c_batch.size(); ++i)
            ASSERT_EQ(c_batch[i], c_loop[i])
                << "i=" << i << " m=" << m << " k=" << k << " n=" << n;
    }
}

TEST(BatchGemm, DgemmChargesExactCounts) {
    const std::size_t n = 24;
    const auto a = random_vec(n * n, 41);
    const auto b = random_vec(n * n, 42);
    std::vector<double> c(n * n, 0.0);
    blaslite::CountScope scope;
    blaslite::dgemm_square(1.0, a.data(), b.data(), 0.0, c.data(), n);
    const auto d = scope.delta();
    EXPECT_EQ(d.flops, 2 * n * n * n + n * n);
    EXPECT_EQ(d.bytes_read, 3 * n * n * sizeof(double));
    EXPECT_EQ(d.bytes_written, n * n * sizeof(double));
    EXPECT_EQ(d.calls, 1u);
}

TEST(BatchGemm, BatchChargesSumOfPerItemCounts) {
    // The batch must charge exactly what the equivalent dgemm_cm loop would,
    // so the virtual-clock model cannot tell the execution strategies apart.
    const std::size_t m = 100, k = 81, n = 12, nitems = 7;
    const auto a = random_vec(m * k, 51);
    const auto bs = random_vec(k * n * nitems, 52);
    std::vector<double> c(m * n * nitems, 0.0);
    std::vector<blaslite::GemmBatchItem> items(nitems);
    for (std::size_t i = 0; i < nitems; ++i)
        items[i] = {bs.data() + i * k * n, c.data() + i * m * n};

    blaslite::CountScope batch_scope;
    blaslite::dgemm_batch_same_a(1.0, a.data(), m, m, k, items, n, k, m, 0.0);
    const auto batch = batch_scope.delta();

    blaslite::CountScope loop_scope;
    for (std::size_t i = 0; i < nitems; ++i)
        blaslite::dgemm_cm(1.0, a.data(), m, bs.data() + i * k * n, k, 0.0,
                           c.data() + i * m * n, m, m, n, k);
    const auto loop = loop_scope.delta();

    EXPECT_EQ(batch.flops, loop.flops);
    EXPECT_EQ(batch.bytes_read, loop.bytes_read);
    EXPECT_EQ(batch.bytes_written, loop.bytes_written);
    EXPECT_EQ(batch.calls, loop.calls);
    EXPECT_EQ(batch.calls, nitems);
}

TEST(BatchGemm, EmptyBatchIsANoOp) {
    blaslite::CountScope scope;
    blaslite::dgemm_batch_same_a(1.0, nullptr, 8, 8, 8, {}, 8, 8, 8, 0.0);
    EXPECT_EQ(scope.delta().calls, 0u);
}

} // namespace
