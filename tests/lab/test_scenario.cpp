#include <gtest/gtest.h>

#include "lab/fault_profiles.hpp"
#include "lab/json.hpp"
#include "lab/scenario.hpp"

// The canonicalisation contract: identical runs serialize to identical
// bytes (and therefore identical store keys) no matter how the request was
// written, and anything outside the schema is rejected loudly.
namespace {

using lab::ParseError;
using lab::ScenarioRequest;

TEST(ScenarioCanonical, FieldOrderDoesNotChangeTheFingerprint) {
    const auto a = ScenarioRequest::parse(
        R"({"machine":"pentium","net":"myrinet","ranks":16,"solver":"fourier",
            "fidelity":"model","fault":"myrinet","seed":7,"smoke":true,
            "dof_per_rank":250000,"transpose":"pencil"})");
    const auto b = ScenarioRequest::parse(
        R"({"transpose":"pencil","dof_per_rank":250000,"smoke":true,"seed":7,
            "fault":"myrinet","fidelity":"model","solver":"fourier","ranks":16,
            "net":"myrinet","machine":"pentium"})");
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.canonical_json(), b.canonical_json());
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    EXPECT_EQ(a.store_key(), b.store_key());
}

TEST(ScenarioCanonical, ParseThenEmitIsANormalisingRoundTrip) {
    ScenarioRequest req;
    req.bench = "table2_nektar_f";
    req.machine = "pentium";
    req.ranks = 8;
    req.seed = 1999;
    req.dof_per_rank = 461000.0;
    const std::string canon = req.canonical_json();
    EXPECT_EQ(ScenarioRequest::parse(canon).canonical_json(), canon);
    // Keys appear in sorted order, all fields present even when defaulted.
    const char* keys[] = {"\"backend\"", "\"bench\"", "\"dof_per_rank\"", "\"fault\"",
                          "\"fidelity\"", "\"machine\"", "\"net\"", "\"ranks\"",
                          "\"schema\"", "\"seed\"", "\"smoke\"", "\"solver\"",
                          "\"steps\"", "\"transpose\""};
    std::size_t last = 0;
    for (const char* k : keys) {
        const std::size_t at = canon.find(k);
        ASSERT_NE(at, std::string::npos) << k;
        EXPECT_GT(at, last) << k << " out of sorted order";
        last = at;
    }
}

TEST(ScenarioCanonical, DistinctRequestsGetDistinctKeys) {
    ScenarioRequest a, b;
    a.ranks = 8;
    b.ranks = 16;
    EXPECT_NE(a.store_key(), b.store_key());
    b = a;
    EXPECT_EQ(a.store_key(), b.store_key());
    b.seed = 1;
    EXPECT_NE(a.store_key(), b.store_key());
}

TEST(ScenarioParse, EmptyObjectYieldsDefaults) {
    const auto req = ScenarioRequest::parse("{}");
    EXPECT_EQ(req, ScenarioRequest{});
    EXPECT_EQ(req.fidelity, "model");
}

TEST(ScenarioParse, UnknownFieldIsRejectedByName) {
    try {
        (void)ScenarioRequest::parse(R"({"ranks":4,"nprocs":4})");
        FAIL() << "unknown field accepted";
    } catch (const ParseError& e) {
        EXPECT_NE(std::string(e.what()).find("nprocs"), std::string::npos);
    }
}

TEST(ScenarioParse, RejectsWrongTypesAndBadEnums) {
    EXPECT_THROW((void)ScenarioRequest::parse(R"({"ranks":"eight"})"), ParseError);
    EXPECT_THROW((void)ScenarioRequest::parse(R"({"ranks":-2})"), ParseError);
    EXPECT_THROW((void)ScenarioRequest::parse(R"({"ranks":2.5})"), ParseError);
    EXPECT_THROW((void)ScenarioRequest::parse(R"({"solver":"spectral"})"), ParseError);
    EXPECT_THROW((void)ScenarioRequest::parse(R"({"fidelity":"exact"})"), ParseError);
    EXPECT_THROW((void)ScenarioRequest::parse(R"({"transpose":"diagonal"})"), ParseError);
    EXPECT_THROW((void)ScenarioRequest::parse(R"({"schema":99})"), ParseError);
    EXPECT_THROW((void)ScenarioRequest::parse("[1,2]"), ParseError);
    EXPECT_THROW((void)ScenarioRequest::parse(R"({"ranks":1,"ranks":2})"), ParseError);
}

TEST(ScenarioSweep, SelectorsAndRankSweepMirrorTheOldCliSemantics) {
    ScenarioRequest req;
    EXPECT_TRUE(req.selects_machine("pentium-ii-450"));
    req.machine = "pentium";
    EXPECT_TRUE(req.selects_machine("pentium-ii-450"));
    EXPECT_FALSE(req.selects_machine("t3e-900"));
    EXPECT_EQ(req.rank_sweep({2, 4, 8}), (std::vector<int>{2, 4, 8}));
    req.ranks = 6;
    EXPECT_EQ(req.rank_sweep({2, 4, 8}), (std::vector<int>{6}));
}

TEST(ScenarioFaults, RosterProfilesResolveAndRequestSeedWins) {
    for (const auto& profile : lab::fault_roster())
        EXPECT_NO_THROW((void)lab::fault_by_name(profile.name)) << profile.name;
    const auto seeded = lab::fault_by_name("commodity-eth", 42);
    EXPECT_EQ(seeded.seed, 42u);
    EXPECT_THROW((void)lab::fault_by_name("token-ring"), ParseError);
}

} // namespace
