#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "lab/service.hpp"
#include "lab/wire.hpp"

// The framed unix-socket protocol, exercised over socketpair() so no
// filesystem socket paths are involved.
namespace {

struct SocketPair {
    int a = -1, b = -1;
    SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
    ~SocketPair() {
        if (a >= 0) ::close(a);
        if (b >= 0) ::close(b);
    }
    int fds[2] = {-1, -1};
    int client() { return a = fds[0]; }
    int server() { return b = fds[1]; }
};

TEST(Wire, FrameRoundTripIncludingEmptyAndBinaryPayloads) {
    SocketPair sp;
    const std::string payloads[] = {std::string(""), std::string("{\"ranks\":4}"),
                                    std::string("\x00\x01\xff payload", 11),
                                    std::string(1 << 16, 'x')};
    for (const std::string& payload : payloads) {
        ASSERT_TRUE(lab::wire::send_frame(sp.client(), payload));
        const auto got = lab::wire::recv_frame(sp.server());
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, payload);
    }
}

TEST(Wire, CleanEofBetweenFramesIsNullopt) {
    SocketPair sp;
    ::close(sp.client());
    sp.a = -1;
    EXPECT_FALSE(lab::wire::recv_frame(sp.server()).has_value());
}

TEST(Wire, BadMagicAndTruncationAreProtocolErrors) {
    {
        SocketPair sp;
        ASSERT_EQ(::write(sp.client(), "HTTP/1.1 200 OK\r\n", 17), 17);
        EXPECT_THROW((void)lab::wire::recv_frame(sp.server()), std::runtime_error);
    }
    {
        SocketPair sp;
        ASSERT_EQ(::write(sp.client(), "RPL", 3), 3); // header cut short
        ::close(sp.client());
        sp.a = -1;
        EXPECT_THROW((void)lab::wire::recv_frame(sp.server()), std::runtime_error);
    }
    {
        SocketPair sp;
        // Valid header promising 100 bytes, connection dies after 4.
        char header[8] = {'R', 'P', 'L', '1', 100, 0, 0, 0};
        ASSERT_EQ(::write(sp.client(), header, 8), 8);
        ASSERT_EQ(::write(sp.client(), "body", 4), 4);
        ::close(sp.client());
        sp.a = -1;
        EXPECT_THROW((void)lab::wire::recv_frame(sp.server()), std::runtime_error);
    }
}

TEST(Wire, OversizedFrameIsRejectedBeforeAllocation) {
    SocketPair sp;
    char header[8];
    std::memcpy(header, lab::wire::kMagic, 4);
    const std::uint32_t n = lab::wire::kMaxFrameBytes + 1;
    header[4] = static_cast<char>(n & 0xff);
    header[5] = static_cast<char>((n >> 8) & 0xff);
    header[6] = static_cast<char>((n >> 16) & 0xff);
    header[7] = static_cast<char>((n >> 24) & 0xff);
    ASSERT_EQ(::write(sp.client(), header, 8), 8);
    EXPECT_THROW((void)lab::wire::recv_frame(sp.server()), std::runtime_error);
}

TEST(Wire, ServiceConversationOverASocket) {
    SocketPair sp;
    lab::Service service;
    std::thread server([&] { lab::wire::handle_connection(sp.server(), service); });

    lab::ScenarioRequest req;
    req.machine = "RoadRunner";
    req.net = "RoadRunner myr.";
    req.ranks = 4;
    req.dof_per_rank = 50000.0;

    const std::string cold = lab::wire::request(sp.client(), req.canonical_json());
    EXPECT_NE(cold.find("\"schema_version\":2"), std::string::npos);
    EXPECT_NE(cold.find("\"cache\":{\"hit\":false"), std::string::npos);

    const std::string warm = lab::wire::request(sp.client(), req.canonical_json());
    EXPECT_NE(warm.find("\"cache\":{\"hit\":true"), std::string::npos);
    EXPECT_EQ(lab::mask_cache_hit(cold), lab::mask_cache_hit(warm));

    // Malformed requests come back as error frames, not dropped connections.
    const std::string err = lab::wire::request(sp.client(), "{\"machine\":");
    EXPECT_NE(err.find("\"error\""), std::string::npos);

    ::close(sp.client());
    sp.a = -1;
    server.join();
}

} // namespace
