#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "lab/store.hpp"

// The RunReport store: memory-only and persistent round trips, first-write-
// wins semantics, and re-opening a directory serves the same bytes.
namespace {

namespace fs = std::filesystem;

class StoreTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = (fs::temp_directory_path() /
                ("lab_store_test_" +
                 std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
                 ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                   .string();
        fs::remove_all(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }
    std::string dir_;
};

TEST_F(StoreTest, MemoryOnlyRoundTrip) {
    lab::RunReportStore store; // dir == "" -> nothing touches disk
    EXPECT_FALSE(store.get("0123456789abcdef").has_value());
    store.put("0123456789abcdef", "{\"x\":1}\n");
    ASSERT_TRUE(store.contains("0123456789abcdef"));
    EXPECT_EQ(*store.get("0123456789abcdef"), "{\"x\":1}\n");
    EXPECT_EQ(store.size(), 1u);
    EXPECT_TRUE(store.dir().empty());
}

TEST_F(StoreTest, PersistentEntriesSurviveReopen) {
    const std::string bytes = "{\"schema_version\":2}\n";
    {
        lab::RunReportStore store(dir_);
        store.put("00000000000000aa", bytes);
        store.put("00000000000000bb", "{\"other\":true}\n");
    }
    EXPECT_TRUE(fs::exists(fs::path(dir_) / "00000000000000aa.json"));

    lab::RunReportStore reopened(dir_);
    EXPECT_EQ(reopened.size(), 2u);
    EXPECT_EQ(*reopened.get("00000000000000aa"), bytes);
    EXPECT_EQ(reopened.keys(),
              (std::vector<std::string>{"00000000000000aa", "00000000000000bb"}));
}

TEST_F(StoreTest, FirstWriteWins) {
    lab::RunReportStore store(dir_);
    store.put("00000000000000cc", "first\n");
    store.put("00000000000000cc", "second\n");
    EXPECT_EQ(*store.get("00000000000000cc"), "first\n");

    // Same for an entry that already exists on disk from another process.
    std::ofstream(fs::path(dir_) / "00000000000000dd.json") << "disk\n";
    lab::RunReportStore other(dir_);
    other.put("00000000000000dd", "late\n");
    EXPECT_EQ(*other.get("00000000000000dd"), "disk\n");
}

TEST_F(StoreTest, ForeignFilesInTheDirectoryAreIgnored) {
    lab::RunReportStore store(dir_);
    store.put("00000000000000ee", "x\n");
    std::ofstream(fs::path(dir_) / "README.txt") << "not a report";
    std::ofstream(fs::path(dir_) / "short.json") << "{}";
    EXPECT_EQ(store.keys(), (std::vector<std::string>{"00000000000000ee"}));
}

} // namespace
