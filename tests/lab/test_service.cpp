#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "lab/service.hpp"

// The scenario service: memoisation, cache-hit byte identity (the store is a
// pure function of the request), singleflight under concurrency, and error
// answers that never throw.
namespace {

namespace fs = std::filesystem;

lab::ScenarioRequest model_request(int ranks, std::uint64_t seed) {
    lab::ScenarioRequest req;
    req.machine = "RoadRunner";
    req.net = "RoadRunner eth.";
    req.fault = "commodity-eth";
    req.ranks = ranks;
    req.seed = seed;
    req.dof_per_rank = 120000.0;
    return req;
}

TEST(Service, MissThenHitWithByteIdenticalAnswers) {
    lab::Service service;
    const auto req = model_request(8, 1999);

    const lab::Answer cold = service.answer(req);
    ASSERT_TRUE(cold.error.empty()) << cold.error;
    EXPECT_FALSE(cold.cache_hit);
    EXPECT_EQ(cold.key, req.store_key());

    const lab::Answer warm = service.answer(req);
    ASSERT_TRUE(warm.error.empty());
    EXPECT_TRUE(warm.cache_hit);
    // The hit is flagged in the served copy but masks away to the stored
    // canonical bytes: how a request was served never changes its answer.
    EXPECT_NE(cold.report_json, warm.report_json);
    EXPECT_EQ(lab::mask_cache_hit(cold.report_json), lab::mask_cache_hit(warm.report_json));
    EXPECT_NE(warm.report_json.find("\"cache\":{\"hit\":true"), std::string::npos);

    const auto stats = service.stats();
    EXPECT_EQ(stats.queries, 2u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(Service, FaultSeedsAreDistinctScenariosButStayDeterministic) {
    lab::Service a, b;
    const auto seed1 = model_request(8, 1);
    const auto seed2 = model_request(8, 2);
    EXPECT_NE(seed1.store_key(), seed2.store_key());

    // Two independent services answer the same seeded request with the same
    // canonical bytes — the byte-determinism the store relies on.
    const std::string from_a = lab::mask_cache_hit(a.answer(seed1).report_json);
    const std::string from_b = lab::mask_cache_hit(b.answer(seed1).report_json);
    EXPECT_EQ(from_a, from_b);
    EXPECT_NE(from_a, lab::mask_cache_hit(b.answer(seed2).report_json));
}

TEST(Service, SingleflightEvaluatesEachScenarioOnce) {
    lab::Service service;
    const auto req = model_request(16, 7);
    constexpr int kThreads = 8;
    std::vector<std::string> replies(kThreads);
    {
        std::vector<std::thread> threads;
        threads.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t)
            threads.emplace_back(
                [&, t] { replies[t] = lab::mask_cache_hit(service.answer(req).report_json); });
        for (auto& th : threads) th.join();
    }
    for (int t = 1; t < kThreads; ++t) EXPECT_EQ(replies[0], replies[t]);

    const auto stats = service.stats();
    EXPECT_EQ(stats.queries, static_cast<std::uint64_t>(kThreads));
    EXPECT_EQ(stats.misses, 1u) << "singleflight must evaluate exactly once";
    EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1));
    EXPECT_EQ(service.store().size(), 1u);
}

TEST(Service, AnswerAllAlignsWithItsInputs) {
    lab::Service service;
    std::vector<lab::ScenarioRequest> reqs;
    for (int i = 0; i < 6; ++i) reqs.push_back(model_request(2 << (i % 3), 1999));
    const auto answers = service.answer_all(reqs);
    ASSERT_EQ(answers.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_TRUE(answers[i].error.empty()) << answers[i].error;
        EXPECT_EQ(answers[i].key, reqs[i].store_key());
    }
    EXPECT_EQ(service.store().size(), 3u); // 3 distinct rank counts
}

TEST(Service, BadRequestsComeBackAsErrorAnswersNotThrows) {
    lab::Service service;
    const lab::Answer parse_fail = service.answer_json("{\"ranks\":");
    EXPECT_FALSE(parse_fail.error.empty());
    EXPECT_TRUE(parse_fail.report_json.empty());

    lab::ScenarioRequest unknown_machine;
    unknown_machine.machine = "cray-ymp";
    const lab::Answer eval_fail = service.answer(unknown_machine);
    EXPECT_FALSE(eval_fail.error.empty());
    EXPECT_EQ(service.stats().errors, 2u);

    // The service still answers good requests afterwards (no stuck flights).
    EXPECT_TRUE(service.answer(model_request(4, 3)).error.empty());
}

TEST(Service, PersistentStoreServesAcrossServiceInstances) {
    const std::string dir =
        (fs::temp_directory_path() / "lab_service_test_store").string();
    fs::remove_all(dir);
    const auto req = model_request(32, 11);
    std::string cold_bytes;
    {
        lab::Service first(dir);
        cold_bytes = lab::mask_cache_hit(first.answer(req).report_json);
    }
    lab::Service second(dir);
    const lab::Answer served = second.answer(req);
    EXPECT_TRUE(served.cache_hit) << "disk entry should be a hit in a fresh service";
    EXPECT_EQ(lab::mask_cache_hit(served.report_json), cold_bytes);
    fs::remove_all(dir);
}

} // namespace
