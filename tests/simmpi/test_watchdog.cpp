#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "simmpi/simmpi.hpp"

/// The documented failure semantics — "a missing send deadlocks, a wrong tag
/// fails loudly" — must fail within a bounded watchdog time, not hang the
/// test harness.  These tests use a short watchdog and assert both the error
/// type and the bounded host time.
namespace {

netsim::NetworkModel net() {
    netsim::NetworkModel n;
    n.name = "watchdog";
    n.latency_us = 10.0;
    n.bandwidth_mbps = 100.0;
    return n;
}

double host_seconds(const std::function<void()>& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

TEST(Watchdog, MissingSendFailsWithinBoundedTime) {
    simmpi::World world(2, net());
    world.set_watchdog_seconds(0.2);
    const double t = host_seconds([&] {
        EXPECT_THROW(world.run([](simmpi::Comm& c) {
                         if (c.rank() == 1) {
                             std::vector<double> buf(1);
                             c.recv(0, 9, buf); // rank 0 never sends
                         }
                     }),
                     simmpi::DeadlockError);
    });
    EXPECT_LT(t, 5.0);
}

TEST(Watchdog, WrongTagFailsLoudlyInsteadOfHanging) {
    simmpi::World world(2, net());
    world.set_watchdog_seconds(0.2);
    EXPECT_THROW(world.run([](simmpi::Comm& c) {
                     std::vector<double> buf(1, 1.0);
                     if (c.rank() == 0) {
                         c.send(1, 100, buf);
                     } else {
                         c.recv(0, 200, buf); // tag mismatch: never matches
                     }
                 }),
                 simmpi::DeadlockError);
}

TEST(Watchdog, AbsentCollectivePartnerTripsRendezvousWatchdog) {
    simmpi::World world(3, net());
    world.set_watchdog_seconds(0.2);
    const double t = host_seconds([&] {
        EXPECT_THROW(world.run([](simmpi::Comm& c) {
                         if (c.rank() != 2) c.barrier(); // rank 2 never arrives
                     }),
                     simmpi::DeadlockError);
    });
    EXPECT_LT(t, 5.0);
}

TEST(Watchdog, RankExceptionReleasesBlockedPeers) {
    // A rank that throws must wake peers blocked in recv/collectives: the
    // original error propagates promptly instead of waiting out the watchdog
    // (or, before the abort machinery existed, hanging forever).
    simmpi::World world(4, net());
    world.set_watchdog_seconds(10.0);
    const double t = host_seconds([&] {
        try {
            world.run([](simmpi::Comm& c) {
                if (c.rank() == 0) throw std::runtime_error("boom");
                std::vector<double> buf(1);
                if (c.rank() == 1) c.recv(0, 1, buf); // blocked in the mailbox
                if (c.rank() > 1) c.barrier();        // blocked in the rendezvous
            });
            FAIL() << "expected an exception";
        } catch (const simmpi::DeadlockError&) {
            FAIL() << "the original error must win, not the watchdog";
        } catch (const std::runtime_error& e) {
            EXPECT_STREQ(e.what(), "boom");
        }
    });
    EXPECT_LT(t, 5.0); // far below the 10 s watchdog: peers were woken, not timed out
}

TEST(Watchdog, WaitOnANeverCompletedRequestTripsTheWatchdog) {
    simmpi::World world(2, net());
    world.set_watchdog_seconds(0.2);
    const double t = host_seconds([&] {
        EXPECT_THROW(world.run([](simmpi::Comm& c) {
                         if (c.rank() == 1) {
                             std::vector<double> buf(4);
                             simmpi::Request r = c.irecv(0, 7, buf);
                             c.wait(r); // rank 0 never isends
                         }
                     }),
                     simmpi::DeadlockError);
    });
    EXPECT_LT(t, 5.0);
}

TEST(Watchdog, TestNeverCompletesButNeverHangsEither) {
    simmpi::World world(2, net());
    world.set_watchdog_seconds(0.2);
    // test() must stay honest for a message that will never arrive: always
    // false, never blocking — the leak is then reported at rank exit.
    EXPECT_THROW(world.run([](simmpi::Comm& c) {
                     if (c.rank() == 1) {
                         std::vector<double> buf(4);
                         simmpi::Request r = c.irecv(0, 7, buf);
                         for (int i = 0; i < 50; ++i) {
                             EXPECT_FALSE(c.test(r));
                             c.advance_compute(1e-6);
                         }
                     }
                 }),
                 std::runtime_error);
}

TEST(Watchdog, WorldIsReusableAfterADeadlock) {
    simmpi::World world(2, net());
    world.set_watchdog_seconds(0.2);
    EXPECT_THROW(world.run([](simmpi::Comm& c) {
                     std::vector<double> buf(1);
                     if (c.rank() == 1) c.recv(0, 3, buf);
                 }),
                 simmpi::DeadlockError);
    // The same world must run healthy traffic afterwards.
    const auto reports = world.run([](simmpi::Comm& c) {
        std::vector<double> buf(1, static_cast<double>(c.rank()));
        c.allreduce_sum(buf);
        EXPECT_DOUBLE_EQ(buf[0], 1.0);
        c.barrier();
    });
    EXPECT_EQ(reports.size(), 2u);
    EXPECT_GT(reports[0].wall_seconds, 0.0);
}

TEST(Watchdog, DefaultWatchdogIsGenerousButFinite) {
    simmpi::World world(2, net());
    EXPECT_GT(world.watchdog_seconds(), 1.0);
    EXPECT_LT(world.watchdog_seconds(), 600.0);
}

} // namespace
