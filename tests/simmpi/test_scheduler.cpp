#include "simmpi/simmpi.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

/// The Engine::Tasks fiber scheduler: bit-identity against the classic
/// one-thread-per-rank engine, determinism at rank counts no thread engine
/// could host, exact quiescence deadlock detection, and the oversubscription
/// diagnostics.
namespace {

netsim::NetworkModel test_net() {
    netsim::NetworkModel n;
    n.name = "test";
    n.latency_us = 10.0;
    n.bandwidth_mbps = 100.0;
    return n;
}

/// A comm-heavy rank program touching every parking path: ring ptp (mailbox
/// park), collectives (rendezvous park), nonblocking completion, and a split
/// so subcommunicator rendezvous runs under the scheduler too.
void mixed_program(simmpi::Comm& c) {
    const int p = c.size();
    const int r = c.rank();
    std::vector<double> token = {static_cast<double>(r), 0.0};
    std::vector<double> in(2);
    for (int round = 0; round < 3; ++round) {
        c.advance_compute(1e-6 * static_cast<double>(r % 5));
        if (r % 2 == 0) {
            c.send((r + 1) % p, round, token);
            c.recv((r + p - 1) % p, round, in);
        } else {
            c.recv((r + p - 1) % p, round, in);
            c.send((r + 1) % p, round, token);
        }
        token[1] += in[0];
    }
    double sum = c.allreduce_sum(token[1]);
    simmpi::Comm half = c.split(r < p / 2 ? 0 : 1, r);
    sum += half.allreduce_max(static_cast<double>(r));
    std::vector<double> send(static_cast<std::size_t>(half.size()), sum);
    std::vector<double> recv(send.size());
    half.alltoall(send, recv, 1);
    c.barrier();
    c.advance_compute(1e-9 * std::accumulate(recv.begin(), recv.end(), 0.0));
}

std::vector<simmpi::RankReport> run_mixed(int p, simmpi::Engine engine) {
    simmpi::World world(p, test_net(), engine);
    return world.run(mixed_program);
}

TEST(TaskScheduler, TasksIsTheDefaultEngine) {
    simmpi::World world(4, test_net());
    EXPECT_EQ(world.engine(), simmpi::Engine::Tasks);
}

TEST(TaskScheduler, TasksMatchesThreadsBitForBit) {
    for (const int p : {2, 4, 6, 16}) {
        const auto tasks = run_mixed(p, simmpi::Engine::Tasks);
        const auto threads = run_mixed(p, simmpi::Engine::Threads);
        ASSERT_EQ(tasks.size(), threads.size());
        for (int r = 0; r < p; ++r) {
            const auto& a = tasks[static_cast<std::size_t>(r)];
            const auto& b = threads[static_cast<std::size_t>(r)];
            EXPECT_EQ(a.cpu_seconds, b.cpu_seconds) << "p=" << p << " rank " << r;
            EXPECT_EQ(a.wall_seconds, b.wall_seconds) << "p=" << p << " rank " << r;
            EXPECT_EQ(a.log, b.log) << "p=" << p << " rank " << r;
            EXPECT_EQ(a.overlap_log, b.overlap_log) << "p=" << p << " rank " << r;
        }
    }
}

/// FNV-1a over the bit patterns of every rank's clocks: one word capturing
/// the full virtual timing of a run.
std::uint64_t run_digest(const std::vector<simmpi::RankReport>& reports) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    const auto mix = [&](double v) {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        for (int i = 0; i < 8; ++i) {
            h ^= (bits >> (8 * i)) & 0xffu;
            h *= 1099511628211ull;
        }
    };
    for (const auto& r : reports) {
        mix(r.cpu_seconds);
        mix(r.wall_seconds);
    }
    return h;
}

TEST(TaskScheduler, TwoHundredFiftySixRanksAreDeterministic) {
    // A rank count the thread engine refuses outright on most hosts; the
    // task engine must both complete it and reproduce it bit-for-bit.
    const auto a = run_mixed(256, simmpi::Engine::Tasks);
    const auto b = run_mixed(256, simmpi::Engine::Tasks);
    ASSERT_EQ(a.size(), 256u);
    EXPECT_EQ(run_digest(a), run_digest(b));
    for (int r = 0; r < 256; ++r)
        EXPECT_EQ(a[static_cast<std::size_t>(r)].log, b[static_cast<std::size_t>(r)].log);
}

TEST(TaskScheduler, QuiescenceDetectsMissingSendExactly) {
    // Rank 1 waits for a message nobody sends.  Under Engine::Tasks this is
    // caught by the scheduler's exact quiescence check (no runnable task,
    // one parked), not a timeout, so it fires immediately.
    simmpi::World world(2, test_net(), simmpi::Engine::Tasks);
    EXPECT_THROW(world.run([](simmpi::Comm& c) {
        if (c.rank() == 1) {
            std::vector<double> buf(1);
            c.recv(0, 42, buf);
        }
    }),
                 simmpi::DeadlockError);
}

TEST(TaskScheduler, QuiescenceDetectsAbandonedCollective) {
    simmpi::World world(3, test_net(), simmpi::Engine::Tasks);
    EXPECT_THROW(world.run([](simmpi::Comm& c) {
        if (c.rank() != 0) c.barrier(); // rank 0 never enters
    }),
                 simmpi::DeadlockError);
}

TEST(TaskScheduler, WorldIsReusableAfterADetectedDeadlock) {
    simmpi::World world(2, test_net(), simmpi::Engine::Tasks);
    EXPECT_THROW(world.run([](simmpi::Comm& c) {
        if (c.rank() == 0) {
            std::vector<double> buf(1);
            c.recv(1, 7, buf);
        }
    }),
                 simmpi::DeadlockError);
    const auto reports = world.run([](simmpi::Comm& c) {
        std::vector<double> v = {1.0};
        v[0] = c.allreduce_sum(v[0]);
        EXPECT_EQ(v[0], 2.0);
    });
    EXPECT_EQ(reports.size(), 2u);
}

TEST(Oversubscription, TasksOverTheConfiguredLimitIsDiagnosed) {
    simmpi::World world(64, test_net(), simmpi::Engine::Tasks);
    world.set_max_tasks(16);
    try {
        world.run([](simmpi::Comm&) {});
        FAIL() << "expected OversubscriptionError";
    } catch (const simmpi::OversubscriptionError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("16"), std::string::npos) << what;
        EXPECT_NE(what.find("set_max_tasks"), std::string::npos) << what;
    }
}

TEST(Oversubscription, RaisingTheLimitUnblocksTheSameWorld) {
    simmpi::World world(64, test_net(), simmpi::Engine::Tasks);
    world.set_max_tasks(16);
    EXPECT_THROW(world.run([](simmpi::Comm&) {}), simmpi::OversubscriptionError);
    world.set_max_tasks(64);
    EXPECT_EQ(world.run([](simmpi::Comm&) {}).size(), 64u);
}

TEST(Oversubscription, ThreadEngineRefusesThousandsOfRanks) {
    // The thread engine's ceiling is a hard constant: past it the guidance
    // is to use Engine::Tasks, and the error must say so before any OS
    // thread is spawned.
    simmpi::World world(4096, test_net(), simmpi::Engine::Threads);
    try {
        world.run([](simmpi::Comm&) {});
        FAIL() << "expected OversubscriptionError";
    } catch (const simmpi::OversubscriptionError& e) {
        EXPECT_NE(std::string(e.what()).find("Tasks"), std::string::npos) << e.what();
    }
}

TEST(TaskScheduler, ThousandsOfMostlyIdleRanksComplete) {
    // 4096 fiber ranks with a light program: the MAP_NORESERVE stacks keep
    // this cheap, and every rank's collective must still rendezvous.
    simmpi::World world(4096, test_net(), simmpi::Engine::Tasks);
    const auto reports = world.run([](simmpi::Comm& c) {
        const double sum = c.allreduce_sum(1.0);
        EXPECT_EQ(sum, 4096.0);
    });
    EXPECT_EQ(reports.size(), 4096u);
}

} // namespace
