#include "simmpi/simmpi.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace {

netsim::NetworkModel test_net() {
    netsim::NetworkModel n;
    n.name = "test";
    n.latency_us = 10.0;
    n.bandwidth_mbps = 100.0;
    return n;
}

TEST(SimMpi, PingPongDeliversPayloadAndChargesTime) {
    simmpi::World world(2, test_net());
    const auto reports = world.run([](simmpi::Comm& c) {
        std::vector<double> buf = {1.0, 2.0, 3.0};
        if (c.rank() == 0) {
            c.send(1, 7, buf);
            std::vector<double> back(3);
            c.recv(1, 8, back);
            EXPECT_EQ(back[0], 2.0);
            EXPECT_EQ(back[2], 6.0);
        } else {
            std::vector<double> in(3);
            c.recv(0, 7, in);
            for (auto& v : in) v *= 2.0;
            c.send(0, 8, in);
        }
    });
    // Rank 0 waited a full round trip: wall >= 2 * one-way time.
    const double one_way = test_net().ptp_seconds(3 * sizeof(double));
    EXPECT_GE(reports[0].wall_seconds, 2.0 * one_way - 1e-12);
}

TEST(SimMpi, TagMatchingIsSelective) {
    simmpi::World world(2, test_net());
    world.run([](simmpi::Comm& c) {
        if (c.rank() == 0) {
            std::vector<double> a = {1.0}, b = {2.0};
            c.send(1, 100, a);
            c.send(1, 200, b);
        } else {
            std::vector<double> x(1);
            c.recv(0, 200, x); // out of order: must match tag 200 first
            EXPECT_EQ(x[0], 2.0);
            c.recv(0, 100, x);
            EXPECT_EQ(x[0], 1.0);
        }
    });
}

TEST(SimMpi, RecvSizeMismatchThrows) {
    simmpi::World world(2, test_net());
    EXPECT_THROW(world.run([](simmpi::Comm& c) {
        std::vector<double> buf(4, 0.0);
        if (c.rank() == 0) {
            c.send(1, 1, buf); // buffered send; rank 0 exits without blocking
        } else {
            std::vector<double> wrong(2); // sender shipped 4
            c.recv(0, 1, wrong);
        }
    }),
                 std::runtime_error);
}

class AlltoallP : public ::testing::TestWithParam<int> {};

TEST_P(AlltoallP, TransposesBlocks) {
    const int p = GetParam();
    simmpi::World world(p, test_net());
    world.run([p](simmpi::Comm& c) {
        const std::size_t block = 3;
        std::vector<double> send(static_cast<std::size_t>(p) * block);
        std::vector<double> recv(send.size());
        for (int j = 0; j < p; ++j)
            for (std::size_t k = 0; k < block; ++k)
                send[static_cast<std::size_t>(j) * block + k] =
                    100.0 * c.rank() + 10.0 * j + static_cast<double>(k);
        c.alltoall(send, recv, block);
        for (int j = 0; j < p; ++j)
            for (std::size_t k = 0; k < block; ++k)
                EXPECT_EQ(recv[static_cast<std::size_t>(j) * block + k],
                          100.0 * j + 10.0 * c.rank() + static_cast<double>(k));
    });
}

INSTANTIATE_TEST_SUITE_P(Ranks, AlltoallP, ::testing::Values(1, 2, 3, 4, 8));

TEST(SimMpi, AllreduceSumVectorAndScalars) {
    const int p = 5;
    simmpi::World world(p, test_net());
    world.run([p](simmpi::Comm& c) {
        std::vector<double> v = {static_cast<double>(c.rank()), 1.0};
        c.allreduce_sum(v);
        EXPECT_DOUBLE_EQ(v[0], p * (p - 1) / 2.0);
        EXPECT_DOUBLE_EQ(v[1], static_cast<double>(p));
        EXPECT_DOUBLE_EQ(c.allreduce_max(static_cast<double>(c.rank())), p - 1.0);
        EXPECT_DOUBLE_EQ(c.allreduce_min(static_cast<double>(c.rank())), 0.0);
    });
}

TEST(SimMpi, GatherAndBcast) {
    const int p = 4;
    simmpi::World world(p, test_net());
    world.run([p](simmpi::Comm& c) {
        std::vector<double> mine = {static_cast<double>(c.rank()) + 0.5};
        std::vector<double> all;
        c.gather(mine, all, 0);
        if (c.rank() == 0) {
            ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
            for (int r = 0; r < p; ++r) EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(r)], r + 0.5);
        }
        std::vector<double> msg(2);
        if (c.rank() == 0) msg = {3.14, 2.71};
        c.bcast(msg, 0);
        EXPECT_DOUBLE_EQ(msg[0], 3.14);
        EXPECT_DOUBLE_EQ(msg[1], 2.71);
    });
}

TEST(SimMpi, VirtualClockMonotoneAndIdleConsistent) {
    simmpi::World world(3, test_net());
    const auto reports = world.run([](simmpi::Comm& c) {
        double prev = 0.0;
        for (int i = 0; i < 5; ++i) {
            c.advance_compute(0.001 * (c.rank() + 1));
            c.barrier();
            EXPECT_GE(c.wall_time(), prev);
            prev = c.wall_time();
        }
        EXPECT_GE(c.wall_time(), c.cpu_time() - 1e-12);
    });
    // All ranks leave the final barrier at a common wall time.
    EXPECT_NEAR(reports[0].wall_seconds, reports[1].wall_seconds, 1e-12);
    EXPECT_NEAR(reports[1].wall_seconds, reports[2].wall_seconds, 1e-12);
    // The slowest rank computed 3x the fastest; the fastest shows idle time.
    EXPECT_GT(reports[0].wall_seconds, reports[0].cpu_seconds * 0.99);
}

TEST(SimMpi, CommLogRecordsEvents) {
    simmpi::World world(2, test_net());
    const auto reports = world.run([](simmpi::Comm& c) {
        c.set_stage(2);
        std::vector<double> v(8, 1.0);
        c.alltoall(v, v, 4);
        c.set_stage(4);
        c.allreduce_sum(v);
    });
    const auto& log = reports[0].log;
    ASSERT_TRUE(log.count(2));
    ASSERT_TRUE(log.count(4));
    EXPECT_EQ(log.at(2).begin()->first.kind, simmpi::CommKind::Alltoall);
    EXPECT_EQ(log.at(2).begin()->first.bytes, 4 * sizeof(double));
    // Pricing a log is positive and scales with a slower network.
    auto fast = test_net();
    auto slow = test_net();
    slow.bandwidth_mbps = 1.0;
    slow.latency_us = 1000.0;
    const double t_fast = simmpi::price_log(log, fast, 2);
    const double t_slow = simmpi::price_log(log, slow, 2);
    EXPECT_GT(t_fast, 0.0);
    EXPECT_GT(t_slow, t_fast);
}

TEST(SimMpi, RankExceptionPropagates) {
    simmpi::World world(2, test_net());
    EXPECT_THROW(world.run([](simmpi::Comm& c) {
        if (c.rank() == 1) throw std::runtime_error("boom");
        // rank 0 does no blocking communication, so it terminates.
    }),
                 std::runtime_error);
}

TEST(SimMpi, SendRecvExchangesWithoutDeadlock) {
    const int p = 6;
    simmpi::World world(p, test_net());
    world.run([p](simmpi::Comm& c) {
        // Ring exchange: both sends are posted (buffered) before either recv,
        // so the cycle of dependencies never blocks.
        const int left = (c.rank() + p - 1) % p;
        const int right = (c.rank() + 1) % p;
        std::vector<double> mine = {static_cast<double>(c.rank())};
        std::vector<double> from_left(1), from_right(1);
        c.send(right, 5, mine);  // travels clockwise, received as "from left"
        c.send(left, 6, mine);   // travels anticlockwise
        c.recv(left, 5, from_left);
        c.recv(right, 6, from_right);
        EXPECT_DOUBLE_EQ(from_right[0], right);
        EXPECT_DOUBLE_EQ(from_left[0], left);
    });
}

} // namespace
