#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "simmpi/simmpi.hpp"

/// Property tests for the simmpi collectives: every collective's *data* must
/// match a serial reference implementation for all rank counts, message
/// sizes, and fault configurations.  Fault injection may stretch the virtual
/// clocks — it must never corrupt a payload.
namespace {

/// Exactly-representable test value: a pure function of (rank, block, slot)
/// so references can be recomputed serially.
double value(int rank, int block, std::size_t slot) {
    return static_cast<double>(rank) * 65536.0 + static_cast<double>(block) * 256.0 +
           static_cast<double>(slot % 251);
}

netsim::NetworkModel make_net(std::uint64_t fault_seed) {
    netsim::NetworkModel n;
    n.name = "prop";
    n.latency_us = 20.0;
    n.bandwidth_mbps = 50.0;
    n.cpu_poll_fraction = 0.6;
    if (fault_seed != 0) {
        n.fault.seed = fault_seed;
        n.fault.latency_jitter_us = 80.0;
        n.fault.loss_probability = 0.05;
        n.fault.retransmit_timeout_us = 300.0;
        n.fault.degrade_probability = 0.02;
        n.fault.degrade_factor = 3.0;
        n.fault.straggler_fraction = 0.3;
        n.fault.straggler_factor = 2.5;
    }
    return n;
}

/// (rank count, message size in doubles, fault seed; 0 = perfect network).
class CollectiveProps
    : public ::testing::TestWithParam<std::tuple<int, std::size_t, std::uint64_t>> {
protected:
    [[nodiscard]] int nprocs() const { return std::get<0>(GetParam()); }
    [[nodiscard]] std::size_t count() const { return std::get<1>(GetParam()); }
    [[nodiscard]] std::uint64_t seed() const { return std::get<2>(GetParam()); }
};

TEST_P(CollectiveProps, AlltoallMatchesSerialTranspose) {
    const int p = nprocs();
    const std::size_t block = count();
    simmpi::World world(p, make_net(seed()));
    world.run([&](simmpi::Comm& c) {
        std::vector<double> send(static_cast<std::size_t>(p) * block);
        std::vector<double> recv(send.size());
        for (int j = 0; j < p; ++j)
            for (std::size_t k = 0; k < block; ++k)
                send[static_cast<std::size_t>(j) * block + k] = value(c.rank(), j, k);
        c.alltoall(send, recv, block);
        // Reference: block j of my recv is what rank j addressed to me.
        for (int j = 0; j < p; ++j)
            for (std::size_t k = 0; k < block; ++k)
                ASSERT_EQ(recv[static_cast<std::size_t>(j) * block + k],
                          value(j, c.rank(), k))
                    << "p=" << p << " rank=" << c.rank() << " j=" << j << " k=" << k;
    });
}

TEST_P(CollectiveProps, ChunkedIalltoallIsBitIdenticalToAlltoall) {
    const int p = nprocs();
    const std::size_t block = count();
    // Sweep slice counts: a single slice, a few, and (for small blocks) one
    // slice per unit, in both schedules — ship-everything-then-wait and a
    // fully interleaved send/wait pipeline.
    for (std::size_t nslices : {std::size_t{1}, std::size_t{2}, std::size_t{5}, block}) {
        for (const bool interleave : {false, true}) {
            simmpi::World world(p, make_net(seed()));
            world.run([&](simmpi::Comm& c) {
                std::vector<double> send(static_cast<std::size_t>(p) * block);
                std::vector<double> recv(send.size());
                std::vector<double> blocking(send.size());
                for (int j = 0; j < p; ++j)
                    for (std::size_t k = 0; k < block; ++k)
                        send[static_cast<std::size_t>(j) * block + k] = value(c.rank(), j, k);
                c.alltoall(send, blocking, block);
                simmpi::Ialltoall h = c.ialltoall(recv, block, nslices);
                if (interleave) {
                    for (std::size_t s = 0; s < h.num_slices(); ++s) {
                        h.send_slice(s, send);
                        c.advance_compute(1e-6); // pipelined compute between slices
                        h.wait_slice(s);
                    }
                } else {
                    for (std::size_t s = 0; s < h.num_slices(); ++s) h.send_slice(s, send);
                    h.finish();
                }
                for (std::size_t i = 0; i < recv.size(); ++i)
                    ASSERT_EQ(recv[i], blocking[i])
                        << "p=" << p << " rank=" << c.rank() << " nslices=" << nslices
                        << " interleave=" << interleave << " i=" << i;
            });
        }
    }
}

TEST_P(CollectiveProps, BackToBackIalltoallsDoNotCrossTalk) {
    const int p = nprocs();
    const std::size_t block = count();
    simmpi::World world(p, make_net(seed()));
    world.run([&](simmpi::Comm& c) {
        // Two collectives in flight at once: distinct reserved tags keep the
        // payloads apart even though the peers and sizes are identical.
        std::vector<double> s1(static_cast<std::size_t>(p) * block);
        std::vector<double> s2(s1.size()), r1(s1.size()), r2(s1.size());
        for (int j = 0; j < p; ++j)
            for (std::size_t k = 0; k < block; ++k) {
                s1[static_cast<std::size_t>(j) * block + k] = value(c.rank(), j, k);
                s2[static_cast<std::size_t>(j) * block + k] = -value(c.rank(), j, k) - 1.0;
            }
        simmpi::Ialltoall h1 = c.ialltoall(r1, block);
        simmpi::Ialltoall h2 = c.ialltoall(r2, block);
        h1.send_slice(0, s1);
        h2.send_slice(0, s2);
        h2.finish();
        h1.finish();
        for (int j = 0; j < p; ++j)
            for (std::size_t k = 0; k < block; ++k) {
                ASSERT_EQ(r1[static_cast<std::size_t>(j) * block + k], value(j, c.rank(), k));
                ASSERT_EQ(r2[static_cast<std::size_t>(j) * block + k],
                          -value(j, c.rank(), k) - 1.0);
            }
    });
}

TEST_P(CollectiveProps, AllreduceSumMatchesSerialSum) {
    const int p = nprocs();
    const std::size_t n = count();
    simmpi::World world(p, make_net(seed()));
    world.run([&](simmpi::Comm& c) {
        std::vector<double> data(n);
        for (std::size_t i = 0; i < n; ++i) data[i] = value(c.rank(), 0, i);
        c.allreduce_sum(data);
        for (std::size_t i = 0; i < n; ++i) {
            double ref = 0.0;
            for (int r = 0; r < p; ++r) ref += value(r, 0, i);
            ASSERT_EQ(data[i], ref) << "i=" << i;
        }
        // Scalar reductions against their serial references.
        ASSERT_EQ(c.allreduce_max(value(c.rank(), 1, 0)), value(p - 1, 1, 0));
        ASSERT_EQ(c.allreduce_min(value(c.rank(), 1, 0)), value(0, 1, 0));
    });
}

TEST_P(CollectiveProps, GatherConcatenatesAtEveryRoot) {
    const int p = nprocs();
    const std::size_t n = count();
    simmpi::World world(p, make_net(seed()));
    world.run([&](simmpi::Comm& c) {
        for (int root = 0; root < p; ++root) {
            std::vector<double> mine(n);
            for (std::size_t i = 0; i < n; ++i) mine[i] = value(c.rank(), root, i);
            std::vector<double> all;
            c.gather(mine, all, root);
            if (c.rank() == root) {
                ASSERT_EQ(all.size(), static_cast<std::size_t>(p) * n);
                for (int r = 0; r < p; ++r)
                    for (std::size_t i = 0; i < n; ++i)
                        ASSERT_EQ(all[static_cast<std::size_t>(r) * n + i], value(r, root, i));
            }
        }
    });
}

TEST_P(CollectiveProps, BcastDeliversRootPayloadToAll) {
    const int p = nprocs();
    const std::size_t n = count();
    simmpi::World world(p, make_net(seed()));
    world.run([&](simmpi::Comm& c) {
        for (int root = 0; root < p; ++root) {
            std::vector<double> data(n);
            if (c.rank() == root)
                for (std::size_t i = 0; i < n; ++i) data[i] = value(root, 7, i);
            c.bcast(data, root);
            for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(data[i], value(root, 7, i));
        }
    });
}

TEST_P(CollectiveProps, BarrierLeavesClocksSynchronisedAndMonotone) {
    const int p = nprocs();
    simmpi::World world(p, make_net(seed()));
    const bool faulted = seed() != 0;
    const auto reports = world.run([&](simmpi::Comm& c) {
        double prev = 0.0;
        for (int i = 0; i < 4; ++i) {
            c.advance_compute(1e-5 * (c.rank() + 1));
            c.barrier();
            ASSERT_GE(c.wall_time(), prev);
            prev = c.wall_time();
        }
        ASSERT_GE(c.wall_time(), c.cpu_time() - 1e-12);
    });
    if (!faulted) {
        // On a perfect network every rank leaves the final barrier together;
        // stragglers may legitimately trail under fault injection.
        for (int r = 1; r < p; ++r)
            EXPECT_DOUBLE_EQ(reports[0].wall_seconds, reports[static_cast<std::size_t>(r)].wall_seconds);
    }
}

TEST_P(CollectiveProps, FaultsStretchClocksButNeverBelowBaseline) {
    const int p = nprocs();
    const std::size_t n = count();
    const auto traffic = [n, p](simmpi::Comm& c) {
        std::vector<double> data(n, static_cast<double>(c.rank()));
        c.allreduce_sum(data);
        std::vector<double> blocks(static_cast<std::size_t>(p) * n, 1.0);
        std::vector<double> recvb(blocks.size());
        c.alltoall(blocks, recvb, n);
        c.barrier();
    };
    simmpi::World base_world(p, make_net(0));
    const auto base = base_world.run(traffic);
    simmpi::World fault_world(p, make_net(seed() ? seed() : 77));
    const auto faulted = fault_world.run(traffic);
    double extra_total = 0.0;
    for (int r = 0; r < p; ++r) {
        const auto& fr = faulted[static_cast<std::size_t>(r)];
        // Jitter/loss/slowdown only ever add virtual time.
        EXPECT_GE(fr.wall_seconds, base[static_cast<std::size_t>(r)].wall_seconds - 1e-15);
        for (const auto& [stage, fs] : fr.fault_log) {
            (void)stage;
            EXPECT_GE(fs.extra_seconds, 0.0);
            extra_total += fs.extra_seconds;
        }
        // The baseline run reports an empty fault log.
        EXPECT_TRUE(base[static_cast<std::size_t>(r)].fault_log.empty());
    }
    EXPECT_GT(extra_total, 0.0); // this fault profile is aggressive enough to fire
}

INSTANTIATE_TEST_SUITE_P(
    RanksSizesSeeds, CollectiveProps,
    ::testing::Combine(::testing::Values(2, 3, 4, 8),
                       ::testing::Values<std::size_t>(1, 17, 4096),
                       ::testing::Values<std::uint64_t>(0, 1, 20260806)),
    [](const ::testing::TestParamInfo<CollectiveProps::ParamType>& info) {
        return "p" + std::to_string(std::get<0>(info.param)) + "_n" +
               std::to_string(std::get<1>(info.param)) + "_seed" +
               std::to_string(std::get<2>(info.param));
    });

} // namespace
