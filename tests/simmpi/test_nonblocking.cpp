#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "simmpi/simmpi.hpp"

/// Nonblocking point-to-point semantics: payload integrity, honest
/// virtual-clock overlap accounting (cost accrues in the background, only the
/// uncovered remainder becomes idle), NIC serialization of consecutive posts,
/// retry-safe test(), and loud failure on leaked requests.
namespace {

netsim::NetworkModel net() {
    netsim::NetworkModel n;
    n.name = "nonblocking";
    n.latency_us = 10.0;
    n.bandwidth_mbps = 100.0;
    return n;
}

/// Total virtual comm seconds this rank hid so far, summed over stages.
double hidden_total(const simmpi::Comm& c) {
    double t = 0.0;
    for (const auto& [stage, s] : c.overlap_log()) {
        (void)stage;
        t += s;
    }
    return t;
}

netsim::NetworkModel faulty_net(std::uint64_t seed) {
    netsim::NetworkModel n = net();
    n.fault.seed = seed;
    n.fault.latency_jitter_us = 80.0;
    n.fault.loss_probability = 0.05;
    n.fault.retransmit_timeout_us = 300.0;
    n.fault.degrade_probability = 0.02;
    n.fault.degrade_factor = 3.0;
    n.fault.straggler_fraction = 0.3;
    n.fault.straggler_factor = 2.5;
    return n;
}

TEST(Nonblocking, RingExchangeDeliversPayloads) {
    for (int p : {2, 3, 4, 8}) {
        simmpi::World world(p, net());
        world.run([&](simmpi::Comm& c) {
            const int next = (c.rank() + 1) % p;
            const int prev = (c.rank() + p - 1) % p;
            std::vector<double> out(33), in(33);
            for (std::size_t i = 0; i < out.size(); ++i)
                out[i] = 100.0 * c.rank() + static_cast<double>(i);
            std::vector<simmpi::Request> reqs;
            reqs.push_back(c.irecv(prev, 11, in));
            reqs.push_back(c.isend(next, 11, out));
            c.waitall(reqs);
            for (std::size_t i = 0; i < in.size(); ++i)
                ASSERT_EQ(in[i], 100.0 * prev + static_cast<double>(i));
        });
    }
}

TEST(Nonblocking, ComputeBetweenPostAndWaitIsCreditedAsOverlap) {
    simmpi::World world(2, net());
    const std::size_t n = 1000;
    const double cost = net().ptp_seconds(n * sizeof(double));
    const auto reports = world.run([&](simmpi::Comm& c) {
        std::vector<double> buf(n, static_cast<double>(c.rank()));
        if (c.rank() == 0) {
            simmpi::Request r = c.isend(1, 5, buf);
            EXPECT_TRUE(r.done());
        } else {
            c.set_stage(3);
            simmpi::Request r = c.irecv(0, 5, buf);
            // Work for longer than the whole transfer window: the wait must
            // cost no idle time and credit the full transfer to the overlap
            // log of the active stage.
            c.advance_compute(10.0 * cost);
            const double wall_before = c.wall_time();
            c.wait(r);
            EXPECT_DOUBLE_EQ(c.wall_time(), wall_before);
            EXPECT_DOUBLE_EQ(hidden_total(c), cost);
            ASSERT_TRUE(c.overlap_log().count(3));
            EXPECT_DOUBLE_EQ(c.overlap_log().at(3), cost);
        }
    });
    EXPECT_DOUBLE_EQ(reports[1].overlap_log.at(3), cost);
    EXPECT_TRUE(reports[0].overlap_log.empty());
}

TEST(Nonblocking, UncoveredTransferSurfacesAsIdleNotOverlap) {
    simmpi::World world(2, net());
    const std::size_t n = 1000;
    const double cost = net().ptp_seconds(n * sizeof(double));
    world.run([&](simmpi::Comm& c) {
        std::vector<double> buf(n, 1.0);
        if (c.rank() == 0) {
            c.isend(1, 5, buf);
        } else {
            simmpi::Request r = c.irecv(0, 5, buf);
            c.wait(r); // no compute since the post: nothing was hidden
            EXPECT_DOUBLE_EQ(c.wall_time(), cost);
            EXPECT_DOUBLE_EQ(hidden_total(c), 0.0);
        }
    });
}

TEST(Nonblocking, ConsecutivePostsSerializeOnTheSendersNic) {
    simmpi::World world(2, net());
    const std::size_t n = 1000;
    const double cost = net().ptp_seconds(n * sizeof(double));
    world.run([&](simmpi::Comm& c) {
        std::vector<double> a(n, 1.0), b(n, 2.0);
        if (c.rank() == 0) {
            c.isend(1, 1, a);
            c.isend(1, 2, b);
        } else {
            simmpi::Request r1 = c.irecv(0, 1, a);
            simmpi::Request r2 = c.irecv(0, 2, b);
            c.wait(r1);
            c.wait(r2);
            // The second transfer queued behind the first on rank 0's NIC:
            // total wall is two serialized transfers, not one.
            EXPECT_GE(c.wall_time(), 2.0 * cost);
        }
    });
}

TEST(Nonblocking, TestIsRetrySafeAndCompletesLikeWait) {
    simmpi::World world(2, net());
    world.run([&](simmpi::Comm& c) {
        std::vector<double> buf(17, static_cast<double>(c.rank()));
        if (c.rank() == 0) {
            c.isend(1, 9, buf);
        } else {
            simmpi::Request r = c.irecv(0, 9, buf);
            // Poll until virtual and host time both pass the arrival; every
            // false result must be retry-safe.
            while (!c.test(r)) c.advance_compute(1e-5);
            EXPECT_TRUE(r.done());
            for (double v : buf) ASSERT_EQ(v, 0.0);
            EXPECT_TRUE(c.test(r)); // completed request: trivially true
        }
    });
}

TEST(Nonblocking, WaitOnEmptyOrMovedRequestThrows) {
    simmpi::World world(2, net());
    world.run([&](simmpi::Comm& c) {
        simmpi::Request empty;
        EXPECT_FALSE(empty.valid());
        EXPECT_THROW(c.wait(empty), std::runtime_error);
        std::vector<double> buf(1, 1.0);
        if (c.rank() == 0) {
            c.isend(1, 4, buf);
        } else {
            simmpi::Request r = c.irecv(0, 4, buf);
            simmpi::Request moved = std::move(r);
            EXPECT_FALSE(r.valid()); // NOLINT(bugprone-use-after-move): probed on purpose
            EXPECT_THROW(c.wait(r), std::runtime_error);
            c.wait(moved);
            c.wait(moved); // completed: a second wait is a no-op
        }
    });
}

TEST(Nonblocking, SizeMismatchFailsLoudly) {
    simmpi::World world(2, net());
    EXPECT_THROW(world.run([](simmpi::Comm& c) {
                     std::vector<double> buf(8, 1.0);
                     if (c.rank() == 0) {
                         c.isend(1, 2, buf);
                     } else {
                         std::vector<double> wrong(4);
                         simmpi::Request r = c.irecv(0, 2, wrong);
                         c.wait(r);
                     }
                 }),
                 std::runtime_error);
}

TEST(Nonblocking, LeakedRequestIsReportedAtRankExit) {
    simmpi::World world(2, net());
    try {
        world.run([](simmpi::Comm& c) {
            std::vector<double> buf(3, 1.0);
            if (c.rank() == 0) {
                c.isend(1, 6, buf);
            } else {
                simmpi::Request r = c.irecv(0, 6, buf);
                (void)r; // never waited on
                EXPECT_EQ(c.pending_requests(), 1);
            }
        });
        FAIL() << "expected the pending-request check to throw";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("pending"), std::string::npos);
    }
}

TEST(Nonblocking, FaultSeedsStretchClocksButNeverPayloads) {
    for (std::uint64_t seed : {1ull, 42ull, 20260807ull}) {
        simmpi::World world(4, faulty_net(seed));
        const auto reports = world.run([&](simmpi::Comm& c) {
            const int p = c.size();
            const int next = (c.rank() + 1) % p;
            const int prev = (c.rank() + p - 1) % p;
            for (int round = 0; round < 3; ++round) {
                std::vector<double> out(257), in(257);
                for (std::size_t i = 0; i < out.size(); ++i)
                    out[i] = c.rank() * 1000.0 + round * 300.0 + static_cast<double>(i);
                simmpi::Request r = c.irecv(prev, round, in);
                c.isend(next, round, out);
                c.advance_compute(1e-5);
                c.wait(r);
                for (std::size_t i = 0; i < in.size(); ++i)
                    ASSERT_EQ(in[i], prev * 1000.0 + round * 300.0 + static_cast<double>(i));
            }
        });
        for (const auto& rep : reports) {
            EXPECT_FALSE(rep.fault_log.empty());
            EXPECT_GE(rep.wall_seconds, rep.cpu_seconds - 1e-15);
        }
    }
}

TEST(Nonblocking, OverlappedEventsAreFlaggedInTheCommLogAndPricedSeparately) {
    simmpi::World world(2, net());
    const std::size_t n = 64;
    const auto reports = world.run([&](simmpi::Comm& c) {
        std::vector<double> buf(n, 1.0), in(n);
        // One blocking and one nonblocking message of the same size.
        if (c.rank() == 0) {
            c.send(1, 1, buf);
            c.isend(1, 2, buf);
        } else {
            c.recv(0, 1, in);
            simmpi::Request r = c.irecv(0, 2, in);
            c.wait(r);
        }
    });
    const auto split = simmpi::price_log_split(reports[0].log, net(), 2);
    const double one = net().ptp_seconds(n * sizeof(double));
    EXPECT_DOUBLE_EQ(split.blocking, one);
    EXPECT_DOUBLE_EQ(split.overlapped, one);
    EXPECT_DOUBLE_EQ(split.total(), simmpi::price_log(reports[0].log, net(), 2));
}

} // namespace
