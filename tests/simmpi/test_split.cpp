#include "simmpi/simmpi.hpp"

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <vector>

#include "ckpt/checkpoint.hpp"

/// Comm::split(color, key): partition semantics, subcommunicator collectives
/// against serial references, determinism under fault seeds, and the
/// checkpoint round-trip of the group-local state.
namespace {

netsim::NetworkModel test_net(std::uint64_t fault_seed = 0) {
    netsim::NetworkModel n;
    n.name = "test";
    n.latency_us = 10.0;
    n.bandwidth_mbps = 100.0;
    if (fault_seed != 0) {
        n.fault.seed = fault_seed;
        n.fault.latency_jitter_us = 25.0;
        n.fault.degrade_probability = 0.2;
        n.fault.degrade_factor = 3.0;
    }
    return n;
}

TEST(CommSplit, PartitionsByColorAndOrdersByKey) {
    const int p = 12;
    simmpi::World world(p, test_net());
    world.run([p](simmpi::Comm& c) {
        const int color = c.rank() % 3;
        // Negative keys: order inside each subcomm is *descending* world rank.
        simmpi::Comm sub = c.split(color, -c.rank());
        ASSERT_FALSE(sub.is_null());
        EXPECT_EQ(sub.size(), p / 3);
        EXPECT_EQ(sub.world_rank(), c.rank());
        // World rank color + 3 * j maps to subcomm rank (p/3 - 1 - j).
        const int j = c.rank() / 3;
        EXPECT_EQ(sub.rank(), p / 3 - 1 - j);
        // Membership check via allreduce: the members of color k are the
        // world ranks congruent to k mod 3.
        double expect = 0.0;
        for (int w = color; w < p; w += 3) expect += static_cast<double>(w);
        EXPECT_EQ(sub.allreduce_sum(static_cast<double>(c.rank())), expect);
    });
}

TEST(CommSplit, EqualKeysBreakTiesByParentRank) {
    simmpi::World world(6, test_net());
    world.run([](simmpi::Comm& c) {
        simmpi::Comm sub = c.split(0, /*key=*/0);
        EXPECT_EQ(sub.rank(), c.rank()); // stable order: parent rank order
        EXPECT_EQ(sub.size(), 6);
    });
}

TEST(CommSplit, NegativeColorYieldsNullComm) {
    simmpi::World world(5, test_net());
    world.run([](simmpi::Comm& c) {
        simmpi::Comm sub = c.split(c.rank() == 0 ? -1 : 0, 0);
        if (c.rank() == 0) {
            EXPECT_TRUE(sub.is_null());
            EXPECT_EQ(sub.rank(), -1);
            EXPECT_EQ(sub.size(), 0);
            EXPECT_THROW((void)sub.allreduce_sum(1.0), std::logic_error);
        } else {
            ASSERT_FALSE(sub.is_null());
            EXPECT_EQ(sub.size(), 4);
            EXPECT_EQ(sub.allreduce_sum(1.0), 4.0);
        }
    });
}

TEST(CommSplit, SubcommCollectivesMatchSerialReferences) {
    const int p = 8;
    simmpi::World world(p, test_net());
    world.run([p](simmpi::Comm& c) {
        const int color = c.rank() / 4; // two quads
        simmpi::Comm sub = c.split(color, c.rank());
        ASSERT_EQ(sub.size(), 4);

        // alltoall: value encodes (sender world rank, destination).
        std::vector<double> send(4), recv(4);
        for (int d = 0; d < 4; ++d)
            send[static_cast<std::size_t>(d)] = 100.0 * c.rank() + d;
        sub.alltoall(send, recv, 1);
        for (int s = 0; s < 4; ++s) {
            const int sender_world = color * 4 + s;
            EXPECT_EQ(recv[static_cast<std::size_t>(s)], 100.0 * sender_world + sub.rank());
        }

        // bcast from each subcomm root in turn.
        std::vector<double> word = {sub.rank() == 0 ? 7.0 + color : -1.0};
        sub.bcast(word, 0);
        EXPECT_EQ(word[0], 7.0 + color);

        // gather to the subcomm's last rank.
        std::vector<double> gathered;
        sub.gather(std::vector<double>{static_cast<double>(c.rank())}, gathered, 3);
        if (sub.rank() == 3) {
            ASSERT_EQ(gathered.size(), 4u);
            for (int s = 0; s < 4; ++s)
                EXPECT_EQ(gathered[static_cast<std::size_t>(s)], color * 4 + s);
        }

        // Min/max reductions stay within the group.
        EXPECT_EQ(sub.allreduce_min(static_cast<double>(c.rank())), 4.0 * color);
        EXPECT_EQ(sub.allreduce_max(static_cast<double>(c.rank())), 4.0 * color + 3.0);
    });
}

TEST(CommSplit, PointToPointStaysInsideTheSubcomm) {
    // Same (src rank, tag) exists in both subcomms; the context keeps the
    // messages apart.
    simmpi::World world(4, test_net());
    world.run([](simmpi::Comm& c) {
        simmpi::Comm sub = c.split(c.rank() % 2, c.rank());
        std::vector<double> v = {static_cast<double>(c.rank())};
        std::vector<double> in(1);
        if (sub.rank() == 0) {
            sub.send(1, 5, v);
        } else {
            sub.recv(0, 5, in);
            EXPECT_EQ(in[0], static_cast<double>(c.rank() % 2)); // world 0 or 1
        }
    });
}

TEST(CommSplit, SplitOfASplitNests) {
    const int p = 8;
    simmpi::World world(p, test_net());
    world.run([](simmpi::Comm& c) {
        simmpi::Comm half = c.split(c.rank() / 4, c.rank());
        simmpi::Comm pair = half.split(half.rank() / 2, half.rank());
        EXPECT_EQ(pair.size(), 2);
        const double partner_sum = pair.allreduce_sum(static_cast<double>(c.rank()));
        // Pairs are (0,1),(2,3),... in world ranks.
        EXPECT_EQ(partner_sum, static_cast<double>(2 * (c.rank() / 2) * 2 + 1));
    });
}

TEST(CommSplit, EventsRecordGroupSizeAndSiblings) {
    const int p = 6;
    simmpi::World world(p, test_net());
    const auto reports = world.run([](simmpi::Comm& c) {
        simmpi::Comm sub = c.split(c.rank() % 3, c.rank()); // 3 siblings of 2
        (void)sub.allreduce_sum(1.0);
    });
    bool found = false;
    for (const auto& [key, count] : reports[0].log.at(-1)) {
        if (key.kind == simmpi::CommKind::Allreduce) {
            EXPECT_EQ(key.group, 2u);
            EXPECT_EQ(key.groups, 3u);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

/// Two runs with the same fault seed must produce byte-identical virtual
/// clocks even when every comm event runs on split-derived subcomms (the
/// fault stream is keyed by world rank and per-rank event index, which the
/// subcomm views share).
TEST(CommSplit, DeterministicUnderFaultSeeds) {
    const auto run = [](std::uint64_t seed) {
        simmpi::World world(8, test_net(seed));
        return world.run([](simmpi::Comm& c) {
            simmpi::Comm row = c.split(c.rank() / 2, c.rank());
            simmpi::Comm col = c.split(c.rank() % 2, c.rank());
            for (int i = 0; i < 3; ++i) {
                (void)row.allreduce_sum(1.0);
                std::vector<double> s(static_cast<std::size_t>(col.size()), 1.0);
                std::vector<double> r(s.size());
                col.alltoall(s, r, 1);
            }
        });
    };
    const auto a = run(31415), b = run(31415), c = run(27182);
    for (int r = 0; r < 8; ++r) {
        EXPECT_EQ(a[static_cast<std::size_t>(r)].wall_seconds,
                  b[static_cast<std::size_t>(r)].wall_seconds);
        EXPECT_EQ(a[static_cast<std::size_t>(r)].fault_log.size(),
                  b[static_cast<std::size_t>(r)].fault_log.size());
    }
    // A different seed must actually perturb something.
    bool differs = false;
    for (int r = 0; r < 8; ++r)
        differs |= a[static_cast<std::size_t>(r)].wall_seconds !=
                   c[static_cast<std::size_t>(r)].wall_seconds;
    EXPECT_TRUE(differs);
}

/// Checkpoint/restore of a program using subcommunicators: save the world
/// state plus each subcomm's group state mid-run, replay from the checkpoint
/// in a fresh world (re-deriving the splits in the original order), and
/// compare the continuation byte-for-byte against the uninterrupted run.
TEST(CommSplit, CheckpointRoundTripReplaysBitIdentically) {
    const int p = 6, total_phases = 5, cut = 2;
    const std::uint64_t seed = 977;

    const auto phase = [](simmpi::Comm& c, simmpi::Comm& row, simmpi::Comm& col) {
        (void)row.allreduce_sum(static_cast<double>(c.rank()));
        std::vector<double> s(static_cast<std::size_t>(col.size()), 1.0);
        std::vector<double> r(s.size());
        col.alltoall(s, r, 1);
        c.barrier();
    };

    const auto run = [&](const std::vector<std::vector<std::uint8_t>>* from,
                         std::vector<std::vector<std::uint8_t>>& mid_out,
                         std::vector<double>& final_wall) {
        simmpi::World world(p, test_net(seed));
        mid_out.assign(p, {});
        final_wall.assign(p, 0.0);
        world.run([&](simmpi::Comm& c) {
            // Splits first, in a fixed order, so a restore lands on
            // identically-derived contexts.
            simmpi::Comm row = c.split(c.rank() / 3, c.rank());
            simmpi::Comm col = c.split(c.rank() % 3, c.rank());
            int start = 0;
            if (from != nullptr) {
                const auto ck =
                    ckpt::Checkpoint::deserialize((*from)[static_cast<std::size_t>(c.rank())]);
                auto wr = ck.open("world");
                c.restore_state(wr);
                auto gr = ck.open("groups");
                row.restore_group_state(gr);
                col.restore_group_state(gr);
                gr.expect_end();
                start = cut;
            }
            for (int ph = start; ph < total_phases; ++ph) {
                phase(c, row, col);
                if (from == nullptr && ph + 1 == cut) {
                    ckpt::Checkpoint ck;
                    c.save_state(ck.add("world"));
                    auto& gw = ck.add("groups");
                    row.save_group_state(gw);
                    col.save_group_state(gw);
                    mid_out[static_cast<std::size_t>(c.rank())] = ck.serialize();
                }
            }
            final_wall[static_cast<std::size_t>(c.rank())] = c.wall_time();
        });
    };

    std::vector<std::vector<std::uint8_t>> mid, unused;
    std::vector<double> ref_wall, resumed_wall;
    run(nullptr, mid, ref_wall);       // uninterrupted, checkpointing at `cut`
    run(&mid, unused, resumed_wall);   // restored, phases cut..total
    for (int r = 0; r < p; ++r)
        EXPECT_EQ(resumed_wall[static_cast<std::size_t>(r)],
                  ref_wall[static_cast<std::size_t>(r)])
            << "rank " << r;
}

TEST(CommSplit, RestoreIntoTheWrongSubcommIsRefused) {
    simmpi::World world(4, test_net());
    world.run([](simmpi::Comm& c) {
        simmpi::Comm row = c.split(c.rank() / 2, c.rank());
        simmpi::Comm col = c.split(c.rank() % 2, c.rank());
        ckpt::SectionWriter w("groups");
        row.save_group_state(w);
        ckpt::SectionReader r("groups", w.bytes());
        EXPECT_THROW(col.restore_group_state(r), ckpt::Error);
    });
}

TEST(CommSplit, SaveStateOnASubcommIsRefused) {
    simmpi::World world(2, test_net());
    world.run([](simmpi::Comm& c) {
        simmpi::Comm sub = c.split(0, c.rank());
        ckpt::SectionWriter w("comm");
        EXPECT_THROW(sub.save_state(w), std::logic_error);
    });
}

} // namespace
