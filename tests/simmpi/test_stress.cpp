#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "simmpi/simmpi.hpp"

namespace {

netsim::NetworkModel net() {
    netsim::NetworkModel n;
    n.name = "stress";
    n.latency_us = 5.0;
    n.bandwidth_mbps = 500.0;
    return n;
}

/// Many interleaved collectives and point-to-point messages across 8 ranks:
/// shakes out rendezvous generation bugs and mailbox races.
TEST(SimMpiStress, InterleavedTrafficStaysConsistent) {
    const int p = 8;
    simmpi::World world(p, net());
    world.run([p](simmpi::Comm& c) {
        std::mt19937 gen(static_cast<unsigned>(c.rank()) + 1);
        double checksum = static_cast<double>(c.rank());
        for (int round = 0; round < 30; ++round) {
            // Ring shift.
            const int next = (c.rank() + 1) % p;
            const int prev = (c.rank() + p - 1) % p;
            std::vector<double> out = {checksum}, in(1);
            c.send(next, round, out);
            c.recv(prev, round, in);
            checksum = 0.5 * (checksum + in[0]);
            // Collective mix.
            const double total = c.allreduce_sum(checksum);
            std::vector<double> blocks(static_cast<std::size_t>(p), checksum);
            std::vector<double> recvb(blocks.size());
            c.alltoall(blocks, recvb, 1);
            double sum2 = 0.0;
            for (double v : recvb) sum2 += v;
            EXPECT_NEAR(sum2, total, 1e-9) << "round " << round;
            c.barrier();
        }
        // Everyone converges to the mean of 0..p-1 under repeated averaging.
        const double mean = c.allreduce_sum(checksum) / p;
        EXPECT_NEAR(checksum, mean, 1.0);
    });
}

/// Wall clocks must be reproducible run-to-run (virtual time is a pure
/// function of the communication pattern, not host scheduling).
TEST(SimMpiStress, VirtualTimeIsDeterministic) {
    const auto run_once = [] {
        simmpi::World world(4, net());
        const auto reports = world.run([](simmpi::Comm& c) {
            for (int i = 0; i < 10; ++i) {
                c.advance_compute(1e-4 * (c.rank() + 1));
                std::vector<double> v(64, 1.0);
                c.allreduce_sum(v);
            }
        });
        return reports[0].wall_seconds;
    };
    const double a = run_once();
    const double b = run_once();
    EXPECT_DOUBLE_EQ(a, b);
}

netsim::NetworkModel faulty_net(std::uint64_t seed) {
    netsim::NetworkModel n = net();
    n.fault.seed = seed;
    n.fault.latency_jitter_us = 40.0;
    n.fault.loss_probability = 0.03;
    n.fault.retransmit_timeout_us = 250.0;
    n.fault.degrade_probability = 0.01;
    n.fault.degrade_factor = 2.5;
    n.fault.straggler_fraction = 0.25;
    n.fault.straggler_factor = 2.0;
    return n;
}

/// Exercises one named collective (plus a ptp ring for "ptp") so the
/// determinism sweep can cover each communication path in isolation.
void drive(simmpi::Comm& c, const std::string& kind) {
    const int p = c.size();
    for (int round = 0; round < 8; ++round) {
        c.advance_compute(1e-5 * (c.rank() + 1));
        if (kind == "ptp") {
            std::vector<double> out = {static_cast<double>(round)}, in(1);
            c.send((c.rank() + 1) % p, round, out);
            c.recv((c.rank() + p - 1) % p, round, in);
        } else if (kind == "alltoall") {
            std::vector<double> v(static_cast<std::size_t>(p) * 4, 1.0), r(v.size());
            c.alltoall(v, r, 4);
        } else if (kind == "allreduce") {
            std::vector<double> v(32, 1.0);
            c.allreduce_sum(v);
        } else if (kind == "gather") {
            std::vector<double> mine(8, 1.0), all;
            c.gather(mine, all, round % p);
        } else if (kind == "bcast") {
            std::vector<double> v(16, static_cast<double>(c.rank()));
            c.bcast(v, round % p);
        } else if (kind == "barrier") {
            c.barrier();
        }
    }
    c.barrier(); // drain the ring so no messages outlive the run
}

std::vector<double> walls(const netsim::NetworkModel& n, const std::string& kind) {
    simmpi::World world(8, n);
    const auto reports = world.run([&](simmpi::Comm& c) { drive(c, kind); });
    std::vector<double> w;
    for (const auto& r : reports) w.push_back(r.wall_seconds);
    return w;
}

/// Every collective's virtual wall clocks must be bit-identical across 3
/// repeated runs — on a perfect network AND under seeded fault injection
/// (injection is a pure function of (seed, rank, message index), so host
/// scheduling must never leak into the clocks).
TEST(SimMpiStress, EveryCollectiveIsBitDeterministicAcrossRuns) {
    const std::vector<std::string> kinds = {"ptp",    "alltoall", "allreduce",
                                            "gather", "bcast",    "barrier"};
    for (const auto& kind : kinds) {
        for (const netsim::NetworkModel& n : {net(), faulty_net(7), faulty_net(123)}) {
            const auto a = walls(n, kind);
            const auto b = walls(n, kind);
            const auto c = walls(n, kind);
            for (std::size_t r = 0; r < a.size(); ++r) {
                // operator== on doubles: bit-identical, not "close".
                EXPECT_TRUE(a[r] == b[r] && b[r] == c[r])
                    << kind << " net=" << n.name << " fault seed=" << n.fault.seed
                    << " rank=" << r << ": " << a[r] << " vs " << b[r] << " vs " << c[r];
            }
        }
    }
}

/// A fault model with every probability/jitter at zero must price exactly
/// like no fault model at all — the fault path may not perturb a single bit.
TEST(SimMpiStress, ZeroFaultModelPricesIdenticallyToNoFaultModel) {
    netsim::NetworkModel zero_fault = net();
    zero_fault.fault.seed = 987654321; // a seed alone must change nothing
    ASSERT_FALSE(zero_fault.fault.enabled());
    for (const std::string kind :
         {"ptp", "alltoall", "allreduce", "gather", "bcast", "barrier"}) {
        const auto base = walls(net(), kind);
        const auto zero = walls(zero_fault, kind);
        for (std::size_t r = 0; r < base.size(); ++r)
            EXPECT_TRUE(base[r] == zero[r])
                << kind << " rank=" << r << ": " << base[r] << " vs " << zero[r];
    }
}

/// Fault-injected runs must also be deterministic under heavy interleaved
/// mixed traffic (the original stress pattern) — and change the clocks
/// relative to the unfaulted baseline, proving injection actually fired.
TEST(SimMpiStress, FaultInjectedMixedTrafficIsDeterministicAndNonTrivial) {
    const auto run_mixed = [](const netsim::NetworkModel& n) {
        simmpi::World world(8, n);
        const auto reports = world.run([](simmpi::Comm& c) {
            const int p = c.size();
            for (int round = 0; round < 12; ++round) {
                std::vector<double> out = {1.0}, in(1);
                c.send((c.rank() + 1) % p, round, out);
                c.recv((c.rank() + p - 1) % p, round, in);
                const double s = c.allreduce_sum(in[0]);
                (void)s;
                c.barrier();
            }
        });
        std::vector<double> w;
        for (const auto& r : reports) w.push_back(r.wall_seconds);
        return w;
    };
    const auto f1 = run_mixed(faulty_net(42));
    const auto f2 = run_mixed(faulty_net(42));
    const auto base = run_mixed(net());
    bool any_diff = false;
    for (std::size_t r = 0; r < f1.size(); ++r) {
        EXPECT_TRUE(f1[r] == f2[r]) << "rank " << r;
        EXPECT_GE(f1[r], base[r] - 1e-15) << "rank " << r;
        if (f1[r] != base[r]) any_diff = true;
    }
    EXPECT_TRUE(any_diff) << "fault profile never fired";
}

} // namespace
