#include <gtest/gtest.h>

#include <random>

#include "simmpi/simmpi.hpp"

namespace {

netsim::NetworkModel net() {
    netsim::NetworkModel n;
    n.name = "stress";
    n.latency_us = 5.0;
    n.bandwidth_mbps = 500.0;
    return n;
}

/// Many interleaved collectives and point-to-point messages across 8 ranks:
/// shakes out rendezvous generation bugs and mailbox races.
TEST(SimMpiStress, InterleavedTrafficStaysConsistent) {
    const int p = 8;
    simmpi::World world(p, net());
    world.run([p](simmpi::Comm& c) {
        std::mt19937 gen(static_cast<unsigned>(c.rank()) + 1);
        double checksum = static_cast<double>(c.rank());
        for (int round = 0; round < 30; ++round) {
            // Ring shift.
            const int next = (c.rank() + 1) % p;
            const int prev = (c.rank() + p - 1) % p;
            std::vector<double> out = {checksum}, in(1);
            c.send(next, round, out);
            c.recv(prev, round, in);
            checksum = 0.5 * (checksum + in[0]);
            // Collective mix.
            const double total = c.allreduce_sum(checksum);
            std::vector<double> blocks(static_cast<std::size_t>(p), checksum);
            std::vector<double> recvb(blocks.size());
            c.alltoall(blocks, recvb, 1);
            double sum2 = 0.0;
            for (double v : recvb) sum2 += v;
            EXPECT_NEAR(sum2, total, 1e-9) << "round " << round;
            c.barrier();
        }
        // Everyone converges to the mean of 0..p-1 under repeated averaging.
        const double mean = c.allreduce_sum(checksum) / p;
        EXPECT_NEAR(checksum, mean, 1.0);
    });
}

/// Wall clocks must be reproducible run-to-run (virtual time is a pure
/// function of the communication pattern, not host scheduling).
TEST(SimMpiStress, VirtualTimeIsDeterministic) {
    const auto run_once = [] {
        simmpi::World world(4, net());
        const auto reports = world.run([](simmpi::Comm& c) {
            for (int i = 0; i < 10; ++i) {
                c.advance_compute(1e-4 * (c.rank() + 1));
                std::vector<double> v(64, 1.0);
                c.allreduce_sum(v);
            }
        });
        return reports[0].wall_seconds;
    };
    const double a = run_once();
    const double b = run_once();
    EXPECT_DOUBLE_EQ(a, b);
}

} // namespace
