#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "blaslite/blas.hpp"
#include "parallel/scratch.hpp"

namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
    for (unsigned threads : {1u, 2u, 3u, 7u}) {
        parallel::ThreadPool pool(threads);
        for (std::size_t n : {0ul, 1ul, 2ul, 7ul, 64ul, 1000ul}) {
            std::vector<std::atomic<int>> hits(n);
            pool.parallel_for(n, [&](std::size_t b, std::size_t e) {
                for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
            });
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " n=" << n
                                             << " i=" << i;
        }
    }
}

TEST(ThreadPool, ChunksArePartitionOfRange) {
    parallel::ThreadPool pool(4);
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    pool.parallel_for(103, [&](std::size_t b, std::size_t e) {
        std::lock_guard<std::mutex> lock(mu);
        chunks.emplace_back(b, e);
    });
    std::sort(chunks.begin(), chunks.end());
    ASSERT_FALSE(chunks.empty());
    EXPECT_EQ(chunks.front().first, 0u);
    EXPECT_EQ(chunks.back().second, 103u);
    for (std::size_t i = 1; i < chunks.size(); ++i)
        EXPECT_EQ(chunks[i].first, chunks[i - 1].second);
}

TEST(ThreadPool, WorkerCountersFoldIntoCaller) {
    // Kernels charge thread-local counters; parallel_for must hand every
    // worker's delta back to the caller so virtual-clock charging is
    // identical at 1 and N threads.
    const std::size_t n = 64, len = 33;
    std::vector<double> x(n * len, 1.0), y(n * len, 2.0);

    const auto run = [&](parallel::ThreadPool& pool) {
        blaslite::CountScope scope;
        pool.parallel_for(n, [&](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i)
                blaslite::daxpy(0.5, std::span<const double>(x).subspan(i * len, len),
                                std::span<double>(y).subspan(i * len, len));
        });
        return scope.delta();
    };

    parallel::ThreadPool serial(1), wide(5);
    const auto d1 = run(serial);
    const auto dn = run(wide);
    EXPECT_EQ(d1.flops, dn.flops);
    EXPECT_EQ(d1.bytes_read, dn.bytes_read);
    EXPECT_EQ(d1.bytes_written, dn.bytes_written);
    EXPECT_EQ(d1.calls, dn.calls);
    EXPECT_EQ(d1.calls, n);
}

TEST(ThreadPool, FirstExceptionInChunkOrderPropagates) {
    parallel::ThreadPool pool(4);
    try {
        pool.parallel_for(100, [&](std::size_t b, std::size_t) {
            throw std::runtime_error("chunk@" + std::to_string(b));
        });
        FAIL() << "expected exception";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "chunk@0");
    }
}

TEST(ThreadPool, ConcurrentExternalCallersAreSafe) {
    // Simulated-MPI rank threads share the global pool; a second caller must
    // fall back to inline execution, not corrupt the first caller's tasks.
    parallel::ThreadPool pool(4);
    std::vector<std::vector<std::atomic<int>>> hits(6);
    for (auto& h : hits) h = std::vector<std::atomic<int>>(500);
    std::vector<std::thread> callers;
    for (std::size_t t = 0; t < hits.size(); ++t)
        callers.emplace_back([&, t] {
            for (int rep = 0; rep < 20; ++rep)
                pool.parallel_for(hits[t].size(), [&](std::size_t b, std::size_t e) {
                    for (std::size_t i = b; i < e; ++i) hits[t][i].fetch_add(1);
                });
        });
    for (auto& c : callers) c.join();
    for (const auto& h : hits)
        for (const auto& x : h) ASSERT_EQ(x.load(), 20);
}

TEST(ThreadPool, NestedCallsRunInline) {
    parallel::ThreadPool pool(3);
    std::atomic<int> total{0};
    pool.parallel_for(6, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
            pool.parallel_for(4, [&](std::size_t ib, std::size_t ie) {
                total.fetch_add(static_cast<int>(ie - ib));
            });
    });
    EXPECT_EQ(total.load(), 24);
}

TEST(ThreadPool, GlobalPoolResizes) {
    const unsigned before = parallel::num_threads();
    parallel::set_num_threads(3);
    EXPECT_EQ(parallel::num_threads(), 3u);
    parallel::set_num_threads(before);
    EXPECT_EQ(parallel::num_threads(), before);
}

TEST(Scratch, ReusesThreadLocalBuffers) {
    double* first = nullptr;
    {
        parallel::Scratch s(256);
        ASSERT_EQ(s.size(), 256u);
        first = s.data();
        for (std::size_t i = 0; i < 256; ++i) s[i] = static_cast<double>(i);
        EXPECT_EQ(s.span()[255], 255.0);
    }
    {
        // Released buffers go back on this thread's free list; an
        // equal-or-smaller request gets the same allocation back.
        parallel::Scratch s(256);
        EXPECT_EQ(s.data(), first);
    }
}

TEST(Scratch, DistinctLiveScratchesDoNotAlias) {
    parallel::Scratch a(64), b(64);
    EXPECT_NE(a.data(), b.data());
    for (std::size_t i = 0; i < 64; ++i) {
        a[i] = 1.0;
        b[i] = 2.0;
    }
    EXPECT_EQ(a.span()[0], 1.0);
    EXPECT_EQ(b.span()[0], 2.0);
}

} // namespace
