#include "spectral/expansion.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using spectral::Expansion;
using spectral::QuadExpansion;
using spectral::Shape;
using spectral::TriExpansion;

TEST(QuadExpansion, ModeCounts) {
    for (std::size_t P : {1u, 2u, 4u, 8u}) {
        QuadExpansion e(P);
        EXPECT_EQ(e.num_modes(), (P + 1) * (P + 1));
        EXPECT_EQ(e.num_boundary_modes(), 4 + 4 * (P - 1));
        EXPECT_EQ(e.num_modes() - e.interior_begin(), (P - 1) * (P - 1));
    }
}

TEST(TriExpansion, ModeCounts) {
    for (std::size_t P : {1u, 2u, 4u, 7u}) {
        TriExpansion e(P);
        EXPECT_EQ(e.num_modes(), 3 + 3 * (P - 1) + (P - 1) * (P - 2) / 2);
        EXPECT_EQ(e.num_boundary_modes(), 3 + 3 * (P - 1));
    }
}

TEST(QuadExpansion, WeightsSumToReferenceArea) {
    QuadExpansion e(4);
    double s = 0.0;
    for (double w : e.quad_weights()) s += w;
    EXPECT_NEAR(s, 4.0, 1e-12);
}

TEST(TriExpansion, WeightsSumToReferenceArea) {
    TriExpansion e(4);
    double s = 0.0;
    for (double w : e.quad_weights()) s += w;
    EXPECT_NEAR(s, 2.0, 1e-12);
}

/// Every mode of the collapsed triangle expansion must be a genuine
/// polynomial in (xi1, xi2): vertex modes reproduce the barycentric hats.
TEST(TriExpansion, VertexModesAreBarycentric) {
    TriExpansion e(5);
    for (std::size_t q = 0; q < e.num_quad(); ++q) {
        const double x1 = e.xi1(q);
        const double x2 = e.xi2(q);
        EXPECT_NEAR(e.basis()(q, 0), -0.5 * (x1 + x2), 1e-12);  // v0
        EXPECT_NEAR(e.basis()(q, 1), 0.5 * (1.0 + x1), 1e-12);  // v1
        EXPECT_NEAR(e.basis()(q, 2), 0.5 * (1.0 + x2), 1e-12);  // v2
    }
}

/// The constant function is exactly representable: v0 + v1 + v2 (+ v3) = 1,
/// and its xi-derivatives vanish.
class PartitionOfUnity : public ::testing::TestWithParam<std::tuple<Shape, int>> {};

TEST_P(PartitionOfUnity, VertexModesSumToOne) {
    const auto [shape, p] = GetParam();
    const auto e = spectral::make_expansion(shape, static_cast<std::size_t>(p));
    const std::size_t nv = e->num_vertices();
    for (std::size_t q = 0; q < e->num_quad(); ++q) {
        double s = 0.0, d1 = 0.0, d2 = 0.0;
        for (std::size_t v = 0; v < nv; ++v) {
            s += e->basis()(q, e->vertex_mode(v));
            d1 += e->dbasis_dxi1()(q, e->vertex_mode(v));
            d2 += e->dbasis_dxi2()(q, e->vertex_mode(v));
        }
        EXPECT_NEAR(s, 1.0, 1e-11);
        EXPECT_NEAR(d1, 0.0, 1e-10);
        EXPECT_NEAR(d2, 0.0, 1e-10);
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, PartitionOfUnity,
                         ::testing::Combine(::testing::Values(Shape::Quad, Shape::Triangle),
                                            ::testing::Values(1, 2, 3, 5, 8)));

/// xi-derivative tables must be consistent with the basis: differentiate a
/// random modal combination and compare with finite differences of the
/// interpolated polynomial... easier: integrate d/dxi1 of each mode against 1
/// and compare with boundary evaluations via the divergence theorem on the
/// reference square (quads, where the geometry is trivial).
TEST(QuadExpansion, DerivativeTableMatchesFiniteDifference) {
    const std::size_t P = 4;
    // Evaluate via two expansions at slightly different quadrature orders is
    // awkward; instead check d/dxi of the *monomial reproduction*: the field
    // xi1 is exactly representable; its gradient must be (1, 0).
    QuadExpansion e(P);
    // Find coefficients for xi1: v0..v3 at (-1,-1),(1,-1),(1,1),(-1,1) give
    // xi1 = -.5v0 ... use vertex values: xi1 = sum_v xi1(v) * hat_v.
    std::vector<double> coef(e.num_modes(), 0.0);
    const double vx[4] = {-1.0, 1.0, 1.0, -1.0};
    for (std::size_t v = 0; v < 4; ++v) coef[e.vertex_mode(v)] = vx[v];
    for (std::size_t q = 0; q < e.num_quad(); ++q) {
        double val = 0.0, d1 = 0.0, d2 = 0.0;
        for (std::size_t m = 0; m < e.num_modes(); ++m) {
            val += e.basis()(q, m) * coef[m];
            d1 += e.dbasis_dxi1()(q, m) * coef[m];
            d2 += e.dbasis_dxi2()(q, m) * coef[m];
        }
        EXPECT_NEAR(val, e.xi1(q), 1e-12);
        EXPECT_NEAR(d1, 1.0, 1e-11);
        EXPECT_NEAR(d2, 0.0, 1e-11);
    }
}

TEST(TriExpansion, LinearFieldReproduction) {
    const std::size_t P = 3;
    TriExpansion e(P);
    // xi1 at the vertices (-1,-1),(1,-1),(-1,1): -1, 1, -1.
    std::vector<double> coef(e.num_modes(), 0.0);
    coef[0] = -1.0;
    coef[1] = 1.0;
    coef[2] = -1.0;
    for (std::size_t q = 0; q < e.num_quad(); ++q) {
        double val = 0.0, d1 = 0.0, d2 = 0.0;
        for (std::size_t m = 0; m < e.num_modes(); ++m) {
            val += e.basis()(q, m) * coef[m];
            d1 += e.dbasis_dxi1()(q, m) * coef[m];
            d2 += e.dbasis_dxi2()(q, m) * coef[m];
        }
        EXPECT_NEAR(val, e.xi1(q), 1e-11);
        EXPECT_NEAR(d1, 1.0, 1e-10);
        EXPECT_NEAR(d2, 0.0, 1e-10);
    }
}

/// Edge traces of the two shapes must match mode-for-mode so tri/quad meshes
/// conform: sample the bottom edge of each (a straight line in both) and
/// compare the 1-D trace of edge mode j with the 1-D modified basis.
TEST(Expansion, SharedEdgeTraceConvention) {
    // Both shapes' e0 runs v0 -> v1 along xi2 = -1 with parameter xi1.
    // Interior edge mode j must trace to the 1-D bubble psi_j.
    const std::size_t P = 5;
    QuadExpansion qe(P);
    TriExpansion te(P);
    // The quadrature points of each expansion do not include xi2 = -1, so we
    // check indirectly: the bubble trace vanishes at the endpoints and is
    // symmetric/antisymmetric per j.  Here we verify both shapes assign the
    // same edge_vertices convention.
    EXPECT_EQ(qe.edge_vertices(0)[0], 0u);
    EXPECT_EQ(qe.edge_vertices(0)[1], 1u);
    EXPECT_EQ(te.edge_vertices(0)[0], 0u);
    EXPECT_EQ(te.edge_vertices(0)[1], 1u);
    EXPECT_EQ(te.edge_vertices(2)[0], 0u);
    EXPECT_EQ(te.edge_vertices(2)[1], 2u);
}

TEST(Expansion, FactoryCachesInstances) {
    const auto a = spectral::make_expansion(Shape::Quad, 4);
    const auto b = spectral::make_expansion(Shape::Quad, 4);
    const auto c = spectral::make_expansion(Shape::Triangle, 4);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_NE(a.get(), c.get());
}

} // namespace
