#include "spectral/basis1d.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using spectral::edge_reversal_sign;
using spectral::modal_basis;
using spectral::modal_basis_derivative;

TEST(ModalBasis1d, VertexModesAreLinearHats) {
    const std::size_t P = 6;
    for (double z : {-1.0, -0.5, 0.0, 0.7, 1.0}) {
        EXPECT_NEAR(modal_basis(0, P, z), 0.5 * (1.0 - z), 1e-15);
        EXPECT_NEAR(modal_basis(P, P, z), 0.5 * (1.0 + z), 1e-15);
    }
}

TEST(ModalBasis1d, InteriorModesVanishAtEndpoints) {
    const std::size_t P = 8;
    for (std::size_t p = 1; p < P; ++p) {
        EXPECT_NEAR(modal_basis(p, P, -1.0), 0.0, 1e-14);
        EXPECT_NEAR(modal_basis(p, P, 1.0), 0.0, 1e-14);
    }
}

TEST(ModalBasis1d, PartitionAtVertices) {
    // Vertex modes sum to 1 everywhere (the linear part of the hierarchy).
    const std::size_t P = 4;
    for (double z = -1.0; z <= 1.0; z += 0.25)
        EXPECT_NEAR(modal_basis(0, P, z) + modal_basis(P, P, z), 1.0, 1e-14);
}

TEST(ModalBasis1d, DerivativeMatchesFiniteDifference) {
    const std::size_t P = 7;
    const double h = 1e-6;
    for (std::size_t p = 0; p <= P; ++p) {
        for (double z : {-0.8, -0.2, 0.4, 0.9}) {
            const double fd = (modal_basis(p, P, z + h) - modal_basis(p, P, z - h)) / (2.0 * h);
            EXPECT_NEAR(modal_basis_derivative(p, P, z), fd, 1e-7) << "p=" << p << " z=" << z;
        }
    }
}

TEST(ModalBasis1d, ReversalSymmetry) {
    // psi_j(-z) = edge_reversal_sign(j) * psi_j(z) for interior modes.
    const std::size_t P = 9;
    for (std::size_t j = 1; j < P; ++j) {
        for (double z : {0.15, 0.6, 0.95}) {
            EXPECT_NEAR(modal_basis(j, P, -z), edge_reversal_sign(j) * modal_basis(j, P, z),
                        1e-13)
                << "j=" << j;
        }
    }
}

TEST(ModalBasis1d, ReversalSignValues) {
    EXPECT_DOUBLE_EQ(edge_reversal_sign(1), 1.0);
    EXPECT_DOUBLE_EQ(edge_reversal_sign(2), -1.0);
    EXPECT_DOUBLE_EQ(edge_reversal_sign(3), 1.0);
    EXPECT_DOUBLE_EQ(edge_reversal_sign(4), -1.0);
}

} // namespace
