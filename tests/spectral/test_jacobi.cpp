#include "spectral/jacobi.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

namespace {

using spectral::gauss_jacobi;
using spectral::gauss_legendre;
using spectral::gauss_lobatto;
using spectral::gauss_lobatto_jacobi;
using spectral::jacobi;
using spectral::jacobi_derivative;

TEST(Jacobi, LowOrderClosedForms) {
    // P_0 = 1, P_1^{a,b}(x) = ((a - b) + (a + b + 2) x) / 2.
    for (double x : {-0.9, -0.3, 0.0, 0.5, 1.0}) {
        EXPECT_DOUBLE_EQ(jacobi(0, 1.0, 1.0, x), 1.0);
        EXPECT_NEAR(jacobi(1, 0.0, 0.0, x), x, 1e-14);
        EXPECT_NEAR(jacobi(1, 1.0, 1.0, x), 2.0 * x, 1e-14);
        // Legendre P_2 = (3x^2 - 1)/2.
        EXPECT_NEAR(jacobi(2, 0.0, 0.0, x), 0.5 * (3.0 * x * x - 1.0), 1e-13);
    }
}

TEST(Jacobi, EndpointValues) {
    // P_n^{a,b}(1) = C(n + a, n).
    EXPECT_NEAR(jacobi(3, 0.0, 0.0, 1.0), 1.0, 1e-13);
    EXPECT_NEAR(jacobi(3, 1.0, 1.0, 1.0), 4.0, 1e-13);       // C(4,3)
    EXPECT_NEAR(jacobi(2, 2.0, 0.0, 1.0), 6.0, 1e-13);       // C(4,2)
    // Symmetry: P_n^{a,b}(-x) = (-1)^n P_n^{b,a}(x).
    for (std::size_t n = 0; n <= 6; ++n) {
        const double lhs = jacobi(n, 1.0, 2.0, -0.37);
        const double rhs = (n % 2 ? -1.0 : 1.0) * jacobi(n, 2.0, 1.0, 0.37);
        EXPECT_NEAR(lhs, rhs, 1e-12);
    }
}

TEST(Jacobi, DerivativeMatchesFiniteDifference) {
    const double h = 1e-6;
    for (std::size_t n : {1u, 2u, 5u, 9u}) {
        for (double x : {-0.7, 0.1, 0.6}) {
            const double fd =
                (jacobi(n, 1.0, 0.0, x + h) - jacobi(n, 1.0, 0.0, x - h)) / (2.0 * h);
            EXPECT_NEAR(jacobi_derivative(n, 1.0, 0.0, x), fd, 1e-6);
        }
    }
}

/// Orthogonality of P_m, P_n under the (1-x)^a (1+x)^b weight, checked with a
/// Gauss rule of sufficient degree.
class JacobiOrthogonality
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(JacobiOrthogonality, PolynomialsAreOrthogonal) {
    const auto [a, b] = GetParam();
    const auto rule = gauss_jacobi(16, a, b);
    for (std::size_t m = 0; m <= 8; ++m) {
        for (std::size_t n = 0; n < m; ++n) {
            double s = 0.0;
            for (std::size_t q = 0; q < rule.size(); ++q)
                s += rule.weights[q] * jacobi(m, a, b, rule.points[q]) *
                     jacobi(n, a, b, rule.points[q]);
            EXPECT_NEAR(s, 0.0, 1e-11) << "a=" << a << " b=" << b << " m=" << m << " n=" << n;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Weights, JacobiOrthogonality,
                         ::testing::Values(std::tuple{0.0, 0.0}, std::tuple{1.0, 0.0},
                                           std::tuple{1.0, 1.0}, std::tuple{3.0, 1.0},
                                           std::tuple{2.0, 0.0}));

double integrate(const spectral::QuadratureRule& rule,
                 const std::function<double(double)>& f) {
    double s = 0.0;
    for (std::size_t q = 0; q < rule.size(); ++q) s += rule.weights[q] * f(rule.points[q]);
    return s;
}

TEST(GaussJacobi, ExactForPolynomialsUpToDegree) {
    // n-point Gauss is exact to degree 2n-1 under its weight.
    const std::size_t n = 5;
    const auto rule = gauss_legendre(n);
    // int_{-1}^{1} x^k dx = 2/(k+1) for even k.
    for (std::size_t k = 0; k <= 2 * n - 1; ++k) {
        const double exact = (k % 2 == 0) ? 2.0 / static_cast<double>(k + 1) : 0.0;
        EXPECT_NEAR(integrate(rule, [k](double x) { return std::pow(x, k); }), exact, 1e-12)
            << "k=" << k;
    }
}

TEST(GaussJacobi, WeightedMomentAlpha1) {
    // int (1-x) x^0 = 2; int (1-x) x = -2/3... compute a couple explicitly.
    const auto rule = gauss_jacobi(6, 1.0, 0.0);
    EXPECT_NEAR(integrate(rule, [](double) { return 1.0; }), 2.0, 1e-12);
    EXPECT_NEAR(integrate(rule, [](double x) { return x; }), -2.0 / 3.0, 1e-12);
    EXPECT_NEAR(integrate(rule, [](double x) { return x * x; }), 2.0 / 3.0, 1e-12);
}

TEST(GaussLobatto, IncludesEndpointsAndIsExact) {
    const std::size_t n = 6;
    const auto rule = gauss_lobatto(n);
    EXPECT_DOUBLE_EQ(rule.points.front(), -1.0);
    EXPECT_DOUBLE_EQ(rule.points.back(), 1.0);
    // Exact to degree 2n-3.
    for (std::size_t k = 0; k <= 2 * n - 3; ++k) {
        const double exact = (k % 2 == 0) ? 2.0 / static_cast<double>(k + 1) : 0.0;
        EXPECT_NEAR(integrate(rule, [k](double x) { return std::pow(x, k); }), exact, 1e-11);
    }
}

TEST(GaussLobattoJacobi, Alpha1WeightIsExact) {
    const std::size_t n = 7;
    const auto rule = gauss_lobatto_jacobi(n, 1.0, 0.0);
    // int (1-x) x^k for k = 0..3: 2, -2/3, 2/3, -2/5.
    const double exact[] = {2.0, -2.0 / 3.0, 2.0 / 3.0, -2.0 / 5.0};
    for (std::size_t k = 0; k < 4; ++k)
        EXPECT_NEAR(integrate(rule, [k](double x) { return std::pow(x, k); }), exact[k], 1e-11);
}

TEST(GaussJacobi, PointsSortedAndInsideInterval) {
    for (std::size_t n : {2u, 5u, 12u, 20u}) {
        const auto rule = gauss_jacobi(n, 1.0, 0.0);
        for (std::size_t q = 0; q < n; ++q) {
            EXPECT_GT(rule.points[q], -1.0);
            EXPECT_LT(rule.points[q], 1.0);
            EXPECT_GT(rule.weights[q], 0.0);
            if (q) {
                EXPECT_LT(rule.points[q - 1], rule.points[q]);
            }
        }
    }
}

} // namespace
