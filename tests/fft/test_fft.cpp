#include "fft/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

namespace {

using fft::cplx;

std::vector<cplx> random_signal(std::size_t n, unsigned seed) {
    std::mt19937 gen(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<cplx> v(n);
    for (auto& x : v) x = cplx{dist(gen), dist(gen)};
    return v;
}

/// Brute-force DFT for reference.
std::vector<cplx> naive_dft(const std::vector<cplx>& x) {
    const std::size_t n = x.size();
    std::vector<cplx> out(n, cplx{0.0, 0.0});
    for (std::size_t k = 0; k < n; ++k)
        for (std::size_t j = 0; j < n; ++j)
            out[k] += x[j] * std::polar(1.0, -2.0 * std::numbers::pi *
                                                 static_cast<double>(j * k) /
                                                 static_cast<double>(n));
    return out;
}

class FftSizes : public ::testing::TestWithParam<int> {};

TEST_P(FftSizes, MatchesNaiveDft) {
    const auto n = static_cast<std::size_t>(GetParam());
    auto x = random_signal(n, 1);
    const auto ref = naive_dft(x);
    fft::Plan plan(n);
    plan.forward(x);
    for (std::size_t k = 0; k < n; ++k) {
        EXPECT_NEAR(x[k].real(), ref[k].real(), 1e-9 * static_cast<double>(n)) << n << " " << k;
        EXPECT_NEAR(x[k].imag(), ref[k].imag(), 1e-9 * static_cast<double>(n));
    }
}

TEST_P(FftSizes, RoundTripIsIdentity) {
    const auto n = static_cast<std::size_t>(GetParam());
    const auto x0 = random_signal(n, 2);
    auto x = x0;
    fft::Plan plan(n);
    plan.forward(x);
    plan.inverse(x);
    for (std::size_t k = 0; k < n; ++k) {
        EXPECT_NEAR(x[k].real(), x0[k].real(), 1e-10 * static_cast<double>(n));
        EXPECT_NEAR(x[k].imag(), x0[k].imag(), 1e-10 * static_cast<double>(n));
    }
}

TEST_P(FftSizes, ParsevalHolds) {
    const auto n = static_cast<std::size_t>(GetParam());
    auto x = random_signal(n, 3);
    double time_energy = 0.0;
    for (const auto& v : x) time_energy += std::norm(v);
    fft::Plan plan(n);
    plan.forward(x);
    double freq_energy = 0.0;
    for (const auto& v : x) freq_energy += std::norm(v);
    EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n),
                1e-8 * static_cast<double>(n * n));
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwoAndOdd, FftSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256, 3, 5, 6, 7, 12, 15, 100));

TEST(Fft, DeltaTransformsToConstant) {
    std::vector<cplx> x(16, cplx{0.0, 0.0});
    x[0] = cplx{1.0, 0.0};
    fft::forward(x);
    for (const auto& v : x) {
        EXPECT_NEAR(v.real(), 1.0, 1e-12);
        EXPECT_NEAR(v.imag(), 0.0, 1e-12);
    }
}

TEST(Fft, Linearity) {
    const std::size_t n = 32;
    const auto a = random_signal(n, 4);
    const auto b = random_signal(n, 5);
    std::vector<cplx> sum(n);
    for (std::size_t i = 0; i < n; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
    auto fa = a, fb = b, fsum = sum;
    fft::Plan plan(n);
    plan.forward(fa);
    plan.forward(fb);
    plan.forward(fsum);
    for (std::size_t k = 0; k < n; ++k) {
        const cplx expect = 2.0 * fa[k] + 3.0 * fb[k];
        EXPECT_NEAR(fsum[k].real(), expect.real(), 1e-9);
        EXPECT_NEAR(fsum[k].imag(), expect.imag(), 1e-9);
    }
}

TEST(Rfft, RoundTripAndHermitianSymmetry) {
    const std::size_t n = 48;
    std::mt19937 gen(6);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<double> x(n);
    for (auto& v : x) v = dist(gen);
    fft::Plan plan(n);
    const auto spec = fft::rfft(plan, x);
    ASSERT_EQ(spec.size(), n / 2 + 1);
    // DC and Nyquist must be real for a real signal.
    EXPECT_NEAR(spec[0].imag(), 0.0, 1e-10);
    EXPECT_NEAR(spec[n / 2].imag(), 0.0, 1e-10);
    const auto back = fft::irfft(plan, spec);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], x[i], 1e-10);
}

TEST(Rfft, SingleHarmonicLandsInOneBin) {
    const std::size_t n = 64;
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = std::cos(2.0 * std::numbers::pi * 5.0 * static_cast<double>(i) /
                        static_cast<double>(n));
    fft::Plan plan(n);
    const auto spec = fft::rfft(plan, x);
    for (std::size_t k = 0; k <= n / 2; ++k) {
        const double mag = std::abs(spec[k]);
        if (k == 5) {
            EXPECT_NEAR(mag, static_cast<double>(n) / 2.0, 1e-9);
        } else {
            EXPECT_NEAR(mag, 0.0, 1e-9);
        }
    }
}

TEST(Fft, FlopsModelIsMonotonic) {
    EXPECT_EQ(fft::fft_flops(1), 0u);
    EXPECT_LT(fft::fft_flops(64), fft::fft_flops(128));
    EXPECT_NEAR(static_cast<double>(fft::fft_flops(1024)), 5.0 * 1024 * 10, 1.0);
}

} // namespace
