/// Golden-equivalence and implementation-property tests for the pluggable
/// compute backend (compute::Backend).
///
/// The sum-factorised engine must reproduce the dense reference within
/// documented tolerance bounds across orders 2-12, element groupings
/// (single-group quads, triangles-only, mixed with a non-contiguous quad
/// group) and input seeds: the direct transforms differ only by dgemm
/// contraction order (~1e-14 on O(1) fields, bounded here at a scaled
/// 1e-12), while projection passes the weak inner product through the
/// elemental mass solve, whose condition number (~1e3 at order 8) amplifies
/// that rounding — its documented bound is a scaled 1e-10.  The fused
/// convective term uses one shared implementation, so it must be
/// bit-identical across backends.  Operation counts must show the dense
/// O(P^4) -> sum-factorised O(P^3) reduction exactly, and a checkpoint
/// taken under one backend must refuse to restore under the other (the
/// resolved backend name is folded into every solver's options
/// fingerprint).
#include "compute/backend_impl.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "blaslite/counters.hpp"
#include "ckpt/checkpoint.hpp"
#include "mesh/generators.hpp"
#include "nektar/discretization.hpp"
#include "nektar/ns_serial.hpp"

namespace {

using compute::BackendKind;
using nektar::Discretization;
using nektar::ElemGroup;

/// 4x2 vertex strip with interleaved shapes: Quad, Tri, Tri, Quad.  The quad
/// group {0, 3} is non-contiguous, so the sum-factorised path must land its
/// per-element outputs in scattered field blocks; the tri group {1, 2} takes
/// the dense fallback inside SumFactorBackend.
mesh::Mesh mixed_mesh() {
    std::vector<mesh::Vertex> v;
    for (int y = 0; y <= 1; ++y)
        for (int x = 0; x <= 3; ++x)
            v.push_back({static_cast<double>(x), static_cast<double>(y)});
    std::vector<mesh::Element> e(4);
    e[0] = {spectral::Shape::Quad, {0, 1, 5, 4}};
    e[1] = {spectral::Shape::Triangle, {1, 2, 6, -1}};
    e[2] = {spectral::Shape::Triangle, {1, 6, 5, -1}};
    e[3] = {spectral::Shape::Quad, {2, 3, 7, 6}};
    return mesh::Mesh(std::move(v), std::move(e));
}

std::vector<std::shared_ptr<Discretization>> test_discs(std::size_t order) {
    std::vector<std::shared_ptr<Discretization>> d;
    d.push_back(std::make_shared<Discretization>(
        std::make_shared<mesh::Mesh>(mesh::rectangle_quads(4, 3, 0.0, 2.0, 0.0, 1.0)),
        order));
    d.push_back(std::make_shared<Discretization>(
        std::make_shared<mesh::Mesh>(mesh::rectangle_tris(3, 3, 0.0, 1.0, 0.0, 1.0)), order));
    d.push_back(
        std::make_shared<Discretization>(std::make_shared<mesh::Mesh>(mixed_mesh()), order));
    return d;
}

std::vector<double> test_field(std::size_t n, unsigned seed) {
    std::vector<double> f(n);
    for (std::size_t i = 0; i < n; ++i)
        f[i] = std::sin(0.37 * static_cast<double>(i + seed)) +
               0.25 * std::cos(1.13 * static_cast<double>(i * 7 + seed));
    return f;
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
    EXPECT_EQ(a.size(), b.size());
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

double max_abs(std::span<const double> a) {
    double m = 0.0;
    for (const double v : a) m = std::max(m, std::abs(v));
    return m;
}

class BackendEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BackendEquivalence, SumFactMatchesDenseOnEveryGroupShape) {
    const std::size_t order = GetParam();
    const std::size_t nplanes = 3;
    for (const auto& disc : test_discs(order)) {
        const std::size_t nm = disc->modal_size() * nplanes;
        const std::size_t nq = disc->quad_size() * nplanes;
        for (const unsigned seed : {11u, 29u, 47u}) {
            const auto modal = test_field(nm, seed);
            const auto quad_in = test_field(nq, seed + 1);

            std::vector<double> qd(nq), qs(nq);
            disc->to_quad_planes(modal, qd, nplanes, BackendKind::Dense);
            disc->to_quad_planes(modal, qs, nplanes, BackendKind::SumFactor);
            const double direct_tol = 1e-12 * std::max(1.0, max_abs(qd));
            EXPECT_LE(max_abs_diff(qd, qs), direct_tol)
                << "to_quad order " << order << " seed " << seed;

            std::vector<double> rd(nm, 0.0), rs(nm, 0.0);
            disc->weak_inner_planes(quad_in, rd, nplanes, BackendKind::Dense);
            disc->weak_inner_planes(quad_in, rs, nplanes, BackendKind::SumFactor);
            EXPECT_LE(max_abs_diff(rd, rs), 1e-12 * std::max(1.0, max_abs(rd)))
                << "weak_inner order " << order << " seed " << seed;

            std::vector<double> dxd(nq), dyd(nq), dxs(nq), dys(nq);
            disc->grad_from_modal_planes(modal, dxd, dyd, nplanes, BackendKind::Dense);
            disc->grad_from_modal_planes(modal, dxs, dys, nplanes, BackendKind::SumFactor);
            const double grad_tol =
                1e-12 * std::max({1.0, max_abs(dxd), max_abs(dyd)});
            EXPECT_LE(max_abs_diff(dxd, dxs), grad_tol)
                << "grad dx order " << order << " seed " << seed;
            EXPECT_LE(max_abs_diff(dyd, dys), grad_tol)
                << "grad dy order " << order << " seed " << seed;

            // Projection routes the weak inner product through the elemental
            // mass-matrix Cholesky solve, which amplifies contraction-order
            // rounding by the mass condition number: documented bound 1e-10.
            std::vector<double> pd(nm), ps(nm);
            disc->project_planes(quad_in, pd, nplanes, BackendKind::Dense);
            disc->project_planes(quad_in, ps, nplanes, BackendKind::SumFactor);
            EXPECT_LE(max_abs_diff(pd, ps), 1e-10 * std::max(1.0, max_abs(pd)))
                << "project order " << order << " seed " << seed;
        }
    }
}

TEST_P(BackendEquivalence, ConvectIsBitIdenticalAcrossBackends) {
    // The fused convective term lives in the shared Backend base (the
    // collocation derivative is already O(P^3)), so both backends must give
    // byte-identical results, not merely tolerance-equal.  Quad meshes only:
    // convect_planes rejects non-tensor groups.
    const std::size_t order = GetParam();
    const std::size_t nplanes = 2;
    const auto disc = std::make_shared<Discretization>(
        std::make_shared<mesh::Mesh>(mesh::rectangle_quads(3, 2, 0.0, 1.0, 0.0, 1.0)), order);
    const std::size_t nq = disc->quad_size() * nplanes;
    const auto u = test_field(nq, 3);
    const auto v = test_field(nq, 5);
    std::vector<double> nud(nq), nvd(nq), nus(nq), nvs(nq);
    disc->convect_planes(u, v, u, v, nud, nvd, nplanes, BackendKind::Dense);
    disc->convect_planes(u, v, u, v, nus, nvs, nplanes, BackendKind::SumFactor);
    EXPECT_EQ(0, std::memcmp(nud.data(), nus.data(), nud.size() * sizeof(double)));
    EXPECT_EQ(0, std::memcmp(nvd.data(), nvs.data(), nvd.size() * sizeof(double)));
}

INSTANTIATE_TEST_SUITE_P(Orders, BackendEquivalence,
                         ::testing::Values<std::size_t>(2, 4, 6, 8, 10, 12));

/// blaslite's dgemm charge for an m-by-n result over a k-deep contraction
/// (2mnk multiplies/adds plus the m*n beta pass).
std::uint64_t gemm_flops(std::uint64_t m, std::uint64_t n, std::uint64_t k) {
    return 2 * m * n * k + m * n;
}

TEST(BackendOpCounts, SumFactorisationCutsTransformFlopsToP3) {
    // On an all-quad mesh the flop counts of both engines are closed-form:
    //   dense   to_quad: one dgemm per group, nq-by-cols over nm
    //   sumfact to_quad: stage A is one dgemm n1-by-(m1*cols) over m1, stage
    //           B is one n1-by-n1-over-m1 dgemm per element column
    //           (nq = n1^2, nm = m1^2 — O(P^3) per column, not O(P^4))
    // and weak_inner is the transpose of the same pipeline.  The gather /
    // scatter / weight-fold passes charge nothing on either engine (exactly
    // like the dense pack/unpack), so the counters compare pure dgemm work.
    const std::size_t nplanes = 2;
    double ratio_low = 0.0, ratio_high = 0.0;
    for (const std::size_t order : {4ul, 8ul, 12ul}) {
        const auto disc = std::make_shared<Discretization>(
            std::make_shared<mesh::Mesh>(mesh::rectangle_quads(3, 2, 0.0, 1.0, 0.0, 1.0)),
            order);
        ASSERT_EQ(disc->groups().size(), 1u);
        const spectral::TensorBasis* tb = disc->groups()[0].exp->tensor_basis();
        ASSERT_NE(tb, nullptr);
        const std::uint64_t n1 = tb->nq1d, m1 = tb->nm1d;
        const std::uint64_t cols = disc->num_elements() * nplanes;
        const std::uint64_t nm = m1 * m1, nq = n1 * n1;

        const auto modal = test_field(disc->modal_size() * nplanes, 7);
        std::vector<double> quad(disc->quad_size() * nplanes);
        std::vector<double> rhs(disc->modal_size() * nplanes, 0.0);

        blaslite::OpCounts dense_tq, sf_tq, dense_wi, sf_wi;
        {
            blaslite::CountScope s;
            disc->to_quad_planes(modal, quad, nplanes, BackendKind::Dense);
            dense_tq = s.delta();
        }
        {
            blaslite::CountScope s;
            disc->to_quad_planes(modal, quad, nplanes, BackendKind::SumFactor);
            sf_tq = s.delta();
        }
        {
            blaslite::CountScope s;
            disc->weak_inner_planes(quad, rhs, nplanes, BackendKind::Dense);
            dense_wi = s.delta();
        }
        {
            blaslite::CountScope s;
            disc->weak_inner_planes(quad, rhs, nplanes, BackendKind::SumFactor);
            sf_wi = s.delta();
        }

        EXPECT_EQ(dense_tq.flops, gemm_flops(nq, cols, nm)) << "order " << order;
        EXPECT_EQ(sf_tq.flops,
                  gemm_flops(n1, m1 * cols, m1) + cols * gemm_flops(n1, n1, m1))
            << "order " << order;
        EXPECT_EQ(dense_wi.flops, gemm_flops(nm, cols, nq)) << "order " << order;
        EXPECT_EQ(sf_wi.flops,
                  gemm_flops(m1, n1 * cols, n1) + cols * gemm_flops(m1, m1, n1))
            << "order " << order;
        EXPECT_LT(sf_tq.flops, dense_tq.flops) << "order " << order;

        const double ratio =
            static_cast<double>(dense_tq.flops) / static_cast<double>(sf_tq.flops);
        if (order == 4) ratio_low = ratio;
        if (order == 12) ratio_high = ratio;
    }
    // O(P^4)/O(P^3) grows ~linearly in P: the advantage at order 12 must be
    // decisively larger than at order 4, pinning the asymptotic behaviour
    // rather than a fixed constant.
    EXPECT_GT(ratio_high, 2.0 * ratio_low);
}

TEST(BackendPlans, FactorisedGroupCoverageMatchesTensorBases) {
    // num_factorised_groups() must equal the number of element groups with a
    // tensor factorisation: all of an all-quad mesh, none of an all-tri
    // mesh, and exactly the quad group of the mixed mesh (whose tri group
    // takes the dense fallback).
    for (const auto& disc : test_discs(5)) {
        const auto& engine = disc->engine(BackendKind::SumFactor);
        const auto* sf = dynamic_cast<const compute::SumFactorBackend*>(&engine);
        ASSERT_NE(sf, nullptr);
        std::size_t with_tensor = 0;
        for (const ElemGroup& g : disc->groups())
            if (g.exp->tensor_basis() != nullptr) ++with_tensor;
        EXPECT_EQ(sf->num_factorised_groups(), with_tensor);
    }
    // The three meshes cover the full spectrum explicitly.
    const auto discs = test_discs(5);
    const auto count = [](const std::shared_ptr<Discretization>& d) {
        return dynamic_cast<const compute::SumFactorBackend&>(d->engine(BackendKind::SumFactor))
            .num_factorised_groups();
    };
    EXPECT_EQ(count(discs[0]), discs[0]->groups().size()); // quads: all
    EXPECT_EQ(count(discs[1]), 0u);                        // tris: none
    EXPECT_GT(count(discs[2]), 0u);                        // mixed: quad group only
    EXPECT_LT(count(discs[2]), discs[2]->groups().size());
}

TEST(BackendFingerprint, CheckpointRefusesCrossBackendRestore) {
    // Wall everywhere except an outflow face: an all-Neumann pressure
    // Poisson would need a pinned DOF.
    auto m = mesh::rectangle_quads(2, 2, 0.0, 1.0, 0.0, 1.0);
    m.tag_boundary(mesh::BoundaryTag::Wall, [](double, double) { return true; });
    m.tag_boundary(mesh::BoundaryTag::Outflow, [](double x, double) { return x > 1.0 - 1e-9; });
    const auto disc =
        std::make_shared<Discretization>(std::make_shared<mesh::Mesh>(std::move(m)), 4);
    nektar::SerialNsOptions opts;
    opts.dt = 1e-3;
    opts.viscosity = 0.01;
    const auto init_u = [](double x, double y) { return std::sin(x) * std::cos(y); };
    const auto init_v = [](double x, double y) { return -std::cos(x) * std::sin(y); };

    opts.backend = BackendKind::Dense;
    nektar::SerialNS2d dense_ns(disc, opts);
    dense_ns.set_initial(init_u, init_v);
    dense_ns.step();
    const ckpt::Checkpoint c = dense_ns.checkpoint();

    // Same backend: the fingerprint matches and the restore goes through.
    nektar::SerialNS2d dense_twin(disc, opts);
    dense_twin.set_initial(init_u, init_v);
    EXPECT_NO_THROW(dense_twin.restore(c));

    // Cross-backend: the resolved backend name is part of the options
    // fingerprint, so the restore must refuse outright.
    opts.backend = BackendKind::SumFactor;
    nektar::SerialNS2d sumfact_ns(disc, opts);
    sumfact_ns.set_initial(init_u, init_v);
    EXPECT_THROW(sumfact_ns.restore(c), ckpt::Error);

    // BackendKind::Auto resolves to the discretization default (dense here,
    // absent $REPRO_BACKEND overrides), so an Auto solver accepts a
    // checkpoint taken under the matching concrete kind.
    opts.backend = BackendKind::Auto;
    nektar::SerialNS2d auto_ns(disc, opts);
    auto_ns.set_initial(init_u, init_v);
    if (disc->backend() == BackendKind::Dense)
        EXPECT_NO_THROW(auto_ns.restore(c));
    else
        EXPECT_THROW(auto_ns.restore(c), ckpt::Error);
}

} // namespace
