#include "ckpt/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

/// Negative-path coverage of the checkpoint container itself: the format
/// must reject — with a diagnostic naming the bad section — every way a
/// file can rot: truncation at any byte, any single flipped byte (the CRCs'
/// job), and a schema version this build does not read.
namespace {

using ckpt::Checkpoint;
using ckpt::Error;
using ckpt::Fingerprint;

/// A small multi-section checkpoint exercising every typed write.
Checkpoint sample() {
    Checkpoint c;
    auto& a = c.add("core");
    a.u32(7);
    a.u64(0x0123456789abcdefull);
    a.i64(-42);
    a.f64(3.14159);
    auto& b = c.add("fields");
    b.f64v(std::vector<double>{1.0, -2.5, 1e-300, 0.0});
    b.str("kovasznay");
    auto& m = c.add("meta");
    m.u64(0xdeadbeefull);
    return c;
}

TEST(CkptFormat, SerializeIsDeterministic) {
    const auto x = sample().serialize();
    const auto y = sample().serialize();
    EXPECT_EQ(x, y);
}

TEST(CkptFormat, RoundTripPreservesSectionsAndValues) {
    const auto bytes = sample().serialize();
    const Checkpoint c = Checkpoint::deserialize(bytes);
    EXPECT_EQ(c.section_names(), (std::vector<std::string>{"core", "fields", "meta"}));

    auto a = c.open("core");
    EXPECT_EQ(a.u32(), 7u);
    EXPECT_EQ(a.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(a.i64(), -42);
    EXPECT_DOUBLE_EQ(a.f64(), 3.14159);
    a.expect_end();

    auto b = c.open("fields");
    EXPECT_EQ(b.f64v(), (std::vector<double>{1.0, -2.5, 1e-300, 0.0}));
    EXPECT_EQ(b.str(), "kovasznay");
    b.expect_end();

    // Re-serialization of the parsed object is byte-identical.
    EXPECT_EQ(c.serialize(), bytes);
}

TEST(CkptFormat, NanAndInfinityRoundTripBitExactly) {
    Checkpoint c;
    auto& w = c.add("x");
    w.f64(std::numeric_limits<double>::quiet_NaN());
    w.f64(std::numeric_limits<double>::infinity());
    const Checkpoint back = Checkpoint::deserialize(c.serialize());
    auto r = back.open("x");
    EXPECT_TRUE(std::isnan(r.f64()));
    EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
}

TEST(CkptFormat, DuplicateSectionThrows) {
    Checkpoint c;
    c.add("twice");
    EXPECT_THROW(c.add("twice"), Error);
}

TEST(CkptFormat, MissingSectionNamesItself) {
    const Checkpoint c = Checkpoint::deserialize(sample().serialize());
    try {
        (void)c.open("nope");
        FAIL() << "open() of a missing section must throw";
    } catch (const Error& e) {
        EXPECT_EQ(e.section(), "nope");
    }
}

TEST(CkptFormat, ReadPastSectionEndThrows) {
    const Checkpoint c = Checkpoint::deserialize(sample().serialize());
    auto m = c.open("meta");
    (void)m.u64();
    try {
        (void)m.u64();
        FAIL() << "reading past the payload must throw";
    } catch (const Error& e) {
        EXPECT_EQ(e.section(), "meta");
    }
}

TEST(CkptFormat, LeftoverBytesFailExpectEnd) {
    const Checkpoint c = Checkpoint::deserialize(sample().serialize());
    auto m = c.open("meta");
    EXPECT_THROW(m.expect_end(), Error);
}

TEST(CkptFormat, WrongSchemaVersionIsRejectedWithDiagnostic) {
    auto bytes = sample().serialize();
    bytes[8] = 0x99; // the schema version is the little-endian u32 after the magic
    try {
        (void)Checkpoint::deserialize(bytes);
        FAIL() << "a future schema version must be rejected";
    } catch (const Error& e) {
        EXPECT_EQ(e.section(), "header");
        EXPECT_NE(std::string(e.what()).find("schema_version"), std::string::npos) << e.what();
    }
}

TEST(CkptFormat, FlippedPayloadByteNamesTheSectionAndCrc) {
    auto bytes = sample().serialize();
    bytes[bytes.size() - 1] ^= 0x01; // last byte: inside "meta"'s payload
    try {
        (void)Checkpoint::deserialize(bytes);
        FAIL() << "a flipped payload byte must fail the CRC";
    } catch (const Error& e) {
        EXPECT_EQ(e.section(), "meta");
        EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos) << e.what();
    }
}

TEST(CkptFormat, TruncationAtEveryLengthIsDetected) {
    const auto bytes = sample().serialize();
    for (std::size_t n = 0; n < bytes.size(); ++n) {
        const std::vector<std::uint8_t> cut(bytes.begin(),
                                            bytes.begin() + static_cast<std::ptrdiff_t>(n));
        EXPECT_THROW((void)Checkpoint::deserialize(cut), Error)
            << "truncation to " << n << " of " << bytes.size() << " bytes parsed";
    }
}

TEST(CkptFormat, EverySingleByteFlipIsDetected) {
    // The corrupt-file fuzz loop: the envelope checks (magic, version,
    // counts, lengths, the trailing-bytes check) and the per-section CRCs
    // must between them catch a flip at *any* offset.
    const auto bytes = sample().serialize();
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        for (const std::uint8_t mask : {std::uint8_t{0x01}, std::uint8_t{0xff}}) {
            auto bad = bytes;
            bad[i] ^= mask;
            EXPECT_THROW((void)Checkpoint::deserialize(bad), Error)
                << "flip of byte " << i << " (mask " << int(mask) << ") parsed";
        }
    }
}

TEST(CkptFormat, FileRoundTripAndTruncatedFile) {
    const std::string path = ::testing::TempDir() + "ckpt_format_test.bin";
    const Checkpoint c = sample();
    c.write_file(path);
    EXPECT_EQ(Checkpoint::read_file(path).serialize(), c.serialize());

    // Rewrite truncated: read_file must refuse it like deserialize does.
    const auto bytes = c.serialize();
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size() / 2, f);
    std::fclose(f);
    EXPECT_THROW((void)Checkpoint::read_file(path), Error);
    std::remove(path.c_str());
}

TEST(CkptFingerprint, StableAndOrderSensitive) {
    Fingerprint a;
    a.add("SerialNS2d").add(std::uint64_t{3}).add(1e-3);
    Fingerprint b;
    b.add("SerialNS2d").add(std::uint64_t{3}).add(1e-3);
    EXPECT_EQ(a.value(), b.value());

    Fingerprint c;
    c.add("SerialNS2d").add(1e-3).add(std::uint64_t{3});
    EXPECT_NE(a.value(), c.value());

    // The string sentinel keeps ("ab", "c") and ("a", "bc") apart.
    Fingerprint d, e;
    d.add("ab").add("c");
    e.add("a").add("bc");
    EXPECT_NE(d.value(), e.value());
}

TEST(CkptCrc, MatchesKnownVector) {
    // CRC-32 (IEEE) of "123456789" is the classic check value 0xcbf43926.
    const std::string s = "123456789";
    EXPECT_EQ(ckpt::crc32({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()}),
              0xcbf43926u);
}

} // namespace
