#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <numbers>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "mesh/generators.hpp"
#include "nektar/ns_ale.hpp"
#include "nektar/ns_fourier.hpp"
#include "nektar/ns_serial.hpp"
#include "perf/report.hpp"

/// The checkpoint/restart property: run N steps; or run k, checkpoint,
/// restore into a fresh solver, run N - k.  Both must end in *byte-identical*
/// state — fields, history ring buffers (the startup-ramp position
/// included), virtual clocks and fault streams for comm-backed solvers, and
/// the canonicalized RunReport — for every solver and every time order.
namespace {

using ckpt::Checkpoint;

netsim::NetworkModel test_net(std::uint64_t fault_seed = 0) {
    netsim::NetworkModel n;
    n.name = "test";
    n.latency_us = 10.0;
    n.bandwidth_mbps = 100.0;
    if (fault_seed != 0) {
        n.fault.seed = fault_seed;
        n.fault.latency_jitter_us = 15.0;
        n.fault.loss_probability = 0.05;
        n.fault.retransmit_timeout_us = 200.0;
    }
    return n;
}

// --- serial ----------------------------------------------------------------

std::shared_ptr<nektar::Discretization> cavity_disc(std::size_t order) {
    auto m = mesh::rectangle_quads(2, 2, 0.0, 1.0, 0.0, 1.0);
    m.tag_boundary(mesh::BoundaryTag::Wall, [](double, double) { return true; });
    return std::make_shared<nektar::Discretization>(std::make_shared<mesh::Mesh>(std::move(m)),
                                                    order);
}

nektar::SerialNsOptions serial_opts(int time_order, double dt = 2e-3) {
    nektar::SerialNsOptions o;
    o.dt = dt;
    o.viscosity = 0.02;
    o.time_order = time_order;
    o.pressure_bc.dirichlet.clear(); // all-wall cavity: pin the pressure
    o.pressure_bc.pin_first_dof = true;
    return o;
}

void taylor_initial(nektar::SerialNS2d& ns) {
    constexpr double pi = std::numbers::pi;
    ns.set_initial([](double x, double y) { return std::sin(pi * x) * std::cos(pi * y); },
                   [](double x, double y) { return -std::cos(pi * x) * std::sin(pi * y); });
}

class SerialRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SerialRoundTrip, RestartIsByteIdentical) {
    const int order = GetParam();
    const int n = 6;
    const auto disc = cavity_disc(4);

    // Uninterrupted reference.
    nektar::SerialNS2d a(disc, serial_opts(order));
    taylor_initial(a);
    for (int s = 0; s < n; ++s) a.step();

    for (const int k : {1, 3}) { // k = 1 lands mid-ramp for order 3
        nektar::SerialNS2d b(disc, serial_opts(order));
        taylor_initial(b);
        for (int s = 0; s < k; ++s) b.step();
        const auto bytes = b.checkpoint().serialize();
        // Serializing the same state twice is byte-deterministic.
        EXPECT_EQ(b.checkpoint().serialize(), bytes);

        nektar::SerialNS2d c(disc, serial_opts(order));
        c.restore(Checkpoint::deserialize(bytes));
        EXPECT_EQ(c.steps_taken(), k);
        for (int s = k; s < n; ++s) c.step();

        EXPECT_EQ(c.checkpoint().serialize(), a.checkpoint().serialize())
            << "order " << order << ", restart at step " << k;
        EXPECT_EQ(c.u_quad(), a.u_quad());
        EXPECT_EQ(c.v_quad(), a.v_quad());
        EXPECT_EQ(c.time(), a.time());
        EXPECT_EQ(c.last_step_order(), a.last_step_order());
        EXPECT_EQ(c.last_velocity_lambda(), a.last_velocity_lambda());

        // Canonicalized RunReports (host-measured wall time masked) agree
        // byte-for-byte.  Both are built back-to-back so the global metrics
        // snapshot folded into each is the same.
        const perf::StageBreakdown bda = a.breakdown();
        const perf::StageBreakdown bdc = c.breakdown();
        const auto repa = perf::report("roundtrip", &bda);
        const auto repc = perf::report("roundtrip", &bdc);
        EXPECT_EQ(repc.to_canonical_json(), repa.to_canonical_json());
        EXPECT_NE(repa.to_canonical_json().find("\"host_seconds\":0"), std::string::npos);
    }
}

INSTANTIATE_TEST_SUITE_P(Orders, SerialRoundTrip, ::testing::Values(1, 2, 3));

TEST(SerialRoundTrip, FingerprintMismatchIsRefusedWithDiagnostic) {
    const auto disc = cavity_disc(4);
    nektar::SerialNS2d a(disc, serial_opts(2));
    taylor_initial(a);
    a.step();
    const auto bytes = a.checkpoint().serialize();

    nektar::SerialNS2d other_dt(disc, serial_opts(2, /*dt=*/1e-3));
    try {
        other_dt.restore(Checkpoint::deserialize(bytes));
        FAIL() << "restore under different options must be refused";
    } catch (const ckpt::Error& e) {
        EXPECT_EQ(e.section(), "meta");
        EXPECT_NE(std::string(e.what()).find("fingerprint"), std::string::npos) << e.what();
    }

    nektar::SerialNsOptions o3 = serial_opts(3);
    nektar::SerialNS2d other_order(disc, o3);
    EXPECT_THROW(other_order.restore(Checkpoint::deserialize(bytes)), ckpt::Error);
}

TEST(SerialRoundTrip, CadenceFiresTheSink) {
    const auto disc = cavity_disc(4);
    nektar::SerialNsOptions o = serial_opts(2);
    o.checkpoint_every = 2;
    nektar::SerialNS2d ns(disc, o);
    taylor_initial(ns);
    std::vector<int> at_steps;
    ns.set_checkpoint_sink([&](const Checkpoint& c) {
        auto r = c.open("core");
        (void)r.f64(); // time
        at_steps.push_back(static_cast<int>(r.i64()));
    });
    for (int s = 0; s < 5; ++s) ns.step();
    EXPECT_EQ(at_steps, (std::vector<int>{2, 4}));
}

/// The regression the startup ramp demands of restart: a run restored
/// mid-ramp (Je still climbing 1, 2, ..., time_order) must run its next
/// step at the *ramp's* effective order — rebuilding that order's Helmholtz
/// operators with the matching gamma0 — not at the steady-state order the
/// constructor warms.
TEST(SerialRoundTrip, MidRampRestartRebuildsEffectiveOrderOperators) {
    const auto disc = cavity_disc(4);
    nektar::SerialNS2d a(disc, serial_opts(3));
    taylor_initial(a);
    a.step(); // ramp step 1 runs at order 1
    EXPECT_EQ(a.velocity_solver_cache().built_orders(), (std::vector<int>{1, 3}));
    const auto bytes = a.checkpoint().serialize();
    a.step(); // ramp step 2 runs at order 2
    EXPECT_EQ(a.last_step_order(), 2);
    EXPECT_EQ(a.velocity_solver_cache().built_orders(), (std::vector<int>{1, 2, 3}));

    nektar::SerialNS2d c(disc, serial_opts(3));
    c.restore(Checkpoint::deserialize(bytes));
    // Fresh solver: only the constructor-warmed steady-state operators yet.
    EXPECT_EQ(c.velocity_solver_cache().built_orders(), (std::vector<int>{3}));
    EXPECT_EQ(c.effective_order(), 2) << "one history level restored -> order 2 next";
    c.step();
    EXPECT_EQ(c.last_step_order(), 2);
    EXPECT_EQ(c.velocity_solver_cache().built_orders(), (std::vector<int>{2, 3}))
        << "the restart must build the ramp order's operators, not reuse order 3's";
    // Same effective lambda, same fields as the uninterrupted ramp.
    EXPECT_EQ(c.last_velocity_lambda(), a.last_velocity_lambda());
    EXPECT_EQ(c.u_quad(), a.u_quad());
    EXPECT_EQ(c.v_quad(), a.v_quad());
}

// --- Fourier (comm-backed, with fault streams) -----------------------------

std::shared_ptr<nektar::Discretization> shear_disc(std::size_t order) {
    auto m = mesh::rectangle_quads(2, 2, 0.0, 1.0, 0.0, 1.0);
    m.tag_boundary(mesh::BoundaryTag::Side, [](double, double) { return true; });
    m.tag_boundary(mesh::BoundaryTag::Wall,
                   [](double, double y) { return y < 1e-9 || y > 1.0 - 1e-9; });
    return std::make_shared<nektar::Discretization>(std::make_shared<mesh::Mesh>(std::move(m)),
                                                    order);
}

nektar::FourierNsOptions fourier_opts(int time_order) {
    nektar::FourierNsOptions o;
    o.dt = 2e-3;
    o.viscosity = 0.05;
    o.time_order = time_order;
    o.num_modes = 4;
    o.velocity_bc.dirichlet = {mesh::BoundaryTag::Wall};
    o.pressure_bc.dirichlet.clear();
    o.pressure_bc.pin_first_dof = true;
    return o;
}

void shear_initial(nektar::FourierNS& ns, double lz) {
    constexpr double pi = std::numbers::pi;
    ns.set_initial(
        [=](double, double y, double z) {
            return std::sin(pi * y) * (1.0 + 0.1 * std::cos(2.0 * pi * z / lz));
        },
        [=](double, double y, double z) {
            return 0.05 * std::sin(pi * y) * std::sin(2.0 * pi * z / lz);
        },
        [=](double, double y, double) { return 0.02 * std::sin(pi * y); });
}

struct FourierParam {
    int time_order;
    std::uint64_t fault_seed;
};

class FourierRoundTrip : public ::testing::TestWithParam<FourierParam> {};

TEST_P(FourierRoundTrip, RestartIsByteIdenticalAcrossRanks) {
    const auto [order, seed] = GetParam();
    const int nranks = 2, n = 5, k = 2;
    const auto disc = shear_disc(3);
    const auto opts = fourier_opts(order);

    const auto run = [&](int steps, const std::vector<std::vector<std::uint8_t>>* from,
                         std::vector<std::vector<std::uint8_t>>& out) {
        simmpi::World world(nranks, test_net(seed));
        out.assign(static_cast<std::size_t>(nranks), {});
        world.run([&](simmpi::Comm& c) {
            nektar::FourierNS ns(disc, opts, &c);
            if (from != nullptr)
                ns.restore(Checkpoint::deserialize((*from)[static_cast<std::size_t>(c.rank())]));
            else
                shear_initial(ns, opts.lz);
            while (ns.steps_taken() < steps) ns.step();
            out[static_cast<std::size_t>(c.rank())] = ns.checkpoint().serialize();
        });
    };

    std::vector<std::vector<std::uint8_t>> ref, mid, resumed;
    run(n, nullptr, ref);   // uninterrupted
    run(k, nullptr, mid);   // first k steps
    run(n, &mid, resumed);  // restored, remaining n - k steps

    for (int r = 0; r < nranks; ++r)
        EXPECT_EQ(resumed[static_cast<std::size_t>(r)], ref[static_cast<std::size_t>(r)])
            << "rank " << r << ", order " << order << ", fault seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(OrdersAndSeeds, FourierRoundTrip,
                         ::testing::Values(FourierParam{1, 0}, FourierParam{2, 0},
                                           FourierParam{3, 0}, FourierParam{2, 1234},
                                           FourierParam{3, 977}));

// --- ALE (moving mesh) -----------------------------------------------------

nektar::AleOptions ale_opts(int time_order) {
    nektar::AleOptions o;
    o.dt = 2e-3;
    o.viscosity = 0.05;
    o.time_order = time_order;
    o.body_velocity = [](double t) { return 0.4 * std::cos(8.0 * t); };
    o.velocity_bc.dirichlet = {mesh::BoundaryTag::Inflow, mesh::BoundaryTag::Side,
                               mesh::BoundaryTag::Body, mesh::BoundaryTag::Wall};
    o.u_bc = [](double, double, double) { return 1.0; };
    o.v_bc = [](double, double, double) { return 0.0; };
    return o;
}

class AleRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(AleRoundTrip, RestartRestoresTheMovedMesh) {
    const int order = GetParam();
    const int n = 6, k = 3;
    const mesh::Mesh m = mesh::flapping_body_mesh(1);

    nektar::AleNS2d a(m, 3, ale_opts(order));
    a.set_initial([](double, double) { return 1.0; }, [](double, double) { return 0.0; });
    for (int s = 0; s < n; ++s) a.step();

    nektar::AleNS2d b(m, 3, ale_opts(order));
    b.set_initial([](double, double) { return 1.0; }, [](double, double) { return 0.0; });
    for (int s = 0; s < k; ++s) b.step();
    const auto bytes = b.checkpoint().serialize();

    // The checkpoint must carry the deformed geometry, not just fields.
    ASSERT_TRUE(Checkpoint::deserialize(bytes).has("mesh"));

    nektar::AleNS2d c(m, 3, ale_opts(order));
    c.restore(Checkpoint::deserialize(bytes));
    for (int s = k; s < n; ++s) c.step();

    EXPECT_EQ(c.checkpoint().serialize(), a.checkpoint().serialize()) << "order " << order;
    EXPECT_EQ(c.u_quad(), a.u_quad());
    EXPECT_EQ(c.v_quad(), a.v_quad());
    EXPECT_EQ(c.mesh_velocity_quad(), a.mesh_velocity_quad());
}

INSTANTIATE_TEST_SUITE_P(Orders, AleRoundTrip, ::testing::Values(1, 2, 3));

} // namespace
