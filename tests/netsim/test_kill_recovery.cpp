#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <numbers>
#include <vector>

#include "ckpt/recovery.hpp"
#include "mesh/generators.hpp"
#include "nektar/ns_fourier.hpp"

/// Rank-failure recovery, end to end: a seeded kill event fells one rank
/// mid-run, the harness rolls back to the last globally complete checkpoint
/// and replays with the dead node's spare — and the recovered run must be
/// *byte-identical* to a failure-free run (fields, history, virtual clocks,
/// fault streams), with the recovery price on the virtual clocks monotone in
/// how far past the checkpoint the kill landed.
namespace {

using ckpt::Checkpoint;
using ckpt::RecoveryStats;
using ckpt::Store;

netsim::NetworkModel base_net() {
    netsim::NetworkModel n;
    n.name = "test";
    n.latency_us = 10.0;
    n.bandwidth_mbps = 100.0;
    return n;
}

std::shared_ptr<nektar::Discretization> shear_disc() {
    auto m = mesh::rectangle_quads(2, 2, 0.0, 1.0, 0.0, 1.0);
    m.tag_boundary(mesh::BoundaryTag::Side, [](double, double) { return true; });
    m.tag_boundary(mesh::BoundaryTag::Wall,
                   [](double, double y) { return y < 1e-9 || y > 1.0 - 1e-9; });
    return std::make_shared<nektar::Discretization>(std::make_shared<mesh::Mesh>(std::move(m)),
                                                    3);
}

nektar::FourierNsOptions fourier_opts(int cadence, std::size_t num_modes = 4) {
    nektar::FourierNsOptions o;
    o.dt = 2e-3;
    o.viscosity = 0.05;
    o.time_order = 2;
    o.num_modes = num_modes;
    o.checkpoint_every = cadence;
    o.velocity_bc.dirichlet = {mesh::BoundaryTag::Wall};
    o.pressure_bc.dirichlet.clear();
    o.pressure_bc.pin_first_dof = true;
    return o;
}

void shear_initial(nektar::FourierNS& ns, double lz) {
    constexpr double pi = std::numbers::pi;
    ns.set_initial(
        [=](double, double y, double z) {
            return std::sin(pi * y) * (1.0 + 0.1 * std::cos(2.0 * pi * z / lz));
        },
        [=](double, double y, double z) {
            return 0.05 * std::sin(pi * y) * std::sin(2.0 * pi * z / lz);
        },
        [=](double, double y, double) { return 0.02 * std::sin(pi * y); });
}

struct RunOutput {
    std::vector<std::vector<std::uint8_t>> final_ckpt; ///< per rank
    /// Comm-event counter of each rank after each completed step (baseline
    /// probe; indexes the kill placement).
    std::vector<std::vector<std::uint64_t>> events_after_step;
    RecoveryStats stats;
};

/// Runs `nsteps` of the Fourier solver across `world`, checkpointing into
/// `store` at the solver's cadence and recovering from kills.
RunOutput run_recoverable(simmpi::World& world, const nektar::FourierNsOptions& opts,
                          int nsteps) {
    const auto disc = shear_disc();
    Store store;
    RunOutput out;
    const auto nranks = static_cast<std::size_t>(world.size());
    out.final_ckpt.assign(nranks, {});
    out.events_after_step.assign(nranks, {});
    out.stats = ckpt::run_with_recovery(world, store, [&](simmpi::Comm& c, int from) {
        const auto r = static_cast<std::size_t>(c.rank());
        nektar::FourierNS ns(disc, opts, &c);
        ns.set_checkpoint_sink([&](const Checkpoint& ck) {
            store.put(c.rank(), ns.steps_taken(), c.wall_time(), ck);
        });
        if (from >= 0)
            ns.restore(store.load(c.rank(), from));
        else
            shear_initial(ns, opts.lz);
        out.events_after_step[r].clear();
        while (ns.steps_taken() < nsteps) {
            ns.step();
            out.events_after_step[r].push_back(c.comm_events());
        }
        out.final_ckpt[r] = ns.checkpoint().serialize();
    });
    return out;
}

/// A comm-event threshold that lands inside step `kill_step` (1-based) of
/// `rank`, derived from a failure-free probe of the same configuration.
std::uint64_t events_into_step(const RunOutput& probe, int rank, int kill_step) {
    const auto& ev = probe.events_after_step[static_cast<std::size_t>(rank)];
    const std::uint64_t before =
        kill_step >= 2 ? ev[static_cast<std::size_t>(kill_step - 2)] : 0;
    return before + 1; // the step's first comm event
}

TEST(KillRecovery, RecoveredRunIsByteIdenticalToFailureFree) {
    const int nranks = 2, nsteps = 6, cadence = 2, kill_step = 4;
    const auto opts = fourier_opts(cadence);

    simmpi::World clean(nranks, base_net());
    const RunOutput baseline = run_recoverable(clean, opts, nsteps);
    EXPECT_EQ(baseline.stats.kills, 0);
    EXPECT_EQ(baseline.stats.attempts, 1);
    EXPECT_EQ(baseline.stats.restart_step, -1);
    EXPECT_EQ(baseline.stats.lost_virtual_seconds, 0.0);

    netsim::NetworkModel net = base_net();
    net.fault.kill_rank = 1;
    net.fault.kill_after_events = events_into_step(baseline, 1, kill_step);
    simmpi::World world(nranks, net);
    const RunOutput recovered = run_recoverable(world, opts, nsteps);

    EXPECT_EQ(recovered.stats.kills, 1);
    EXPECT_EQ(recovered.stats.attempts, 2);
    // Kill mid-step 4: step 4's own checkpoint never completed, so the
    // rollback target is the cadence point before it.
    EXPECT_EQ(recovered.stats.restart_step, 2);
    EXPECT_GT(recovered.stats.lost_virtual_seconds, 0.0);

    for (int r = 0; r < nranks; ++r)
        EXPECT_EQ(recovered.final_ckpt[static_cast<std::size_t>(r)],
                  baseline.final_ckpt[static_cast<std::size_t>(r)])
            << "rank " << r;

    // The priced overhead surfaces in a RunReport.
    auto rep = perf::report("kill_recovery");
    recovered.stats.stamp(rep);
    EXPECT_EQ(rep.metrics.counters.at("recovery.kills"), 1.0);
    EXPECT_GT(rep.metrics.counters.at("recovery.lost_virtual_seconds"), 0.0);
    EXPECT_EQ(rep.metrics.gauges.at("recovery.restart_step"), 2.0);
}

TEST(KillRecovery, ColdRestartWhenNoCheckpointCompleted) {
    const int nranks = 2, nsteps = 4;
    const auto opts = fourier_opts(/*cadence=*/5); // no checkpoint before the kill

    simmpi::World clean(nranks, base_net());
    const RunOutput baseline = run_recoverable(clean, opts, nsteps);

    netsim::NetworkModel net = base_net();
    net.fault.kill_rank = 0;
    net.fault.kill_after_events = events_into_step(baseline, 0, 3);
    simmpi::World world(nranks, net);
    const RunOutput recovered = run_recoverable(world, opts, nsteps);

    EXPECT_EQ(recovered.stats.kills, 1);
    EXPECT_EQ(recovered.stats.restart_step, -1) << "nothing to roll back to: replay from cold";
    EXPECT_GT(recovered.stats.lost_virtual_seconds, 0.0);
    for (int r = 0; r < nranks; ++r)
        EXPECT_EQ(recovered.final_ckpt[static_cast<std::size_t>(r)],
                  baseline.final_ckpt[static_cast<std::size_t>(r)]);
}

TEST(KillRecovery, LostWorkIsMonotoneInRollbackDistance) {
    // Cadence 3 over 9 steps: kills during steps 4, 5, 6 all roll back to
    // the step-3 checkpoint, at growing distance past it.  The virtual
    // seconds thrown away must grow strictly with that distance.
    const int nranks = 2, nsteps = 9, cadence = 3;
    const auto opts = fourier_opts(cadence);

    simmpi::World clean(nranks, base_net());
    const RunOutput baseline = run_recoverable(clean, opts, nsteps);

    std::vector<double> lost;
    for (const int kill_step : {4, 5, 6}) {
        netsim::NetworkModel net = base_net();
        net.fault.kill_rank = 1;
        net.fault.kill_after_events = events_into_step(baseline, 1, kill_step);
        simmpi::World world(nranks, net);
        const RunOutput recovered = run_recoverable(world, opts, nsteps);
        ASSERT_EQ(recovered.stats.kills, 1) << "kill step " << kill_step;
        EXPECT_EQ(recovered.stats.restart_step, 3) << "kill step " << kill_step;
        for (int r = 0; r < nranks; ++r)
            ASSERT_EQ(recovered.final_ckpt[static_cast<std::size_t>(r)],
                      baseline.final_ckpt[static_cast<std::size_t>(r)])
                << "kill step " << kill_step << ", rank " << r;
        lost.push_back(recovered.stats.lost_virtual_seconds);
    }
    EXPECT_GT(lost[0], 0.0);
    EXPECT_LT(lost[0], lost[1]) << "a kill one step deeper must waste more virtual time";
    EXPECT_LT(lost[1], lost[2]);
}

/// The full sweep: ranks x kill step x checkpoint cadence (the `slow`
/// label keeps it out of tier-1; the nightly workflow runs it).
TEST(KillMatrix, SweepRecoversByteIdenticallyEverywhere) {
    const int nsteps = 6;
    for (const int nranks : {2, 4}) {
        for (const int cadence : {1, 2, 3}) {
            const auto opts = fourier_opts(cadence);
            simmpi::World clean(nranks, base_net());
            const RunOutput baseline = run_recoverable(clean, opts, nsteps);
            for (const int kill_step : {2, 5}) {
                const int kill_rank = nranks - 1;
                netsim::NetworkModel net = base_net();
                net.fault.kill_rank = kill_rank;
                net.fault.kill_after_events = events_into_step(baseline, kill_rank, kill_step);
                simmpi::World world(nranks, net);
                const RunOutput recovered = run_recoverable(world, opts, nsteps);
                ASSERT_EQ(recovered.stats.kills, 1)
                    << nranks << " ranks, cadence " << cadence << ", kill " << kill_step;
                const int expect_from = ((kill_step - 1) / cadence) * cadence;
                EXPECT_EQ(recovered.stats.restart_step, expect_from == 0 ? -1 : expect_from)
                    << nranks << " ranks, cadence " << cadence << ", kill " << kill_step;
                // Loss is priced against the rollback checkpoint: with whole
                // steps completed past it the kill must waste virtual time;
                // a kill right at the checkpoint may waste (exactly) none.
                const int steps_past_ckpt = (kill_step - 1) - std::max(expect_from, 0);
                if (steps_past_ckpt > 0)
                    EXPECT_GT(recovered.stats.lost_virtual_seconds, 0.0)
                        << nranks << " ranks, cadence " << cadence << ", kill " << kill_step;
                else
                    EXPECT_GE(recovered.stats.lost_virtual_seconds, 0.0);
                for (int r = 0; r < nranks; ++r)
                    EXPECT_EQ(recovered.final_ckpt[static_cast<std::size_t>(r)],
                              baseline.final_ckpt[static_cast<std::size_t>(r)])
                        << nranks << " ranks, cadence " << cadence << ", kill " << kill_step
                        << ", rank " << r;
            }
        }
    }
}

TEST(KillRecovery, GivesUpAfterMaxAttempts) {
    // A kill that is never disarmed (re-armed by the body every attempt)
    // must not loop forever.
    simmpi::World world(2, base_net());
    Store store;
    int calls = 0;
    EXPECT_THROW(ckpt::run_with_recovery(
                     world, store,
                     [&](simmpi::Comm& c, int) {
                         if (c.rank() == 0) ++calls;
                         throw simmpi::RankKilledError(c.rank(), 0, 0.0);
                     },
                     /*max_attempts=*/3),
                 std::runtime_error);
    EXPECT_EQ(calls, 3);
}

} // namespace
