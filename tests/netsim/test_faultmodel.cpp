#include "netsim/faultmodel.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using netsim::FaultModel;

FaultModel lossy() {
    FaultModel f;
    f.seed = 42;
    f.latency_jitter_us = 50.0;
    f.loss_probability = 0.05;
    f.retransmit_timeout_us = 200.0;
    f.degrade_probability = 0.01;
    f.degrade_factor = 4.0;
    f.straggler_fraction = 0.25;
    f.straggler_factor = 2.0;
    return f;
}

TEST(FaultModel, DefaultIsDisabledAndInert) {
    const FaultModel f;
    EXPECT_FALSE(f.enabled());
    const auto p = f.perturb(3, 17, 1e-3);
    EXPECT_EQ(p.extra_seconds, 0.0);
    EXPECT_EQ(p.retransmits, 0);
    EXPECT_EQ(f.rank_slowdown(0), 1.0);
    EXPECT_EQ(f.expected_extra_seconds(1e-3), 0.0);
    EXPECT_EQ(f.expected_inflation(1e-3), 1.0);
}

TEST(FaultModel, ZeroProbabilitiesPerturbNothingEvenWithSeed) {
    FaultModel f;
    f.seed = 12345; // a seed alone must not enable anything
    EXPECT_FALSE(f.enabled());
    for (int rank = 0; rank < 8; ++rank)
        for (std::uint64_t m = 0; m < 100; ++m) {
            const auto p = f.perturb(rank, m, 2.5e-4);
            EXPECT_EQ(p.extra_seconds, 0.0);
            EXPECT_EQ(p.retransmits, 0);
        }
}

TEST(FaultModel, PerturbIsAPureFunctionOfSeedRankIndex) {
    const FaultModel f = lossy();
    for (int rank = 0; rank < 8; ++rank)
        for (std::uint64_t m = 0; m < 200; ++m) {
            const auto a = f.perturb(rank, m, 1e-3);
            const auto b = f.perturb(rank, m, 1e-3);
            EXPECT_EQ(a.extra_seconds, b.extra_seconds);
            EXPECT_EQ(a.retransmits, b.retransmits);
        }
    // Different ranks see different streams, as do different indices.
    int diffs = 0;
    for (std::uint64_t m = 0; m < 50; ++m)
        if (f.perturb(0, m, 1e-3).extra_seconds != f.perturb(1, m, 1e-3).extra_seconds)
            ++diffs;
    EXPECT_GT(diffs, 40);
}

TEST(FaultModel, SeedChangesTheStream) {
    FaultModel a = lossy(), b = lossy();
    b.seed = a.seed + 1;
    int diffs = 0;
    for (std::uint64_t m = 0; m < 50; ++m)
        if (a.perturb(2, m, 1e-3).extra_seconds != b.perturb(2, m, 1e-3).extra_seconds)
            ++diffs;
    EXPECT_GT(diffs, 40);
}

TEST(FaultModel, UniformDrawsCoverUnitInterval) {
    const FaultModel f = lossy();
    double mn = 1.0, mx = 0.0, sum = 0.0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        const double u = f.uniform(0, static_cast<std::uint64_t>(i), 7);
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        mn = std::min(mn, u);
        mx = std::max(mx, u);
        sum += u;
    }
    EXPECT_LT(mn, 0.01);
    EXPECT_GT(mx, 0.99);
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(FaultModel, RetransmitRateMatchesLossProbability) {
    FaultModel f;
    f.seed = 7;
    f.loss_probability = 0.10;
    f.retransmit_timeout_us = 100.0;
    const int n = 20000;
    std::uint64_t losses = 0;
    for (int i = 0; i < n; ++i)
        losses += static_cast<std::uint64_t>(
            f.perturb(0, static_cast<std::uint64_t>(i), 1e-4).retransmits);
    // E[retransmits] = p/(1-p) ~ 0.111
    EXPECT_NEAR(static_cast<double>(losses) / n, 0.111, 0.01);
}

TEST(FaultModel, StragglerFractionIsRespectedAcrossRanks) {
    FaultModel f;
    f.seed = 99;
    f.straggler_fraction = 0.25;
    f.straggler_factor = 3.0;
    int stragglers = 0;
    const int ranks = 2000;
    for (int r = 0; r < ranks; ++r)
        if (f.is_straggler(r)) ++stragglers;
    EXPECT_NEAR(static_cast<double>(stragglers) / ranks, 0.25, 0.04);
    // Straggling is a stable property of a rank.
    for (int r = 0; r < 32; ++r)
        EXPECT_EQ(f.is_straggler(r), f.rank_slowdown(r) == 3.0);
}

TEST(FaultModel, ExpectedInflationGrowsWithLossRate) {
    FaultModel lo, hi;
    lo.seed = hi.seed = 1;
    lo.loss_probability = 0.01;
    hi.loss_probability = 0.10;
    lo.retransmit_timeout_us = hi.retransmit_timeout_us = 200.0;
    const double base = 1e-3;
    EXPECT_GT(lo.expected_inflation(base), 1.0);
    EXPECT_GT(hi.expected_inflation(base), lo.expected_inflation(base));
}

TEST(FaultModel, EmpiricalMeanMatchesExpectedExtra) {
    FaultModel f;
    f.seed = 3;
    f.latency_jitter_us = 40.0;
    f.loss_probability = 0.05;
    f.retransmit_timeout_us = 150.0;
    f.degrade_probability = 0.02;
    f.degrade_factor = 3.0;
    const double base = 5e-4;
    const int n = 50000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += f.perturb(0, static_cast<std::uint64_t>(i), base).extra_seconds;
    EXPECT_NEAR(sum / n, f.expected_extra_seconds(base), 0.05 * f.expected_extra_seconds(base));
}

} // namespace
