#include "netsim/netmodel.hpp"

#include <gtest/gtest.h>

#include "netsim/netpipe.hpp"

namespace {

using netsim::alltoall_roster;
using netsim::by_name;
using netsim::pingpong_roster;

TEST(NetModel, RostersHaveThePaperConfigurations) {
    EXPECT_EQ(pingpong_roster().size(), 12u); // Figure 7 legend
    EXPECT_GE(alltoall_roster().size(), 9u);  // Figure 8 legend (+ HITACHI)
    EXPECT_NO_THROW((void)by_name("Muses, LAM"));
    EXPECT_NO_THROW((void)by_name("RoadRunner myr."));
    EXPECT_THROW((void)by_name("Infiniband"), std::out_of_range);
}

TEST(NetModel, PtpTimeIsMonotoneInSize) {
    for (const auto& n : pingpong_roster()) {
        double prev = 0.0;
        for (std::size_t m : {1u, 64u, 4096u, 65536u, 1u << 20}) {
            const double t = n.ptp_seconds(m);
            EXPECT_GT(t, prev) << n.name << " m=" << m;
            prev = t;
        }
    }
}

TEST(NetModel, BandwidthApproachesAsymptote) {
    for (const auto& n : pingpong_roster()) {
        const double bw = n.pingpong_bandwidth_mbps(64 << 20);
        EXPECT_GT(bw, 0.6 * n.bandwidth_mbps * n.large_msg_factor) << n.name;
        EXPECT_LE(bw, n.bandwidth_mbps + 1e-9) << n.name;
    }
}

TEST(NetModel, Figure7Shape_LatencyOrdering) {
    // "The latency numbers for Muses are low enough to be competitive with
    // some of the supercomputers"; RoadRunner ethernet produces "high latency
    // ... compared to Muses and the other systems"; T3E lowest.
    const double t3e = by_name("T3E").latency_us;
    const double muses = by_name("Muses, LAM").latency_us;
    const double rr_eth = by_name("R.Run, eth.-internode").latency_us;
    const double rr_myr = by_name("R.Run, myr.-internode").latency_us;
    EXPECT_LT(t3e, muses);
    EXPECT_LT(muses, rr_eth);
    EXPECT_LT(rr_myr, muses);
    // Myrinet latency comparable to the SP2-Silver nodes.
    EXPECT_NEAR(rr_myr, by_name("SP2-Silver, internode").latency_us, 10.0);
}

TEST(NetModel, Figure7Shape_EthernetBandwidthCapped) {
    // Fast Ethernet peaks near 12.5 MB/s; the PC cluster must sit below that
    // and far below the supercomputer networks.
    for (const char* n : {"Muses, MPICH", "Muses, LAM", "R.Run, eth.-internode"}) {
        EXPECT_LT(by_name(n).bandwidth_mbps, 12.5) << n;
    }
    EXPECT_GT(by_name("T3E").pingpong_bandwidth_mbps(1 << 20),
              10.0 * by_name("Muses, LAM").pingpong_bandwidth_mbps(1 << 20));
}

TEST(NetModel, Figure8Shape_T3EAlltoallWellAboveTheRest) {
    // "Apart from the T3E, which is 3 times higher than the rest..."
    const double t3e = by_name("T3E").alltoall_bandwidth_mbps(8, 1 << 20);
    for (const auto& n : alltoall_roster()) {
        if (n.name == "T3E" || n.name == "HITACHI") continue;
        EXPECT_GT(t3e, 2.5 * n.alltoall_bandwidth_mbps(8, 1 << 20)) << n.name;
    }
}

TEST(NetModel, Figure8Shape_MyrinetBetweenThin2AndNcsa) {
    // "the myrinet network has a slightly higher bandwidth than the IBM SP2
    // Thin2 nodes and slightly lower than the NCSA Origin 2000."
    const double myr = by_name("RoadRunner myr.").alltoall_bandwidth_mbps(8, 512 * 1024);
    const double thin2 = by_name("SP2-thin2").alltoall_bandwidth_mbps(8, 512 * 1024);
    const double ncsa = by_name("NCSA").alltoall_bandwidth_mbps(8, 512 * 1024);
    EXPECT_GT(myr, thin2);
    EXPECT_LT(myr, ncsa);
}

TEST(NetModel, SharedEthernetAlltoallCollapsesWithP) {
    // The shared wire serialises all-pairs traffic: per-process average
    // bandwidth must *fall* as ranks are added.
    const auto& eth = by_name("RoadRunner eth.");
    const double p4 = eth.alltoall_bandwidth_mbps(4, 64 * 1024);
    const double p8 = eth.alltoall_bandwidth_mbps(8, 64 * 1024);
    EXPECT_LT(p8, p4);
    // A switched fabric holds its per-process bandwidth far better.
    const auto& t3e = by_name("T3E");
    const double s4 = t3e.alltoall_bandwidth_mbps(4, 64 * 1024);
    const double s8 = t3e.alltoall_bandwidth_mbps(8, 64 * 1024);
    EXPECT_GT(s8, 0.7 * s4);
}

TEST(NetModel, HitachiAlltoallFloor) {
    // Paper: minimum recorded Alltoall bandwidth of 450 MB/s on the SR8000.
    EXPECT_GT(by_name("HITACHI").alltoall_bandwidth_mbps(8, 6'400'000), 450.0);
}

TEST(NetPipe, SweepsCoverTheRequestedRange) {
    const auto series = netsim::run_pingpong(by_name("T3E"), 1, 1 << 20);
    ASSERT_FALSE(series.samples.empty());
    EXPECT_EQ(series.samples.front().message_bytes, 1u);
    EXPECT_GE(series.samples.back().message_bytes, 1u << 19);
    for (std::size_t i = 1; i < series.samples.size(); ++i)
        EXPECT_GT(series.samples[i].message_bytes, series.samples[i - 1].message_bytes);
}

TEST(NetPipe, AlltoallSweepBandwidthPositive) {
    const auto s = netsim::run_alltoall_sweep(by_name("NCSA"), 4, 1, 1 << 20);
    for (const auto& p : s.samples) EXPECT_GT(p.avg_bandwidth_mbps, 0.0);
}

TEST(NetModel, CollectiveCostsScaleWithP) {
    const auto& n = by_name("SP2-Silver internode");
    EXPECT_LT(n.alltoall_seconds(2, 4096), n.alltoall_seconds(8, 4096));
    EXPECT_LT(n.allreduce_seconds(2, 4096), n.allreduce_seconds(16, 4096));
    EXPECT_LT(n.barrier_seconds(2), n.barrier_seconds(32));
    EXPECT_EQ(n.alltoall_seconds(1, 4096), 0.0);
}

TEST(NetModel, BruckBeatsPairwiseOnlyAtSmallSizesOnHighLatencyLinks) {
    const auto& muses = by_name("Muses, LAM");
    // Small messages: fewer rounds win on a 75 us-latency link.
    EXPECT_LT(muses.alltoall_seconds_bruck(16, 8), muses.alltoall_seconds(16, 8));
    // Large messages: pairwise ships each byte once and wins.
    EXPECT_GT(muses.alltoall_seconds_bruck(16, 1 << 20),
              muses.alltoall_seconds(16, 1 << 20));
    // Low-latency fabric: pairwise wins everywhere but tiny sizes at most.
    const auto& t3e = by_name("T3E");
    EXPECT_GT(t3e.alltoall_seconds_bruck(16, 64 * 1024),
              t3e.alltoall_seconds(16, 64 * 1024));
}

TEST(NetModel, BruckMonotoneInSizeAndRanks) {
    const auto& net = by_name("RoadRunner myr.");
    EXPECT_LT(net.alltoall_seconds_bruck(8, 1024), net.alltoall_seconds_bruck(8, 65536));
    EXPECT_LT(net.alltoall_seconds_bruck(4, 1024), net.alltoall_seconds_bruck(32, 1024));
    EXPECT_EQ(net.alltoall_seconds_bruck(1, 1024), 0.0);
}

} // namespace
