#include "machine/machine_model.hpp"

#include <gtest/gtest.h>

namespace {

using machine::by_name;
using machine::predict_mbps;
using machine::predict_mflops;
using machine::roster;

TEST(MachineModel, RosterContainsThePaperMachines) {
    for (const char* name : {"RoadRunner", "Muses", "SP2-Silver", "SP2-Thin2", "P2SC", "Onyx2",
                             "NCSA", "AP3000", "T3E", "HITACHI"})
        EXPECT_NO_THROW((void)by_name(name)) << name;
    EXPECT_THROW((void)by_name("CM-5"), std::out_of_range);
}

TEST(MachineModel, BandwidthStaircaseIsMonotone) {
    // Larger working sets never see faster memory.
    for (const auto& m : roster()) {
        double prev = 1e30;
        for (std::size_t ws : {1024u, 16u * 1024u, 256u * 1024u, 8u * 1024u * 1024u}) {
            const double bw = m.bandwidth_for(ws);
            EXPECT_LE(bw, prev + 1e-9) << m.name << " ws=" << ws;
            prev = bw;
        }
    }
}

TEST(MachineModel, PredictedRateNeverExceedsPeak) {
    for (const auto& m : roster()) {
        for (std::size_t n : {16u, 128u, 1024u, 65536u}) {
            EXPECT_LE(predict_mflops(m, machine::shape_dgemm(n)), m.peak_mflops + 1e-9)
                << m.name;
            EXPECT_LE(predict_mflops(m, machine::shape_daxpy(n)), m.peak_mflops + 1e-9);
        }
    }
}

TEST(MachineModel, Figure1Shape_DcopyDropsOutOfCache) {
    // In-L1 dcopy must beat out-of-memory dcopy on every machine.
    for (const auto& m : roster()) {
        const double small = predict_mbps(m, machine::shape_dcopy(2048));      // 32 KB
        const double large = predict_mbps(m, machine::shape_dcopy(4 << 20));    // 64 MB
        EXPECT_GT(small, large) << m.name;
    }
}

TEST(MachineModel, Figure5Shape_PcDgemmCappedByItsPeak) {
    // "the PC peak (hardware/never to be exceeded) performance is 450 MFlop/s"
    const auto& pc = by_name("Muses");
    const double rate = predict_mflops(pc, machine::shape_dgemm(400));
    EXPECT_LE(rate, 450.0);
    EXPECT_GT(rate, 150.0); // but a tuned dgemm reaches a solid fraction
}

TEST(MachineModel, Figure5Shape_T3EAndP2SCOnTopForLargeDgemm) {
    // "the T3E and the SP2-P2SC nodes being superior to all the other
    // architectures tested."
    const double t3e = predict_mflops(by_name("T3E"), machine::shape_dgemm(500));
    const double p2sc = predict_mflops(by_name("P2SC"), machine::shape_dgemm(500));
    for (const char* other : {"Muses", "SP2-Silver", "SP2-Thin2", "Onyx2", "AP3000"}) {
        const double r = predict_mflops(by_name(other), machine::shape_dgemm(500));
        EXPECT_GT(t3e, r) << other;
        EXPECT_GT(p2sc, r) << other;
    }
}

TEST(MachineModel, Figure6Shape_SmallDgemmRampsUp) {
    // Small-matrix dgemm is overhead-dominated: the rate must grow with n.
    for (const auto& m : roster()) {
        const double r2 = predict_mflops(m, machine::shape_dgemm(2));
        const double r10 = predict_mflops(m, machine::shape_dgemm(10));
        const double r20 = predict_mflops(m, machine::shape_dgemm(20));
        EXPECT_LT(r2, r10) << m.name;
        EXPECT_LT(r10, r20) << m.name;
    }
}

TEST(MachineModel, Figure13Shape_PcLevel1BlasCompetitiveInL1) {
    // "For the BLAS Level 1 routines ... the PC performance for data that fit
    // in the first level of cache is among the best of the architectures
    // examined" — at least it must beat the Silver and AP3000 nodes.
    const double pc = predict_mflops(by_name("Muses"), machine::shape_ddot(512)); // 8 KB
    EXPECT_GT(pc, predict_mflops(by_name("SP2-Silver"), machine::shape_ddot(512)) * 0.8);
    EXPECT_GT(pc, predict_mflops(by_name("AP3000"), machine::shape_ddot(512)) * 0.8);
}

} // namespace
