#include "perf/stage_stats.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "blaslite/blas.hpp"

namespace {

using perf::StageBreakdown;
using perf::StageScope;
using perf::StageShape;

TEST(StageStats, ScopeCapturesKernelCounts) {
    StageBreakdown bd;
    std::vector<double> x(100, 1.0), y(100, 2.0);
    {
        StageScope scope(bd, 3);
        blaslite::daxpy(1.5, x, y);
    }
    EXPECT_EQ(bd.counts[3].flops, 200u);
    EXPECT_EQ(bd.counts[3].calls, 1u);
    EXPECT_GT(bd.host_seconds[3], 0.0);
    EXPECT_EQ(bd.counts[2].flops, 0u);
}

TEST(StageStats, AccumulationAcrossScopes) {
    StageBreakdown bd;
    std::vector<double> x(50, 1.0), y(50, 0.0);
    for (int i = 0; i < 4; ++i) {
        StageScope scope(bd, 1);
        blaslite::dcopy(x, y);
    }
    EXPECT_EQ(bd.counts[1].calls, 4u);
    EXPECT_EQ(bd.counts[1].bytes_read, 4u * 50 * sizeof(double));
}

TEST(StageStats, PlusEqualsMergesEverything) {
    StageBreakdown a, b;
    a.counts[2].flops = 10;
    a.steps = 1;
    b.counts[2].flops = 5;
    b.counts[7].flops = 7;
    b.steps = 2;
    a += b;
    EXPECT_EQ(a.counts[2].flops, 15u);
    EXPECT_EQ(a.counts[7].flops, 7u);
    EXPECT_EQ(a.steps, 3);
    EXPECT_EQ(a.total_counts().flops, 22u);
}

TEST(StageStats, PredictionScalesWithMachineSpeed) {
    StageBreakdown bd;
    bd.counts[5].flops = 1'000'000;
    bd.counts[5].bytes_read = 8'000'000;
    StageShape shape{.working_set_bytes = 1u << 30, .compute_efficiency = 0.6};
    const double pc = bd.predict_stage_seconds(machine::by_name("Muses"), 5, shape);
    const double t3e = bd.predict_stage_seconds(machine::by_name("T3E"), 5, shape);
    EXPECT_GT(pc, 0.0);
    EXPECT_LT(t3e, pc); // streaming T3E beats the PC when not latency-bound
}

TEST(StageStats, LatencyBoundShapeChangesTheOrdering) {
    // The Table 1 mechanism: with chained access, the T3E's advantage
    // collapses to roughly parity with the PC.
    StageBreakdown bd;
    bd.counts[7].flops = 100'000;
    bd.counts[7].bytes_read = 80'000'000;
    StageShape stream{.working_set_bytes = 1u << 30, .compute_efficiency = 0.6};
    StageShape chained = stream;
    chained.latency_bound = true;
    const auto& pc = machine::by_name("Muses");
    const auto& t3e = machine::by_name("T3E");
    const double ratio_stream = bd.predict_stage_seconds(t3e, 7, stream) /
                                bd.predict_stage_seconds(pc, 7, stream);
    const double ratio_chained = bd.predict_stage_seconds(t3e, 7, chained) /
                                 bd.predict_stage_seconds(pc, 7, chained);
    EXPECT_LT(ratio_stream, 0.5);    // T3E far ahead when streaming
    EXPECT_GT(ratio_chained, 0.9);   // near-parity when chained
}

TEST(StageStats, CallOverheadAddsUp) {
    StageBreakdown few, many;
    few.counts[2].flops = many.counts[2].flops = 1000;
    few.counts[2].calls = 1;
    many.counts[2].calls = 10'000;
    StageShape shape;
    const auto& slow_clock = machine::by_name("SP2-Thin2"); // 66 MHz
    EXPECT_GT(many.predict_stage_seconds(slow_clock, 2, shape),
              10.0 * few.predict_stage_seconds(slow_clock, 2, shape));
}

TEST(StageStats, StageNamesMatchThePaper) {
    EXPECT_NE(perf::stage_name(1).find("transform"), std::string::npos);
    EXPECT_NE(perf::stage_name(2).find("nonlinear"), std::string::npos);
    EXPECT_NE(perf::stage_name(5).find("Poisson"), std::string::npos);
    EXPECT_NE(perf::stage_name(7).find("Helmholtz"), std::string::npos);
    EXPECT_EQ(perf::stage_name(99), "unknown");
}

TEST(StageStats, ShortNamesCoverEveryStage) {
    for (std::size_t s = 1; s <= perf::kNumStages; ++s) {
        EXPECT_NE(perf::stage_short_name(s), "unknown");
        EXPECT_LE(perf::stage_short_name(s).size(), 12u); // fits table columns
    }
    EXPECT_EQ(perf::stage_short_name(0), "unknown");
    EXPECT_EQ(perf::stage_short_name(8), "unknown");
}

TEST(StageStats, GroupsPartitionTheStagesLikeFigures15And16) {
    using perf::StageGroup;
    EXPECT_EQ(perf::stages_in_group(StageGroup::Setup),
              (std::vector<std::size_t>{1, 2, 3, 4, 6}));
    EXPECT_EQ(perf::stages_in_group(StageGroup::PressureSolve),
              (std::vector<std::size_t>{5}));
    EXPECT_EQ(perf::stages_in_group(StageGroup::ViscousSolve),
              (std::vector<std::size_t>{7}));
    // Every stage lands in exactly one group.
    std::size_t covered = 0;
    for (auto g : {StageGroup::Setup, StageGroup::PressureSolve, StageGroup::ViscousSolve})
        covered += perf::stages_in_group(g).size();
    EXPECT_EQ(covered, perf::kNumStages);
    EXPECT_EQ(perf::stage_group_label(StageGroup::Setup), "a");
    EXPECT_EQ(perf::stage_group_label(StageGroup::PressureSolve), "b");
    EXPECT_EQ(perf::stage_group_label(StageGroup::ViscousSolve), "c");
}

TEST(StageStats, ThreadLocalCountersAreIndependent) {
    StageBreakdown main_bd;
    std::vector<double> x(64, 1.0), y(64, 0.0);
    StageScope scope(main_bd, 4);
    std::thread t([&] {
        // Work on another thread must not leak into this scope.
        std::vector<double> a(1000, 1.0), b(1000, 0.0);
        for (int i = 0; i < 100; ++i) blaslite::daxpy(1.0, a, b);
    });
    blaslite::dcopy(x, y);
    t.join();
    // Destructor runs at end of scope; check counts via a fresh breakdown.
    StageBreakdown probe;
    {
        StageScope s2(probe, 1);
        blaslite::dcopy(x, y);
    }
    EXPECT_EQ(probe.counts[1].calls, 1u);
}

} // namespace
