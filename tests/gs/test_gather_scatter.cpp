#include "gs/gather_scatter.hpp"

#include <gtest/gtest.h>

#include <map>
#include <random>

namespace {

netsim::NetworkModel test_net() {
    netsim::NetworkModel n;
    n.name = "test";
    n.latency_us = 5.0;
    n.bandwidth_mbps = 200.0;
    return n;
}

/// Reference: dense assembly of (gid -> sum of contributions).
void check_gs(int nprocs, const std::vector<std::vector<std::int64_t>>& ids) {
    // Expected sums: value of dof gid on rank r is gid * 10 + r.
    std::map<std::int64_t, double> expected;
    for (int r = 0; r < nprocs; ++r)
        for (auto gid : ids[static_cast<std::size_t>(r)])
            expected[gid] += static_cast<double>(gid) * 10.0 + r;

    simmpi::World world(nprocs, test_net());
    world.run([&](simmpi::Comm& c) {
        const auto& mine = ids[static_cast<std::size_t>(c.rank())];
        gs::GatherScatter gs(c, mine);
        std::vector<double> vals(mine.size());
        for (std::size_t i = 0; i < mine.size(); ++i)
            vals[i] = static_cast<double>(mine[i]) * 10.0 + c.rank();
        gs.sum(c, vals);
        for (std::size_t i = 0; i < mine.size(); ++i)
            EXPECT_NEAR(vals[i], expected.at(mine[i]), 1e-12)
                << "rank " << c.rank() << " gid " << mine[i];
    });
}

TEST(GatherScatter, PairwiseOnlySharing) {
    // Chain: rank r shares dof 100+r with rank r+1 only.
    const int p = 4;
    std::vector<std::vector<std::int64_t>> ids(p);
    for (int r = 0; r < p; ++r) {
        ids[static_cast<std::size_t>(r)].push_back(1000 + r); // private
        if (r > 0) ids[static_cast<std::size_t>(r)].push_back(100 + r - 1);
        if (r + 1 < p) ids[static_cast<std::size_t>(r)].push_back(100 + r);
    }
    check_gs(p, ids);
}

TEST(GatherScatter, TreeSharing) {
    // One dof shared by everyone (a corner vertex in a DD mesh).
    const int p = 6;
    std::vector<std::vector<std::int64_t>> ids(p);
    for (int r = 0; r < p; ++r) ids[static_cast<std::size_t>(r)] = {7, 1000 + r};
    check_gs(p, ids);
}

TEST(GatherScatter, MixedSharingRandomised) {
    const int p = 5;
    std::mt19937 gen(3);
    std::vector<std::vector<std::int64_t>> ids(p);
    // 40 global dofs, each held by a random subset of ranks.
    for (std::int64_t gid = 0; gid < 40; ++gid) {
        std::vector<int> holders;
        for (int r = 0; r < p; ++r)
            if (gen() % 3 == 0) holders.push_back(r);
        if (holders.empty()) holders.push_back(static_cast<int>(gid) % p);
        for (int r : holders) ids[static_cast<std::size_t>(r)].push_back(gid);
    }
    check_gs(p, ids);
}

TEST(GatherScatter, UnsharedDofsUntouched) {
    const int p = 3;
    std::vector<std::vector<std::int64_t>> ids(p);
    for (int r = 0; r < p; ++r) ids[static_cast<std::size_t>(r)] = {r * 10, r * 10 + 1};
    simmpi::World world(p, test_net());
    world.run([&](simmpi::Comm& c) {
        const auto& mine = ids[static_cast<std::size_t>(c.rank())];
        gs::GatherScatter gs(c, mine);
        EXPECT_EQ(gs.pairwise_dofs(), 0u);
        EXPECT_EQ(gs.tree_dofs(), 0u);
        std::vector<double> vals = {1.5, 2.5};
        gs.sum(c, vals);
        EXPECT_DOUBLE_EQ(vals[0], 1.5);
        EXPECT_DOUBLE_EQ(vals[1], 2.5);
    });
}

TEST(GatherScatter, ClassifiesPairwiseVsTree) {
    const int p = 4;
    // dof 1 shared by ranks 0,1 (pairwise); dof 2 by all (tree).
    std::vector<std::vector<std::int64_t>> ids(p);
    for (int r = 0; r < p; ++r) {
        ids[static_cast<std::size_t>(r)].push_back(2);
        if (r < 2) ids[static_cast<std::size_t>(r)].push_back(1);
    }
    simmpi::World world(p, test_net());
    world.run([&](simmpi::Comm& c) {
        gs::GatherScatter gs(c, ids[static_cast<std::size_t>(c.rank())]);
        EXPECT_EQ(gs.tree_dofs(), 1u);
        if (c.rank() < 2) {
            EXPECT_EQ(gs.pairwise_dofs(), 1u);
        } else {
            EXPECT_EQ(gs.pairwise_dofs(), 0u);
        }
    });
}

TEST(GatherScatter, TreeOnlyStrategyMatchesAuto) {
    const int p = 4;
    std::vector<std::vector<std::int64_t>> ids(p);
    for (int r = 0; r < p; ++r) {
        ids[static_cast<std::size_t>(r)].push_back(500 + r); // private
        if (r > 0) ids[static_cast<std::size_t>(r)].push_back(50 + r - 1);
        if (r + 1 < p) ids[static_cast<std::size_t>(r)].push_back(50 + r);
        ids[static_cast<std::size_t>(r)].push_back(7); // shared by all
    }
    simmpi::World world(p, test_net());
    world.run([&](simmpi::Comm& c) {
        const auto& mine = ids[static_cast<std::size_t>(c.rank())];
        gs::GatherScatter auto_gs(c, mine);
        gs::GatherScatter tree_gs(c, mine, gs::GatherScatter::Strategy::TreeOnly);
        EXPECT_EQ(tree_gs.pairwise_dofs(), 0u);
        EXPECT_GT(auto_gs.pairwise_dofs() + (c.rank() == 0 || c.rank() == p - 1 ? 1u : 0u),
                  0u);
        std::vector<double> v1(mine.size()), v2(mine.size());
        for (std::size_t i = 0; i < mine.size(); ++i)
            v1[i] = v2[i] = static_cast<double>(mine[i]) + 0.1 * c.rank();
        auto_gs.sum(c, v1);
        tree_gs.sum(c, v2);
        for (std::size_t i = 0; i < mine.size(); ++i) EXPECT_NEAR(v1[i], v2[i], 1e-12);
    });
}

} // namespace
