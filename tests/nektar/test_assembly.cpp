#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "mesh/generators.hpp"
#include "nektar/discretization.hpp"

namespace {

std::shared_ptr<nektar::Discretization> make_disc(mesh::Mesh m, std::size_t order) {
    return std::make_shared<nektar::Discretization>(
        std::make_shared<mesh::Mesh>(std::move(m)), order);
}

TEST(ElementOps, MassAndLaplacianAreSymmetric) {
    const auto disc = make_disc(mesh::rectangle_quads(2, 2, 0.0, 1.0, 0.0, 1.0), 4);
    for (std::size_t e = 0; e < disc->num_elements(); ++e) {
        EXPECT_LT(disc->ops(e).mass().symmetry_defect(), 1e-12);
        EXPECT_LT(disc->ops(e).laplacian().symmetry_defect(), 1e-12);
    }
}

TEST(ElementOps, TriangleMatricesSymmetricToo) {
    const auto disc = make_disc(mesh::rectangle_tris(2, 2, 0.0, 1.0, 0.0, 1.0), 4);
    for (std::size_t e = 0; e < disc->num_elements(); ++e) {
        EXPECT_LT(disc->ops(e).mass().symmetry_defect(), 1e-12);
        EXPECT_LT(disc->ops(e).laplacian().symmetry_defect(), 1e-11);
    }
}

TEST(ElementOps, MassIntegratesConstants) {
    // 1^T M 1 = element area.
    const auto disc = make_disc(mesh::rectangle_quads(3, 2, 0.0, 3.0, 0.0, 2.0), 3);
    for (std::size_t e = 0; e < disc->num_elements(); ++e) {
        const auto& ops = disc->ops(e);
        const std::size_t nm = ops.num_modes();
        // Constant function: vertex modes = 1, higher modes = 0.
        std::vector<double> one(nm, 0.0);
        for (std::size_t v = 0; v < ops.expansion().num_vertices(); ++v)
            one[ops.expansion().vertex_mode(v)] = 1.0;
        double area = 0.0;
        for (std::size_t i = 0; i < nm; ++i)
            for (std::size_t j = 0; j < nm; ++j) area += one[i] * ops.mass()(i, j) * one[j];
        EXPECT_NEAR(area, disc->mesh().element_area(e), 1e-10);
    }
}

TEST(ElementOps, LaplacianAnnihilatesConstants) {
    const auto disc = make_disc(mesh::rectangle_tris(2, 1, 0.0, 1.0, 0.0, 1.0), 5);
    for (std::size_t e = 0; e < disc->num_elements(); ++e) {
        const auto& ops = disc->ops(e);
        const std::size_t nm = ops.num_modes();
        std::vector<double> one(nm, 0.0), out(nm, 0.0);
        for (std::size_t v = 0; v < ops.expansion().num_vertices(); ++v)
            one[ops.expansion().vertex_mode(v)] = 1.0;
        ops.laplacian().matvec(one, out);
        for (double v : out) EXPECT_NEAR(v, 0.0, 1e-10);
    }
}

TEST(ElementOps, Figure10Structure_BoundaryFirstOrdering) {
    // The paper's Figure 10: with boundary modes first, the interior-interior
    // block of the elemental Laplacian is banded.  We assert the ordering
    // invariant it relies on: vertices, then edges, then interior.
    for (auto shape : {spectral::Shape::Quad, spectral::Shape::Triangle}) {
        const auto exp = spectral::make_expansion(shape, 6);
        EXPECT_EQ(exp->vertex_mode(0), 0u);
        EXPECT_EQ(exp->edge_mode(0, 1), exp->num_vertices());
        EXPECT_EQ(exp->interior_begin(),
                  exp->num_vertices() + exp->num_edges() * exp->edge_mode_count());
        EXPECT_GT(exp->num_modes(), exp->interior_begin()); // has interior modes
    }
}

TEST(ElementOps, ProjectionThenInterpolationIsIdentityOnPolynomials) {
    const auto disc = make_disc(mesh::rectangle_quads(2, 2, -1.0, 1.0, -1.0, 1.0), 4);
    std::vector<double> quad(disc->quad_size());
    disc->eval_at_quad([](double x, double y) { return x * x * y + 2.0 * y - 1.0; }, quad);
    std::vector<double> modal(disc->modal_size());
    disc->project(quad, modal);
    std::vector<double> back(disc->quad_size());
    disc->to_quad(modal, back);
    for (std::size_t q = 0; q < quad.size(); ++q) EXPECT_NEAR(back[q], quad[q], 1e-10);
}

TEST(ElementOps, CollocationGradientExactForPolynomials) {
    const auto disc = make_disc(mesh::rectangle_quads(3, 3, 0.0, 2.0, -1.0, 1.0), 4);
    std::vector<double> quad(disc->quad_size()), dx(disc->quad_size()), dy(disc->quad_size());
    disc->eval_at_quad([](double x, double y) { return x * x * x - 2.0 * x * y + y * y; },
                       quad);
    for (std::size_t e = 0; e < disc->num_elements(); ++e)
        disc->ops(e).grad_collocation(disc->quad_block(std::span<const double>(quad), e),
                                      disc->quad_block(std::span<double>(dx), e),
                                      disc->quad_block(std::span<double>(dy), e));
    std::vector<double> ex(disc->quad_size()), ey(disc->quad_size());
    disc->eval_at_quad([](double x, double y) { return 3.0 * x * x - 2.0 * y; }, ex);
    disc->eval_at_quad([](double x, double y) { return -2.0 * x + 2.0 * y; }, ey);
    for (std::size_t q = 0; q < dx.size(); ++q) {
        EXPECT_NEAR(dx[q], ex[q], 1e-9);
        EXPECT_NEAR(dy[q], ey[q], 1e-9);
    }
}

TEST(DofMap, CountsAndContinuity) {
    const auto m = std::make_shared<mesh::Mesh>(mesh::rectangle_quads(3, 2, 0, 3, 0, 2));
    const std::size_t P = 3;
    nektar::DofMap dm(*m, P);
    const std::size_t expected = m->num_vertices() + m->num_edges() * (P - 1) +
                                 m->num_elements() * (P - 1) * (P - 1);
    EXPECT_EQ(dm.num_global(), expected);
}

TEST(DofMap, RcmReducesBandwidth) {
    const auto m = mesh::rectangle_quads(8, 8, 0, 1, 0, 1);
    nektar::DofMap with(m, 3, true);
    nektar::DofMap without(m, 3, false);
    EXPECT_LT(with.bandwidth(), without.bandwidth());
}

TEST(DofMap, ContinuityAcrossElements) {
    // Scatter a random global vector and check that shared-edge quadrature
    // traces agree between neighbouring elements by evaluating the field at
    // shared vertices... via a global function reproduction instead:
    // project x+2y globally and require elementwise representation to agree
    // with the function everywhere (continuity implied by single-valued dofs).
    const auto disc = std::make_shared<nektar::Discretization>(
        std::make_shared<mesh::Mesh>(mesh::rectangle_tris(3, 3, 0, 1, 0, 1)), 4);
    std::vector<double> quad(disc->quad_size());
    disc->eval_at_quad([](double x, double y) { return 3.0 * x - 2.0 * y + 0.5; }, quad);
    std::vector<double> modal(disc->modal_size());
    disc->project(quad, modal);
    // Gather then scatter must reproduce the same local coefficients: the
    // projection of a continuous function is single-valued on shared dofs.
    std::vector<double> global(disc->dofmap().num_global(), 0.0);
    std::vector<double> counts(disc->dofmap().num_global(), 0.0);
    for (std::size_t e = 0; e < disc->num_elements(); ++e) {
        const auto& map = disc->dofmap().element_map(e);
        auto block = disc->modal_block(std::span<const double>(modal), e);
        for (std::size_t i = 0; i < block.size(); ++i) {
            global[static_cast<std::size_t>(map[i].global)] += map[i].sign * block[i];
            counts[static_cast<std::size_t>(map[i].global)] += 1.0;
        }
    }
    for (std::size_t g = 0; g < global.size(); ++g) global[g] /= counts[g];
    std::vector<double> modal2(disc->modal_size());
    disc->scatter(global, modal2);
    for (std::size_t i = 0; i < modal.size(); ++i)
        EXPECT_NEAR(modal2[i], modal[i], 1e-9) << "shared dof disagreement at " << i;
}

TEST(Discretization, IntegrateAndNorms) {
    const auto disc = make_disc(mesh::rectangle_quads(4, 4, 0.0, 1.0, 0.0, 1.0), 3);
    std::vector<double> quad(disc->quad_size());
    disc->eval_at_quad([](double x, double y) { return x * y; }, quad);
    EXPECT_NEAR(disc->integrate(quad), 0.25, 1e-12);
    EXPECT_NEAR(disc->l2_norm(quad), 1.0 / 3.0, 1e-12); // sqrt(1/9)
    EXPECT_NEAR(disc->l2_error(quad, [](double x, double y) { return x * y; }), 0.0, 1e-12);
}

} // namespace
