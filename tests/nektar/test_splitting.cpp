/// Tests of the shared stiffly-stable time-integration core (splitting.hpp):
/// coefficient tables, history ring buffers, the startup-order ramp, the
/// effective-gamma0 operator caches, golden equivalence of the refactored
/// solvers against pre-refactor step results, and temporal convergence at
/// orders 1, 2 and 3 on all three solvers.
#include <cmath>
#include <memory>
#include <numbers>

#include <gtest/gtest.h>

#include "mesh/generators.hpp"
#include "nektar/ns_ale.hpp"
#include "nektar/ns_fourier.hpp"
#include "nektar/ns_serial.hpp"
#include "nektar/splitting.hpp"

namespace {

using nektar::FieldHistory;
using nektar::stiffly_stable;

constexpr double kPi = std::numbers::pi;

// ---------------------------------------------------------------------------
// Coefficient tables.

TEST(SplittingCoeffs, TableMatchesKarniadakisIsraeliOrszag) {
    const auto& je1 = stiffly_stable(1);
    EXPECT_EQ(je1.order, 1);
    EXPECT_DOUBLE_EQ(je1.gamma0, 1.0);
    EXPECT_DOUBLE_EQ(je1.alpha[0], 1.0);
    EXPECT_DOUBLE_EQ(je1.beta[0], 1.0);

    const auto& je2 = stiffly_stable(2);
    EXPECT_DOUBLE_EQ(je2.gamma0, 1.5);
    EXPECT_DOUBLE_EQ(je2.alpha[0], 2.0);
    EXPECT_DOUBLE_EQ(je2.alpha[1], -0.5);
    EXPECT_DOUBLE_EQ(je2.beta[0], 2.0);
    EXPECT_DOUBLE_EQ(je2.beta[1], -1.0);

    const auto& je3 = stiffly_stable(3);
    EXPECT_DOUBLE_EQ(je3.gamma0, 11.0 / 6.0);
    EXPECT_DOUBLE_EQ(je3.alpha[0], 3.0);
    EXPECT_DOUBLE_EQ(je3.alpha[1], -1.5);
    EXPECT_DOUBLE_EQ(je3.alpha[2], 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(je3.beta[0], 3.0);
    EXPECT_DOUBLE_EQ(je3.beta[1], -3.0);
    EXPECT_DOUBLE_EQ(je3.beta[2], 1.0);
}

TEST(SplittingCoeffs, ConsistencyConditionsHold) {
    // Zeroth/first-order consistency of the implicit-explicit pairing:
    // sum alpha_q = gamma0 (constants are preserved) and sum beta_q = 1
    // (the nonlinear extrapolation is exact for constants).
    for (int je = 1; je <= nektar::kMaxTimeOrder; ++je) {
        const auto& c = stiffly_stable(je);
        double sa = 0.0, sb = 0.0;
        for (int q = 0; q < je; ++q) {
            sa += c.alpha[static_cast<std::size_t>(q)];
            sb += c.beta[static_cast<std::size_t>(q)];
        }
        EXPECT_NEAR(sa, c.gamma0, 1e-14) << "Je=" << je;
        EXPECT_NEAR(sb, 1.0, 1e-14) << "Je=" << je;
    }
}

TEST(SplittingCoeffs, ThrowsOutsideSupportedOrders) {
    EXPECT_THROW(stiffly_stable(0), std::invalid_argument);
    EXPECT_THROW(stiffly_stable(4), std::invalid_argument);
    EXPECT_THROW(stiffly_stable(-1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// History ring buffer.

TEST(FieldHistory, PushLevelAndEviction) {
    FieldHistory h;
    h.configure(/*components=*/2, /*size=*/2, /*depth=*/2);
    EXPECT_EQ(h.available(), 0);
    EXPECT_EQ(h.depth(), 2);

    h.push({{1.0, 1.0}, {10.0, 10.0}});
    EXPECT_EQ(h.available(), 1);
    EXPECT_EQ(h.level(1, 0)[0], 1.0);
    EXPECT_EQ(h.level(1, 1)[0], 10.0);

    h.push({{2.0, 2.0}, {20.0, 20.0}});
    EXPECT_EQ(h.available(), 2);
    EXPECT_EQ(h.level(1, 0)[0], 2.0); // age 1 = newest
    EXPECT_EQ(h.level(2, 0)[0], 1.0);

    h.push({{3.0, 3.0}, {30.0, 30.0}}); // evicts the oldest
    EXPECT_EQ(h.available(), 2);
    EXPECT_EQ(h.level(1, 0)[0], 3.0);
    EXPECT_EQ(h.level(2, 1)[0], 20.0);
}

TEST(FieldHistory, ClearForgetsLevelsButKeepsConfiguration) {
    FieldHistory h;
    h.configure(1, 3, 2);
    h.push({{1.0, 2.0, 3.0}});
    h.clear();
    EXPECT_EQ(h.available(), 0);
    h.push({{4.0, 5.0, 6.0}});
    EXPECT_EQ(h.available(), 1);
    EXPECT_EQ(h.level(1, 0)[2], 6.0);
}

TEST(FieldHistory, DepthZeroIsANoOp) {
    FieldHistory h;
    h.configure(1, 2, 0); // order-1 schemes keep no history
    h.push({{1.0, 2.0}});
    EXPECT_EQ(h.available(), 0);
}

// ---------------------------------------------------------------------------
// Shared fixtures for the solver-level tests.

std::shared_ptr<nektar::Discretization> decay_disc(std::size_t order) {
    // Unit square, Wall everywhere except an Outflow edge at x = 1 (gives the
    // pressure its Dirichlet anchor; the exact problems below have p = 0 and
    // du/dn = 0 there, so the Outflow natural velocity BC is exact too).
    auto m = mesh::rectangle_quads(2, 2, 0.0, 1.0, 0.0, 1.0);
    m.tag_boundary(mesh::BoundaryTag::Wall, [](double, double) { return true; });
    m.tag_boundary(mesh::BoundaryTag::Outflow, [](double x, double) { return x > 1.0 - 1e-9; });
    return std::make_shared<nektar::Discretization>(std::make_shared<mesh::Mesh>(std::move(m)),
                                                    order);
}

/// L2 error of the serial solver's u field against exact u(x, y, t) after
/// integrating the shear-decay problem u = sin(pi y) exp(-nu pi^2 t), v = 0
/// (nonlinear terms and pressure vanish identically: pure time integration
/// of the viscous term) to time T at order `je` with an exact-history start.
double serial_decay_error(int je, double dt, double T, double nu) {
    const auto exact = [nu](double, double y, double t) {
        return std::sin(kPi * y) * std::exp(-nu * kPi * kPi * t);
    };
    nektar::SerialNsOptions opts;
    opts.dt = dt;
    opts.viscosity = nu;
    opts.time_order = je;
    opts.u_bc = exact;
    opts.v_bc = [](double, double, double) { return 0.0; };
    nektar::SerialNS2d ns(decay_disc(8), opts);
    ns.set_initial_exact(exact, opts.v_bc);
    const int steps = static_cast<int>(std::lround(T / dt));
    for (int s = 0; s < steps; ++s) ns.step();
    std::vector<double> ex(ns.disc().quad_size());
    ns.disc().eval_at_quad([&](double x, double y) { return exact(x, y, ns.time()); }, ex);
    for (std::size_t i = 0; i < ex.size(); ++i) ex[i] -= ns.u_quad()[i];
    return ns.disc().l2_norm(ex);
}

double observed_order(double err_coarse, double err_fine) {
    return std::log2(err_coarse / err_fine);
}

// ---------------------------------------------------------------------------
// Startup ramp and the effective-gamma0 operator cache.

TEST(SolverCoreRamp, StartupOrdersRampToRequested) {
    nektar::SerialNsOptions opts;
    opts.dt = 1e-3;
    opts.viscosity = 0.1;
    opts.time_order = 3;
    nektar::SerialNS2d ns(decay_disc(4), opts);
    ns.set_initial([](double, double y) { return std::sin(kPi * y); },
                   [](double, double) { return 0.0; });
    EXPECT_EQ(ns.effective_order(), 1);
    EXPECT_EQ(ns.last_step_order(), 0);
    ns.step();
    EXPECT_EQ(ns.last_step_order(), 1);
    ns.step();
    EXPECT_EQ(ns.last_step_order(), 2);
    ns.step();
    EXPECT_EQ(ns.last_step_order(), 3);
    ns.step();
    EXPECT_EQ(ns.last_step_order(), 3);
}

TEST(SolverCoreRamp, ExactStartSkipsTheRamp) {
    const double nu = 0.1;
    const auto exact = [](double, double y, double t) {
        return std::sin(kPi * y) * std::exp(-0.1 * kPi * kPi * t);
    };
    nektar::SerialNsOptions opts;
    opts.dt = 1e-3;
    opts.viscosity = nu;
    opts.time_order = 3;
    opts.u_bc = exact;
    nektar::SerialNS2d ns(decay_disc(4), opts);
    ns.set_initial_exact(exact, [](double, double, double) { return 0.0; });
    EXPECT_EQ(ns.effective_order(), 3);
    ns.step();
    EXPECT_EQ(ns.last_step_order(), 3);
}

TEST(SolverCoreRamp, FirstStepLambdaMatchesEffectiveGamma0) {
    // Regression for the old first-step gamma0 mismatch: the velocity
    // Helmholtz operator of a ramped step must use the *effective* order's
    // gamma0, not the requested order's.
    nektar::SerialNsOptions opts;
    opts.dt = 2e-3;
    opts.viscosity = 0.05;
    opts.time_order = 2;
    nektar::SerialNS2d ns(decay_disc(4), opts);
    ns.set_initial([](double, double y) { return std::sin(kPi * y); },
                   [](double, double) { return 0.0; });
    EXPECT_TRUE(std::isnan(ns.last_velocity_lambda()));
    ns.step(); // effective order 1: gamma0 = 1
    EXPECT_DOUBLE_EQ(ns.last_velocity_lambda(), 1.0 / (opts.viscosity * opts.dt));
    ns.step(); // full order 2: gamma0 = 3/2
    EXPECT_DOUBLE_EQ(ns.last_velocity_lambda(), 1.5 / (opts.viscosity * opts.dt));
}

TEST(SolverCoreRamp, FirstOrder2StepEqualsFirstOrder1Step) {
    // With matching lambda, the first step of an order-2 run is *exactly* an
    // order-1 step (no history exists yet), bit for bit.
    const auto u0 = [](double x, double y) { return std::sin(kPi * y) + 0.1 * x; };
    const auto v0 = [](double x, double y) { return 0.05 * std::sin(kPi * x) * y; };
    auto run_one_step = [&](int je) {
        nektar::SerialNsOptions opts;
        opts.dt = 1e-3;
        opts.viscosity = 0.05;
        opts.time_order = je;
        nektar::SerialNS2d ns(decay_disc(5), opts);
        ns.set_initial(u0, v0);
        ns.step();
        return std::vector<double>(ns.u_quad());
    };
    const auto u_je1 = run_one_step(1);
    const auto u_je2 = run_one_step(2);
    ASSERT_EQ(u_je1.size(), u_je2.size());
    for (std::size_t i = 0; i < u_je1.size(); ++i) EXPECT_EQ(u_je1[i], u_je2[i]) << "i=" << i;
}

TEST(SolverCoreRamp, FourierFirstStepLambdaMatchesEffectiveGamma0) {
    auto m = mesh::rectangle_quads(2, 2, 0.0, 1.0, 0.0, 1.0);
    m.tag_boundary(mesh::BoundaryTag::Wall, [](double, double) { return true; });
    const auto disc =
        std::make_shared<nektar::Discretization>(std::make_shared<mesh::Mesh>(std::move(m)), 4);
    nektar::FourierNsOptions o;
    o.dt = 1e-3;
    o.viscosity = 0.05;
    o.num_modes = 2;
    o.time_order = 2;
    o.velocity_bc.dirichlet = {mesh::BoundaryTag::Wall};
    o.pressure_bc.dirichlet.clear();
    o.pressure_bc.pin_first_dof = true;
    nektar::FourierNS ns(disc, o);
    ns.set_initial([](double, double y, double z) { return std::sin(kPi * y) * std::sin(z); },
                   [](double, double, double) { return 0.0; },
                   [](double, double, double) { return 0.0; });
    ns.step(); // mean mode (beta = 0): lambda = gamma0_eff/(nu dt) = 1/(nu dt)
    EXPECT_DOUBLE_EQ(ns.last_velocity_lambda(), 1.0 / (o.viscosity * o.dt));
    ns.step();
    EXPECT_DOUBLE_EQ(ns.last_velocity_lambda(), 1.5 / (o.viscosity * o.dt));
}

TEST(SolverCoreRamp, AleLambdaFollowsTheRamp) {
    const auto m = mesh::flapping_body_mesh(1);
    nektar::AleOptions opts;
    opts.dt = 2e-3;
    opts.viscosity = 0.05;
    opts.time_order = 3;
    opts.body_velocity = [](double t) { return 0.1 * std::sin(5.0 * t); };
    opts.u_bc = [](double x, double y, double) {
        const bool body = std::abs(x) <= 0.5 + 1e-6 && std::abs(y) <= 0.5 + 1e-6;
        return body ? 0.0 : 1.0;
    };
    nektar::AleNS2d ns(m, 3, opts);
    ns.set_initial([](double, double) { return 1.0; }, [](double, double) { return 0.0; });
    ns.step();
    EXPECT_EQ(ns.last_step_order(), 1);
    EXPECT_DOUBLE_EQ(ns.last_velocity_lambda(), 1.0 / (opts.viscosity * opts.dt));
    ns.step();
    EXPECT_EQ(ns.last_step_order(), 2);
    EXPECT_DOUBLE_EQ(ns.last_velocity_lambda(), 1.5 / (opts.viscosity * opts.dt));
    ns.step();
    EXPECT_EQ(ns.last_step_order(), 3);
    EXPECT_DOUBLE_EQ(ns.last_velocity_lambda(), (11.0 / 6.0) / (opts.viscosity * opts.dt));
}

// ---------------------------------------------------------------------------
// Golden equivalence: the refactored solvers must reproduce the step results
// of the pre-refactor implementations (values captured from the code at the
// previous commit, 3 steps each, default order-2 integration).

void expect_golden(double value, double golden) {
    EXPECT_NEAR(value, golden, std::max(1e-8 * std::abs(golden), 1e-10));
}

TEST(SplittingGolden, SerialKovasznayMatchesPreRefactorSteps) {
    const double re = 40.0;
    const double lam = re / 2.0 - std::sqrt(re * re / 4.0 + 4.0 * kPi * kPi);
    auto ku = [=](double x, double y) { return 1.0 - std::exp(lam * x) * std::cos(2.0 * kPi * y); };
    auto kv = [=](double x, double y) {
        return lam / (2.0 * kPi) * std::exp(lam * x) * std::sin(2.0 * kPi * y);
    };
    auto m = mesh::rectangle_quads(3, 2, -0.5, 1.0, -0.5, 0.5);
    m.tag_boundary(mesh::BoundaryTag::Wall, [](double, double) { return true; });
    m.tag_boundary(mesh::BoundaryTag::Outflow, [](double x, double) { return x > 1.0 - 1e-9; });
    const auto disc =
        std::make_shared<nektar::Discretization>(std::make_shared<mesh::Mesh>(std::move(m)), 5);
    nektar::SerialNsOptions opts;
    opts.dt = 1e-3;
    opts.viscosity = 1.0 / re;
    opts.time_order = 2;
    opts.u_bc = [&](double x, double y, double) { return ku(x, y); };
    opts.v_bc = [&](double x, double y, double) { return kv(x, y); };
    nektar::SerialNS2d ns(disc, opts);
    ns.set_initial(ku, kv);
    for (int s = 0; s < 3; ++s) ns.step();

    const auto& u = ns.u_quad();
    const auto& v = ns.v_quad();
    ASSERT_EQ(u.size(), 294u);
    double su = 0.0, sv = 0.0;
    for (double x : u) su += x * x;
    for (double x : v) sv += x * x;
    expect_golden(su, 470.19696380018235);
    expect_golden(u[0], 2.6190997292659639);
    expect_golden(u[u.size() / 2], -0.61909972926596391);
    expect_golden(u.back(), 1.3814633335317423);
    expect_golden(sv, 1.9384998113276619);
    expect_golden(ns.divergence_norm(), 0.014146581792959873);
}

TEST(SplittingGolden, FourierShearMatchesPreRefactorSteps) {
    auto m = mesh::rectangle_quads(2, 2, 0.0, 1.0, 0.0, 1.0);
    m.tag_boundary(mesh::BoundaryTag::Side, [](double, double) { return true; });
    m.tag_boundary(mesh::BoundaryTag::Wall,
                   [](double, double y) { return y < 1e-9 || y > 1.0 - 1e-9; });
    const auto disc =
        std::make_shared<nektar::Discretization>(std::make_shared<mesh::Mesh>(std::move(m)), 4);
    nektar::FourierNsOptions o;
    o.dt = 1e-3;
    o.viscosity = 0.05;
    o.num_modes = 4;
    o.velocity_bc.dirichlet = {mesh::BoundaryTag::Wall};
    o.pressure_bc.dirichlet.clear();
    o.pressure_bc.pin_first_dof = true;
    nektar::FourierNS ns(disc, o);
    ns.set_initial(
        [](double, double y, double z) {
            return std::sin(kPi * y) * (std::sin(z) + 0.3 * std::cos(2.0 * z));
        },
        [](double, double, double) { return 0.0; },
        [](double, double y, double z) { return 0.1 * std::sin(kPi * y) * std::cos(z); });
    for (int s = 0; s < 3; ++s) ns.step();

    const auto sumsq = [](std::span<const double> q) {
        double s = 0.0;
        for (double v : q) s += v * v;
        return s;
    };
    const auto p0 = ns.plane_quad(0, 0);
    const auto p3 = ns.plane_quad(0, 3);
    const auto w2 = ns.plane_quad(2, 2);
    ASSERT_EQ(p0.size(), 144u);
    expect_golden(sumsq(p0), 8.8741283787259468e-08);
    expect_golden(p0[p0.size() / 2], -3.3238795733258307e-05);
    expect_golden(sumsq(p3), 17.940158750665507);
    expect_golden(p3[p3.size() / 2], -0.49908830971610985);
    expect_golden(sumsq(w2), 0.029249709654206309);
    expect_golden(w2[w2.size() / 2], 0.021334983810618945);
    expect_golden(ns.l2_error_3d(nullptr, 0, ns.time(),
                                 [](double, double, double, double) { return 0.0; }),
                  0.52114228297739418);
}

TEST(SplittingGolden, AleFlappingBodyMatchesPreRefactorSteps) {
    const auto m = mesh::flapping_body_mesh(1);
    nektar::AleOptions opts;
    opts.dt = 2e-3;
    opts.viscosity = 0.05;
    opts.body_velocity = [](double t) { return 0.3 * std::sin(5.0 * t); };
    opts.cg.tolerance = 1e-12;
    opts.u_bc = [](double x, double y, double) {
        const bool body = std::abs(x) <= 0.5 + 1e-6 && std::abs(y) <= 0.5 + 1e-6;
        return body ? 0.0 : 1.0;
    };
    opts.v_bc = [&opts](double x, double y, double t) {
        const bool body = std::abs(x) <= 0.5 + 1e-6 && std::abs(y) <= 0.5 + 1e-6;
        return body ? opts.body_velocity(t) : 0.0;
    };
    nektar::AleNS2d ns(m, 3, opts);
    ns.set_initial([](double, double) { return 1.0; }, [](double, double) { return 0.0; });
    for (int s = 0; s < 3; ++s) ns.step();

    const auto sumsq = [](const std::vector<double>& q) {
        double s = 0.0;
        for (double v : q) s += v * v;
        return s;
    };
    ASSERT_EQ(ns.u_quad().size(), 1700u);
    expect_golden(sumsq(ns.u_quad()), 1899.0950707710058);
    expect_golden(ns.u_quad().back(), 1.0088627797251195);
    expect_golden(sumsq(ns.v_quad()), 34.773488610678719);
    expect_golden(ns.v_quad().back(), -1.6898910654123833e-06);
    expect_golden(sumsq(ns.mesh_velocity_quad()), 0.008863877361229509);
}

// ---------------------------------------------------------------------------
// Temporal convergence: observed order of accuracy at Je = 1, 2, 3.

// Observed slopes approach Je from *above* on this problem (the O(dt^{Je+1})
// correction enters with the same sign and decays as dt shrinks), so the dt
// pairs below sit in the asymptotic range and the windows allow a slightly
// superconvergent tail while still excluding the neighbouring orders.

TEST(TemporalConvergence, SerialFirstOrderSlope) {
    const double e1 = serial_decay_error(1, 0.0025, 0.1, 1.0);
    const double e2 = serial_decay_error(1, 0.00125, 0.1, 1.0);
    const double p = observed_order(e1, e2);
    EXPECT_GT(p, 0.8) << "e1=" << e1 << " e2=" << e2;
    EXPECT_LT(p, 1.6);
}

TEST(TemporalConvergence, SerialSecondOrderSlope) {
    const double e1 = serial_decay_error(2, 0.0025, 0.1, 1.0);
    const double e2 = serial_decay_error(2, 0.00125, 0.1, 1.0);
    const double p = observed_order(e1, e2);
    EXPECT_GT(p, 1.8) << "e1=" << e1 << " e2=" << e2;
    EXPECT_LT(p, 2.6);
}

TEST(TemporalConvergence, SerialThirdOrderSlope) {
    const double e1 = serial_decay_error(3, 0.005, 0.1, 1.0);
    const double e2 = serial_decay_error(3, 0.0025, 0.1, 1.0);
    const double p = observed_order(e1, e2);
    EXPECT_GT(p, 2.8) << "e1=" << e1 << " e2=" << e2;
    EXPECT_LT(p, 3.7);
}

/// NekTar-F on the advected shear u = sin(pi y) sin(z - w0 t) e^{-nu(pi^2+1)t},
/// v = 0, w = w0: an exact Navier-Stokes solution with p = 0 whose nonzero
/// nonlinear term N_u = -w0 du/dz exercises the beta extrapolation weights.
double fourier_shear_error(int je, double dt, double T, double nu, double w0) {
    const auto exact_u = [=](double, double y, double z, double t) {
        return std::sin(kPi * y) * std::sin(z - w0 * t) * std::exp(-nu * (kPi * kPi + 1.0) * t);
    };
    auto m = mesh::rectangle_quads(2, 2, 0.0, 1.0, 0.0, 1.0);
    m.tag_boundary(mesh::BoundaryTag::Side, [](double, double) { return true; });
    m.tag_boundary(mesh::BoundaryTag::Wall,
                   [](double, double y) { return y < 1e-9 || y > 1.0 - 1e-9; });
    const auto disc =
        std::make_shared<nektar::Discretization>(std::make_shared<mesh::Mesh>(std::move(m)), 8);
    nektar::FourierNsOptions o;
    o.dt = dt;
    o.viscosity = nu;
    o.num_modes = 4;
    o.time_order = je;
    o.velocity_bc.dirichlet = {mesh::BoundaryTag::Wall};
    o.pressure_bc.dirichlet.clear();
    o.pressure_bc.pin_first_dof = true;
    o.w_bc = [=](double, double, double) { return w0; };
    nektar::FourierNS ns(disc, o);
    ns.set_initial_exact(exact_u, [](double, double, double, double) { return 0.0; },
                         [=](double, double, double, double) { return w0; });
    const int steps = static_cast<int>(std::lround(T / dt));
    for (int s = 0; s < steps; ++s) ns.step();
    return ns.l2_error_3d(nullptr, 0, ns.time(), exact_u);
}

TEST(TemporalConvergence, FourierSecondOrderSlope) {
    const double e1 = fourier_shear_error(2, 0.02, 0.2, 0.1, 1.0);
    const double e2 = fourier_shear_error(2, 0.01, 0.2, 0.1, 1.0);
    const double p = observed_order(e1, e2);
    EXPECT_GT(p, 1.6) << "e1=" << e1 << " e2=" << e2;
    EXPECT_LT(p, 2.4);
}

TEST(TemporalConvergence, FourierThirdOrderSlope) {
    const double e1 = fourier_shear_error(3, 0.02, 0.2, 0.1, 1.0);
    const double e2 = fourier_shear_error(3, 0.01, 0.2, 0.1, 1.0);
    const double p = observed_order(e1, e2);
    EXPECT_GT(p, 2.5) << "e1=" << e1 << " e2=" << e2;
    EXPECT_LT(p, 3.5);
}

/// NekTar-ALE on the same shear-decay problem as the serial solver, with the
/// body at rest (the mesh never moves, so the ALE machinery reduces to the
/// PCG-based fixed-mesh solver and the exact solution applies).
double ale_decay_error(int je, double dt, double T, double nu) {
    const auto exact = [nu](double, double y, double t) {
        return std::sin(kPi * y) * std::exp(-nu * kPi * kPi * t);
    };
    auto m = mesh::rectangle_quads(2, 2, 0.0, 1.0, 0.0, 1.0);
    m.tag_boundary(mesh::BoundaryTag::Wall, [](double, double) { return true; });
    m.tag_boundary(mesh::BoundaryTag::Outflow, [](double x, double) { return x > 1.0 - 1e-9; });
    nektar::AleOptions opts;
    opts.dt = dt;
    opts.viscosity = nu;
    opts.time_order = je;
    opts.cg.tolerance = 1e-13;
    opts.u_bc = exact;
    nektar::AleNS2d ns(m, 8, opts);
    ns.set_initial_exact(exact, [](double, double, double) { return 0.0; });
    const int steps = static_cast<int>(std::lround(T / dt));
    for (int s = 0; s < steps; ++s) ns.step();
    std::vector<double> ex(ns.disc().quad_size());
    ns.disc().eval_at_quad([&](double x, double y) { return exact(x, y, ns.time()); }, ex);
    for (std::size_t i = 0; i < ex.size(); ++i) ex[i] -= ns.u_quad()[i];
    return ns.disc().l2_norm(ex);
}

TEST(TemporalConvergence, AleSecondOrderSlopeAndThirdOrderBeatsIt) {
    const double e2c = ale_decay_error(2, 0.005, 0.05, 1.0);
    const double e2f = ale_decay_error(2, 0.0025, 0.05, 1.0);
    const double p = observed_order(e2c, e2f);
    EXPECT_GT(p, 1.8) << "e2c=" << e2c << " e2f=" << e2f;
    EXPECT_LT(p, 2.6);
    // Order 3 at the same dt must be strictly more accurate.
    const double e3 = ale_decay_error(3, 0.005, 0.05, 1.0);
    EXPECT_LT(e3, 0.5 * e2c) << "e3=" << e3 << " e2c=" << e2c;
}

} // namespace
