#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "mesh/generators.hpp"
#include "nektar/ns_serial.hpp"

namespace {

using nektar::Discretization;
using nektar::SerialNsOptions;
using nektar::SerialNS2d;

TEST(Diagnostics, VorticityOfTaylorGreenField) {
    // u = -cos(pi x) sin(pi y), v = sin(pi x) cos(pi y):
    // omega = dv/dx - du/dy = 2 pi cos(pi x) cos(pi y).
    auto m = mesh::rectangle_quads(2, 2, 0.0, 2.0, 0.0, 2.0);
    m.tag_boundary(mesh::BoundaryTag::Wall, [](double, double) { return true; });
    const auto disc =
        std::make_shared<Discretization>(std::make_shared<mesh::Mesh>(std::move(m)), 8);
    SerialNsOptions opts;
    opts.dt = 1e-3;
    opts.viscosity = 0.05;
    opts.pressure_bc.dirichlet.clear();
    opts.pressure_bc.pin_first_dof = true;
    SerialNS2d ns(disc, opts);
    ns.set_initial(
        [](double x, double y) {
            return -std::cos(std::numbers::pi * x) * std::sin(std::numbers::pi * y);
        },
        [](double x, double y) {
            return std::sin(std::numbers::pi * x) * std::cos(std::numbers::pi * y);
        });
    const auto w = ns.vorticity_quad();
    const double err = disc->l2_error(w, [](double x, double y) {
        return 2.0 * std::numbers::pi * std::cos(std::numbers::pi * x) *
               std::cos(std::numbers::pi * y);
    });
    EXPECT_LT(err, 1e-4);
}

TEST(Diagnostics, UnforcedDecayingFlowLosesEnergy) {
    // With zero boundary velocity and no forcing, kinetic energy must fall
    // monotonically (viscous dissipation) — a physical sanity invariant.
    auto m = mesh::rectangle_quads(2, 2, 0.0, 2.0, 0.0, 2.0);
    m.tag_boundary(mesh::BoundaryTag::Wall, [](double, double) { return true; });
    const auto disc =
        std::make_shared<Discretization>(std::make_shared<mesh::Mesh>(std::move(m)), 7);
    SerialNsOptions opts;
    opts.dt = 2e-3;
    opts.viscosity = 0.05;
    opts.pressure_bc.dirichlet.clear();
    opts.pressure_bc.pin_first_dof = true;
    SerialNS2d ns(disc, opts);
    ns.set_initial(
        [](double x, double y) {
            return -std::cos(std::numbers::pi * x) * std::sin(std::numbers::pi * y);
        },
        [](double x, double y) {
            return std::sin(std::numbers::pi * x) * std::cos(std::numbers::pi * y);
        });
    const auto energy = [&] {
        std::vector<double> ke(disc->quad_size());
        for (std::size_t i = 0; i < ke.size(); ++i)
            ke[i] = ns.u_quad()[i] * ns.u_quad()[i] + ns.v_quad()[i] * ns.v_quad()[i];
        return disc->integrate(ke);
    };
    double prev = energy();
    for (int s = 0; s < 20; ++s) {
        ns.step();
        const double e = energy();
        EXPECT_LT(e, prev * (1.0 + 1e-10)) << "energy rose at step " << s;
        prev = e;
    }
}

TEST(Diagnostics, TimeAdvancesByDt) {
    auto m = mesh::rectangle_quads(2, 2, 0.0, 1.0, 0.0, 1.0);
    m.tag_boundary(mesh::BoundaryTag::Wall, [](double, double) { return true; });
    const auto disc =
        std::make_shared<Discretization>(std::make_shared<mesh::Mesh>(std::move(m)), 3);
    SerialNsOptions opts;
    opts.dt = 0.25;
    opts.viscosity = 0.1;
    opts.pressure_bc.dirichlet.clear();
    opts.pressure_bc.pin_first_dof = true;
    SerialNS2d ns(disc, opts);
    ns.set_initial([](double, double) { return 0.0; }, [](double, double) { return 0.0; });
    EXPECT_DOUBLE_EQ(ns.time(), 0.0);
    ns.step();
    ns.step();
    EXPECT_DOUBLE_EQ(ns.time(), 0.5);
}

TEST(Diagnostics, ZeroFieldStaysZero) {
    auto m = mesh::rectangle_quads(3, 3, 0.0, 1.0, 0.0, 1.0);
    m.tag_boundary(mesh::BoundaryTag::Wall, [](double, double) { return true; });
    const auto disc =
        std::make_shared<Discretization>(std::make_shared<mesh::Mesh>(std::move(m)), 4);
    SerialNsOptions opts;
    opts.dt = 1e-2;
    opts.viscosity = 0.1;
    opts.pressure_bc.dirichlet.clear();
    opts.pressure_bc.pin_first_dof = true;
    SerialNS2d ns(disc, opts);
    ns.set_initial([](double, double) { return 0.0; }, [](double, double) { return 0.0; });
    for (int s = 0; s < 5; ++s) ns.step();
    for (double v : ns.u_quad()) EXPECT_NEAR(v, 0.0, 1e-12);
    for (double v : ns.v_quad()) EXPECT_NEAR(v, 0.0, 1e-12);
}

} // namespace
