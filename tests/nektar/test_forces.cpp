#include "nektar/forces.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mesh/generators.hpp"

namespace {

using nektar::body_force;
using nektar::Discretization;

std::shared_ptr<Discretization> channel(std::size_t order) {
    // Channel [0,2] x [0,1]; walls at y = 0 and y = 1.
    auto m = mesh::rectangle_quads(4, 2, 0.0, 2.0, 0.0, 1.0);
    m.tag_boundary(mesh::BoundaryTag::Wall,
                   [](double, double y) { return y < 1e-9 || y > 1.0 - 1e-9; });
    return std::make_shared<Discretization>(std::make_shared<mesh::Mesh>(std::move(m)), order);
}

/// Project an analytic field into per-element modal coefficients.
std::vector<double> project(const Discretization& d,
                            const std::function<double(double, double)>& f) {
    std::vector<double> q(d.quad_size()), modal(d.modal_size());
    d.eval_at_quad(f, q);
    d.project(q, modal);
    return modal;
}

TEST(BodyForce, PoiseuilleWallShear) {
    // u = y (1 - y), v = 0, p = 0: the shear the fluid exerts on each wall is
    // nu * |du/dy| per unit length, directed +x (the flow drags the wall).
    const double nu = 0.3;
    const auto d = channel(4);
    const auto u = project(*d, [](double, double y) { return y * (1.0 - y); });
    const auto v = project(*d, [](double, double) { return 0.0; });
    const auto p = project(*d, [](double, double) { return 0.0; });
    const auto f = body_force(*d, u, v, p, nu, mesh::BoundaryTag::Wall);
    // du/dy = 1 at y=0 and -1 at y=1; both walls feel +x drag of nu * L = 0.6.
    EXPECT_NEAR(f.fx, 2.0 * nu * 2.0 * 1.0, 1e-9);
    EXPECT_NEAR(f.fy, 0.0, 1e-9);
}

TEST(BodyForce, HydrostaticPressureOnBody) {
    // Constant pressure p0 around a closed body: net force must vanish.
    const auto m = mesh::bluff_body_mesh();
    const auto d =
        std::make_shared<Discretization>(std::make_shared<mesh::Mesh>(m), 3);
    const auto zero = project(*d, [](double, double) { return 0.0; });
    const auto p = project(*d, [](double, double) { return 2.5; });
    const auto f = body_force(*d, zero, zero, p, 0.1, mesh::BoundaryTag::Body);
    EXPECT_NEAR(f.fx, 0.0, 1e-9);
    EXPECT_NEAR(f.fy, 0.0, 1e-9);
}

TEST(BodyForce, LinearPressureGivesBuoyancy) {
    // p = y on the unit square body (2h)^2: net force = -grad p * area = -area
    // in y... the fluid pushes the body toward low pressure: F = -∮ p n_body ds
    // = -(area) * grad p = (0, -4 h^2).
    const auto m = mesh::bluff_body_mesh();
    const auto d =
        std::make_shared<Discretization>(std::make_shared<mesh::Mesh>(m), 3);
    const auto zero = project(*d, [](double, double) { return 0.0; });
    const auto p = project(*d, [](double, double y) { return y; });
    const auto f = body_force(*d, zero, zero, p, 0.0, mesh::BoundaryTag::Body);
    EXPECT_NEAR(f.fx, 0.0, 1e-9);
    EXPECT_NEAR(f.fy, -1.0, 1e-6); // body is 1 x 1
}

TEST(BodyForce, PointEvaluationMatchesQuadValues) {
    // eval_modal at a quadrature point's reference coordinates must agree
    // with interp_to_quad there (both shapes).
    for (bool tris : {false, true}) {
        auto m = tris ? mesh::rectangle_tris(2, 2, 0.0, 1.0, 0.0, 1.0)
                      : mesh::rectangle_quads(2, 2, 0.0, 1.0, 0.0, 1.0);
        const auto d =
            std::make_shared<Discretization>(std::make_shared<mesh::Mesh>(std::move(m)), 5);
        const auto modal = project(*d, [](double x, double y) { return std::sin(x) * y + x; });
        std::vector<double> quad(d->quad_size());
        d->to_quad(modal, quad);
        for (std::size_t e = 0; e < d->num_elements(); e += 3) {
            const auto& ops = d->ops(e);
            const auto me = d->modal_block(std::span<const double>(modal), e);
            for (std::size_t q = 0; q < ops.num_quad(); q += 7) {
                const double val = ops.eval_modal(me, ops.expansion().xi1(q),
                                                  ops.expansion().xi2(q));
                EXPECT_NEAR(val, d->quad_block(std::span<const double>(quad), e)[q], 1e-10);
            }
        }
    }
}

TEST(BodyForce, GradientEvaluationMatchesAnalytic) {
    const auto d = channel(5);
    const auto modal = project(*d, [](double x, double y) { return x * x * y - y * y; });
    for (std::size_t e = 0; e < d->num_elements(); ++e) {
        const auto& ops = d->ops(e);
        const auto me = d->modal_block(std::span<const double>(modal), e);
        const auto pm = ops.map_at(0.3, -0.4);
        double dx, dy;
        ops.eval_modal_grad(me, 0.3, -0.4, dx, dy);
        EXPECT_NEAR(dx, 2.0 * pm.x * pm.y, 1e-9);
        EXPECT_NEAR(dy, pm.x * pm.x - 2.0 * pm.y, 1e-9);
    }
}

} // namespace
