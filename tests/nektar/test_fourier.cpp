#include "nektar/ns_fourier.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "mesh/generators.hpp"
#include "nektar/fourier_transpose.hpp"

namespace {

using nektar::Discretization;
using nektar::FourierNS;
using nektar::FourierNsOptions;
using nektar::FourierTranspose;

netsim::NetworkModel test_net() {
    netsim::NetworkModel n;
    n.name = "test";
    n.latency_us = 10.0;
    n.bandwidth_mbps = 100.0;
    return n;
}

TEST(FourierTranspose, SerialRoundTrip) {
    const std::size_t nq = 17, npl = 6;
    FourierTranspose tr(nullptr, nq, npl);
    std::vector<double> planes(tr.planes_buffer_size());
    for (std::size_t i = 0; i < planes.size(); ++i) planes[i] = static_cast<double>(i) * 0.25;
    std::vector<double> lines(tr.lines_buffer_size());
    tr.to_lines(nullptr, planes, lines);
    std::vector<double> back(planes.size(), -1.0);
    tr.to_planes(nullptr, lines, back);
    for (std::size_t i = 0; i < planes.size(); ++i) EXPECT_DOUBLE_EQ(back[i], planes[i]);
}

class TransposeRanks : public ::testing::TestWithParam<int> {};

TEST_P(TransposeRanks, ParallelRoundTripAndLayout) {
    const int p = GetParam();
    const std::size_t nq = 23, npl = 4; // nq not divisible by p: exercises padding
    simmpi::World world(p, test_net());
    world.run([&](simmpi::Comm& c) {
        FourierTranspose tr(&c, nq, npl);
        std::vector<double> planes(tr.planes_buffer_size());
        // Value encodes (global plane, point) uniquely.
        for (std::size_t lp = 0; lp < npl; ++lp)
            for (std::size_t i = 0; i < nq; ++i)
                planes[lp * nq + i] =
                    1000.0 * static_cast<double>(c.rank() * npl + lp) + static_cast<double>(i);
        std::vector<double> lines(tr.lines_buffer_size());
        tr.to_lines(&c, planes, lines);
        const std::size_t tp = tr.total_planes();
        for (std::size_t i = 0; i < tr.chunk(); ++i) {
            const std::size_t gi = tr.global_point(i, c.rank());
            for (std::size_t gp = 0; gp < tp; ++gp) {
                const double expect =
                    gi < nq ? 1000.0 * static_cast<double>(gp) + static_cast<double>(gi) : 0.0;
                EXPECT_DOUBLE_EQ(lines[i * tp + gp], expect);
            }
        }
        std::vector<double> back(planes.size(), -1.0);
        tr.to_planes(&c, lines, back);
        for (std::size_t i = 0; i < planes.size(); ++i) EXPECT_DOUBLE_EQ(back[i], planes[i]);
    });
}

INSTANTIATE_TEST_SUITE_P(Ranks, TransposeRanks, ::testing::Values(1, 2, 4));

std::shared_ptr<Discretization> shear_disc(std::size_t order) {
    // [0,1]^2, Dirichlet walls at y = 0,1, natural (Side) at x = 0,1.
    auto m = mesh::rectangle_quads(2, 2, 0.0, 1.0, 0.0, 1.0);
    m.tag_boundary(mesh::BoundaryTag::Side, [](double, double) { return true; });
    m.tag_boundary(mesh::BoundaryTag::Wall,
                   [](double, double y) { return y < 1e-9 || y > 1.0 - 1e-9; });
    return std::make_shared<Discretization>(std::make_shared<mesh::Mesh>(std::move(m)), order);
}

FourierNsOptions shear_opts(double nu, double dt) {
    FourierNsOptions o;
    o.dt = dt;
    o.viscosity = nu;
    o.num_modes = 4;
    o.velocity_bc.dirichlet = {mesh::BoundaryTag::Wall};
    o.pressure_bc.dirichlet.clear();
    o.pressure_bc.pin_first_dof = true;
    return o;
}

/// u = sin(pi y) sin(z), v = w = 0 is divergence free, has zero nonlinear
/// term, and decays at exactly nu (pi^2 + 1): it validates the per-mode
/// Helmholtz shift beta_k^2 = 1 for k = 1 (Lz = 2 pi).
TEST(FourierNS, ShearModeDecayRate) {
    const double nu = 0.05, dt = 1e-3;
    const auto disc = shear_disc(6);
    FourierNS ns(disc, shear_opts(nu, dt));
    ns.set_initial(
        [](double, double y, double z) { return std::sin(std::numbers::pi * y) * std::sin(z); },
        [](double, double, double) { return 0.0; }, [](double, double, double) { return 0.0; });
    const int nsteps = 50;
    for (int s = 0; s < nsteps; ++s) ns.step();
    const double t = ns.time();
    const double decay = std::exp(-nu * (std::numbers::pi * std::numbers::pi + 1.0) * t);
    const double err = ns.l2_error_3d(nullptr, 0, t, [&](double, double y, double z, double) {
        return std::sin(std::numbers::pi * y) * std::sin(z) * decay;
    });
    EXPECT_LT(err, 2e-4);
    // And the shift matters: the wrong rate must be clearly distinguishable.
    const double wrong = std::exp(-nu * std::numbers::pi * std::numbers::pi * t);
    const double err_wrong =
        ns.l2_error_3d(nullptr, 0, t, [&](double, double y, double z, double) {
            return std::sin(std::numbers::pi * y) * std::sin(z) * wrong;
        });
    EXPECT_GT(err_wrong, 5.0 * err);
}

TEST(FourierNS, MeanModeMatchesExactDiffusion) {
    // w = sin(pi x) sin(pi y), u = v = 0: z-independent pure diffusion of the
    // spanwise velocity, exercising only the k = 0 path.
    const double nu = 0.05, dt = 1e-3;
    auto m = mesh::rectangle_quads(2, 2, 0.0, 1.0, 0.0, 1.0);
    m.tag_boundary(mesh::BoundaryTag::Wall, [](double, double) { return true; });
    const auto disc =
        std::make_shared<Discretization>(std::make_shared<mesh::Mesh>(std::move(m)), 6);
    FourierNsOptions o = shear_opts(nu, dt);
    o.velocity_bc.dirichlet = {mesh::BoundaryTag::Wall};
    FourierNS ns(disc, o);
    ns.set_initial([](double, double, double) { return 0.0; },
                   [](double, double, double) { return 0.0; },
                   [](double x, double y, double) {
                       return std::sin(std::numbers::pi * x) * std::sin(std::numbers::pi * y);
                   });
    for (int s = 0; s < 50; ++s) ns.step();
    const double t = ns.time();
    const double decay = std::exp(-2.0 * nu * std::numbers::pi * std::numbers::pi * t);
    const double err = ns.l2_error_3d(nullptr, 2, t, [&](double x, double y, double, double) {
        return std::sin(std::numbers::pi * x) * std::sin(std::numbers::pi * y) * decay;
    });
    EXPECT_LT(err, 2e-4);
}

/// Kovasznay flow is a steady *nonlinear* Navier-Stokes solution that is
/// z-independent: it validates the divergence-form nonlinear step (products
/// + transposes + derivatives) end to end, since holding the steady state
/// requires the convective terms to be exactly right.
TEST(FourierNS, KovasznayHoldsThroughTheNonlinearPath) {
    const double re = 40.0;
    const double lam =
        re / 2.0 - std::sqrt(re * re / 4.0 + 4.0 * std::numbers::pi * std::numbers::pi);
    const auto ku = [=](double x, double y) {
        return 1.0 - std::exp(lam * x) * std::cos(2.0 * std::numbers::pi * y);
    };
    const auto kv = [=](double x, double y) {
        return lam / (2.0 * std::numbers::pi) * std::exp(lam * x) *
               std::sin(2.0 * std::numbers::pi * y);
    };
    auto m = mesh::rectangle_quads(3, 2, -0.5, 1.0, -0.5, 0.5);
    m.tag_boundary(mesh::BoundaryTag::Wall, [](double, double) { return true; });
    m.tag_boundary(mesh::BoundaryTag::Outflow, [](double x, double) { return x > 1.0 - 1e-9; });
    const auto disc =
        std::make_shared<Discretization>(std::make_shared<mesh::Mesh>(std::move(m)), 7);
    FourierNsOptions o;
    o.dt = 2e-3;
    o.viscosity = 1.0 / re;
    o.num_modes = 2;
    o.velocity_bc.dirichlet = {mesh::BoundaryTag::Wall};
    o.pressure_bc.dirichlet = {mesh::BoundaryTag::Outflow};
    o.u_bc = [&](double x, double y, double) { return ku(x, y); };
    o.v_bc = [&](double x, double y, double) { return kv(x, y); };
    FourierNS ns(disc, o);
    ns.set_initial([&](double x, double y, double) { return ku(x, y); },
                   [&](double x, double y, double) { return kv(x, y); },
                   [](double, double, double) { return 0.0; });
    for (int s = 0; s < 60; ++s) ns.step();
    const double err = ns.l2_error_3d(nullptr, 0, ns.time(),
                                      [&](double x, double y, double, double) {
                                          return ku(x, y);
                                      });
    EXPECT_LT(err, 0.03);
    // Higher modes must stay negligible for a z-independent flow.
    for (std::size_t mm = 1; mm < ns.local_modes(); ++mm) {
        for (int plane = 0; plane < 2; ++plane) {
            const auto q = ns.plane_quad(0, 2 * mm + static_cast<std::size_t>(plane));
            for (double v : q) EXPECT_LT(std::abs(v), 1e-6);
        }
    }
}

TEST(FourierNS, ParallelMatchesSerial) {
    const double nu = 0.05, dt = 2e-3;
    const int nsteps = 10;
    const auto run_error = [&](simmpi::Comm* comm) {
        const auto disc = shear_disc(5);
        FourierNS ns(disc, shear_opts(nu, dt), comm);
        ns.set_initial(
            [](double, double y, double z) {
                return std::sin(std::numbers::pi * y) * (std::sin(z) + 0.3 * std::cos(2.0 * z));
            },
            [](double, double, double) { return 0.0; },
            [](double, double, double) { return 0.0; });
        for (int s = 0; s < nsteps; ++s) ns.step();
        return ns.l2_error_3d(comm, 0, ns.time(),
                              [](double, double, double, double) { return 0.0; });
    };
    const double serial_norm = run_error(nullptr);
    for (int p : {2, 4}) {
        simmpi::World world(p, test_net());
        std::vector<double> norms(static_cast<std::size_t>(p));
        world.run([&](simmpi::Comm& c) {
            norms[static_cast<std::size_t>(c.rank())] = run_error(&c);
        });
        for (double n : norms) EXPECT_NEAR(n, serial_norm, 1e-10) << "p=" << p;
    }
}

TEST(FourierNS, ModeEnergyParseval) {
    // sum over modes (with the conjugate-pair factor 2 for k > 0) of the
    // plane-integrated |u_k|^2 equals the z-averaged volume integral of u^2.
    const auto disc = shear_disc(5);
    FourierNS ns(disc, shear_opts(0.05, 1e-3));
    ns.set_initial(
        [](double x, double y, double z) {
            return std::sin(std::numbers::pi * y) * (1.0 + 0.5 * std::sin(z)) + 0.1 * x;
        },
        [](double, double, double) { return 0.0; }, [](double, double, double) { return 0.0; });
    double spectral_sum = 0.0;
    for (std::size_t m = 0; m < ns.total_modes(); ++m)
        spectral_sum += (m == 0 ? 1.0 : 2.0) * ns.mode_energy(0, m);
    // z-averaged physical energy via the solver's own reconstruction.
    const double err0 = ns.l2_error_3d(nullptr, 0, 0.0,
                                       [](double, double, double, double) { return 0.0; });
    EXPECT_NEAR(spectral_sum, err0 * err0, 1e-8 * std::max(1.0, err0 * err0));
}

TEST(FourierNS, StageBreakdownAndCommLog) {
    simmpi::World world(2, test_net());
    const auto reports = world.run([&](simmpi::Comm& c) {
        const auto disc = shear_disc(4);
        FourierNS ns(disc, shear_opts(0.05, 1e-3), &c);
        ns.set_initial(
            [](double, double y, double z) { return std::sin(std::numbers::pi * y) * std::sin(z); },
            [](double, double, double) { return 0.0; },
            [](double, double, double) { return 0.0; });
        ns.breakdown() = {};
        ns.step();
        ns.step();
        const auto& bd = ns.breakdown();
        for (std::size_t stage = 1; stage <= perf::kNumStages; ++stage)
            EXPECT_GT(bd.counts[stage].flops, 0u) << "stage " << stage;
    });
    // The nonlinear step's Alltoall transposes must appear in stage 2 of the
    // comm log: 3 fields out + 6 products back per nonlinear evaluation.
    const auto& log = reports[0].log;
    ASSERT_TRUE(log.count(2));
    std::uint64_t alltoalls = 0;
    for (const auto& [key, count] : log.at(2))
        if (key.kind == simmpi::CommKind::Alltoall) alltoalls += count;
    // Two steps, each transposing 3 components out and 6 products back: 2 * 9
    // (set_initial no longer evaluates the nonlinear term; the first step
    // runs at order 1 and never reads a seeded history level).
    EXPECT_EQ(alltoalls, 18u);
}

TEST(FourierNS, RejectsIndivisibleModeCount) {
    simmpi::World world(3, test_net());
    EXPECT_THROW(world.run([&](simmpi::Comm& c) {
        const auto disc = shear_disc(3);
        FourierNsOptions o = shear_opts(0.05, 1e-3);
        o.num_modes = 4; // not divisible by 3 ranks
        FourierNS ns(disc, o, &c);
    }),
                 std::invalid_argument);
}

} // namespace
