#include <gtest/gtest.h>

#include <random>

#include "mesh/generators.hpp"
#include "nektar/discretization.hpp"

namespace {

using nektar::Discretization;

/// scatter (global -> local) and gather_add (local -> global) are adjoint:
/// <scatter(g), l> = <g, gather(l)> for all g, l.  This is the identity the
/// whole C0 assembly (signs included) rests on.
TEST(ScatterGather, AdjointIdentity) {
    for (bool tris : {false, true}) {
        auto m = tris ? mesh::rectangle_tris(3, 2, 0.0, 1.0, 0.0, 1.0)
                      : mesh::rectangle_quads(3, 2, 0.0, 1.0, 0.0, 1.0);
        const Discretization d(std::make_shared<mesh::Mesh>(std::move(m)), 4);
        std::mt19937 gen(5);
        std::uniform_real_distribution<double> dist(-1.0, 1.0);
        std::vector<double> g(d.dofmap().num_global()), l(d.modal_size());
        for (auto& v : g) v = dist(gen);
        for (auto& v : l) v = dist(gen);

        std::vector<double> sg(d.modal_size());
        d.scatter(g, sg);
        std::vector<double> gl(d.dofmap().num_global(), 0.0);
        d.gather_add(l, gl);

        double lhs = 0.0, rhs = 0.0;
        for (std::size_t i = 0; i < l.size(); ++i) lhs += sg[i] * l[i];
        for (std::size_t i = 0; i < g.size(); ++i) rhs += g[i] * gl[i];
        EXPECT_NEAR(lhs, rhs, 1e-10) << (tris ? "tris" : "quads");
    }
}

TEST(ScatterGather, GatherCountsMultiplicity) {
    // gather_add of all-ones local vectors yields each dof's multiplicity
    // (up to edge-mode signs, which cancel pairwise for C0-consistent data):
    // vertex dofs interior to a quad grid appear in 4 elements.
    const Discretization d(
        std::make_shared<mesh::Mesh>(mesh::rectangle_quads(2, 2, 0.0, 1.0, 0.0, 1.0)), 2);
    std::vector<double> ones(d.modal_size(), 1.0);
    std::vector<double> g(d.dofmap().num_global(), 0.0);
    d.gather_add(ones, g);
    // The centre vertex of a 2x2 grid belongs to 4 elements.
    bool found4 = false;
    for (double v : g) found4 |= std::abs(v - 4.0) < 1e-12;
    EXPECT_TRUE(found4);
}

} // namespace
