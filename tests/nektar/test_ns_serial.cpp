#include "nektar/ns_serial.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "mesh/generators.hpp"

namespace {

using nektar::Discretization;
using nektar::SerialNsOptions;
using nektar::SerialNS2d;

/// Kovasznay flow: an exact steady Navier-Stokes solution.
struct Kovasznay {
    double re;
    [[nodiscard]] double lam() const {
        return re / 2.0 - std::sqrt(re * re / 4.0 + 4.0 * std::numbers::pi * std::numbers::pi);
    }
    [[nodiscard]] double u(double x, double y) const {
        return 1.0 - std::exp(lam() * x) * std::cos(2.0 * std::numbers::pi * y);
    }
    [[nodiscard]] double v(double x, double y) const {
        return lam() / (2.0 * std::numbers::pi) * std::exp(lam() * x) *
               std::sin(2.0 * std::numbers::pi * y);
    }
};

std::shared_ptr<Discretization> kovasznay_disc(std::size_t order) {
    // Domain [-0.5, 1] x [-0.5, 0.5]; Dirichlet everywhere except outflow.
    auto m = mesh::rectangle_quads(3, 2, -0.5, 1.0, -0.5, 0.5);
    m.tag_boundary(mesh::BoundaryTag::Wall, [](double, double) { return true; });
    m.tag_boundary(mesh::BoundaryTag::Outflow, [](double x, double) { return x > 1.0 - 1e-9; });
    return std::make_shared<Discretization>(std::make_shared<mesh::Mesh>(std::move(m)), order);
}

TEST(SerialNS, KovasznaySteadyStateAccuracy) {
    const Kovasznay k{40.0};
    SerialNsOptions opts;
    opts.dt = 2e-3;
    opts.viscosity = 1.0 / k.re;
    opts.time_order = 2;
    opts.u_bc = [&](double x, double y, double) { return k.u(x, y); };
    opts.v_bc = [&](double x, double y, double) { return k.v(x, y); };
    const auto disc = kovasznay_disc(7);
    SerialNS2d ns(disc, opts);
    ns.set_initial([&](double x, double y) { return k.u(x, y); },
                   [&](double x, double y) { return k.v(x, y); });
    for (int s = 0; s < 100; ++s) ns.step();
    const double err_u =
        disc->l2_error(ns.u_quad(), [&](double x, double y) { return k.u(x, y); });
    const double err_v =
        disc->l2_error(ns.v_quad(), [&](double x, double y) { return k.v(x, y); });
    // Started at the exact solution: the scheme must hold it to splitting
    // accuracy (O(dt) pressure boundary layer), not blow up or drift.
    EXPECT_LT(err_u, 0.02);
    EXPECT_LT(err_v, 0.02);
}

TEST(SerialNS, DivergenceStaysSmall) {
    const Kovasznay k{40.0};
    SerialNsOptions opts;
    opts.dt = 2e-3;
    opts.viscosity = 1.0 / k.re;
    const auto disc = kovasznay_disc(6);
    opts.u_bc = [&](double x, double y, double) { return k.u(x, y); };
    opts.v_bc = [&](double x, double y, double) { return k.v(x, y); };
    SerialNS2d ns(disc, opts);
    ns.set_initial([&](double x, double y) { return k.u(x, y); },
                   [&](double x, double y) { return k.v(x, y); });
    for (int s = 0; s < 30; ++s) ns.step();
    EXPECT_LT(ns.divergence_norm(), 0.5);
    EXPECT_TRUE(std::isfinite(ns.divergence_norm()));
}

TEST(SerialNS, TaylorGreenDecayRate) {
    // u = -cos(pi x) sin(pi y) e^{-2 pi^2 nu t}: kinetic energy decays at a
    // known exponential rate.  Dirichlet data from the exact solution.
    const double nu = 0.05;
    const double k2 = 2.0 * std::numbers::pi * std::numbers::pi * nu;
    const auto uex = [=](double x, double y, double t) {
        return -std::cos(std::numbers::pi * x) * std::sin(std::numbers::pi * y) *
               std::exp(-k2 * t);
    };
    const auto vex = [=](double x, double y, double t) {
        return std::sin(std::numbers::pi * x) * std::cos(std::numbers::pi * y) *
               std::exp(-k2 * t);
    };
    auto m = mesh::rectangle_quads(2, 2, 0.0, 2.0, 0.0, 2.0);
    m.tag_boundary(mesh::BoundaryTag::Wall, [](double, double) { return true; });
    const auto disc =
        std::make_shared<Discretization>(std::make_shared<mesh::Mesh>(std::move(m)), 8);
    SerialNsOptions opts;
    opts.dt = 1e-3;
    opts.viscosity = nu;
    opts.u_bc = [&](double x, double y, double t) { return uex(x, y, t); };
    opts.v_bc = [&](double x, double y, double t) { return vex(x, y, t); };
    opts.pressure_bc.pin_first_dof = true;
    opts.pressure_bc.dirichlet.clear();
    SerialNS2d ns(disc, opts);
    ns.set_initial([&](double x, double y) { return uex(x, y, 0.0); },
                   [&](double x, double y) { return vex(x, y, 0.0); });
    const int nsteps = 100;
    for (int s = 0; s < nsteps; ++s) ns.step();
    const double t = ns.time();
    const double err =
        disc->l2_error(ns.u_quad(), [&](double x, double y) { return uex(x, y, t); });
    EXPECT_LT(err, 5e-3);
}

TEST(SerialNS, SecondOrderBeatsFirstOrderInTime) {
    const double nu = 0.05;
    const double k2 = 2.0 * std::numbers::pi * std::numbers::pi * nu;
    const auto uex = [=](double x, double y, double t) {
        return -std::cos(std::numbers::pi * x) * std::sin(std::numbers::pi * y) *
               std::exp(-k2 * t);
    };
    const auto vex = [=](double x, double y, double t) {
        return std::sin(std::numbers::pi * x) * std::cos(std::numbers::pi * y) *
               std::exp(-k2 * t);
    };
    auto run = [&](int order, double dt) {
        auto m = mesh::rectangle_quads(2, 2, 0.0, 2.0, 0.0, 2.0);
        m.tag_boundary(mesh::BoundaryTag::Wall, [](double, double) { return true; });
        const auto disc =
            std::make_shared<Discretization>(std::make_shared<mesh::Mesh>(std::move(m)), 8);
        SerialNsOptions opts;
        opts.dt = dt;
        opts.viscosity = nu;
        opts.time_order = order;
        opts.u_bc = [&](double x, double y, double t) { return uex(x, y, t); };
        opts.v_bc = [&](double x, double y, double t) { return vex(x, y, t); };
        opts.pressure_bc.pin_first_dof = true;
        opts.pressure_bc.dirichlet.clear();
        SerialNS2d ns(disc, opts);
        ns.set_initial([&](double x, double y) { return uex(x, y, 0.0); },
                       [&](double x, double y) { return vex(x, y, 0.0); });
        const int nsteps = static_cast<int>(std::lround(0.1 / dt));
        for (int s = 0; s < nsteps; ++s) ns.step();
        const double t = ns.time();
        return disc->l2_error(ns.u_quad(), [&](double x, double y) { return uex(x, y, t); });
    };
    const double e1 = run(1, 2e-3);
    const double e2 = run(2, 2e-3);
    EXPECT_LT(e2, e1);
}

TEST(SerialNS, StageBreakdownRecordsAllSevenStages) {
    const Kovasznay k{40.0};
    SerialNsOptions opts;
    opts.dt = 1e-3;
    opts.viscosity = 1.0 / k.re;
    const auto disc = kovasznay_disc(5);
    opts.u_bc = [&](double x, double y, double) { return k.u(x, y); };
    opts.v_bc = [&](double x, double y, double) { return k.v(x, y); };
    SerialNS2d ns(disc, opts);
    ns.set_initial([&](double x, double y) { return k.u(x, y); },
                   [&](double x, double y) { return k.v(x, y); });
    ns.breakdown() = {};
    for (int s = 0; s < 3; ++s) ns.step();
    const auto& bd = ns.breakdown();
    EXPECT_EQ(bd.steps, 3);
    for (std::size_t stage = 1; stage <= perf::kNumStages; ++stage) {
        EXPECT_GT(bd.counts[stage].flops, 0u) << "stage " << stage << " recorded no flops";
        EXPECT_GT(bd.host_seconds[stage], 0.0);
    }
    // Figure 12 shape: the two banded solves (stages 5 and 7) dominate.
    const auto total = bd.total_counts();
    EXPECT_GT(bd.counts[5].flops + bd.counts[7].flops, total.flops / 4);
}

TEST(SerialNS, BluffBodyShortRunStaysFinite) {
    // A few steps of the actual paper workload (reduced resolution).
    mesh::BluffBodyParams p;
    p.n_upstream = 4;
    p.n_wake = 6;
    p.n_side = 3;
    p.n_body = 2;
    const auto disc = std::make_shared<Discretization>(
        std::make_shared<mesh::Mesh>(mesh::bluff_body_mesh(p)), 4);
    SerialNsOptions opts;
    opts.dt = 5e-3;
    opts.viscosity = 0.01;
    opts.u_bc = [](double, double, double) { return 1.0; }; // inflow of 1
    opts.v_bc = [](double, double, double) { return 0.0; };
    // No-slip on the body, free inflow value u=1 elsewhere: handled by tags —
    // the body edges are Dirichlet via velocity_bc and get u from u_bc, so
    // distinguish: body must be 0.  Use a position-dependent bc.
    opts.u_bc = [&](double x, double y, double) {
        const double h = 0.5 + 1e-6;
        const bool on_body = std::abs(x) <= h && std::abs(y) <= h;
        return on_body ? 0.0 : 1.0;
    };
    SerialNS2d ns(disc, opts);
    ns.set_initial([](double, double) { return 1.0; }, [](double, double) { return 0.0; });
    for (int s = 0; s < 5; ++s) ns.step();
    for (double v : ns.u_quad()) ASSERT_TRUE(std::isfinite(v));
    const double maxu = *std::max_element(ns.u_quad().begin(), ns.u_quad().end());
    EXPECT_LT(maxu, 10.0); // no blow-up
}

} // namespace
