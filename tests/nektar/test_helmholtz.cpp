#include "nektar/helmholtz.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "mesh/generators.hpp"

namespace {

using nektar::Discretization;
using nektar::HelmholtzBC;
using nektar::HelmholtzDirect;
using nektar::HelmholtzPCG;

std::shared_ptr<Discretization> disc_for(mesh::Mesh m, std::size_t order) {
    return std::make_shared<Discretization>(std::make_shared<mesh::Mesh>(std::move(m)), order);
}

/// Manufactured solution u = sin(pi x) sin(pi y) on [0,1]^2 with
/// -lap u + lambda u = f, homogeneous Dirichlet on the whole boundary.
struct Manufactured {
    double lambda;
    [[nodiscard]] double u(double x, double y) const {
        return std::sin(std::numbers::pi * x) * std::sin(std::numbers::pi * y);
    }
    [[nodiscard]] double f(double x, double y) const {
        return (2.0 * std::numbers::pi * std::numbers::pi + lambda) * u(x, y);
    }
};

mesh::Mesh unit_square_quads(std::size_t n) {
    auto m = mesh::rectangle_quads(n, n, 0.0, 1.0, 0.0, 1.0);
    m.tag_boundary(mesh::BoundaryTag::Wall, [](double, double) { return true; });
    return m;
}

mesh::Mesh unit_square_tris(std::size_t n) {
    auto m = mesh::rectangle_tris(n, n, 0.0, 1.0, 0.0, 1.0);
    m.tag_boundary(mesh::BoundaryTag::Wall, [](double, double) { return true; });
    return m;
}

double solve_error(std::shared_ptr<Discretization> disc, double lambda, bool use_pcg) {
    const Manufactured ms{lambda};
    HelmholtzBC bc{.dirichlet = {mesh::BoundaryTag::Wall}};
    std::vector<double> fq(disc->quad_size());
    disc->eval_at_quad([&](double x, double y) { return ms.f(x, y); }, fq);
    std::vector<double> modal;
    if (use_pcg) {
        HelmholtzPCG solver(disc, lambda, bc);
        modal = solver.solve(fq);
    } else {
        HelmholtzDirect solver(disc, lambda, bc);
        modal = solver.solve(fq);
    }
    std::vector<double> uq(disc->quad_size());
    disc->to_quad(modal, uq);
    return disc->l2_error(uq, [&](double x, double y) { return ms.u(x, y); });
}

class HelmholtzOrders : public ::testing::TestWithParam<int> {};

TEST_P(HelmholtzOrders, QuadMeshPConvergence) {
    const auto P = static_cast<std::size_t>(GetParam());
    const double err = solve_error(disc_for(unit_square_quads(3), P), 1.0, false);
    // Exponential convergence: generous per-order bounds.
    const double bounds[] = {0, 0, 0.05, 0.02, 2e-3, 5e-4, 2e-5, 5e-6, 2e-7};
    EXPECT_LT(err, bounds[P]) << "P=" << P;
}

TEST_P(HelmholtzOrders, TriMeshPConvergence) {
    const auto P = static_cast<std::size_t>(GetParam());
    const double err = solve_error(disc_for(unit_square_tris(3), P), 1.0, false);
    const double bounds[] = {0, 0, 0.06, 0.03, 3e-3, 8e-4, 4e-5, 1e-5, 5e-7};
    EXPECT_LT(err, bounds[P]) << "P=" << P;
}

INSTANTIATE_TEST_SUITE_P(Orders, HelmholtzOrders, ::testing::Values(2, 3, 4, 5, 6, 7, 8));

TEST(Helmholtz, DirectAndPcgAgree) {
    const auto disc = disc_for(unit_square_quads(3), 5);
    const double direct = solve_error(disc, 2.5, false);
    const double pcg = solve_error(disc, 2.5, true);
    EXPECT_NEAR(direct, pcg, 1e-7);
}

TEST(Helmholtz, NonHomogeneousDirichlet) {
    // u = x^2 - y^2 is harmonic: solve Laplace with u given on the boundary.
    const auto disc = disc_for(unit_square_quads(4), 4);
    HelmholtzDirect solver(disc, 0.0, {.dirichlet = {mesh::BoundaryTag::Wall}});
    std::vector<double> fq(disc->quad_size(), 0.0);
    const auto modal = solver.solve(fq, [](double x, double y) { return x * x - y * y; });
    std::vector<double> uq(disc->quad_size());
    disc->to_quad(modal, uq);
    EXPECT_LT(disc->l2_error(uq, [](double x, double y) { return x * x - y * y; }), 1e-9);
}

TEST(Helmholtz, MixedDirichletNeumann) {
    // u = cos(pi x): du/dn = 0 on y = 0, 1 (natural), Dirichlet on x = 0, 1.
    auto m = mesh::rectangle_quads(4, 2, 0.0, 1.0, 0.0, 1.0);
    m.tag_boundary(mesh::BoundaryTag::Wall,
                   [](double x, double) { return x < 1e-9 || x > 1.0 - 1e-9; });
    m.tag_boundary(mesh::BoundaryTag::Side,
                   [](double, double y) { return y < 1e-9 || y > 1.0 - 1e-9; });
    const auto disc = disc_for(std::move(m), 6);
    const double lambda = 1.0;
    HelmholtzDirect solver(disc, lambda, {.dirichlet = {mesh::BoundaryTag::Wall}});
    std::vector<double> fq(disc->quad_size());
    disc->eval_at_quad(
        [&](double x, double) {
            return (std::numbers::pi * std::numbers::pi + lambda) * std::cos(std::numbers::pi * x);
        },
        fq);
    const auto modal =
        solver.solve(fq, [](double x, double) { return std::cos(std::numbers::pi * x); });
    std::vector<double> uq(disc->quad_size());
    disc->to_quad(modal, uq);
    EXPECT_LT(disc->l2_error(uq, [](double x, double) { return std::cos(std::numbers::pi * x); }),
              1e-5);
}

TEST(Helmholtz, AllNeumannPoissonNeedsPin) {
    auto m = mesh::rectangle_quads(3, 3, 0.0, 1.0, 0.0, 1.0);
    // No Dirichlet tags at all.
    const auto disc = disc_for(std::move(m), 3);
    EXPECT_THROW(HelmholtzDirect(disc, 0.0, {}), std::runtime_error);
    EXPECT_NO_THROW(HelmholtzDirect(disc, 0.0, {.dirichlet = {}, .pin_first_dof = true}));
}

TEST(Helmholtz, BandedSolverSeesReducedBandwidth) {
    // The RCM ordering must give a half-bandwidth well below the dof count.
    const auto disc = disc_for(unit_square_quads(6), 4);
    HelmholtzDirect solver(disc, 1.0, {.dirichlet = {mesh::BoundaryTag::Wall}});
    EXPECT_LT(solver.bandwidth(), disc->dofmap().num_global() / 3);
}

TEST(Helmholtz, HybridTriQuadMesh) {
    // Half the strip quads, half split into triangles: conformity across the
    // tri/quad interface is exercised directly.
    std::vector<mesh::Vertex> verts = {{0, 0}, {1, 0}, {2, 0}, {0, 1}, {1, 1}, {2, 1}};
    std::vector<mesh::Element> elems;
    elems.push_back({spectral::Shape::Quad, {0, 1, 4, 3}});
    elems.push_back({spectral::Shape::Triangle, {1, 2, 5, -1}});
    elems.push_back({spectral::Shape::Triangle, {1, 5, 4, -1}});
    auto m = mesh::Mesh(std::move(verts), std::move(elems));
    m.tag_boundary(mesh::BoundaryTag::Wall, [](double, double) { return true; });
    const auto disc = disc_for(std::move(m), 5);
    HelmholtzDirect solver(disc, 1.0, {.dirichlet = {mesh::BoundaryTag::Wall}});
    // Manufactured: u = sin(pi x / 2) sin(pi y), Dirichlet from the exact u.
    const auto u = [](double x, double y) {
        return std::sin(0.5 * std::numbers::pi * x) * std::sin(std::numbers::pi * y);
    };
    std::vector<double> fq(disc->quad_size());
    disc->eval_at_quad(
        [&](double x, double y) {
            return (1.25 * std::numbers::pi * std::numbers::pi + 1.0) * u(x, y);
        },
        fq);
    const auto modal = solver.solve(fq, u);
    std::vector<double> uq(disc->quad_size());
    disc->to_quad(modal, uq);
    EXPECT_LT(disc->l2_error(uq, u), 5e-3);
}

} // namespace
