#include "nektar/static_condensation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "mesh/generators.hpp"

namespace {

using nektar::CondensedHelmholtz;
using nektar::Discretization;
using nektar::HelmholtzBC;
using nektar::HelmholtzDirect;

std::shared_ptr<Discretization> disc_for(mesh::Mesh m, std::size_t order) {
    return std::make_shared<Discretization>(std::make_shared<mesh::Mesh>(std::move(m)), order);
}

mesh::Mesh tagged_square_quads(std::size_t n) {
    auto m = mesh::rectangle_quads(n, n, 0.0, 1.0, 0.0, 1.0);
    m.tag_boundary(mesh::BoundaryTag::Wall, [](double, double) { return true; });
    return m;
}

class CondensedOrders : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(CondensedOrders, MatchesFullDirectSolve) {
    const auto [p, tris] = GetParam();
    const auto P = static_cast<std::size_t>(p);
    auto m = tris ? mesh::rectangle_tris(3, 3, 0.0, 1.0, 0.0, 1.0)
                  : mesh::rectangle_quads(3, 3, 0.0, 1.0, 0.0, 1.0);
    m.tag_boundary(mesh::BoundaryTag::Wall, [](double, double) { return true; });
    const auto disc = disc_for(std::move(m), P);
    const HelmholtzBC bc{.dirichlet = {mesh::BoundaryTag::Wall}};
    HelmholtzDirect full(disc, 2.0, bc);
    CondensedHelmholtz cond(disc, 2.0, bc);

    std::vector<double> f(disc->quad_size());
    disc->eval_at_quad([](double x, double y) { return std::exp(x) * (1.0 + y); }, f);
    const auto g = [](double x, double y) { return 0.25 * x - 0.5 * y; };
    const auto uf = full.solve(f, g);
    const auto uc = cond.solve(f, g);
    ASSERT_EQ(uf.size(), uc.size());
    double dmax = 0.0;
    for (std::size_t i = 0; i < uf.size(); ++i)
        dmax = std::max(dmax, std::abs(uf[i] - uc[i]));
    EXPECT_LT(dmax, 1e-9) << "P=" << P << " tris=" << tris;
}

INSTANTIATE_TEST_SUITE_P(Meshes, CondensedOrders,
                         ::testing::Combine(::testing::Values(2, 3, 5, 7),
                                            ::testing::Values(false, true)));

TEST(Condensed, ShrinksTheGlobalSystem) {
    const auto disc = disc_for(tagged_square_quads(4), 7);
    const HelmholtzBC bc{.dirichlet = {mesh::BoundaryTag::Wall}};
    HelmholtzDirect full(disc, 1.0, bc);
    CondensedHelmholtz cond(disc, 1.0, bc);
    // 16 elements x 36 interior modes eliminated.
    EXPECT_EQ(cond.boundary_dofs() + 16 * 36, disc->dofmap().num_global());
    EXPECT_LT(cond.boundary_dofs(), disc->dofmap().num_global() / 2);
    EXPECT_LT(cond.bandwidth(), full.bandwidth());
}

TEST(Condensed, ManufacturedSolutionAccuracy) {
    const auto disc = disc_for(tagged_square_quads(3), 6);
    CondensedHelmholtz cond(disc, 1.0, {.dirichlet = {mesh::BoundaryTag::Wall}});
    std::vector<double> f(disc->quad_size());
    disc->eval_at_quad(
        [](double x, double y) {
            return (2.0 * std::numbers::pi * std::numbers::pi + 1.0) *
                   std::sin(std::numbers::pi * x) * std::sin(std::numbers::pi * y);
        },
        f);
    const auto sol = cond.solve(f);
    std::vector<double> uq(disc->quad_size());
    disc->to_quad(sol, uq);
    EXPECT_LT(disc->l2_error(uq, [](double x, double y) {
                  return std::sin(std::numbers::pi * x) * std::sin(std::numbers::pi * y);
              }),
              1e-4);
}

TEST(Condensed, AllNeumannWithPin) {
    auto m = mesh::rectangle_quads(3, 3, 0.0, 1.0, 0.0, 1.0); // untagged
    const auto disc = disc_for(std::move(m), 4);
    // Helmholtz with lambda > 0 is nonsingular even without Dirichlet data.
    CondensedHelmholtz cond(disc, 3.0, {});
    HelmholtzDirect full(disc, 3.0, {});
    std::vector<double> f(disc->quad_size());
    disc->eval_at_quad([](double x, double y) { return x - y * y; }, f);
    const auto uc = cond.solve(f);
    const auto uf = full.solve(f);
    for (std::size_t i = 0; i < uf.size(); ++i) EXPECT_NEAR(uc[i], uf[i], 1e-9);
}

TEST(Condensed, LowestOrderHasNoInteriors) {
    // P = 1: no bubbles to condense; the solver must degenerate gracefully
    // to the full vertex system.
    const auto disc = disc_for(tagged_square_quads(4), 1);
    CondensedHelmholtz cond(disc, 1.0, {.dirichlet = {mesh::BoundaryTag::Wall}});
    EXPECT_EQ(cond.boundary_dofs(), disc->dofmap().num_global());
    std::vector<double> f(disc->quad_size(), 1.0);
    const auto sol = cond.solve(f);
    for (double v : sol) EXPECT_TRUE(std::isfinite(v));
}

} // namespace
