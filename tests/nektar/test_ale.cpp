#include "nektar/ns_ale.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "mesh/generators.hpp"
#include "partition/partition.hpp"

namespace {

using nektar::AleNS2d;
using nektar::AleOptions;

netsim::NetworkModel test_net() {
    netsim::NetworkModel n;
    n.name = "test";
    n.latency_us = 10.0;
    n.bandwidth_mbps = 100.0;
    return n;
}

mesh::Mesh flap_mesh() { return mesh::flapping_body_mesh(1); }

/// Uniform free stream prescribed on *every* boundary (including the moving
/// body, physics suspended): the ALE formulation must preserve u = 1 exactly
/// as the mesh deforms — the classic geometric-conservation check.
TEST(AleNS, FreeStreamPreservationUnderMeshMotion) {
    AleOptions opts;
    opts.dt = 2e-3;
    opts.viscosity = 0.05;
    opts.body_velocity = [](double t) { return 0.4 * std::cos(8.0 * t); };
    opts.velocity_bc.dirichlet = {mesh::BoundaryTag::Inflow, mesh::BoundaryTag::Side,
                                  mesh::BoundaryTag::Body, mesh::BoundaryTag::Wall};
    opts.u_bc = [](double, double, double) { return 1.0; };
    opts.v_bc = [](double, double, double) { return 0.0; };
    AleNS2d ns(flap_mesh(), 4, opts);
    ns.set_initial([](double, double) { return 1.0; }, [](double, double) { return 0.0; });
    for (int s = 0; s < 10; ++s) ns.step();
    // The mesh must actually have moved...
    double max_w = 0.0;
    for (double w : ns.mesh_velocity_quad()) max_w = std::max(max_w, std::abs(w));
    EXPECT_GT(max_w, 0.05);
    // ...while the free stream stays put.
    const double err =
        ns.disc().l2_error(ns.u_quad(), [](double, double) { return 1.0; });
    EXPECT_LT(err, 5e-3);
    const double verr =
        ns.disc().l2_error(ns.v_quad(), [](double, double) { return 0.0; });
    EXPECT_LT(verr, 5e-3);
}

TEST(AleNS, ZeroMotionMatchesFixedMeshPhysics) {
    // With body_velocity = 0 the ALE solver is an ordinary fixed-mesh solver;
    // a Kovasznay steady state must hold just as in the serial code.
    const double re = 40.0;
    const double lam = re / 2.0 - std::sqrt(re * re / 4.0 + 4.0 * std::numbers::pi * std::numbers::pi);
    const auto ku = [=](double x, double y) {
        return 1.0 - std::exp(lam * x) * std::cos(2.0 * std::numbers::pi * y);
    };
    const auto kv = [=](double x, double y) {
        return lam / (2.0 * std::numbers::pi) * std::exp(lam * x) *
               std::sin(2.0 * std::numbers::pi * y);
    };
    auto m = mesh::rectangle_quads(3, 2, -0.5, 1.0, -0.5, 0.5);
    m.tag_boundary(mesh::BoundaryTag::Wall, [](double, double) { return true; });
    m.tag_boundary(mesh::BoundaryTag::Outflow, [](double x, double) { return x > 1.0 - 1e-9; });
    AleOptions opts;
    opts.dt = 2e-3;
    opts.viscosity = 1.0 / re;
    opts.u_bc = [&](double x, double y, double) { return ku(x, y); };
    opts.v_bc = [&](double x, double y, double) { return kv(x, y); };
    AleNS2d ns(m, 6, opts);
    ns.set_initial(ku, kv);
    for (int s = 0; s < 50; ++s) ns.step();
    EXPECT_LT(ns.disc().l2_error(ns.u_quad(), ku), 0.02);
    EXPECT_LT(ns.disc().l2_error(ns.v_quad(), kv), 0.02);
}

double kinetic_energy(const AleNS2d& ns) {
    std::vector<double> ke(ns.u_quad().size());
    for (std::size_t i = 0; i < ke.size(); ++i)
        ke[i] = ns.u_quad()[i] * ns.u_quad()[i] + ns.v_quad()[i] * ns.v_quad()[i];
    return ns.disc().integrate(ke);
}

class AleRanks : public ::testing::TestWithParam<int> {};

TEST_P(AleRanks, ParallelMatchesSerialEnergy) {
    const int p = GetParam();
    const auto m = flap_mesh();
    AleOptions opts;
    opts.dt = 2e-3;
    opts.viscosity = 0.05;
    opts.body_velocity = [](double t) { return 0.3 * std::sin(5.0 * t); };
    opts.cg.tolerance = 1e-12; // tight so serial/parallel iterates agree
    opts.u_bc = [](double x, double y, double) {
        const bool body = std::abs(x) <= 0.5 + 1e-6 && std::abs(y) <= 0.5 + 1e-6;
        return body ? 0.0 : 1.0;
    };
    opts.v_bc = [&opts](double x, double y, double t) {
        const bool body = std::abs(x) <= 0.5 + 1e-6 && std::abs(y) <= 0.5 + 1e-6;
        return body ? opts.body_velocity(t) : 0.0;
    };
    const int nsteps = 4;

    AleNS2d serial(m, 3, opts);
    serial.set_initial([](double, double) { return 1.0; }, [](double, double) { return 0.0; });
    for (int s = 0; s < nsteps; ++s) serial.step();
    const double e_serial = kinetic_energy(serial);

    partition::Graph g;
    m.dual_graph(g.xadj, g.adjncy);
    const auto part = partition::partition_graph(g, p);
    simmpi::World world(p, test_net());
    std::vector<double> energies(static_cast<std::size_t>(p), 0.0);
    world.run([&](simmpi::Comm& c) {
        AleNS2d ns(m, 3, opts, &c, &part);
        ns.set_initial([](double, double) { return 1.0; }, [](double, double) { return 0.0; });
        for (int s = 0; s < nsteps; ++s) ns.step();
        energies[static_cast<std::size_t>(c.rank())] = c.allreduce_sum(kinetic_energy(ns));
    });
    for (double e : energies) EXPECT_NEAR(e, e_serial, 2e-5 * std::abs(e_serial)) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Ranks, AleRanks, ::testing::Values(2, 4));

TEST(AleNS, PcgIterationCountsReported) {
    AleOptions opts;
    opts.dt = 2e-3;
    opts.viscosity = 0.05;
    opts.u_bc = [](double x, double y, double) {
        const bool body = std::abs(x) <= 0.5 + 1e-6 && std::abs(y) <= 0.5 + 1e-6;
        return body ? 0.0 : 1.0;
    };
    AleNS2d ns(flap_mesh(), 3, opts);
    ns.set_initial([](double, double) { return 1.0; }, [](double, double) { return 0.0; });
    // The very first step starts from a uniform field whose pressure RHS is
    // zero; the second step sees the developing boundary layer.
    ns.step();
    ns.step();
    EXPECT_GT(ns.last_pressure_iterations(), 3u); // a real iterative solve
}

TEST(AleNS, StageBreakdownWeightsOnSolves) {
    // Paper Figures 15-16: stages (b) pressure and (c) Helmholtz dominate.
    AleOptions opts;
    opts.dt = 2e-3;
    opts.viscosity = 0.05;
    opts.body_velocity = [](double t) { return 0.2 * std::sin(4.0 * t); };
    opts.u_bc = [](double x, double y, double) {
        const bool body = std::abs(x) <= 0.5 + 1e-6 && std::abs(y) <= 0.5 + 1e-6;
        return body ? 0.0 : 1.0;
    };
    opts.v_bc = [&opts](double x, double y, double t) {
        const bool body = std::abs(x) <= 0.5 + 1e-6 && std::abs(y) <= 0.5 + 1e-6;
        return body ? opts.body_velocity(t) : 0.0;
    };
    AleNS2d ns(flap_mesh(), 4, opts);
    ns.set_initial([](double, double) { return 1.0; }, [](double, double) { return 0.0; });
    ns.breakdown() = {};
    for (int s = 0; s < 3; ++s) ns.step();
    const auto& bd = ns.breakdown();
    const auto total = bd.total_counts();
    const auto solves = bd.counts[5].flops + bd.counts[7].flops;
    EXPECT_GT(solves, total.flops / 2) << "PCG solves must dominate the ALE step";
}

TEST(AleNS, ParallelRunNeedsPartition) {
    simmpi::World world(2, test_net());
    EXPECT_THROW(world.run([&](simmpi::Comm& c) {
        AleOptions opts;
        AleNS2d ns(flap_mesh(), 3, opts, &c, nullptr);
    }),
                 std::invalid_argument);
}

} // namespace
