/// Golden-equivalence tests for the batched elemental operator engine: every
/// grouped/batched path must reproduce the per-element ElementOps results to
/// 1e-12 on single-group, multi-group, and non-contiguous-group meshes, and
/// the Fourier solver must be bitwise independent of the thread-pool size.
/// These run on the session-default backend ($REPRO_BACKEND), so the nightly
/// sumfact axis checks the sum-factorised engine against the same per-element
/// references.  Projection alone gets a looser bound: the mass-matrix solve
/// amplifies the contraction-order rounding of the weak inner product by the
/// elemental condition number (~1e3 at order 8), so its cross-backend error
/// sits near 5e-12 where the direct transforms stay at ~1e-14.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>
#include <vector>

#include "mesh/generators.hpp"
#include "nektar/discretization.hpp"
#include "nektar/helmholtz.hpp"
#include "nektar/ns_fourier.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using nektar::Discretization;
using nektar::ElemGroup;

/// 4x2 vertex strip with interleaved shapes: Quad, Tri, Tri, Quad.  The quad
/// group {0, 3} is non-contiguous (exercises the pack/unpack path); the tri
/// group {1, 2} is contiguous.
mesh::Mesh mixed_mesh() {
    std::vector<mesh::Vertex> v;
    for (int y = 0; y <= 1; ++y)
        for (int x = 0; x <= 3; ++x)
            v.push_back({static_cast<double>(x), static_cast<double>(y)});
    std::vector<mesh::Element> e(4);
    e[0] = {spectral::Shape::Quad, {0, 1, 5, 4}};
    e[1] = {spectral::Shape::Triangle, {1, 2, 6, -1}};
    e[2] = {spectral::Shape::Triangle, {1, 6, 5, -1}};
    e[3] = {spectral::Shape::Quad, {2, 3, 7, 6}};
    return mesh::Mesh(std::move(v), std::move(e));
}

std::vector<std::shared_ptr<Discretization>> test_discs(std::size_t order) {
    std::vector<std::shared_ptr<Discretization>> d;
    d.push_back(std::make_shared<Discretization>(
        std::make_shared<mesh::Mesh>(mesh::rectangle_quads(4, 3, 0.0, 2.0, 0.0, 1.0)),
        order));
    d.push_back(std::make_shared<Discretization>(
        std::make_shared<mesh::Mesh>(mesh::rectangle_tris(3, 3, 0.0, 1.0, 0.0, 1.0)), order));
    d.push_back(
        std::make_shared<Discretization>(std::make_shared<mesh::Mesh>(mixed_mesh()), order));
    return d;
}

std::vector<double> test_field(std::size_t n, unsigned seed) {
    std::vector<double> f(n);
    for (std::size_t i = 0; i < n; ++i)
        f[i] = std::sin(0.37 * static_cast<double>(i + seed)) +
               0.25 * std::cos(1.13 * static_cast<double>(i * seed + 1));
    return f;
}

double max_diff(std::span<const double> a, std::span<const double> b) {
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

class BatchedOps : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchedOps, GroupsPartitionTheMesh) {
    for (const auto& disc : test_discs(GetParam())) {
        std::vector<char> seen(disc->num_elements(), 0);
        for (const ElemGroup& g : disc->groups()) {
            for (std::size_t e : g.elems) {
                ASSERT_LT(e, disc->num_elements());
                ASSERT_FALSE(seen[e]) << "element in two groups";
                seen[e] = 1;
                EXPECT_EQ(disc->ops(e).expansion_ptr().get(), g.exp.get());
            }
            const bool contig = g.elems.back() - g.elems.front() + 1 == g.elems.size();
            EXPECT_EQ(g.contiguous, contig);
        }
        for (char s : seen) EXPECT_TRUE(s);
    }
    // The mixed mesh must actually exercise the non-contiguous path.
    const auto mixed = test_discs(GetParam()).back();
    bool has_noncontig = false;
    for (const ElemGroup& g : mixed->groups()) has_noncontig |= !g.contiguous;
    EXPECT_TRUE(has_noncontig);
}

TEST_P(BatchedOps, ToQuadMatchesPerElement) {
    for (const auto& disc : test_discs(GetParam())) {
        const auto modal = test_field(disc->modal_size(), 3);
        std::vector<double> batched(disc->quad_size()), ref(disc->quad_size());
        disc->to_quad(modal, batched);
        for (std::size_t e = 0; e < disc->num_elements(); ++e)
            disc->ops(e).interp_to_quad(disc->modal_block(std::span<const double>(modal), e),
                                        disc->quad_block(std::span<double>(ref), e));
        EXPECT_LE(max_diff(batched, ref), 1e-12);
    }
}

TEST_P(BatchedOps, WeakInnerMatchesPerElement) {
    for (const auto& disc : test_discs(GetParam())) {
        const auto quad = test_field(disc->quad_size(), 5);
        std::vector<double> batched(disc->modal_size(), 0.5), ref(disc->modal_size(), 0.5);
        disc->weak_inner(quad, batched); // accumulates: rhs += (f, phi)
        for (std::size_t e = 0; e < disc->num_elements(); ++e)
            disc->ops(e).weak_inner(disc->quad_block(std::span<const double>(quad), e),
                                    disc->modal_block(std::span<double>(ref), e));
        EXPECT_LE(max_diff(batched, ref), 1e-12);
    }
}

TEST_P(BatchedOps, ProjectMatchesPerElement) {
    for (const auto& disc : test_discs(GetParam())) {
        const auto quad = test_field(disc->quad_size(), 7);
        std::vector<double> batched(disc->modal_size()), ref(disc->modal_size());
        disc->project(quad, batched);
        for (std::size_t e = 0; e < disc->num_elements(); ++e)
            disc->ops(e).project(disc->quad_block(std::span<const double>(quad), e),
                                 disc->modal_block(std::span<double>(ref), e));
        EXPECT_LE(max_diff(batched, ref), 1e-10);
    }
}

TEST_P(BatchedOps, GradMatchesPerElement) {
    for (const auto& disc : test_discs(GetParam())) {
        const auto modal = test_field(disc->modal_size(), 9);
        const std::size_t nq = disc->quad_size();
        std::vector<double> bx(nq), by(nq), rx(nq), ry(nq);
        disc->grad_from_modal(modal, bx, by);
        for (std::size_t e = 0; e < disc->num_elements(); ++e)
            disc->ops(e).grad_from_modal(disc->modal_block(std::span<const double>(modal), e),
                                         disc->quad_block(std::span<double>(rx), e),
                                         disc->quad_block(std::span<double>(ry), e));
        EXPECT_LE(max_diff(bx, rx), 1e-12);
        EXPECT_LE(max_diff(by, ry), 1e-12);
    }
}

TEST_P(BatchedOps, PlaneVariantsMatchPerPlaneLoops) {
    const std::size_t nplanes = 3;
    for (const auto& disc : test_discs(GetParam())) {
        const std::size_t nm = disc->modal_size(), nq = disc->quad_size();
        const auto modal = test_field(nm * nplanes, 11);
        const auto quad_in = test_field(nq * nplanes, 13);

        std::vector<double> qb(nq * nplanes), qr(nq * nplanes);
        disc->to_quad_planes(modal, qb, nplanes);
        for (std::size_t p = 0; p < nplanes; ++p)
            disc->to_quad(std::span<const double>(modal).subspan(p * nm, nm),
                          std::span<double>(qr).subspan(p * nq, nq));
        EXPECT_LE(max_diff(qb, qr), 1e-12);

        std::vector<double> wb(nm * nplanes, 0.125), wr(nm * nplanes, 0.125);
        disc->weak_inner_planes(quad_in, wb, nplanes);
        for (std::size_t p = 0; p < nplanes; ++p)
            disc->weak_inner(std::span<const double>(quad_in).subspan(p * nq, nq),
                             std::span<double>(wr).subspan(p * nm, nm));
        EXPECT_LE(max_diff(wb, wr), 1e-12);

        std::vector<double> pb(nm * nplanes), pr(nm * nplanes);
        disc->project_planes(quad_in, pb, nplanes);
        for (std::size_t p = 0; p < nplanes; ++p)
            disc->project(std::span<const double>(quad_in).subspan(p * nq, nq),
                          std::span<double>(pr).subspan(p * nm, nm));
        EXPECT_LE(max_diff(pb, pr), 1e-10);

        std::vector<double> gxb(nq * nplanes), gyb(nq * nplanes);
        std::vector<double> gxr(nq * nplanes), gyr(nq * nplanes);
        disc->grad_from_modal_planes(modal, gxb, gyb, nplanes);
        for (std::size_t p = 0; p < nplanes; ++p)
            disc->grad_from_modal(std::span<const double>(modal).subspan(p * nm, nm),
                                  std::span<double>(gxr).subspan(p * nq, nq),
                                  std::span<double>(gyr).subspan(p * nq, nq));
        EXPECT_LE(max_diff(gxb, gxr), 1e-12);
        EXPECT_LE(max_diff(gyb, gyr), 1e-12);
    }
}

TEST_P(BatchedOps, HelmholtzApplyMatchesPerElementAssembly) {
    const double lambda = 2.5;
    for (const auto& disc : test_discs(GetParam())) {
        nektar::HelmholtzBC bc; // all-natural: apply() touches every dof
        nektar::HelmholtzPCG solver(disc, lambda, bc);

        const std::size_t n = disc->dofmap().num_global();
        const auto x = test_field(n, 17);
        std::vector<double> y(n), yref(n, 0.0);
        solver.apply(x, y);

        // Reference: scatter, per-element (L + lambda M) x_e by plain loops,
        // gather.
        std::vector<double> xl(disc->modal_size()), yl(disc->modal_size());
        disc->scatter(x, xl);
        for (std::size_t e = 0; e < disc->num_elements(); ++e) {
            const auto& lap = disc->ops(e).laplacian();
            const auto& mass = disc->ops(e).mass();
            const std::size_t nm = disc->ops(e).num_modes();
            const std::size_t off = disc->modal_offset(e);
            for (std::size_t i = 0; i < nm; ++i) {
                double s = 0.0;
                for (std::size_t j = 0; j < nm; ++j)
                    s += (lap(i, j) + lambda * mass(i, j)) * xl[off + j];
                yl[off + i] = s;
            }
        }
        disc->gather_add(yl, yref);
        EXPECT_LE(max_diff(y, yref), 1e-11);
    }
}

INSTANTIATE_TEST_SUITE_P(Orders, BatchedOps, ::testing::Values(3, 5, 8));

/// Matrix sharing across congruent elements: a structured quad mesh has one
/// geometry class, so every element must point at the same ElemMatrices and
/// the group must collapse to a single run.
TEST(BatchedOps, CongruentElementsShareMatrices) {
    const auto m = std::make_shared<mesh::Mesh>(mesh::rectangle_quads(4, 4, 0.0, 1.0, 0.0, 1.0));
    const Discretization disc(m, 5);
    const void* id = disc.ops(0).matrix_identity();
    for (std::size_t e = 1; e < disc.num_elements(); ++e)
        EXPECT_EQ(disc.ops(e).matrix_identity(), id);
    ASSERT_EQ(disc.groups().size(), 1u);
    ASSERT_EQ(disc.groups()[0].runs.size(), 1u);
    EXPECT_EQ(disc.groups()[0].runs[0].count, disc.num_elements());
}

/// The solvers must produce bit-identical states at any thread-pool size:
/// parallel_for only splits independent columns/planes and the virtual-clock
/// charging folds worker counters back as integer sums.
TEST(BatchedOps, FourierStepIsBitwiseThreadCountIndependent) {
    auto m = mesh::rectangle_quads(2, 2, 0.0, 1.0, 0.0, 1.0);
    m.tag_boundary(mesh::BoundaryTag::Wall,
                   [](double, double y) { return y < 1e-9 || y > 1.0 - 1e-9; });
    const auto disc =
        std::make_shared<Discretization>(std::make_shared<mesh::Mesh>(std::move(m)), 5);

    nektar::FourierNsOptions o;
    o.dt = 1e-3;
    o.viscosity = 0.05;
    o.num_modes = 4;
    o.velocity_bc.dirichlet = {mesh::BoundaryTag::Wall};
    o.pressure_bc.dirichlet.clear();
    o.pressure_bc.pin_first_dof = true;

    struct RunResult {
        std::vector<double> state;
        blaslite::OpCounts counts;
    };
    const auto run = [&](unsigned threads) {
        parallel::set_num_threads(threads);
        nektar::FourierNS ns(disc, o);
        ns.set_initial(
            [](double, double y, double z) {
                return std::sin(std::numbers::pi * y) * (1.0 + 0.5 * std::sin(z));
            },
            [](double x, double, double z) { return 0.1 * std::sin(x) * std::cos(2.0 * z); },
            [](double, double, double) { return 0.0; });
        for (int s = 0; s < 3; ++s) ns.step();
        RunResult r;
        for (int c = 0; c < 3; ++c)
            for (std::size_t p = 0; p < 2 * ns.local_modes(); ++p) {
                const auto q = ns.plane_quad(c, p);
                r.state.insert(r.state.end(), q.begin(), q.end());
            }
        r.counts = ns.breakdown().total_counts();
        return r;
    };

    const unsigned before = parallel::num_threads();
    const RunResult r1 = run(1);
    const RunResult r3 = run(3);
    const RunResult r5 = run(5);
    parallel::set_num_threads(before);

    ASSERT_EQ(r1.state.size(), r3.state.size());
    for (std::size_t i = 0; i < r1.state.size(); ++i) {
        ASSERT_EQ(r1.state[i], r3.state[i]) << "1 vs 3 threads diverge at " << i;
        ASSERT_EQ(r1.state[i], r5.state[i]) << "1 vs 5 threads diverge at " << i;
    }
    // Counter-derived virtual-clock charging must be thread-count invariant.
    EXPECT_EQ(r1.counts.flops, r3.counts.flops);
    EXPECT_EQ(r1.counts.bytes_read, r3.counts.bytes_read);
    EXPECT_EQ(r1.counts.bytes_written, r3.counts.bytes_written);
    EXPECT_EQ(r1.counts.calls, r3.counts.calls);
    EXPECT_EQ(r1.counts.flops, r5.counts.flops);
    EXPECT_EQ(r1.counts.calls, r5.counts.calls);
}

} // namespace
