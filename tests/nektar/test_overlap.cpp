#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <numbers>
#include <random>
#include <tuple>
#include <utility>
#include <vector>

#include "gs/gather_scatter.hpp"
#include "mesh/generators.hpp"
#include "nektar/fourier_transpose.hpp"
#include "nektar/ns_ale.hpp"
#include "nektar/ns_fourier.hpp"
#include "partition/partition.hpp"

/// Property tests for the communication/computation overlap paths: every
/// overlapped exchange must be *bit-identical* to its blocking twin — across
/// rank counts, slice counts, and fault seeds — while recovering wall time on
/// the virtual clock whenever there is computation to hide behind.
namespace {

using nektar::AleNS2d;
using nektar::AleOptions;
using nektar::Discretization;
using nektar::FourierNS;
using nektar::FourierNsOptions;
using nektar::FourierTranspose;

netsim::NetworkModel make_net(std::uint64_t fault_seed) {
    netsim::NetworkModel n;
    n.name = "overlap";
    n.latency_us = 10.0;
    n.bandwidth_mbps = 100.0;
    if (fault_seed != 0) {
        n.fault.seed = fault_seed;
        n.fault.latency_jitter_us = 80.0;
        n.fault.loss_probability = 0.05;
        n.fault.retransmit_timeout_us = 300.0;
        n.fault.degrade_probability = 0.02;
        n.fault.degrade_factor = 3.0;
        n.fault.straggler_fraction = 0.3;
        n.fault.straggler_factor = 2.5;
    }
    return n;
}

/// Total virtual comm seconds this rank hid so far, summed over stages.
double hidden_total(const simmpi::Comm& c) {
    double t = 0.0;
    for (const auto& [stage, s] : c.overlap_log()) {
        (void)stage;
        t += s;
    }
    return t;
}

/// (rank count, slice count, fault seed; 0 = perfect network).
class TransposeOverlap
    : public ::testing::TestWithParam<std::tuple<int, std::size_t, std::uint64_t>> {
protected:
    [[nodiscard]] int nprocs() const { return std::get<0>(GetParam()); }
    [[nodiscard]] std::size_t nslices() const { return std::get<1>(GetParam()); }
    [[nodiscard]] std::uint64_t seed() const { return std::get<2>(GetParam()); }
};

TEST_P(TransposeOverlap, ToLinesOverlappedIsBitIdentical) {
    const int p = nprocs();
    const std::size_t nq = 23, npl = 4; // nq not divisible by p: exercises padding
    simmpi::World world(p, make_net(seed()));
    world.run([&](simmpi::Comm& c) {
        FourierTranspose tr(&c, nq, npl);
        std::vector<double> planes(tr.planes_buffer_size());
        for (std::size_t lp = 0; lp < npl; ++lp)
            for (std::size_t i = 0; i < nq; ++i)
                planes[lp * nq + i] =
                    1000.0 * static_cast<double>(c.rank() * npl + lp) + static_cast<double>(i);
        std::vector<double> blocking(tr.lines_buffer_size());
        tr.to_lines(&c, planes, blocking);
        std::vector<double> overlapped(tr.lines_buffer_size(), -1.0);
        // on_ready ranges must partition [0, chunk) in ascending order.
        std::size_t covered = 0;
        tr.to_lines_overlapped(&c, planes, overlapped, nslices(),
                               [&](std::size_t b, std::size_t e) {
                                   ASSERT_EQ(b, covered);
                                   ASSERT_GT(e, b);
                                   covered = e;
                               });
        ASSERT_EQ(covered, tr.chunk());
        for (std::size_t i = 0; i < blocking.size(); ++i)
            ASSERT_EQ(overlapped[i], blocking[i]) << "p=" << p << " i=" << i;
    });
}

TEST_P(TransposeOverlap, ToPlanesOverlappedIsBitIdentical) {
    const int p = nprocs();
    const std::size_t nq = 23, npl = 4;
    simmpi::World world(p, make_net(seed()));
    world.run([&](simmpi::Comm& c) {
        FourierTranspose tr(&c, nq, npl);
        const std::size_t tp = tr.total_planes();
        std::vector<double> lines(tr.lines_buffer_size());
        for (std::size_t i = 0; i < tr.chunk(); ++i)
            for (std::size_t gp = 0; gp < tp; ++gp)
                lines[i * tp + gp] = 17.0 * static_cast<double>(tr.global_point(i, c.rank())) +
                                     static_cast<double>(gp);
        std::vector<double> blocking(tr.planes_buffer_size(), -1.0);
        tr.to_planes(&c, lines, blocking);
        // The produce callback fills each slice of lines just before it ships.
        std::vector<double> staged(lines.size(), 0.0);
        std::vector<double> overlapped(tr.planes_buffer_size(), -2.0);
        tr.to_planes_overlapped(&c, staged, overlapped, nslices(),
                                [&](std::size_t b, std::size_t e) {
                                    for (std::size_t i = b; i < e; ++i)
                                        for (std::size_t gp = 0; gp < tp; ++gp)
                                            staged[i * tp + gp] = lines[i * tp + gp];
                                });
        for (std::size_t i = 0; i < blocking.size(); ++i)
            ASSERT_EQ(overlapped[i], blocking[i]) << "p=" << p << " i=" << i;
    });
}

TEST_P(TransposeOverlap, RoundtripOverlappedMatchesBlockingSequence) {
    const int p = nprocs();
    const std::size_t nq = 23, npl = 4;
    const std::size_t nin = 2, nout = 3; // unequal field counts, like 3-in/6-out
    simmpi::World world(p, make_net(seed()));
    world.run([&](simmpi::Comm& c) {
        FourierTranspose tr(&c, nq, npl);
        const std::size_t tp = tr.total_planes();
        std::vector<std::vector<double>> pin(nin), lin(nin), lout(nout), pout(nout);
        std::vector<std::vector<double>> lin_ref(nin), lout_ref(nout), pout_ref(nout);
        for (std::size_t f = 0; f < nin; ++f) {
            pin[f].resize(tr.planes_buffer_size());
            for (std::size_t j = 0; j < pin[f].size(); ++j)
                pin[f][j] = std::sin(0.1 * static_cast<double>(j) + static_cast<double>(f) +
                                     static_cast<double>(c.rank()));
            lin[f].resize(tr.lines_buffer_size());
            lin_ref[f].resize(tr.lines_buffer_size());
        }
        for (std::size_t f = 0; f < nout; ++f) {
            lout[f].assign(tr.lines_buffer_size(), 0.0);
            lout_ref[f].assign(tr.lines_buffer_size(), 0.0);
            pout[f].assign(tr.planes_buffer_size(), -1.0);
            pout_ref[f].assign(tr.planes_buffer_size(), -2.0);
        }
        // A pointwise "nonlinear" kernel mixing the input lines.
        const auto kernel = [&](std::vector<std::vector<double>>& in,
                                std::vector<std::vector<double>>& out, std::size_t b,
                                std::size_t e) {
            for (std::size_t i = b; i < e; ++i)
                for (std::size_t gp = 0; gp < tp; ++gp) {
                    const double a = in[0][i * tp + gp], bb = in[1][i * tp + gp];
                    out[0][i * tp + gp] = a * bb;
                    out[1][i * tp + gp] = a + 2.0 * bb;
                    out[2][i * tp + gp] = a * a - bb;
                }
        };

        // Blocking reference sequence.
        for (std::size_t f = 0; f < nin; ++f) tr.to_lines(&c, pin[f], lin_ref[f]);
        kernel(lin_ref, lout_ref, 0, tr.chunk());
        for (std::size_t f = 0; f < nout; ++f) tr.to_planes(&c, lout_ref[f], pout_ref[f]);

        std::vector<std::span<const double>> pin_s(pin.begin(), pin.end());
        std::vector<std::span<double>> lin_s(lin.begin(), lin.end());
        std::vector<std::span<const double>> lout_s(lout.begin(), lout.end());
        std::vector<std::span<double>> pout_s(pout.begin(), pout.end());
        tr.roundtrip_overlapped(&c, pin_s, lin_s, lout_s, pout_s, nslices(),
                                [&](std::size_t b, std::size_t e) { kernel(lin, lout, b, e); });

        for (std::size_t f = 0; f < nout; ++f)
            for (std::size_t j = 0; j < pout[f].size(); ++j)
                ASSERT_EQ(pout[f][j], pout_ref[f][j]) << "p=" << p << " f=" << f << " j=" << j;
    });
}

INSTANTIATE_TEST_SUITE_P(
    RanksSlicesSeeds, TransposeOverlap,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values<std::size_t>(1, 3, 8),
                       ::testing::Values<std::uint64_t>(0, 20260807)),
    [](const ::testing::TestParamInfo<TransposeOverlap::ParamType>& info) {
        return "p" + std::to_string(std::get<0>(info.param)) + "_s" +
               std::to_string(std::get<1>(info.param)) + "_seed" +
               std::to_string(std::get<2>(info.param));
    });

TEST(TransposeOverlap, PipelineRecoversWallTimeWhenComputeCoversComm) {
    // On a perfect network, a roundtrip whose per-slice compute dwarfs the
    // per-slice transfers must finish earlier on the virtual wall clock than
    // the blocking exchange-compute-exchange sequence, and the hidden
    // seconds must show up in the overlap log.
    const int p = 4;
    const std::size_t nq = 64, npl = 8, nslices = 8;
    simmpi::World world(p, make_net(0));
    const auto reports = world.run([&](simmpi::Comm& c) {
        FourierTranspose tr(&c, nq, npl);
        const std::size_t tp = tr.total_planes();
        const double per_point = 1e-4; // virtual seconds of compute per point
        std::vector<double> planes(tr.planes_buffer_size(), 1.0);
        std::vector<double> lines(tr.lines_buffer_size());
        std::vector<double> back(tr.planes_buffer_size());
        std::vector<std::span<const double>> pin{planes};
        std::vector<std::span<double>> lin{lines};
        std::vector<std::span<const double>> lout{lines};
        std::vector<std::span<double>> pout{back};

        const double w0 = c.wall_time();
        tr.to_lines(&c, planes, lines);
        c.advance_compute(static_cast<double>(tr.chunk()) * per_point);
        tr.to_planes(&c, lines, back);
        const double blocking = c.wall_time() - w0;

        const double w1 = c.wall_time();
        tr.roundtrip_overlapped(&c, pin, lin, lout, pout, nslices,
                                [&](std::size_t b, std::size_t e) {
                                    c.advance_compute(static_cast<double>(e - b) * per_point);
                                    (void)tp;
                                });
        const double overlapped = c.wall_time() - w1;

        EXPECT_LT(overlapped, blocking) << "rank " << c.rank();
        EXPECT_GT(hidden_total(c), 0.0);
    });
    for (const auto& rep : reports) EXPECT_FALSE(rep.overlap_log.empty());
}

TEST(GatherScatterOverlap, NonblockingExchangeIsBitIdenticalToBlocking) {
    // Random sharing patterns, with and without faults: the nonblocking
    // pairwise stage must reproduce the blocking sums bit for bit.
    for (std::uint64_t seed : {0ull, 20260807ull}) {
        for (int p : {2, 3, 5}) {
            std::mt19937 gen(41 + p);
            std::vector<std::vector<std::int64_t>> ids(static_cast<std::size_t>(p));
            for (std::int64_t gid = 0; gid < 60; ++gid) {
                std::vector<int> holders;
                for (int r = 0; r < p; ++r)
                    if (gen() % 3 == 0) holders.push_back(r);
                if (holders.empty()) holders.push_back(static_cast<int>(gid) % p);
                for (int r : holders) ids[static_cast<std::size_t>(r)].push_back(gid);
            }
            simmpi::World world(p, make_net(seed));
            world.run([&](simmpi::Comm& c) {
                const auto& mine = ids[static_cast<std::size_t>(c.rank())];
                gs::GatherScatter blocking_gs(c, mine, gs::GatherScatter::Strategy::Auto,
                                              gs::GatherScatter::Exchange::Blocking);
                gs::GatherScatter nonblocking_gs(c, mine, gs::GatherScatter::Strategy::Auto,
                                                 gs::GatherScatter::Exchange::Nonblocking);
                std::vector<double> v1(mine.size()), v2(mine.size());
                for (std::size_t i = 0; i < mine.size(); ++i)
                    v1[i] = v2[i] = std::sin(static_cast<double>(mine[i])) + 0.01 * c.rank();
                blocking_gs.sum(c, v1);
                nonblocking_gs.sum(c, v2);
                for (std::size_t i = 0; i < mine.size(); ++i)
                    ASSERT_EQ(v2[i], v1[i]) << "p=" << p << " rank=" << c.rank() << " i=" << i;
            });
        }
    }
}

std::shared_ptr<Discretization> shear_disc(std::size_t order) {
    auto m = mesh::rectangle_quads(2, 2, 0.0, 1.0, 0.0, 1.0);
    m.tag_boundary(mesh::BoundaryTag::Side, [](double, double) { return true; });
    m.tag_boundary(mesh::BoundaryTag::Wall,
                   [](double, double y) { return y < 1e-9 || y > 1.0 - 1e-9; });
    return std::make_shared<Discretization>(std::make_shared<mesh::Mesh>(std::move(m)), order);
}

FourierNsOptions shear_opts(double nu, double dt) {
    FourierNsOptions o;
    o.dt = dt;
    o.viscosity = nu;
    o.num_modes = 4;
    o.velocity_bc.dirichlet = {mesh::BoundaryTag::Wall};
    o.pressure_bc.dirichlet.clear();
    o.pressure_bc.pin_first_dof = true;
    return o;
}

TEST(FourierNSOverlap, OverlappedSolverIsBitIdenticalToBlocking) {
    const double nu = 0.05, dt = 2e-3;
    const int nsteps = 6;
    const auto run_norm = [&](simmpi::Comm* comm, bool overlap) {
        const auto disc = shear_disc(5);
        FourierNsOptions o = shear_opts(nu, dt);
        o.overlap_transpose = overlap;
        FourierNS ns(disc, o, comm);
        ns.set_initial(
            [](double, double y, double z) {
                return std::sin(std::numbers::pi * y) * (std::sin(z) + 0.3 * std::cos(2.0 * z));
            },
            [](double, double, double) { return 0.0; },
            [](double, double, double) { return 0.0; });
        for (int s = 0; s < nsteps; ++s) ns.step();
        return ns.l2_error_3d(comm, 0, ns.time(),
                              [](double, double, double, double) { return 0.0; });
    };
    for (std::uint64_t seed : {0ull, 20260807ull}) {
        for (int p : {2, 4}) {
            std::vector<double> on(static_cast<std::size_t>(p)), off(on.size());
            {
                simmpi::World world(p, make_net(seed));
                world.run([&](simmpi::Comm& c) {
                    off[static_cast<std::size_t>(c.rank())] = run_norm(&c, false);
                });
            }
            {
                simmpi::World world(p, make_net(seed));
                world.run([&](simmpi::Comm& c) {
                    on[static_cast<std::size_t>(c.rank())] = run_norm(&c, true);
                });
            }
            // Faults stretch clocks, never data: both modes must agree bit
            // for bit on every rank regardless of the seed.
            for (int r = 0; r < p; ++r)
                ASSERT_EQ(on[static_cast<std::size_t>(r)], off[static_cast<std::size_t>(r)])
                    << "p=" << p << " seed=" << seed << " rank=" << r;
        }
    }
}

TEST(FourierNSOverlap, OverlapEarnsCreditInTheTransposeStage) {
    simmpi::World world(2, make_net(0));
    const auto reports = world.run([&](simmpi::Comm& c) {
        const auto disc = shear_disc(5);
        FourierNS ns(disc, shear_opts(0.05, 1e-3), &c);
        ns.set_initial(
            [](double, double y, double z) { return std::sin(std::numbers::pi * y) * std::sin(z); },
            [](double, double, double) { return 0.0; },
            [](double, double, double) { return 0.0; });
        for (int s = 0; s < 3; ++s) ns.step();
    });
    // The pipelined nonlinear exchange hides transfer time behind the z-line
    // work; the credit lands in stage 2 (transpose/nonlinear) of every rank.
    for (const auto& rep : reports) {
        ASSERT_TRUE(rep.overlap_log.count(2)) << "no overlap credit in stage 2";
        EXPECT_GT(rep.overlap_log.at(2), 0.0);
        double total = 0.0;
        for (const auto& [stage, s] : rep.overlap_log) {
            (void)stage;
            total += s;
        }
        EXPECT_DOUBLE_EQ(total, rep.overlap_log.at(2)); // only stage 2 overlaps today
    }
}

double kinetic_energy(const AleNS2d& ns) {
    std::vector<double> ke(ns.u_quad().size());
    for (std::size_t i = 0; i < ke.size(); ++i)
        ke[i] = ns.u_quad()[i] * ns.u_quad()[i] + ns.v_quad()[i] * ns.v_quad()[i];
    return ns.disc().integrate(ke);
}

TEST(AleOverlap, NonblockingGsSolverIsBitIdenticalToBlocking) {
    const auto m = mesh::flapping_body_mesh(1);
    const int p = 4, nsteps = 3;
    partition::Graph g;
    m.dual_graph(g.xadj, g.adjncy);
    const auto part = partition::partition_graph(g, p);
    const auto run_fields = [&](bool nonblocking) {
        AleOptions opts;
        opts.dt = 2e-3;
        opts.viscosity = 0.05;
        opts.overlap_gs = nonblocking;
        opts.body_velocity = [](double t) { return 0.3 * std::sin(5.0 * t); };
        opts.u_bc = [](double x, double y, double) {
            const bool body = std::abs(x) <= 0.5 + 1e-6 && std::abs(y) <= 0.5 + 1e-6;
            return body ? 0.0 : 1.0;
        };
        opts.v_bc = [&opts](double x, double y, double t) {
            const bool body = std::abs(x) <= 0.5 + 1e-6 && std::abs(y) <= 0.5 + 1e-6;
            return body ? opts.body_velocity(t) : 0.0;
        };
        simmpi::World world(p, make_net(0));
        std::vector<std::vector<double>> u(static_cast<std::size_t>(p));
        std::vector<double> energy(static_cast<std::size_t>(p));
        world.run([&](simmpi::Comm& c) {
            AleNS2d ns(m, 3, opts, &c, &part);
            ns.set_initial([](double, double) { return 1.0; },
                           [](double, double) { return 0.0; });
            for (int s = 0; s < nsteps; ++s) ns.step();
            u[static_cast<std::size_t>(c.rank())] = ns.u_quad();
            energy[static_cast<std::size_t>(c.rank())] = c.allreduce_sum(kinetic_energy(ns));
        });
        return std::pair{u, energy};
    };
    const auto [u_blk, e_blk] = run_fields(false);
    const auto [u_nb, e_nb] = run_fields(true);
    for (int r = 0; r < p; ++r) {
        ASSERT_EQ(u_nb[static_cast<std::size_t>(r)].size(),
                  u_blk[static_cast<std::size_t>(r)].size());
        for (std::size_t i = 0; i < u_nb[static_cast<std::size_t>(r)].size(); ++i)
            ASSERT_EQ(u_nb[static_cast<std::size_t>(r)][i], u_blk[static_cast<std::size_t>(r)][i])
                << "rank " << r << " i=" << i;
        ASSERT_EQ(e_nb[static_cast<std::size_t>(r)], e_blk[static_cast<std::size_t>(r)]);
    }
}

} // namespace
