#include "nektar/pencil_transpose.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "mesh/generators.hpp"
#include "nektar/fourier_transpose.hpp"
#include "nektar/ns_fourier.hpp"

/// The 2-D pencil transpose: bit-identity with the 1-D slab (the golden
/// reference) at every rank count, the overlapped pipeline, the cost-model
/// crossover that motivates it, and checkpoint/restart of a pencil solver
/// under seeded faults.
namespace {

using nektar::FourierTranspose;
using nektar::PencilTranspose;

netsim::NetworkModel test_net(std::uint64_t fault_seed = 0) {
    netsim::NetworkModel n;
    n.name = "test";
    n.latency_us = 10.0;
    n.bandwidth_mbps = 100.0;
    if (fault_seed != 0) {
        n.fault.seed = fault_seed;
        n.fault.latency_jitter_us = 25.0;
        n.fault.degrade_probability = 0.2;
        n.fault.degrade_factor = 2.5;
    }
    return n;
}

TEST(PencilTranspose, SerialRoundTrip) {
    const std::size_t nq = 17, npl = 6;
    PencilTranspose tr(nullptr, nq, npl);
    EXPECT_FALSE(tr.has_state());
    std::vector<double> planes(tr.planes_buffer_size());
    for (std::size_t i = 0; i < planes.size(); ++i) planes[i] = static_cast<double>(i) * 0.25;
    std::vector<double> lines(tr.lines_buffer_size());
    tr.to_lines(nullptr, planes, lines);
    std::vector<double> back(planes.size(), -1.0);
    tr.to_planes(nullptr, lines, back);
    for (std::size_t i = 0; i < planes.size(); ++i) EXPECT_DOUBLE_EQ(back[i], planes[i]);
}

TEST(PencilTranspose, GridShapeIsMostSquareByDefault) {
    struct Case {
        int p;
        std::size_t rows;
    };
    for (const auto [p, rows] : {Case{4, 2}, Case{6, 2}, Case{8, 2}, Case{12, 3}, Case{16, 4},
                                 Case{2, 1}, Case{7, 1}}) {
        simmpi::World world(p, test_net());
        world.run([&, rows = rows](simmpi::Comm& c) {
            PencilTranspose tr(&c, 23, 2);
            EXPECT_EQ(tr.grid_rows(), rows) << "p=" << tr.num_ranks();
            EXPECT_EQ(tr.grid_rows() * tr.grid_cols(), tr.num_ranks());
        });
    }
}

TEST(PencilTranspose, RowsMustDivideTheRankCount) {
    simmpi::World world(6, test_net());
    EXPECT_THROW(world.run([](simmpi::Comm& c) { PencilTranspose tr(&c, 23, 2, 4); }),
                 std::invalid_argument);
}

class PencilRanks : public ::testing::TestWithParam<int> {};

/// The pencil must produce byte-identical planes/lines buffers to the slab —
/// same point and plane ownership, same padding zeros — at every rank count,
/// including prime counts that degenerate to a 1 x P grid.
TEST_P(PencilRanks, MatchesSlabBitForBit) {
    const int p = GetParam();
    const std::size_t nq = 23, npl = 4; // nq not divisible by p: exercises padding
    simmpi::World world(p, test_net());
    world.run([&](simmpi::Comm& c) {
        FourierTranspose slab(&c, nq, npl);
        PencilTranspose pencil(&c, nq, npl);
        ASSERT_EQ(pencil.chunk(), slab.chunk());
        ASSERT_EQ(pencil.total_planes(), slab.total_planes());
        EXPECT_TRUE(pencil.has_state());

        std::vector<double> planes(slab.planes_buffer_size());
        for (std::size_t lp = 0; lp < npl; ++lp)
            for (std::size_t i = 0; i < nq; ++i)
                planes[lp * nq + i] =
                    1000.0 * static_cast<double>(c.rank() * npl + lp) + static_cast<double>(i);

        std::vector<double> slab_lines(slab.lines_buffer_size());
        std::vector<double> pencil_lines(pencil.lines_buffer_size(), -1.0);
        slab.to_lines(&c, planes, slab_lines);
        pencil.to_lines(&c, planes, pencil_lines);
        EXPECT_EQ(pencil_lines, slab_lines);

        std::vector<double> back(planes.size(), -1.0);
        pencil.to_planes(&c, pencil_lines, back);
        EXPECT_EQ(back, planes);
    });
}

INSTANTIATE_TEST_SUITE_P(Ranks, PencilRanks, ::testing::Values(2, 3, 4, 6, 8, 12, 16));

TEST(PencilTranspose, OverlappedModesMatchBlockingBitForBit) {
    const int p = 6;
    const std::size_t nq = 29, npl = 4, nslices = 3;
    simmpi::World world(p, test_net());
    world.run([&](simmpi::Comm& c) {
        PencilTranspose tr(&c, nq, npl);
        std::vector<double> planes(tr.planes_buffer_size());
        for (std::size_t i = 0; i < planes.size(); ++i)
            planes[i] = std::sin(0.37 * static_cast<double>(i) + c.rank());

        std::vector<double> blocking(tr.lines_buffer_size());
        tr.to_lines(&c, planes, blocking);

        std::vector<double> overlapped(tr.lines_buffer_size(), -1.0);
        std::size_t covered = 0;
        tr.to_lines_overlapped(&c, planes, overlapped, nslices,
                               [&](std::size_t b, std::size_t e) { covered += e - b; });
        EXPECT_EQ(covered, tr.chunk());
        EXPECT_EQ(overlapped, blocking);

        std::vector<double> back(planes.size(), -1.0);
        tr.to_planes_overlapped(&c, overlapped, back, nslices);
        EXPECT_EQ(back, planes);
    });
}

TEST(PencilTranspose, RoundtripOverlappedMatchesBlockingSequence) {
    const int p = 4;
    const std::size_t nq = 18, npl = 2, nslices = 2;
    simmpi::World world(p, test_net());
    world.run([&](simmpi::Comm& c) {
        PencilTranspose tr(&c, nq, npl);
        const std::size_t tp = tr.total_planes();
        std::vector<double> pin(tr.planes_buffer_size());
        for (std::size_t i = 0; i < pin.size(); ++i)
            pin[i] = 0.5 * static_cast<double>(i + 1) + 10.0 * c.rank();

        // Reference: blocking to_lines / compute / to_planes.
        std::vector<double> ref_lines(tr.lines_buffer_size());
        tr.to_lines(&c, pin, ref_lines);
        std::vector<double> ref_out_lines(ref_lines);
        for (double& v : ref_out_lines) v *= 2.0;
        std::vector<double> ref_planes(tr.planes_buffer_size(), -1.0);
        tr.to_planes(&c, ref_out_lines, ref_planes);

        std::vector<double> lines(tr.lines_buffer_size()), out_lines(tr.lines_buffer_size());
        std::vector<double> planes(tr.planes_buffer_size(), -1.0);
        tr.roundtrip_overlapped(
            &c, {std::span<const double>(pin)}, {std::span<double>(lines)},
            {std::span<const double>(out_lines)}, {std::span<double>(planes)}, nslices,
            [&](std::size_t b, std::size_t e) {
                for (std::size_t i = b; i < e; ++i)
                    for (std::size_t gp = 0; gp < tp; ++gp)
                        out_lines[i * tp + gp] = 2.0 * lines[i * tp + gp];
            });
        EXPECT_EQ(lines, ref_lines);
        EXPECT_EQ(planes, ref_planes);
    });
}

/// The motivation in one inequality: on a latency-bound 1999 network the
/// staged sqrt(P)-wide exchanges beat the P-wide slab alltoall once P is
/// large, and the netsim cost models must reproduce that crossover.
TEST(PencilTranspose, CostModelCrossesOverAtScale) {
    const netsim::NetworkModel* fast = nullptr;
    for (const auto& n : netsim::scaling_roster())
        if (n.name.find("FastEther") != std::string::npos) fast = &n;
    ASSERT_NE(fast, nullptr);

    // Table-2-like volume: per-rank slab block of (Nq/P) * (Nz/P) doubles.
    const std::size_t nq = 2048, tp = 4096;
    const auto slab_seconds = [&](int p) {
        const std::size_t block = ((nq + p - 1) / p) * (tp / static_cast<std::size_t>(p));
        return fast->alltoall_seconds(p, block * sizeof(double));
    };
    const auto pencil_seconds = [&](int p) {
        int rows = 1;
        for (int r = 1; r * r <= p; ++r)
            if (p % r == 0) rows = r;
        const int cols = p / rows;
        const std::size_t chunk = (nq + p - 1) / p;
        const std::size_t npl = tp / static_cast<std::size_t>(p);
        const std::size_t s1 = static_cast<std::size_t>(rows) * npl * chunk * sizeof(double);
        const std::size_t s2 = static_cast<std::size_t>(cols) * npl * chunk * sizeof(double);
        return fast->hierarchical_alltoall_seconds(rows, cols, s1, s2);
    };
    // Small P: the slab's single exchange wins (no staged double-shipping).
    EXPECT_LT(slab_seconds(16), pencil_seconds(16));
    // Large P: the slab's P-wide latency term loses badly.
    EXPECT_GT(slab_seconds(1024), pencil_seconds(1024));
    EXPECT_GT(slab_seconds(4096), pencil_seconds(4096));
}

// --- FourierNS integration --------------------------------------------------

std::shared_ptr<nektar::Discretization> shear_disc(std::size_t order) {
    auto m = mesh::rectangle_quads(2, 2, 0.0, 1.0, 0.0, 1.0);
    m.tag_boundary(mesh::BoundaryTag::Side, [](double, double) { return true; });
    m.tag_boundary(mesh::BoundaryTag::Wall,
                   [](double, double y) { return y < 1e-9 || y > 1.0 - 1e-9; });
    return std::make_shared<nektar::Discretization>(std::make_shared<mesh::Mesh>(std::move(m)),
                                                    order);
}

nektar::FourierNsOptions fourier_opts(nektar::TransposeKind kind) {
    nektar::FourierNsOptions o;
    o.dt = 2e-3;
    o.viscosity = 0.05;
    o.time_order = 2;
    o.num_modes = 4;
    o.velocity_bc.dirichlet = {mesh::BoundaryTag::Wall};
    o.pressure_bc.dirichlet.clear();
    o.pressure_bc.pin_first_dof = true;
    o.transpose = kind;
    return o;
}

void shear_initial(nektar::FourierNS& ns, double lz) {
    constexpr double pi = std::numbers::pi;
    ns.set_initial(
        [=](double, double y, double z) {
            return std::sin(pi * y) * (1.0 + 0.1 * std::cos(2.0 * pi * z / lz));
        },
        [=](double, double y, double z) {
            return 0.05 * std::sin(pi * y) * std::sin(2.0 * pi * z / lz);
        },
        [=](double, double y, double) { return 0.02 * std::sin(pi * y); });
}

/// Runs `steps` of the shear problem and returns every rank's quadrature
/// planes of every component — the physics, independent of comm accounting.
std::vector<std::vector<double>> run_fourier(int nranks, nektar::TransposeKind kind,
                                             int steps) {
    const auto disc = shear_disc(3);
    const auto opts = fourier_opts(kind);
    std::vector<std::vector<double>> fields(static_cast<std::size_t>(nranks));
    simmpi::World world(nranks, test_net());
    world.run([&](simmpi::Comm& c) {
        nektar::FourierNS ns(disc, opts, &c);
        shear_initial(ns, opts.lz);
        for (int s = 0; s < steps; ++s) ns.step();
        auto& out = fields[static_cast<std::size_t>(c.rank())];
        for (int comp = 0; comp < 3; ++comp)
            for (std::size_t p = 0; p < 2 * ns.local_modes(); ++p) {
                const auto plane = ns.plane_quad(comp, p);
                out.insert(out.end(), plane.begin(), plane.end());
            }
    });
    return fields;
}

TEST(FourierNsPencil, SolverFieldsMatchSlabBitForBit) {
    for (const int p : {2, 4}) {
        const auto slab = run_fourier(p, nektar::TransposeKind::Slab, 3);
        const auto pencil = run_fourier(p, nektar::TransposeKind::Pencil, 3);
        for (int r = 0; r < p; ++r)
            EXPECT_EQ(pencil[static_cast<std::size_t>(r)], slab[static_cast<std::size_t>(r)])
                << "p=" << p << " rank " << r;
    }
}

/// Restart bit-identity for a pencil solver under an active fault model: the
/// transpose's subcommunicator state (and the re-derived split contexts)
/// must replay exactly.
TEST(FourierNsPencil, CheckpointRestartIsByteIdenticalUnderFaults) {
    const int nranks = 4, n = 5, k = 2;
    const std::uint64_t seed = 1234;
    const auto disc = shear_disc(3);
    const auto opts = fourier_opts(nektar::TransposeKind::Pencil);

    const auto run = [&](int steps, const std::vector<std::vector<std::uint8_t>>* from,
                         std::vector<std::vector<std::uint8_t>>& out) {
        simmpi::World world(nranks, test_net(seed));
        out.assign(static_cast<std::size_t>(nranks), {});
        world.run([&](simmpi::Comm& c) {
            nektar::FourierNS ns(disc, opts, &c);
            if (from != nullptr)
                ns.restore(ckpt::Checkpoint::deserialize(
                    (*from)[static_cast<std::size_t>(c.rank())]));
            else
                shear_initial(ns, opts.lz);
            while (ns.steps_taken() < steps) ns.step();
            out[static_cast<std::size_t>(c.rank())] = ns.checkpoint().serialize();
        });
    };

    std::vector<std::vector<std::uint8_t>> ref, mid, resumed;
    run(n, nullptr, ref);
    run(k, nullptr, mid);
    ASSERT_TRUE(ckpt::Checkpoint::deserialize(mid[0]).has("transpose"));
    run(n, &mid, resumed);
    for (int r = 0; r < nranks; ++r)
        EXPECT_EQ(resumed[static_cast<std::size_t>(r)], ref[static_cast<std::size_t>(r)])
            << "rank " << r;
}

/// A slab checkpoint must not restore into a pencil solver (or vice versa):
/// the options fingerprint covers the transpose kind.
TEST(FourierNsPencil, SlabCheckpointIsRefusedByAPencilSolver) {
    const int nranks = 2;
    const auto disc = shear_disc(3);
    std::vector<std::vector<std::uint8_t>> slab_ck(nranks);
    {
        simmpi::World world(nranks, test_net());
        world.run([&](simmpi::Comm& c) {
            nektar::FourierNS ns(disc, fourier_opts(nektar::TransposeKind::Slab), &c);
            shear_initial(ns, 2.0 * std::numbers::pi);
            ns.step();
            slab_ck[static_cast<std::size_t>(c.rank())] = ns.checkpoint().serialize();
        });
    }
    simmpi::World world(nranks, test_net());
    EXPECT_THROW(world.run([&](simmpi::Comm& c) {
        nektar::FourierNS ns(disc, fourier_opts(nektar::TransposeKind::Pencil), &c);
        ns.restore(ckpt::Checkpoint::deserialize(slab_ck[static_cast<std::size_t>(c.rank())]));
    }),
                 ckpt::Error);
}

} // namespace
