#include "la/cg.hpp"

#include <gtest/gtest.h>

#include <random>

#include "la/banded.hpp"
#include "la/dense.hpp"

namespace {

TEST(Pcg, SolvesSpdBandedSystem) {
    const std::size_t n = 80;
    la::SymBandedMatrix a(n, 2);
    std::mt19937 gen(11);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (std::size_t d = 1; d <= 2; ++d)
        for (std::size_t j = 0; j + d < n; ++j) a.band(d, j) = dist(gen);
    for (std::size_t j = 0; j < n; ++j) a.band(0, j) = 6.0;

    std::vector<double> x_true(n), b(n), x(n, 0.0), inv_diag(n);
    for (std::size_t i = 0; i < n; ++i) x_true[i] = dist(gen);
    a.matvec(x_true, b);
    for (std::size_t j = 0; j < n; ++j) inv_diag[j] = 1.0 / a.band(0, j);

    const auto res = la::pcg(
        [&](std::span<const double> in, std::span<double> out) { a.matvec(in, out); }, inv_diag,
        b, x, {.max_iterations = 500, .tolerance = 1e-12});
    EXPECT_TRUE(res.converged);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(Pcg, ImmediateConvergenceOnExactGuess) {
    la::SymBandedMatrix a(4, 0);
    for (std::size_t j = 0; j < 4; ++j) a.band(0, j) = 2.0;
    std::vector<double> b = {2, 4, 6, 8};
    std::vector<double> x = {1, 2, 3, 4};
    std::vector<double> inv_diag(4, 0.5);
    const auto res = la::pcg(
        [&](std::span<const double> in, std::span<double> out) { a.matvec(in, out); }, inv_diag,
        b, x);
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.iterations, 0u);
}

TEST(Pcg, ReportsNonConvergenceWithinBudget) {
    // An ill-conditioned system and a tiny iteration budget.
    const std::size_t n = 50;
    la::SymBandedMatrix a(n, 1);
    for (std::size_t j = 0; j < n; ++j) a.band(0, j) = 2.0;
    for (std::size_t j = 0; j + 1 < n; ++j) a.band(1, j) = -1.0;
    std::vector<double> b(n, 1.0), x(n, 0.0), inv_diag(n, 0.5);
    const auto res = la::pcg(
        [&](std::span<const double> in, std::span<double> out) { a.matvec(in, out); }, inv_diag,
        b, x, {.max_iterations = 3, .tolerance = 1e-14});
    EXPECT_FALSE(res.converged);
    EXPECT_EQ(res.iterations, 3u);
}

TEST(Pcg, DiagonalPreconditionerBeatsNone) {
    // Strongly varying diagonal: Jacobi preconditioning should converge in
    // far fewer iterations.
    const std::size_t n = 60;
    la::SymBandedMatrix a(n, 1);
    for (std::size_t j = 0; j < n; ++j)
        a.band(0, j) = 1.0 + 100.0 * static_cast<double>(j) / static_cast<double>(n);
    for (std::size_t j = 0; j + 1 < n; ++j) a.band(1, j) = -0.3;
    std::vector<double> b(n, 1.0);

    std::vector<double> x1(n, 0.0), inv1(n);
    for (std::size_t j = 0; j < n; ++j) inv1[j] = 1.0 / a.band(0, j);
    const auto with = la::pcg(
        [&](std::span<const double> in, std::span<double> out) { a.matvec(in, out); }, inv1, b,
        x1, {.max_iterations = 400, .tolerance = 1e-10});

    std::vector<double> x2(n, 0.0), inv2(n, 1.0);
    const auto without = la::pcg(
        [&](std::span<const double> in, std::span<double> out) { a.matvec(in, out); }, inv2, b,
        x2, {.max_iterations = 400, .tolerance = 1e-10});

    EXPECT_TRUE(with.converged);
    EXPECT_TRUE(without.converged);
    EXPECT_LT(with.iterations, without.iterations);
}

} // namespace
