#include "la/banded.hpp"

#include <gtest/gtest.h>

#include <random>

namespace {

/// Random SPD banded matrix: diagonally dominant within the band.
la::SymBandedMatrix random_banded(std::size_t n, std::size_t kd, unsigned seed) {
    std::mt19937 gen(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    la::SymBandedMatrix a(n, kd);
    for (std::size_t d = 1; d <= kd; ++d)
        for (std::size_t j = 0; j + d < n; ++j) a.band(d, j) = dist(gen);
    for (std::size_t j = 0; j < n; ++j) a.band(0, j) = 2.0 * static_cast<double>(kd) + 1.0;
    return a;
}

class BandedSizes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(BandedSizes, CholeskyRoundTrip) {
    const auto [n, kd] = GetParam();
    const auto nu = static_cast<std::size_t>(n);
    const auto a = random_banded(nu, static_cast<std::size_t>(kd), 42);
    std::vector<double> x_true(nu), b(nu);
    std::mt19937 gen(7);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (auto& v : x_true) v = dist(gen);
    a.matvec(x_true, b);
    la::BandedCholesky chol;
    ASSERT_TRUE(chol.factor(a));
    chol.solve(b);
    for (std::size_t i = 0; i < nu; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, BandedSizes,
                         ::testing::Values(std::pair{1, 0}, std::pair{5, 0}, std::pair{10, 1},
                                           std::pair{20, 3}, std::pair{50, 7},
                                           std::pair{200, 15}, std::pair{128, 127}));

TEST(Banded, MatchesDenseCholesky) {
    const auto a = random_banded(30, 4, 1);
    la::DenseMatrix dense = a.to_dense();
    std::vector<double> b(30, 1.0), bd(30, 1.0);
    la::BandedCholesky chol;
    ASSERT_TRUE(chol.factor(a));
    chol.solve(b);
    ASSERT_TRUE(la::cholesky_factor(dense));
    la::cholesky_solve(dense, bd);
    for (std::size_t i = 0; i < 30; ++i) EXPECT_NEAR(b[i], bd[i], 1e-10);
}

TEST(Banded, RejectsIndefinite) {
    la::SymBandedMatrix a(3, 1);
    a.band(0, 0) = 1.0;
    a.band(0, 1) = -1.0; // negative diagonal
    a.band(0, 2) = 1.0;
    la::BandedCholesky chol;
    EXPECT_FALSE(chol.factor(a));
    EXPECT_FALSE(chol.factored());
}

TEST(Banded, AtAndAddRespectSymmetry) {
    la::SymBandedMatrix a(5, 2);
    a.add(1, 3, 2.5);
    EXPECT_DOUBLE_EQ(a.at(1, 3), 2.5);
    EXPECT_DOUBLE_EQ(a.at(3, 1), 2.5);
    EXPECT_DOUBLE_EQ(a.at(0, 4), 0.0); // outside band
    const auto d = a.to_dense();
    EXPECT_DOUBLE_EQ(d.symmetry_defect(), 0.0);
}

TEST(Banded, MatvecMatchesDense) {
    const auto a = random_banded(25, 3, 9);
    const auto dense = a.to_dense();
    std::vector<double> x(25), y1(25), y2(25);
    for (std::size_t i = 0; i < 25; ++i) x[i] = static_cast<double>(i) * 0.1 - 1.0;
    a.matvec(x, y1);
    dense.matvec(x, y2);
    for (std::size_t i = 0; i < 25; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

} // namespace
