#include "la/dense.hpp"

#include <gtest/gtest.h>

#include <random>

namespace {

la::DenseMatrix random_spd(std::size_t n, unsigned seed) {
    std::mt19937 gen(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    la::DenseMatrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(gen);
    la::DenseMatrix spd = matmul(a, a.transposed());
    for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
    return spd;
}

TEST(Dense, MatvecAndMatmulAgree) {
    const auto a = random_spd(12, 1);
    std::vector<double> x(12);
    std::mt19937 gen(2);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (auto& v : x) v = dist(gen);
    std::vector<double> y(12);
    a.matvec(x, y);
    la::DenseMatrix xm(12, 1);
    for (std::size_t i = 0; i < 12; ++i) xm(i, 0) = x[i];
    const auto ym = matmul(a, xm);
    for (std::size_t i = 0; i < 12; ++i) EXPECT_NEAR(y[i], ym(i, 0), 1e-12);
}

TEST(Dense, LuSolvesRandomSystem) {
    const std::size_t n = 20;
    auto a = random_spd(n, 3);
    const auto a0 = a;
    std::vector<double> x_true(n), b(n);
    std::mt19937 gen(4);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (auto& v : x_true) v = dist(gen);
    a0.matvec(x_true, b);
    std::vector<std::size_t> piv;
    ASSERT_TRUE(lu_factor(a, piv));
    lu_solve(a, piv, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-9);
}

TEST(Dense, LuDetectsSingular) {
    la::DenseMatrix a(3, 3, 0.0);
    a(0, 0) = 1.0;
    a(1, 1) = 1.0; // third row/col all zero
    std::vector<std::size_t> piv;
    EXPECT_FALSE(lu_factor(a, piv));
}

TEST(Dense, CholeskySolvesSpd) {
    const std::size_t n = 15;
    auto a = random_spd(n, 5);
    const auto a0 = a;
    std::vector<double> x_true(n, 1.5), b(n);
    a0.matvec(x_true, b);
    ASSERT_TRUE(cholesky_factor(a));
    cholesky_solve(a, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], 1.5, 1e-9);
}

TEST(Dense, CholeskyRejectsIndefinite) {
    la::DenseMatrix a(2, 2);
    a(0, 0) = 1.0;
    a(0, 1) = a(1, 0) = 2.0;
    a(1, 1) = 1.0; // eigenvalues 3, -1
    EXPECT_FALSE(cholesky_factor(a));
}

TEST(Dense, SymmetryDefect) {
    la::DenseMatrix a(2, 2);
    a(0, 1) = 1.0;
    a(1, 0) = 0.25;
    EXPECT_DOUBLE_EQ(a.symmetry_defect(), 0.75);
    EXPECT_DOUBLE_EQ(random_spd(8, 6).symmetry_defect(), 0.0);
}

} // namespace
