#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <numbers>
#include <string>
#include <type_traits>
#include <vector>

#include "mesh/generators.hpp"
#include "nektar/ns_fourier.hpp"
#include "nektar/ns_serial.hpp"
#include "obs/trace.hpp"
#include "perf/report.hpp"

/// The observability contract: spans nest and order correctly on every lane,
/// the virtual-clock rank lanes agree with the comm runtime's own fault and
/// overlap accounting, the serialized stream is bit-deterministic across
/// seeded runs, and perf::report() emits the versioned RunReport shape.
namespace {

using nektar::Discretization;
using nektar::FourierNS;
using nektar::FourierNsOptions;
using nektar::SerialNS2d;
using nektar::SerialNsOptions;
using obs::EventKind;

/// Every test starts and ends with a clean global tracer — it is process
/// state shared with whatever ran before.
class TracerTest : public ::testing::Test {
protected:
    void SetUp() override {
        obs::tracer().disable();
        obs::tracer().reset();
    }
    void TearDown() override {
        obs::tracer().disable();
        obs::tracer().reset();
    }
};

netsim::NetworkModel test_net(std::uint64_t fault_seed) {
    netsim::NetworkModel n;
    n.name = "tracer-test";
    n.latency_us = 10.0;
    n.bandwidth_mbps = 100.0;
    if (fault_seed != 0) {
        n.fault.seed = fault_seed;
        n.fault.latency_jitter_us = 80.0;
        n.fault.loss_probability = 0.05;
        n.fault.retransmit_timeout_us = 300.0;
        n.fault.straggler_fraction = 0.3;
        n.fault.straggler_factor = 2.5;
    }
    return n;
}

std::shared_ptr<Discretization> shear_disc(std::size_t order) {
    auto m = mesh::rectangle_quads(2, 2, 0.0, 1.0, 0.0, 1.0);
    m.tag_boundary(mesh::BoundaryTag::Side, [](double, double) { return true; });
    m.tag_boundary(mesh::BoundaryTag::Wall,
                   [](double, double y) { return y < 1e-9 || y > 1.0 - 1e-9; });
    return std::make_shared<Discretization>(std::make_shared<mesh::Mesh>(std::move(m)), order);
}

FourierNsOptions shear_opts() {
    FourierNsOptions o;
    o.dt = 2e-3;
    o.viscosity = 0.05;
    o.num_modes = 4;
    o.velocity_bc.dirichlet = {mesh::BoundaryTag::Wall};
    o.pressure_bc.dirichlet.clear();
    o.pressure_bc.pin_first_dof = true;
    o.trace = true;
    return o;
}

/// A short seeded NekTar-F run with stage tracing on; returns the rank
/// reports so tests can cross-check the trace against the comm accounting.
std::vector<simmpi::RankReport> run_traced_fourier(int nprocs, std::uint64_t fault_seed,
                                                   int nsteps = 3) {
    simmpi::World world(nprocs, test_net(fault_seed));
    return world.run([&](simmpi::Comm& c) {
        FourierNS ns(shear_disc(4), shear_opts(), &c);
        ns.set_initial(
            [](double, double y, double z) {
                return std::sin(std::numbers::pi * y) * (std::sin(z) + 0.3 * std::cos(2.0 * z));
            },
            [](double, double, double) { return 0.0; },
            [](double, double, double) { return 0.0; });
        for (int s = 0; s < nsteps; ++s) ns.step();
    });
}

/// Walks one lane's events checking the structural invariants: Begin/End
/// strictly LIFO per lane, timestamps non-decreasing, no ring drops.
void check_lane_invariants(const obs::Tracer::Snapshot& snap,
                           const obs::Tracer::LaneSnapshot& lane) {
    ASSERT_EQ(lane.dropped, 0u) << "lane " << lane.name << " overflowed its ring";
    std::vector<std::uint32_t> stack;
    double last_t = -1e300;
    for (const auto& ev : lane.events) {
        EXPECT_GE(ev.t, last_t) << "time went backwards on lane " << lane.name;
        last_t = ev.t;
        switch (ev.kind) {
        case EventKind::Begin: stack.push_back(ev.name); break;
        case EventKind::End:
            ASSERT_FALSE(stack.empty())
                << "End without Begin on lane " << lane.name << ": "
                << snap.strings[ev.name];
            ASSERT_EQ(snap.strings[stack.back()], snap.strings[ev.name])
                << "mismatched End on lane " << lane.name;
            stack.pop_back();
            break;
        case EventKind::Counter:
        case EventKind::Instant: break;
        }
    }
    EXPECT_TRUE(stack.empty()) << "unclosed span on lane " << lane.name;
}

TEST_F(TracerTest, InterningDeduplicatesAndLanePointersAreStable) {
    obs::tracer().enable();
    obs::Lane* a = obs::tracer().lane("rank 0");
    obs::Lane* b = obs::tracer().lane("rank 0");
    EXPECT_EQ(a, b);
    EXPECT_EQ(a->name(), "rank 0");
    const std::uint32_t s1 = obs::tracer().intern("gs.sum.blocking");
    const std::uint32_t s2 = obs::tracer().intern("gs.sum.blocking");
    EXPECT_EQ(s1, s2);
    EXPECT_NE(s1, 0u); // 0 is reserved for ""
    EXPECT_EQ(obs::tracer().intern(""), 0u);
}

TEST_F(TracerTest, InactiveTracerRecordsNothing) {
    ASSERT_FALSE(obs::active());
    run_traced_fourier(2, 0, 1); // opts.trace = true, but tracer not enabled
    obs::tracer().enable();
    const auto snap = obs::tracer().snapshot();
    std::size_t events = 0;
    for (const auto& lane : snap.lanes) events += lane.events.size();
    EXPECT_EQ(events, 0u);
}

TEST_F(TracerTest, SolverSpansNestAndOrderOnEveryRankLane) {
    obs::tracer().enable();
    run_traced_fourier(2, 0);
    obs::tracer().disable();
    const auto snap = obs::tracer().snapshot();

    int rank_lanes = 0;
    for (const auto& lane : snap.lanes) {
        if (lane.name.rfind("rank ", 0) != 0) continue;
        ++rank_lanes;
        ASSERT_FALSE(lane.events.empty());
        check_lane_invariants(snap, lane);

        // Every stage span must sit inside a "step" span.  (Comm spans from
        // solver setup legitimately run at top level before the first step.)
        std::vector<std::string> stack;
        int steps_seen = 0;
        const std::vector<std::string> stage_names = {"transform", "nonlinear"};
        for (const auto& ev : lane.events) {
            const std::string& name = snap.strings[ev.name];
            if (ev.kind == EventKind::Begin) {
                if (name == "step") {
                    EXPECT_TRUE(stack.empty()) << "nested step on " << lane.name;
                    ++steps_seen;
                }
                for (const auto& sn : stage_names) {
                    if (name == sn) {
                        ASSERT_FALSE(stack.empty()) << "stage span outside step";
                    }
                }
                stack.push_back(name);
            } else if (ev.kind == EventKind::End) {
                stack.pop_back();
            }
        }
        EXPECT_EQ(steps_seen, 3) << "expected one step span per ns.step()";
    }
    EXPECT_EQ(rank_lanes, 2);
}

TEST_F(TracerTest, VirtualLanesAgreeWithFaultAndOverlapAccounting) {
    obs::tracer().enable({.virtual_only = true});
    const auto reports = run_traced_fourier(2, 20260807);
    obs::tracer().disable();
    const auto snap = obs::tracer().snapshot();

    double all_retrans = 0.0, all_hidden = 0.0;
    for (int r = 0; r < 2; ++r) {
        const obs::Tracer::LaneSnapshot* lane = nullptr;
        for (const auto& l : snap.lanes)
            if (l.name == "rank " + std::to_string(r)) lane = &l;
        ASSERT_NE(lane, nullptr);
        check_lane_invariants(snap, *lane);

        double trace_retrans = 0.0, trace_hidden = 0.0;
        for (const auto& ev : lane->events) {
            EXPECT_TRUE(ev.virtual_time)
                << "host-clock event survived virtual_only on " << lane->name;
            if (ev.kind != EventKind::Counter) continue;
            const std::string& name = snap.strings[ev.name];
            if (name == "fault.retransmits") trace_retrans += ev.value;
            if (name == "overlap.hidden_s") trace_hidden += ev.value;
        }
        double log_retrans = 0.0, log_hidden = 0.0;
        const auto& rep = reports[static_cast<std::size_t>(r)];
        for (const auto& [stage, fs] : rep.fault_log) {
            (void)stage;
            log_retrans += static_cast<double>(fs.retransmits);
        }
        for (const auto& [stage, hidden] : rep.overlap_log) {
            (void)stage;
            log_hidden += hidden;
        }
        // The counters must agree with the comm runtime's own books.
        EXPECT_DOUBLE_EQ(trace_retrans, log_retrans) << "rank " << r;
        EXPECT_NEAR(trace_hidden, log_hidden, 1e-9 * (1.0 + log_hidden)) << "rank " << r;
        all_retrans += log_retrans;
        all_hidden += log_hidden;
    }
    // The seeded loss rate must actually have exercised both code paths.
    EXPECT_GT(all_retrans, 0.0);
    EXPECT_GT(all_hidden, 0.0);
}

TEST_F(TracerTest, SerializedStreamIsBitDeterministicAcrossThreeRuns) {
    std::vector<std::vector<std::uint8_t>> streams;
    for (int run = 0; run < 3; ++run) {
        obs::tracer().reset();
        obs::tracer().enable({.virtual_only = true});
        run_traced_fourier(2, 20260807);
        obs::tracer().disable();
        streams.push_back(obs::tracer().serialize());
    }
    ASSERT_GT(streams[0].size(), 0u);
    EXPECT_EQ(streams[0], streams[1]);
    EXPECT_EQ(streams[0], streams[2]);
}

TEST_F(TracerTest, ChromeJsonIsBalancedAndNamesLanes) {
    obs::tracer().enable();
    run_traced_fourier(2, 0, 1);
    obs::tracer().disable();
    const std::string json = obs::tracer().chrome_json();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("rank 0"), std::string::npos);
    EXPECT_NE(json.find("rank 1"), std::string::npos);
    long depth = 0;
    for (const char c : json) {
        if (c == '{') ++depth;
        if (c == '}') --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

/// Serial solver, host clock: the per-stage span durations summed over the
/// run must track StageBreakdown::host_seconds (both bracket the same stage
/// bodies; the span also covers the begin/end bookkeeping, so the match is
/// loose in relative terms but tight against the total).
TEST_F(TracerTest, SerialStageSpanSumsMatchStageBreakdown) {
    obs::tracer().enable();
    auto m = mesh::rectangle_quads(3, 3, 0.0, 1.0, 0.0, 1.0);
    m.tag_boundary(mesh::BoundaryTag::Wall, [](double, double) { return true; });
    const auto disc =
        std::make_shared<Discretization>(std::make_shared<mesh::Mesh>(std::move(m)), 5);
    SerialNsOptions opts;
    opts.dt = 1e-3;
    opts.viscosity = 0.05;
    opts.pressure_bc.dirichlet.clear();
    opts.pressure_bc.pin_first_dof = true;
    opts.trace = true;
    SerialNS2d ns(disc, opts);
    ns.set_initial([](double, double y) { return std::sin(std::numbers::pi * y); },
                   [](double, double) { return 0.0; });
    for (int s = 0; s < 4; ++s) ns.step();
    obs::tracer().disable();

    const auto snap = obs::tracer().snapshot();
    const obs::Tracer::LaneSnapshot* lane = nullptr;
    for (const auto& l : snap.lanes)
        if (l.name == "solver") lane = &l;
    ASSERT_NE(lane, nullptr);
    check_lane_invariants(snap, *lane);

    // Sum (end - begin) per span name over the lane.
    std::map<std::string, double> span_sum;
    std::vector<std::pair<std::string, double>> stack;
    for (const auto& ev : lane->events) {
        if (ev.kind == EventKind::Begin)
            stack.emplace_back(snap.strings[ev.name], ev.t);
        else if (ev.kind == EventKind::End) {
            span_sum[stack.back().first] += ev.t - stack.back().second;
            stack.pop_back();
        }
    }
    ASSERT_TRUE(span_sum.count("step"));

    const perf::StageBreakdown& bd = ns.breakdown();
    double stage_span_total = 0.0, stage_host_total = 0.0;
    for (std::size_t s = 1; s <= perf::kNumStages; ++s) {
        const std::string name = perf::stage_short_name(s);
        ASSERT_TRUE(span_sum.count(name)) << "no spans for stage " << name;
        const double host = bd.host_seconds[s];
        // Per stage: the span brackets the StageScope, so it can only be
        // longer, and not by more than bookkeeping noise.
        EXPECT_GE(span_sum[name], host * 0.5) << "stage " << name;
        EXPECT_LE(span_sum[name], host + 0.05) << "stage " << name;
        stage_span_total += span_sum[name];
        stage_host_total += host;
    }
    EXPECT_NEAR(stage_span_total, stage_host_total,
                std::max(0.02, 0.5 * stage_host_total));
    // The step span in turn covers all stage spans.
    EXPECT_GE(span_sum["step"], stage_span_total * 0.99);
}

TEST_F(TracerTest, RunReportHasTheVersionedSchemaShape) {
    obs::tracer().enable();
    const auto reports = run_traced_fourier(2, 20260807, 2);
    obs::tracer().disable();

    perf::StageBreakdown bd;
    bd.steps = 2;
    bd.host_seconds[2] = 0.25;
    bd.counts[2].flops = 1000;
    perf::RunReport rep = perf::report("test_tracer", &bd, &reports[0]);
    rep.meta["seed"] = "20260807";
    perf::Case kase;
    kase.labels["platform"] = "unit";
    kase.values["wall_seconds"] = 1.5;
    rep.cases.push_back(kase);

    // Folding the rank report must surface its fault accounting as counters.
    EXPECT_GT(rep.metrics.counters.at("comm.retransmits"), 0.0);
    EXPECT_GT(rep.metrics.counters.at("comm.fault_seconds"), 0.0);
    EXPECT_GT(rep.metrics.counters.at("comm.overlap_hidden_seconds"), 0.0);
    EXPECT_EQ(rep.steps, 2);

    const std::string json = rep.to_json();
    for (const char* key : {"\"schema_version\":2", "\"bench\":\"test_tracer\"", "\"meta\":",
                            "\"request\":{}", "\"cache\":{\"hit\":false,\"store_key\":\"\"}",
                            "\"steps\":2", "\"stages\":[", "\"metrics\":", "\"counters\":",
                            "\"gauges\":", "\"histograms\":", "\"cases\":[",
                            "\"platform\":\"unit\"", "\"wall_seconds\":1.5"})
        EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
    long depth = 0;
    for (const char c : json) {
        if (c == '{') ++depth;
        if (c == '}') --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

// The unified options name (the deprecated NsOptions alias is gone).
TEST(SolverOptionsCompat, SerialOptionsConstructDirectly) {
    nektar::SerialNsOptions opts;
    opts.dt = 5e-4;
    opts.viscosity = 0.02;
    EXPECT_EQ(opts.time_order, 2);
    const SerialNsOptions& base = opts;
    EXPECT_EQ(base.dt, 5e-4);
}

} // namespace
