#include "partition/partition.hpp"

#include <gtest/gtest.h>

#include "mesh/generators.hpp"
#include "mesh/mesh.hpp"

namespace {

partition::Graph grid_graph(std::size_t nx, std::size_t ny) {
    const auto m = mesh::rectangle_quads(nx, ny, 0.0, 1.0, 0.0, 1.0);
    partition::Graph g;
    m.dual_graph(g.xadj, g.adjncy);
    return g;
}

class PartitionP : public ::testing::TestWithParam<int> {};

TEST_P(PartitionP, BalancedParts) {
    const int p = GetParam();
    const auto g = grid_graph(12, 12);
    const auto part = partition::partition_graph(g, p);
    const auto stats = partition::evaluate(g, part);
    EXPECT_EQ(stats.nparts, p);
    EXPECT_LE(stats.imbalance(), 1.5) << "parts badly unbalanced";
}

TEST_P(PartitionP, BeatsOrMatchesStripBaseline) {
    const int p = GetParam();
    const auto g = grid_graph(16, 16);
    const auto part = partition::partition_graph(g, p);
    const auto strips = partition::partition_strips(g.size(), p);
    const auto s1 = partition::evaluate(g, part);
    const auto s2 = partition::evaluate(g, strips);
    // Strip partitions of a row-major grid are near-optimal horizontal cuts,
    // so we only require the graph partitioner to stay in the same league.
    EXPECT_LE(s1.edge_cut, 2 * s2.edge_cut + 16);
}

INSTANTIATE_TEST_SUITE_P(Parts, PartitionP, ::testing::Values(2, 3, 4, 7, 8, 16));

TEST(Partition, SinglePartIsTrivial) {
    const auto g = grid_graph(4, 4);
    const auto part = partition::partition_graph(g, 1);
    for (int v : part) EXPECT_EQ(v, 0);
    EXPECT_EQ(partition::evaluate(g, part).edge_cut, 0u);
}

TEST(Partition, BluffBodyMeshPartitions) {
    const auto m = mesh::bluff_body_mesh();
    partition::Graph g;
    m.dual_graph(g.xadj, g.adjncy);
    const auto part = partition::partition_graph(g, 8);
    const auto stats = partition::evaluate(g, part);
    EXPECT_EQ(stats.nparts, 8);
    EXPECT_LE(stats.imbalance(), 1.6);
    EXPECT_LT(stats.edge_cut, g.adjncy.size() / 2); // far from cutting everything
}

TEST(Partition, EveryVertexAssigned) {
    const auto g = grid_graph(9, 7);
    const auto part = partition::partition_graph(g, 5);
    ASSERT_EQ(part.size(), g.size());
    std::vector<int> counts(5, 0);
    for (int v : part) {
        ASSERT_GE(v, 0);
        ASSERT_LT(v, 5);
        ++counts[static_cast<std::size_t>(v)];
    }
    for (int c : counts) EXPECT_GT(c, 0);
}

} // namespace
