/// NekTar-ALE: moving-geometry DNS (paper §4.2.2).  A bluff body heaves
/// sinusoidally in a channel; the mesh deforms with it (arbitrary
/// Lagrangian-Eulerian formulation), the mesh velocity comes from the extra
/// Helmholtz solve, and all systems are solved by diagonally preconditioned
/// conjugate gradients — serial here, with the same code path the
/// domain-decomposed parallel runs use.
#include <cmath>
#include <cstdio>

#include "mesh/generators.hpp"
#include "nektar/ns_ale.hpp"

int main() {
    const auto m = mesh::flapping_body_mesh(2);
    std::printf("Flapping-body ALE DNS: %s, order 4\n\n", m.summary().c_str());

    nektar::AleOptions opts;
    opts.dt = 4e-3;
    opts.viscosity = 0.01;
    // Heave amplitude stays below the near-body cell size so the deforming
    // mesh never inverts.
    const double amp = 0.05, omega = 4.0;
    opts.body_velocity = [=](double t) { return amp * omega * std::cos(omega * t); };
    opts.u_bc = [](double x, double y, double) {
        const bool body = std::abs(x) <= 0.6 && std::abs(y) <= 1.0;
        return body ? 0.0 : 1.0;
    };
    opts.v_bc = [&opts](double x, double y, double t) {
        const bool body = std::abs(x) <= 0.6 && std::abs(y) <= 1.0;
        return body ? opts.body_velocity(t) : 0.0; // no-slip on the moving body
    };
    nektar::AleNS2d ns(m, 4, opts);
    ns.set_initial([](double, double) { return 1.0; }, [](double, double) { return 0.0; });

    std::printf("%8s %10s %14s %16s %12s\n", "step", "time", "body y-vel", "max mesh vel",
                "p-iters");
    for (int s = 1; s <= 24; ++s) {
        ns.step();
        if (s % 4 == 0) {
            double wmax = 0.0;
            for (double w : ns.mesh_velocity_quad()) wmax = std::max(wmax, std::abs(w));
            std::printf("%8d %10.3f %14.4f %16.4f %12zu\n", s, ns.time(),
                        opts.body_velocity(ns.time()), wmax, ns.last_pressure_iterations());
        }
    }

    std::printf("\nStage split (paper Figures 15-16 grouping, host time):\n");
    const auto& bd = ns.breakdown();
    double a = 0, b = 0, c = 0;
    for (std::size_t s : {1u, 2u, 3u, 4u, 6u}) a += bd.host_seconds[s];
    b = bd.host_seconds[5];
    c = bd.host_seconds[7];
    const double tot = a + b + c;
    std::printf("  a (explicit steps + mesh update) %5.1f%%\n", 100.0 * a / tot);
    std::printf("  b (pressure PCG)                 %5.1f%%\n", 100.0 * b / tot);
    std::printf("  c (Helmholtz + mesh-velocity)    %5.1f%%\n", 100.0 * c / tot);
    return 0;
}
