/// The cluster-lab daemon: listens on a unix socket and answers canonical
/// lab::ScenarioRequest frames with RunReport bytes, memoising every answer
/// in a persistent store.  Clients (cluster_advisor --connect, bench
/// binaries via --request, bench_lab_load) share one warm cache, so a
/// scenario anyone has asked before comes back in microseconds.
///
///   lab_daemon [--socket lab.sock] [--store lab_store]
///
/// SIGINT/SIGTERM drain the accept loop, print serving stats, and exit.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include <unistd.h>

#include "lab/service.hpp"
#include "lab/wire.hpp"

namespace {
std::atomic<bool> g_stop{false};
void on_signal(int) { g_stop.store(true, std::memory_order_relaxed); }
} // namespace

int main(int argc, char** argv) {
    std::string socket_path = "lab.sock";
    std::string store_dir = "lab_store";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) socket_path = argv[++i];
        else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) store_dir = argv[++i];
        else {
            std::fprintf(stderr, "usage: lab_daemon [--socket path] [--store dir]\n");
            return 2;
        }
    }

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGPIPE, SIG_IGN); // a client hanging up mid-reply is not fatal

    lab::Service service(store_dir);
    const int listen_fd = lab::wire::listen_unix(socket_path);
    std::printf("lab_daemon: serving on %s, store %s (%zu warm entries)\n",
                socket_path.c_str(), store_dir.c_str(), service.store().size());
    std::fflush(stdout);

    lab::wire::serve(listen_fd, service, g_stop);

    ::close(listen_fd);
    ::unlink(socket_path.c_str());
    const auto stats = service.stats();
    std::printf("lab_daemon: stopping — %llu queries, %llu hits, %llu misses, "
                "%llu errors (hit rate %.1f%%), %zu stored reports\n",
                static_cast<unsigned long long>(stats.queries),
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                static_cast<unsigned long long>(stats.errors), 100.0 * stats.hit_rate(),
                service.store().size());
    return 0;
}
