/// NekTar-F in parallel: the Fourier-spectral/hp bluff-body wake of the
/// paper's §4.2.1 running on a simulated 4-node PC cluster (Muses, LAM over
/// Fast Ethernet).  Each rank owns one Fourier mode (two spectral/hp
/// planes); the nonlinear step couples them through MPI_Alltoall.  Prints
/// per-mode energies and the virtual-cluster timing the paper's Table 2
/// reports.
#include <cmath>
#include <cstdio>
#include <memory>

#include "mesh/generators.hpp"
#include "nektar/ns_fourier.hpp"
#include "simmpi/simmpi.hpp"

int main() {
    const int nprocs = 4;
    mesh::BluffBodyParams p;
    p.n_upstream = 4;
    p.n_wake = 6;
    p.n_body = 2;
    p.n_side = 3;
    const auto base_mesh = std::make_shared<mesh::Mesh>(mesh::bluff_body_mesh(p));

    simmpi::World world(nprocs, netsim::by_name("Muses, LAM"));
    std::printf("NekTar-F on a simulated %d-PC cluster (%s)\n\n", nprocs,
                world.network().name.c_str());

    const auto reports = world.run([&](simmpi::Comm& c) {
        const auto disc = std::make_shared<nektar::Discretization>(base_mesh, 4);
        nektar::FourierNsOptions opts;
        opts.dt = 4e-3;
        opts.viscosity = 0.01;
        opts.num_modes = static_cast<std::size_t>(nprocs); // one mode per rank
        opts.u_bc = [](double x, double y, double) {
            const bool body = std::abs(x) <= 0.5 + 1e-6 && std::abs(y) <= 0.5 + 1e-6;
            return body ? 0.0 : 1.0;
        };
        nektar::FourierNS ns(disc, opts, &c);
        // Slightly z-perturbed inflow seeds three-dimensionality.
        ns.set_initial([](double, double, double z) { return 1.0 + 0.02 * std::sin(z); },
                       [](double, double, double) { return 0.0; },
                       [](double, double, double z) { return 0.02 * std::cos(z); });
        for (int s = 0; s < 10; ++s) ns.step();

        // Per-mode kinetic energy of the u component on this rank (the
        // z-spectrum diagnostic of turbulence runs).
        for (std::size_t m = 0; m < ns.local_modes(); ++m)
            std::printf("  rank %d, Fourier mode k=%zu: |u_k|^2 = %.6e\n", c.rank(),
                        static_cast<std::size_t>(c.rank()) * ns.local_modes() + m,
                        ns.mode_energy(0, m));
    });

    std::printf("\nVirtual-cluster timing per rank (CPU vs wall, paper's Table 2 "
                "methodology):\n");
    for (const auto& r : reports)
        std::printf("  rank %d: cpu %.3f s, wall %.3f s, idle %.3f s\n", r.rank,
                    r.cpu_seconds, r.wall_seconds, r.wall_seconds - r.cpu_seconds);
    std::printf("\nThe wall-clock excess over CPU time is the Fast-Ethernet Alltoall "
                "cost the paper identifies as the PC-cluster bottleneck.\n");
    return 0;
}
