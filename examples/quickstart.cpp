/// Quickstart: solve a Helmholtz problem with the spectral/hp element
/// library and watch p-convergence — the property the paper highlights:
/// "convergence of the discretization ... can be obtained without remeshing
/// (h-refinement)".
///
///   -lap u + u = f   on [0,1]^2,  u = sin(pi x) sin(pi y) manufactured,
/// homogeneous Dirichlet boundary, hybrid triangle/quad mesh.
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <numbers>

#include "mesh/generators.hpp"
#include "nektar/helmholtz.hpp"

int main() {
    std::printf("spectral/hp element quickstart: -lap u + u = f on a hybrid mesh\n\n");
    std::printf("%6s %12s %14s %10s\n", "order", "dof", "L2 error", "bandwidth");

    for (std::size_t order = 2; order <= 9; ++order) {
        // Hybrid mesh: left half quads, right half triangles.
        auto mq = mesh::rectangle_quads(2, 4, 0.0, 0.5, 0.0, 1.0);
        auto mt = mesh::rectangle_tris(2, 4, 0.5, 1.0, 0.0, 1.0);
        // Merge the two generators' outputs into one mesh.
        std::vector<mesh::Vertex> verts;
        std::vector<mesh::Element> elems;
        std::map<std::pair<long, long>, int> vid; // dedupe on a fine grid key
        const auto add_vertex = [&](const mesh::Vertex& v) {
            const std::pair<long, long> key{std::lround(v.x * 1e9), std::lround(v.y * 1e9)};
            auto [it, inserted] = vid.try_emplace(key, static_cast<int>(verts.size()));
            if (inserted) verts.push_back(v);
            return it->second;
        };
        for (const mesh::Mesh* part : {&mq, &mt}) {
            for (std::size_t e = 0; e < part->num_elements(); ++e) {
                mesh::Element el = part->element(e);
                for (int k = 0; k < el.num_vertices(); ++k)
                    el.v[static_cast<std::size_t>(k)] = add_vertex(
                        part->vertex(static_cast<std::size_t>(el.v[static_cast<std::size_t>(k)])));
                elems.push_back(el);
            }
        }
        auto m = mesh::Mesh(std::move(verts), std::move(elems));
        m.tag_boundary(mesh::BoundaryTag::Wall, [](double, double) { return true; });

        const auto disc = std::make_shared<nektar::Discretization>(
            std::make_shared<mesh::Mesh>(std::move(m)), order);
        nektar::HelmholtzDirect solver(disc, 1.0, {.dirichlet = {mesh::BoundaryTag::Wall}});

        const auto exact = [](double x, double y) {
            return std::sin(std::numbers::pi * x) * std::sin(std::numbers::pi * y);
        };
        std::vector<double> f(disc->quad_size());
        disc->eval_at_quad(
            [&](double x, double y) {
                return (2.0 * std::numbers::pi * std::numbers::pi + 1.0) * exact(x, y);
            },
            f);
        const auto sol = solver.solve(f);
        std::vector<double> uq(disc->quad_size());
        disc->to_quad(sol, uq);
        std::printf("%6zu %12zu %14.3e %10zu\n", order, disc->dofmap().num_global(),
                    disc->l2_error(uq, exact), solver.bandwidth());
    }
    std::printf("\nExponential (p) convergence on an unchanging mesh — no remeshing.\n");
    return 0;
}
