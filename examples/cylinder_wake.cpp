/// Bluff-body wake DNS (serial): the paper's §4.1 workload on the graded
/// channel mesh of Figure 11.  Runs the third-order stiffly-stable
/// splitting scheme (time_order = 3; the scheme ramps 1 -> 2 -> 3 over the
/// first steps while history accumulates), monitors the wake velocity
/// deficit and prints the Figure 12 stage breakdown measured on this host.
///
/// Checkpoint/restart (README "Surviving a node failure"):
///   cylinder_wake --checkpoint wake.ckpt     # archive state every 8 steps
///   cylinder_wake --resume wake.ckpt         # continue from the archive
/// A resumed run replays to the same fields, probes and time stamps as an
/// uninterrupted one — the checkpoint carries the multistep history ring
/// and the scheme's startup-ramp position (DESIGN.md §5.6).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "ckpt/checkpoint.hpp"
#include "mesh/generators.hpp"
#include "nektar/forces.hpp"
#include "nektar/ns_serial.hpp"

int main(int argc, char** argv) {
    std::string ckpt_path, resume_path;
    int nsteps = 40;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--checkpoint") == 0 && i + 1 < argc)
            ckpt_path = argv[++i];
        else if (std::strcmp(argv[i], "--resume") == 0 && i + 1 < argc)
            resume_path = argv[++i];
        else if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc)
            nsteps = std::atoi(argv[++i]);
        else {
            std::fprintf(stderr,
                         "usage: %s [--checkpoint FILE] [--resume FILE] [--steps N]\n",
                         argv[0]);
            return 2;
        }
    }
    mesh::BluffBodyParams p;
    p.n_upstream = 5;
    p.n_wake = 8;
    p.n_body = 2;
    p.n_side = 3;
    const auto disc = std::make_shared<nektar::Discretization>(
        std::make_shared<mesh::Mesh>(mesh::bluff_body_mesh(p)), 5);
    std::printf("Bluff-body DNS: %s, order %zu, %zu global dof\n\n",
                disc->mesh().summary().c_str(), disc->order(), disc->dofmap().num_global());

    nektar::SerialNsOptions opts;
    opts.dt = 4e-3;
    opts.viscosity = 1.0 / 100.0; // Re = 100 on the body scale
    opts.time_order = 3;   // third-order stiffly-stable splitting (Je = 3)
    opts.u_bc = [](double x, double y, double) {
        const bool body = std::abs(x) <= 0.5 + 1e-6 && std::abs(y) <= 0.5 + 1e-6;
        return body ? 0.0 : 1.0; // laminar inflow of 1 (paper's setup)
    };
    if (!ckpt_path.empty()) opts.checkpoint_every = 8;
    nektar::SerialNS2d ns(disc, opts);
    ns.set_initial([](double, double) { return 1.0; }, [](double, double) { return 0.0; });

    if (!ckpt_path.empty())
        ns.set_checkpoint_sink([&](const ckpt::Checkpoint& c) {
            c.write_file(ckpt_path);
            std::printf("%8s checkpointed step %d -> %s\n", "", ns.steps_taken(),
                        ckpt_path.c_str());
        });
    if (!resume_path.empty()) {
        try {
            ns.restore(ckpt::Checkpoint::read_file(resume_path));
        } catch (const ckpt::Error& e) {
            std::fprintf(stderr, "cannot resume from %s: %s\n", resume_path.c_str(),
                         e.what());
            return 1;
        }
        std::printf("Resumed from %s at step %d (t = %.3f)\n\n", resume_path.c_str(),
                    ns.steps_taken(), ns.time());
    }

    // Probe the wake centreline velocity at x = 2 (u < 1 marks the deficit).
    const auto probe_wake = [&] {
        double best = 1e30, val = 1.0;
        for (std::size_t e = 0; e < disc->num_elements(); ++e) {
            const auto& g = disc->ops(e).geometry();
            for (std::size_t q = 0; q < disc->ops(e).num_quad(); ++q) {
                const double d = std::abs(g.x[q] - 2.0) + std::abs(g.y[q]);
                if (d < best) {
                    best = d;
                    val = ns.u_quad()[disc->quad_offset(e) + q];
                }
            }
        }
        return val;
    };

    std::printf("%8s %10s %14s %12s %12s %12s\n", "step", "time", "wake u(2,0)", "drag",
                "lift", "||div u||");
    for (int s = ns.steps_taken() + 1; s <= nsteps; ++s) {
        ns.step();
        if (s % 8 == 0) {
            // Traction integral over the body surface (drag/lift).
            std::vector<double> um(disc->modal_size()), vm(disc->modal_size());
            disc->project(ns.u_quad(), um);
            disc->project(ns.v_quad(), vm);
            const auto f = nektar::body_force(*disc, um, vm, ns.p_modal(), opts.viscosity,
                                              mesh::BoundaryTag::Body);
            std::printf("%8d %10.3f %14.4f %12.4f %12.4f %12.3e\n", s, ns.time(),
                        probe_wake(), f.fx, f.fy, ns.divergence_norm());
        }
    }

    std::printf("\nStage breakdown on this host (paper Figure 12 layout):\n");
    const auto& bd = ns.breakdown();
    const double total = bd.total_host_seconds();
    for (std::size_t s = 1; s <= perf::kNumStages; ++s)
        std::printf("  stage %zu  %-32s %5.1f%%\n", s, perf::stage_name(s).c_str(),
                    total > 0.0 ? 100.0 * bd.host_seconds[s] / total : 0.0);
    std::printf("\nThe wake deficit (u < 1 behind the body) shows the bluff-body "
                "recirculation developing.\n");
    return 0;
}
