/// "Fact or fiction?" — the paper's question, answered quantitatively.
/// Given a DNS problem size and processor count, predicts time per step on
/// every (machine, network) platform in the models and ranks them with a
/// cost-effectiveness note, reproducing the paper's conclusions: ethernet
/// PCs win on cost up to ~4 processors, Myrinet PCs stay competitive to ~64,
/// vendor supercomputers win outright.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "machine/machine_model.hpp"
#include "netsim/netmodel.hpp"

namespace {

struct PlatformSpec {
    const char* label;
    const char* machine;
    const char* network;
    double cost_per_proc_kusd; ///< rough 1999 acquisition cost per processor
    netsim::FaultModel fault;  ///< the interconnect's characteristic unreliability
};

/// Characteristic fault profiles: commodity TCP-over-ethernet retransmits
/// and jitters (the shared Muses segment worst of all), Myrinet's user-level
/// stack is clean but its PC hosts still straggle, and the vendor fabrics
/// with dedicated OS images barely misbehave.
netsim::FaultModel fault_profile(double loss, double timeout_us, double jitter_us,
                                 double strag_frac, double strag_factor) {
    netsim::FaultModel f;
    f.seed = 1999;
    f.loss_probability = loss;
    f.retransmit_timeout_us = timeout_us;
    f.latency_jitter_us = jitter_us;
    f.straggler_fraction = strag_frac;
    f.straggler_factor = strag_factor;
    return f;
}

const std::vector<PlatformSpec>& platforms() {
    static const std::vector<PlatformSpec> p = {
        {"PC cluster, Fast Ethernet (Muses)", "Muses", "Muses, LAM", 2.5,
         fault_profile(0.02, 800.0, 150.0, 0.25, 1.5)},
        {"PC cluster, Myrinet (RoadRunner)", "RoadRunner", "RoadRunner myr.", 4.5,
         fault_profile(0.002, 120.0, 15.0, 0.12, 1.3)},
        {"IBM SP2 Silver", "SP2-Silver", "SP2-Silver internode", 40.0,
         fault_profile(0.0005, 60.0, 5.0, 0.02, 1.1)},
        {"SGI Origin 2000 (NCSA)", "NCSA", "NCSA", 60.0,
         fault_profile(0.0002, 30.0, 2.0, 0.02, 1.1)},
        {"Cray T3E-900", "T3E", "T3E", 80.0,
         fault_profile(0.0001, 25.0, 1.0, 0.01, 1.05)},
    };
    return p;
}

} // namespace

int main(int argc, char** argv) {
    // Problem description: dof per processor and processors (NekTar-F-style
    // weak scaling, the paper's Table 2 configuration).
    const double dof_per_proc = argc > 1 ? std::atof(argv[1]) : 461000.0;
    const int nprocs = argc > 2 ? std::atoi(argv[2]) : 8;

    std::printf("DNS platform advisor: %.0f dof/processor on %d processors\n\n",
                dof_per_proc, nprocs);
    std::printf("%-38s %10s %10s %12s %14s\n", "platform", "s/step", "rel. speed",
                "reliability", "k$/(steps/s)");
    std::printf("%-38s %10s %10s %12s %14s\n", "--------", "------", "----------",
                "-----------", "-----------");

    // Cost model per step (per processor): ~60 flops and ~48 bytes of
    // latency-bound solver traffic per dof (calibrated on the Table 1 runs),
    // plus the Alltoall transposes of the nonlinear step.  Communication is
    // further inflated by the interconnect's characteristic fault profile
    // (retransmits, jitter, stragglers) via its expected inflation factor.
    double best = 1e30;
    std::vector<double> secs, inflations;
    for (const auto& pl : platforms()) {
        const auto& m = machine::by_name(pl.machine);
        const auto& net = netsim::by_name(pl.network);
        machine::KernelShape solver;
        solver.flops = 60.0 * dof_per_proc;
        solver.bytes = 48.0 * dof_per_proc;
        solver.working_set = 1u << 30;
        solver.compute_efficiency = 0.6;
        solver.latency_bound = true;
        const double compute = machine::predict_seconds(m, solver);
        // Alltoall volume per step: ~6 transposes of the per-proc field.
        const double msg = dof_per_proc * 8.0 / nprocs;
        const double comm =
            6.0 * net.alltoall_seconds(nprocs, static_cast<std::size_t>(msg));
        const double inflation = pl.fault.expected_inflation(comm);
        const double total = compute + comm * inflation;
        secs.push_back(total);
        inflations.push_back(inflation);
        best = std::min(best, total);
    }
    for (std::size_t i = 0; i < platforms().size(); ++i) {
        const auto& pl = platforms()[i];
        const double cost_eff = pl.cost_per_proc_kusd * nprocs * secs[i];
        // Reliability = fraction of communication wall time that is useful
        // transfer rather than fault overhead (1.00 = perfect network).
        std::printf("%-38s %10.3f %9.2fx %11.0f%% %14.1f\n", pl.label, secs[i],
                    secs[i] / best, 100.0 / inflations[i], cost_eff);
    }
    std::printf("\nLower k$/(steps/s) = more science per dollar; reliability is the\n"
                "share of comm time doing useful transfer under the interconnect's\n"
                "characteristic fault profile.  At small P the ethernet PC cluster\n"
                "is the value pick despite its retransmits; Myrinet carries PC\n"
                "clusters to medium scale; absolute speed still belongs to the T3E —\n"
                "the paper's 1999 verdict, reproduced from the models.\n");
    return 0;
}
