/// "Fact or fiction?" — the paper's question, answered quantitatively.
/// Given a DNS problem size and processor count, asks the cluster lab for
/// every candidate platform and ranks them with a cost-effectiveness note,
/// reproducing the paper's conclusions: ethernet PCs win on cost up to ~4
/// processors, Myrinet PCs stay competitive to ~64, vendor supercomputers
/// win outright.
///
/// Since the scenario-service PR this is a lab *client*: each platform row
/// is one canonical lab::ScenarioRequest answered by the service — from a
/// local RunReport store (--store; microseconds once warm) or a running
/// lab_daemon (--connect <socket>).  The platform presets and their fault
/// profiles live in lab/fault_profiles.hpp, shared with every other client.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "lab/fault_profiles.hpp"
#include "lab/json.hpp"
#include "lab/service.hpp"
#include "lab/wire.hpp"

namespace {

struct Row {
    std::string label;
    double cost_per_proc_kusd = 0.0;
    double wall = 0.0;
    double inflation = 1.0;
    double query_us = 0.0;
    bool cache_hit = false;
};

double case_value(const lab::Json& report, const char* key) {
    const auto& cases = report.at("cases").as_array();
    if (cases.empty()) throw lab::ParseError("report has no cases");
    return cases.front().at(key).as_number();
}

} // namespace

int main(int argc, char** argv) {
    double dof_per_proc = 461000.0; // NekTar-F weak scaling, Table 2 class
    int nprocs = 8;
    std::string store_dir, socket_path;
    std::vector<const char*> positional;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) store_dir = argv[++i];
        else if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc)
            socket_path = argv[++i];
        else positional.push_back(argv[i]);
    }
    if (!positional.empty()) dof_per_proc = std::atof(positional[0]);
    if (positional.size() > 1) nprocs = std::atoi(positional[1]);

    std::printf("DNS platform advisor: %.0f dof/processor on %d processors\n", dof_per_proc,
                nprocs);
    std::printf("(answers served by the cluster lab%s)\n\n",
                !socket_path.empty() ? " daemon"
                                     : (!store_dir.empty() ? " store" : ", in-process"));

    lab::Service service(store_dir);
    const int fd = socket_path.empty() ? -1 : lab::wire::connect_unix(socket_path);

    std::vector<Row> rows;
    double best = 1e30;
    for (const auto& platform : lab::advisor_platforms()) {
        lab::ScenarioRequest req;
        req.machine = platform.machine;
        req.net = platform.network;
        req.fault = platform.fault == "clean" ? "" : platform.fault;
        req.ranks = nprocs;
        req.dof_per_rank = dof_per_proc;

        const auto t0 = std::chrono::steady_clock::now();
        const std::string reply =
            fd >= 0 ? lab::wire::request(fd, req.canonical_json())
                    : lab::wire::response_payload(service.answer(req));
        const double us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count();

        const lab::Json report = lab::Json::parse(reply);
        if (const lab::Json* err = report.find("error")) {
            std::fprintf(stderr, "lab error for %s: %s\n", platform.label.c_str(),
                         err->as_string().c_str());
            return 1;
        }
        Row row;
        row.label = platform.label;
        row.cost_per_proc_kusd = platform.cost_per_proc_kusd;
        row.wall = case_value(report, "wall_seconds_per_step");
        row.inflation = case_value(report, "fault_inflation");
        row.query_us = us;
        row.cache_hit = report.at("cache").at("hit").as_bool();
        best = std::min(best, row.wall);
        rows.push_back(std::move(row));
    }
    if (fd >= 0) ::close(fd);

    std::printf("%-38s %10s %10s %12s %14s %10s\n", "platform", "s/step", "rel. speed",
                "reliability", "k$/(steps/s)", "query");
    std::printf("%-38s %10s %10s %12s %14s %10s\n", "--------", "------", "----------",
                "-----------", "-----------", "-----");
    for (const Row& row : rows) {
        const double cost_eff = row.cost_per_proc_kusd * nprocs * row.wall;
        char query[32];
        std::snprintf(query, sizeof(query), "%.0fus%s", row.query_us,
                      row.cache_hit ? "*" : "");
        // Reliability = fraction of communication wall time that is useful
        // transfer rather than fault overhead (1.00 = perfect network).
        std::printf("%-38s %10.3f %9.2fx %11.0f%% %14.1f %10s\n", row.label.c_str(),
                    row.wall, row.wall / best, 100.0 / row.inflation, cost_eff, query);
    }
    std::printf("\nLower k$/(steps/s) = more science per dollar; reliability is the\n"
                "share of comm time doing useful transfer under the interconnect's\n"
                "characteristic fault profile.  At small P the ethernet PC cluster\n"
                "is the value pick despite its retransmits; Myrinet carries PC\n"
                "clusters to medium scale; absolute speed still belongs to the T3E —\n"
                "the paper's 1999 verdict, reproduced from the models.\n"
                "('*' = answered from the RunReport store without recomputation)\n");
    return 0;
}
