file(REMOVE_RECURSE
  "CMakeFiles/test_la.dir/la/test_banded.cpp.o"
  "CMakeFiles/test_la.dir/la/test_banded.cpp.o.d"
  "CMakeFiles/test_la.dir/la/test_cg.cpp.o"
  "CMakeFiles/test_la.dir/la/test_cg.cpp.o.d"
  "CMakeFiles/test_la.dir/la/test_dense.cpp.o"
  "CMakeFiles/test_la.dir/la/test_dense.cpp.o.d"
  "test_la"
  "test_la.pdb"
  "test_la[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
