
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/netsim/test_faultmodel.cpp" "tests/CMakeFiles/test_netsim.dir/netsim/test_faultmodel.cpp.o" "gcc" "tests/CMakeFiles/test_netsim.dir/netsim/test_faultmodel.cpp.o.d"
  "/root/repo/tests/netsim/test_netmodel.cpp" "tests/CMakeFiles/test_netsim.dir/netsim/test_netmodel.cpp.o" "gcc" "tests/CMakeFiles/test_netsim.dir/netsim/test_netmodel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/nektar/CMakeFiles/nektar.dir/DependInfo.cmake"
  "/root/repo/build2/src/gs/CMakeFiles/gs.dir/DependInfo.cmake"
  "/root/repo/build2/src/simmpi/CMakeFiles/simmpi.dir/DependInfo.cmake"
  "/root/repo/build2/src/netsim/CMakeFiles/netsim.dir/DependInfo.cmake"
  "/root/repo/build2/src/machine/CMakeFiles/machine.dir/DependInfo.cmake"
  "/root/repo/build2/src/partition/CMakeFiles/partition.dir/DependInfo.cmake"
  "/root/repo/build2/src/fft/CMakeFiles/fft.dir/DependInfo.cmake"
  "/root/repo/build2/src/mesh/CMakeFiles/mesh.dir/DependInfo.cmake"
  "/root/repo/build2/src/spectral/CMakeFiles/spectral.dir/DependInfo.cmake"
  "/root/repo/build2/src/la/CMakeFiles/la.dir/DependInfo.cmake"
  "/root/repo/build2/src/blaslite/CMakeFiles/blaslite.dir/DependInfo.cmake"
  "/root/repo/build2/src/perf/CMakeFiles/perf.dir/DependInfo.cmake"
  "/root/repo/build2/src/parallel/CMakeFiles/parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
