# Empty dependencies file for test_gs.
# This may be replaced when dependencies are built.
