file(REMOVE_RECURSE
  "CMakeFiles/test_gs.dir/gs/test_gather_scatter.cpp.o"
  "CMakeFiles/test_gs.dir/gs/test_gather_scatter.cpp.o.d"
  "test_gs"
  "test_gs.pdb"
  "test_gs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
