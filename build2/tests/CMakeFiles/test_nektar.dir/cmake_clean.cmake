file(REMOVE_RECURSE
  "CMakeFiles/test_nektar.dir/nektar/test_ale.cpp.o"
  "CMakeFiles/test_nektar.dir/nektar/test_ale.cpp.o.d"
  "CMakeFiles/test_nektar.dir/nektar/test_assembly.cpp.o"
  "CMakeFiles/test_nektar.dir/nektar/test_assembly.cpp.o.d"
  "CMakeFiles/test_nektar.dir/nektar/test_batched_ops.cpp.o"
  "CMakeFiles/test_nektar.dir/nektar/test_batched_ops.cpp.o.d"
  "CMakeFiles/test_nektar.dir/nektar/test_diagnostics.cpp.o"
  "CMakeFiles/test_nektar.dir/nektar/test_diagnostics.cpp.o.d"
  "CMakeFiles/test_nektar.dir/nektar/test_forces.cpp.o"
  "CMakeFiles/test_nektar.dir/nektar/test_forces.cpp.o.d"
  "CMakeFiles/test_nektar.dir/nektar/test_fourier.cpp.o"
  "CMakeFiles/test_nektar.dir/nektar/test_fourier.cpp.o.d"
  "CMakeFiles/test_nektar.dir/nektar/test_helmholtz.cpp.o"
  "CMakeFiles/test_nektar.dir/nektar/test_helmholtz.cpp.o.d"
  "CMakeFiles/test_nektar.dir/nektar/test_ns_serial.cpp.o"
  "CMakeFiles/test_nektar.dir/nektar/test_ns_serial.cpp.o.d"
  "CMakeFiles/test_nektar.dir/nektar/test_scatter_gather.cpp.o"
  "CMakeFiles/test_nektar.dir/nektar/test_scatter_gather.cpp.o.d"
  "CMakeFiles/test_nektar.dir/nektar/test_static_condensation.cpp.o"
  "CMakeFiles/test_nektar.dir/nektar/test_static_condensation.cpp.o.d"
  "test_nektar"
  "test_nektar.pdb"
  "test_nektar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nektar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
