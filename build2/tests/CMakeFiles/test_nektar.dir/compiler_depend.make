# Empty compiler generated dependencies file for test_nektar.
# This may be replaced when dependencies are built.
