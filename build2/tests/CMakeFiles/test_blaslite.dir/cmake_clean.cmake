file(REMOVE_RECURSE
  "CMakeFiles/test_blaslite.dir/blaslite/test_blas.cpp.o"
  "CMakeFiles/test_blaslite.dir/blaslite/test_blas.cpp.o.d"
  "CMakeFiles/test_blaslite.dir/blaslite/test_blas_batch.cpp.o"
  "CMakeFiles/test_blaslite.dir/blaslite/test_blas_batch.cpp.o.d"
  "test_blaslite"
  "test_blaslite.pdb"
  "test_blaslite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blaslite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
