# Empty dependencies file for test_blaslite.
# This may be replaced when dependencies are built.
