# Empty dependencies file for test_simmpi.
# This may be replaced when dependencies are built.
