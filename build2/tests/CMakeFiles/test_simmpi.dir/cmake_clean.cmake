file(REMOVE_RECURSE
  "CMakeFiles/test_simmpi.dir/simmpi/test_collective_properties.cpp.o"
  "CMakeFiles/test_simmpi.dir/simmpi/test_collective_properties.cpp.o.d"
  "CMakeFiles/test_simmpi.dir/simmpi/test_simmpi.cpp.o"
  "CMakeFiles/test_simmpi.dir/simmpi/test_simmpi.cpp.o.d"
  "CMakeFiles/test_simmpi.dir/simmpi/test_stress.cpp.o"
  "CMakeFiles/test_simmpi.dir/simmpi/test_stress.cpp.o.d"
  "CMakeFiles/test_simmpi.dir/simmpi/test_watchdog.cpp.o"
  "CMakeFiles/test_simmpi.dir/simmpi/test_watchdog.cpp.o.d"
  "test_simmpi"
  "test_simmpi.pdb"
  "test_simmpi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
