# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build2/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/tests/test_blaslite[1]_include.cmake")
include("/root/repo/build2/tests/test_parallel[1]_include.cmake")
include("/root/repo/build2/tests/test_la[1]_include.cmake")
include("/root/repo/build2/tests/test_fft[1]_include.cmake")
include("/root/repo/build2/tests/test_spectral[1]_include.cmake")
include("/root/repo/build2/tests/test_mesh[1]_include.cmake")
include("/root/repo/build2/tests/test_machine[1]_include.cmake")
include("/root/repo/build2/tests/test_netsim[1]_include.cmake")
include("/root/repo/build2/tests/test_simmpi[1]_include.cmake")
include("/root/repo/build2/tests/test_partition[1]_include.cmake")
include("/root/repo/build2/tests/test_gs[1]_include.cmake")
include("/root/repo/build2/tests/test_perf[1]_include.cmake")
include("/root/repo/build2/tests/test_nektar[1]_include.cmake")
