# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build2/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("parallel")
subdirs("blaslite")
subdirs("la")
subdirs("fft")
subdirs("machine")
subdirs("netsim")
subdirs("simmpi")
subdirs("spectral")
subdirs("mesh")
subdirs("partition")
subdirs("gs")
subdirs("perf")
subdirs("nektar")
