file(REMOVE_RECURSE
  "CMakeFiles/perf.dir/stage_stats.cpp.o"
  "CMakeFiles/perf.dir/stage_stats.cpp.o.d"
  "libperf.a"
  "libperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
