file(REMOVE_RECURSE
  "libperf.a"
)
