file(REMOVE_RECURSE
  "CMakeFiles/mesh.dir/generators.cpp.o"
  "CMakeFiles/mesh.dir/generators.cpp.o.d"
  "CMakeFiles/mesh.dir/mesh.cpp.o"
  "CMakeFiles/mesh.dir/mesh.cpp.o.d"
  "libmesh.a"
  "libmesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
