file(REMOVE_RECURSE
  "libmesh.a"
)
