# Empty dependencies file for mesh.
# This may be replaced when dependencies are built.
