file(REMOVE_RECURSE
  "libparallel.a"
)
