# Empty dependencies file for parallel.
# This may be replaced when dependencies are built.
