file(REMOVE_RECURSE
  "CMakeFiles/parallel.dir/scratch.cpp.o"
  "CMakeFiles/parallel.dir/scratch.cpp.o.d"
  "CMakeFiles/parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/parallel.dir/thread_pool.cpp.o.d"
  "libparallel.a"
  "libparallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
