file(REMOVE_RECURSE
  "CMakeFiles/gs.dir/gather_scatter.cpp.o"
  "CMakeFiles/gs.dir/gather_scatter.cpp.o.d"
  "libgs.a"
  "libgs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
