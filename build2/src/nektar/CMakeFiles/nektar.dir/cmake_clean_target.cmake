file(REMOVE_RECURSE
  "libnektar.a"
)
