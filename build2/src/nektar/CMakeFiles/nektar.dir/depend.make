# Empty dependencies file for nektar.
# This may be replaced when dependencies are built.
