file(REMOVE_RECURSE
  "CMakeFiles/nektar.dir/discretization.cpp.o"
  "CMakeFiles/nektar.dir/discretization.cpp.o.d"
  "CMakeFiles/nektar.dir/dofmap.cpp.o"
  "CMakeFiles/nektar.dir/dofmap.cpp.o.d"
  "CMakeFiles/nektar.dir/element_ops.cpp.o"
  "CMakeFiles/nektar.dir/element_ops.cpp.o.d"
  "CMakeFiles/nektar.dir/forces.cpp.o"
  "CMakeFiles/nektar.dir/forces.cpp.o.d"
  "CMakeFiles/nektar.dir/fourier_transpose.cpp.o"
  "CMakeFiles/nektar.dir/fourier_transpose.cpp.o.d"
  "CMakeFiles/nektar.dir/helmholtz.cpp.o"
  "CMakeFiles/nektar.dir/helmholtz.cpp.o.d"
  "CMakeFiles/nektar.dir/ns_ale.cpp.o"
  "CMakeFiles/nektar.dir/ns_ale.cpp.o.d"
  "CMakeFiles/nektar.dir/ns_fourier.cpp.o"
  "CMakeFiles/nektar.dir/ns_fourier.cpp.o.d"
  "CMakeFiles/nektar.dir/ns_serial.cpp.o"
  "CMakeFiles/nektar.dir/ns_serial.cpp.o.d"
  "CMakeFiles/nektar.dir/static_condensation.cpp.o"
  "CMakeFiles/nektar.dir/static_condensation.cpp.o.d"
  "libnektar.a"
  "libnektar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nektar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
