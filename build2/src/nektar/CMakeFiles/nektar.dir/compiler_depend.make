# Empty compiler generated dependencies file for nektar.
# This may be replaced when dependencies are built.
