
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nektar/discretization.cpp" "src/nektar/CMakeFiles/nektar.dir/discretization.cpp.o" "gcc" "src/nektar/CMakeFiles/nektar.dir/discretization.cpp.o.d"
  "/root/repo/src/nektar/dofmap.cpp" "src/nektar/CMakeFiles/nektar.dir/dofmap.cpp.o" "gcc" "src/nektar/CMakeFiles/nektar.dir/dofmap.cpp.o.d"
  "/root/repo/src/nektar/element_ops.cpp" "src/nektar/CMakeFiles/nektar.dir/element_ops.cpp.o" "gcc" "src/nektar/CMakeFiles/nektar.dir/element_ops.cpp.o.d"
  "/root/repo/src/nektar/forces.cpp" "src/nektar/CMakeFiles/nektar.dir/forces.cpp.o" "gcc" "src/nektar/CMakeFiles/nektar.dir/forces.cpp.o.d"
  "/root/repo/src/nektar/fourier_transpose.cpp" "src/nektar/CMakeFiles/nektar.dir/fourier_transpose.cpp.o" "gcc" "src/nektar/CMakeFiles/nektar.dir/fourier_transpose.cpp.o.d"
  "/root/repo/src/nektar/helmholtz.cpp" "src/nektar/CMakeFiles/nektar.dir/helmholtz.cpp.o" "gcc" "src/nektar/CMakeFiles/nektar.dir/helmholtz.cpp.o.d"
  "/root/repo/src/nektar/ns_ale.cpp" "src/nektar/CMakeFiles/nektar.dir/ns_ale.cpp.o" "gcc" "src/nektar/CMakeFiles/nektar.dir/ns_ale.cpp.o.d"
  "/root/repo/src/nektar/ns_fourier.cpp" "src/nektar/CMakeFiles/nektar.dir/ns_fourier.cpp.o" "gcc" "src/nektar/CMakeFiles/nektar.dir/ns_fourier.cpp.o.d"
  "/root/repo/src/nektar/ns_serial.cpp" "src/nektar/CMakeFiles/nektar.dir/ns_serial.cpp.o" "gcc" "src/nektar/CMakeFiles/nektar.dir/ns_serial.cpp.o.d"
  "/root/repo/src/nektar/static_condensation.cpp" "src/nektar/CMakeFiles/nektar.dir/static_condensation.cpp.o" "gcc" "src/nektar/CMakeFiles/nektar.dir/static_condensation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/spectral/CMakeFiles/spectral.dir/DependInfo.cmake"
  "/root/repo/build2/src/mesh/CMakeFiles/mesh.dir/DependInfo.cmake"
  "/root/repo/build2/src/la/CMakeFiles/la.dir/DependInfo.cmake"
  "/root/repo/build2/src/blaslite/CMakeFiles/blaslite.dir/DependInfo.cmake"
  "/root/repo/build2/src/perf/CMakeFiles/perf.dir/DependInfo.cmake"
  "/root/repo/build2/src/fft/CMakeFiles/fft.dir/DependInfo.cmake"
  "/root/repo/build2/src/simmpi/CMakeFiles/simmpi.dir/DependInfo.cmake"
  "/root/repo/build2/src/gs/CMakeFiles/gs.dir/DependInfo.cmake"
  "/root/repo/build2/src/partition/CMakeFiles/partition.dir/DependInfo.cmake"
  "/root/repo/build2/src/machine/CMakeFiles/machine.dir/DependInfo.cmake"
  "/root/repo/build2/src/parallel/CMakeFiles/parallel.dir/DependInfo.cmake"
  "/root/repo/build2/src/netsim/CMakeFiles/netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
