file(REMOVE_RECURSE
  "CMakeFiles/machine.dir/machine_model.cpp.o"
  "CMakeFiles/machine.dir/machine_model.cpp.o.d"
  "libmachine.a"
  "libmachine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
