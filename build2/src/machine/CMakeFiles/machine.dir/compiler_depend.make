# Empty compiler generated dependencies file for machine.
# This may be replaced when dependencies are built.
