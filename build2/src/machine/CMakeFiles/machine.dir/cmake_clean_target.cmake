file(REMOVE_RECURSE
  "libmachine.a"
)
