file(REMOVE_RECURSE
  "CMakeFiles/fft.dir/fft.cpp.o"
  "CMakeFiles/fft.dir/fft.cpp.o.d"
  "libfft.a"
  "libfft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
