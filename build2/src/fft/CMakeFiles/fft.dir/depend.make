# Empty dependencies file for fft.
# This may be replaced when dependencies are built.
