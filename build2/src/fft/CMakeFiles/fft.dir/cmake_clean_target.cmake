file(REMOVE_RECURSE
  "libfft.a"
)
