file(REMOVE_RECURSE
  "CMakeFiles/partition.dir/partition.cpp.o"
  "CMakeFiles/partition.dir/partition.cpp.o.d"
  "libpartition.a"
  "libpartition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
