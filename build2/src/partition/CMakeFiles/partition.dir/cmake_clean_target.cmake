file(REMOVE_RECURSE
  "libpartition.a"
)
