# Empty compiler generated dependencies file for partition.
# This may be replaced when dependencies are built.
