file(REMOVE_RECURSE
  "CMakeFiles/simmpi.dir/simmpi.cpp.o"
  "CMakeFiles/simmpi.dir/simmpi.cpp.o.d"
  "libsimmpi.a"
  "libsimmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
