file(REMOVE_RECURSE
  "CMakeFiles/blaslite.dir/blas.cpp.o"
  "CMakeFiles/blaslite.dir/blas.cpp.o.d"
  "libblaslite.a"
  "libblaslite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blaslite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
