file(REMOVE_RECURSE
  "libblaslite.a"
)
