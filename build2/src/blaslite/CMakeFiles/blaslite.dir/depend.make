# Empty dependencies file for blaslite.
# This may be replaced when dependencies are built.
