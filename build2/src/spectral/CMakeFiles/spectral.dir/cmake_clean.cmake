file(REMOVE_RECURSE
  "CMakeFiles/spectral.dir/basis1d.cpp.o"
  "CMakeFiles/spectral.dir/basis1d.cpp.o.d"
  "CMakeFiles/spectral.dir/expansion.cpp.o"
  "CMakeFiles/spectral.dir/expansion.cpp.o.d"
  "CMakeFiles/spectral.dir/jacobi.cpp.o"
  "CMakeFiles/spectral.dir/jacobi.cpp.o.d"
  "libspectral.a"
  "libspectral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
