file(REMOVE_RECURSE
  "libspectral.a"
)
