# Empty dependencies file for spectral.
# This may be replaced when dependencies are built.
