
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/faultmodel.cpp" "src/netsim/CMakeFiles/netsim.dir/faultmodel.cpp.o" "gcc" "src/netsim/CMakeFiles/netsim.dir/faultmodel.cpp.o.d"
  "/root/repo/src/netsim/netmodel.cpp" "src/netsim/CMakeFiles/netsim.dir/netmodel.cpp.o" "gcc" "src/netsim/CMakeFiles/netsim.dir/netmodel.cpp.o.d"
  "/root/repo/src/netsim/netpipe.cpp" "src/netsim/CMakeFiles/netsim.dir/netpipe.cpp.o" "gcc" "src/netsim/CMakeFiles/netsim.dir/netpipe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
