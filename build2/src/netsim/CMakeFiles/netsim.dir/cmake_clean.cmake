file(REMOVE_RECURSE
  "CMakeFiles/netsim.dir/faultmodel.cpp.o"
  "CMakeFiles/netsim.dir/faultmodel.cpp.o.d"
  "CMakeFiles/netsim.dir/netmodel.cpp.o"
  "CMakeFiles/netsim.dir/netmodel.cpp.o.d"
  "CMakeFiles/netsim.dir/netpipe.cpp.o"
  "CMakeFiles/netsim.dir/netpipe.cpp.o.d"
  "libnetsim.a"
  "libnetsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
