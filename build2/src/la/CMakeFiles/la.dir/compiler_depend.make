# Empty compiler generated dependencies file for la.
# This may be replaced when dependencies are built.
