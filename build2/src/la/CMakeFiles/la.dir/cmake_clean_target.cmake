file(REMOVE_RECURSE
  "libla.a"
)
