file(REMOVE_RECURSE
  "CMakeFiles/la.dir/banded.cpp.o"
  "CMakeFiles/la.dir/banded.cpp.o.d"
  "CMakeFiles/la.dir/cg.cpp.o"
  "CMakeFiles/la.dir/cg.cpp.o.d"
  "CMakeFiles/la.dir/dense.cpp.o"
  "CMakeFiles/la.dir/dense.cpp.o.d"
  "libla.a"
  "libla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
