# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for turbulent_wake_fourier.
