file(REMOVE_RECURSE
  "CMakeFiles/turbulent_wake_fourier.dir/turbulent_wake_fourier.cpp.o"
  "CMakeFiles/turbulent_wake_fourier.dir/turbulent_wake_fourier.cpp.o.d"
  "turbulent_wake_fourier"
  "turbulent_wake_fourier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbulent_wake_fourier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
