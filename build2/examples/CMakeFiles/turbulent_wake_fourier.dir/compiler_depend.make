# Empty compiler generated dependencies file for turbulent_wake_fourier.
# This may be replaced when dependencies are built.
