# Empty dependencies file for flapping_wing_ale.
# This may be replaced when dependencies are built.
