file(REMOVE_RECURSE
  "CMakeFiles/flapping_wing_ale.dir/flapping_wing_ale.cpp.o"
  "CMakeFiles/flapping_wing_ale.dir/flapping_wing_ale.cpp.o.d"
  "flapping_wing_ale"
  "flapping_wing_ale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flapping_wing_ale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
