file(REMOVE_RECURSE
  "CMakeFiles/cylinder_wake.dir/cylinder_wake.cpp.o"
  "CMakeFiles/cylinder_wake.dir/cylinder_wake.cpp.o.d"
  "cylinder_wake"
  "cylinder_wake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cylinder_wake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
