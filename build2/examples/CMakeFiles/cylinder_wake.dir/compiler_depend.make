# Empty compiler generated dependencies file for cylinder_wake.
# This may be replaced when dependencies are built.
