# Empty dependencies file for cluster_advisor.
# This may be replaced when dependencies are built.
