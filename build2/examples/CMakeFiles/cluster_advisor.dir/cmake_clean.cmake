file(REMOVE_RECURSE
  "CMakeFiles/cluster_advisor.dir/cluster_advisor.cpp.o"
  "CMakeFiles/cluster_advisor.dir/cluster_advisor.cpp.o.d"
  "cluster_advisor"
  "cluster_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
