file(REMOVE_RECURSE
  "CMakeFiles/fig12_serial_stages.dir/fig12_serial_stages.cpp.o"
  "CMakeFiles/fig12_serial_stages.dir/fig12_serial_stages.cpp.o.d"
  "fig12_serial_stages"
  "fig12_serial_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_serial_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
