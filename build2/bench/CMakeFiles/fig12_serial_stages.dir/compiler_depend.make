# Empty compiler generated dependencies file for fig12_serial_stages.
# This may be replaced when dependencies are built.
