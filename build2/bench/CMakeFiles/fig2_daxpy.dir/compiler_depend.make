# Empty compiler generated dependencies file for fig2_daxpy.
# This may be replaced when dependencies are built.
