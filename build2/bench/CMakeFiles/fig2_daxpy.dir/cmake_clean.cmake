file(REMOVE_RECURSE
  "CMakeFiles/fig2_daxpy.dir/fig2_daxpy.cpp.o"
  "CMakeFiles/fig2_daxpy.dir/fig2_daxpy.cpp.o.d"
  "fig2_daxpy"
  "fig2_daxpy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_daxpy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
