# Empty dependencies file for fig7_pingpong.
# This may be replaced when dependencies are built.
