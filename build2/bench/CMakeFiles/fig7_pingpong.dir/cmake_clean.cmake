file(REMOVE_RECURSE
  "CMakeFiles/fig7_pingpong.dir/fig7_pingpong.cpp.o"
  "CMakeFiles/fig7_pingpong.dir/fig7_pingpong.cpp.o.d"
  "fig7_pingpong"
  "fig7_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
