# Empty compiler generated dependencies file for fig5_dgemm.
# This may be replaced when dependencies are built.
