file(REMOVE_RECURSE
  "CMakeFiles/fig5_dgemm.dir/fig5_dgemm.cpp.o"
  "CMakeFiles/fig5_dgemm.dir/fig5_dgemm.cpp.o.d"
  "fig5_dgemm"
  "fig5_dgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_dgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
