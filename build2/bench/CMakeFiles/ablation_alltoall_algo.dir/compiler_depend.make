# Empty compiler generated dependencies file for ablation_alltoall_algo.
# This may be replaced when dependencies are built.
