file(REMOVE_RECURSE
  "CMakeFiles/ablation_alltoall_algo.dir/ablation_alltoall_algo.cpp.o"
  "CMakeFiles/ablation_alltoall_algo.dir/ablation_alltoall_algo.cpp.o.d"
  "ablation_alltoall_algo"
  "ablation_alltoall_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_alltoall_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
