# Empty compiler generated dependencies file for fig8_alltoall.
# This may be replaced when dependencies are built.
