file(REMOVE_RECURSE
  "CMakeFiles/fig8_alltoall.dir/fig8_alltoall.cpp.o"
  "CMakeFiles/fig8_alltoall.dir/fig8_alltoall.cpp.o.d"
  "fig8_alltoall"
  "fig8_alltoall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_alltoall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
