file(REMOVE_RECURSE
  "CMakeFiles/fig1_dcopy.dir/fig1_dcopy.cpp.o"
  "CMakeFiles/fig1_dcopy.dir/fig1_dcopy.cpp.o.d"
  "fig1_dcopy"
  "fig1_dcopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_dcopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
