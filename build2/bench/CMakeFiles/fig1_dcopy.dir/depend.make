# Empty dependencies file for fig1_dcopy.
# This may be replaced when dependencies are built.
