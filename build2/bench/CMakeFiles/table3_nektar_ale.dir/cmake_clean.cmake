file(REMOVE_RECURSE
  "CMakeFiles/table3_nektar_ale.dir/table3_nektar_ale.cpp.o"
  "CMakeFiles/table3_nektar_ale.dir/table3_nektar_ale.cpp.o.d"
  "table3_nektar_ale"
  "table3_nektar_ale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_nektar_ale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
