# Empty dependencies file for table3_nektar_ale.
# This may be replaced when dependencies are built.
