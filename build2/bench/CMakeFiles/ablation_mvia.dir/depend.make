# Empty dependencies file for ablation_mvia.
# This may be replaced when dependencies are built.
