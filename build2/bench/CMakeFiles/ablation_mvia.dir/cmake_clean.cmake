file(REMOVE_RECURSE
  "CMakeFiles/ablation_mvia.dir/ablation_mvia.cpp.o"
  "CMakeFiles/ablation_mvia.dir/ablation_mvia.cpp.o.d"
  "ablation_mvia"
  "ablation_mvia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mvia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
