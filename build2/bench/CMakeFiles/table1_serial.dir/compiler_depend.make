# Empty compiler generated dependencies file for table1_serial.
# This may be replaced when dependencies are built.
