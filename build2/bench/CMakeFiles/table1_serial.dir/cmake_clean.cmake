file(REMOVE_RECURSE
  "CMakeFiles/table1_serial.dir/table1_serial.cpp.o"
  "CMakeFiles/table1_serial.dir/table1_serial.cpp.o.d"
  "table1_serial"
  "table1_serial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
