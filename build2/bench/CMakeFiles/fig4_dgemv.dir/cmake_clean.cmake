file(REMOVE_RECURSE
  "CMakeFiles/fig4_dgemv.dir/fig4_dgemv.cpp.o"
  "CMakeFiles/fig4_dgemv.dir/fig4_dgemv.cpp.o.d"
  "fig4_dgemv"
  "fig4_dgemv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_dgemv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
