# Empty compiler generated dependencies file for fig4_dgemv.
# This may be replaced when dependencies are built.
