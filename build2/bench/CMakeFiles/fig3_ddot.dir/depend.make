# Empty dependencies file for fig3_ddot.
# This may be replaced when dependencies are built.
