file(REMOVE_RECURSE
  "CMakeFiles/fig3_ddot.dir/fig3_ddot.cpp.o"
  "CMakeFiles/fig3_ddot.dir/fig3_ddot.cpp.o.d"
  "fig3_ddot"
  "fig3_ddot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_ddot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
