file(REMOVE_RECURSE
  "CMakeFiles/ablation_gs_strategy.dir/ablation_gs_strategy.cpp.o"
  "CMakeFiles/ablation_gs_strategy.dir/ablation_gs_strategy.cpp.o.d"
  "ablation_gs_strategy"
  "ablation_gs_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gs_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
