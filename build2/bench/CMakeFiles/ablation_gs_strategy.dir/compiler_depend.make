# Empty compiler generated dependencies file for ablation_gs_strategy.
# This may be replaced when dependencies are built.
