file(REMOVE_RECURSE
  "CMakeFiles/ablation_fault_tolerance.dir/ablation_fault_tolerance.cpp.o"
  "CMakeFiles/ablation_fault_tolerance.dir/ablation_fault_tolerance.cpp.o.d"
  "ablation_fault_tolerance"
  "ablation_fault_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fault_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
