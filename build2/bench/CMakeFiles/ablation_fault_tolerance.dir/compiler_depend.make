# Empty compiler generated dependencies file for ablation_fault_tolerance.
# This may be replaced when dependencies are built.
