file(REMOVE_RECURSE
  "CMakeFiles/fig15_16_ale_stages.dir/fig15_16_ale_stages.cpp.o"
  "CMakeFiles/fig15_16_ale_stages.dir/fig15_16_ale_stages.cpp.o.d"
  "fig15_16_ale_stages"
  "fig15_16_ale_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_16_ale_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
