# Empty dependencies file for fig15_16_ale_stages.
# This may be replaced when dependencies are built.
