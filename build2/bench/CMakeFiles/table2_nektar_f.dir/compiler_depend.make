# Empty compiler generated dependencies file for table2_nektar_f.
# This may be replaced when dependencies are built.
