file(REMOVE_RECURSE
  "CMakeFiles/table2_nektar_f.dir/table2_nektar_f.cpp.o"
  "CMakeFiles/table2_nektar_f.dir/table2_nektar_f.cpp.o.d"
  "table2_nektar_f"
  "table2_nektar_f.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_nektar_f.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
