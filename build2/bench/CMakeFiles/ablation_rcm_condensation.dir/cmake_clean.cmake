file(REMOVE_RECURSE
  "CMakeFiles/ablation_rcm_condensation.dir/ablation_rcm_condensation.cpp.o"
  "CMakeFiles/ablation_rcm_condensation.dir/ablation_rcm_condensation.cpp.o.d"
  "ablation_rcm_condensation"
  "ablation_rcm_condensation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rcm_condensation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
