# Empty compiler generated dependencies file for ablation_rcm_condensation.
# This may be replaced when dependencies are built.
