# Empty dependencies file for fig13_14_f_stages.
# This may be replaced when dependencies are built.
