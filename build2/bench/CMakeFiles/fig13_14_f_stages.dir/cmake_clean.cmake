file(REMOVE_RECURSE
  "CMakeFiles/fig13_14_f_stages.dir/fig13_14_f_stages.cpp.o"
  "CMakeFiles/fig13_14_f_stages.dir/fig13_14_f_stages.cpp.o.d"
  "fig13_14_f_stages"
  "fig13_14_f_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_14_f_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
