# Empty compiler generated dependencies file for fig6_dgemm_small.
# This may be replaced when dependencies are built.
