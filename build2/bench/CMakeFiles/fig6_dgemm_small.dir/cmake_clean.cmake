file(REMOVE_RECURSE
  "CMakeFiles/fig6_dgemm_small.dir/fig6_dgemm_small.cpp.o"
  "CMakeFiles/fig6_dgemm_small.dir/fig6_dgemm_small.cpp.o.d"
  "fig6_dgemm_small"
  "fig6_dgemm_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_dgemm_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
