#include "ckpt/checkpoint.hpp"

#include <array>
#include <cstdio>
#include <cstring>

namespace ckpt {

namespace {

constexpr std::array<char, 8> kMagic = {'R', 'P', 'R', 'O', 'C', 'K', 'P', 'T'};

void le_append(std::vector<std::uint8_t>& out, std::uint64_t v, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

[[nodiscard]] std::uint64_t le_read(const std::uint8_t* p, std::size_t n) noexcept {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

const std::array<std::uint32_t, 256>& crc_table() {
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

[[nodiscard]] std::uint32_t crc32_extend(std::uint32_t crc,
                                         std::span<const std::uint8_t> data) noexcept {
    const auto& t = crc_table();
    std::uint32_t c = crc ^ 0xffffffffu;
    for (const std::uint8_t b : data) c = t[(c ^ b) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

[[nodiscard]] std::uint32_t section_crc(const std::string& name,
                                        std::span<const std::uint8_t> payload) noexcept {
    // The CRC covers name + payload so a bit flip anywhere inside a section
    // record (not just its payload) is caught.
    const auto& t = crc_table();
    std::uint32_t raw = 0xffffffffu;
    for (const char ch : name)
        raw = t[(raw ^ static_cast<std::uint8_t>(ch)) & 0xffu] ^ (raw >> 8);
    for (const std::uint8_t b : payload) raw = t[(raw ^ b) & 0xffu] ^ (raw >> 8);
    return raw ^ 0xffffffffu;
}

} // namespace

Error::Error(std::string section, const std::string& what)
    : std::runtime_error("checkpoint section '" + section + "': " + what),
      section_(std::move(section)) {}

std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept {
    return crc32_extend(0, data);
}

void Fingerprint::mix(const std::uint8_t* p, std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) {
        h_ ^= p[i];
        h_ *= 0x100000001b3ull; // FNV-1a prime
    }
}

Fingerprint& Fingerprint::add(std::string_view s) noexcept {
    mix(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
    const std::uint8_t sep = 0xff; // length sentinel: "ab"+"c" != "a"+"bc"
    mix(&sep, 1);
    return *this;
}

Fingerprint& Fingerprint::add(std::uint64_t v) noexcept {
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    mix(b, 8);
    return *this;
}

Fingerprint& Fingerprint::add(double v) noexcept {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    return add(bits);
}

void SectionWriter::u32(std::uint32_t v) { le_append(bytes_, v, 4); }
void SectionWriter::u64(std::uint64_t v) { le_append(bytes_, v, 8); }
void SectionWriter::i64(std::int64_t v) { le_append(bytes_, static_cast<std::uint64_t>(v), 8); }

void SectionWriter::f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    le_append(bytes_, bits, 8);
}

void SectionWriter::f64v(std::span<const double> v) {
    u64(v.size());
    for (const double x : v) f64(x);
}

void SectionWriter::str(std::string_view s) {
    u64(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void SectionWriter::raw(std::span<const std::uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
}

void SectionReader::need(std::size_t n, const char* what) {
    if (bytes_.size() - pos_ < n)
        fail(std::string("truncated read of ") + what + " at offset " + std::to_string(pos_) +
             " (" + std::to_string(bytes_.size() - pos_) + " of " + std::to_string(n) +
             " bytes left)");
}

void SectionReader::fail(const std::string& what) const { throw Error(name_, what); }

std::uint32_t SectionReader::u32() {
    need(4, "u32");
    const auto v = static_cast<std::uint32_t>(le_read(bytes_.data() + pos_, 4));
    pos_ += 4;
    return v;
}

std::uint64_t SectionReader::u64() {
    need(8, "u64");
    const std::uint64_t v = le_read(bytes_.data() + pos_, 8);
    pos_ += 8;
    return v;
}

std::int64_t SectionReader::i64() { return static_cast<std::int64_t>(u64()); }

double SectionReader::f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
}

std::vector<double> SectionReader::f64v() {
    const std::uint64_t n = u64();
    if (remaining() < 8 * n) fail("f64 vector longer than the section payload");
    std::vector<double> v(n);
    for (std::uint64_t i = 0; i < n; ++i) v[i] = f64();
    return v;
}

std::string SectionReader::str() {
    const std::uint64_t n = u64();
    need(n, "string");
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
}

void SectionReader::expect_end() const {
    if (pos_ != bytes_.size())
        throw Error(name_, std::to_string(bytes_.size() - pos_) +
                               " unread payload bytes (writer/reader layout drift)");
}

SectionWriter& Checkpoint::add(std::string name) {
    if (has(name)) throw Error(name, "duplicate section");
    sections_.emplace_back(std::move(name));
    return sections_.back();
}

bool Checkpoint::has(std::string_view name) const noexcept {
    for (const SectionWriter& s : sections_)
        if (s.name() == name) return true;
    return false;
}

SectionReader Checkpoint::open(std::string_view name) const {
    for (const SectionWriter& s : sections_)
        if (s.name() == name) return SectionReader(s.name(), s.bytes());
    throw Error(std::string(name), "section missing from checkpoint");
}

std::vector<std::string> Checkpoint::section_names() const {
    std::vector<std::string> names;
    names.reserve(sections_.size());
    for (const SectionWriter& s : sections_) names.push_back(s.name());
    return names;
}

std::vector<std::uint8_t> Checkpoint::serialize() const {
    std::vector<std::uint8_t> out;
    out.insert(out.end(), kMagic.begin(), kMagic.end());
    le_append(out, kSchemaVersion, 4);
    le_append(out, sections_.size(), 4);
    for (const SectionWriter& s : sections_) {
        le_append(out, s.name().size(), 4);
        out.insert(out.end(), s.name().begin(), s.name().end());
        le_append(out, s.bytes().size(), 8);
        le_append(out, section_crc(s.name(), s.bytes()), 4);
        out.insert(out.end(), s.bytes().begin(), s.bytes().end());
    }
    return out;
}

Checkpoint Checkpoint::deserialize(std::span<const std::uint8_t> bytes) {
    std::size_t pos = 0;
    const auto need = [&](std::size_t n, const char* what) {
        if (bytes.size() - pos < n)
            throw Error("header", std::string("truncated checkpoint: ") + what +
                                      " at offset " + std::to_string(pos));
    };
    need(8, "magic");
    if (std::memcmp(bytes.data(), kMagic.data(), 8) != 0)
        throw Error("header", "bad magic (not a checkpoint file)");
    pos = 8;
    need(4, "schema version");
    const auto version = static_cast<std::uint32_t>(le_read(bytes.data() + pos, 4));
    pos += 4;
    if (version != kSchemaVersion)
        throw Error("header", "unsupported schema_version " + std::to_string(version) +
                                  " (this build reads " + std::to_string(kSchemaVersion) + ")");
    need(4, "section count");
    const auto count = static_cast<std::uint32_t>(le_read(bytes.data() + pos, 4));
    pos += 4;

    Checkpoint c;
    for (std::uint32_t i = 0; i < count; ++i) {
        need(4, "section name length");
        const auto name_len = static_cast<std::size_t>(le_read(bytes.data() + pos, 4));
        pos += 4;
        need(name_len, "section name");
        std::string name(reinterpret_cast<const char*>(bytes.data() + pos), name_len);
        pos += name_len;
        if (bytes.size() - pos < 12)
            throw Error(name, "truncated section header at offset " + std::to_string(pos));
        const std::uint64_t payload_len = le_read(bytes.data() + pos, 8);
        pos += 8;
        const auto stored_crc = static_cast<std::uint32_t>(le_read(bytes.data() + pos, 4));
        pos += 4;
        if (bytes.size() - pos < payload_len)
            throw Error(name, "truncated payload: " + std::to_string(payload_len) +
                                  " bytes declared, " + std::to_string(bytes.size() - pos) +
                                  " left in the file");
        const std::span<const std::uint8_t> payload(bytes.data() + pos,
                                                    static_cast<std::size_t>(payload_len));
        pos += static_cast<std::size_t>(payload_len);
        const std::uint32_t actual = section_crc(name, payload);
        if (actual != stored_crc)
            throw Error(name, "CRC mismatch (stored " + std::to_string(stored_crc) +
                                  ", computed " + std::to_string(actual) +
                                  "): the checkpoint is corrupt");
        c.add(std::move(name)).raw(payload);
    }
    if (pos != bytes.size())
        throw Error("header", std::to_string(bytes.size() - pos) +
                                  " trailing bytes after the last section");
    return c;
}

void Checkpoint::write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) throw std::runtime_error("ckpt: cannot write " + path);
    const std::vector<std::uint8_t> bytes = serialize();
    const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (written != bytes.size()) throw std::runtime_error("ckpt: short write to " + path);
}

Checkpoint Checkpoint::read_file(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) throw std::runtime_error("ckpt: cannot read " + path);
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[4096];
    for (;;) {
        const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
        bytes.insert(bytes.end(), buf, buf + n);
        if (n < sizeof(buf)) break;
    }
    std::fclose(f);
    return deserialize(bytes);
}

} // namespace ckpt
