#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

/// \file checkpoint.hpp
/// The versioned, byte-deterministic checkpoint container every solver
/// serializes its state into (DESIGN.md §5.6).
///
/// A checkpoint is an ordered list of named sections, each an opaque byte
/// payload written through the typed SectionWriter API.  The serialized
/// layout is
///
///   "RPROCKPT"  8-byte magic
///   u32         schema version (kSchemaVersion)
///   u32         section count
///   per section:
///     u32  name length, name bytes
///     u64  payload length
///     u32  CRC-32 (IEEE) over name + payload
///     payload bytes
///
/// with every integer little-endian.  Serialization walks the sections in
/// insertion order, so two runs that reach the same state produce
/// byte-identical checkpoints — the property the restart tests compare.
/// Deserialization verifies the magic, the schema version, every length
/// field and every CRC before any payload is interpreted; a failure throws
/// ckpt::Error naming the offending section ("header" for the envelope), so
/// a truncated or bit-flipped file can never restart silently as garbage.
namespace ckpt {

/// Bump when the serialized layout of any section changes incompatibly.
/// v2: simmpi comm state gained the split() sequence number and per-event
/// communicator size/sibling fields.
inline constexpr std::uint32_t kSchemaVersion = 2;

/// Any checkpoint format violation: truncation, CRC mismatch, schema-version
/// mismatch, a missing/duplicate section, or a typed read past a section's
/// end.  `section()` names where it happened ("header" for the envelope).
class Error : public std::runtime_error {
public:
    Error(std::string section, const std::string& what);
    [[nodiscard]] const std::string& section() const noexcept { return section_; }

private:
    std::string section_;
};

/// CRC-32 (IEEE 802.3 polynomial, reflected, table-driven).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept;

/// FNV-1a accumulator for the SolverOptions fingerprint stored in every
/// checkpoint: a stable hash of the solver kind and the numeric options that
/// define the state layout, so restore() can refuse a checkpoint taken under
/// a different configuration with a diagnostic instead of garbage fields.
class Fingerprint {
public:
    Fingerprint& add(std::string_view s) noexcept;
    Fingerprint& add(std::uint64_t v) noexcept;
    Fingerprint& add(double v) noexcept; ///< hashes the IEEE-754 bit pattern
    [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

private:
    std::uint64_t h_ = 0xcbf29ce484222325ull; // FNV-1a offset basis

    void mix(const std::uint8_t* p, std::size_t n) noexcept;
};

/// One named section under construction: typed little-endian appends.
class SectionWriter {
public:
    explicit SectionWriter(std::string name) : name_(std::move(name)) {}

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }

    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v); ///< two's-complement bit pattern of the u64
    void f64(double v);       ///< raw IEEE-754 bits (NaN payloads round-trip)
    void f64v(std::span<const double> v); ///< u64 length + raw doubles
    void str(std::string_view s);         ///< u64 length + bytes
    void raw(std::span<const std::uint8_t> data); ///< verbatim bytes, no length prefix

private:
    std::string name_;
    std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked typed reads over one section's payload; every failure
/// throws Error naming the section.
class SectionReader {
public:
    SectionReader(std::string name, std::span<const std::uint8_t> bytes)
        : name_(std::move(name)), bytes_(bytes) {}

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

    [[nodiscard]] std::uint32_t u32();
    [[nodiscard]] std::uint64_t u64();
    [[nodiscard]] std::int64_t i64();
    [[nodiscard]] double f64();
    [[nodiscard]] std::vector<double> f64v();
    [[nodiscard]] std::string str();

    /// Throws unless the payload was consumed exactly — a length drift
    /// between writer and reader is a schema bug, not data to ignore.
    void expect_end() const;

    [[noreturn]] void fail(const std::string& what) const;

private:
    std::string name_;
    std::span<const std::uint8_t> bytes_;
    std::size_t pos_ = 0;

    void need(std::size_t n, const char* what);
};

/// The ordered section container with file/byte round-trips.
class Checkpoint {
public:
    /// Appends a new section; duplicate names throw (the format requires
    /// unique names so open() is unambiguous).
    SectionWriter& add(std::string name);

    [[nodiscard]] bool has(std::string_view name) const noexcept;
    /// Reader over the named section; throws Error if absent.
    [[nodiscard]] SectionReader open(std::string_view name) const;
    [[nodiscard]] std::vector<std::string> section_names() const;

    [[nodiscard]] std::vector<std::uint8_t> serialize() const;
    [[nodiscard]] static Checkpoint deserialize(std::span<const std::uint8_t> bytes);

    void write_file(const std::string& path) const;
    [[nodiscard]] static Checkpoint read_file(const std::string& path);

private:
    std::vector<SectionWriter> sections_;
};

} // namespace ckpt
