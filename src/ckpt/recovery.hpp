#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "perf/report.hpp"
#include "simmpi/simmpi.hpp"

/// \file recovery.hpp
/// Rank-failure recovery over the checkpoint subsystem (DESIGN.md §5.6).
///
/// The failure model is the paper's practical worry about commodity
/// clusters: a node dies mid-run (here: netsim::FaultModel's seeded kill
/// event, surfacing as simmpi::RankKilledError).  Recovery is classic
/// coordinated checkpoint/rollback: every rank checkpoints into a Store at
/// the same step cadence, and on a kill the run rolls back to the last step
/// *every* rank completed a checkpoint for, replaces the dead node with a
/// spare (World::disarm_kill) and replays.  Because solver state, comm
/// clocks and the fault-stream position are all in the checkpoint, the
/// replay is bit-identical to a failure-free run — what the run *pays* is
/// virtual time, priced here as the killed rank's wall-clock distance from
/// its last checkpoint and surfaced through RecoveryStats::stamp into the
/// RunReport.
namespace ckpt {

/// Thread-safe in-memory checkpoint archive keyed (step, rank).  Ranks put
/// concurrently from inside World::run; the harness reads between attempts.
class Store {
public:
    /// Archives `rank`'s serialized checkpoint for `step`, with the rank's
    /// virtual wall clock at checkpoint time (the rollback price anchor).
    /// Re-putting the same (step, rank) overwrites (replays re-checkpoint
    /// the steps they replay; byte-identical by construction).
    void put(int rank, int step, double wall_seconds, const Checkpoint& c) {
        std::vector<std::uint8_t> bytes = c.serialize();
        const std::lock_guard<std::mutex> lock(mu_);
        Entry& e = entries_[{step, rank}];
        e.bytes = std::move(bytes);
        e.wall_seconds = wall_seconds;
    }

    /// The highest step all `nranks` ranks hold a checkpoint for (-1 none):
    /// the only consistent rollback targets are globally complete steps.
    [[nodiscard]] int last_complete_step(int nranks) const {
        const std::lock_guard<std::mutex> lock(mu_);
        int best = -1;
        for (auto it = entries_.begin(); it != entries_.end();) {
            const int step = it->first.first;
            int count = 0;
            while (it != entries_.end() && it->first.first == step) {
                ++count;
                ++it;
            }
            if (count == nranks) best = step;
        }
        return best;
    }

    [[nodiscard]] Checkpoint load(int rank, int step) const {
        return Checkpoint::deserialize(raw(rank, step));
    }

    /// The serialized bytes as archived (test hook for byte comparisons).
    [[nodiscard]] std::vector<std::uint8_t> raw(int rank, int step) const {
        const std::lock_guard<std::mutex> lock(mu_);
        return find(rank, step).bytes;
    }

    /// The rank's virtual wall clock when it took the step's checkpoint.
    [[nodiscard]] double wall_at(int rank, int step) const {
        const std::lock_guard<std::mutex> lock(mu_);
        return find(rank, step).wall_seconds;
    }

    [[nodiscard]] bool has(int rank, int step) const {
        const std::lock_guard<std::mutex> lock(mu_);
        return entries_.find({step, rank}) != entries_.end();
    }

private:
    struct Entry {
        std::vector<std::uint8_t> bytes;
        double wall_seconds = 0.0;
    };

    const Entry& find(int rank, int step) const {
        const auto it = entries_.find({step, rank});
        if (it == entries_.end())
            throw Error("store", "no checkpoint for rank " + std::to_string(rank) +
                                     " at step " + std::to_string(step));
        return it->second;
    }

    mutable std::mutex mu_;
    std::map<std::pair<int, int>, Entry> entries_; ///< (step, rank) -> entry
};

/// What a recovered run cost, on the virtual clocks.
struct RecoveryStats {
    int kills = 0;    ///< rank deaths absorbed
    int attempts = 0; ///< World::run launches (kills + 1 on success)
    /// Checkpoint step the final (successful) attempt restarted from
    /// (-1 = it ran cold from set_initial).
    int restart_step = -1;
    /// Virtual seconds of work thrown away across all kills: for each kill,
    /// the killed rank's wall clock at death minus its wall clock at the
    /// rollback checkpoint.  Monotone in (kill step - last checkpoint step)
    /// — the cadence/overhead trade the kill-matrix tests assert.
    double lost_virtual_seconds = 0.0;
    /// Per-rank reports of the successful attempt.
    std::vector<simmpi::RankReport> reports;

    /// Surfaces the recovery price in a RunReport.
    void stamp(perf::RunReport& rep) const {
        rep.metrics.counters["recovery.kills"] += static_cast<double>(kills);
        rep.metrics.counters["recovery.attempts"] += static_cast<double>(attempts);
        rep.metrics.counters["recovery.lost_virtual_seconds"] += lost_virtual_seconds;
        rep.metrics.gauges["recovery.restart_step"] = static_cast<double>(restart_step);
    }
};

/// Runs `body(comm, from_step)` across the world until it completes without
/// a rank dying, rolling back to the Store's last globally complete
/// checkpoint between attempts.  `from_step` is that checkpoint's step
/// (-1 = start cold); the body restores its solver from the Store when
/// from_step >= 0 and must checkpoint into the Store at its cadence.
/// Non-kill exceptions (solver bugs, deadlocks) propagate unchanged.
template <typename Body>
RecoveryStats run_with_recovery(simmpi::World& world, Store& store, Body&& body,
                                int max_attempts = 8) {
    RecoveryStats stats;
    for (;;) {
        if (stats.attempts >= max_attempts)
            throw std::runtime_error("ckpt: recovery gave up after " +
                                     std::to_string(stats.attempts) + " attempts");
        const int from = store.last_complete_step(world.size());
        ++stats.attempts;
        try {
            stats.restart_step = from;
            stats.reports = world.run([&](simmpi::Comm& c) { body(c, from); });
            return stats;
        } catch (const simmpi::RankKilledError& e) {
            ++stats.kills;
            // Price the loss against the checkpoint the *next* attempt will
            // roll back to — work archived during this attempt (checkpoints
            // taken before the kill landed) is not thrown away.
            const int to = store.last_complete_step(world.size());
            const double at_ckpt = to >= 0 ? store.wall_at(e.rank(), to) : 0.0;
            stats.lost_virtual_seconds += e.wall_seconds() - at_ckpt;
            // The dead node is replaced by a spare: the kill event is
            // disarmed, every other perturbation replays bit-identically
            // (they are pure functions of (seed, rank, msg_index)).
            world.disarm_kill();
        }
    }
}

} // namespace ckpt
