#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "nektar/transpose.hpp"
#include "simmpi/simmpi.hpp"

/// \file fourier_transpose.hpp
/// The distributed matrix transposition at the heart of NekTar-F.
///
/// Each rank owns `nplanes` Fourier planes (two spectral/hp planes per
/// complex mode) holding all Nq quadrature points of the x-y mesh.  The
/// nonlinear step needs the opposite layout — every rank holding *all*
/// planes for a chunk of the points, so z-lines can be inverse-FFTed and
/// multiplied pointwise.  "This type of algorithm relies heavily on Global
/// Exchange MPI_Alltoall ... it supports the transposition of a distributed
/// matrix" (paper §4.2.1).  Message size per peer is (Nq/P) * (Nplanes/P)
/// values, matching the paper's Gamma/P x Nz/P formula.
namespace nektar {

class FourierTranspose : public Transpose {
public:
    /// `comm` may be null for the serial (1-rank) case.  `nq` is the number
    /// of quadrature points per plane; `nplanes` the planes owned per rank
    /// (equal on all ranks).
    FourierTranspose(simmpi::Comm* comm, std::size_t nq, std::size_t nplanes);

    [[nodiscard]] std::size_t num_ranks() const noexcept override { return nranks_; }
    /// Points this rank owns in line layout (last rank may see padding).
    [[nodiscard]] std::size_t chunk() const noexcept override { return chunk_; }
    /// Global plane count (nplanes * ranks).
    [[nodiscard]] std::size_t total_planes() const noexcept override {
        return nplanes_ * nranks_;
    }

    /// planes layout: planes[lp * nq + i], lp in [0, nplanes).
    /// lines layout: lines[i_local * total_planes + gp], i_local in [0, chunk).
    /// Points beyond nq (padding) produce zero lines.
    void to_lines(simmpi::Comm* comm, std::span<const double> planes,
                  std::span<double> lines) const override;

    /// Inverse of to_lines.
    void to_planes(simmpi::Comm* comm, std::span<const double> lines,
                   std::span<double> planes) const override;

    /// Pipelined to_lines over the chunked nonblocking alltoall: the per-peer
    /// block is cut into `nslices` point-aligned slices that ship up front
    /// and land one at a time, so the caller's per-point work can start on
    /// early points while later ones are still in flight.  `on_ready(b, e)`
    /// (optional) is invoked as soon as lines for points [b, e) are complete.
    /// The line values are bit-identical to to_lines.
    void to_lines_overlapped(simmpi::Comm* comm, std::span<const double> planes,
                             std::span<double> lines, std::size_t nslices,
                             const std::function<void(std::size_t, std::size_t)>& on_ready =
                                 {}) const override;

    /// Pipelined inverse: `produce(b, e)` (optional) must fill lines for
    /// points [b, e) right before that slice ships, letting production
    /// overlap the transfers.  Bit-identical to to_planes.
    void to_planes_overlapped(simmpi::Comm* comm, std::span<const double> lines,
                              std::span<double> planes, std::size_t nslices,
                              const std::function<void(std::size_t, std::size_t)>& produce =
                                  {}) const override;

    /// The nonlinear step's full pipelined exchange: forward-transposes every
    /// `planes_in` field into the matching `lines_in` buffer, calls
    /// `compute(b, e)` as each slice of points [b, e) arrives (it must fill
    /// that point range of every `lines_out` field), and reverse-transposes
    /// `lines_out` into `planes_out` — both exchanges overlapped against the
    /// per-slice computation.  Results are bit-identical to the blocking
    /// to_lines / compute(0, chunk) / to_planes sequence.
    void roundtrip_overlapped(
        simmpi::Comm* comm, const std::vector<std::span<const double>>& planes_in,
        const std::vector<std::span<double>>& lines_in,
        const std::vector<std::span<const double>>& lines_out,
        const std::vector<std::span<double>>& planes_out, std::size_t nslices,
        const std::function<void(std::size_t, std::size_t)>& compute) const override;

    /// Physical point index of local line i (may be >= nq for padding).
    [[nodiscard]] std::size_t global_point(std::size_t i, int rank) const noexcept override {
        return static_cast<std::size_t>(rank) * chunk_ + i;
    }

    [[nodiscard]] std::size_t planes_buffer_size() const noexcept override {
        return nplanes_ * nq_;
    }
    [[nodiscard]] std::size_t lines_buffer_size() const noexcept override {
        return chunk_ * total_planes();
    }

private:
    // The overlapped exchanges use a point-major per-peer block layout
    // (point, then plane) so a slice of points is contiguous on the wire;
    // the blocking path keeps its plane-major layout.  Both carry the same
    // values, so the two modes stay bit-identical.
    void pack_forward_slice(std::span<const double> planes, std::span<double> send,
                            std::size_t pb, std::size_t pe) const;
    void unpack_forward_slice(std::span<const double> recv, std::span<double> lines,
                              std::size_t pb, std::size_t pe) const;
    void pack_reverse_slice(std::span<const double> lines, std::span<double> send,
                            std::size_t pb, std::size_t pe) const;
    void unpack_reverse_slice(std::span<const double> recv, std::span<double> planes,
                              std::size_t pb, std::size_t pe) const;

    std::size_t nq_;
    std::size_t nplanes_;
    std::size_t nranks_;
    std::size_t chunk_;
};

} // namespace nektar
