#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "simmpi/simmpi.hpp"

/// \file fourier_transpose.hpp
/// The distributed matrix transposition at the heart of NekTar-F.
///
/// Each rank owns `nplanes` Fourier planes (two spectral/hp planes per
/// complex mode) holding all Nq quadrature points of the x-y mesh.  The
/// nonlinear step needs the opposite layout — every rank holding *all*
/// planes for a chunk of the points, so z-lines can be inverse-FFTed and
/// multiplied pointwise.  "This type of algorithm relies heavily on Global
/// Exchange MPI_Alltoall ... it supports the transposition of a distributed
/// matrix" (paper §4.2.1).  Message size per peer is (Nq/P) * (Nplanes/P)
/// values, matching the paper's Gamma/P x Nz/P formula.
namespace nektar {

class FourierTranspose {
public:
    /// `comm` may be null for the serial (1-rank) case.  `nq` is the number
    /// of quadrature points per plane; `nplanes` the planes owned per rank
    /// (equal on all ranks).
    FourierTranspose(simmpi::Comm* comm, std::size_t nq, std::size_t nplanes);

    [[nodiscard]] std::size_t num_ranks() const noexcept { return nranks_; }
    /// Points this rank owns in line layout (last rank may see padding).
    [[nodiscard]] std::size_t chunk() const noexcept { return chunk_; }
    /// Global plane count (nplanes * ranks).
    [[nodiscard]] std::size_t total_planes() const noexcept { return nplanes_ * nranks_; }

    /// planes layout: planes[lp * nq + i], lp in [0, nplanes).
    /// lines layout: lines[i_local * total_planes + gp], i_local in [0, chunk).
    /// Points beyond nq (padding) produce zero lines.
    void to_lines(simmpi::Comm* comm, std::span<const double> planes,
                  std::span<double> lines) const;

    /// Inverse of to_lines.
    void to_planes(simmpi::Comm* comm, std::span<const double> lines,
                   std::span<double> planes) const;

    /// Physical point index of local line i (may be >= nq for padding).
    [[nodiscard]] std::size_t global_point(std::size_t i, int rank) const noexcept {
        return static_cast<std::size_t>(rank) * chunk_ + i;
    }

    [[nodiscard]] std::size_t planes_buffer_size() const noexcept { return nplanes_ * nq_; }
    [[nodiscard]] std::size_t lines_buffer_size() const noexcept {
        return chunk_ * total_planes();
    }

private:
    std::size_t nq_;
    std::size_t nplanes_;
    std::size_t nranks_;
    std::size_t chunk_;
};

} // namespace nektar
