#include "nektar/forces.hpp"

#include <cmath>

#include "spectral/jacobi.hpp"

namespace nektar {

namespace {

/// Reference coordinates of local edge `le` at edge parameter t in [-1, 1]
/// (t increases from edge_vertices(le)[0] to [1]).
std::pair<double, double> edge_ref_point(spectral::Shape shape, std::size_t le, double t) {
    if (shape == spectral::Shape::Quad) {
        switch (le) {
            case 0: return {t, -1.0};   // v0 -> v1
            case 1: return {1.0, t};    // v1 -> v2
            case 2: return {t, 1.0};    // v3 -> v2
            default: return {-1.0, t};  // v0 -> v3
        }
    }
    switch (le) {
        case 0: return {t, -1.0};   // v0 -> v1
        case 1: return {-t, t};     // v1 (1,-1) -> v2 (-1,1)
        default: return {-1.0, t};  // v0 -> v2
    }
}

/// True when the local a->b edge direction opposes the element's CCW
/// boundary traversal (affects the outward-normal sign).
bool reversed_wrt_ccw(spectral::Shape shape, std::size_t le) {
    if (shape == spectral::Shape::Quad) return le == 2 || le == 3;
    return le == 2;
}

} // namespace

BodyForce body_force(const Discretization& disc, std::span<const double> u_modal,
                     std::span<const double> v_modal, std::span<const double> p_modal,
                     double nu, mesh::BoundaryTag tag) {
    const mesh::Mesh& m = disc.mesh();
    const spectral::QuadratureRule rule = spectral::gauss_legendre(disc.order() + 3);
    BodyForce force;

    for (const mesh::Edge& edge : m.edges()) {
        if (!edge.is_boundary() || edge.tag != tag) continue;
        const auto e = static_cast<std::size_t>(edge.elem[0]);
        const auto le = static_cast<std::size_t>(edge.local[0]);
        const ElementOps& ops = disc.ops(e);
        const spectral::Shape shape = ops.expansion().shape();

        // Physical endpoints in the local a->b direction.
        const auto [a, b] = ops.expansion().edge_vertices(le);
        const mesh::Vertex& pa = m.elem_vertex(e, a);
        const mesh::Vertex& pb = m.elem_vertex(e, b);
        double dx = 0.5 * (pb.x - pa.x); // d(position)/dt on the straight edge
        double dy = 0.5 * (pb.y - pa.y);
        if (reversed_wrt_ccw(shape, le)) {
            dx = -dx;
            dy = -dy;
        }
        const double ds = std::hypot(dx, dy); // |dposition/dt|
        // Outward normal of the fluid element (right of the CCW direction).
        const double nx = dy / ds;
        const double ny = -dx / ds;

        const auto um = disc.modal_block(u_modal, e);
        const auto vm = disc.modal_block(v_modal, e);
        const auto pm = disc.modal_block(p_modal, e);
        for (std::size_t q = 0; q < rule.size(); ++q) {
            const auto [x1, x2] = edge_ref_point(shape, le, rule.points[q]);
            const double p = ops.eval_modal(pm, x1, x2);
            double ux, uy, vx, vy;
            ops.eval_modal_grad(um, x1, x2, ux, uy);
            ops.eval_modal_grad(vm, x1, x2, vx, vy);
            // Traction on the *body*: the body's outward normal is -n.
            const double bnx = -nx, bny = -ny;
            const double tx = -p * bnx + nu * (2.0 * ux * bnx + (uy + vx) * bny);
            const double ty = -p * bny + nu * ((uy + vx) * bnx + 2.0 * vy * bny);
            // Force ON the body FROM the fluid = -sigma_fluid . n_body ...
            // with sigma evaluated in the fluid and n_body pointing into the
            // fluid, the fluid-on-body traction is +sigma . n_body.
            force.fx += rule.weights[q] * ds * tx;
            force.fy += rule.weights[q] * ds * ty;
        }
    }
    return force;
}

} // namespace nektar
