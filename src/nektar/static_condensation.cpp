#include "nektar/static_condensation.hpp"

#include <algorithm>
#include <cstdlib>
#include <cassert>
#include <deque>
#include <set>
#include <stdexcept>

#include "blaslite/blas.hpp"

namespace nektar {

namespace {

/// Reverse Cuthill-McKee over the boundary dofs, adjacency given by shared
/// elements (same algorithm as the full dof map, restricted to the Schur
/// system).
std::vector<int> boundary_rcm(const std::vector<std::vector<int>>& elem_bdofs,
                              std::size_t n_dofs) {
    std::vector<std::vector<int>> dof_elems(n_dofs);
    for (std::size_t e = 0; e < elem_bdofs.size(); ++e)
        for (int d : elem_bdofs[e]) dof_elems[static_cast<std::size_t>(d)].push_back(static_cast<int>(e));
    const auto neighbours = [&](int d) {
        std::set<int> nb;
        for (int e : dof_elems[static_cast<std::size_t>(d)])
            for (int u : elem_bdofs[static_cast<std::size_t>(e)])
                if (u != d) nb.insert(u);
        return nb;
    };
    std::vector<int> order;
    order.reserve(n_dofs);
    std::vector<char> seen(n_dofs, 0);
    for (std::size_t start = 0; start < n_dofs; ++start) {
        if (seen[start]) continue;
        std::deque<int> queue{static_cast<int>(start)};
        seen[start] = 1;
        while (!queue.empty()) {
            const int d = queue.front();
            queue.pop_front();
            order.push_back(d);
            for (int u : neighbours(d)) {
                if (seen[static_cast<std::size_t>(u)]) continue;
                seen[static_cast<std::size_t>(u)] = 1;
                queue.push_back(u);
            }
        }
    }
    std::vector<int> perm(n_dofs);
    for (std::size_t i = 0; i < n_dofs; ++i)
        perm[static_cast<std::size_t>(order[n_dofs - 1 - i])] = static_cast<int>(i);
    return perm;
}

} // namespace

CondensedHelmholtz::CondensedHelmholtz(std::shared_ptr<const Discretization> disc,
                                       double lambda, HelmholtzBC bc)
    : disc_(std::move(disc)),
      lambda_(lambda),
      bc_(std::move(bc)),
      flat_map_(disc_->mesh(), disc_->order(), /*renumber=*/false) {
    const std::size_t P = disc_->order();
    const mesh::Mesh& m = disc_->mesh();
    nb_ = m.num_vertices() + m.num_edges() * (P - 1);

    // Boundary dof lists per element (flat ids; boundary modes come first in
    // the expansion ordering and map below nb_ in the flat numbering).
    std::vector<std::vector<int>> elem_bdofs(disc_->num_elements());
    for (std::size_t e = 0; e < disc_->num_elements(); ++e) {
        const auto& map = flat_map_.element_map(e);
        const std::size_t nmb = disc_->ops(e).expansion().num_boundary_modes();
        for (std::size_t i = 0; i < nmb; ++i) {
            assert(map[i].global < static_cast<int>(nb_));
            elem_bdofs[e].push_back(map[i].global);
        }
    }
    bperm_ = boundary_rcm(elem_bdofs, nb_);

    std::size_t kd = 0;
    for (const auto& bd : elem_bdofs)
        for (int a : bd)
            for (int b : bd)
                kd = std::max(kd, static_cast<std::size_t>(
                                      std::abs(bperm_[static_cast<std::size_t>(a)] -
                                               bperm_[static_cast<std::size_t>(b)])));

    la::SymBandedMatrix schur(nb_, kd);
    elems_.resize(disc_->num_elements());
    for (std::size_t e = 0; e < disc_->num_elements(); ++e) {
        const ElementOps& ops = disc_->ops(e);
        const auto& map = flat_map_.element_map(e);
        const std::size_t nm = ops.num_modes();
        const std::size_t nmb = ops.expansion().num_boundary_modes();
        const std::size_t nmi = nm - nmb;
        // Signed elemental Helmholtz matrix (global-orientation basis).
        la::DenseMatrix h(nm, nm);
        for (std::size_t i = 0; i < nm; ++i)
            for (std::size_t j = 0; j < nm; ++j)
                h(i, j) = map[i].sign * map[j].sign *
                          (ops.laplacian()(i, j) + lambda_ * ops.mass()(i, j));
        ElemData& ed = elems_[e];
        ed.a_bi = la::DenseMatrix(nmb, nmi);
        la::DenseMatrix a_ii(nmi, nmi);
        for (std::size_t i = 0; i < nmb; ++i)
            for (std::size_t j = 0; j < nmi; ++j) ed.a_bi(i, j) = h(i, nmb + j);
        for (std::size_t i = 0; i < nmi; ++i)
            for (std::size_t j = 0; j < nmi; ++j) a_ii(i, j) = h(nmb + i, nmb + j);
        ed.a_ii_chol = a_ii;
        if (nmi > 0 && !la::cholesky_factor(ed.a_ii_chol))
            throw std::runtime_error("CondensedHelmholtz: interior block not SPD");

        // X = A_ii^{-1} A_ib, column by column; S = A_bb - A_bi X.
        la::DenseMatrix x(nmi, nmb);
        std::vector<double> col(nmi);
        for (std::size_t j = 0; j < nmb; ++j) {
            for (std::size_t i = 0; i < nmi; ++i) col[i] = ed.a_bi(j, i); // A_ib col j
            if (nmi > 0) la::cholesky_solve(ed.a_ii_chol, col);
            for (std::size_t i = 0; i < nmi; ++i) x(i, j) = col[i];
        }
        for (std::size_t i = 0; i < nmb; ++i) {
            const int gi = bperm_[static_cast<std::size_t>(elem_bdofs[e][i])];
            for (std::size_t j = 0; j <= i; ++j) {
                const int gj = bperm_[static_cast<std::size_t>(elem_bdofs[e][j])];
                double s = h(i, j);
                for (std::size_t k = 0; k < nmi; ++k) s -= ed.a_bi(i, k) * x(k, j);
                schur.add(static_cast<std::size_t>(gi), static_cast<std::size_t>(gj), s);
            }
        }
    }

    // Dirichlet reduction, as in HelmholtzDirect.
    for (int d : flat_map_.boundary_dofs([&](mesh::BoundaryTag t) { return bc_.is_dirichlet(t); }))
        dirichlet_dofs_.push_back(bperm_[static_cast<std::size_t>(d)]);
    if (bc_.pin_first_dof && dirichlet_dofs_.empty())
        dirichlet_dofs_.push_back(bperm_[static_cast<std::size_t>(
            flat_map_.element_map(0)[disc_->ops(0).expansion().vertex_mode(0)].global)]);
    std::sort(dirichlet_dofs_.begin(), dirichlet_dofs_.end());
    is_dirichlet_.assign(nb_, 0);
    for (int d : dirichlet_dofs_) is_dirichlet_[static_cast<std::size_t>(d)] = 1;
    for (int d : dirichlet_dofs_) {
        const auto du = static_cast<std::size_t>(d);
        const std::size_t lo = du > kd ? du - kd : 0;
        const std::size_t hi = std::min(nb_ - 1, du + kd);
        for (std::size_t r = lo; r <= hi; ++r) {
            if (is_dirichlet_[r]) continue;
            const double v = schur.at(r, du);
            if (v != 0.0) lift_.emplace_back(static_cast<int>(r), d, v);
        }
    }
    for (int d : dirichlet_dofs_) {
        const auto du = static_cast<std::size_t>(d);
        const std::size_t lo = du > kd ? du - kd : 0;
        const std::size_t hi = std::min(nb_ - 1, du + kd);
        for (std::size_t r = lo; r <= hi; ++r) {
            if (r == du) continue;
            const double v = schur.at(r, du);
            if (v != 0.0) schur.add(r, du, -v);
        }
        schur.band(0, du) = 1.0;
    }
    if (!chol_.factor(schur))
        throw std::runtime_error("CondensedHelmholtz: Schur complement not SPD");
}

std::vector<double> CondensedHelmholtz::solve(
    std::span<const double> f_quad, const std::function<double(double, double)>& g) const {
    // Signed local weak RHS per element, then condensation of the interiors.
    std::vector<double> rhs(nb_, 0.0);
    std::vector<std::vector<double>> li(disc_->num_elements()); // signed interior rhs
    for (std::size_t e = 0; e < disc_->num_elements(); ++e) {
        const ElementOps& ops = disc_->ops(e);
        const auto& map = flat_map_.element_map(e);
        const std::size_t nm = ops.num_modes();
        const std::size_t nmb = ops.expansion().num_boundary_modes();
        const std::size_t nmi = nm - nmb;
        std::vector<double> l(nm, 0.0);
        ops.weak_inner(disc_->quad_block(f_quad, e), l);
        for (std::size_t i = 0; i < nm; ++i) l[i] *= map[i].sign;
        li[e].assign(l.begin() + static_cast<std::ptrdiff_t>(nmb), l.end());
        std::vector<double> w = li[e];
        if (nmi > 0) la::cholesky_solve(elems_[e].a_ii_chol, w);
        for (std::size_t i = 0; i < nmb; ++i) {
            double s = l[i];
            for (std::size_t k = 0; k < nmi; ++k) s -= elems_[e].a_bi(i, k) * w[k];
            rhs[static_cast<std::size_t>(
                bperm_[static_cast<std::size_t>(map[i].global)])] += s;
        }
    }

    // Dirichlet data on the condensed system.
    std::vector<double> bvals(nb_, 0.0);
    if (g) {
        for (const auto& [dof, v] : flat_map_.dirichlet_values(
                 [&](mesh::BoundaryTag t) { return bc_.is_dirichlet(t); }, g))
            bvals[static_cast<std::size_t>(bperm_[static_cast<std::size_t>(dof)])] = v;
    }
    for (const auto& [r, d, v] : lift_)
        rhs[static_cast<std::size_t>(r)] -= v * bvals[static_cast<std::size_t>(d)];
    for (int d : dirichlet_dofs_) rhs[static_cast<std::size_t>(d)] = bvals[static_cast<std::size_t>(d)];
    chol_.solve(rhs);

    // Interior back-substitution: u_i = A_ii^{-1} (l_i - A_ib u_b).
    std::vector<double> modal(disc_->modal_size(), 0.0);
    for (std::size_t e = 0; e < disc_->num_elements(); ++e) {
        const ElementOps& ops = disc_->ops(e);
        const auto& map = flat_map_.element_map(e);
        const std::size_t nm = ops.num_modes();
        const std::size_t nmb = ops.expansion().num_boundary_modes();
        const std::size_t nmi = nm - nmb;
        auto out = disc_->modal_block(std::span<double>(modal), e);
        std::vector<double> ub(nmb);
        for (std::size_t i = 0; i < nmb; ++i) {
            ub[i] = rhs[static_cast<std::size_t>(
                bperm_[static_cast<std::size_t>(map[i].global)])];
            out[i] = map[i].sign * ub[i];
        }
        if (nmi == 0) continue;
        std::vector<double> w = li[e];
        for (std::size_t k = 0; k < nmi; ++k) {
            double s = w[k];
            for (std::size_t i = 0; i < nmb; ++i) s -= elems_[e].a_bi(i, k) * ub[i];
            w[k] = s;
        }
        la::cholesky_solve(elems_[e].a_ii_chol, w);
        for (std::size_t k = 0; k < nmi; ++k) out[nmb + k] = map[nmb + k].sign * w[k];
    }
    return modal;
}

} // namespace nektar
