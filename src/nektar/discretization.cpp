#include "nektar/discretization.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

#include "compute/backend.hpp"

namespace nektar {

Discretization::Discretization(std::shared_ptr<const mesh::Mesh> m, std::size_t order,
                               bool renumber, compute::BackendKind backend)
    : mesh_(std::move(m)), order_(order), dofmap_(*mesh_, order, renumber) {
    const std::size_t ne = mesh_->num_elements();
    ops_.reserve(ne);
    modal_off_.resize(ne);
    quad_off_.resize(ne);
    // One expansion per shape for the whole discretization (the global
    // make_expansion cache is shared across Discretizations but sits behind a
    // mutex; resolving each shape once here keeps construction off it), and
    // one matrix cache so congruent elements share mass/Laplacian/Cholesky.
    std::map<spectral::Shape, std::shared_ptr<const spectral::Expansion>> expansions;
    MatrixCache cache;
    for (std::size_t e = 0; e < ne; ++e) {
        const spectral::Shape shape = mesh_->element(e).shape;
        auto& exp = expansions[shape];
        if (!exp) exp = spectral::make_expansion(shape, order);
        ops_.emplace_back(*mesh_, e, exp, &cache);
        modal_off_[e] = modal_size_;
        quad_off_[e] = quad_size_;
        modal_size_ += ops_[e].num_modes();
        quad_size_ += ops_[e].num_quad();
    }

    // Group elements by expansion, in order of first appearance.
    for (std::size_t e = 0; e < ne; ++e) {
        const spectral::Expansion* exp = &ops_[e].expansion();
        auto it = std::find_if(groups_.begin(), groups_.end(),
                               [exp](const ElemGroup& g) { return g.exp.get() == exp; });
        if (it == groups_.end()) {
            ElemGroup g;
            g.exp = ops_[e].expansion_ptr();
            g.modal_begin = modal_off_[e];
            g.quad_begin = quad_off_[e];
            g.basis_cm = g.exp->basis().transposed();
            g.d1_cm = g.exp->dbasis_dxi1().transposed();
            g.d2_cm = g.exp->dbasis_dxi2().transposed();
            groups_.push_back(std::move(g));
            it = groups_.end() - 1;
        }
        it->elems.push_back(e);
    }
    for (ElemGroup& g : groups_) {
        g.contiguous = g.elems.back() - g.elems.front() + 1 == g.elems.size();
        for (std::size_t j = 0; j < g.elems.size(); ++j) {
            const ElemMatrices* id = ops_[g.elems[j]].matrix_identity();
            if (g.runs.empty() || g.runs.back().mats != id)
                g.runs.push_back({j, 1, id});
            else
                ++g.runs.back().count;
        }
    }
    single_group_ = groups_.size() == 1 && groups_.front().contiguous;

    // Both engines are built eagerly: the sum-factor plans are a handful of
    // small 1-D matrices per group, cheap enough for the ALE per-step
    // rebuilds, and an already-built pair makes per-call kind dispatch free.
    backend_ = compute::resolve(backend, compute::default_backend());
    dense_ = compute::make_backend(compute::BackendKind::Dense, *this);
    sumfact_ = compute::make_backend(compute::BackendKind::SumFactor, *this);
}

const compute::Backend& Discretization::engine(compute::BackendKind kind) const noexcept {
    const compute::BackendKind k = compute::resolve(kind, backend_);
    return k == compute::BackendKind::SumFactor ? *sumfact_ : *dense_;
}

void Discretization::to_quad(std::span<const double> modal, std::span<double> quad,
                             compute::BackendKind kind) const {
    to_quad_planes(modal, quad, 1, kind);
}

void Discretization::to_quad_planes(std::span<const double> modal, std::span<double> quad,
                                    std::size_t nplanes, compute::BackendKind kind) const {
    assert(modal.size() == modal_size_ * nplanes && quad.size() == quad_size_ * nplanes);
    engine(kind).to_quad_planes(modal, quad, nplanes);
}

void Discretization::weak_inner(std::span<const double> quad, std::span<double> rhs,
                                compute::BackendKind kind) const {
    weak_inner_planes(quad, rhs, 1, kind);
}

void Discretization::weak_inner_planes(std::span<const double> quad, std::span<double> rhs,
                                       std::size_t nplanes, compute::BackendKind kind) const {
    assert(quad.size() == quad_size_ * nplanes && rhs.size() == modal_size_ * nplanes);
    engine(kind).weak_inner_planes(quad, rhs, nplanes);
}

void Discretization::project(std::span<const double> quad, std::span<double> modal,
                             compute::BackendKind kind) const {
    project_planes(quad, modal, 1, kind);
}

void Discretization::project_planes(std::span<const double> quad, std::span<double> modal,
                                    std::size_t nplanes, compute::BackendKind kind) const {
    assert(quad.size() == quad_size_ * nplanes && modal.size() == modal_size_ * nplanes);
    engine(kind).project_planes(quad, modal, nplanes);
}

void Discretization::grad_from_modal(std::span<const double> modal, std::span<double> dudx,
                                     std::span<double> dudy, compute::BackendKind kind) const {
    grad_from_modal_planes(modal, dudx, dudy, 1, kind);
}

void Discretization::grad_from_modal_planes(std::span<const double> modal,
                                            std::span<double> dudx, std::span<double> dudy,
                                            std::size_t nplanes,
                                            compute::BackendKind kind) const {
    assert(modal.size() == modal_size_ * nplanes);
    assert(dudx.size() == quad_size_ * nplanes && dudy.size() == quad_size_ * nplanes);
    engine(kind).grad_from_modal_planes(modal, dudx, dudy, nplanes);
}

void Discretization::convect_planes(std::span<const double> au, std::span<const double> av,
                                    std::span<const double> u, std::span<const double> v,
                                    std::span<double> nu, std::span<double> nv,
                                    std::size_t nplanes, compute::BackendKind kind) const {
    assert(au.size() == quad_size_ * nplanes && av.size() == quad_size_ * nplanes);
    assert(u.size() == quad_size_ * nplanes && v.size() == quad_size_ * nplanes);
    assert(nu.size() == quad_size_ * nplanes && nv.size() == quad_size_ * nplanes);
    engine(kind).convect_planes(au, av, u, v, nu, nv, nplanes);
}

void Discretization::eval_at_quad(const std::function<double(double, double)>& f,
                                  std::span<double> quad) const {
    for (std::size_t e = 0; e < ops_.size(); ++e) {
        const ElemGeometry& g = ops_[e].geometry();
        auto block = quad_block(quad, e);
        for (std::size_t q = 0; q < block.size(); ++q) block[q] = f(g.x[q], g.y[q]);
    }
}

void Discretization::scatter(std::span<const double> global, std::span<double> modal) const {
    for (std::size_t e = 0; e < ops_.size(); ++e) {
        auto block = modal_block(modal, e);
        const auto& map = dofmap_.element_map(e);
        for (std::size_t i = 0; i < block.size(); ++i)
            block[i] = map[i].sign * global[static_cast<std::size_t>(map[i].global)];
    }
}

void Discretization::gather_add(std::span<const double> modal, std::span<double> global) const {
    for (std::size_t e = 0; e < ops_.size(); ++e) {
        auto block = modal_block(modal, e);
        const auto& map = dofmap_.element_map(e);
        for (std::size_t i = 0; i < block.size(); ++i)
            global[static_cast<std::size_t>(map[i].global)] += map[i].sign * block[i];
    }
}

double Discretization::integrate(std::span<const double> quad) const {
    double s = 0.0;
    for (std::size_t e = 0; e < ops_.size(); ++e) {
        const auto& wj = ops_[e].geometry().wj;
        auto block = quad_block(quad, e);
        for (std::size_t q = 0; q < block.size(); ++q) s += wj[q] * block[q];
    }
    return s;
}

double Discretization::l2_norm(std::span<const double> quad) const {
    double s = 0.0;
    for (std::size_t e = 0; e < ops_.size(); ++e) {
        const auto& wj = ops_[e].geometry().wj;
        auto block = quad_block(quad, e);
        for (std::size_t q = 0; q < block.size(); ++q) s += wj[q] * block[q] * block[q];
    }
    return std::sqrt(s);
}

double Discretization::l2_error(std::span<const double> quad,
                                const std::function<double(double, double)>& exact) const {
    double s = 0.0;
    for (std::size_t e = 0; e < ops_.size(); ++e) {
        const ElemGeometry& g = ops_[e].geometry();
        auto block = quad_block(quad, e);
        for (std::size_t q = 0; q < block.size(); ++q) {
            const double d = block[q] - exact(g.x[q], g.y[q]);
            s += g.wj[q] * d * d;
        }
    }
    return std::sqrt(s);
}

} // namespace nektar
