#include "nektar/discretization.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

#include "blaslite/blas.hpp"
#include "parallel/scratch.hpp"

namespace nektar {

Discretization::Discretization(std::shared_ptr<const mesh::Mesh> m, std::size_t order,
                               bool renumber)
    : mesh_(std::move(m)), order_(order), dofmap_(*mesh_, order, renumber) {
    const std::size_t ne = mesh_->num_elements();
    ops_.reserve(ne);
    modal_off_.resize(ne);
    quad_off_.resize(ne);
    // One expansion per shape for the whole discretization (the global
    // make_expansion cache is shared across Discretizations but sits behind a
    // mutex; resolving each shape once here keeps construction off it), and
    // one matrix cache so congruent elements share mass/Laplacian/Cholesky.
    std::map<spectral::Shape, std::shared_ptr<const spectral::Expansion>> expansions;
    MatrixCache cache;
    for (std::size_t e = 0; e < ne; ++e) {
        const spectral::Shape shape = mesh_->element(e).shape;
        auto& exp = expansions[shape];
        if (!exp) exp = spectral::make_expansion(shape, order);
        ops_.emplace_back(*mesh_, e, exp, &cache);
        modal_off_[e] = modal_size_;
        quad_off_[e] = quad_size_;
        modal_size_ += ops_[e].num_modes();
        quad_size_ += ops_[e].num_quad();
    }

    // Group elements by expansion, in order of first appearance.
    for (std::size_t e = 0; e < ne; ++e) {
        const spectral::Expansion* exp = &ops_[e].expansion();
        auto it = std::find_if(groups_.begin(), groups_.end(),
                               [exp](const ElemGroup& g) { return g.exp.get() == exp; });
        if (it == groups_.end()) {
            ElemGroup g;
            g.exp = ops_[e].expansion_ptr();
            g.modal_begin = modal_off_[e];
            g.quad_begin = quad_off_[e];
            g.basis_cm = g.exp->basis().transposed();
            g.d1_cm = g.exp->dbasis_dxi1().transposed();
            g.d2_cm = g.exp->dbasis_dxi2().transposed();
            groups_.push_back(std::move(g));
            it = groups_.end() - 1;
        }
        it->elems.push_back(e);
    }
    for (ElemGroup& g : groups_) {
        g.contiguous = g.elems.back() - g.elems.front() + 1 == g.elems.size();
        for (std::size_t j = 0; j < g.elems.size(); ++j) {
            const ElemMatrices* id = ops_[g.elems[j]].matrix_identity();
            if (g.runs.empty() || g.runs.back().mats != id)
                g.runs.push_back({j, 1, id});
            else
                ++g.runs.back().count;
        }
    }
    single_group_ = groups_.size() == 1 && groups_.front().contiguous;
}

namespace {

/// Gathers per-element modal blocks of one plane into a packed column-major
/// panel (one element per column).
void pack_cols(std::span<const double> field, const std::vector<std::size_t>& off,
               const std::vector<std::size_t>& elems, std::size_t plane_off,
               std::size_t width, double* dst) {
    for (std::size_t j = 0; j < elems.size(); ++j) {
        const double* src = field.data() + plane_off + off[elems[j]];
        std::copy(src, src + width, dst + j * width);
    }
}

/// Scatters a packed column-major panel back into per-element blocks.
void unpack_cols(const double* src, const std::vector<std::size_t>& off,
                 const std::vector<std::size_t>& elems, std::size_t plane_off,
                 std::size_t width, std::span<double> field) {
    for (std::size_t j = 0; j < elems.size(); ++j) {
        double* dst = field.data() + plane_off + off[elems[j]];
        std::copy(src + j * width, src + (j + 1) * width, dst);
    }
}

} // namespace

void Discretization::to_quad(std::span<const double> modal, std::span<double> quad) const {
    to_quad_planes(modal, quad, 1);
}

void Discretization::to_quad_planes(std::span<const double> modal, std::span<double> quad,
                                    std::size_t nplanes) const {
    assert(modal.size() == modal_size_ * nplanes && quad.size() == quad_size_ * nplanes);
    for (const ElemGroup& g : groups_) {
        const std::size_t nm = g.exp->num_modes();
        const std::size_t nq = g.exp->num_quad();
        const std::size_t cnt = g.elems.size();
        if (single_group_) {
            // Whole mesh, planes back to back: one dgemm over every column.
            blaslite::dgemm_cm(1.0, g.basis_cm.data(), nq, modal.data(), nm, 0.0,
                               quad.data(), nq, nq, cnt * nplanes, nm);
        } else if (g.contiguous) {
            std::vector<blaslite::GemmBatchItem> items(nplanes);
            for (std::size_t p = 0; p < nplanes; ++p)
                items[p] = {modal.data() + p * modal_size_ + g.modal_begin,
                            quad.data() + p * quad_size_ + g.quad_begin};
            blaslite::dgemm_batch_same_a(1.0, g.basis_cm.data(), nq, nq, nm, items, cnt, nm,
                                         nq, 0.0);
        } else {
            parallel::Scratch mp(nm * cnt * nplanes), qp(nq * cnt * nplanes);
            for (std::size_t p = 0; p < nplanes; ++p)
                pack_cols(modal, modal_off_, g.elems, p * modal_size_, nm,
                          mp.data() + p * nm * cnt);
            blaslite::dgemm_cm(1.0, g.basis_cm.data(), nq, mp.data(), nm, 0.0, qp.data(), nq,
                               nq, cnt * nplanes, nm);
            for (std::size_t p = 0; p < nplanes; ++p)
                unpack_cols(qp.data() + p * nq * cnt, quad_off_, g.elems, p * quad_size_, nq,
                            quad);
        }
    }
}

void Discretization::weak_inner(std::span<const double> quad, std::span<double> rhs) const {
    weak_inner_planes(quad, rhs, 1);
}

void Discretization::weak_inner_planes(std::span<const double> quad, std::span<double> rhs,
                                       std::size_t nplanes) const {
    assert(quad.size() == quad_size_ * nplanes && rhs.size() == modal_size_ * nplanes);
    for (const ElemGroup& g : groups_) {
        const std::size_t nm = g.exp->num_modes();
        const std::size_t nq = g.exp->num_quad();
        const std::size_t cnt = g.elems.size();
        // The column-major transpose of the shared basis is its row-major
        // buffer itself: B^T (nm x nq column-major, lda = nm).
        const double* bt_cm = g.exp->basis().data();
        // Quadrature weights fold into the input panel while packing.
        parallel::Scratch wq(nq * cnt * nplanes);
        for (std::size_t p = 0; p < nplanes; ++p) {
            for (std::size_t j = 0; j < cnt; ++j) {
                const std::size_t e = g.elems[j];
                const double* src = quad.data() + p * quad_size_ + quad_off_[e];
                const std::vector<double>& wj = ops_[e].geometry().wj;
                double* dst = wq.data() + (p * cnt + j) * nq;
                for (std::size_t q = 0; q < nq; ++q) dst[q] = wj[q] * src[q];
            }
        }
        if (single_group_) {
            blaslite::dgemm_cm(1.0, bt_cm, nm, wq.data(), nq, 1.0, rhs.data(), nm, nm,
                               cnt * nplanes, nq);
        } else if (g.contiguous) {
            std::vector<blaslite::GemmBatchItem> items(nplanes);
            for (std::size_t p = 0; p < nplanes; ++p)
                items[p] = {wq.data() + p * nq * cnt,
                            rhs.data() + p * modal_size_ + g.modal_begin};
            blaslite::dgemm_batch_same_a(1.0, bt_cm, nm, nm, nq, items, cnt, nq, nm, 1.0);
        } else {
            parallel::Scratch rp(nm * cnt * nplanes);
            blaslite::dgemm_cm(1.0, bt_cm, nm, wq.data(), nq, 0.0, rp.data(), nm, nm,
                               cnt * nplanes, nq);
            for (std::size_t p = 0; p < nplanes; ++p) {
                for (std::size_t j = 0; j < cnt; ++j) {
                    double* dst = rhs.data() + p * modal_size_ + modal_off_[g.elems[j]];
                    const double* src = rp.data() + (p * cnt + j) * nm;
                    for (std::size_t i = 0; i < nm; ++i) dst[i] += src[i];
                }
            }
        }
    }
}

void Discretization::project(std::span<const double> quad, std::span<double> modal) const {
    project_planes(quad, modal, 1);
}

void Discretization::project_planes(std::span<const double> quad, std::span<double> modal,
                                    std::size_t nplanes) const {
    assert(quad.size() == quad_size_ * nplanes && modal.size() == modal_size_ * nplanes);
    std::fill(modal.begin(), modal.end(), 0.0);
    weak_inner_planes(quad, modal, nplanes);
    // Mass solves: runs of congruent elements share one Cholesky factor, so a
    // whole run of columns goes through la::cholesky_solve_cols at once.
    for (const ElemGroup& g : groups_) {
        const std::size_t nm = g.exp->num_modes();
        for (std::size_t p = 0; p < nplanes; ++p) {
            double* base = modal.data() + p * modal_size_;
            for (const ElemGroup::MatrixRun& run : g.runs) {
                const std::size_t first = g.elems[run.first];
                if (g.contiguous) {
                    la::cholesky_solve_cols(run.mats->mass_chol, base + modal_off_[first],
                                            nm, run.count);
                } else {
                    for (std::size_t j = 0; j < run.count; ++j)
                        la::cholesky_solve(
                            run.mats->mass_chol,
                            std::span<double>(base + modal_off_[g.elems[run.first + j]], nm));
                }
            }
        }
    }
}

void Discretization::grad_from_modal(std::span<const double> modal, std::span<double> dudx,
                                     std::span<double> dudy) const {
    grad_from_modal_planes(modal, dudx, dudy, 1);
}

void Discretization::grad_from_modal_planes(std::span<const double> modal,
                                            std::span<double> dudx, std::span<double> dudy,
                                            std::size_t nplanes) const {
    assert(modal.size() == modal_size_ * nplanes);
    assert(dudx.size() == quad_size_ * nplanes && dudy.size() == quad_size_ * nplanes);
    for (const ElemGroup& g : groups_) {
        const std::size_t nm = g.exp->num_modes();
        const std::size_t nq = g.exp->num_quad();
        const std::size_t cnt = g.elems.size();
        parallel::Scratch d1(nq * cnt * nplanes), d2(nq * cnt * nplanes);
        const auto apply = [&](const la::DenseMatrix& op_cm, double* out) {
            if (g.contiguous) {
                std::vector<blaslite::GemmBatchItem> items(nplanes);
                for (std::size_t p = 0; p < nplanes; ++p)
                    items[p] = {modal.data() + p * modal_size_ + g.modal_begin,
                                out + p * nq * cnt};
                blaslite::dgemm_batch_same_a(1.0, op_cm.data(), nq, nq, nm, items, cnt, nm,
                                             nq, 0.0);
            } else {
                parallel::Scratch mp(nm * cnt * nplanes);
                for (std::size_t p = 0; p < nplanes; ++p)
                    pack_cols(modal, modal_off_, g.elems, p * modal_size_, nm,
                              mp.data() + p * nm * cnt);
                blaslite::dgemm_cm(1.0, op_cm.data(), nq, mp.data(), nm, 0.0, out, nq, nq,
                                   cnt * nplanes, nm);
            }
        };
        apply(g.d1_cm, d1.data());
        apply(g.d2_cm, d2.data());
        // Chain rule with per-element geometry factors while scattering back.
        for (std::size_t p = 0; p < nplanes; ++p) {
            for (std::size_t j = 0; j < cnt; ++j) {
                const std::size_t e = g.elems[j];
                const ElemGeometry& geo = ops_[e].geometry();
                const double* c1 = d1.data() + (p * cnt + j) * nq;
                const double* c2 = d2.data() + (p * cnt + j) * nq;
                double* dx = dudx.data() + p * quad_size_ + quad_off_[e];
                double* dy = dudy.data() + p * quad_size_ + quad_off_[e];
                for (std::size_t q = 0; q < nq; ++q) {
                    dx[q] = geo.rx[q] * c1[q] + geo.sx[q] * c2[q];
                    dy[q] = geo.ry[q] * c1[q] + geo.sy[q] * c2[q];
                }
            }
        }
    }
}

void Discretization::eval_at_quad(const std::function<double(double, double)>& f,
                                  std::span<double> quad) const {
    for (std::size_t e = 0; e < ops_.size(); ++e) {
        const ElemGeometry& g = ops_[e].geometry();
        auto block = quad_block(quad, e);
        for (std::size_t q = 0; q < block.size(); ++q) block[q] = f(g.x[q], g.y[q]);
    }
}

void Discretization::scatter(std::span<const double> global, std::span<double> modal) const {
    for (std::size_t e = 0; e < ops_.size(); ++e) {
        auto block = modal_block(modal, e);
        const auto& map = dofmap_.element_map(e);
        for (std::size_t i = 0; i < block.size(); ++i)
            block[i] = map[i].sign * global[static_cast<std::size_t>(map[i].global)];
    }
}

void Discretization::gather_add(std::span<const double> modal, std::span<double> global) const {
    for (std::size_t e = 0; e < ops_.size(); ++e) {
        auto block = modal_block(modal, e);
        const auto& map = dofmap_.element_map(e);
        for (std::size_t i = 0; i < block.size(); ++i)
            global[static_cast<std::size_t>(map[i].global)] += map[i].sign * block[i];
    }
}

double Discretization::integrate(std::span<const double> quad) const {
    double s = 0.0;
    for (std::size_t e = 0; e < ops_.size(); ++e) {
        const auto& wj = ops_[e].geometry().wj;
        auto block = quad_block(quad, e);
        for (std::size_t q = 0; q < block.size(); ++q) s += wj[q] * block[q];
    }
    return s;
}

double Discretization::l2_norm(std::span<const double> quad) const {
    double s = 0.0;
    for (std::size_t e = 0; e < ops_.size(); ++e) {
        const auto& wj = ops_[e].geometry().wj;
        auto block = quad_block(quad, e);
        for (std::size_t q = 0; q < block.size(); ++q) s += wj[q] * block[q] * block[q];
    }
    return std::sqrt(s);
}

double Discretization::l2_error(std::span<const double> quad,
                                const std::function<double(double, double)>& exact) const {
    double s = 0.0;
    for (std::size_t e = 0; e < ops_.size(); ++e) {
        const ElemGeometry& g = ops_[e].geometry();
        auto block = quad_block(quad, e);
        for (std::size_t q = 0; q < block.size(); ++q) {
            const double d = block[q] - exact(g.x[q], g.y[q]);
            s += g.wj[q] * d * d;
        }
    }
    return std::sqrt(s);
}

} // namespace nektar
