#include "nektar/discretization.hpp"

#include <cmath>

namespace nektar {

Discretization::Discretization(std::shared_ptr<const mesh::Mesh> m, std::size_t order,
                               bool renumber)
    : mesh_(std::move(m)), order_(order), dofmap_(*mesh_, order, renumber) {
    const std::size_t ne = mesh_->num_elements();
    ops_.reserve(ne);
    modal_off_.resize(ne);
    quad_off_.resize(ne);
    for (std::size_t e = 0; e < ne; ++e) {
        ops_.emplace_back(*mesh_, e, order);
        modal_off_[e] = modal_size_;
        quad_off_[e] = quad_size_;
        modal_size_ += ops_[e].num_modes();
        quad_size_ += ops_[e].num_quad();
    }
}

void Discretization::to_quad(std::span<const double> modal, std::span<double> quad) const {
    for (std::size_t e = 0; e < ops_.size(); ++e)
        ops_[e].interp_to_quad(modal_block(modal, e), quad_block(quad, e));
}

void Discretization::project(std::span<const double> quad, std::span<double> modal) const {
    for (std::size_t e = 0; e < ops_.size(); ++e)
        ops_[e].project(quad_block(quad, e), modal_block(modal, e));
}

void Discretization::eval_at_quad(const std::function<double(double, double)>& f,
                                  std::span<double> quad) const {
    for (std::size_t e = 0; e < ops_.size(); ++e) {
        const ElemGeometry& g = ops_[e].geometry();
        auto block = quad_block(quad, e);
        for (std::size_t q = 0; q < block.size(); ++q) block[q] = f(g.x[q], g.y[q]);
    }
}

void Discretization::scatter(std::span<const double> global, std::span<double> modal) const {
    for (std::size_t e = 0; e < ops_.size(); ++e) {
        auto block = modal_block(modal, e);
        const auto& map = dofmap_.element_map(e);
        for (std::size_t i = 0; i < block.size(); ++i)
            block[i] = map[i].sign * global[static_cast<std::size_t>(map[i].global)];
    }
}

void Discretization::gather_add(std::span<const double> modal, std::span<double> global) const {
    for (std::size_t e = 0; e < ops_.size(); ++e) {
        auto block = modal_block(modal, e);
        const auto& map = dofmap_.element_map(e);
        for (std::size_t i = 0; i < block.size(); ++i)
            global[static_cast<std::size_t>(map[i].global)] += map[i].sign * block[i];
    }
}

double Discretization::integrate(std::span<const double> quad) const {
    double s = 0.0;
    for (std::size_t e = 0; e < ops_.size(); ++e) {
        const auto& wj = ops_[e].geometry().wj;
        auto block = quad_block(quad, e);
        for (std::size_t q = 0; q < block.size(); ++q) s += wj[q] * block[q];
    }
    return s;
}

double Discretization::l2_norm(std::span<const double> quad) const {
    double s = 0.0;
    for (std::size_t e = 0; e < ops_.size(); ++e) {
        const auto& wj = ops_[e].geometry().wj;
        auto block = quad_block(quad, e);
        for (std::size_t q = 0; q < block.size(); ++q) s += wj[q] * block[q] * block[q];
    }
    return std::sqrt(s);
}

double Discretization::l2_error(std::span<const double> quad,
                                const std::function<double(double, double)>& exact) const {
    double s = 0.0;
    for (std::size_t e = 0; e < ops_.size(); ++e) {
        const ElemGeometry& g = ops_[e].geometry();
        auto block = quad_block(quad, e);
        for (std::size_t q = 0; q < block.size(); ++q) {
            const double d = block[q] - exact(g.x[q], g.y[q]);
            s += g.wj[q] * d * d;
        }
    }
    return std::sqrt(s);
}

} // namespace nektar
