#include "nektar/ns_serial.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "blaslite/blas.hpp"

namespace nektar {

SerialNS2d::SerialNS2d(std::shared_ptr<const Discretization> disc, SerialNsOptions opts)
    : SolverCore(opts.time_order, opts.dt, /*num_fields=*/2),
      disc_(std::move(disc)),
      opts_(opts),
      backend_(compute::resolve(opts.backend, disc_->backend())),
      pressure_solver_(disc_, 0.0, opts.pressure_bc) {
    velocity_solvers_.configure([this](double gamma0) {
        std::vector<HelmholtzDirect> v;
        v.emplace_back(disc_, gamma0 / (opts_.viscosity * opts_.dt), opts_.velocity_bc);
        return v;
    });
    // Warm the steady-state operator (the startup orders build on first use).
    (void)velocity_solvers_.get(opts_.time_order);
    const std::size_t nm = disc_->modal_size();
    const std::size_t nq = disc_->quad_size();
    u_modal_.assign(nm, 0.0);
    v_modal_.assign(nm, 0.0);
    p_modal_.assign(nm, 0.0);
    uq_.assign(nq, 0.0);
    vq_.assign(nq, 0.0);
    reset_state(nq);
    set_checkpoint_cadence(opts_.checkpoint_every);
    if (opts_.trace)
        configure_trace(opts_.trace_lane.empty() ? "solver" : opts_.trace_lane);
}

std::uint64_t SerialNS2d::options_fingerprint() const {
    ckpt::Fingerprint fp;
    fp.add("SerialNS2d")
        .add(compute::to_string(backend_))
        .add(opts_.dt)
        .add(opts_.viscosity)
        .add(static_cast<std::uint64_t>(opts_.time_order))
        .add(static_cast<std::uint64_t>(disc_->modal_size()))
        .add(static_cast<std::uint64_t>(disc_->quad_size()))
        .add(static_cast<std::uint64_t>(disc_->num_elements()))
        .add(static_cast<std::uint64_t>(disc_->dofmap().num_global()));
    return fp.value();
}

void SerialNS2d::save_state(ckpt::Checkpoint& c) const {
    // prhs_/urhs_/vrhs_ are intra-step scratch, reassigned before use — the
    // state vector is the modal fields plus their quadrature images.
    auto& w = c.add("fields");
    w.f64v(u_modal_);
    w.f64v(v_modal_);
    w.f64v(p_modal_);
    w.f64v(uq_);
    w.f64v(vq_);
}

void SerialNS2d::restore_state(const ckpt::Checkpoint& c) {
    auto r = c.open("fields");
    auto take = [&](std::vector<double>& dst) {
        std::vector<double> v = r.f64v();
        if (v.size() != dst.size()) r.fail("field size out of range");
        dst = std::move(v);
    };
    take(u_modal_);
    take(v_modal_);
    take(p_modal_);
    take(uq_);
    take(vq_);
    r.expect_end();
}

void SerialNS2d::load_state(const std::function<double(double, double)>& u0,
                            const std::function<double(double, double)>& v0) {
    disc_->eval_at_quad(u0, uq_);
    disc_->eval_at_quad(v0, vq_);
    disc_->project(uq_, u_modal_, backend_);
    disc_->project(vq_, v_modal_, backend_);
    // Re-evaluate at quad points from the projected modal field so state is
    // consistent (the projection is not interpolation).
    disc_->to_quad(u_modal_, uq_, backend_);
    disc_->to_quad(v_modal_, vq_, backend_);
}

void SerialNS2d::set_initial(const std::function<double(double, double)>& u0,
                             const std::function<double(double, double)>& v0) {
    reset_state(disc_->quad_size());
    load_state(u0, v0);
}

void SerialNS2d::set_initial_exact(const VelocityBC& u, const VelocityBC& v) {
    const std::size_t nq = disc_->quad_size();
    reset_state(nq);
    // Seed the history oldest-first: t = -(Je-1) dt, ..., -dt.
    for (int q = time_order() - 1; q >= 1; --q) {
        const double t = -static_cast<double>(q) * opts_.dt;
        load_state([&](double x, double y) { return u(x, y, t); },
                   [&](double x, double y) { return v(x, y, t); });
        std::vector<std::vector<double>> nl(2, std::vector<double>(nq));
        nonlinear(uq_, vq_, nl[0], nl[1]);
        push_history({uq_, vq_}, std::move(nl));
    }
    load_state([&](double x, double y) { return u(x, y, 0.0); },
               [&](double x, double y) { return v(x, y, 0.0); });
}

void SerialNS2d::nonlinear(const std::vector<double>& uq, const std::vector<double>& vq,
                           std::vector<double>& nu_out, std::vector<double>& nv_out) const {
    assert(nu_out.size() == disc_->quad_size() && nv_out.size() == disc_->quad_size());
    // N_u = -(u du/dx + v du/dy), N_v = -(u dv/dx + v dv/dy): batched
    // collocation derivatives with the chain rule, products and sign fused
    // into one scatter (compute::Backend::convect_planes).
    disc_->convect_planes(uq, vq, uq, vq, nu_out, nv_out, 1, backend_);
}

// Stage 1: transform modal -> quadrature space.
void SerialNS2d::stage_transform(const StepContext&) {
    disc_->to_quad(u_modal_, uq_, backend_);
    disc_->to_quad(v_modal_, vq_, backend_);
}

// Stage 2: nonlinear terms at quadrature points.
void SerialNS2d::stage_nonlinear(const StepContext&, std::vector<std::vector<double>>& nl) {
    nonlinear(uq_, vq_, nl[0], nl[1]);
}

// Stage 4: pressure Poisson RHS, - (div uhat / dt, v).
void SerialNS2d::stage_pressure_rhs(const StepContext& ctx,
                                    const std::vector<std::vector<double>>& hat) {
    const std::size_t nq = disc_->quad_size();
    prhs_.assign(disc_->dofmap().num_global(), 0.0);
    std::vector<double> div(nq), dx(nq), dy(nq);
    for (std::size_t e = 0; e < disc_->num_elements(); ++e) {
        disc_->ops(e).grad_collocation(disc_->quad_block(std::span<const double>(hat[0]), e),
                                       disc_->quad_block(std::span<double>(div), e),
                                       disc_->quad_block(std::span<double>(dy), e));
    }
    for (std::size_t e = 0; e < disc_->num_elements(); ++e) {
        disc_->ops(e).grad_collocation(disc_->quad_block(std::span<const double>(hat[1]), e),
                                       disc_->quad_block(std::span<double>(dx), e),
                                       disc_->quad_block(std::span<double>(dy), e));
    }
    blaslite::daxpy(1.0, dy, div);
    blaslite::dscal(-1.0 / ctx.dt, div);
    std::vector<double> local(disc_->modal_size(), 0.0);
    disc_->weak_inner(div, local, backend_);
    disc_->gather_add(local, prhs_);
}

// Stage 5: banded direct solve for the pressure.
void SerialNS2d::stage_pressure_solve(const StepContext&) {
    std::vector<double> pdir(disc_->dofmap().num_global(), 0.0);
    p_modal_ = pressure_solver_.solve_global(std::move(prhs_), pdir);
}

// Stage 6: Helmholtz RHS, u** = uhat - dt grad p, then scaled so that
// (grad u, grad v) + lambda (u, v) = (u** / (nu dt), v), lambda = gamma0/(nu dt).
void SerialNS2d::stage_viscous_rhs(const StepContext& ctx,
                                   std::vector<std::vector<double>>& hat) {
    const std::size_t nq = disc_->quad_size();
    std::vector<double> px(nq), py(nq);
    disc_->grad_from_modal(p_modal_, px, py, backend_);
    blaslite::daxpy(-ctx.dt, px, hat[0]);
    blaslite::daxpy(-ctx.dt, py, hat[1]);
    const double scale = 1.0 / (opts_.viscosity * ctx.dt);
    blaslite::dscal(scale, hat[0]);
    blaslite::dscal(scale, hat[1]);
    urhs_.assign(disc_->dofmap().num_global(), 0.0);
    vrhs_.assign(disc_->dofmap().num_global(), 0.0);
    std::vector<double> lu(disc_->modal_size(), 0.0), lv(disc_->modal_size(), 0.0);
    disc_->weak_inner(hat[0], lu, backend_);
    disc_->weak_inner(hat[1], lv, backend_);
    disc_->gather_add(lu, urhs_);
    disc_->gather_add(lv, vrhs_);
}

// Stage 7: banded direct Helmholtz solves with the operator of the step's
// *effective* order, so the implicit lambda matches the explicit weights.
void SerialNS2d::stage_viscous_solve(const StepContext& ctx) {
    const HelmholtzDirect& solver = velocity_solvers_.get(ctx.scheme.order).front();
    record_velocity_lambda(solver.lambda());
    const double tn1 = ctx.t_new;
    u_modal_ = solver.solve_global(
        std::move(urhs_),
        solver.dirichlet_vector([&](double x, double y) { return opts_.u_bc(x, y, tn1); }));
    v_modal_ = solver.solve_global(
        std::move(vrhs_),
        solver.dirichlet_vector([&](double x, double y) { return opts_.v_bc(x, y, tn1); }));
}

void SerialNS2d::end_step(const StepContext&) {
    disc_->to_quad(u_modal_, uq_, backend_);
    disc_->to_quad(v_modal_, vq_, backend_);
}

std::vector<double> SerialNS2d::vorticity_quad() const {
    const std::size_t nq = disc_->quad_size();
    std::vector<double> w(nq), dx(nq), dy(nq);
    disc_->grad_from_modal(v_modal_, w, dy, backend_);
    disc_->grad_from_modal(u_modal_, dx, dy, backend_);
    for (std::size_t q = 0; q < nq; ++q) w[q] -= dy[q];
    return w;
}

double SerialNS2d::divergence_norm() const {
    const std::size_t nq = disc_->quad_size();
    std::vector<double> div(nq), dx(nq), dy(nq);
    disc_->grad_from_modal(u_modal_, div, dy, backend_);
    disc_->grad_from_modal(v_modal_, dx, dy, backend_);
    for (std::size_t q = 0; q < nq; ++q) div[q] += dy[q];
    return disc_->l2_norm(div);
}

} // namespace nektar
