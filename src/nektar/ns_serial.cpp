#include "nektar/ns_serial.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "blaslite/blas.hpp"

namespace nektar {

SerialNS2d::SerialNS2d(std::shared_ptr<const Discretization> disc, NsOptions opts)
    : disc_(std::move(disc)),
      opts_(opts),
      gamma0_(opts.time_order == 1 ? 1.0 : 1.5),
      pressure_solver_(disc_, 0.0, opts.pressure_bc),
      velocity_solver_(disc_, gamma0_ / (opts.nu * opts.dt), opts.velocity_bc) {
    if (opts_.time_order != 1 && opts_.time_order != 2)
        throw std::invalid_argument("SerialNS2d: time_order must be 1 or 2");
    const std::size_t nm = disc_->modal_size();
    const std::size_t nq = disc_->quad_size();
    u_modal_.assign(nm, 0.0);
    v_modal_.assign(nm, 0.0);
    p_modal_.assign(nm, 0.0);
    uq_.assign(nq, 0.0);
    vq_.assign(nq, 0.0);
    uq_prev_.assign(nq, 0.0);
    vq_prev_.assign(nq, 0.0);
    for (auto* h : {&nu_hist_[0], &nu_hist_[1], &nv_hist_[0], &nv_hist_[1]})
        h->assign(nq, 0.0);
}

void SerialNS2d::set_initial(const std::function<double(double, double)>& u0,
                             const std::function<double(double, double)>& v0) {
    disc_->eval_at_quad(u0, uq_);
    disc_->eval_at_quad(v0, vq_);
    disc_->project(uq_, u_modal_);
    disc_->project(vq_, v_modal_);
    // Re-evaluate at quad points from the projected modal field so state is
    // consistent (the projection is not interpolation).
    disc_->to_quad(u_modal_, uq_);
    disc_->to_quad(v_modal_, vq_);
    uq_prev_ = uq_;
    vq_prev_ = vq_;
    time_ = 0.0;
    steps_taken_ = 0;
    nonlinear(uq_, vq_, nu_hist_[0], nv_hist_[0]);
    nu_hist_[1] = nu_hist_[0];
    nv_hist_[1] = nv_hist_[0];
}

void SerialNS2d::nonlinear(const std::vector<double>& uq, const std::vector<double>& vq,
                           std::vector<double>& nu_out, std::vector<double>& nv_out) const {
    const std::size_t nq = disc_->quad_size();
    assert(nu_out.size() == nq && nv_out.size() == nq);
    std::vector<double> dx(nq), dy(nq);
    // N_u = -(u du/dx + v du/dy)
    for (std::size_t e = 0; e < disc_->num_elements(); ++e) {
        auto ue = disc_->quad_block(std::span<const double>(uq), e);
        disc_->ops(e).grad_collocation(ue, disc_->quad_block(std::span<double>(dx), e),
                                       disc_->quad_block(std::span<double>(dy), e));
    }
    blaslite::dvmul(uq, dx, nu_out);
    blaslite::dvvtvp(vq, dy, nu_out);
    blaslite::dscal(-1.0, nu_out);
    for (std::size_t e = 0; e < disc_->num_elements(); ++e) {
        auto ve = disc_->quad_block(std::span<const double>(vq), e);
        disc_->ops(e).grad_collocation(ve, disc_->quad_block(std::span<double>(dx), e),
                                       disc_->quad_block(std::span<double>(dy), e));
    }
    blaslite::dvmul(uq, dx, nv_out);
    blaslite::dvvtvp(vq, dy, nv_out);
    blaslite::dscal(-1.0, nv_out);
}

void SerialNS2d::step() {
    const std::size_t nq = disc_->quad_size();
    const double dt = opts_.dt;
    const bool second_order = opts_.time_order == 2 && steps_taken_ >= 1;
    breakdown_.steps += 1;

    // Stage 1: transform modal -> quadrature space.
    {
        perf::StageScope scope(breakdown_, 1);
        disc_->to_quad(u_modal_, uq_);
        disc_->to_quad(v_modal_, vq_);
    }

    // Stage 2: nonlinear terms at quadrature points.
    std::vector<double> nu_new(nq), nv_new(nq);
    {
        perf::StageScope scope(breakdown_, 2);
        nonlinear(uq_, vq_, nu_new, nv_new);
    }

    // Stage 3: stiffly-stable weighting of velocity and nonlinear history:
    //   uhat = sum_q alpha_q u^{n-q} + dt sum_q beta_q N^{n-q}.
    std::vector<double> uhat(nq), vhat(nq);
    {
        perf::StageScope scope(breakdown_, 3);
        if (second_order) {
            // alpha = (2, -1/2), beta = (2, -1), gamma0 = 3/2.
            for (std::size_t q = 0; q < nq; ++q) {
                uhat[q] = 2.0 * uq_[q] - 0.5 * uq_prev_[q];
                vhat[q] = 2.0 * vq_[q] - 0.5 * vq_prev_[q];
            }
            blaslite::daxpy(2.0 * dt, nu_new, uhat);
            blaslite::daxpy(-dt, nu_hist_[0], uhat);
            blaslite::daxpy(2.0 * dt, nv_new, vhat);
            blaslite::daxpy(-dt, nv_hist_[0], vhat);
            blaslite::detail::charge(6 * nq, 4 * nq * sizeof(double), 2 * nq * sizeof(double));
        } else {
            blaslite::dcopy(uq_, uhat);
            blaslite::dcopy(vq_, vhat);
            blaslite::daxpy(dt, nu_new, uhat);
            blaslite::daxpy(dt, nv_new, vhat);
        }
    }
    const double g0 = second_order ? 1.5 : 1.0;

    // Stage 4: pressure Poisson RHS, - (div uhat / dt, v).
    std::vector<double> prhs(disc_->dofmap().num_global(), 0.0);
    {
        perf::StageScope scope(breakdown_, 4);
        std::vector<double> div(nq), dx(nq), dy(nq);
        for (std::size_t e = 0; e < disc_->num_elements(); ++e) {
            disc_->ops(e).grad_collocation(disc_->quad_block(std::span<const double>(uhat), e),
                                           disc_->quad_block(std::span<double>(div), e),
                                           disc_->quad_block(std::span<double>(dy), e));
        }
        for (std::size_t e = 0; e < disc_->num_elements(); ++e) {
            disc_->ops(e).grad_collocation(disc_->quad_block(std::span<const double>(vhat), e),
                                           disc_->quad_block(std::span<double>(dx), e),
                                           disc_->quad_block(std::span<double>(dy), e));
        }
        blaslite::daxpy(1.0, dy, div);
        blaslite::dscal(-1.0 / dt, div);
        std::vector<double> local(disc_->modal_size(), 0.0);
        disc_->weak_inner(div, local);
        disc_->gather_add(local, prhs);
    }

    // Stage 5: banded direct solve for the pressure.
    {
        perf::StageScope scope(breakdown_, 5);
        std::vector<double> pdir(disc_->dofmap().num_global(), 0.0);
        p_modal_ = pressure_solver_.solve_global(std::move(prhs), pdir);
    }

    // Stage 6: Helmholtz RHS, u** = uhat - dt grad p, f = gamma0 u** / (nu dt gamma0) ...
    // Helmholtz form: (grad u, grad v) + lambda (u, v) = (u** / (nu dt), v),
    // lambda = gamma0 / (nu dt).
    std::vector<double> urhs(disc_->dofmap().num_global(), 0.0);
    std::vector<double> vrhs(disc_->dofmap().num_global(), 0.0);
    {
        perf::StageScope scope(breakdown_, 6);
        std::vector<double> px(nq), py(nq);
        disc_->grad_from_modal(p_modal_, px, py);
        blaslite::daxpy(-dt, px, uhat);
        blaslite::daxpy(-dt, py, vhat);
        const double scale = 1.0 / (opts_.nu * dt);
        blaslite::dscal(scale, uhat);
        blaslite::dscal(scale, vhat);
        std::vector<double> lu(disc_->modal_size(), 0.0), lv(disc_->modal_size(), 0.0);
        disc_->weak_inner(uhat, lu);
        disc_->weak_inner(vhat, lv);
        disc_->gather_add(lu, urhs);
        disc_->gather_add(lv, vrhs);
    }

    // Stage 7: banded direct Helmholtz solves for the velocity.
    const double tn1 = time_ + dt;
    {
        perf::StageScope scope(breakdown_, 7);
        if (g0 != gamma0_) {
            // First step of a second-order run uses gamma0 = 1: fall back to a
            // dedicated solver so the operator matches the scheme.
            HelmholtzDirect first(disc_, g0 / (opts_.nu * dt), opts_.velocity_bc);
            uq_prev_ = uq_;
            vq_prev_ = vq_;
            u_modal_ = first.solve_global(std::move(urhs), first.dirichlet_vector([&](double x,
                                                                                      double y) {
                return opts_.u_bc(x, y, tn1);
            }));
            v_modal_ = first.solve_global(std::move(vrhs), first.dirichlet_vector([&](double x,
                                                                                      double y) {
                return opts_.v_bc(x, y, tn1);
            }));
        } else {
            uq_prev_ = uq_;
            vq_prev_ = vq_;
            u_modal_ = velocity_solver_.solve_global(
                std::move(urhs), velocity_solver_.dirichlet_vector(
                                     [&](double x, double y) { return opts_.u_bc(x, y, tn1); }));
            v_modal_ = velocity_solver_.solve_global(
                std::move(vrhs), velocity_solver_.dirichlet_vector(
                                     [&](double x, double y) { return opts_.v_bc(x, y, tn1); }));
        }
    }

    // Rotate the nonlinear history.
    nu_hist_[1] = std::move(nu_hist_[0]);
    nv_hist_[1] = std::move(nv_hist_[0]);
    nu_hist_[0] = std::move(nu_new);
    nv_hist_[0] = std::move(nv_new);

    disc_->to_quad(u_modal_, uq_);
    disc_->to_quad(v_modal_, vq_);
    time_ = tn1;
    ++steps_taken_;
}

std::vector<double> SerialNS2d::vorticity_quad() const {
    const std::size_t nq = disc_->quad_size();
    std::vector<double> w(nq), dx(nq), dy(nq);
    disc_->grad_from_modal(v_modal_, w, dy);
    disc_->grad_from_modal(u_modal_, dx, dy);
    for (std::size_t q = 0; q < nq; ++q) w[q] -= dy[q];
    return w;
}

double SerialNS2d::divergence_norm() const {
    const std::size_t nq = disc_->quad_size();
    std::vector<double> div(nq), dx(nq), dy(nq);
    disc_->grad_from_modal(u_modal_, div, dy);
    disc_->grad_from_modal(v_modal_, dx, dy);
    for (std::size_t q = 0; q < nq; ++q) div[q] += dy[q];
    return disc_->l2_norm(div);
}

} // namespace nektar
