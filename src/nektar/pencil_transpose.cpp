#include "nektar/pencil_transpose.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "obs/trace.hpp"

namespace nektar {

namespace {

/// Span on the calling rank's lane for one transpose entry point, stamped on
/// the virtual clock; inert without a comm or with tracing off.
class TransposeSpan {
public:
    TransposeSpan(simmpi::Comm* comm, const char* name) {
        if (comm == nullptr || !obs::active()) return;
        obs::Tracer& tr = obs::tracer();
        lane_ = tr.lane("rank " + std::to_string(comm->rank()));
        name_ = tr.intern(name);
        comm_ = comm;
        tr.begin(lane_, name_, comm_->wall_time(), /*virtual_time=*/true);
    }
    TransposeSpan(const TransposeSpan&) = delete;
    TransposeSpan& operator=(const TransposeSpan&) = delete;
    ~TransposeSpan() {
        if (comm_ != nullptr && obs::active())
            obs::tracer().end(lane_, name_, comm_->wall_time(), /*virtual_time=*/true);
    }

private:
    simmpi::Comm* comm_ = nullptr;
    obs::Lane* lane_ = nullptr;
    std::uint32_t name_ = 0;
};

/// Largest divisor of p that is <= sqrt(p): the most square grid shape.
std::size_t most_square_rows(std::size_t p) {
    std::size_t best = 1;
    for (std::size_t r = 1; r * r <= p; ++r)
        if (p % r == 0) best = r;
    return best;
}

} // namespace

PencilTranspose::PencilTranspose(simmpi::Comm* comm, std::size_t nq, std::size_t nplanes,
                                 std::size_t rows)
    : nq_(nq),
      nplanes_(nplanes),
      nranks_(comm ? static_cast<std::size_t>(comm->size()) : 1),
      chunk_((nq + nranks_ - 1) / nranks_) {
    rows_ = rows == 0 ? most_square_rows(nranks_) : rows;
    if (rows_ > nranks_ || nranks_ % rows_ != 0)
        throw std::invalid_argument("nektar: pencil_rows " + std::to_string(rows_) +
                                    " does not divide the rank count " +
                                    std::to_string(nranks_));
    cols_ = nranks_ / rows_;
    b1_ = rows_ * nplanes_ * chunk_;
    b2_ = cols_ * nplanes_ * chunk_;
    if (comm != nullptr && nranks_ > 1) {
        const std::size_t me = static_cast<std::size_t>(comm->rank());
        my_row_ = me / cols_;
        my_col_ = me % cols_;
        // Row comm: my_row_'s ranks ordered by column; column comm: my
        // column's ranks ordered by row.  Both splits run on every rank, so
        // the derived contexts are identical across the world.
        row_ = comm->split(static_cast<int>(my_row_), static_cast<int>(my_col_));
        col_ = comm->split(static_cast<int>(my_col_), static_cast<int>(my_row_));
    }
}

// ---------------------------------------------------------------------------
// Pack / unpack helpers
// ---------------------------------------------------------------------------

// Stage-1 send block for row peer cp: my nplanes planes at the points owned
// by grid column cp (ranks (rp, cp) for every rp).  Points past nq are the
// slab's padding zeros, so the final lines buffer matches bit-for-bit.
void PencilTranspose::pack_stage1(std::span<const double> planes,
                                  std::span<double> send) const {
    const std::size_t npc = nplanes_ * chunk_;
    for (std::size_t cp = 0; cp < cols_; ++cp) {
        for (std::size_t rp = 0; rp < rows_; ++rp) {
            const std::size_t base = cp * b1_ + rp * npc;
            const std::size_t i0 = (rp * cols_ + cp) * chunk_;
            for (std::size_t lp = 0; lp < nplanes_; ++lp)
                for (std::size_t ck = 0; ck < chunk_; ++ck) {
                    const std::size_t i = i0 + ck;
                    send[base + lp * chunk_ + ck] = i < nq_ ? planes[lp * nq_ + i] : 0.0;
                }
        }
    }
}

void PencilTranspose::unpack_planes(std::span<const double> recv,
                                    std::span<double> planes) const {
    const std::size_t npc = nplanes_ * chunk_;
    for (std::size_t cp = 0; cp < cols_; ++cp) {
        for (std::size_t rp = 0; rp < rows_; ++rp) {
            const std::size_t base = cp * b1_ + rp * npc;
            const std::size_t i0 = (rp * cols_ + cp) * chunk_;
            for (std::size_t lp = 0; lp < nplanes_; ++lp)
                for (std::size_t ck = 0; ck < chunk_; ++ck) {
                    const std::size_t i = i0 + ck;
                    if (i < nq_) planes[lp * nq_ + i] = recv[base + lp * chunk_ + ck];
                }
        }
    }
}

// Stage-1 recv -> the intermediate pencil M: block rp holds my column's
// points I((rp, my_col)) x my row's planes, point-major [ck * G + gl] with
// gl = cp * nplanes + lp indexing row peer cp's plane lp.  M is laid out so
// it IS the stage-2 send buffer: block rp goes to column peer rp, whose
// final chunk those points are.
void PencilTranspose::stage1_to_m(std::span<const double> recv1, std::span<double> m) const {
    const std::size_t npc = nplanes_ * chunk_;
    const std::size_t g = cols_ * nplanes_;
    for (std::size_t rp = 0; rp < rows_; ++rp)
        for (std::size_t cp = 0; cp < cols_; ++cp)
            for (std::size_t lp = 0; lp < nplanes_; ++lp) {
                const std::size_t gl = cp * nplanes_ + lp;
                const double* src = &recv1[cp * b1_ + rp * npc + lp * chunk_];
                double* dst = &m[rp * b2_ + gl];
                for (std::size_t ck = 0; ck < chunk_; ++ck) dst[ck * g] = src[ck];
            }
}

void PencilTranspose::m_to_stage1(std::span<const double> m, std::span<double> send1) const {
    const std::size_t npc = nplanes_ * chunk_;
    const std::size_t g = cols_ * nplanes_;
    for (std::size_t rp = 0; rp < rows_; ++rp)
        for (std::size_t cp = 0; cp < cols_; ++cp)
            for (std::size_t lp = 0; lp < nplanes_; ++lp) {
                const std::size_t gl = cp * nplanes_ + lp;
                const double* src = &m[rp * b2_ + gl];
                double* dst = &send1[cp * b1_ + rp * npc + lp * chunk_];
                for (std::size_t ck = 0; ck < chunk_; ++ck) dst[ck] = src[ck * g];
            }
}

// Stage-2 recv block rp carries my final points x grid row rp's planes,
// which are globally contiguous: plane gl of row rp is global plane
// rp * G + gl.  One copy per (peer, point) lands the lines layout.
void PencilTranspose::unpack_lines_slice(std::span<const double> recv2,
                                         std::span<double> lines, std::size_t pb,
                                         std::size_t pe) const {
    const std::size_t g = cols_ * nplanes_;
    const std::size_t tp = total_planes();
    for (std::size_t rp = 0; rp < rows_; ++rp)
        for (std::size_t ck = pb; ck < pe; ++ck)
            std::copy_n(&recv2[rp * b2_ + ck * g], g, &lines[ck * tp + rp * g]);
}

void PencilTranspose::pack_lines_slice(std::span<const double> lines,
                                       std::span<double> send2, std::size_t pb,
                                       std::size_t pe) const {
    const std::size_t g = cols_ * nplanes_;
    const std::size_t tp = total_planes();
    for (std::size_t rp = 0; rp < rows_; ++rp)
        for (std::size_t ck = pb; ck < pe; ++ck)
            std::copy_n(&lines[ck * tp + rp * g], g, &send2[rp * b2_ + ck * g]);
}

// ---------------------------------------------------------------------------
// Blocking mode
// ---------------------------------------------------------------------------

void PencilTranspose::to_lines(simmpi::Comm* comm, std::span<const double> planes,
                               std::span<double> lines) const {
    assert(planes.size() == planes_buffer_size());
    assert(lines.size() == lines_buffer_size());
    const TransposeSpan span(comm, "transpose.pencil_to_lines");
    if (nranks_ == 1) {
        const std::size_t tp = total_planes();
        for (std::size_t i = 0; i < chunk_; ++i)
            for (std::size_t lp = 0; lp < nplanes_; ++lp)
                lines[i * tp + lp] = i < nq_ ? planes[lp * nq_ + i] : 0.0;
        return;
    }
    std::vector<double> send1(b1_ * cols_), recv1(b1_ * cols_);
    pack_stage1(planes, send1);
    row_.alltoall(send1, recv1, b1_);
    std::vector<double> m(b2_ * rows_), recv2(b2_ * rows_);
    stage1_to_m(recv1, m);
    col_.alltoall(m, recv2, b2_);
    unpack_lines_slice(recv2, lines, 0, chunk_);
}

void PencilTranspose::to_planes(simmpi::Comm* comm, std::span<const double> lines,
                                std::span<double> planes) const {
    assert(planes.size() == planes_buffer_size());
    assert(lines.size() == lines_buffer_size());
    const TransposeSpan span(comm, "transpose.pencil_to_planes");
    if (nranks_ == 1) {
        const std::size_t tp = total_planes();
        for (std::size_t lp = 0; lp < nplanes_; ++lp)
            for (std::size_t i = 0; i < nq_; ++i) planes[lp * nq_ + i] = lines[i * tp + lp];
        return;
    }
    std::vector<double> send2(b2_ * rows_), mprime(b2_ * rows_);
    pack_lines_slice(lines, send2, 0, chunk_);
    col_.alltoall(send2, mprime, b2_);
    std::vector<double> send1(b1_ * cols_), recv1(b1_ * cols_);
    m_to_stage1(mprime, send1);
    row_.alltoall(send1, recv1, b1_);
    unpack_planes(recv1, planes);
}

// ---------------------------------------------------------------------------
// Overlapped (pipelined) mode
// ---------------------------------------------------------------------------
//
// Stage 1 has nothing to overlap against (no final point is complete until
// stage 2 delivers it), so it ships whole through one nonblocking exchange;
// the pipeline cuts on stage 2, whose point-major blocks slice on runs of
// final points exactly like the slab's single exchange does.

void PencilTranspose::to_lines_overlapped(
    simmpi::Comm* comm, std::span<const double> planes, std::span<double> lines,
    std::size_t nslices, const std::function<void(std::size_t, std::size_t)>& on_ready) const {
    assert(planes.size() == planes_buffer_size());
    assert(lines.size() == lines_buffer_size());
    const TransposeSpan span(comm, "transpose.pencil_to_lines_overlapped");
    if (comm == nullptr || nranks_ == 1) {
        to_lines(comm, planes, lines);
        if (on_ready) on_ready(0, chunk_);
        return;
    }
    const std::size_t g = cols_ * nplanes_;
    std::vector<double> send1(b1_ * cols_), recv1(b1_ * cols_);
    pack_stage1(planes, send1);
    simmpi::Ialltoall h1 = row_.ialltoall(recv1, b1_, 1);
    h1.send_slice(0, send1);
    h1.finish();
    std::vector<double> m(b2_ * rows_), recv2(b2_ * rows_);
    stage1_to_m(recv1, m);
    simmpi::Ialltoall h2 = col_.ialltoall(recv2, b2_, nslices, g);
    for (std::size_t s = 0; s < h2.num_slices(); ++s) h2.send_slice(s, m);
    for (std::size_t s = 0; s < h2.num_slices(); ++s) {
        const std::size_t pb = h2.slice_offset(s) / g;
        const std::size_t pe = pb + h2.slice_len(s) / g;
        h2.wait_slice(s);
        unpack_lines_slice(recv2, lines, pb, pe);
        if (on_ready) on_ready(pb, pe);
    }
}

void PencilTranspose::to_planes_overlapped(
    simmpi::Comm* comm, std::span<const double> lines, std::span<double> planes,
    std::size_t nslices, const std::function<void(std::size_t, std::size_t)>& produce) const {
    assert(planes.size() == planes_buffer_size());
    assert(lines.size() == lines_buffer_size());
    const TransposeSpan span(comm, "transpose.pencil_to_planes_overlapped");
    if (comm == nullptr || nranks_ == 1) {
        if (produce) produce(0, chunk_);
        to_planes(comm, lines, planes);
        return;
    }
    const std::size_t g = cols_ * nplanes_;
    std::vector<double> send2(b2_ * rows_), mprime(b2_ * rows_);
    simmpi::Ialltoall h2 = col_.ialltoall(mprime, b2_, nslices, g);
    for (std::size_t s = 0; s < h2.num_slices(); ++s) {
        const std::size_t pb = h2.slice_offset(s) / g;
        const std::size_t pe = pb + h2.slice_len(s) / g;
        if (produce) produce(pb, pe);
        pack_lines_slice(lines, send2, pb, pe);
        h2.send_slice(s, send2);
    }
    h2.finish();
    std::vector<double> send1(b1_ * cols_), recv1(b1_ * cols_);
    m_to_stage1(mprime, send1);
    simmpi::Ialltoall h1 = row_.ialltoall(recv1, b1_, 1);
    h1.send_slice(0, send1);
    h1.finish();
    unpack_planes(recv1, planes);
}

void PencilTranspose::roundtrip_overlapped(
    simmpi::Comm* comm, const std::vector<std::span<const double>>& planes_in,
    const std::vector<std::span<double>>& lines_in,
    const std::vector<std::span<const double>>& lines_out,
    const std::vector<std::span<double>>& planes_out, std::size_t nslices,
    const std::function<void(std::size_t, std::size_t)>& compute) const {
    assert(planes_in.size() == lines_in.size());
    assert(lines_out.size() == planes_out.size());
    const TransposeSpan span(comm, "transpose.pencil_roundtrip_overlapped");
    if (comm == nullptr || nranks_ == 1) {
        for (std::size_t f = 0; f < planes_in.size(); ++f)
            to_lines(comm, planes_in[f], lines_in[f]);
        compute(0, chunk_);
        for (std::size_t f = 0; f < lines_out.size(); ++f)
            to_planes(comm, lines_out[f], planes_out[f]);
        return;
    }
    const std::size_t g = cols_ * nplanes_;
    const std::size_t nf_in = planes_in.size();
    const std::size_t nf_out = lines_out.size();
    if (nf_in == 0 && nf_out == 0) {
        compute(0, chunk_);
        return;
    }
    // Forward stage 1: every field's exchange posts before any completes, so
    // their transfers queue on the NIC back-to-back instead of syncing one
    // field at a time.
    std::vector<std::vector<double>> s1in(nf_in), r1in(nf_in);
    std::vector<simmpi::Ialltoall> h1in(nf_in);
    for (std::size_t f = 0; f < nf_in; ++f) {
        s1in[f].resize(b1_ * cols_);
        r1in[f].resize(b1_ * cols_);
        pack_stage1(planes_in[f], s1in[f]);
        h1in[f] = row_.ialltoall(r1in[f], b1_, 1);
        h1in[f].send_slice(0, s1in[f]);
    }
    std::vector<std::vector<double>> min(nf_in), r2in(nf_in);
    std::vector<simmpi::Ialltoall> h2in(nf_in);
    for (std::size_t f = 0; f < nf_in; ++f) {
        h1in[f].finish();
        min[f].resize(b2_ * rows_);
        r2in[f].resize(b2_ * rows_);
        stage1_to_m(r1in[f], min[f]);
        h2in[f] = col_.ialltoall(r2in[f], b2_, nslices, g);
    }
    std::vector<std::vector<double>> s2out(nf_out), mpout(nf_out);
    std::vector<simmpi::Ialltoall> h2out(nf_out);
    for (std::size_t f = 0; f < nf_out; ++f) {
        s2out[f].resize(b2_ * rows_);
        mpout[f].resize(b2_ * rows_);
        h2out[f] = col_.ialltoall(mpout[f], b2_, nslices, g);
    }
    const simmpi::Ialltoall& geom = nf_in ? h2in[0] : h2out[0];
    const std::size_t ns = geom.num_slices();
    const auto point_range = [&](std::size_t s) {
        const std::size_t pb = geom.slice_offset(s) / g;
        return std::pair{pb, pb + geom.slice_len(s) / g};
    };
    // Ship every forward stage-2 slice up front, then drain: compute on
    // slice s runs under slices s+1.. still in flight, and each slice's
    // results start their reverse stage-2 journey immediately.
    for (std::size_t s = 0; s < ns; ++s)
        for (std::size_t f = 0; f < nf_in; ++f) h2in[f].send_slice(s, min[f]);
    for (std::size_t s = 0; s < ns; ++s) {
        const auto [pb, pe] = point_range(s);
        for (std::size_t f = 0; f < nf_in; ++f) {
            h2in[f].wait_slice(s);
            unpack_lines_slice(r2in[f], lines_in[f], pb, pe);
        }
        compute(pb, pe);
        for (std::size_t f = 0; f < nf_out; ++f) {
            pack_lines_slice(lines_out[f], s2out[f], pb, pe);
            h2out[f].send_slice(s, s2out[f]);
        }
    }
    // Drain the reverse stage 2 and run the reverse stage 1, again with
    // every field's exchange posted before any completes.
    std::vector<std::vector<double>> s1out(nf_out), r1out(nf_out);
    std::vector<simmpi::Ialltoall> h1out(nf_out);
    for (std::size_t f = 0; f < nf_out; ++f) {
        h2out[f].finish();
        s1out[f].resize(b1_ * cols_);
        r1out[f].resize(b1_ * cols_);
        m_to_stage1(mpout[f], s1out[f]);
        h1out[f] = row_.ialltoall(r1out[f], b1_, 1);
        h1out[f].send_slice(0, s1out[f]);
    }
    for (std::size_t f = 0; f < nf_out; ++f) {
        h1out[f].finish();
        unpack_planes(r1out[f], planes_out[f]);
    }
}

// ---------------------------------------------------------------------------
// Checkpoint hooks
// ---------------------------------------------------------------------------

void PencilTranspose::save_state(ckpt::SectionWriter& w) const {
    row_.save_group_state(w);
    col_.save_group_state(w);
}

void PencilTranspose::restore_state(ckpt::SectionReader& r) {
    row_.restore_group_state(r);
    col_.restore_group_state(r);
    r.expect_end();
}

} // namespace nektar
