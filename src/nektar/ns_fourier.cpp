#include "nektar/ns_fourier.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "blaslite/blas.hpp"
#include "nektar/fourier_transpose.hpp"
#include "nektar/pencil_transpose.hpp"
#include "parallel/thread_pool.hpp"

namespace nektar {

namespace {
constexpr int kStageTranspose = 2; // comm events of the nonlinear step

std::unique_ptr<Transpose> make_transpose(const FourierNsOptions& opts, simmpi::Comm* comm,
                                          std::size_t nq, std::size_t nplanes) {
    if (opts.transpose == TransposeKind::Pencil)
        return std::make_unique<PencilTranspose>(comm, nq, nplanes, opts.pencil_rows);
    return std::make_unique<FourierTranspose>(comm, nq, nplanes);
}

} // namespace

FourierNS::FourierNS(std::shared_ptr<const Discretization> disc, FourierNsOptions opts,
                     simmpi::Comm* comm)
    : SolverCore(opts.time_order, opts.dt, /*num_fields=*/3),
      disc_(std::move(disc)),
      opts_(opts),
      backend_(compute::resolve(opts.backend, disc_->backend())),
      comm_(comm),
      mloc_(opts.num_modes / (comm ? static_cast<std::size_t>(comm->size()) : 1)),
      nplanes_(2 * mloc_),
      transpose_(make_transpose(opts, comm, disc_->quad_size(), nplanes_)),
      zplan_(2 * opts.num_modes) {
    const std::size_t nranks = comm ? static_cast<std::size_t>(comm->size()) : 1;
    if (opts_.num_modes % nranks != 0)
        throw std::invalid_argument("FourierNS: num_modes must divide by ranks");
    if (mloc_ == 0) throw std::invalid_argument("FourierNS: fewer modes than ranks");

    // Per-mode direct solvers: pressure lambda = beta_k^2, velocity
    // lambda = gamma0/(nu dt) + beta_k^2 (the paper's "direct solvers may be
    // employed for the solution of 2D Helmholtz problems on each processor").
    pressure_.reserve(mloc_);
    for (std::size_t j = 0; j < mloc_; ++j) {
        const double bk = beta(global_mode(j));
        HelmholtzBC pbc = opts_.pressure_bc;
        // Only the mean (k = 0) Poisson problem is singular without Dirichlet
        // data; shifted modes must not be pinned.
        if (global_mode(j) != 0) pbc.pin_first_dof = false;
        pressure_.emplace_back(disc_, bk * bk, pbc);
    }
    velocity_solvers_.configure([this](double gamma0) {
        std::vector<HelmholtzDirect> v;
        v.reserve(mloc_);
        for (std::size_t j = 0; j < mloc_; ++j) {
            const double bk = beta(global_mode(j));
            v.emplace_back(disc_, gamma0 / (opts_.viscosity * opts_.dt) + bk * bk,
                           opts_.velocity_bc);
        }
        return v;
    });
    // Warm the steady-state operators (startup orders build on first use).
    (void)velocity_solvers_.get(opts_.time_order);

    const std::size_t nm = nplanes_ * disc_->modal_size();
    const std::size_t nq = nplanes_ * disc_->quad_size();
    for (int c = 0; c < 3; ++c) {
        modal_[c].assign(nm, 0.0);
        quad_[c].assign(nq, 0.0);
    }
    p_modal_.assign(nm, 0.0);
    reset_state(nq);
    set_checkpoint_cadence(opts_.checkpoint_every);
    if (opts_.trace) {
        std::string lane = opts_.trace_lane;
        if (lane.empty()) lane = comm_ ? "rank " + std::to_string(comm_->rank()) : "solver";
        // Comm-backed ranks stamp stage spans on the seeded virtual clock so
        // the trace stream is bit-deterministic; serial runs use host time.
        if (comm_ != nullptr)
            configure_trace(lane, [c = comm_]() { return c->wall_time(); });
        else
            configure_trace(lane);
    }
}

std::uint64_t FourierNS::options_fingerprint() const {
    ckpt::Fingerprint fp;
    fp.add("FourierNS")
        .add(compute::to_string(backend_))
        .add(opts_.dt)
        .add(opts_.viscosity)
        .add(static_cast<std::uint64_t>(opts_.time_order))
        .add(static_cast<std::uint64_t>(opts_.num_modes))
        .add(opts_.lz)
        .add(static_cast<std::uint64_t>(mloc_))
        .add(static_cast<std::uint64_t>(comm_ ? comm_->size() : 1))
        .add(static_cast<std::uint64_t>(disc_->modal_size()))
        .add(static_cast<std::uint64_t>(disc_->quad_size()))
        .add(static_cast<std::uint64_t>(opts_.transpose))
        .add(static_cast<std::uint64_t>(opts_.pencil_rows));
    return fp.value();
}

void FourierNS::save_state(ckpt::Checkpoint& c) const {
    auto& w = c.add("fields");
    for (int comp = 0; comp < 3; ++comp) w.f64v(modal_[comp]);
    for (int comp = 0; comp < 3; ++comp) w.f64v(quad_[comp]);
    w.f64v(p_modal_);
    // The rank's virtual clocks, comm logs and fault-stream position: a
    // restored rank replays the remaining steps with identical message costs.
    if (comm_ != nullptr) comm_->save_state(c.add("comm"));
    // Subcommunicator progress (the pencil's row/column collective tag and
    // split sequences) rides in its own section.
    if (transpose_->has_state()) transpose_->save_state(c.add("transpose"));
}

void FourierNS::restore_state(const ckpt::Checkpoint& c) {
    auto r = c.open("fields");
    auto take = [&](std::vector<double>& dst) {
        std::vector<double> v = r.f64v();
        if (v.size() != dst.size()) r.fail("field size out of range");
        dst = std::move(v);
    };
    for (int comp = 0; comp < 3; ++comp) take(modal_[comp]);
    for (int comp = 0; comp < 3; ++comp) take(quad_[comp]);
    take(p_modal_);
    r.expect_end();
    if (comm_ != nullptr) {
        auto cr = c.open("comm");
        comm_->restore_state(cr);
    }
    // The transpose was constructed (and its splits re-derived, in the
    // original deterministic order) before restore, so this only has to
    // verify the contexts and reload the subcomm sequences.
    if (transpose_->has_state()) {
        auto tr = c.open("transpose");
        transpose_->restore_state(tr);
    }
}

std::size_t FourierNS::global_mode(std::size_t local) const noexcept {
    const std::size_t base = comm_ ? static_cast<std::size_t>(comm_->rank()) * mloc_ : 0;
    return base + local;
}

double FourierNS::beta(std::size_t k) const noexcept {
    return 2.0 * std::numbers::pi * static_cast<double>(k) / opts_.lz;
}

std::span<const double> FourierNS::plane_quad(int c, std::size_t p) const {
    const std::size_t nq = disc_->quad_size();
    return {quad_[c].data() + p * nq, nq};
}

void FourierNS::load_state(const Field3Fn& u0, const Field3Fn& v0, const Field3Fn& w0) {
    const std::size_t nq = disc_->quad_size();
    const std::size_t nz = 2 * opts_.num_modes;
    const Field3Fn* fns[3] = {&u0, &v0, &w0};
    std::vector<double> zline(nz);
    // Sample each quadrature point's z-line, transform, keep local modes.
    for (int c = 0; c < 3; ++c) {
        std::vector<double> plane_quads(nplanes_ * nq);
        for (std::size_t e = 0; e < disc_->num_elements(); ++e) {
            const auto& g = disc_->ops(e).geometry();
            for (std::size_t q = 0; q < disc_->ops(e).num_quad(); ++q) {
                const std::size_t i = disc_->quad_offset(e) + q;
                for (std::size_t j = 0; j < nz; ++j) {
                    const double z = opts_.lz * static_cast<double>(j) / static_cast<double>(nz);
                    zline[j] = (*fns[c])(g.x[q], g.y[q], z);
                }
                const auto spec = fft::rfft(zplan_, zline);
                for (std::size_t m = 0; m < mloc_; ++m) {
                    const std::size_t k = global_mode(m);
                    // Store DFT coefficients scaled by 1/Nz so that
                    // u(z) = sum_k u_k exp(i beta_k z) + c.c. holds directly.
                    plane_quads[(2 * m) * nq + i] = spec[k].real() / static_cast<double>(nz);
                    plane_quads[(2 * m + 1) * nq + i] = spec[k].imag() / static_cast<double>(nz);
                }
            }
        }
        quad_[c] = plane_quads;
        disc_->project_planes(quad_[c], modal_[c], nplanes_, backend_);
        // Consistent quad values from the projected coefficients.
        disc_->to_quad_planes(modal_[c], quad_[c], nplanes_, backend_);
    }
}

void FourierNS::set_initial(const Field3Fn& u0, const Field3Fn& v0, const Field3Fn& w0) {
    reset_state(nplanes_ * disc_->quad_size());
    load_state(u0, v0, w0);
}

void FourierNS::set_initial_exact(const TimeField3Fn& u, const TimeField3Fn& v,
                                  const TimeField3Fn& w) {
    const std::size_t n = nplanes_ * disc_->quad_size();
    reset_state(n);
    // Seed the history oldest-first: t = -(Je-1) dt, ..., -dt.
    for (int q = time_order() - 1; q >= 1; --q) {
        const double t = -static_cast<double>(q) * opts_.dt;
        load_state([&](double x, double y, double z) { return u(x, y, z, t); },
                   [&](double x, double y, double z) { return v(x, y, z, t); },
                   [&](double x, double y, double z) { return w(x, y, z, t); });
        std::vector<std::vector<double>> nl(3, std::vector<double>(n));
        nonlinear(nl);
        push_history({quad_[0], quad_[1], quad_[2]}, std::move(nl));
    }
    load_state([&](double x, double y, double z) { return u(x, y, z, 0.0); },
               [&](double x, double y, double z) { return v(x, y, z, 0.0); },
               [&](double x, double y, double z) { return w(x, y, z, 0.0); });
}

void FourierNS::transform_all_to_quad() {
    // All local planes of a component fuse into the batch dimension: on a
    // single-group mesh this is one dgemm per component.
    for (int c = 0; c < 3; ++c) disc_->to_quad_planes(modal_[c], quad_[c], nplanes_, backend_);
}

void FourierNS::nonlinear(std::vector<std::vector<double>>& nl) {
    const std::size_t nq = disc_->quad_size();
    const std::size_t nz = 2 * opts_.num_modes;
    const std::size_t tp = transpose_->total_planes(); // 2 * M
    const std::size_t chunk = transpose_->chunk();
    if (comm_) comm_->set_stage(kStageTranspose);

    // 1./2./3. Transpose the three velocity components to z-line layout,
    // inverse FFT each point's spectrum, form the six quadratic products in
    // physical z, forward FFT back, and transpose the products to plane
    // layout.  Divergence form:
    //    N_i = -(d/dx (u u_i) + d/dy (v u_i) + d/dz (w u_i)).
    static constexpr int prod_of[6][2] = {{0, 0}, {0, 1}, {0, 2}, {1, 1}, {1, 2}, {2, 2}};
    std::vector<std::vector<double>> lines(3, std::vector<double>(transpose_->lines_buffer_size()));
    std::vector<std::vector<double>> plines(
        6, std::vector<double>(transpose_->lines_buffer_size(), 0.0));
    std::vector<std::vector<double>> pplanes(
        6, std::vector<double>(transpose_->planes_buffer_size()));
    std::vector<std::vector<double>> phys(3, std::vector<double>(nz));
    std::vector<fft::cplx> spec(opts_.num_modes + 1);
    std::vector<double> prod(nz);
    // The z-line work for points [b, e); in overlapped mode it runs slice by
    // slice between the pipelined exchanges' waits.
    const auto compute_lines = [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
            for (int c = 0; c < 3; ++c) {
                for (std::size_t k = 0; k < opts_.num_modes; ++k)
                    spec[k] = fft::cplx{lines[c][i * tp + 2 * k], lines[c][i * tp + 2 * k + 1]} *
                              static_cast<double>(nz);
                spec[opts_.num_modes] = fft::cplx{0.0, 0.0}; // Nyquist
                phys[static_cast<std::size_t>(c)] = fft::irfft(zplan_, spec);
            }
            for (int pr = 0; pr < 6; ++pr) {
                const auto& a = phys[static_cast<std::size_t>(prod_of[pr][0])];
                const auto& b2 = phys[static_cast<std::size_t>(prod_of[pr][1])];
                for (std::size_t j = 0; j < nz; ++j) prod[j] = a[j] * b2[j];
                const auto pspec = fft::rfft(zplan_, prod);
                for (std::size_t k = 0; k < opts_.num_modes; ++k) {
                    plines[static_cast<std::size_t>(pr)][i * tp + 2 * k] =
                        pspec[k].real() / static_cast<double>(nz);
                    plines[static_cast<std::size_t>(pr)][i * tp + 2 * k + 1] =
                        pspec[k].imag() / static_cast<double>(nz);
                }
            }
        }
        if (comm_ && opts_.virtual_compute_flops > 0.0 && e > b) {
            // 9 z-FFTs (~5 nz log2 nz flops each) plus 6 pointwise products
            // per line, charged at the nominal rate.
            const double flops_per_line =
                (45.0 * std::log2(static_cast<double>(nz)) + 6.0) * static_cast<double>(nz);
            comm_->advance_compute(static_cast<double>(e - b) * flops_per_line /
                                   opts_.virtual_compute_flops);
        }
    };

    if (opts_.overlap_transpose && comm_ && comm_->size() > 1) {
        const std::vector<std::span<const double>> pin = {quad_[0], quad_[1], quad_[2]};
        const std::vector<std::span<double>> lin = {lines[0], lines[1], lines[2]};
        std::vector<std::span<const double>> lout;
        std::vector<std::span<double>> pout;
        for (int pr = 0; pr < 6; ++pr) {
            lout.emplace_back(plines[static_cast<std::size_t>(pr)]);
            pout.emplace_back(pplanes[static_cast<std::size_t>(pr)]);
        }
        transpose_->roundtrip_overlapped(comm_, pin, lin, lout, pout, opts_.overlap_slices,
                                        compute_lines);
    } else {
        for (int c = 0; c < 3; ++c) transpose_->to_lines(comm_, quad_[c], lines[c]);
        compute_lines(0, chunk);
        for (int pr = 0; pr < 6; ++pr)
            transpose_->to_planes(comm_, plines[static_cast<std::size_t>(pr)],
                                 pplanes[static_cast<std::size_t>(pr)]);
    }
    if (comm_) comm_->set_stage(-1);

    // 4. Differentiate in plane space: N_c = -(dx P_xc + dy P_yc + i beta P_zc).
    //    Component products: u -> (uu, uv, uw), v -> (uv, vv, vw), w -> (uw, vw, ww).
    static constexpr int comp_prods[3][3] = {{0, 1, 2}, {1, 3, 4}, {2, 4, 5}};
    std::vector<double> dx(nq), dy(nq);
    for (int c = 0; c < 3; ++c) {
        auto& out = nl[static_cast<std::size_t>(c)];
        std::fill(out.begin(), out.end(), 0.0);
        for (std::size_t m = 0; m < mloc_; ++m) {
            const double bk = beta(global_mode(m));
            for (int reim = 0; reim < 2; ++reim) {
                const std::size_t p = 2 * m + static_cast<std::size_t>(reim);
                auto outp = std::span<double>(out).subspan(p * nq, nq);
                // x and y derivative terms.
                for (int d = 0; d < 2; ++d) {
                    const auto& pp = pplanes[static_cast<std::size_t>(comp_prods[c][d])];
                    auto ppp = std::span<const double>(pp).subspan(p * nq, nq);
                    for (std::size_t e = 0; e < disc_->num_elements(); ++e) {
                        disc_->ops(e).grad_collocation(
                            disc_->quad_block(ppp, e),
                            disc_->quad_block(std::span<double>(dx), e),
                            disc_->quad_block(std::span<double>(dy), e));
                    }
                    blaslite::daxpy(-1.0, d == 0 ? dx : dy, outp);
                }
                // z derivative: i*beta couples the re/im partner plane.
                const auto& pz = pplanes[static_cast<std::size_t>(comp_prods[c][2])];
                const std::size_t partner = 2 * m + static_cast<std::size_t>(1 - reim);
                auto pzp = std::span<const double>(pz).subspan(partner * nq, nq);
                // d/dz (re) = -beta * im; d/dz (im) = +beta * re.
                blaslite::daxpy(reim == 0 ? bk : -bk, pzp, outp);
            }
        }
    }
}

// Stage 1: modal -> quadrature for every plane of u, v, w.
void FourierNS::stage_transform(const StepContext&) { transform_all_to_quad(); }

// Stage 2: nonlinear terms (transposes + z FFTs + products + derivatives).
void FourierNS::stage_nonlinear(const StepContext&, std::vector<std::vector<double>>& nl) {
    nonlinear(nl);
}

// Stage 4: per-plane pressure RHS from the Fourier-space divergence.
void FourierNS::stage_pressure_rhs(const StepContext& ctx,
                                   const std::vector<std::vector<double>>& hat) {
    const std::size_t nq = disc_->quad_size();
    prhs_.assign(nplanes_, std::vector<double>(disc_->dofmap().num_global(), 0.0));
    std::vector<double> div(nq), dx(nq), dy(nq), local(disc_->modal_size());
    for (std::size_t m = 0; m < mloc_; ++m) {
        const double bk = beta(global_mode(m));
        for (int reim = 0; reim < 2; ++reim) {
            const std::size_t p = 2 * m + static_cast<std::size_t>(reim);
            auto up = std::span<const double>(hat[0]).subspan(p * nq, nq);
            auto vp = std::span<const double>(hat[1]).subspan(p * nq, nq);
            for (std::size_t e = 0; e < disc_->num_elements(); ++e)
                disc_->ops(e).grad_collocation(disc_->quad_block(up, e),
                                               disc_->quad_block(std::span<double>(div), e),
                                               disc_->quad_block(std::span<double>(dy), e));
            for (std::size_t e = 0; e < disc_->num_elements(); ++e)
                disc_->ops(e).grad_collocation(disc_->quad_block(vp, e),
                                               disc_->quad_block(std::span<double>(dx), e),
                                               disc_->quad_block(std::span<double>(dy), e));
            blaslite::daxpy(1.0, dy, div);
            // + d/dz w: i beta couples planes.
            const std::size_t partner = 2 * m + static_cast<std::size_t>(1 - reim);
            auto wp = std::span<const double>(hat[2]).subspan(partner * nq, nq);
            blaslite::daxpy(reim == 0 ? -bk : bk, wp, div);
            blaslite::dscal(-1.0 / ctx.dt, div);
            std::fill(local.begin(), local.end(), 0.0);
            disc_->weak_inner(div, local, backend_);
            disc_->gather_add(local, prhs_[p]);
        }
    }
}

// Stage 5: per-mode direct pressure solves, split across the thread pool
// (each plane's solve runs whole on one thread, so results and the
// counter-derived compute charge are independent of the pool size).
void FourierNS::stage_pressure_solve(const StepContext&) {
    const std::size_t nm = disc_->modal_size();
    const std::vector<double> zero(disc_->dofmap().num_global(), 0.0);
    parallel::pool().parallel_for(nplanes_, [&](std::size_t p0, std::size_t p1) {
        for (std::size_t p = p0; p < p1; ++p) {
            const std::size_t m = p / 2;
            const auto sol = pressure_[m].solve_global(std::move(prhs_[p]), zero);
            std::copy(sol.begin(), sol.end(),
                      p_modal_.begin() + static_cast<std::ptrdiff_t>(p * nm));
        }
    });
}

// Stage 6: Helmholtz RHS: u** = uhat - dt grad p, scaled by 1/(nu dt).
void FourierNS::stage_viscous_rhs(const StepContext& ctx,
                                  std::vector<std::vector<double>>& hat) {
    const std::size_t nq = disc_->quad_size();
    vrhs_.assign(3 * nplanes_, std::vector<double>(disc_->dofmap().num_global(), 0.0));
    const double dt = ctx.dt;
    const double scale = 1.0 / (opts_.viscosity * dt);
    // Batched over every plane at once: the in-plane pressure gradient,
    // the plane interpolation for dp/dz, and the weak inner products.
    std::vector<double> px(nplanes_ * nq), py(nplanes_ * nq), pquad(nplanes_ * nq);
    disc_->grad_from_modal_planes(p_modal_, px, py, nplanes_, backend_);
    disc_->to_quad_planes(p_modal_, pquad, nplanes_, backend_);
    for (std::size_t m = 0; m < mloc_; ++m) {
        const double bk = beta(global_mode(m));
        for (int reim = 0; reim < 2; ++reim) {
            const std::size_t p = 2 * m + static_cast<std::size_t>(reim);
            auto hu = std::span<double>(hat[0]).subspan(p * nq, nq);
            auto hv = std::span<double>(hat[1]).subspan(p * nq, nq);
            blaslite::daxpy(-dt, std::span<const double>(px).subspan(p * nq, nq), hu);
            blaslite::daxpy(-dt, std::span<const double>(py).subspan(p * nq, nq), hv);
            // dp/dz on the partner plane of w.
            const std::size_t partner = 2 * m + static_cast<std::size_t>(1 - reim);
            auto pq = std::span<const double>(pquad).subspan(partner * nq, nq);
            auto hw = std::span<double>(hat[2]).subspan(p * nq, nq);
            blaslite::daxpy(reim == 0 ? dt * bk : -dt * bk, pq, hw);
        }
    }
    std::vector<double> local(nplanes_ * disc_->modal_size());
    for (int c = 0; c < 3; ++c) {
        blaslite::dscal(scale, hat[static_cast<std::size_t>(c)]);
        std::fill(local.begin(), local.end(), 0.0);
        disc_->weak_inner_planes(hat[static_cast<std::size_t>(c)], local, nplanes_, backend_);
        for (std::size_t p = 0; p < nplanes_; ++p)
            disc_->gather_add(
                std::span<const double>(local).subspan(p * disc_->modal_size(),
                                                       disc_->modal_size()),
                vrhs_[static_cast<std::size_t>(c) * nplanes_ + p]);
    }
}

// Stage 7: per-mode direct Helmholtz solves (3 components x 2 planes) with
// the operator set of the step's *effective* order, so the implicit lambda
// matches the explicit weights (startup ramp included).
void FourierNS::stage_viscous_solve(const StepContext& ctx) {
    const std::size_t nm = disc_->modal_size();
    const double tn1 = ctx.t_new;
    // Build (or fetch) the whole order's operator set up front, outside the
    // thread pool; the old code rebuilt a bootstrap solver per plane task.
    const std::vector<HelmholtzDirect>& solvers = velocity_solvers_.get(ctx.scheme.order);
    record_velocity_lambda(solvers.front().lambda());
    const VelocityBC* bcs[3] = {&opts_.u_bc, &opts_.v_bc, &opts_.w_bc};
    // 3 components x nplanes independent solves across the thread pool;
    // each task owns its plane's RHS and output slice.
    parallel::pool().parallel_for(3 * nplanes_, [&](std::size_t t0, std::size_t t1) {
        for (std::size_t t = t0; t < t1; ++t) {
            const int c = static_cast<int>(t / nplanes_);
            const std::size_t p = t % nplanes_;
            const std::size_t m = p / 2;
            const int reim = static_cast<int>(p % 2);
            // Physical Dirichlet data enters only the mean mode's real
            // plane; every other plane is homogeneous.
            const bool mean = global_mode(m) == 0 && reim == 0;
            const HelmholtzDirect& solver = solvers[m];
            std::vector<double> bvals =
                mean ? solver.dirichlet_vector(
                           [&](double x, double y) { return (*bcs[c])(x, y, tn1); })
                     : std::vector<double>(disc_->dofmap().num_global(), 0.0);
            const auto sol = solver.solve_global(
                std::move(vrhs_[static_cast<std::size_t>(c) * nplanes_ + p]), bvals);
            std::copy(sol.begin(), sol.end(),
                      modal_[c].begin() + static_cast<std::ptrdiff_t>(p * nm));
        }
    });
}

void FourierNS::end_step(const StepContext&) { transform_all_to_quad(); }

double FourierNS::mode_energy(int c, std::size_t m) const {
    const std::size_t nq = disc_->quad_size();
    std::vector<double> sq(nq);
    double energy = 0.0;
    for (int reim = 0; reim < 2; ++reim) {
        const std::size_t p = 2 * m + static_cast<std::size_t>(reim);
        for (std::size_t i = 0; i < nq; ++i) {
            const double v = quad_[c][p * nq + i];
            sq[i] = v * v;
        }
        energy += disc_->integrate(sq);
    }
    return energy;
}

double FourierNS::l2_error_3d(
    simmpi::Comm* comm, int c, double t,
    const std::function<double(double, double, double, double)>& exact) const {
    // Evaluate on Nz physical z-planes: u(x,y,z_j) = Re sum_k u_k e^{i beta_k z_j}.
    // Each rank sums its own modes' contribution at every z; the partial
    // fields combine by allreduce.
    const std::size_t nq = disc_->quad_size();
    const std::size_t nz = 2 * opts_.num_modes;
    std::vector<double> field(nz * nq, 0.0);
    for (std::size_t m = 0; m < mloc_; ++m) {
        const std::size_t k = global_mode(m);
        const double factor = k == 0 ? 1.0 : 2.0; // conjugate pair
        for (std::size_t j = 0; j < nz; ++j) {
            const double z = opts_.lz * static_cast<double>(j) / static_cast<double>(nz);
            const double cb = std::cos(beta(k) * z);
            const double sb = std::sin(beta(k) * z);
            for (std::size_t i = 0; i < nq; ++i) {
                const double re = quad_[c][(2 * m) * nq + i];
                const double im = quad_[c][(2 * m + 1) * nq + i];
                field[j * nq + i] += factor * (re * cb - im * sb);
            }
        }
    }
    if (comm) comm->allreduce_sum(field);
    double err2 = 0.0;
    for (std::size_t j = 0; j < nz; ++j) {
        const double z = opts_.lz * static_cast<double>(j) / static_cast<double>(nz);
        for (std::size_t e = 0; e < disc_->num_elements(); ++e) {
            const auto& g = disc_->ops(e).geometry();
            for (std::size_t q = 0; q < disc_->ops(e).num_quad(); ++q) {
                const std::size_t i = disc_->quad_offset(e) + q;
                const double d = field[j * nq + i] - exact(g.x[q], g.y[q], z, t);
                err2 += g.wj[q] * d * d / static_cast<double>(nz);
            }
        }
    }
    return std::sqrt(err2);
}

} // namespace nektar
