#include "nektar/splitting.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "blaslite/blas.hpp"

namespace nektar {

const SplittingCoeffs& stiffly_stable(int order) {
    // Karniadakis, Israeli & Orszag (1991), Table 2 (the stiffly-stable
    // family the paper's three codes share).
    static const std::array<SplittingCoeffs, kMaxTimeOrder> table = {{
        {1, 1.0, {1.0, 0.0, 0.0}, {1.0, 0.0, 0.0}},
        {2, 1.5, {2.0, -0.5, 0.0}, {2.0, -1.0, 0.0}},
        {3, 11.0 / 6.0, {3.0, -1.5, 1.0 / 3.0}, {3.0, -3.0, 1.0}},
    }};
    if (order < 1 || order > kMaxTimeOrder)
        throw std::invalid_argument("stiffly_stable: time order must be 1..3");
    return table[static_cast<std::size_t>(order - 1)];
}

void FieldHistory::configure(std::size_t components, std::size_t size, int depth) {
    components_ = components;
    size_ = size;
    depth_ = depth;
    stored_ = 0;
    head_ = -1;
    ring_.assign(static_cast<std::size_t>(depth), {});
}

void FieldHistory::clear() {
    stored_ = 0;
    head_ = -1;
    for (auto& slot : ring_) slot.clear();
}

void FieldHistory::push(std::vector<std::vector<double>> fields) {
    if (depth_ == 0) return; // order-1 schemes keep no history
    assert(fields.size() == components_);
    head_ = (head_ + 1) % depth_;
    ring_[static_cast<std::size_t>(head_)] = std::move(fields);
    if (stored_ < depth_) ++stored_;
}

const std::vector<double>& FieldHistory::level(int age, std::size_t c) const {
    assert(age >= 1 && age <= stored_);
    const int slot = (head_ - (age - 1) + depth_ * age) % depth_;
    return ring_[static_cast<std::size_t>(slot)][c];
}

void FieldHistory::save(ckpt::SectionWriter& w) const {
    w.u64(components_);
    w.u64(size_);
    w.i64(depth_);
    w.i64(stored_);
    w.i64(head_);
    for (const auto& slot : ring_) {
        w.u64(slot.size()); // 0 for a never-filled slot
        for (const auto& field : slot) w.f64v(field);
    }
}

void FieldHistory::restore(ckpt::SectionReader& r) {
    if (r.u64() != components_ || r.u64() != size_)
        r.fail("history shape does not match this solver's configuration");
    const auto depth = r.i64();
    if (depth != depth_) r.fail("history depth does not match this solver's time order");
    const auto stored = r.i64();
    const auto head = r.i64();
    if (stored < 0 || stored > depth_ || head < -1 || head >= depth_)
        r.fail("history ring position out of range");
    stored_ = static_cast<int>(stored);
    head_ = static_cast<int>(head);
    for (auto& slot : ring_) {
        const std::uint64_t nfields = r.u64();
        if (nfields != 0 && nfields != components_)
            r.fail("history slot component count out of range");
        slot.clear();
        slot.reserve(nfields);
        for (std::uint64_t c = 0; c < nfields; ++c) {
            std::vector<double> field = r.f64v();
            if (field.size() != size_) r.fail("history field size out of range");
            slot.push_back(std::move(field));
        }
    }
}

void HelmholtzOrderCache::configure(Factory factory) {
    factory_ = std::move(factory);
    for (auto& c : cache_) c.reset();
}

const std::vector<HelmholtzDirect>& HelmholtzOrderCache::get(int je) const {
    auto& slot = cache_.at(static_cast<std::size_t>(je));
    if (!slot) slot = factory_(stiffly_stable(je).gamma0);
    return *slot;
}

std::vector<int> HelmholtzOrderCache::built_orders() const {
    std::vector<int> orders;
    for (std::size_t je = 0; je < cache_.size(); ++je)
        if (cache_[je]) orders.push_back(static_cast<int>(je));
    return orders;
}

SolverCore::SolverCore(int time_order, double dt, std::size_t num_fields)
    : time_order_(time_order), dt_(dt), num_fields_(num_fields) {
    if (time_order < 1 || time_order > kMaxTimeOrder)
        throw std::invalid_argument("SolverCore: time_order must be 1..3");
}

void SolverCore::reset_state(std::size_t field_size) {
    field_size_ = field_size;
    time_ = 0.0;
    steps_taken_ = 0;
    last_step_order_ = 0;
    last_velocity_lambda_ = std::numeric_limits<double>::quiet_NaN();
    vel_hist_.configure(num_fields_, field_size, time_order_ - 1);
    nl_hist_.configure(num_fields_, field_size, time_order_ - 1);
    nl_scratch_.assign(num_fields_, std::vector<double>(field_size, 0.0));
    hat_scratch_.assign(num_fields_, std::vector<double>(field_size, 0.0));
}

void SolverCore::push_history(std::vector<std::vector<double>> vel,
                              std::vector<std::vector<double>> nl) {
    vel_hist_.push(std::move(vel));
    nl_hist_.push(std::move(nl));
}

int SolverCore::effective_order() const noexcept {
    const int from_history = vel_hist_.available() + 1; // +1: the current level
    return time_order_ < from_history ? time_order_ : from_history;
}

void SolverCore::configure_trace(const std::string& lane_name, std::function<double()> clock) {
    if constexpr (obs::kTraceCompiled) {
        trace_clock_ = std::move(clock);
        trace_lane_ = obs::tracer().lane(lane_name);
        trace_ids_[0] = obs::tracer().intern("step");
        for (std::size_t s = 1; s <= perf::kNumStages; ++s)
            trace_ids_[s] = obs::tracer().intern(perf::stage_short_name(s));
    } else {
        (void)lane_name;
        (void)clock;
    }
}

ckpt::Checkpoint SolverCore::checkpoint() const {
    ckpt::Checkpoint c;
    c.add("meta").u64(options_fingerprint());

    auto& core = c.add("core");
    core.f64(time_);
    core.i64(steps_taken_);
    core.i64(last_step_order_);
    core.f64(last_velocity_lambda_); // raw bits: the pre-first-step NaN round-trips
    core.u64(field_size_);
    core.i64(time_order_);
    core.u64(num_fields_);

    auto& hist = c.add("history");
    vel_hist_.save(hist);
    nl_hist_.save(hist);

    // The stage breakdown's deterministic counters.  host_seconds is
    // deliberately NOT part of the state vector: it measures this process's
    // wall time, which no restart can (or should) reproduce.  A restored run
    // restarts it at zero, and RunReport::to_canonical_json() masks it, so
    // full-report byte comparisons remain meaningful.
    auto& bd = c.add("breakdown");
    bd.i64(breakdown_.steps);
    for (std::size_t s = 0; s <= perf::kNumStages; ++s) {
        bd.u64(breakdown_.counts[s].flops);
        bd.u64(breakdown_.counts[s].bytes_read);
        bd.u64(breakdown_.counts[s].bytes_written);
        bd.u64(breakdown_.counts[s].calls);
        bd.u64(breakdown_.retransmits[s]);
        bd.f64(breakdown_.fault_seconds[s]);
        bd.f64(breakdown_.overlap_seconds[s]);
    }

    save_state(c);
    return c;
}

void SolverCore::restore(const ckpt::Checkpoint& c) {
    {
        auto meta = c.open("meta");
        const std::uint64_t fp = meta.u64();
        if (fp != options_fingerprint())
            meta.fail("options fingerprint mismatch: the checkpoint was taken "
                      "under a different solver configuration");
        meta.expect_end();
    }

    auto core = c.open("core");
    const double time = core.f64();
    const std::int64_t steps = core.i64();
    const std::int64_t last_order = core.i64();
    const double lambda = core.f64();
    if (core.u64() != field_size_)
        core.fail("field size does not match this solver's (set_initial must "
                  "run with the same resolution before restore)");
    if (core.i64() != time_order_ || core.u64() != num_fields_)
        core.fail("time order / field count does not match this solver's");
    if (steps < 0 || last_order < 0 || last_order > kMaxTimeOrder)
        core.fail("step counter or step order out of range");
    core.expect_end();
    time_ = time;
    steps_taken_ = static_cast<int>(steps);
    last_step_order_ = static_cast<int>(last_order);
    last_velocity_lambda_ = lambda;

    auto hist = c.open("history");
    vel_hist_.restore(hist);
    nl_hist_.restore(hist);
    hist.expect_end();

    auto bd = c.open("breakdown");
    breakdown_ = perf::StageBreakdown{}; // zeroes host_seconds (see checkpoint())
    const std::int64_t bd_steps = bd.i64();
    if (bd_steps < 0) bd.fail("breakdown step count out of range");
    breakdown_.steps = static_cast<int>(bd_steps);
    for (std::size_t s = 0; s <= perf::kNumStages; ++s) {
        breakdown_.counts[s].flops = bd.u64();
        breakdown_.counts[s].bytes_read = bd.u64();
        breakdown_.counts[s].bytes_written = bd.u64();
        breakdown_.counts[s].calls = bd.u64();
        breakdown_.retransmits[s] = bd.u64();
        breakdown_.fault_seconds[s] = bd.f64();
        breakdown_.overlap_seconds[s] = bd.f64();
    }
    bd.expect_end();

    restore_state(c);
}

void SolverCore::maybe_checkpoint() const {
    if (checkpoint_every_ > 0 && checkpoint_sink_ &&
        steps_taken_ % checkpoint_every_ == 0)
        checkpoint_sink_(checkpoint());
}

void SolverCore::begin_step(const StepContext&) {}

void SolverCore::end_step(const StepContext&) {}

void SolverCore::extrapolate(const StepContext& ctx,
                             const std::vector<std::vector<double>>& nl_new,
                             std::vector<std::vector<double>>& hat) {
    const SplittingCoeffs& sc = ctx.scheme;
    const int je = sc.order;
    const std::size_t n = field_size_;
    for (std::size_t c = 0; c < num_fields_; ++c) {
        auto& h = hat[c];
        const std::vector<double>& v0 = quad_field(c);
        // Velocity part, fused across ages: h = sum_q alpha_q u^{n-q}.
        switch (je) {
            case 1:
                for (std::size_t i = 0; i < n; ++i) h[i] = sc.alpha[0] * v0[i];
                break;
            case 2: {
                const std::vector<double>& v1 = vel_hist_.level(1, c);
                for (std::size_t i = 0; i < n; ++i)
                    h[i] = sc.alpha[0] * v0[i] + sc.alpha[1] * v1[i];
                break;
            }
            default: {
                const std::vector<double>& v1 = vel_hist_.level(1, c);
                const std::vector<double>& v2 = vel_hist_.level(2, c);
                for (std::size_t i = 0; i < n; ++i)
                    h[i] = sc.alpha[0] * v0[i] + sc.alpha[1] * v1[i] + sc.alpha[2] * v2[i];
                break;
            }
        }
        blaslite::detail::charge(static_cast<std::uint64_t>(2 * je - 1) * n,
                                 static_cast<std::uint64_t>(je) * n * sizeof(double),
                                 n * sizeof(double));
        // Nonlinear part: h += dt sum_q beta_q N^{n-q}.
        blaslite::daxpy(ctx.dt * sc.beta[0], nl_new[c], h);
        for (int q = 1; q < je; ++q)
            blaslite::daxpy(ctx.dt * sc.beta[static_cast<std::size_t>(q)],
                            nl_hist_.level(q, c), h);
    }
}

void SolverCore::advance() {
    assert(field_size_ > 0 && "reset_state (set_initial) must run before advance");
    const int je = effective_order();
    const StepContext ctx{steps_taken_, stiffly_stable(je), dt_, time_ + dt_};
    breakdown_.steps += 1;
    last_step_order_ = je;

    // Stage spans bracket the StageScope accounting, on the virtual clock
    // for comm-backed solvers (bit-deterministic) or the host clock.
    const bool tracing = obs::active() && trace_lane_ != nullptr;
    const bool virtual_time = static_cast<bool>(trace_clock_);
    const auto now = [&]() { return virtual_time ? trace_clock_() : obs::tracer().host_now(); };
    const auto run_stage = [&](std::size_t s, auto&& body) {
        if (tracing) obs::tracer().begin(trace_lane_, trace_ids_[s], now(), virtual_time);
        {
            perf::StageScope scope(breakdown_, s);
            body();
        }
        if (tracing) obs::tracer().end(trace_lane_, trace_ids_[s], now(), virtual_time);
    };

    if (tracing) obs::tracer().begin(trace_lane_, trace_ids_[0], now(), virtual_time);
    begin_step(ctx);

    run_stage(1, [&] { stage_transform(ctx); });
    run_stage(2, [&] { stage_nonlinear(ctx, nl_scratch_); });
    run_stage(3, [&] { extrapolate(ctx, nl_scratch_, hat_scratch_); });
    run_stage(4, [&] { stage_pressure_rhs(ctx, hat_scratch_); });
    run_stage(5, [&] { stage_pressure_solve(ctx); });
    run_stage(6, [&] { stage_viscous_rhs(ctx, hat_scratch_); });
    run_stage(7, [&] { stage_viscous_solve(ctx); });

    // Rotate the histories: the pre-solve quadrature fields become u^{n-1},
    // this step's nonlinear terms become N^{n-1}.
    if (time_order_ > 1) {
        std::vector<std::vector<double>> vel(num_fields_);
        for (std::size_t c = 0; c < num_fields_; ++c) vel[c] = quad_field(c);
        vel_hist_.push(std::move(vel));
        std::vector<std::vector<double>> nl = std::move(nl_scratch_);
        nl_scratch_.assign(num_fields_, std::vector<double>(field_size_, 0.0));
        nl_hist_.push(std::move(nl));
    }

    end_step(ctx);
    if (tracing) obs::tracer().end(trace_lane_, trace_ids_[0], now(), virtual_time);
    time_ = ctx.t_new;
    ++steps_taken_;
    maybe_checkpoint();
}

} // namespace nektar
