#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "gs/gather_scatter.hpp"
#include "nektar/discretization.hpp"
#include "nektar/helmholtz.hpp"
#include "nektar/ns_serial.hpp"
#include "perf/stage_stats.hpp"

/// \file ns_ale.hpp
/// NekTar-ALE: the arbitrary Lagrangian-Eulerian Navier-Stokes solver on a
/// moving mesh with element-based domain decomposition (paper §4.2.2).
///
/// Differences from the fixed-mesh solvers, exactly as the paper lists them:
///  * "a term is added in the non-linear step 2, associated with the updating
///    of the positions of the vertices of each element" — the advecting
///    velocity becomes (u - w_mesh) and the geometry factors are rebuilt;
///  * "an extra Helmholtz solve is added in step 7, associated with the
///    calculation of the velocity of the moving mesh";
///  * "instead of direct solvers, a diagonally preconditioned conjugate
///    gradient iterative solver is predominantly used";
///  * communications go through the Tufo-Fischer GS library (pairwise +
///    tree), *not* MPI_Alltoall.
///
/// The mesh is split across ranks by the METIS-style partitioner; every rank
/// owns a contiguous sub-discretization and shares interface dofs through
/// gather-scatter assembly inside PCG.
namespace nektar {

struct AleOptions {
    double dt = 1e-3;
    double nu = 0.01;
    /// Vertical velocity of the body boundary at time t (heave/flap motion).
    std::function<double(double)> body_velocity = [](double) { return 0.0; };
    HelmholtzBC velocity_bc{.dirichlet = {mesh::BoundaryTag::Inflow, mesh::BoundaryTag::Wall,
                                          mesh::BoundaryTag::Body}};
    HelmholtzBC pressure_bc{.dirichlet = {mesh::BoundaryTag::Outflow}};
    VelocityBC u_bc = [](double, double, double) { return 0.0; };
    VelocityBC v_bc = [](double, double, double) { return 0.0; };
    la::CgOptions cg{.max_iterations = 2000, .tolerance = 1e-9};
};

class AleNS2d {
public:
    /// Collective when `comm` is non-null: every rank passes the same full
    /// mesh and partition vector (element -> rank) and keeps only its part.
    AleNS2d(const mesh::Mesh& full_mesh, std::size_t order, AleOptions opts,
            simmpi::Comm* comm = nullptr, const std::vector<int>* elem_part = nullptr);

    void set_initial(const std::function<double(double, double)>& u0,
                     const std::function<double(double, double)>& v0);
    void step();

    [[nodiscard]] double time() const noexcept { return time_; }
    /// This rank's sub-discretization (rebuilt as the mesh moves).
    [[nodiscard]] const Discretization& disc() const noexcept { return *disc_; }
    [[nodiscard]] const std::vector<double>& u_quad() const noexcept { return uq_; }
    [[nodiscard]] const std::vector<double>& v_quad() const noexcept { return vq_; }
    /// Mesh velocity (vertical component) at quadrature points.
    [[nodiscard]] const std::vector<double>& mesh_velocity_quad() const noexcept { return wq_; }

    [[nodiscard]] const perf::StageBreakdown& breakdown() const noexcept { return breakdown_; }
    perf::StageBreakdown& breakdown() noexcept { return breakdown_; }
    /// PCG iterations of the last pressure solve (diagnostics).
    [[nodiscard]] std::size_t last_pressure_iterations() const noexcept { return last_p_iters_; }

private:
    void rebuild_discretization();
    /// Distributed (or serial) diagonally preconditioned CG solve of
    /// (L + lambda M) x = rhs with Dirichlet data already in x.
    std::size_t pcg_solve(double lambda, const std::vector<char>& dirichlet,
                          std::span<const double> rhs, std::span<double> x) const;
    void apply_operator(double lambda, std::span<const double> x, std::span<double> y) const;
    [[nodiscard]] double global_dot(std::span<const double> a, std::span<const double> b) const;
    std::vector<double> weak_rhs(std::span<const double> quad) const;
    void gs_assemble(std::span<double> global) const;
    [[nodiscard]] std::vector<double> dirichlet_x(
        const HelmholtzBC& bc, const std::function<double(double, double)>& g) const;

    AleOptions opts_;
    simmpi::Comm* comm_;
    std::size_t order_;
    // Local piece of the mesh (vertices move every step).
    std::shared_ptr<mesh::Mesh> local_mesh_;
    std::shared_ptr<const Discretization> disc_;
    std::unique_ptr<gs::GatherScatter> gs_;
    std::vector<double> dot_weights_;      ///< 1/multiplicity per local dof
    std::vector<char> vel_dirichlet_, p_dirichlet_, mesh_dirichlet_;

    double time_ = 0.0;
    int steps_taken_ = 0;
    std::vector<double> u_modal_, v_modal_, p_modal_;
    std::vector<double> uq_, vq_, wq_;
    std::vector<double> uq_prev_, vq_prev_;
    std::vector<double> nu_hist_[2], nv_hist_[2];
    mutable std::size_t last_p_iters_ = 0;
    perf::StageBreakdown breakdown_;
};

} // namespace nektar
