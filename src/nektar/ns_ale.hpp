#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "gs/gather_scatter.hpp"
#include "nektar/discretization.hpp"
#include "nektar/helmholtz.hpp"
#include "nektar/ns_serial.hpp"
#include "nektar/splitting.hpp"

/// \file ns_ale.hpp
/// NekTar-ALE: the arbitrary Lagrangian-Eulerian Navier-Stokes solver on a
/// moving mesh with element-based domain decomposition (paper §4.2.2).
///
/// Differences from the fixed-mesh solvers, exactly as the paper lists them:
///  * "a term is added in the non-linear step 2, associated with the updating
///    of the positions of the vertices of each element" — the advecting
///    velocity becomes (u - w_mesh) and the geometry factors are rebuilt;
///  * "an extra Helmholtz solve is added in step 7, associated with the
///    calculation of the velocity of the moving mesh";
///  * "instead of direct solvers, a diagonally preconditioned conjugate
///    gradient iterative solver is predominantly used";
///  * communications go through the Tufo-Fischer GS library (pairwise +
///    tree), *not* MPI_Alltoall.
///
/// Time integration runs through the shared stiffly-stable core
/// (splitting.hpp) at order 1..3, like the serial and Fourier solvers.
///
/// The mesh is split across ranks by the METIS-style partitioner; every rank
/// owns a contiguous sub-discretization and shares interface dofs through
/// gather-scatter assembly inside PCG.
namespace nektar {

// AleOptions (the SolverOptions extension for this solver) lives in
// solver_options.hpp with the rest of the unified configuration API.

class AleNS2d : public SolverCore {
public:
    /// Collective when `comm` is non-null: every rank passes the same full
    /// mesh and partition vector (element -> rank) and keeps only its part.
    AleNS2d(const mesh::Mesh& full_mesh, std::size_t order, AleOptions opts,
            simmpi::Comm* comm = nullptr, const std::vector<int>* elem_part = nullptr);

    void set_initial(const std::function<double(double, double)>& u0,
                     const std::function<double(double, double)>& v0);

    /// Exact-history start for temporal convergence studies: sets the state
    /// at t = 0 and seeds the time_order - 1 history levels from t = -dt,
    /// -2 dt, so the first step runs at the full requested order.  Histories
    /// are sampled on the t = 0 mesh; meaningful when the mesh is at rest at
    /// start (body_velocity(t) ~ 0 for t <= 0).
    void set_initial_exact(const VelocityBC& u, const VelocityBC& v);

    void step() { advance(); }

    /// This rank's sub-discretization (rebuilt as the mesh moves).
    [[nodiscard]] const Discretization& disc() const noexcept { return *disc_; }
    [[nodiscard]] const std::vector<double>& u_quad() const noexcept { return uq_; }
    [[nodiscard]] const std::vector<double>& v_quad() const noexcept { return vq_; }
    /// Mesh velocity (vertical component) at quadrature points.
    [[nodiscard]] const std::vector<double>& mesh_velocity_quad() const noexcept { return wq_; }

    /// PCG iterations of the last pressure solve (diagnostics).
    [[nodiscard]] std::size_t last_pressure_iterations() const noexcept { return last_p_iters_; }

protected:
    /// ALE extras ahead of the splitting stages: the mesh-velocity Helmholtz
    /// solve (charged to stage 7, "an extra Helmholtz solve is added in step
    /// 7") and the vertex update + geometry rebuild (charged to stage 2).
    void begin_step(const StepContext& ctx) override;
    void stage_transform(const StepContext& ctx) override;
    void stage_nonlinear(const StepContext& ctx,
                         std::vector<std::vector<double>>& nl) override;
    void stage_pressure_rhs(const StepContext& ctx,
                            const std::vector<std::vector<double>>& hat) override;
    void stage_pressure_solve(const StepContext& ctx) override;
    void stage_viscous_rhs(const StepContext& ctx,
                           std::vector<std::vector<double>>& hat) override;
    void stage_viscous_solve(const StepContext& ctx) override;
    void end_step(const StepContext& ctx) override;
    [[nodiscard]] const std::vector<double>& quad_field(std::size_t c) const override {
        return c == 0 ? uq_ : vq_;
    }
    void save_state(ckpt::Checkpoint& c) const override;
    void restore_state(const ckpt::Checkpoint& c) override;
    [[nodiscard]] std::uint64_t options_fingerprint() const override;

private:
    void rebuild_discretization();
    /// Projects pointwise fields into the solver state (no reset).
    void load_state(const std::function<double(double, double)>& u0,
                    const std::function<double(double, double)>& v0);
    /// ALE nonlinear terms with advecting velocity (u, v - w_mesh).
    void nonlinear(std::vector<std::vector<double>>& nl) const;
    /// Distributed (or serial) diagonally preconditioned CG solve of
    /// (L + lambda M) x = rhs with Dirichlet data already in x.
    std::size_t pcg_solve(double lambda, const std::vector<char>& dirichlet,
                          std::span<const double> rhs, std::span<double> x) const;
    void apply_operator(double lambda, std::span<const double> x, std::span<double> y) const;
    [[nodiscard]] double global_dot(std::span<const double> a, std::span<const double> b) const;
    std::vector<double> weak_rhs(std::span<const double> quad) const;
    void gs_assemble(std::span<double> global) const;
    [[nodiscard]] std::vector<double> dirichlet_x(
        const HelmholtzBC& bc, const std::function<double(double, double)>& g) const;

    AleOptions opts_;
    /// Resolved compute backend (opts_.backend, Auto -> disc default);
    /// rebuild_discretization() passes it through so per-step mesh rebuilds
    /// keep the same engine.
    compute::BackendKind backend_ = compute::BackendKind::Auto;
    simmpi::Comm* comm_;
    std::size_t order_;
    // Local piece of the mesh (vertices move every step).
    std::shared_ptr<mesh::Mesh> local_mesh_;
    std::shared_ptr<const Discretization> disc_;
    std::unique_ptr<gs::GatherScatter> gs_;
    std::vector<double> dot_weights_;      ///< 1/multiplicity per local dof
    std::vector<char> vel_dirichlet_, p_dirichlet_, mesh_dirichlet_;

    std::vector<double> u_modal_, v_modal_, p_modal_;
    std::vector<double> uq_, vq_, wq_;
    // Inter-stage scratch of the current step (RHS vectors in global dofs).
    std::vector<double> prhs_, urhs_, vrhs_;
    mutable std::size_t last_p_iters_ = 0;
};

} // namespace nektar
