#include "nektar/helmholtz.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "blaslite/blas.hpp"
#include "parallel/scratch.hpp"

namespace nektar {

namespace {

std::vector<char> dirichlet_mask(const Discretization& disc, const HelmholtzBC& bc,
                                 std::vector<int>* dofs_out) {
    std::vector<int> dofs = disc.dofmap().boundary_dofs(
        [&](mesh::BoundaryTag t) { return bc.is_dirichlet(t); });
    if (bc.pin_first_dof && dofs.empty()) {
        // Pin a *vertex* dof: the Neumann Laplacian's null space (constants)
        // has nonzero components only on vertex dofs, so pinning a bubble or
        // edge dof would leave the matrix singular.
        const auto& map0 = disc.dofmap().element_map(0);
        dofs.push_back(map0[disc.ops(0).expansion().vertex_mode(0)].global);
    }
    std::vector<char> mask(disc.dofmap().num_global(), 0);
    for (int d : dofs) mask[static_cast<std::size_t>(d)] = 1;
    if (dofs_out) *dofs_out = std::move(dofs);
    return mask;
}

} // namespace

HelmholtzDirect::HelmholtzDirect(std::shared_ptr<const Discretization> disc, double lambda,
                                 HelmholtzBC bc)
    : disc_(std::move(disc)), lambda_(lambda), bc_(std::move(bc)) {
    const DofMap& dm = disc_->dofmap();
    is_dirichlet_ = dirichlet_mask(*disc_, bc_, &dirichlet_dofs_);

    la::SymBandedMatrix h(dm.num_global(), dm.bandwidth());
    for (std::size_t e = 0; e < disc_->num_elements(); ++e) {
        const ElementOps& ops = disc_->ops(e);
        const auto& map = dm.element_map(e);
        const std::size_t nm = ops.num_modes();
        for (std::size_t i = 0; i < nm; ++i) {
            for (std::size_t j = 0; j <= i; ++j) {
                const double v = map[i].sign * map[j].sign *
                                 (ops.laplacian()(i, j) + lambda_ * ops.mass()(i, j));
                h.add(static_cast<std::size_t>(map[i].global),
                      static_cast<std::size_t>(map[j].global),
                      (map[i].global == map[j].global && i != j) ? 2.0 * v : v);
            }
        }
    }

    // Record Dirichlet columns for RHS lifting, then reduce the system to the
    // identity on constrained dofs.
    const std::size_t n = dm.num_global();
    const std::size_t kd = dm.bandwidth();
    for (int d : dirichlet_dofs_) {
        const auto du = static_cast<std::size_t>(d);
        const std::size_t lo = du > kd ? du - kd : 0;
        const std::size_t hi = std::min(n - 1, du + kd);
        for (std::size_t r = lo; r <= hi; ++r) {
            if (is_dirichlet_[r]) continue;
            const double v = h.at(r, du);
            if (v != 0.0) lift_.emplace_back(static_cast<int>(r), d, v);
        }
    }
    for (int d : dirichlet_dofs_) {
        const auto du = static_cast<std::size_t>(d);
        const std::size_t lo = du > kd ? du - kd : 0;
        const std::size_t hi = std::min(n - 1, du + kd);
        for (std::size_t r = lo; r <= hi; ++r) {
            if (r == du) continue;
            const double v = h.at(r, du);
            if (v != 0.0) h.add(r, du, -v);
        }
        h.band(0, du) = 1.0;
    }

    if (!chol_.factor(h))
        throw std::runtime_error("HelmholtzDirect: matrix not positive definite "
                                 "(all-Neumann Poisson needs pin_first_dof)");
}

std::vector<double> HelmholtzDirect::dirichlet_vector(
    const std::function<double(double, double)>& g) const {
    std::vector<double> bvals(disc_->dofmap().num_global(), 0.0);
    if (g) {
        const auto vals = disc_->dofmap().dirichlet_values(
            [&](mesh::BoundaryTag t) { return bc_.is_dirichlet(t); }, g);
        for (const auto& [dof, v] : vals) bvals[static_cast<std::size_t>(dof)] = v;
    }
    return bvals;
}

std::vector<double> HelmholtzDirect::solve_global(std::vector<double> rhs,
                                                  std::span<const double> dirichlet) const {
    // Lift the known boundary values, then impose them.
    for (const auto& [r, d, v] : lift_)
        rhs[static_cast<std::size_t>(r)] -= v * dirichlet[static_cast<std::size_t>(d)];
    for (int d : dirichlet_dofs_)
        rhs[static_cast<std::size_t>(d)] = dirichlet[static_cast<std::size_t>(d)];
    chol_.solve(rhs);

    std::vector<double> modal(disc_->modal_size());
    disc_->scatter(rhs, modal);
    return modal;
}

std::vector<double> HelmholtzDirect::solve(std::span<const double> f_quad,
                                           const std::function<double(double, double)>& g) const {
    std::vector<double> rhs(disc_->dofmap().num_global(), 0.0);
    std::vector<double> local(disc_->modal_size(), 0.0);
    disc_->weak_inner(f_quad, local);
    disc_->gather_add(local, rhs);
    return solve_global(std::move(rhs), dirichlet_vector(g));
}

// ---------------------------------------------------------------------------
// PCG path
// ---------------------------------------------------------------------------

HelmholtzPCG::HelmholtzPCG(std::shared_ptr<const Discretization> disc, double lambda,
                           HelmholtzBC bc, la::CgOptions opts)
    : disc_(std::move(disc)), lambda_(lambda), bc_(std::move(bc)), opts_(opts) {
    is_dirichlet_ = dirichlet_mask(*disc_, bc_, nullptr);
    // Assembled diagonal for the Jacobi preconditioner.
    const DofMap& dm = disc_->dofmap();
    std::vector<double> diag(dm.num_global(), 0.0);
    for (std::size_t e = 0; e < disc_->num_elements(); ++e) {
        const ElementOps& ops = disc_->ops(e);
        const auto& map = dm.element_map(e);
        for (std::size_t i = 0; i < ops.num_modes(); ++i)
            diag[static_cast<std::size_t>(map[i].global)] +=
                ops.laplacian()(i, i) + lambda_ * ops.mass()(i, i);
    }
    inv_diag_.resize(diag.size());
    for (std::size_t i = 0; i < diag.size(); ++i)
        inv_diag_[i] = is_dirichlet_[i] ? 1.0 : 1.0 / diag[i];

    // Fuse L + lambda*M once per matrix class: the per-CG-iteration apply
    // then runs one matrix product per congruent-element run instead of two
    // dgemvs per element.
    for (const ElemGroup& g : disc_->groups()) {
        for (const ElemGroup::MatrixRun& run : g.runs) {
            if (fused_.count(run.mats)) continue;
            la::DenseMatrix h = run.mats->lap;
            const la::DenseMatrix& mass = run.mats->mass;
            for (std::size_t i = 0; i < h.rows() * h.cols(); ++i)
                h.data()[i] += lambda_ * mass.data()[i];
            fused_.emplace(run.mats, std::move(h));
        }
    }
}

void HelmholtzPCG::apply(std::span<const double> x, std::span<double> y) const {
    std::fill(y.begin(), y.end(), 0.0);
    parallel::Scratch xl(disc_->modal_size()), yl(disc_->modal_size());
    disc_->scatter(x, xl.span());
    for (const ElemGroup& g : disc_->groups()) {
        const std::size_t nm = g.exp->num_modes();
        for (const ElemGroup::MatrixRun& run : g.runs) {
            const la::DenseMatrix& h = fused_.at(run.mats);
            if (g.contiguous) {
                // Congruent run of adjacent blocks: Y = H X in one product
                // (H symmetric, so the row-major buffer is the column-major
                // operand).
                const std::size_t off = disc_->modal_offset(g.elems[run.first]);
                blaslite::dgemm_cm(1.0, h.data(), nm, xl.data() + off, nm, 0.0,
                                   yl.data() + off, nm, nm, run.count, nm);
            } else {
                for (std::size_t j = 0; j < run.count; ++j) {
                    const std::size_t off =
                        disc_->modal_offset(g.elems[run.first + j]);
                    blaslite::dgemv(1.0, h.data(), nm, nm, nm, xl.data() + off, 0.0,
                                    yl.data() + off);
                }
            }
        }
    }
    disc_->gather_add(yl.span(), y);
}

std::vector<double> HelmholtzPCG::solve(std::span<const double> f_quad,
                                        const std::function<double(double, double)>& g) const {
    const std::size_t n = disc_->dofmap().num_global();
    std::vector<double> rhs(n, 0.0), local(disc_->modal_size(), 0.0);
    disc_->weak_inner(f_quad, local);
    disc_->gather_add(local, rhs);

    std::vector<double> x(n, 0.0);
    if (g) {
        const auto vals = disc_->dofmap().dirichlet_values(
            [&](mesh::BoundaryTag t) { return bc_.is_dirichlet(t); }, g);
        for (const auto& [dof, v] : vals) x[static_cast<std::size_t>(dof)] = v;
    }
    // Lift: rhs <- rhs - H x0 on free dofs, then solve for the correction
    // with homogeneous constraints.
    std::vector<double> hx(n);
    apply(x, hx);
    for (std::size_t i = 0; i < n; ++i) rhs[i] = is_dirichlet_[i] ? 0.0 : rhs[i] - hx[i];

    const auto masked_apply = [&](std::span<const double> in, std::span<double> out) {
        std::vector<double> tmp(in.begin(), in.end());
        for (std::size_t i = 0; i < n; ++i)
            if (is_dirichlet_[i]) tmp[i] = 0.0;
        apply(tmp, out);
        for (std::size_t i = 0; i < n; ++i)
            if (is_dirichlet_[i]) out[i] = in[i];
    };
    std::vector<double> dx(n, 0.0);
    const la::CgResult res = la::pcg(masked_apply, inv_diag_, rhs, dx, opts_);
    last_iters_ = res.iterations;
    if (!res.converged && res.residual_norm > 1e-6)
        throw std::runtime_error("HelmholtzPCG: CG failed to converge");
    blaslite::daxpy(1.0, dx, x);

    std::vector<double> modal(disc_->modal_size());
    disc_->scatter(x, modal);
    return modal;
}

} // namespace nektar
