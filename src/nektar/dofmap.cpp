#include "nektar/dofmap.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <numeric>
#include <set>

#include "la/dense.hpp"
#include "spectral/basis1d.hpp"
#include "spectral/jacobi.hpp"

namespace nektar {

namespace {

/// Reverse Cuthill-McKee over an implicit dof graph given by dof -> elements
/// incidence: two dofs are adjacent iff they appear in a common element.
std::vector<int> rcm_permutation(const std::vector<std::vector<LocalDof>>& maps,
                                 std::size_t n_dofs) {
    std::vector<std::vector<int>> dof_elems(n_dofs);
    for (std::size_t e = 0; e < maps.size(); ++e)
        for (const LocalDof& ld : maps[e])
            dof_elems[static_cast<std::size_t>(ld.global)].push_back(static_cast<int>(e));

    std::vector<int> order;
    order.reserve(n_dofs);
    std::vector<char> seen(n_dofs, 0);
    std::vector<int> degree(n_dofs, 0);
    for (std::size_t d = 0; d < n_dofs; ++d) {
        std::set<int> nb;
        for (int e : dof_elems[d])
            for (const LocalDof& ld : maps[static_cast<std::size_t>(e)]) nb.insert(ld.global);
        degree[d] = static_cast<int>(nb.size());
    }

    const auto neighbours = [&](int d) {
        std::set<int> nb;
        for (int e : dof_elems[static_cast<std::size_t>(d)])
            for (const LocalDof& ld : maps[static_cast<std::size_t>(e)])
                if (ld.global != d) nb.insert(ld.global);
        return nb;
    };

    for (std::size_t start = 0; start < n_dofs; ++start) {
        if (seen[start]) continue;
        // Lowest-degree unvisited dof of this component as the seed.
        int seed = static_cast<int>(start);
        std::deque<int> queue{seed};
        seen[start] = 1;
        while (!queue.empty()) {
            const int d = queue.front();
            queue.pop_front();
            order.push_back(d);
            std::vector<int> nb;
            for (int u : neighbours(d))
                if (!seen[static_cast<std::size_t>(u)]) nb.push_back(u);
            std::sort(nb.begin(), nb.end(),
                      [&](int a, int b) { return degree[static_cast<std::size_t>(a)] <
                                                 degree[static_cast<std::size_t>(b)]; });
            for (int u : nb) {
                seen[static_cast<std::size_t>(u)] = 1;
                queue.push_back(u);
            }
        }
    }
    // Reverse (the "R" of RCM) and invert into a permutation old -> new.
    std::vector<int> perm(n_dofs, -1);
    for (std::size_t i = 0; i < n_dofs; ++i)
        perm[static_cast<std::size_t>(order[n_dofs - 1 - i])] = static_cast<int>(i);
    return perm;
}

} // namespace

DofMap::DofMap(const mesh::Mesh& m, std::size_t order, bool renumber)
    : mesh_(&m), order_(order) {
    const std::size_t P = order;
    const std::size_t em = P - 1; // interior modes per edge
    vertex_dof_.resize(m.num_vertices());
    std::iota(vertex_dof_.begin(), vertex_dof_.end(), 0);
    edge_dof_base_.resize(m.num_edges());
    int next = static_cast<int>(m.num_vertices());
    for (std::size_t ed = 0; ed < m.num_edges(); ++ed) {
        edge_dof_base_[ed] = next;
        next += static_cast<int>(em);
    }

    maps_.resize(m.num_elements());
    for (std::size_t e = 0; e < m.num_elements(); ++e) {
        const mesh::Element& el = m.element(e);
        const auto exp = spectral::make_expansion(el.shape, P);
        std::vector<LocalDof>& map = maps_[e];
        map.resize(exp->num_modes());
        const std::size_t nv = exp->num_vertices();
        for (std::size_t v = 0; v < nv; ++v)
            map[exp->vertex_mode(v)] = {vertex_dof_[static_cast<std::size_t>(el.v[v])], 1.0};
        for (std::size_t le = 0; le < exp->num_edges(); ++le) {
            const int edge_id = m.element_edge(e, le);
            const mesh::Edge& edge = m.edge(static_cast<std::size_t>(edge_id));
            const auto [a, b] = exp->edge_vertices(le);
            // Our local direction runs a -> b; the global direction runs from
            // the smaller to the larger vertex id.
            const bool reversed = el.v[a] != edge.v0;
            assert(reversed ? (el.v[a] == edge.v1 && el.v[b] == edge.v0)
                            : (el.v[b] == edge.v1));
            for (std::size_t j = 1; j <= em; ++j) {
                const double sign = reversed ? spectral::edge_reversal_sign(j) : 1.0;
                map[exp->edge_mode(le, j)] = {
                    edge_dof_base_[static_cast<std::size_t>(edge_id)] + static_cast<int>(j - 1),
                    sign};
            }
        }
        for (std::size_t i = exp->interior_begin(); i < exp->num_modes(); ++i)
            map[i] = {next++, 1.0};
    }
    num_global_ = static_cast<std::size_t>(next);

    if (renumber) {
        perm_ = rcm_permutation(maps_, num_global_);
    } else {
        perm_.resize(num_global_);
        std::iota(perm_.begin(), perm_.end(), 0);
    }
    for (auto& map : maps_)
        for (LocalDof& ld : map) ld.global = perm_[static_cast<std::size_t>(ld.global)];

    bandwidth_ = 0;
    for (const auto& map : maps_) {
        for (const LocalDof& a : map)
            for (const LocalDof& b : map)
                bandwidth_ = std::max(bandwidth_,
                                      static_cast<std::size_t>(std::abs(a.global - b.global)));
    }
}

std::vector<int> DofMap::boundary_dofs(
    const std::function<bool(mesh::BoundaryTag)>& pred) const {
    std::set<int> dofs;
    const std::size_t em = order_ - 1;
    for (std::size_t ed = 0; ed < mesh_->num_edges(); ++ed) {
        const mesh::Edge& edge = mesh_->edge(ed);
        if (!edge.is_boundary() || !pred(edge.tag)) continue;
        dofs.insert(perm_[static_cast<std::size_t>(vertex_dof_[static_cast<std::size_t>(edge.v0)])]);
        dofs.insert(perm_[static_cast<std::size_t>(vertex_dof_[static_cast<std::size_t>(edge.v1)])]);
        for (std::size_t j = 0; j < em; ++j)
            dofs.insert(perm_[static_cast<std::size_t>(edge_dof_base_[ed]) + j]);
    }
    return {dofs.begin(), dofs.end()};
}

std::vector<std::pair<int, double>> DofMap::dirichlet_values(
    const std::function<bool(mesh::BoundaryTag)>& pred,
    const std::function<double(double, double)>& g) const {
    const std::size_t P = order_;
    const std::size_t em = P - 1;
    // 1-D bubble mass matrix and quadrature, shared across edges (the edge
    // length scales both sides of the projection and cancels).
    const spectral::QuadratureRule rule = spectral::gauss_lobatto(P + 2);
    la::DenseMatrix bm(em, em);
    for (std::size_t i = 1; i <= em; ++i)
        for (std::size_t j = 1; j <= em; ++j) {
            double s = 0.0;
            for (std::size_t q = 0; q < rule.size(); ++q)
                s += rule.weights[q] * spectral::modal_basis(i, P, rule.points[q]) *
                     spectral::modal_basis(j, P, rule.points[q]);
            bm(i - 1, j - 1) = s;
        }
    la::DenseMatrix bm_chol = bm;
    [[maybe_unused]] const bool ok = la::cholesky_factor(bm_chol);
    assert(ok);

    std::map<int, double> values;
    for (std::size_t ed = 0; ed < mesh_->num_edges(); ++ed) {
        const mesh::Edge& edge = mesh_->edge(ed);
        if (!edge.is_boundary() || !pred(edge.tag)) continue;
        const mesh::Vertex& a = mesh_->vertex(static_cast<std::size_t>(edge.v0));
        const mesh::Vertex& b = mesh_->vertex(static_cast<std::size_t>(edge.v1));
        const double ga = g(a.x, a.y);
        const double gb = g(b.x, b.y);
        values[perm_[static_cast<std::size_t>(vertex_dof_[static_cast<std::size_t>(edge.v0)])]] = ga;
        values[perm_[static_cast<std::size_t>(vertex_dof_[static_cast<std::size_t>(edge.v1)])]] = gb;
        if (em == 0) continue;
        std::vector<double> rhs(em, 0.0);
        for (std::size_t q = 0; q < rule.size(); ++q) {
            const double t = rule.points[q];
            const double x = 0.5 * (1.0 - t) * a.x + 0.5 * (1.0 + t) * b.x;
            const double y = 0.5 * (1.0 - t) * a.y + 0.5 * (1.0 + t) * b.y;
            const double resid = g(x, y) - (0.5 * (1.0 - t) * ga + 0.5 * (1.0 + t) * gb);
            for (std::size_t i = 1; i <= em; ++i)
                rhs[i - 1] += rule.weights[q] * spectral::modal_basis(i, P, t) * resid;
        }
        la::cholesky_solve(bm_chol, rhs);
        for (std::size_t j = 0; j < em; ++j)
            values[perm_[static_cast<std::size_t>(edge_dof_base_[ed]) + j]] = rhs[j];
    }
    return {values.begin(), values.end()};
}

} // namespace nektar
