#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "simmpi/simmpi.hpp"

/// \file transpose.hpp
/// The distributed transposition interface of NekTar-F.
///
/// The nonlinear step needs two layouts of the 3-D data: "planes" (each rank
/// holds its Fourier planes at every quadrature point) and "lines" (each
/// rank holds every plane for its chunk of points, so z-lines can be FFTed
/// locally).  How the exchange between them is decomposed is a scaling
/// decision, not a physics one, so FourierNS programs against this interface
/// and FourierNsOptions selects the implementation:
///
///   * FourierTranspose — the paper's 1-D slab: one P-wide MPI_Alltoall
///     (§4.2.1).  The golden reference; latency grows like P.
///   * PencilTranspose — the 2-D pencil of the post-paper literature: the
///     ranks form a rows x cols grid and the exchange runs as two staged
///     sqrt(P)-wide alltoalls over row/column subcommunicators.
///
/// Every implementation moves bit-identical values — the choice changes the
/// virtual-clock cost, never the numbers.
namespace nektar {

class Transpose {
public:
    virtual ~Transpose() = default;

    [[nodiscard]] virtual std::size_t num_ranks() const noexcept = 0;
    /// Points this rank owns in line layout (last rank may see padding).
    [[nodiscard]] virtual std::size_t chunk() const noexcept = 0;
    /// Global plane count across all ranks.
    [[nodiscard]] virtual std::size_t total_planes() const noexcept = 0;
    [[nodiscard]] virtual std::size_t planes_buffer_size() const noexcept = 0;
    [[nodiscard]] virtual std::size_t lines_buffer_size() const noexcept = 0;
    /// Physical point index of local line i on `rank` (>= nq means padding).
    [[nodiscard]] virtual std::size_t global_point(std::size_t i, int rank) const noexcept = 0;

    /// planes layout: planes[lp * nq + i]; lines layout:
    /// lines[i_local * total_planes + gp].  Points beyond nq produce zeros.
    virtual void to_lines(simmpi::Comm* comm, std::span<const double> planes,
                          std::span<double> lines) const = 0;
    /// Inverse of to_lines.
    virtual void to_planes(simmpi::Comm* comm, std::span<const double> lines,
                           std::span<double> planes) const = 0;

    /// Pipelined to_lines: `on_ready(b, e)` fires as soon as lines for
    /// points [b, e) are complete.  Bit-identical values to to_lines.
    virtual void to_lines_overlapped(
        simmpi::Comm* comm, std::span<const double> planes, std::span<double> lines,
        std::size_t nslices,
        const std::function<void(std::size_t, std::size_t)>& on_ready = {}) const = 0;

    /// Pipelined inverse: `produce(b, e)` must fill lines for points [b, e)
    /// right before that range ships.  Bit-identical values to to_planes.
    virtual void to_planes_overlapped(
        simmpi::Comm* comm, std::span<const double> lines, std::span<double> planes,
        std::size_t nslices,
        const std::function<void(std::size_t, std::size_t)>& produce = {}) const = 0;

    /// The nonlinear step's full pipelined exchange: forward-transposes every
    /// `planes_in` field into the matching `lines_in` buffer, calls
    /// `compute(b, e)` as each range of points [b, e) arrives (it must fill
    /// that point range of every `lines_out` field), and reverse-transposes
    /// `lines_out` into `planes_out`, overlapping exchanges against the
    /// per-range computation.  Bit-identical to the blocking to_lines /
    /// compute(0, chunk) / to_planes sequence.
    virtual void roundtrip_overlapped(
        simmpi::Comm* comm, const std::vector<std::span<const double>>& planes_in,
        const std::vector<std::span<double>>& lines_in,
        const std::vector<std::span<const double>>& lines_out,
        const std::vector<std::span<double>>& planes_out, std::size_t nslices,
        const std::function<void(std::size_t, std::size_t)>& compute) const = 0;

    /// True when the implementation carries checkpointable state (the pencil
    /// decomposition's subcommunicator progress); the solver then writes a
    /// "transpose" section around save_state/restore_state.
    [[nodiscard]] virtual bool has_state() const noexcept { return false; }
    virtual void save_state(ckpt::SectionWriter& w) const { (void)w; }
    virtual void restore_state(ckpt::SectionReader& r) { (void)r; }
};

} // namespace nektar
