#include "nektar/ns_ale.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <stdexcept>

#include "blaslite/blas.hpp"
#include "parallel/scratch.hpp"

namespace nektar {

namespace {

/// Local element selection and vertex renumbering for one rank's sub-mesh.
/// The vertex renumbering is monotone in the original ids so that edge
/// directions (smaller id first) are preserved, keeping edge-mode signs
/// identical between the full and local dof maps.
struct SubMesh {
    std::vector<std::size_t> elements;          ///< original element ids
    std::vector<int> vertex_of_original;        ///< orig vid -> local vid (-1)
    std::shared_ptr<mesh::Mesh> mesh;
};

SubMesh build_submesh(const mesh::Mesh& full, const std::vector<int>& part, int rank) {
    SubMesh sub;
    sub.vertex_of_original.assign(full.num_vertices(), -1);
    std::vector<int> used;
    for (std::size_t e = 0; e < full.num_elements(); ++e) {
        if (part[e] != rank) continue;
        sub.elements.push_back(e);
        const auto& el = full.element(e);
        for (int k = 0; k < el.num_vertices(); ++k) used.push_back(el.v[static_cast<std::size_t>(k)]);
    }
    std::sort(used.begin(), used.end());
    used.erase(std::unique(used.begin(), used.end()), used.end());
    std::vector<mesh::Vertex> verts;
    verts.reserve(used.size());
    for (std::size_t i = 0; i < used.size(); ++i) {
        sub.vertex_of_original[static_cast<std::size_t>(used[i])] = static_cast<int>(i);
        verts.push_back(full.vertex(static_cast<std::size_t>(used[i])));
    }
    std::vector<mesh::Element> elems;
    for (std::size_t e : sub.elements) {
        mesh::Element el = full.element(e);
        for (int k = 0; k < el.num_vertices(); ++k)
            el.v[static_cast<std::size_t>(k)] =
                sub.vertex_of_original[static_cast<std::size_t>(el.v[static_cast<std::size_t>(k)])];
        elems.push_back(el);
    }
    sub.mesh = std::make_shared<mesh::Mesh>(std::move(verts), std::move(elems));
    // Transfer boundary tags by original vertex pair.
    std::map<std::pair<int, int>, mesh::BoundaryTag> tags;
    for (const auto& ed : full.edges())
        if (ed.tag != mesh::BoundaryTag::None) tags[{ed.v0, ed.v1}] = ed.tag;
    auto& m = *sub.mesh;
    // Edges of the sub-mesh reference local vids; map back through `used`.
    for (std::size_t i = 0; i < m.num_edges(); ++i) {
        const auto& ed = m.edge(i);
        const int o0 = used[static_cast<std::size_t>(ed.v0)];
        const int o1 = used[static_cast<std::size_t>(ed.v1)];
        const auto it = tags.find({std::min(o0, o1), std::max(o0, o1)});
        if (it != tags.end()) {
            const auto& a = m.vertex(static_cast<std::size_t>(ed.v0));
            const auto& b = m.vertex(static_cast<std::size_t>(ed.v1));
            const double mx = 0.5 * (a.x + b.x), my = 0.5 * (a.y + b.y);
            const auto tag = it->second;
            m.tag_boundary(tag, [&](double x, double y) {
                return std::abs(x - mx) < 1e-12 && std::abs(y - my) < 1e-12;
            });
        }
    }
    return sub;
}

} // namespace

AleNS2d::AleNS2d(const mesh::Mesh& full_mesh, std::size_t order, AleOptions opts,
                 simmpi::Comm* comm, const std::vector<int>* elem_part)
    : SolverCore(opts.time_order, opts.dt, /*num_fields=*/2),
      opts_(std::move(opts)),
      comm_(comm),
      order_(order) {
    const int rank = comm_ ? comm_->rank() : 0;
    std::vector<int> part(full_mesh.num_elements(), 0);
    if (comm_ && comm_->size() > 1) {
        if (!elem_part) throw std::invalid_argument("AleNS2d: parallel run needs a partition");
        part = *elem_part;
    }
    SubMesh sub = build_submesh(full_mesh, part, rank);
    if (sub.elements.empty()) throw std::invalid_argument("AleNS2d: rank owns no elements");
    local_mesh_ = sub.mesh;
    backend_ = compute::resolve(opts_.backend, compute::default_backend());
    disc_ = std::make_shared<Discretization>(local_mesh_, order_, /*renumber=*/false,
                                             backend_);

    // Global dof ids for gather-scatter: derived from a dof map of the full
    // mesh (identical on every rank).
    if (comm_ && comm_->size() > 1) {
        const DofMap full_dm(full_mesh, order_, /*renumber=*/false);
        std::vector<std::int64_t> gids(disc_->dofmap().num_global(), -1);
        for (std::size_t le = 0; le < sub.elements.size(); ++le) {
            const auto& fmap = full_dm.element_map(sub.elements[le]);
            const auto& lmap = disc_->dofmap().element_map(le);
            for (std::size_t i = 0; i < fmap.size(); ++i) {
                gids[static_cast<std::size_t>(lmap[i].global)] = fmap[i].global;
                assert(fmap[i].sign == lmap[i].sign && "orientation must be preserved");
            }
        }
        gs_ = std::make_unique<gs::GatherScatter>(*comm_, gids, gs::GatherScatter::Strategy::Auto,
                                                  opts_.overlap_gs
                                                      ? gs::GatherScatter::Exchange::Nonblocking
                                                      : gs::GatherScatter::Exchange::Blocking);
    }

    // Dot-product weights: 1 / multiplicity so shared dofs count once.
    dot_weights_.assign(disc_->dofmap().num_global(), 1.0);
    if (gs_) {
        std::vector<double> mult(dot_weights_.size(), 1.0);
        gs_->sum(*comm_, mult);
        for (std::size_t i = 0; i < mult.size(); ++i) dot_weights_[i] = 1.0 / mult[i];
    }

    const auto mask_for = [&](const HelmholtzBC& bc) {
        std::vector<char> mask(disc_->dofmap().num_global(), 0);
        for (int d : disc_->dofmap().boundary_dofs(
                 [&](mesh::BoundaryTag t) { return bc.is_dirichlet(t); }))
            mask[static_cast<std::size_t>(d)] = 1;
        return mask;
    };
    vel_dirichlet_ = mask_for(opts_.velocity_bc);
    p_dirichlet_ = mask_for(opts_.pressure_bc);
    HelmholtzBC mesh_bc{.dirichlet = {mesh::BoundaryTag::Inflow, mesh::BoundaryTag::Outflow,
                                      mesh::BoundaryTag::Side, mesh::BoundaryTag::Wall,
                                      mesh::BoundaryTag::Body}};
    mesh_dirichlet_ = mask_for(mesh_bc);

    const std::size_t nm = disc_->modal_size();
    const std::size_t nq = disc_->quad_size();
    u_modal_.assign(nm, 0.0);
    v_modal_.assign(nm, 0.0);
    p_modal_.assign(nm, 0.0);
    uq_.assign(nq, 0.0);
    vq_.assign(nq, 0.0);
    wq_.assign(nq, 0.0);
    reset_state(nq);
    set_checkpoint_cadence(opts_.checkpoint_every);
    if (opts_.trace) {
        std::string lane = opts_.trace_lane;
        if (lane.empty()) lane = comm_ ? "rank " + std::to_string(comm_->rank()) : "solver";
        // Comm-backed ranks stamp stage spans on the seeded virtual clock so
        // the trace stream is bit-deterministic; serial runs use host time.
        if (comm_ != nullptr)
            configure_trace(lane, [c = comm_]() { return c->wall_time(); });
        else
            configure_trace(lane);
    }
}

void AleNS2d::rebuild_discretization() {
    // The per-step rebuild keeps the same compute backend: a Discretization
    // built with backend_ resolves Auto call sites to it.
    disc_ = std::make_shared<Discretization>(local_mesh_, order_, /*renumber=*/false,
                                             backend_);
}

std::uint64_t AleNS2d::options_fingerprint() const {
    ckpt::Fingerprint fp;
    fp.add("AleNS2d")
        .add(compute::to_string(backend_))
        .add(opts_.dt)
        .add(opts_.viscosity)
        .add(static_cast<std::uint64_t>(opts_.time_order))
        .add(static_cast<std::uint64_t>(order_))
        .add(static_cast<std::uint64_t>(local_mesh_->num_vertices()))
        .add(static_cast<std::uint64_t>(local_mesh_->num_elements()))
        .add(opts_.cg.tolerance)
        .add(static_cast<std::uint64_t>(opts_.cg.max_iterations))
        .add(static_cast<std::uint64_t>(comm_ ? comm_->size() : 1));
    return fp.value();
}

void AleNS2d::save_state(ckpt::Checkpoint& c) const {
    auto& w = c.add("fields");
    w.f64v(u_modal_);
    w.f64v(v_modal_);
    w.f64v(p_modal_);
    w.f64v(uq_);
    w.f64v(vq_);
    w.f64v(wq_);
    // Vertex positions: the mesh moves every step, so the geometry is state.
    // The topology (elements, tags, gather-scatter pattern, Dirichlet masks)
    // is construction-time constant and fingerprinted instead.
    auto& m = c.add("mesh");
    m.u64(local_mesh_->num_vertices());
    for (std::size_t i = 0; i < local_mesh_->num_vertices(); ++i) {
        const auto& v = local_mesh_->vertex(i);
        m.f64(v.x);
        m.f64(v.y);
    }
    if (comm_ != nullptr) comm_->save_state(c.add("comm"));
}

void AleNS2d::restore_state(const ckpt::Checkpoint& c) {
    auto r = c.open("fields");
    auto take = [&](std::vector<double>& dst) {
        std::vector<double> v = r.f64v();
        if (v.size() != dst.size()) r.fail("field size out of range");
        dst = std::move(v);
    };
    take(u_modal_);
    take(v_modal_);
    take(p_modal_);
    take(uq_);
    take(vq_);
    take(wq_);
    r.expect_end();

    auto m = c.open("mesh");
    if (m.u64() != local_mesh_->num_vertices()) m.fail("vertex count out of range");
    for (std::size_t i = 0; i < local_mesh_->num_vertices(); ++i) {
        mesh::Vertex v = local_mesh_->vertex(i);
        v.x = m.f64();
        v.y = m.f64();
        local_mesh_->set_vertex(i, v);
    }
    m.expect_end();
    // Geometry factors and operators follow the restored vertex positions.
    rebuild_discretization();

    if (comm_ != nullptr) {
        auto cr = c.open("comm");
        comm_->restore_state(cr);
    }
}

void AleNS2d::gs_assemble(std::span<double> global) const {
    if (gs_) gs_->sum(*comm_, global);
}

double AleNS2d::global_dot(std::span<const double> a, std::span<const double> b) const {
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += dot_weights_[i] * a[i] * b[i];
    blaslite::detail::charge(3 * a.size(), 3 * a.size() * sizeof(double), 0);
    return comm_ ? comm_->allreduce_sum(s) : s;
}

void AleNS2d::apply_operator(double lambda, std::span<const double> x,
                             std::span<double> y) const {
    std::fill(y.begin(), y.end(), 0.0);
    parallel::Scratch xl(disc_->modal_size()), yl(disc_->modal_size());
    disc_->scatter(x, xl.span());
    // Congruent-element runs share their Laplacian/mass matrices (symmetric,
    // so row-major buffers serve as the column-major left operand), turning
    // the per-element dgemv pair into per-run matrix products.  lambda varies
    // between solves here (ALE rebuilds each step), so L and M stay separate.
    for (const ElemGroup& g : disc_->groups()) {
        const std::size_t nm = g.exp->num_modes();
        for (const ElemGroup::MatrixRun& run : g.runs) {
            if (g.contiguous) {
                const std::size_t off = disc_->modal_offset(g.elems[run.first]);
                blaslite::dgemm_cm(1.0, run.mats->lap.data(), nm, xl.data() + off, nm, 0.0,
                                   yl.data() + off, nm, nm, run.count, nm);
                if (lambda != 0.0)
                    blaslite::dgemm_cm(lambda, run.mats->mass.data(), nm, xl.data() + off,
                                       nm, 1.0, yl.data() + off, nm, nm, run.count, nm);
            } else {
                for (std::size_t j = 0; j < run.count; ++j) {
                    const std::size_t off = disc_->modal_offset(g.elems[run.first + j]);
                    blaslite::dgemv(1.0, run.mats->lap.data(), nm, nm, nm, xl.data() + off,
                                    0.0, yl.data() + off);
                    if (lambda != 0.0)
                        blaslite::dgemv(lambda, run.mats->mass.data(), nm, nm, nm,
                                        xl.data() + off, 1.0, yl.data() + off);
                }
            }
        }
    }
    disc_->gather_add(yl.span(), y);
    // Interface dofs accumulate the neighbour ranks' element contributions.
    gs_assemble(std::span<double>(y.data(), y.size()));
}

std::vector<double> AleNS2d::weak_rhs(std::span<const double> quad) const {
    std::vector<double> local(disc_->modal_size(), 0.0);
    disc_->weak_inner(quad, local);
    std::vector<double> rhs(disc_->dofmap().num_global(), 0.0);
    disc_->gather_add(local, rhs);
    gs_assemble(rhs);
    return rhs;
}

std::vector<double> AleNS2d::dirichlet_x(const HelmholtzBC& bc,
                                         const std::function<double(double, double)>& g) const {
    std::vector<double> x(disc_->dofmap().num_global(), 0.0);
    const auto vals = disc_->dofmap().dirichlet_values(
        [&](mesh::BoundaryTag t) { return bc.is_dirichlet(t); }, g);
    for (const auto& [dof, v] : vals) x[static_cast<std::size_t>(dof)] = v;
    return x;
}

std::size_t AleNS2d::pcg_solve(double lambda, const std::vector<char>& dirichlet,
                               std::span<const double> rhs, std::span<double> x) const {
    const std::size_t n = x.size();
    // Assembled diagonal for the Jacobi preconditioner.
    std::vector<double> diag(n, 0.0);
    for (std::size_t e = 0; e < disc_->num_elements(); ++e) {
        const ElementOps& ops = disc_->ops(e);
        const auto& map = disc_->dofmap().element_map(e);
        for (std::size_t i = 0; i < ops.num_modes(); ++i)
            diag[static_cast<std::size_t>(map[i].global)] +=
                ops.laplacian()(i, i) + lambda * ops.mass()(i, i);
    }
    gs_assemble(diag);
    std::vector<double> inv_diag(n);
    for (std::size_t i = 0; i < n; ++i) inv_diag[i] = dirichlet[i] ? 1.0 : 1.0 / diag[i];

    std::vector<double> hx(n);
    apply_operator(lambda, x, hx);
    std::vector<double> r(n);
    for (std::size_t i = 0; i < n; ++i) r[i] = dirichlet[i] ? 0.0 : rhs[i] - hx[i];

    const auto masked_apply = [&](std::span<const double> in, std::span<double> out) {
        std::vector<double> tmp(in.begin(), in.end());
        for (std::size_t i = 0; i < n; ++i)
            if (dirichlet[i]) tmp[i] = 0.0;
        apply_operator(lambda, tmp, out);
        for (std::size_t i = 0; i < n; ++i)
            if (dirichlet[i]) out[i] = in[i];
    };
    const auto dot = [&](std::span<const double> a, std::span<const double> b) {
        return global_dot(a, b);
    };
    std::vector<double> dx(n, 0.0);
    const la::CgResult res = la::pcg(masked_apply, inv_diag, r, dx, opts_.cg, dot);
    if (!res.converged && res.residual_norm > 1e-5)
        throw std::runtime_error("AleNS2d: PCG failed to converge");
    blaslite::daxpy(1.0, dx, x);
    return res.iterations;
}

void AleNS2d::load_state(const std::function<double(double, double)>& u0,
                         const std::function<double(double, double)>& v0) {
    disc_->eval_at_quad(u0, uq_);
    disc_->eval_at_quad(v0, vq_);
    disc_->project(uq_, u_modal_);
    disc_->project(vq_, v_modal_);
    disc_->to_quad(u_modal_, uq_);
    disc_->to_quad(v_modal_, vq_);
}

void AleNS2d::set_initial(const std::function<double(double, double)>& u0,
                          const std::function<double(double, double)>& v0) {
    load_state(u0, v0);
    reset_state(disc_->quad_size());
}

void AleNS2d::set_initial_exact(const VelocityBC& u, const VelocityBC& v) {
    const std::size_t nq = disc_->quad_size();
    reset_state(nq);
    // Seed the history oldest-first: t = -(Je-1) dt, ..., -dt.  The mesh (and
    // wq_ = 0) is the start-of-run configuration for every level.
    for (int q = time_order() - 1; q >= 1; --q) {
        const double t = -static_cast<double>(q) * opts_.dt;
        load_state([&](double x, double y) { return u(x, y, t); },
                   [&](double x, double y) { return v(x, y, t); });
        std::vector<std::vector<double>> nl(2, std::vector<double>(nq));
        nonlinear(nl);
        push_history({uq_, vq_}, std::move(nl));
    }
    load_state([&](double x, double y) { return u(x, y, 0.0); },
               [&](double x, double y) { return v(x, y, 0.0); });
}

// ALE extras, before the shared splitting stages run.
void AleNS2d::begin_step(const StepContext& ctx) {
    // --- Extra Helmholtz solve of step 7: the mesh velocity (Laplacian
    // smoothing of the prescribed boundary motion).
    std::vector<double> wglob(disc_->dofmap().num_global(), 0.0);
    {
        perf::StageScope scope(breakdown(), 7);
        const double vb = opts_.body_velocity(time());
        // Body edges move at vb; the outer boundary stays put.  The L2 edge
        // projection of the constant vb puts vb on the vertex dofs and zero
        // on the edge bubbles.
        std::vector<double> x(disc_->dofmap().num_global(), 0.0);
        const auto vals = disc_->dofmap().dirichlet_values(
            [&](mesh::BoundaryTag t) { return t == mesh::BoundaryTag::Body; },
            [&](double, double) { return vb; });
        for (const auto& [dof, v] : vals) x[static_cast<std::size_t>(dof)] = v;
        std::vector<double> zero_rhs(disc_->dofmap().num_global(), 0.0);
        pcg_solve(0.0, mesh_dirichlet_, zero_rhs, x);
        wglob = std::move(x);
    }

    // --- Step 2 extra: update the vertex positions with the mesh velocity
    // and rebuild the geometry factors.
    {
        perf::StageScope scope(breakdown(), 2);
        // Vertex dof value = mesh velocity at the vertex (hierarchical basis).
        for (std::size_t le = 0; le < disc_->num_elements(); ++le) {
            const auto& map = disc_->dofmap().element_map(le);
            const auto& el = local_mesh_->element(le);
            const auto& exp = disc_->ops(le).expansion();
            for (std::size_t v = 0; v < exp.num_vertices(); ++v) {
                const auto vid = static_cast<std::size_t>(el.v[v]);
                const double wv = wglob[static_cast<std::size_t>(map[exp.vertex_mode(v)].global)];
                mesh::Vertex p = local_mesh_->vertex(vid);
                p.y += ctx.dt * wv;
                local_mesh_->set_vertex(vid, p);
            }
        }
        rebuild_discretization();
        // Mesh velocity at the (new) quadrature points for the ALE advection.
        std::vector<double> wmodal(disc_->modal_size());
        disc_->scatter(wglob, wmodal);
        disc_->to_quad(wmodal, wq_);
    }
}

// Stage 1: transform to quadrature space on the new geometry.
void AleNS2d::stage_transform(const StepContext&) {
    disc_->to_quad(u_modal_, uq_);
    disc_->to_quad(v_modal_, vq_);
}

// Stage 2: ALE nonlinear terms, advecting velocity (u, v - w_mesh).
void AleNS2d::stage_nonlinear(const StepContext&, std::vector<std::vector<double>>& nl) {
    nonlinear(nl);
}

void AleNS2d::nonlinear(std::vector<std::vector<double>>& nl) const {
    const std::size_t nq = disc_->quad_size();
    // Advecting velocity is (u, v - w_mesh); the differentiated fields stay
    // (u, v).  Derivatives, chain rule, products and sign run fused in
    // compute::Backend::convect_planes.  The discretization was built with
    // backend_, so Auto resolves to it.
    std::vector<double> vrel(nq);
    for (std::size_t i = 0; i < nq; ++i) vrel[i] = vq_[i] - wq_[i];
    disc_->convect_planes(uq_, vrel, uq_, vq_, nl[0], nl[1], 1);
}

// Stage 4: pressure RHS.
void AleNS2d::stage_pressure_rhs(const StepContext& ctx,
                                 const std::vector<std::vector<double>>& hat) {
    const std::size_t nq = disc_->quad_size();
    std::vector<double> div(nq), dx(nq), dy(nq);
    for (std::size_t e = 0; e < disc_->num_elements(); ++e)
        disc_->ops(e).grad_collocation(disc_->quad_block(std::span<const double>(hat[0]), e),
                                       disc_->quad_block(std::span<double>(div), e),
                                       disc_->quad_block(std::span<double>(dy), e));
    for (std::size_t e = 0; e < disc_->num_elements(); ++e)
        disc_->ops(e).grad_collocation(disc_->quad_block(std::span<const double>(hat[1]), e),
                                       disc_->quad_block(std::span<double>(dx), e),
                                       disc_->quad_block(std::span<double>(dy), e));
    blaslite::daxpy(1.0, dy, div);
    blaslite::dscal(-1.0 / ctx.dt, div);
    prhs_ = weak_rhs(div);
}

// Stage 5: pressure PCG solve.
void AleNS2d::stage_pressure_solve(const StepContext&) {
    std::vector<double> pglob(disc_->dofmap().num_global(), 0.0);
    if (comm_) comm_->set_stage(5);
    last_p_iters_ = pcg_solve(0.0, p_dirichlet_, prhs_, pglob);
    if (comm_) comm_->set_stage(-1);
    disc_->scatter(pglob, p_modal_);
}

// Stage 6: Helmholtz RHS.
void AleNS2d::stage_viscous_rhs(const StepContext& ctx,
                                std::vector<std::vector<double>>& hat) {
    const std::size_t nq = disc_->quad_size();
    auto& uhat = hat[0];
    auto& vhat = hat[1];
    std::vector<double> px(nq), py(nq);
    for (std::size_t e = 0; e < disc_->num_elements(); ++e)
        disc_->ops(e).grad_from_modal(
            disc_->modal_block(std::span<const double>(p_modal_), e),
            disc_->quad_block(std::span<double>(px), e),
            disc_->quad_block(std::span<double>(py), e));
    blaslite::daxpy(-ctx.dt, px, uhat);
    blaslite::daxpy(-ctx.dt, py, vhat);
    const double scale = 1.0 / (opts_.viscosity * ctx.dt);
    blaslite::dscal(scale, uhat);
    blaslite::dscal(scale, vhat);
    urhs_ = weak_rhs(uhat);
    vrhs_ = weak_rhs(vhat);
}

// Stage 7: velocity PCG solves with lambda from the step's *effective*
// gamma0, so the implicit operator matches the explicit weights.
void AleNS2d::stage_viscous_solve(const StepContext& ctx) {
    const double tn1 = ctx.t_new;
    if (comm_) comm_->set_stage(7);
    const double lambda = ctx.scheme.gamma0 / (opts_.viscosity * ctx.dt);
    record_velocity_lambda(lambda);
    auto xu = dirichlet_x(opts_.velocity_bc,
                          [&](double x, double y) { return opts_.u_bc(x, y, tn1); });
    auto xv = dirichlet_x(opts_.velocity_bc,
                          [&](double x, double y) { return opts_.v_bc(x, y, tn1); });
    pcg_solve(lambda, vel_dirichlet_, urhs_, xu);
    pcg_solve(lambda, vel_dirichlet_, vrhs_, xv);
    if (comm_) comm_->set_stage(-1);
    disc_->scatter(xu, u_modal_);
    disc_->scatter(xv, v_modal_);
}

void AleNS2d::end_step(const StepContext&) {
    disc_->to_quad(u_modal_, uq_);
    disc_->to_quad(v_modal_, vq_);
}

} // namespace nektar
