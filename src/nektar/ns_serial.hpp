#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "nektar/helmholtz.hpp"
#include "nektar/solver_options.hpp"
#include "nektar/splitting.hpp"

/// \file ns_serial.hpp
/// The serial 2-D incompressible Navier-Stokes solver (paper §4.1).
///
/// Time integration is the high-order stiffly-stable splitting scheme shared
/// by all three solvers (see splitting.hpp) at order 1..3 (the paper uses "a
/// second order time-integration ... summarised in three main steps"), split
/// into the 7 instrumented stages of Figure 12:
///   1  transform modal -> quadrature
///   2  evaluate nonlinear terms -(u . grad) u at quadrature points
///   3  weight-average with previous nonlinear terms (stiffly-stable)
///   4  set up the pressure Poisson RHS
///   5  banded direct solve of the Poisson equation
///   6  set up the viscous Helmholtz RHS
///   7  banded direct solves of the Helmholtz equations
namespace nektar {

class SerialNS2d : public SolverCore {
public:
    SerialNS2d(std::shared_ptr<const Discretization> disc, SerialNsOptions opts);

    /// Sets the initial velocity field (evaluated at quadrature points and
    /// projected); resets the history ring buffers and the clock.  The first
    /// steps then ramp through the integration orders 1, 2, ..., time_order.
    void set_initial(const std::function<double(double, double)>& u0,
                     const std::function<double(double, double)>& v0);

    /// Exact-history start for temporal convergence studies: sets the state
    /// from u(x, y, t), v(x, y, t) at t = 0 and seeds the time_order - 1
    /// history levels from t = -dt, -2 dt, so the very first step runs at
    /// the full requested order instead of ramping.
    void set_initial_exact(const VelocityBC& u, const VelocityBC& v);

    /// Advances one time step, recording stage statistics.
    void step() { advance(); }

    [[nodiscard]] const Discretization& disc() const noexcept { return *disc_; }

    /// Current fields at quadrature points.
    [[nodiscard]] const std::vector<double>& u_quad() const noexcept { return uq_; }
    [[nodiscard]] const std::vector<double>& v_quad() const noexcept { return vq_; }
    [[nodiscard]] const std::vector<double>& p_modal() const noexcept { return p_modal_; }

    /// L2 norm of the divergence of the current velocity.
    [[nodiscard]] double divergence_norm() const;

    /// Vorticity omega = dv/dx - du/dy at quadrature points (the wake's
    /// primary observable).
    [[nodiscard]] std::vector<double> vorticity_quad() const;

    /// The per-effective-order velocity operator cache (restart regression
    /// hook: a run resumed mid-ramp must rebuild the ramp orders' operators).
    [[nodiscard]] const HelmholtzOrderCache& velocity_solver_cache() const noexcept {
        return velocity_solvers_;
    }

protected:
    void stage_transform(const StepContext& ctx) override;
    void stage_nonlinear(const StepContext& ctx,
                         std::vector<std::vector<double>>& nl) override;
    void stage_pressure_rhs(const StepContext& ctx,
                            const std::vector<std::vector<double>>& hat) override;
    void stage_pressure_solve(const StepContext& ctx) override;
    void stage_viscous_rhs(const StepContext& ctx,
                           std::vector<std::vector<double>>& hat) override;
    void stage_viscous_solve(const StepContext& ctx) override;
    void end_step(const StepContext& ctx) override;
    [[nodiscard]] const std::vector<double>& quad_field(std::size_t c) const override {
        return c == 0 ? uq_ : vq_;
    }
    void save_state(ckpt::Checkpoint& c) const override;
    void restore_state(const ckpt::Checkpoint& c) override;
    [[nodiscard]] std::uint64_t options_fingerprint() const override;

private:
    void nonlinear(const std::vector<double>& uq, const std::vector<double>& vq,
                   std::vector<double>& nu_out, std::vector<double>& nv_out) const;
    /// Projects pointwise fields at time t into the solver state (no reset).
    void load_state(const std::function<double(double, double)>& u0,
                    const std::function<double(double, double)>& v0);

    std::shared_ptr<const Discretization> disc_;
    SerialNsOptions opts_;
    /// Resolved compute backend (opts_.backend, Auto -> disc default).
    compute::BackendKind backend_ = compute::BackendKind::Auto;
    HelmholtzDirect pressure_solver_;
    /// Velocity Helmholtz operators keyed on the *effective* startup order,
    /// so the implicit lambda = gamma0/(nu dt) always matches the explicit
    /// weights (the ramped first steps included).
    HelmholtzOrderCache velocity_solvers_;

    // State: modal coefficients and quadrature values of (u, v).
    std::vector<double> u_modal_, v_modal_, p_modal_;
    std::vector<double> uq_, vq_;
    // Inter-stage scratch of the current step (RHS vectors in global dofs).
    std::vector<double> prhs_, urhs_, vrhs_;
};

} // namespace nektar
