#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "nektar/helmholtz.hpp"
#include "perf/stage_stats.hpp"

/// \file ns_serial.hpp
/// The serial 2-D incompressible Navier-Stokes solver (paper §4.1).
///
/// Time integration is the high-order splitting scheme of Karniadakis,
/// Israeli & Orszag (1991) at order 1 or 2 (the paper uses "a second order
/// time-integration ... summarised in three main steps"), split into the 7
/// instrumented stages of Figure 12:
///   1  transform modal -> quadrature
///   2  evaluate nonlinear terms -(u . grad) u at quadrature points
///   3  weight-average with previous nonlinear terms (stiffly-stable)
///   4  set up the pressure Poisson RHS
///   5  banded direct solve of the Poisson equation
///   6  set up the viscous Helmholtz RHS
///   7  banded direct solves of the Helmholtz equations
namespace nektar {

/// Time-dependent Dirichlet velocity data g(x, y, t).
using VelocityBC = std::function<double(double, double, double)>;

struct NsOptions {
    double dt = 1e-3;
    double nu = 0.01;           ///< kinematic viscosity (1/Re)
    int time_order = 2;         ///< 1 or 2 (stiffly-stable)
    HelmholtzBC velocity_bc{.dirichlet = {mesh::BoundaryTag::Inflow, mesh::BoundaryTag::Wall,
                                          mesh::BoundaryTag::Body}};
    HelmholtzBC pressure_bc{.dirichlet = {mesh::BoundaryTag::Outflow}};
    VelocityBC u_bc = [](double, double, double) { return 0.0; };
    VelocityBC v_bc = [](double, double, double) { return 0.0; };
};

class SerialNS2d {
public:
    SerialNS2d(std::shared_ptr<const Discretization> disc, NsOptions opts);

    /// Sets the initial velocity field (evaluated at quadrature points and
    /// projected); resets the nonlinear history and the clock.
    void set_initial(const std::function<double(double, double)>& u0,
                     const std::function<double(double, double)>& v0);

    /// Advances one time step, recording stage statistics.
    void step();

    [[nodiscard]] double time() const noexcept { return time_; }
    [[nodiscard]] const Discretization& disc() const noexcept { return *disc_; }

    /// Current fields at quadrature points.
    [[nodiscard]] const std::vector<double>& u_quad() const noexcept { return uq_; }
    [[nodiscard]] const std::vector<double>& v_quad() const noexcept { return vq_; }
    [[nodiscard]] const std::vector<double>& p_modal() const noexcept { return p_modal_; }

    /// L2 norm of the divergence of the current velocity.
    [[nodiscard]] double divergence_norm() const;

    /// Vorticity omega = dv/dx - du/dy at quadrature points (the wake's
    /// primary observable).
    [[nodiscard]] std::vector<double> vorticity_quad() const;

    /// Accumulated stage statistics (one entry per step taken).
    [[nodiscard]] const perf::StageBreakdown& breakdown() const noexcept { return breakdown_; }
    perf::StageBreakdown& breakdown() noexcept { return breakdown_; }

private:
    void nonlinear(const std::vector<double>& uq, const std::vector<double>& vq,
                   std::vector<double>& nu_out, std::vector<double>& nv_out) const;

    std::shared_ptr<const Discretization> disc_;
    NsOptions opts_;
    double gamma0_;
    HelmholtzDirect pressure_solver_;
    HelmholtzDirect velocity_solver_;

    double time_ = 0.0;
    int steps_taken_ = 0;
    // State: modal coefficients and quadrature values of (u, v).
    std::vector<double> u_modal_, v_modal_, p_modal_;
    std::vector<double> uq_, vq_;
    // Previous step's quadrature velocity and the nonlinear history.
    std::vector<double> uq_prev_, vq_prev_;
    std::vector<double> nu_hist_[2], nv_hist_[2];
    perf::StageBreakdown breakdown_;
};

} // namespace nektar
