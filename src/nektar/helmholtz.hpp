#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <vector>

#include "la/banded.hpp"
#include "la/cg.hpp"
#include "nektar/discretization.hpp"

/// \file helmholtz.hpp
/// Global Helmholtz/Poisson solvers:  (grad u, grad v) + lambda (u, v) = (f, v).
///
/// Two paths, exactly as in the paper:
///  * HelmholtzDirect — assembled symmetric *banded* matrix factored once by
///    Cholesky (the LAPACK dpbtrf/dpbtrs path of stages 5/7, Figure 12; also
///    the per-Fourier-mode solver of NekTar-F).
///  * HelmholtzPCG — matrix-free diagonally preconditioned conjugate
///    gradient over the elemental matrices (the NekTar-ALE path, which also
///    runs distributed with gather-scatter assembly).
namespace nektar {

/// Which boundary tags get Dirichlet treatment; everything else is natural
/// (zero Neumann).  `pin_first_dof` regularises the all-Neumann Poisson
/// problem (pure periodic/enclosed domains).
struct HelmholtzBC {
    std::set<mesh::BoundaryTag> dirichlet;
    bool pin_first_dof = false;
    [[nodiscard]] bool is_dirichlet(mesh::BoundaryTag t) const {
        return dirichlet.count(t) > 0;
    }
};

class HelmholtzDirect {
public:
    HelmholtzDirect(std::shared_ptr<const Discretization> disc, double lambda,
                    HelmholtzBC bc);

    /// Solves with forcing given at quadrature points and Dirichlet data g.
    /// Returns the solution in per-element modal form (disc->modal_size()).
    /// Pass g = nullptr for homogeneous Dirichlet data.
    [[nodiscard]] std::vector<double> solve(
        std::span<const double> f_quad,
        const std::function<double(double, double)>& g = {}) const;

    /// Variant with the weak RHS already assembled into global dofs
    /// (the Navier-Stokes stepper builds these itself); `rhs` is consumed.
    [[nodiscard]] std::vector<double> solve_global(std::vector<double> rhs,
                                                   std::span<const double> dirichlet) const;

    [[nodiscard]] const Discretization& disc() const noexcept { return *disc_; }
    [[nodiscard]] double lambda() const noexcept { return lambda_; }
    [[nodiscard]] std::size_t bandwidth() const noexcept { return chol_.bandwidth(); }
    [[nodiscard]] const std::vector<int>& dirichlet_dofs() const noexcept {
        return dirichlet_dofs_;
    }
    /// Fills a global-length vector with Dirichlet values from g (zeros
    /// elsewhere); convenience for solve_global callers.
    [[nodiscard]] std::vector<double> dirichlet_vector(
        const std::function<double(double, double)>& g) const;

private:
    std::shared_ptr<const Discretization> disc_;
    double lambda_;
    HelmholtzBC bc_;
    std::vector<int> dirichlet_dofs_;
    std::vector<char> is_dirichlet_;
    la::BandedCholesky chol_;
    /// Original matrix columns of Dirichlet dofs (for RHS lifting):
    /// (row, dirichlet dof, value).
    std::vector<std::tuple<int, int, double>> lift_;
};

class HelmholtzPCG {
public:
    HelmholtzPCG(std::shared_ptr<const Discretization> disc, double lambda, HelmholtzBC bc,
                 la::CgOptions opts = {.max_iterations = 2000, .tolerance = 1e-10});

    /// Same contract as HelmholtzDirect::solve.
    [[nodiscard]] std::vector<double> solve(
        std::span<const double> f_quad,
        const std::function<double(double, double)>& g = {}) const;

    /// Number of CG iterations of the most recent solve.
    [[nodiscard]] std::size_t last_iterations() const noexcept { return last_iters_; }

    /// Global matrix-vector product y = H x (assembled through the dof map);
    /// exposed for the distributed ALE solver and tests.
    void apply(std::span<const double> x, std::span<double> y) const;

private:
    std::shared_ptr<const Discretization> disc_;
    double lambda_;
    HelmholtzBC bc_;
    std::vector<char> is_dirichlet_;
    std::vector<double> inv_diag_;
    la::CgOptions opts_;
    /// Fused elemental operator H = L + lambda*M per matrix class; symmetric,
    /// so its row-major buffer doubles as the column-major left operand of
    /// the batched per-run dgemm in apply().
    std::map<const ElemMatrices*, la::DenseMatrix> fused_;
    mutable std::size_t last_iters_ = 0;
};

} // namespace nektar
