#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "la/banded.hpp"
#include "la/dense.hpp"
#include "nektar/discretization.hpp"
#include "nektar/helmholtz.hpp"

/// \file static_condensation.hpp
/// Statically condensed (Schur complement) Helmholtz solver.
///
/// The paper's Figure 10 orders each element's boundary modes first and
/// notes "the banded structure of the interior-interior matrix": because
/// interior (bubble) modes never couple across elements, they can be
/// eliminated element-by-element before the global solve.  What remains is a
/// much smaller banded system on the vertex/edge dofs — the classic
/// spectral/hp substructuring of Karniadakis & Sherwin (1999) — followed by
/// independent per-element back-solves for the interiors.
namespace nektar {

class CondensedHelmholtz {
public:
    CondensedHelmholtz(std::shared_ptr<const Discretization> disc, double lambda,
                       HelmholtzBC bc);

    /// Same contract as HelmholtzDirect::solve: forcing at quadrature
    /// points, optional Dirichlet data, per-element modal solution out.
    [[nodiscard]] std::vector<double> solve(
        std::span<const double> f_quad,
        const std::function<double(double, double)>& g = {}) const;

    /// Size and half-bandwidth of the condensed boundary system (compare
    /// with HelmholtzDirect::bandwidth() on the full system).
    [[nodiscard]] std::size_t boundary_dofs() const noexcept { return nb_; }
    [[nodiscard]] std::size_t bandwidth() const noexcept { return chol_.bandwidth(); }

private:
    struct ElemData {
        la::DenseMatrix a_bi;       ///< boundary-interior coupling
        la::DenseMatrix a_ii_chol;  ///< Cholesky factor of the interior block
    };

    std::shared_ptr<const Discretization> disc_;
    double lambda_;
    HelmholtzBC bc_;
    /// Unpermuted boundary-dof layout (vertices then edge modes) remapped by
    /// a boundary-only RCM pass.
    std::vector<int> bperm_;
    std::size_t nb_ = 0;
    std::vector<ElemData> elems_;
    std::vector<int> dirichlet_dofs_;             ///< condensed numbering
    std::vector<char> is_dirichlet_;
    la::BandedCholesky chol_;
    std::vector<std::tuple<int, int, double>> lift_;
    /// Non-renumbered dof map (vertices first, edges, then interiors last).
    DofMap flat_map_;
};

} // namespace nektar
