#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "compute/backend.hpp"
#include "la/cg.hpp"
#include "nektar/helmholtz.hpp"

/// \file solver_options.hpp
/// The unified configuration API for the three Navier-Stokes solvers.
///
/// SerialNS2d, FourierNS and AleNS2d share one SolverOptions base (time
/// step, viscosity, integration order, boundary data, observability knobs)
/// and extend it only with what is genuinely solver-specific; the overlap
/// toggles use one naming convention (`overlap_*`).  Construct any solver
/// from its derived struct:
///
///     nektar::SerialNsOptions opts;
///     opts.dt = 1e-3;
///     opts.viscosity = 0.01;   // was `nu` before the unification
///     opts.trace = true;       // record stage spans into obs::tracer()
///     nektar::SerialNS2d ns(disc, opts);
namespace nektar {

/// Time-dependent Dirichlet velocity data g(x, y, t).
using VelocityBC = std::function<double(double, double, double)>;

/// Options every solver understands.
struct SolverOptions {
    double dt = 1e-3;
    double viscosity = 0.01; ///< kinematic viscosity (1/Re)
    int time_order = 2;      ///< 1..3 (stiffly-stable)
    HelmholtzBC velocity_bc{.dirichlet = {mesh::BoundaryTag::Inflow, mesh::BoundaryTag::Wall,
                                          mesh::BoundaryTag::Body}};
    HelmholtzBC pressure_bc{.dirichlet = {mesh::BoundaryTag::Outflow}};
    VelocityBC u_bc = [](double, double, double) { return 0.0; };
    VelocityBC v_bc = [](double, double, double) { return 0.0; };
    /// Record per-stage spans into the global obs tracer (obs::tracer() must
    /// be enable()d as well).  Comm-backed solvers stamp them on the rank's
    /// virtual clock lane ("rank N"); the serial solver uses the host clock.
    bool trace = false;
    /// Lane name override for the trace spans ("" = automatic).
    std::string trace_lane;
    /// Checkpoint the full solver state every N steps through the sink set
    /// with SolverCore::set_checkpoint_sink() (0 = never, the default).
    int checkpoint_every = 0;
    /// Compute backend for the elemental transforms (compute/backend.hpp):
    /// Auto defers to the discretization default, itself $REPRO_BACKEND.
    /// The resolved name is folded into the options fingerprint, so a
    /// checkpoint refuses to restore under a different backend.
    compute::BackendKind backend = compute::BackendKind::Auto;
};

struct SerialNsOptions : SolverOptions {};

/// Which distributed-transpose decomposition FourierNS runs (transpose.hpp).
enum class TransposeKind : std::uint8_t {
    Slab,   ///< the paper's 1-D slab: one P-wide alltoall (golden reference)
    Pencil, ///< 2-D pencil: two staged alltoalls over row/column subcomms
};

/// NekTar-F (Fourier-spectral, one mode per rank pair of planes).
struct FourierNsOptions : SolverOptions {
    std::size_t num_modes = 4; ///< complex Fourier modes M (Nz = 2M physical planes)
    double lz = 2.0 * 3.14159265358979323846; ///< spanwise length (paper uses 2*pi)
    VelocityBC w_bc = [](double, double, double) { return 0.0; };
    /// Pipeline the nonlinear step's transpositions against the z-line FFT
    /// work through the chunked nonblocking alltoall.  Bit-identical to the
    /// blocking path — only the virtual-clock accounting changes.
    bool overlap_transpose = true;
    std::size_t overlap_slices = 4; ///< pipeline depth (slices per exchange)
    /// Nominal FPU rate (flop/s) used to charge the z-line work to the
    /// simmpi virtual clocks, giving the pipelined exchange computation to
    /// hide transfers under.  Accounting only — results never depend on it;
    /// 0 disables the charge.
    double virtual_compute_flops = 150e6;
    /// Distributed-transpose decomposition.  Every kind moves bit-identical
    /// values; the choice changes only the message pattern the virtual clock
    /// prices (slab latency grows like P, pencil like sqrt(P)).
    TransposeKind transpose = TransposeKind::Slab;
    /// Pencil process-grid rows (0 = the most square grid for the rank
    /// count).  Must divide the communicator size; ignored for Slab.
    std::size_t pencil_rows = 0;
};

/// NekTar-ALE (moving mesh, element decomposition, PCG + gather-scatter).
struct AleOptions : SolverOptions {
    /// Vertical velocity of the body boundary at time t (heave/flap motion).
    std::function<double(double)> body_velocity = [](double) { return 0.0; };
    la::CgOptions cg{.max_iterations = 2000, .tolerance = 1e-9};
    /// Run the gather-scatter pairwise stage over posted irecvs with
    /// per-neighbour packing overlapped (bit-identical to blocking).
    /// Renamed from `gs_nonblocking` for the unified overlap_* convention.
    bool overlap_gs = true;
};

} // namespace nektar
