#pragma once

#include <span>

#include "nektar/discretization.hpp"

/// \file forces.hpp
/// Aerodynamic force (drag/lift) on a tagged boundary by integrating the
/// fluid traction sigma . n over the surface:
///   sigma_ij = -p delta_ij + nu (du_i/dx_j + du_j/dx_i).
/// This is the physical observable behind the paper's bluff-body and
/// flapping-wing workloads.
namespace nektar {

struct BodyForce {
    double fx = 0.0; ///< drag direction (+x)
    double fy = 0.0; ///< lift direction (+y)
};

/// Integrates the traction the *fluid exerts on the boundary* over every
/// boundary edge carrying `tag`.  Fields are per-element modal coefficients;
/// `nu` is the kinematic viscosity (density 1, as in the solvers).
[[nodiscard]] BodyForce body_force(const Discretization& disc,
                                   std::span<const double> u_modal,
                                   std::span<const double> v_modal,
                                   std::span<const double> p_modal, double nu,
                                   mesh::BoundaryTag tag);

} // namespace nektar
