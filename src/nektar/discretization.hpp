#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "mesh/mesh.hpp"
#include "nektar/dofmap.hpp"
#include "nektar/element_ops.hpp"

/// \file discretization.hpp
/// A mesh + expansion order + all per-element operators + the global dof map:
/// the shared state every solver (Helmholtz, Navier-Stokes serial/Fourier/ALE)
/// builds on.  Fields are flat arrays of per-element blocks in either modal
/// (coefficient) or quadrature (physical) space.
///
/// Batched elemental engine: elements are grouped by expansion (shape +
/// order).  A flat field restricted to a group of contiguous same-size
/// element blocks *is* a column-major matrix with one element per column, so
/// the whole-group transform is a single dgemm against the shared basis
/// matrix instead of one dgemv per element — the dgemv->dgemm batching the
/// paper's kernel study motivates (dgemm sustains several times the dgemv
/// flop rate at these sizes).  Non-contiguous groups gather/scatter through
/// thread-local scratch panels.  The `_planes` variants fuse all local
/// Fourier planes of a 3-D field into the batch dimension.
namespace nektar {

/// One group of elements sharing an expansion (and hence basis matrices).
struct ElemGroup {
    std::shared_ptr<const spectral::Expansion> exp;
    std::vector<std::size_t> elems; ///< element indices, ascending
    bool contiguous = false;        ///< indices consecutive => blocks adjacent
    std::size_t modal_begin = 0;    ///< flat offset of the first modal block
    std::size_t quad_begin = 0;     ///< flat offset of the first quad block
    /// Column-major operator copies: basis()/dbasis().transposed() viewed as
    /// nq-by-nm column-major matrices (leading dimension nq).
    la::DenseMatrix basis_cm, d1_cm, d2_cm;
    /// A maximal run of group-consecutive elements sharing one ElemMatrices
    /// instance (congruent geometry).  Projection solves a run's columns with
    /// a single multi-RHS sweep of the shared Cholesky factor.
    struct MatrixRun {
        std::size_t first = 0; ///< starting position within `elems`
        std::size_t count = 0;
        const ElemMatrices* mats = nullptr;
    };
    std::vector<MatrixRun> runs;
};

class Discretization {
public:
    Discretization(std::shared_ptr<const mesh::Mesh> m, std::size_t order,
                   bool renumber = true);

    [[nodiscard]] const mesh::Mesh& mesh() const noexcept { return *mesh_; }
    [[nodiscard]] std::size_t order() const noexcept { return order_; }
    [[nodiscard]] std::size_t num_elements() const noexcept { return ops_.size(); }
    [[nodiscard]] const ElementOps& ops(std::size_t e) const noexcept { return ops_[e]; }
    [[nodiscard]] const DofMap& dofmap() const noexcept { return dofmap_; }

    /// Flat field sizes and per-element offsets.
    [[nodiscard]] std::size_t modal_size() const noexcept { return modal_size_; }
    [[nodiscard]] std::size_t quad_size() const noexcept { return quad_size_; }
    [[nodiscard]] std::size_t modal_offset(std::size_t e) const noexcept {
        return modal_off_[e];
    }
    [[nodiscard]] std::size_t quad_offset(std::size_t e) const noexcept { return quad_off_[e]; }
    [[nodiscard]] std::span<double> modal_block(std::span<double> f, std::size_t e) const {
        return f.subspan(modal_off_[e], ops_[e].num_modes());
    }
    [[nodiscard]] std::span<const double> modal_block(std::span<const double> f,
                                                      std::size_t e) const {
        return f.subspan(modal_off_[e], ops_[e].num_modes());
    }
    [[nodiscard]] std::span<double> quad_block(std::span<double> f, std::size_t e) const {
        return f.subspan(quad_off_[e], ops_[e].num_quad());
    }
    [[nodiscard]] std::span<const double> quad_block(std::span<const double> f,
                                                     std::size_t e) const {
        return f.subspan(quad_off_[e], ops_[e].num_quad());
    }

    /// Element groups of the batched engine (one per distinct expansion).
    [[nodiscard]] const std::vector<ElemGroup>& groups() const noexcept { return groups_; }

    /// Whole-field transforms (batched per element group).
    void to_quad(std::span<const double> modal, std::span<double> quad) const;
    void project(std::span<const double> quad, std::span<double> modal) const;
    /// rhs += weak inner product (f, phi_i) for every element, batched.
    void weak_inner(std::span<const double> quad, std::span<double> rhs) const;
    /// Physical-space gradient of a modal field at the quadrature points.
    void grad_from_modal(std::span<const double> modal, std::span<double> dudx,
                         std::span<double> dudy) const;

    /// Multi-plane variants: `nplanes` whole fields stored back to back
    /// (plane p at offset p*modal_size() / p*quad_size()).  All planes join
    /// the batch dimension — on a single-group mesh each transform is one
    /// dgemm over every element of every plane.
    void to_quad_planes(std::span<const double> modal, std::span<double> quad,
                        std::size_t nplanes) const;
    void project_planes(std::span<const double> quad, std::span<double> modal,
                        std::size_t nplanes) const;
    void weak_inner_planes(std::span<const double> quad, std::span<double> rhs,
                           std::size_t nplanes) const;
    void grad_from_modal_planes(std::span<const double> modal, std::span<double> dudx,
                                std::span<double> dudy, std::size_t nplanes) const;

    /// Evaluates a function at every quadrature point.
    void eval_at_quad(const std::function<double(double, double)>& f,
                      std::span<double> quad) const;

    /// Scatter a global dof vector into local (per-element, signed) modal form.
    void scatter(std::span<const double> global, std::span<double> modal) const;
    /// Direct-stiffness gather: global[g] += sign * local (used by weak RHS).
    void gather_add(std::span<const double> modal, std::span<double> global) const;

    /// Quadrature of a physical-space field over the domain.
    [[nodiscard]] double integrate(std::span<const double> quad) const;
    /// L2 norm of a physical-space field.
    [[nodiscard]] double l2_norm(std::span<const double> quad) const;
    /// L2 error of a physical-space field against an exact solution.
    [[nodiscard]] double l2_error(std::span<const double> quad,
                                  const std::function<double(double, double)>& exact) const;

private:
    std::shared_ptr<const mesh::Mesh> mesh_;
    std::size_t order_;
    std::vector<ElementOps> ops_;
    DofMap dofmap_;
    std::vector<std::size_t> modal_off_, quad_off_;
    std::size_t modal_size_ = 0, quad_size_ = 0;
    std::vector<ElemGroup> groups_;
    bool single_group_ = false; ///< one contiguous group covers the mesh
};

} // namespace nektar
