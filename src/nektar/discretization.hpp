#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "compute/backend.hpp"
#include "mesh/mesh.hpp"
#include "nektar/dofmap.hpp"
#include "nektar/element_ops.hpp"

/// \file discretization.hpp
/// A mesh + expansion order + all per-element operators + the global dof map:
/// the shared state every solver (Helmholtz, Navier-Stokes serial/Fourier/ALE)
/// builds on.  Fields are flat arrays of per-element blocks in either modal
/// (coefficient) or quadrature (physical) space.
///
/// Batched elemental engine: elements are grouped by expansion (shape +
/// order).  A flat field restricted to a group of contiguous same-size
/// element blocks *is* a column-major matrix with one element per column, so
/// the whole-group transform is a single dgemm against the shared basis
/// matrix instead of one dgemv per element — the dgemv->dgemm batching the
/// paper's kernel study motivates (dgemm sustains several times the dgemv
/// flop rate at these sizes).  Non-contiguous groups gather/scatter through
/// thread-local scratch panels.  The `_planes` variants fuse all local
/// Fourier planes of a 3-D field into the batch dimension.
///
/// The transforms themselves are evaluated by a pluggable compute::Backend
/// (compute/backend.hpp): the batched dense engine is the reference
/// DenseBackend, and SumFactorBackend applies the same operators as staged
/// 1-D tensor contractions (O(P^3) instead of O(P^4) per quad element).
/// Every transform takes an optional BackendKind; Auto uses the
/// discretization default (constructor argument, itself defaulting to
/// $REPRO_BACKEND).  Both engines are built once at construction, so a
/// caller-chosen kind is a per-call dispatch, not a rebuild.
namespace nektar {

/// One group of elements sharing an expansion (and hence basis matrices).
struct ElemGroup {
    std::shared_ptr<const spectral::Expansion> exp;
    std::vector<std::size_t> elems; ///< element indices, ascending
    bool contiguous = false;        ///< indices consecutive => blocks adjacent
    std::size_t modal_begin = 0;    ///< flat offset of the first modal block
    std::size_t quad_begin = 0;     ///< flat offset of the first quad block
    /// Column-major operator copies: basis()/dbasis().transposed() viewed as
    /// nq-by-nm column-major matrices (leading dimension nq).
    la::DenseMatrix basis_cm, d1_cm, d2_cm;
    /// A maximal run of group-consecutive elements sharing one ElemMatrices
    /// instance (congruent geometry).  Projection solves a run's columns with
    /// a single multi-RHS sweep of the shared Cholesky factor.
    struct MatrixRun {
        std::size_t first = 0; ///< starting position within `elems`
        std::size_t count = 0;
        const ElemMatrices* mats = nullptr;
    };
    std::vector<MatrixRun> runs;
};

class Discretization {
public:
    Discretization(std::shared_ptr<const mesh::Mesh> m, std::size_t order,
                   bool renumber = true,
                   compute::BackendKind backend = compute::BackendKind::Auto);
    // The compute engines hold a back-pointer to this object.
    Discretization(const Discretization&) = delete;
    Discretization& operator=(const Discretization&) = delete;

    [[nodiscard]] const mesh::Mesh& mesh() const noexcept { return *mesh_; }
    [[nodiscard]] std::size_t order() const noexcept { return order_; }
    [[nodiscard]] std::size_t num_elements() const noexcept { return ops_.size(); }
    [[nodiscard]] const ElementOps& ops(std::size_t e) const noexcept { return ops_[e]; }
    [[nodiscard]] const DofMap& dofmap() const noexcept { return dofmap_; }

    /// Flat field sizes and per-element offsets.
    [[nodiscard]] std::size_t modal_size() const noexcept { return modal_size_; }
    [[nodiscard]] std::size_t quad_size() const noexcept { return quad_size_; }
    [[nodiscard]] std::size_t modal_offset(std::size_t e) const noexcept {
        return modal_off_[e];
    }
    [[nodiscard]] std::size_t quad_offset(std::size_t e) const noexcept { return quad_off_[e]; }
    [[nodiscard]] std::span<double> modal_block(std::span<double> f, std::size_t e) const {
        return f.subspan(modal_off_[e], ops_[e].num_modes());
    }
    [[nodiscard]] std::span<const double> modal_block(std::span<const double> f,
                                                      std::size_t e) const {
        return f.subspan(modal_off_[e], ops_[e].num_modes());
    }
    [[nodiscard]] std::span<double> quad_block(std::span<double> f, std::size_t e) const {
        return f.subspan(quad_off_[e], ops_[e].num_quad());
    }
    [[nodiscard]] std::span<const double> quad_block(std::span<const double> f,
                                                     std::size_t e) const {
        return f.subspan(quad_off_[e], ops_[e].num_quad());
    }

    /// Element groups of the batched engine (one per distinct expansion).
    [[nodiscard]] const std::vector<ElemGroup>& groups() const noexcept { return groups_; }
    /// True when one contiguous group covers the mesh (whole-field panels).
    [[nodiscard]] bool single_group() const noexcept { return single_group_; }
    /// Per-element flat offsets (indexable by the group element lists).
    [[nodiscard]] const std::vector<std::size_t>& modal_offsets() const noexcept {
        return modal_off_;
    }
    [[nodiscard]] const std::vector<std::size_t>& quad_offsets() const noexcept {
        return quad_off_;
    }

    /// The default backend kind transforms run under when passed Auto.
    [[nodiscard]] compute::BackendKind backend() const noexcept { return backend_; }
    /// The engine for `kind` (Auto = the discretization default).
    [[nodiscard]] const compute::Backend& engine(
        compute::BackendKind kind = compute::BackendKind::Auto) const noexcept;

    /// Whole-field transforms (batched per element group, evaluated by the
    /// selected compute backend).
    void to_quad(std::span<const double> modal, std::span<double> quad,
                 compute::BackendKind kind = compute::BackendKind::Auto) const;
    void project(std::span<const double> quad, std::span<double> modal,
                 compute::BackendKind kind = compute::BackendKind::Auto) const;
    /// rhs += weak inner product (f, phi_i) for every element, batched.
    void weak_inner(std::span<const double> quad, std::span<double> rhs,
                    compute::BackendKind kind = compute::BackendKind::Auto) const;
    /// Physical-space gradient of a modal field at the quadrature points.
    void grad_from_modal(std::span<const double> modal, std::span<double> dudx,
                         std::span<double> dudy,
                         compute::BackendKind kind = compute::BackendKind::Auto) const;

    /// Multi-plane variants: `nplanes` whole fields stored back to back
    /// (plane p at offset p*modal_size() / p*quad_size()).  All planes join
    /// the batch dimension — on a single-group mesh each transform is one
    /// dgemm over every element of every plane.
    void to_quad_planes(std::span<const double> modal, std::span<double> quad,
                        std::size_t nplanes,
                        compute::BackendKind kind = compute::BackendKind::Auto) const;
    void project_planes(std::span<const double> quad, std::span<double> modal,
                        std::size_t nplanes,
                        compute::BackendKind kind = compute::BackendKind::Auto) const;
    void weak_inner_planes(std::span<const double> quad, std::span<double> rhs,
                           std::size_t nplanes,
                           compute::BackendKind kind = compute::BackendKind::Auto) const;
    void grad_from_modal_planes(std::span<const double> modal, std::span<double> dudx,
                                std::span<double> dudy, std::size_t nplanes,
                                compute::BackendKind kind = compute::BackendKind::Auto) const;

    /// Fused nonlinear convective term (see compute::Backend::convect_planes):
    ///   nu = -(au du/dx + av du/dy),  nv = -(au dv/dx + av dv/dy),
    /// all fields at the quadrature points, batched over element groups.
    void convect_planes(std::span<const double> au, std::span<const double> av,
                        std::span<const double> u, std::span<const double> v,
                        std::span<double> nu, std::span<double> nv, std::size_t nplanes,
                        compute::BackendKind kind = compute::BackendKind::Auto) const;

    /// Evaluates a function at every quadrature point.
    void eval_at_quad(const std::function<double(double, double)>& f,
                      std::span<double> quad) const;

    /// Scatter a global dof vector into local (per-element, signed) modal form.
    void scatter(std::span<const double> global, std::span<double> modal) const;
    /// Direct-stiffness gather: global[g] += sign * local (used by weak RHS).
    void gather_add(std::span<const double> modal, std::span<double> global) const;

    /// Quadrature of a physical-space field over the domain.
    [[nodiscard]] double integrate(std::span<const double> quad) const;
    /// L2 norm of a physical-space field.
    [[nodiscard]] double l2_norm(std::span<const double> quad) const;
    /// L2 error of a physical-space field against an exact solution.
    [[nodiscard]] double l2_error(std::span<const double> quad,
                                  const std::function<double(double, double)>& exact) const;

private:
    std::shared_ptr<const mesh::Mesh> mesh_;
    std::size_t order_;
    std::vector<ElementOps> ops_;
    DofMap dofmap_;
    std::vector<std::size_t> modal_off_, quad_off_;
    std::size_t modal_size_ = 0, quad_size_ = 0;
    std::vector<ElemGroup> groups_;
    bool single_group_ = false; ///< one contiguous group covers the mesh
    compute::BackendKind backend_ = compute::BackendKind::Dense; ///< resolved default
    std::unique_ptr<compute::Backend> dense_, sumfact_;
};

} // namespace nektar
