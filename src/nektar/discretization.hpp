#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "mesh/mesh.hpp"
#include "nektar/dofmap.hpp"
#include "nektar/element_ops.hpp"

/// \file discretization.hpp
/// A mesh + expansion order + all per-element operators + the global dof map:
/// the shared state every solver (Helmholtz, Navier-Stokes serial/Fourier/ALE)
/// builds on.  Fields are flat arrays of per-element blocks in either modal
/// (coefficient) or quadrature (physical) space.
namespace nektar {

class Discretization {
public:
    Discretization(std::shared_ptr<const mesh::Mesh> m, std::size_t order,
                   bool renumber = true);

    [[nodiscard]] const mesh::Mesh& mesh() const noexcept { return *mesh_; }
    [[nodiscard]] std::size_t order() const noexcept { return order_; }
    [[nodiscard]] std::size_t num_elements() const noexcept { return ops_.size(); }
    [[nodiscard]] const ElementOps& ops(std::size_t e) const noexcept { return ops_[e]; }
    [[nodiscard]] const DofMap& dofmap() const noexcept { return dofmap_; }

    /// Flat field sizes and per-element offsets.
    [[nodiscard]] std::size_t modal_size() const noexcept { return modal_size_; }
    [[nodiscard]] std::size_t quad_size() const noexcept { return quad_size_; }
    [[nodiscard]] std::size_t modal_offset(std::size_t e) const noexcept {
        return modal_off_[e];
    }
    [[nodiscard]] std::size_t quad_offset(std::size_t e) const noexcept { return quad_off_[e]; }
    [[nodiscard]] std::span<double> modal_block(std::span<double> f, std::size_t e) const {
        return f.subspan(modal_off_[e], ops_[e].num_modes());
    }
    [[nodiscard]] std::span<const double> modal_block(std::span<const double> f,
                                                      std::size_t e) const {
        return f.subspan(modal_off_[e], ops_[e].num_modes());
    }
    [[nodiscard]] std::span<double> quad_block(std::span<double> f, std::size_t e) const {
        return f.subspan(quad_off_[e], ops_[e].num_quad());
    }
    [[nodiscard]] std::span<const double> quad_block(std::span<const double> f,
                                                     std::size_t e) const {
        return f.subspan(quad_off_[e], ops_[e].num_quad());
    }

    /// Whole-field transforms.
    void to_quad(std::span<const double> modal, std::span<double> quad) const;
    void project(std::span<const double> quad, std::span<double> modal) const;

    /// Evaluates a function at every quadrature point.
    void eval_at_quad(const std::function<double(double, double)>& f,
                      std::span<double> quad) const;

    /// Scatter a global dof vector into local (per-element, signed) modal form.
    void scatter(std::span<const double> global, std::span<double> modal) const;
    /// Direct-stiffness gather: global[g] += sign * local (used by weak RHS).
    void gather_add(std::span<const double> modal, std::span<double> global) const;

    /// Quadrature of a physical-space field over the domain.
    [[nodiscard]] double integrate(std::span<const double> quad) const;
    /// L2 norm of a physical-space field.
    [[nodiscard]] double l2_norm(std::span<const double> quad) const;
    /// L2 error of a physical-space field against an exact solution.
    [[nodiscard]] double l2_error(std::span<const double> quad,
                                  const std::function<double(double, double)>& exact) const;

private:
    std::shared_ptr<const mesh::Mesh> mesh_;
    std::size_t order_;
    std::vector<ElementOps> ops_;
    DofMap dofmap_;
    std::vector<std::size_t> modal_off_, quad_off_;
    std::size_t modal_size_ = 0, quad_size_ = 0;
};

} // namespace nektar
