#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "mesh/mesh.hpp"

/// \file dofmap.hpp
/// Global C0 degree-of-freedom numbering for the spectral/hp expansion.
///
/// Global dofs are mesh vertices, (order-1) modes per mesh edge (with a
/// direction convention: modes run from the smaller to the larger global
/// vertex id, so elements traversing an edge backwards pick up the
/// (-1)^(j-1) reversal sign), and per-element interior bubbles.  A reverse
/// Cuthill-McKee pass renumbers everything so the assembled Helmholtz
/// matrices are narrowly banded — the property the paper's direct solver
/// stages (5 and 7 of Figure 12) rely on.
namespace nektar {

struct LocalDof {
    int global = -1;
    double sign = 1.0;
};

class DofMap {
public:
    /// `renumber` applies the RCM bandwidth-reducing permutation; the
    /// iterative (PCG/ALE) path can skip it when rebuilding per step.
    DofMap(const mesh::Mesh& m, std::size_t order, bool renumber = true);

    [[nodiscard]] std::size_t num_global() const noexcept { return num_global_; }
    [[nodiscard]] std::size_t order() const noexcept { return order_; }

    /// Local-to-global map of element e, in the expansion's mode order.
    [[nodiscard]] const std::vector<LocalDof>& element_map(std::size_t e) const noexcept {
        return maps_[e];
    }

    /// Maximum |global_i - global_j| over mode pairs of any element: the
    /// half-bandwidth of the assembled matrix.
    [[nodiscard]] std::size_t bandwidth() const noexcept { return bandwidth_; }

    /// Global ids of dofs on boundary edges whose tag satisfies `pred`,
    /// including the edge endpoints' vertex dofs.
    [[nodiscard]] std::vector<int> boundary_dofs(
        const std::function<bool(mesh::BoundaryTag)>& pred) const;

    /// Computes Dirichlet values for those boundary dofs by interpolating
    /// the vertex values and L2-projecting g along each tagged edge.
    /// Returns pairs (global dof, value).
    [[nodiscard]] std::vector<std::pair<int, double>> dirichlet_values(
        const std::function<bool(mesh::BoundaryTag)>& pred,
        const std::function<double(double, double)>& g) const;

private:
    const mesh::Mesh* mesh_;
    std::size_t order_;
    std::size_t num_global_ = 0;
    std::size_t bandwidth_ = 0;
    std::vector<std::vector<LocalDof>> maps_;
    /// pre-RCM ids: vertex v -> dof, edge ed mode j -> dof (for BC handling)
    std::vector<int> vertex_dof_;
    std::vector<int> edge_dof_base_;
    std::vector<int> perm_; ///< pre-RCM id -> final global id
};

} // namespace nektar
