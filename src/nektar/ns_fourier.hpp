#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "fft/fft.hpp"
#include "nektar/helmholtz.hpp"
#include "nektar/transpose.hpp"
#include "nektar/ns_serial.hpp"
#include "nektar/splitting.hpp"

/// \file ns_fourier.hpp
/// NekTar-F: the Fourier-spectral/hp parallel Navier-Stokes solver (§4.2.1).
///
/// A 3-D field on a domain with one homogeneous (z) direction is expanded as
/// u(x,y,z) = sum_k u_k(x,y) exp(i beta_k z); each complex Fourier mode is a
/// pair of 2-D spectral/hp element planes ("one processor is assigned to one
/// Fourier mode which corresponds to two spectral/hp element planes").  The
/// per-mode Poisson/Helmholtz problems are solved with *direct* banded
/// solvers — the key speed advantage the paper highlights — while the
/// nonlinear step couples modes through MPI_Alltoall transpositions and
/// 1-D FFTs, exactly the paper's stage-2 bottleneck.  Time integration runs
/// through the shared stiffly-stable core (splitting.hpp) at order 1..3.
namespace nektar {

// FourierNsOptions (the SolverOptions extension for this solver) lives in
// solver_options.hpp with the rest of the unified configuration API.

/// 3-D initial condition f(x, y, z).
using Field3Fn = std::function<double(double, double, double)>;
/// Time-dependent 3-D field f(x, y, z, t) (exact-history starts).
using TimeField3Fn = std::function<double(double, double, double, double)>;

class FourierNS : public SolverCore {
public:
    /// `comm` is the rank's communicator (null = serial, all modes local).
    /// num_modes must be divisible by the communicator size.
    FourierNS(std::shared_ptr<const Discretization> disc, FourierNsOptions opts,
              simmpi::Comm* comm = nullptr);

    void set_initial(const Field3Fn& u0, const Field3Fn& v0, const Field3Fn& w0);

    /// Exact-history start for temporal convergence studies: sets the state
    /// at t = 0 and seeds the time_order - 1 history levels from t = -dt,
    /// -2 dt, so the first step runs at the full requested order.
    void set_initial_exact(const TimeField3Fn& u, const TimeField3Fn& v,
                           const TimeField3Fn& w);

    void step() { advance(); }

    [[nodiscard]] std::size_t local_modes() const noexcept { return mloc_; }
    [[nodiscard]] std::size_t total_modes() const noexcept { return opts_.num_modes; }
    [[nodiscard]] const Discretization& disc() const noexcept { return *disc_; }

    /// Quadrature values of local plane `p` (p = 2*local_mode + [0 re |1 im])
    /// of velocity component c (0 = u, 1 = v, 2 = w).
    [[nodiscard]] std::span<const double> plane_quad(int c, std::size_t p) const;

    /// Evaluates the physical-space velocity component c at (quad point of
    /// the plane mesh, z) by summing this rank's modes; ranks combine via
    /// allreduce when called collectively through l2_error_3d.
    [[nodiscard]] double l2_error_3d(simmpi::Comm* comm, int c, double t,
                                     const std::function<double(double, double, double, double)>&
                                         exact) const;

    /// Kinetic-energy content of local complex mode m of component c:
    /// integral over the plane of |u_km|^2 (re^2 + im^2), the z-spectrum
    /// diagnostic turbulence runs monitor.
    [[nodiscard]] double mode_energy(int c, std::size_t m) const;

    /// Degrees of freedom per velocity field on this rank (paper's Gamma).
    [[nodiscard]] std::size_t dof_per_field() const noexcept {
        return 2 * mloc_ * disc_->modal_size();
    }

    /// The per-effective-order velocity operator cache (restart regression
    /// hook: a run resumed mid-ramp must rebuild the ramp orders' operators).
    [[nodiscard]] const HelmholtzOrderCache& velocity_solver_cache() const noexcept {
        return velocity_solvers_;
    }

protected:
    void stage_transform(const StepContext& ctx) override;
    void stage_nonlinear(const StepContext& ctx,
                         std::vector<std::vector<double>>& nl) override;
    void stage_pressure_rhs(const StepContext& ctx,
                            const std::vector<std::vector<double>>& hat) override;
    void stage_pressure_solve(const StepContext& ctx) override;
    void stage_viscous_rhs(const StepContext& ctx,
                           std::vector<std::vector<double>>& hat) override;
    void stage_viscous_solve(const StepContext& ctx) override;
    void end_step(const StepContext& ctx) override;
    [[nodiscard]] const std::vector<double>& quad_field(std::size_t c) const override {
        return quad_[c];
    }
    void save_state(ckpt::Checkpoint& c) const override;
    void restore_state(const ckpt::Checkpoint& c) override;
    [[nodiscard]] std::uint64_t options_fingerprint() const override;

private:
    [[nodiscard]] double beta(std::size_t global_mode) const noexcept;
    [[nodiscard]] std::size_t global_mode(std::size_t local) const noexcept;
    void nonlinear(std::vector<std::vector<double>>& nl);
    void transform_all_to_quad();
    /// Samples pointwise 3-D fields into the local modes' state (no reset).
    void load_state(const Field3Fn& u0, const Field3Fn& v0, const Field3Fn& w0);

    std::shared_ptr<const Discretization> disc_;
    FourierNsOptions opts_;
    /// Resolved compute backend (opts_.backend, Auto -> disc default).
    compute::BackendKind backend_ = compute::BackendKind::Auto;
    simmpi::Comm* comm_;
    std::size_t mloc_;       ///< complex modes per rank
    std::size_t nplanes_;    ///< 2 * mloc_
    /// Slab or pencil per opts_.transpose (construction derives the pencil's
    /// subcommunicators collectively, so all ranks must agree on the kind).
    std::unique_ptr<Transpose> transpose_;
    fft::Plan zplan_;        ///< length-Nz real FFT plan

    std::vector<HelmholtzDirect> pressure_;  ///< one per local mode
    /// Per-mode velocity operators keyed on the *effective* startup order
    /// (lambda = gamma0/(nu dt) + beta_k^2 must match the explicit weights).
    HelmholtzOrderCache velocity_solvers_;

    // [component][plane * modal_size] modal coefficients; quad likewise.
    std::vector<double> modal_[3];
    std::vector<double> quad_[3];
    std::vector<double> p_modal_;            ///< pressure planes
    // Inter-stage scratch: per-plane pressure and velocity RHS vectors.
    std::vector<std::vector<double>> prhs_, vrhs_;
};

} // namespace nektar
