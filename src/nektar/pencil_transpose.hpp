#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "nektar/transpose.hpp"
#include "simmpi/simmpi.hpp"

/// \file pencil_transpose.hpp
/// The 2-D pencil decomposition of the distributed transpose.
///
/// The paper's 1-D slab runs one P-wide alltoall whose latency term grows
/// like P — fine at the paper's P <= 16, ruinous at P = 4096.  The pencil
/// arranges the P ranks as a rows x cols grid and runs the exchange as two
/// staged alltoalls over subcommunicators:
///
///   stage 1 (row comm, cols ranks):  every rank scatters its own planes to
///     the point-sets owned by each *column* of the grid, leaving it with
///     its row's planes at its column's points — a "pencil" of the data;
///   stage 2 (column comm, rows ranks):  the pencil is re-scattered along
///     the column so every rank ends with all planes for its final chunk of
///     points.
///
/// Per-rank volume is the same as the slab's; what changes is the message
/// count (rows + cols - 2 peers instead of P - 1), which is what the latency
/// term of the network model prices.  The plane and point ownership maps are
/// identical to FourierTranspose's, so the produced buffers — padding zeros
/// included — are bit-identical to the slab's, and the two implementations
/// can be A/B-tested at any rank count.
namespace nektar {

class PencilTranspose : public Transpose {
public:
    /// `comm` may be null for the serial (1-rank) case.  `rows` picks the
    /// process-grid shape (must divide comm->size()); `rows` = 0 chooses the
    /// largest divisor <= sqrt(P), the most square grid available.
    /// Construction is collective: every rank of `comm` derives the row and
    /// column subcommunicators via two split() calls.
    PencilTranspose(simmpi::Comm* comm, std::size_t nq, std::size_t nplanes,
                    std::size_t rows = 0);

    [[nodiscard]] std::size_t num_ranks() const noexcept override { return nranks_; }
    [[nodiscard]] std::size_t chunk() const noexcept override { return chunk_; }
    [[nodiscard]] std::size_t total_planes() const noexcept override {
        return nplanes_ * nranks_;
    }
    [[nodiscard]] std::size_t planes_buffer_size() const noexcept override {
        return nplanes_ * nq_;
    }
    [[nodiscard]] std::size_t lines_buffer_size() const noexcept override {
        return chunk_ * total_planes();
    }
    [[nodiscard]] std::size_t global_point(std::size_t i, int rank) const noexcept override {
        return static_cast<std::size_t>(rank) * chunk_ + i;
    }

    /// The process grid: num_ranks() == grid_rows() * grid_cols().
    [[nodiscard]] std::size_t grid_rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t grid_cols() const noexcept { return cols_; }

    void to_lines(simmpi::Comm* comm, std::span<const double> planes,
                  std::span<double> lines) const override;
    void to_planes(simmpi::Comm* comm, std::span<const double> lines,
                   std::span<double> planes) const override;

    void to_lines_overlapped(simmpi::Comm* comm, std::span<const double> planes,
                             std::span<double> lines, std::size_t nslices,
                             const std::function<void(std::size_t, std::size_t)>& on_ready =
                                 {}) const override;
    void to_planes_overlapped(simmpi::Comm* comm, std::span<const double> lines,
                              std::span<double> planes, std::size_t nslices,
                              const std::function<void(std::size_t, std::size_t)>& produce =
                                  {}) const override;
    void roundtrip_overlapped(
        simmpi::Comm* comm, const std::vector<std::span<const double>>& planes_in,
        const std::vector<std::span<double>>& lines_in,
        const std::vector<std::span<const double>>& lines_out,
        const std::vector<std::span<double>>& planes_out, std::size_t nslices,
        const std::function<void(std::size_t, std::size_t)>& compute) const override;

    /// The subcommunicators carry checkpointable progress (collective tag and
    /// split sequences); the solver saves/restores them around the world
    /// comm's own state so a recovery replay reprices bit-identically.
    [[nodiscard]] bool has_state() const noexcept override { return !row_.is_null(); }
    void save_state(ckpt::SectionWriter& w) const override;
    void restore_state(ckpt::SectionReader& r) override;

private:
    // Buffer geometry.  Stage-1 per-peer blocks are plane-major
    // [rp * nplanes * chunk + lp * chunk + ck] (b1 = rows * nplanes * chunk
    // doubles each, one per row peer); stage-2 blocks are point-major
    // [ck * G + gl] with G = cols * nplanes row-local planes (b2 = chunk * G
    // doubles each, one per column peer), so a contiguous run of points is a
    // shippable slice — the granularity the overlapped pipeline cuts on.
    void pack_stage1(std::span<const double> planes, std::span<double> send) const;
    void unpack_planes(std::span<const double> recv, std::span<double> planes) const;
    void stage1_to_m(std::span<const double> recv1, std::span<double> m) const;
    void m_to_stage1(std::span<const double> m, std::span<double> send1) const;
    void unpack_lines_slice(std::span<const double> recv2, std::span<double> lines,
                            std::size_t pb, std::size_t pe) const;
    void pack_lines_slice(std::span<const double> lines, std::span<double> send2,
                          std::size_t pb, std::size_t pe) const;

    std::size_t nq_;
    std::size_t nplanes_;
    std::size_t nranks_;
    std::size_t chunk_;
    std::size_t rows_ = 1;
    std::size_t cols_ = 1;
    std::size_t my_row_ = 0;
    std::size_t my_col_ = 0;
    std::size_t b1_ = 0; ///< stage-1 per-peer block, doubles
    std::size_t b2_ = 0; ///< stage-2 per-peer block, doubles
    // Mutable: the exchanges advance the owning rank's virtual clocks and
    // logs; the decomposition itself never changes after construction.
    mutable simmpi::Comm row_;
    mutable simmpi::Comm col_;
};

} // namespace nektar
