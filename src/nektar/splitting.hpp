#pragma once

#include <array>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "nektar/helmholtz.hpp"
#include "obs/trace.hpp"
#include "perf/stage_stats.hpp"

/// \file splitting.hpp
/// The shared stiffly-stable time-integration core of the three
/// Navier-Stokes solvers (serial 2-D, NekTar-F, NekTar-ALE).
///
/// All three application codes of the paper integrate the incompressible
/// Navier-Stokes equations with the high-order splitting scheme of
/// Karniadakis, Israeli & Orszag (1991):
///
///   uhat             = sum_q alpha_q u^{n-q} + dt sum_q beta_q N(u^{n-q})
///   lap p^{n+1}      = div uhat / dt                  (pressure Poisson)
///   (lap - gamma0/(nu dt)) u^{n+1} = -uhat''/(nu dt)  (viscous Helmholtz)
///
/// at integration order Je = 1..3.  This header owns the pieces that are
/// identical across the solvers: the coefficient tables, the startup-order
/// ramp, the field-history ring buffers, per-effective-order Helmholtz
/// operator caches (so the implicit lambda always matches the explicit
/// weights, including on the ramped first steps), and the SolverCore stage
/// pipeline that sequences the paper's 7 instrumented stages around
/// per-solver hooks (nonlinear terms, pressure/viscous RHS and solves).
namespace nektar {

/// Highest supported integration order (the paper's Je <= 3).
inline constexpr int kMaxTimeOrder = 3;

/// Stiffly-stable integration coefficients for one order Je.
struct SplittingCoeffs {
    int order;       ///< Je
    double gamma0;   ///< implicit weight of u^{n+1}
    std::array<double, kMaxTimeOrder> alpha; ///< explicit velocity weights
    std::array<double, kMaxTimeOrder> beta;  ///< explicit nonlinear weights
};

/// The coefficient table for Je in [1, kMaxTimeOrder]; throws
/// std::invalid_argument outside that range.
[[nodiscard]] const SplittingCoeffs& stiffly_stable(int order);

/// Ring buffer of the last `depth` time levels of a `components`-field set
/// (u^{n-1}, u^{n-2}, ... — the *current* level lives with the solver).
/// Age 1 is the most recently pushed level, age `depth` the oldest.
class FieldHistory {
public:
    FieldHistory() = default;

    /// (Re)configures for `components` fields of `size` entries each keeping
    /// `depth` levels, and forgets all stored levels.
    void configure(std::size_t components, std::size_t size, int depth);

    /// Forgets all stored levels (keeps the configuration).
    void clear();

    /// Stores a new most-recent level, evicting the oldest when full.
    /// `fields` must hold `components` vectors of `size` entries.
    void push(std::vector<std::vector<double>> fields);

    /// Number of levels currently stored (<= depth).
    [[nodiscard]] int available() const noexcept { return stored_; }
    [[nodiscard]] int depth() const noexcept { return depth_; }

    /// Component `c` of the level `age` steps back (age in [1, available()]).
    [[nodiscard]] const std::vector<double>& level(int age, std::size_t c) const;

    /// Serializes configuration, ring position (head/stored — the startup
    /// ramp lives here) and every slot's contents.
    void save(ckpt::SectionWriter& w) const;
    /// Restores the state written by save(); the stored configuration must
    /// match this buffer's (reconfiguring through a checkpoint would mean
    /// the solver options changed — that is a fingerprint failure upstream).
    void restore(ckpt::SectionReader& r);

private:
    std::size_t components_ = 0;
    std::size_t size_ = 0;
    int depth_ = 0;
    int stored_ = 0;
    int head_ = -1; ///< ring slot of the most recent level
    std::vector<std::vector<std::vector<double>>> ring_; ///< [slot][component]
};

/// Lazily built per-effective-order sets of direct Helmholtz operators.
/// During the startup ramp the effective gamma0 differs from the requested
/// order's, so the velocity operator lambda = gamma0/(nu dt) (+ beta_k^2)
/// must be rebuilt to match the explicit weights; this cache builds each
/// order's operator set once, on first use.
class HelmholtzOrderCache {
public:
    /// Builds the full operator set (one per Fourier mode; a single entry
    /// for the 2-D solvers) for the given effective gamma0.
    using Factory = std::function<std::vector<HelmholtzDirect>(double gamma0)>;

    void configure(Factory factory);

    /// The operator set for integration order `je`, built on first use.
    [[nodiscard]] const std::vector<HelmholtzDirect>& get(int je) const;

    /// The orders whose operator sets have been built, ascending.  The
    /// restart regression tests use this to assert a run resumed mid-ramp
    /// rebuilds the ramp orders' operators, not just the steady-state one.
    [[nodiscard]] std::vector<int> built_orders() const;

private:
    Factory factory_;
    mutable std::array<std::optional<std::vector<HelmholtzDirect>>, kMaxTimeOrder + 1> cache_;
};

/// The shared stage pipeline: owns the clock, the step counter, the stage
/// breakdown, the velocity/nonlinear histories, and the stage-3 stiffly-
/// stable extrapolation; derived solvers supply the variant-specific stages
/// through the protected hooks.  One advance() is one time step split into
/// the paper's 7 instrumented stages (Figure 12):
///   1 transform modal -> quadrature    5 Poisson (pressure) solve
///   2 nonlinear terms                  6 Helmholtz RHS setup
///   3 extrapolation weighting          7 Helmholtz (viscous) solve
///   4 Poisson RHS setup
class SolverCore {
public:
    [[nodiscard]] double time() const noexcept { return time_; }
    [[nodiscard]] int steps_taken() const noexcept { return steps_taken_; }
    [[nodiscard]] int time_order() const noexcept { return time_order_; }

    [[nodiscard]] const perf::StageBreakdown& breakdown() const noexcept { return breakdown_; }
    perf::StageBreakdown& breakdown() noexcept { return breakdown_; }

    /// Effective integration order of the upcoming step: the requested order
    /// capped by the available history (the startup ramp 1, 2, ..., Je, or
    /// Je immediately after prime_history()).
    [[nodiscard]] int effective_order() const noexcept;

    /// Integration order the most recent step actually ran at (0 before any
    /// step has been taken).
    [[nodiscard]] int last_step_order() const noexcept { return last_step_order_; }

    /// The Helmholtz lambda = gamma0_eff/(nu dt) (plus the beta_k^2 shift of
    /// the mean mode, where applicable) used by the most recent velocity
    /// solve; NaN before any step.  Regression hook: this must always match
    /// the explicit weights of the same step.
    [[nodiscard]] double last_velocity_lambda() const noexcept {
        return last_velocity_lambda_;
    }

    // --- checkpoint/restart -------------------------------------------------
    /// Snapshots the full integration state — clock, step counter, both
    /// history ring buffers (so a restart lands at the exact startup-ramp
    /// position), the stage breakdown's deterministic counters, the solver's
    /// fields, and a fingerprint of the solver options.  Serializing the
    /// result twice from the same state yields identical bytes.
    [[nodiscard]] ckpt::Checkpoint checkpoint() const;

    /// Restores the state written by checkpoint().  Throws ckpt::Error if the
    /// checkpoint's options fingerprint does not match this solver's (same
    /// section-named diagnostics as a corrupt file), or if any section is
    /// malformed.  After restore() the next advance() reproduces, bit for
    /// bit, the step the checkpointed run took next.
    void restore(const ckpt::Checkpoint& c);

    /// Called with the fresh checkpoint every cadence steps (see
    /// set_checkpoint_cadence); typically writes it to a file or a
    /// ckpt::Store.
    using CheckpointSink = std::function<void(const ckpt::Checkpoint&)>;
    void set_checkpoint_sink(CheckpointSink sink) { checkpoint_sink_ = std::move(sink); }

    /// Checkpoints after every `every` steps (0 disables, the default).
    /// SolverOptions::checkpoint_every seeds this at construction.
    void set_checkpoint_cadence(int every) noexcept { checkpoint_every_ = every; }
    [[nodiscard]] int checkpoint_cadence() const noexcept { return checkpoint_every_; }

protected:
    /// `num_fields` advected velocity components (2 for the 2-D solvers,
    /// 3 for NekTar-F); `field_size` entries per component.
    SolverCore(int time_order, double dt, std::size_t num_fields);
    ~SolverCore() = default;

    /// Per-step context handed to every hook.
    struct StepContext {
        int step;                      ///< 0-based index of this step
        const SplittingCoeffs& scheme; ///< effective coefficients this step
        double dt;
        double t_new;                  ///< time at the end of this step
    };

    /// Runs one full splitting step through the stage pipeline.
    void advance();

    /// Resets the clock, the step counter, and both histories; call from
    /// set_initial once the per-component field size is known.
    void reset_state(std::size_t field_size);

    /// Seeds one history level (oldest first) of velocity quad fields and
    /// their nonlinear terms, so the first step can run at full order
    /// instead of ramping; used by the exact-start paths of the solvers.
    void push_history(std::vector<std::vector<double>> vel,
                      std::vector<std::vector<double>> nl);

    /// Derived stage-7 implementations report the lambda they solved with.
    void record_velocity_lambda(double lambda) noexcept { last_velocity_lambda_ = lambda; }

    /// Routes per-step/per-stage spans of advance() to obs lane `lane_name`,
    /// stamped by `clock` (a simmpi virtual wall clock for comm-backed
    /// solvers; empty = the host clock).  No-op with tracing compiled out;
    /// with it compiled in, events only record while obs::tracer() is
    /// enabled.  Derived solvers call this when their options ask for
    /// tracing (SolverOptions::trace).
    void configure_trace(const std::string& lane_name, std::function<double()> clock = {});

    // --- per-solver hooks, called in pipeline order ---
    /// Work preceding stage 1 (the ALE mesh-velocity solve and mesh update);
    /// charges its own StageScopes.
    virtual void begin_step(const StepContext& ctx);
    /// Stage 1: transform modal -> quadrature for every field.
    virtual void stage_transform(const StepContext& ctx) = 0;
    /// Stage 2: nonlinear terms at quadrature points, one vector per field.
    virtual void stage_nonlinear(const StepContext& ctx,
                                 std::vector<std::vector<double>>& nl) = 0;
    /// Stage 4: pressure Poisson RHS from the extrapolated fields.
    virtual void stage_pressure_rhs(const StepContext& ctx,
                                    const std::vector<std::vector<double>>& hat) = 0;
    /// Stage 5: the pressure solve.
    virtual void stage_pressure_solve(const StepContext& ctx) = 0;
    /// Stage 6: viscous Helmholtz RHS; updates `hat` in place.
    virtual void stage_viscous_rhs(const StepContext& ctx,
                                   std::vector<std::vector<double>>& hat) = 0;
    /// Stage 7: the velocity solves; must call record_velocity_lambda().
    virtual void stage_viscous_solve(const StepContext& ctx) = 0;
    /// Work following stage 7 (transform the new solution back to
    /// quadrature space).
    virtual void end_step(const StepContext& ctx);

    /// Quadrature values of advected field `c` as of the last stage-1
    /// transform; feeds the extrapolation and the velocity history.
    [[nodiscard]] virtual const std::vector<double>& quad_field(std::size_t c) const = 0;

    // --- checkpoint hooks ---------------------------------------------------
    /// Adds the solver-specific sections ("fields", and e.g. "mesh"/"comm")
    /// to the checkpoint; the core sections are already present.
    virtual void save_state(ckpt::Checkpoint& c) const = 0;
    /// Restores the sections written by save_state().  The core state is
    /// restored before this is called, so steps_taken()/time() are already
    /// the checkpoint's.
    virtual void restore_state(const ckpt::Checkpoint& c) = 0;
    /// Stable hash of every option that shapes the state vector (scheme,
    /// resolution, dt, rank layout); restore() refuses a checkpoint whose
    /// fingerprint differs.
    [[nodiscard]] virtual std::uint64_t options_fingerprint() const = 0;

private:
    /// Stage 3: hat_c = sum_q alpha_q u_c^{n-q} + dt sum_q beta_q N_c^{n-q},
    /// identical across the three solvers.
    void extrapolate(const StepContext& ctx, const std::vector<std::vector<double>>& nl_new,
                     std::vector<std::vector<double>>& hat);

    /// Fires the checkpoint sink when the cadence divides steps_taken_.
    void maybe_checkpoint() const;

    int time_order_;
    double dt_;
    std::size_t num_fields_;
    std::size_t field_size_ = 0;

    double time_ = 0.0;
    int steps_taken_ = 0;
    int last_step_order_ = 0;
    double last_velocity_lambda_ = std::numeric_limits<double>::quiet_NaN();

    FieldHistory vel_hist_; ///< u^{n-1}, u^{n-2}, ...
    FieldHistory nl_hist_;  ///< N^{n-1}, N^{n-2}, ...
    std::vector<std::vector<double>> nl_scratch_, hat_scratch_;

    perf::StageBreakdown breakdown_;

    int checkpoint_every_ = 0;
    CheckpointSink checkpoint_sink_;

    // Tracing: the lane advance() stamps stage spans on, its clock, and the
    // pre-interned event names ([0] = "step", [s] = stage s's short name).
    obs::Lane* trace_lane_ = nullptr;
    std::function<double()> trace_clock_;
    std::array<std::uint32_t, perf::kNumStages + 1> trace_ids_{};
};

} // namespace nektar
