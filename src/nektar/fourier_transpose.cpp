#include "nektar/fourier_transpose.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "obs/trace.hpp"

namespace nektar {

namespace {

/// Span on the calling rank's lane for one transpose entry point, stamped on
/// the virtual clock; inert without a comm or with tracing off.
class TransposeSpan {
public:
    TransposeSpan(simmpi::Comm* comm, const char* name) {
        if (comm == nullptr || !obs::active()) return;
        obs::Tracer& tr = obs::tracer();
        lane_ = tr.lane("rank " + std::to_string(comm->rank()));
        name_ = tr.intern(name);
        comm_ = comm;
        tr.begin(lane_, name_, comm_->wall_time(), /*virtual_time=*/true);
    }
    TransposeSpan(const TransposeSpan&) = delete;
    TransposeSpan& operator=(const TransposeSpan&) = delete;
    ~TransposeSpan() {
        if (comm_ != nullptr && obs::active())
            obs::tracer().end(lane_, name_, comm_->wall_time(), /*virtual_time=*/true);
    }

private:
    simmpi::Comm* comm_ = nullptr;
    obs::Lane* lane_ = nullptr;
    std::uint32_t name_ = 0;
};

} // namespace

FourierTranspose::FourierTranspose(simmpi::Comm* comm, std::size_t nq, std::size_t nplanes)
    : nq_(nq),
      nplanes_(nplanes),
      nranks_(comm ? static_cast<std::size_t>(comm->size()) : 1),
      chunk_((nq + nranks_ - 1) / nranks_) {}

void FourierTranspose::to_lines(simmpi::Comm* comm, std::span<const double> planes,
                                std::span<double> lines) const {
    assert(planes.size() == planes_buffer_size());
    assert(lines.size() == lines_buffer_size());
    const TransposeSpan span(comm, "transpose.to_lines");
    const std::size_t tp = total_planes();
    if (nranks_ == 1) {
        for (std::size_t i = 0; i < chunk_; ++i)
            for (std::size_t lp = 0; lp < nplanes_; ++lp)
                lines[i * tp + lp] = i < nq_ ? planes[lp * nq_ + i] : 0.0;
        return;
    }
    const std::size_t block = nplanes_ * chunk_;
    std::vector<double> send(block * nranks_, 0.0), recv(block * nranks_);
    for (std::size_t s = 0; s < nranks_; ++s) {
        for (std::size_t lp = 0; lp < nplanes_; ++lp) {
            for (std::size_t c = 0; c < chunk_; ++c) {
                const std::size_t i = s * chunk_ + c;
                send[s * block + lp * chunk_ + c] = i < nq_ ? planes[lp * nq_ + i] : 0.0;
            }
        }
    }
    comm->alltoall(send, recv, block);
    const std::size_t me = static_cast<std::size_t>(comm->rank());
    (void)me;
    for (std::size_t r = 0; r < nranks_; ++r) {
        for (std::size_t lp = 0; lp < nplanes_; ++lp) {
            const std::size_t gp = r * nplanes_ + lp;
            for (std::size_t c = 0; c < chunk_; ++c)
                lines[c * tp + gp] = recv[r * block + lp * chunk_ + c];
        }
    }
}

void FourierTranspose::to_planes(simmpi::Comm* comm, std::span<const double> lines,
                                 std::span<double> planes) const {
    assert(planes.size() == planes_buffer_size());
    assert(lines.size() == lines_buffer_size());
    const TransposeSpan span(comm, "transpose.to_planes");
    const std::size_t tp = total_planes();
    if (nranks_ == 1) {
        for (std::size_t lp = 0; lp < nplanes_; ++lp)
            for (std::size_t i = 0; i < nq_; ++i) planes[lp * nq_ + i] = lines[i * tp + lp];
        return;
    }
    const std::size_t block = nplanes_ * chunk_;
    std::vector<double> send(block * nranks_), recv(block * nranks_);
    // Send to rank r the planes r owns, for my chunk of points.
    for (std::size_t r = 0; r < nranks_; ++r)
        for (std::size_t lp = 0; lp < nplanes_; ++lp)
            for (std::size_t c = 0; c < chunk_; ++c)
                send[r * block + lp * chunk_ + c] = lines[c * tp + r * nplanes_ + lp];
    comm->alltoall(send, recv, block);
    for (std::size_t s = 0; s < nranks_; ++s) {
        for (std::size_t lp = 0; lp < nplanes_; ++lp) {
            for (std::size_t c = 0; c < chunk_; ++c) {
                const std::size_t i = s * chunk_ + c;
                if (i < nq_) planes[lp * nq_ + i] = recv[s * block + lp * chunk_ + c];
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Overlapped (pipelined) mode
// ---------------------------------------------------------------------------

void FourierTranspose::pack_forward_slice(std::span<const double> planes,
                                          std::span<double> send, std::size_t pb,
                                          std::size_t pe) const {
    const std::size_t block = nplanes_ * chunk_;
    for (std::size_t d = 0; d < nranks_; ++d) {
        for (std::size_t c = pb; c < pe; ++c) {
            const std::size_t i = d * chunk_ + c;
            for (std::size_t lp = 0; lp < nplanes_; ++lp)
                send[d * block + c * nplanes_ + lp] = i < nq_ ? planes[lp * nq_ + i] : 0.0;
        }
    }
}

void FourierTranspose::unpack_forward_slice(std::span<const double> recv,
                                            std::span<double> lines, std::size_t pb,
                                            std::size_t pe) const {
    const std::size_t block = nplanes_ * chunk_;
    const std::size_t tp = total_planes();
    for (std::size_t r = 0; r < nranks_; ++r)
        for (std::size_t c = pb; c < pe; ++c)
            for (std::size_t lp = 0; lp < nplanes_; ++lp)
                lines[c * tp + r * nplanes_ + lp] = recv[r * block + c * nplanes_ + lp];
}

void FourierTranspose::pack_reverse_slice(std::span<const double> lines,
                                          std::span<double> send, std::size_t pb,
                                          std::size_t pe) const {
    const std::size_t block = nplanes_ * chunk_;
    const std::size_t tp = total_planes();
    for (std::size_t d = 0; d < nranks_; ++d)
        for (std::size_t c = pb; c < pe; ++c)
            for (std::size_t lp = 0; lp < nplanes_; ++lp)
                send[d * block + c * nplanes_ + lp] = lines[c * tp + d * nplanes_ + lp];
}

void FourierTranspose::unpack_reverse_slice(std::span<const double> recv,
                                            std::span<double> planes, std::size_t pb,
                                            std::size_t pe) const {
    const std::size_t block = nplanes_ * chunk_;
    for (std::size_t s = 0; s < nranks_; ++s) {
        for (std::size_t c = pb; c < pe; ++c) {
            const std::size_t i = s * chunk_ + c;
            if (i >= nq_) continue;
            for (std::size_t lp = 0; lp < nplanes_; ++lp)
                planes[lp * nq_ + i] = recv[s * block + c * nplanes_ + lp];
        }
    }
}

void FourierTranspose::to_lines_overlapped(
    simmpi::Comm* comm, std::span<const double> planes, std::span<double> lines,
    std::size_t nslices, const std::function<void(std::size_t, std::size_t)>& on_ready) const {
    assert(planes.size() == planes_buffer_size());
    assert(lines.size() == lines_buffer_size());
    const TransposeSpan span(comm, "transpose.to_lines_overlapped");
    if (!comm || nranks_ == 1) {
        to_lines(comm, planes, lines);
        if (on_ready) on_ready(0, chunk_);
        return;
    }
    const std::size_t block = nplanes_ * chunk_;
    std::vector<double> send(block * nranks_), recv(block * nranks_);
    simmpi::Ialltoall h = comm->ialltoall(recv, block, nslices, nplanes_);
    // Ship every slice up front; the transfers accrue in the background.
    for (std::size_t s = 0; s < h.num_slices(); ++s) {
        const std::size_t pb = h.slice_offset(s) / nplanes_;
        pack_forward_slice(planes, send, pb, pb + h.slice_len(s) / nplanes_);
        h.send_slice(s, send);
    }
    for (std::size_t s = 0; s < h.num_slices(); ++s) {
        const std::size_t pb = h.slice_offset(s) / nplanes_;
        const std::size_t pe = pb + h.slice_len(s) / nplanes_;
        h.wait_slice(s);
        unpack_forward_slice(recv, lines, pb, pe);
        if (on_ready) on_ready(pb, pe);
    }
}

void FourierTranspose::to_planes_overlapped(
    simmpi::Comm* comm, std::span<const double> lines, std::span<double> planes,
    std::size_t nslices, const std::function<void(std::size_t, std::size_t)>& produce) const {
    assert(planes.size() == planes_buffer_size());
    assert(lines.size() == lines_buffer_size());
    const TransposeSpan span(comm, "transpose.to_planes_overlapped");
    if (!comm || nranks_ == 1) {
        if (produce) produce(0, chunk_);
        to_planes(comm, lines, planes);
        return;
    }
    const std::size_t block = nplanes_ * chunk_;
    std::vector<double> send(block * nranks_), recv(block * nranks_);
    simmpi::Ialltoall h = comm->ialltoall(recv, block, nslices, nplanes_);
    for (std::size_t s = 0; s < h.num_slices(); ++s) {
        const std::size_t pb = h.slice_offset(s) / nplanes_;
        const std::size_t pe = pb + h.slice_len(s) / nplanes_;
        if (produce) produce(pb, pe);
        pack_reverse_slice(lines, send, pb, pe);
        h.send_slice(s, send);
    }
    for (std::size_t s = 0; s < h.num_slices(); ++s) {
        const std::size_t pb = h.slice_offset(s) / nplanes_;
        h.wait_slice(s);
        unpack_reverse_slice(recv, planes, pb, pb + h.slice_len(s) / nplanes_);
    }
}

void FourierTranspose::roundtrip_overlapped(
    simmpi::Comm* comm, const std::vector<std::span<const double>>& planes_in,
    const std::vector<std::span<double>>& lines_in,
    const std::vector<std::span<const double>>& lines_out,
    const std::vector<std::span<double>>& planes_out, std::size_t nslices,
    const std::function<void(std::size_t, std::size_t)>& compute) const {
    assert(planes_in.size() == lines_in.size());
    assert(lines_out.size() == planes_out.size());
    const TransposeSpan span(comm, "transpose.roundtrip_overlapped");
    if (!comm || nranks_ == 1) {
        for (std::size_t f = 0; f < planes_in.size(); ++f)
            to_lines(comm, planes_in[f], lines_in[f]);
        compute(0, chunk_);
        for (std::size_t f = 0; f < lines_out.size(); ++f)
            to_planes(comm, lines_out[f], planes_out[f]);
        return;
    }
    const std::size_t block = nplanes_ * chunk_;
    const std::size_t nf_in = planes_in.size();
    const std::size_t nf_out = lines_out.size();
    if (nf_in == 0 && nf_out == 0) {
        compute(0, chunk_);
        return;
    }
    std::vector<std::vector<double>> send_in(nf_in), recv_in(nf_in);
    std::vector<std::vector<double>> send_out(nf_out), recv_out(nf_out);
    std::vector<simmpi::Ialltoall> hin(nf_in), hout(nf_out);
    for (std::size_t f = 0; f < nf_in; ++f) {
        send_in[f].resize(block * nranks_);
        recv_in[f].resize(block * nranks_);
        hin[f] = comm->ialltoall(recv_in[f], block, nslices, nplanes_);
    }
    for (std::size_t f = 0; f < nf_out; ++f) {
        send_out[f].resize(block * nranks_);
        recv_out[f].resize(block * nranks_);
        hout[f] = comm->ialltoall(recv_out[f], block, nslices, nplanes_);
    }
    const simmpi::Ialltoall& geom = nf_in ? hin[0] : hout[0];
    const std::size_t ns = geom.num_slices();
    const auto point_range = [&](std::size_t s) {
        const std::size_t pb = geom.slice_offset(s) / nplanes_;
        return std::pair{pb, pb + geom.slice_len(s) / nplanes_};
    };
    // Ship every forward slice up front, then drain them one at a time:
    // compute on slice s runs while slices s+1.. are still in flight, and
    // each slice's results ship immediately, overlapping the reverse
    // exchange against the remaining computation.
    for (std::size_t s = 0; s < ns; ++s) {
        const auto [pb, pe] = point_range(s);
        for (std::size_t f = 0; f < nf_in; ++f) {
            pack_forward_slice(planes_in[f], send_in[f], pb, pe);
            hin[f].send_slice(s, send_in[f]);
        }
    }
    for (std::size_t s = 0; s < ns; ++s) {
        const auto [pb, pe] = point_range(s);
        for (std::size_t f = 0; f < nf_in; ++f) {
            hin[f].wait_slice(s);
            unpack_forward_slice(recv_in[f], lines_in[f], pb, pe);
        }
        compute(pb, pe);
        for (std::size_t f = 0; f < nf_out; ++f) {
            pack_reverse_slice(lines_out[f], send_out[f], pb, pe);
            hout[f].send_slice(s, send_out[f]);
        }
    }
    for (std::size_t s = 0; s < ns; ++s) {
        const auto [pb, pe] = point_range(s);
        for (std::size_t f = 0; f < nf_out; ++f) {
            hout[f].wait_slice(s);
            unpack_reverse_slice(recv_out[f], planes_out[f], pb, pe);
        }
    }
}

} // namespace nektar
