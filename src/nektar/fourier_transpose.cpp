#include "nektar/fourier_transpose.hpp"

#include <algorithm>
#include <cassert>

namespace nektar {

FourierTranspose::FourierTranspose(simmpi::Comm* comm, std::size_t nq, std::size_t nplanes)
    : nq_(nq),
      nplanes_(nplanes),
      nranks_(comm ? static_cast<std::size_t>(comm->size()) : 1),
      chunk_((nq + nranks_ - 1) / nranks_) {}

void FourierTranspose::to_lines(simmpi::Comm* comm, std::span<const double> planes,
                                std::span<double> lines) const {
    assert(planes.size() == planes_buffer_size());
    assert(lines.size() == lines_buffer_size());
    const std::size_t tp = total_planes();
    if (nranks_ == 1) {
        for (std::size_t i = 0; i < chunk_; ++i)
            for (std::size_t lp = 0; lp < nplanes_; ++lp)
                lines[i * tp + lp] = i < nq_ ? planes[lp * nq_ + i] : 0.0;
        return;
    }
    const std::size_t block = nplanes_ * chunk_;
    std::vector<double> send(block * nranks_, 0.0), recv(block * nranks_);
    for (std::size_t s = 0; s < nranks_; ++s) {
        for (std::size_t lp = 0; lp < nplanes_; ++lp) {
            for (std::size_t c = 0; c < chunk_; ++c) {
                const std::size_t i = s * chunk_ + c;
                send[s * block + lp * chunk_ + c] = i < nq_ ? planes[lp * nq_ + i] : 0.0;
            }
        }
    }
    comm->alltoall(send, recv, block);
    const std::size_t me = static_cast<std::size_t>(comm->rank());
    (void)me;
    for (std::size_t r = 0; r < nranks_; ++r) {
        for (std::size_t lp = 0; lp < nplanes_; ++lp) {
            const std::size_t gp = r * nplanes_ + lp;
            for (std::size_t c = 0; c < chunk_; ++c)
                lines[c * tp + gp] = recv[r * block + lp * chunk_ + c];
        }
    }
}

void FourierTranspose::to_planes(simmpi::Comm* comm, std::span<const double> lines,
                                 std::span<double> planes) const {
    assert(planes.size() == planes_buffer_size());
    assert(lines.size() == lines_buffer_size());
    const std::size_t tp = total_planes();
    if (nranks_ == 1) {
        for (std::size_t lp = 0; lp < nplanes_; ++lp)
            for (std::size_t i = 0; i < nq_; ++i) planes[lp * nq_ + i] = lines[i * tp + lp];
        return;
    }
    const std::size_t block = nplanes_ * chunk_;
    std::vector<double> send(block * nranks_), recv(block * nranks_);
    // Send to rank r the planes r owns, for my chunk of points.
    for (std::size_t r = 0; r < nranks_; ++r)
        for (std::size_t lp = 0; lp < nplanes_; ++lp)
            for (std::size_t c = 0; c < chunk_; ++c)
                send[r * block + lp * chunk_ + c] = lines[c * tp + r * nplanes_ + lp];
    comm->alltoall(send, recv, block);
    for (std::size_t s = 0; s < nranks_; ++s) {
        for (std::size_t lp = 0; lp < nplanes_; ++lp) {
            for (std::size_t c = 0; c < chunk_; ++c) {
                const std::size_t i = s * chunk_ + c;
                if (i < nq_) planes[lp * nq_ + i] = recv[s * block + lp * chunk_ + c];
            }
        }
    }
}

} // namespace nektar
