#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "la/dense.hpp"
#include "mesh/mesh.hpp"
#include "spectral/expansion.hpp"

/// \file element_ops.hpp
/// Per-element operators: geometry mapping, elemental mass/Laplacian
/// matrices, modal<->quadrature transforms and collocation derivatives.
///
/// These are the kernels behind the paper's stage breakdown (Figure 12):
/// stage 1 is interp_to_quad, stages 2-4/6 are quadrature-space vector
/// algebra plus weak_inner, stages 5/7 are the banded solves assembled from
/// the elemental matrices built here.
namespace nektar {

/// Geometry factors at each quadrature point of one straight-sided element.
struct ElemGeometry {
    std::vector<double> wj;   ///< quadrature weight * |J|
    std::vector<double> rx;   ///< d(xi1)/dx
    std::vector<double> ry;   ///< d(xi1)/dy
    std::vector<double> sx;   ///< d(xi2)/dx
    std::vector<double> sy;   ///< d(xi2)/dy
    std::vector<double> x;    ///< physical coordinates of quadrature points
    std::vector<double> y;
};

/// Geometry mapping evaluated at one reference point.
struct PointMap {
    double x = 0.0, y = 0.0;   ///< physical coordinates
    double rx = 0.0, ry = 0.0; ///< d(xi1)/dx, d(xi1)/dy
    double sx = 0.0, sy = 0.0; ///< d(xi2)/dx, d(xi2)/dy
    double det = 0.0;          ///< Jacobian determinant
};

/// The elemental matrices that depend only on (expansion, geometry factors).
/// Congruent elements — translated copies of one another, ubiquitous in the
/// structured meshes the paper benchmarks — share one immutable instance.
struct ElemMatrices {
    la::DenseMatrix mass;      ///< (phi_i, phi_j)
    la::DenseMatrix lap;       ///< (grad phi_i, grad phi_j) — the Figure 10 matrix
    la::DenseMatrix mass_chol; ///< Cholesky factor of mass
};

/// Deduplicates ElemMatrices across congruent elements.  Keyed on the
/// expansion identity plus the bit patterns of the geometry factor arrays
/// (wj, rx, ry, sx, sy — translation-invariant), so two elements share
/// matrices only when the build inputs are bitwise identical.  One cache is
/// owned per Discretization construction, which keeps it bounded under the
/// per-step rebuilds of the ALE solver.
class MatrixCache {
public:
    /// Returns the cached matrices for (exp, geometry), building them with
    /// `build` on a miss.
    std::shared_ptr<const ElemMatrices> get(const spectral::Expansion* exp,
                                            const ElemGeometry& g,
                                            const std::function<ElemMatrices()>& build);

private:
    std::map<std::pair<const spectral::Expansion*, std::vector<std::uint64_t>>,
             std::shared_ptr<const ElemMatrices>>
        cache_;
};

class ElementOps {
public:
    /// Builds the operators for element `e` of `m` at expansion order `order`.
    ElementOps(const mesh::Mesh& m, std::size_t e, std::size_t order);

    /// Same, with a caller-provided expansion (skips the global expansion
    /// cache lookup) and an optional matrix cache shared across elements.
    ElementOps(const mesh::Mesh& m, std::size_t e,
               std::shared_ptr<const spectral::Expansion> exp, MatrixCache* cache = nullptr);

    [[nodiscard]] const spectral::Expansion& expansion() const noexcept { return *exp_; }
    [[nodiscard]] std::shared_ptr<const spectral::Expansion> expansion_ptr() const noexcept {
        return exp_;
    }
    [[nodiscard]] const ElemGeometry& geometry() const noexcept { return geom_; }
    [[nodiscard]] std::size_t num_modes() const noexcept { return exp_->num_modes(); }
    [[nodiscard]] std::size_t num_quad() const noexcept { return exp_->num_quad(); }

    /// Elemental mass matrix (phi_i, phi_j).
    [[nodiscard]] const la::DenseMatrix& mass() const noexcept { return mats_->mass; }
    /// Elemental stiffness (grad phi_i, grad phi_j) — the Figure 10 matrix.
    [[nodiscard]] const la::DenseMatrix& laplacian() const noexcept { return mats_->lap; }
    /// Cholesky factor of the elemental mass matrix.
    [[nodiscard]] const la::DenseMatrix& mass_cholesky() const noexcept {
        return mats_->mass_chol;
    }
    /// Identity of the shared matrix set: equal pointers mean congruent
    /// elements (identical mass/Laplacian/Cholesky), which the batched
    /// Helmholtz apply exploits to fold whole runs of elements into one
    /// matrix-matrix product.
    [[nodiscard]] const ElemMatrices* matrix_identity() const noexcept { return mats_.get(); }

    /// u_quad = B u_modal (paper stage 1).
    void interp_to_quad(std::span<const double> modal, std::span<double> quad) const;

    /// rhs_i += (f, phi_i): weak inner product of quadrature values.
    void weak_inner(std::span<const double> quad, std::span<double> rhs) const;

    /// Physical-space gradient of a modal field, evaluated at quad points.
    void grad_from_modal(std::span<const double> modal, std::span<double> dudx,
                         std::span<double> dudy) const;

    /// Collocation derivative of quadrature-point values (quad elements only;
    /// used by the nonlinear advection stage where fields live at the
    /// quadrature points).
    void grad_collocation(std::span<const double> quad, std::span<double> dudx,
                          std::span<double> dudy) const;

    /// Collocation machinery behind grad_collocation, exposed so the batched
    /// compute backends can fuse the derivative across a whole element group:
    /// 1-D points per direction (0 on triangles) and the 1-D GLL
    /// differentiation matrix (nq1d x nq1d row-major).
    [[nodiscard]] std::size_t colloc_nq1d() const noexcept { return nq1d_; }
    [[nodiscard]] const la::DenseMatrix& colloc_diff_1d() const noexcept { return d1d_; }

    /// L2 projection of quadrature values onto the modal basis
    /// (solves M u = B^T W f with the factored elemental mass matrix).
    void project(std::span<const double> quad, std::span<double> modal) const;

    /// Geometry mapping at an arbitrary reference point (boundary traces,
    /// probes, force integrals).
    [[nodiscard]] PointMap map_at(double xi1, double xi2) const;

    /// Field value / physical gradient of a modal field at a reference point.
    [[nodiscard]] double eval_modal(std::span<const double> modal, double xi1,
                                    double xi2) const;
    void eval_modal_grad(std::span<const double> modal, double xi1, double xi2, double& dudx,
                         double& dudy) const;

private:
    std::shared_ptr<const spectral::Expansion> exp_;
    ElemGeometry geom_;
    std::shared_ptr<const ElemMatrices> mats_; ///< shared across congruent elements
    // Collocation machinery (quads): 1-D GLL differentiation matrix.
    la::DenseMatrix d1d_;
    std::size_t nq1d_ = 0;
    std::array<mesh::Vertex, 4> verts_{}; ///< element corners for map_at
};

} // namespace nektar
