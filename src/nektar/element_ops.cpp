#include "nektar/element_ops.hpp"

#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "blaslite/blas.hpp"
#include "parallel/scratch.hpp"
#include "spectral/jacobi.hpp"

namespace nektar {

namespace {

/// Barycentric Lagrange differentiation matrix on the given nodes.
la::DenseMatrix diff_matrix(const std::vector<double>& x) {
    const std::size_t n = x.size();
    std::vector<double> w(n, 1.0);
    for (std::size_t j = 0; j < n; ++j)
        for (std::size_t k = 0; k < n; ++k)
            if (k != j) w[j] *= (x[j] - x[k]);
    for (auto& v : w) v = 1.0 / v;
    la::DenseMatrix d(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        double diag = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j) continue;
            d(i, j) = (w[j] / w[i]) / (x[i] - x[j]);
            diag -= d(i, j);
        }
        d(i, i) = diag;
    }
    return d;
}

/// Builds the (expansion, geometry)-dependent elemental matrices.
ElemMatrices build_matrices(const spectral::Expansion& exp, const ElemGeometry& geom) {
    const std::size_t nq = exp.num_quad();
    const std::size_t nm = exp.num_modes();
    const la::DenseMatrix& B = exp.basis();
    const la::DenseMatrix& D1 = exp.dbasis_dxi1();
    const la::DenseMatrix& D2 = exp.dbasis_dxi2();
    ElemMatrices mats;
    mats.mass = la::DenseMatrix(nm, nm);
    mats.lap = la::DenseMatrix(nm, nm);
    // Physical derivatives of every mode at every point, then one dgemm each.
    la::DenseMatrix dx(nq, nm), dy(nq, nm), bw(nq, nm), dxw(nq, nm), dyw(nq, nm);
    for (std::size_t q = 0; q < nq; ++q) {
        for (std::size_t mI = 0; mI < nm; ++mI) {
            dx(q, mI) = geom.rx[q] * D1(q, mI) + geom.sx[q] * D2(q, mI);
            dy(q, mI) = geom.ry[q] * D1(q, mI) + geom.sy[q] * D2(q, mI);
            bw(q, mI) = geom.wj[q] * B(q, mI);
            dxw(q, mI) = geom.wj[q] * dx(q, mI);
            dyw(q, mI) = geom.wj[q] * dy(q, mI);
        }
    }
    for (std::size_t i = 0; i < nm; ++i) {
        for (std::size_t j = 0; j < nm; ++j) {
            double mij = 0.0, lij = 0.0;
            for (std::size_t q = 0; q < nq; ++q) {
                mij += bw(q, i) * B(q, j);
                lij += dxw(q, i) * dx(q, j) + dyw(q, i) * dy(q, j);
            }
            mats.mass(i, j) = mij;
            mats.lap(i, j) = lij;
        }
    }
    mats.mass_chol = mats.mass;
    if (!la::cholesky_factor(mats.mass_chol))
        throw std::runtime_error("ElementOps: mass matrix not SPD");
    return mats;
}

} // namespace

std::shared_ptr<const ElemMatrices> MatrixCache::get(
    const spectral::Expansion* exp, const ElemGeometry& g,
    const std::function<ElemMatrices()>& build) {
    std::vector<std::uint64_t> key;
    key.reserve(5 * g.wj.size());
    for (const std::vector<double>* arr : {&g.wj, &g.rx, &g.ry, &g.sx, &g.sy})
        for (double v : *arr) key.push_back(std::bit_cast<std::uint64_t>(v));
    auto& slot = cache_[{exp, std::move(key)}];
    if (!slot) slot = std::make_shared<const ElemMatrices>(build());
    return slot;
}

ElementOps::ElementOps(const mesh::Mesh& m, std::size_t e, std::size_t order)
    : ElementOps(m, e, spectral::make_expansion(m.element(e).shape, order)) {}

ElementOps::ElementOps(const mesh::Mesh& m, std::size_t e,
                       std::shared_ptr<const spectral::Expansion> exp, MatrixCache* cache)
    : exp_(std::move(exp)) {
    const mesh::Element& el = m.element(e);
    const std::size_t nq = exp_->num_quad();
    geom_.wj.resize(nq);
    geom_.rx.resize(nq);
    geom_.ry.resize(nq);
    geom_.sx.resize(nq);
    geom_.sy.resize(nq);
    geom_.x.resize(nq);
    geom_.y.resize(nq);

    for (int v = 0; v < el.num_vertices(); ++v)
        verts_[static_cast<std::size_t>(v)] = m.elem_vertex(e, static_cast<std::size_t>(v));

    const auto w = exp_->quad_weights();
    for (std::size_t q = 0; q < nq; ++q) {
        const PointMap pm = map_at(exp_->xi1(q), exp_->xi2(q));
        if (pm.det <= 0.0) throw std::runtime_error("ElementOps: inverted element");
        geom_.x[q] = pm.x;
        geom_.y[q] = pm.y;
        geom_.wj[q] = w[q] * pm.det;
        geom_.rx[q] = pm.rx;
        geom_.ry[q] = pm.ry;
        geom_.sx[q] = pm.sx;
        geom_.sy[q] = pm.sy;
    }

    const auto build = [this] { return build_matrices(*exp_, geom_); };
    mats_ = cache ? cache->get(exp_.get(), geom_, build)
                  : std::make_shared<const ElemMatrices>(build());

    if (el.shape == spectral::Shape::Quad) {
        nq1d_ = static_cast<std::size_t>(std::lround(std::sqrt(static_cast<double>(nq))));
        assert(nq1d_ * nq1d_ == nq);
        const spectral::QuadratureRule rule = spectral::gauss_lobatto(nq1d_);
        d1d_ = diff_matrix(rule.points);
    }
}

PointMap ElementOps::map_at(double x1, double x2) const {
    double xx, yy, dxd1, dxd2, dyd1, dyd2;
    if (exp_->shape() == spectral::Shape::Triangle) {
        const mesh::Vertex& a = verts_[0];
        const mesh::Vertex& b = verts_[1];
        const mesh::Vertex& c = verts_[2];
        // Affine map from {(-1,-1),(1,-1),(-1,1)}.
        xx = -0.5 * (x1 + x2) * a.x + 0.5 * (1.0 + x1) * b.x + 0.5 * (1.0 + x2) * c.x;
        yy = -0.5 * (x1 + x2) * a.y + 0.5 * (1.0 + x1) * b.y + 0.5 * (1.0 + x2) * c.y;
        dxd1 = 0.5 * (b.x - a.x);
        dxd2 = 0.5 * (c.x - a.x);
        dyd1 = 0.5 * (b.y - a.y);
        dyd2 = 0.5 * (c.y - a.y);
    } else {
        const mesh::Vertex& v0 = verts_[0];
        const mesh::Vertex& v1 = verts_[1];
        const mesh::Vertex& v2 = verts_[2];
        const mesh::Vertex& v3 = verts_[3];
        const double n0 = 0.25 * (1 - x1) * (1 - x2), n1 = 0.25 * (1 + x1) * (1 - x2);
        const double n2 = 0.25 * (1 + x1) * (1 + x2), n3 = 0.25 * (1 - x1) * (1 + x2);
        xx = n0 * v0.x + n1 * v1.x + n2 * v2.x + n3 * v3.x;
        yy = n0 * v0.y + n1 * v1.y + n2 * v2.y + n3 * v3.y;
        // Difference form: translation-invariant to the last bit, so
        // congruent (translated) elements produce identical Jacobian
        // metrics and share one ElemMatrices instance via the MatrixCache's
        // exact-bit key.
        dxd1 = 0.25 * ((1 - x2) * (v1.x - v0.x) + (1 + x2) * (v2.x - v3.x));
        dxd2 = 0.25 * ((1 - x1) * (v3.x - v0.x) + (1 + x1) * (v2.x - v1.x));
        dyd1 = 0.25 * ((1 - x2) * (v1.y - v0.y) + (1 + x2) * (v2.y - v3.y));
        dyd2 = 0.25 * ((1 - x1) * (v3.y - v0.y) + (1 + x1) * (v2.y - v1.y));
    }
    PointMap pm;
    pm.x = xx;
    pm.y = yy;
    pm.det = dxd1 * dyd2 - dxd2 * dyd1;
    pm.rx = dyd2 / pm.det;
    pm.ry = -dxd2 / pm.det;
    pm.sx = -dyd1 / pm.det;
    pm.sy = dxd1 / pm.det;
    return pm;
}

double ElementOps::eval_modal(std::span<const double> modal, double x1, double x2) const {
    double s = 0.0;
    for (std::size_t m = 0; m < num_modes(); ++m) s += modal[m] * exp_->eval_mode(m, x1, x2);
    return s;
}

void ElementOps::eval_modal_grad(std::span<const double> modal, double x1, double x2,
                                 double& dudx, double& dudy) const {
    const PointMap pm = map_at(x1, x2);
    double d1 = 0.0, d2 = 0.0;
    for (std::size_t m = 0; m < num_modes(); ++m) {
        const auto d = exp_->eval_mode_deriv(m, x1, x2);
        d1 += modal[m] * d[0];
        d2 += modal[m] * d[1];
    }
    dudx = pm.rx * d1 + pm.sx * d2;
    dudy = pm.ry * d1 + pm.sy * d2;
}

void ElementOps::interp_to_quad(std::span<const double> modal, std::span<double> quad) const {
    assert(modal.size() == num_modes() && quad.size() == num_quad());
    const la::DenseMatrix& B = exp_->basis();
    blaslite::dgemv(1.0, B.data(), B.cols(), B.rows(), B.cols(), modal.data(), 0.0,
                    quad.data());
}

void ElementOps::weak_inner(std::span<const double> quad, std::span<double> rhs) const {
    assert(quad.size() == num_quad() && rhs.size() == num_modes());
    const la::DenseMatrix& B = exp_->basis();
    parallel::Scratch wq(num_quad());
    for (std::size_t q = 0; q < num_quad(); ++q) wq.data()[q] = geom_.wj[q] * quad[q];
    blaslite::dgemv_t(1.0, B.data(), B.cols(), B.rows(), B.cols(), wq.data(), 1.0, rhs.data());
}

void ElementOps::grad_from_modal(std::span<const double> modal, std::span<double> dudx,
                                 std::span<double> dudy) const {
    const la::DenseMatrix& D1 = exp_->dbasis_dxi1();
    const la::DenseMatrix& D2 = exp_->dbasis_dxi2();
    const std::size_t nq = num_quad();
    parallel::Scratch d1(nq), d2(nq);
    blaslite::dgemv(1.0, D1.data(), D1.cols(), D1.rows(), D1.cols(), modal.data(), 0.0,
                    d1.data());
    blaslite::dgemv(1.0, D2.data(), D2.cols(), D2.rows(), D2.cols(), modal.data(), 0.0,
                    d2.data());
    for (std::size_t q = 0; q < nq; ++q) {
        dudx[q] = geom_.rx[q] * d1[q] + geom_.sx[q] * d2[q];
        dudy[q] = geom_.ry[q] * d1[q] + geom_.sy[q] * d2[q];
    }
}

void ElementOps::grad_collocation(std::span<const double> quad, std::span<double> dudx,
                                  std::span<double> dudy) const {
    if (nq1d_ == 0)
        throw std::logic_error("grad_collocation: quad elements only");
    const std::size_t n = nq1d_;
    parallel::Scratch d1(n * n), d2(n * n);
    // d/dxi1: differentiate along rows (xi1 is the fast index).
    for (std::size_t j = 0; j < n; ++j)
        blaslite::dgemv(1.0, d1d_.data(), n, n, n, quad.data() + j * n, 0.0, d1.data() + j * n);
    // d/dxi2: differentiate along columns.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double s = 0.0;
            for (std::size_t k = 0; k < n; ++k) s += d1d_(j, k) * quad[k * n + i];
            d2[j * n + i] = s;
        }
    }
    blaslite::detail::charge(2 * n * n * n, 2 * n * n * sizeof(double), n * n * sizeof(double));
    for (std::size_t q = 0; q < n * n; ++q) {
        dudx[q] = geom_.rx[q] * d1[q] + geom_.sx[q] * d2[q];
        dudy[q] = geom_.ry[q] * d1[q] + geom_.sy[q] * d2[q];
    }
}

void ElementOps::project(std::span<const double> quad, std::span<double> modal) const {
    std::fill(modal.begin(), modal.end(), 0.0);
    weak_inner(quad, modal);
    la::cholesky_solve(mats_->mass_chol, modal);
}

} // namespace nektar
