#include "partition/partition.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <numeric>

namespace partition {

namespace {

/// BFS returning the order vertices are discovered in, starting from `seed`,
/// restricted to vertices where active[v] is true.
std::vector<int> bfs_order(const Graph& g, int seed, const std::vector<char>& active) {
    std::vector<int> order;
    std::vector<char> seen(g.size(), 0);
    std::deque<int> queue;
    queue.push_back(seed);
    seen[static_cast<std::size_t>(seed)] = 1;
    while (!queue.empty()) {
        const int v = queue.front();
        queue.pop_front();
        order.push_back(v);
        for (int k = g.xadj[static_cast<std::size_t>(v)];
             k < g.xadj[static_cast<std::size_t>(v) + 1]; ++k) {
            const int u = g.adjncy[static_cast<std::size_t>(k)];
            if (!active[static_cast<std::size_t>(u)] || seen[static_cast<std::size_t>(u)])
                continue;
            seen[static_cast<std::size_t>(u)] = 1;
            queue.push_back(u);
        }
    }
    return order;
}

/// A vertex roughly on the graph's periphery: run BFS twice and take the
/// last-discovered vertex (the standard pseudo-peripheral heuristic).
int pseudo_peripheral(const Graph& g, const std::vector<char>& active, int any_active) {
    int v = any_active;
    for (int pass = 0; pass < 2; ++pass) {
        const auto order = bfs_order(g, v, active);
        v = order.back();
    }
    return v;
}

/// Gain of moving v to the other side: (cut edges removed) - (cut added).
int move_gain(const Graph& g, const std::vector<char>& side, const std::vector<char>& active,
              int v) {
    int gain = 0;
    for (int k = g.xadj[static_cast<std::size_t>(v)];
         k < g.xadj[static_cast<std::size_t>(v) + 1]; ++k) {
        const int u = g.adjncy[static_cast<std::size_t>(k)];
        if (!active[static_cast<std::size_t>(u)]) continue;
        gain += (side[static_cast<std::size_t>(u)] != side[static_cast<std::size_t>(v)]) ? 1 : -1;
    }
    return gain;
}

/// Splits the active vertices into sides 0/1 with |side 0| = target0, by
/// greedy BFS growth plus a few boundary-refinement sweeps.
void bisect(const Graph& g, std::vector<char>& active, std::size_t target0,
            std::vector<char>& side) {
    // Collect active vertices (graph may be disconnected: loop components).
    std::vector<int> remaining;
    for (std::size_t v = 0; v < g.size(); ++v)
        if (active[v]) remaining.push_back(static_cast<int>(v));
    assert(target0 <= remaining.size());

    for (int v : remaining) side[static_cast<std::size_t>(v)] = 1;
    std::vector<char> taken(g.size(), 0);
    std::size_t count0 = 0;
    while (count0 < target0) {
        // Seed a new BFS in the largest unexplored region.
        int seed = -1;
        for (int v : remaining)
            if (!taken[static_cast<std::size_t>(v)]) { seed = v; break; }
        if (seed < 0) break;
        std::vector<char> act_unexplored(g.size(), 0);
        for (int v : remaining)
            if (!taken[static_cast<std::size_t>(v)]) act_unexplored[static_cast<std::size_t>(v)] = 1;
        seed = pseudo_peripheral(g, act_unexplored, seed);
        for (int v : bfs_order(g, seed, act_unexplored)) {
            if (count0 >= target0) break;
            side[static_cast<std::size_t>(v)] = 0;
            taken[static_cast<std::size_t>(v)] = 1;
            ++count0;
        }
    }

    // Kernighan-Lin-flavoured refinement: swap the best boundary pair while
    // it improves the cut (balance is preserved by swapping in pairs).
    for (int sweep = 0; sweep < 8; ++sweep) {
        int best0 = -1, best1 = -1;
        int best_gain = 0;
        for (int v : remaining) {
            const int gv = move_gain(g, side, active, v);
            if (gv <= 0) continue;
            if (side[static_cast<std::size_t>(v)] == 0) {
                if (best0 < 0 || gv > move_gain(g, side, active, best0)) best0 = v;
            } else {
                if (best1 < 0 || gv > move_gain(g, side, active, best1)) best1 = v;
            }
        }
        if (best0 < 0 || best1 < 0) break;
        const int gain = move_gain(g, side, active, best0) + move_gain(g, side, active, best1);
        if (gain <= best_gain) break;
        side[static_cast<std::size_t>(best0)] = 1;
        side[static_cast<std::size_t>(best1)] = 0;
    }
}

void recurse(const Graph& g, std::vector<char>& active, int part_lo, int part_hi,
             std::vector<int>& part) {
    const int nparts = part_hi - part_lo;
    if (nparts <= 1) {
        for (std::size_t v = 0; v < g.size(); ++v)
            if (active[v]) part[v] = part_lo;
        return;
    }
    std::size_t n_active = 0;
    for (std::size_t v = 0; v < g.size(); ++v) n_active += active[v] ? 1u : 0u;
    const int half = nparts / 2;
    const std::size_t target0 = n_active * static_cast<std::size_t>(half) /
                                static_cast<std::size_t>(nparts);
    std::vector<char> side(g.size(), 0);
    bisect(g, active, target0, side);
    std::vector<char> left(g.size(), 0), right(g.size(), 0);
    for (std::size_t v = 0; v < g.size(); ++v) {
        if (!active[v]) continue;
        (side[v] == 0 ? left[v] : right[v]) = 1;
    }
    recurse(g, left, part_lo, part_lo + half, part);
    recurse(g, right, part_lo + half, part_hi, part);
}

} // namespace

std::vector<int> partition_graph(const Graph& g, int nparts) {
    assert(nparts >= 1);
    std::vector<int> part(g.size(), 0);
    if (nparts == 1 || g.size() == 0) return part;
    std::vector<char> active(g.size(), 1);
    recurse(g, active, 0, nparts, part);
    return part;
}

std::vector<int> partition_strips(std::size_t n, int nparts) {
    std::vector<int> part(n, 0);
    for (std::size_t v = 0; v < n; ++v)
        part[v] = static_cast<int>(v * static_cast<std::size_t>(nparts) / std::max<std::size_t>(n, 1));
    for (auto& p : part) p = std::min(p, nparts - 1);
    return part;
}

PartitionStats evaluate(const Graph& g, const std::vector<int>& part) {
    PartitionStats s;
    s.nparts = part.empty() ? 0 : *std::max_element(part.begin(), part.end()) + 1;
    std::vector<std::size_t> sizes(static_cast<std::size_t>(std::max(s.nparts, 1)), 0);
    for (int p : part) ++sizes[static_cast<std::size_t>(p)];
    s.max_part = *std::max_element(sizes.begin(), sizes.end());
    s.min_part = *std::min_element(sizes.begin(), sizes.end());
    for (std::size_t v = 0; v < g.size(); ++v) {
        for (int k = g.xadj[v]; k < g.xadj[v + 1]; ++k) {
            const int u = g.adjncy[static_cast<std::size_t>(k)];
            if (static_cast<std::size_t>(u) > v && part[static_cast<std::size_t>(u)] != part[v])
                ++s.edge_cut;
        }
    }
    return s;
}

} // namespace partition
