#pragma once

#include <cstddef>
#include <vector>

/// \file partition.hpp
/// Multi-level-style graph partitioner (METIS stand-in).
///
/// NekTar's parallelisation "is based on a multi-level graph decomposition
/// method (METIS)" applied to the element dual graph (paper §4).  This module
/// provides the same interface on a from-scratch implementation: recursive
/// bisection by greedy graph growing from a pseudo-peripheral seed, followed
/// by Kernighan-Lin-style boundary refinement.
namespace partition {

/// CSR graph: neighbours of vertex v are adjncy[xadj[v] .. xadj[v+1]).
struct Graph {
    std::vector<int> xadj;
    std::vector<int> adjncy;
    [[nodiscard]] std::size_t size() const noexcept {
        return xadj.empty() ? 0 : xadj.size() - 1;
    }
};

/// Partition quality metrics.
struct PartitionStats {
    int nparts = 0;
    std::size_t edge_cut = 0;       ///< edges crossing part boundaries
    std::size_t max_part = 0;       ///< largest part size
    std::size_t min_part = 0;       ///< smallest part size
    [[nodiscard]] double imbalance() const noexcept {
        return min_part == 0 ? 1e30 : static_cast<double>(max_part) / static_cast<double>(min_part);
    }
};

/// Partitions the graph into `nparts` balanced parts; returns part[v].
/// `nparts` need not be a power of two.
[[nodiscard]] std::vector<int> partition_graph(const Graph& g, int nparts);

/// Naive contiguous-range split (the strip baseline the tests compare against).
[[nodiscard]] std::vector<int> partition_strips(std::size_t n, int nparts);

[[nodiscard]] PartitionStats evaluate(const Graph& g, const std::vector<int>& part);

} // namespace partition
