#include "netsim/faultmodel.hpp"

#include <algorithm>

namespace netsim {

namespace {

constexpr double kUs = 1e-6;

/// splitmix64 finaliser: a full-avalanche 64-bit mix.
std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Counter-mode stream: hash the (seed, rank, msg, salt) coordinates through
/// independent mix rounds so neighbouring coordinates decorrelate.
std::uint64_t draw(std::uint64_t seed, int rank, std::uint64_t msg,
                   std::uint64_t salt) noexcept {
    std::uint64_t h = mix64(seed);
    h = mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank)) + 1));
    h = mix64(h ^ (msg + 1));
    h = mix64(h ^ (salt + 1));
    return h;
}

/// Distinct salt spaces per fault mechanism.
enum Salt : std::uint64_t { kJitter = 0, kDegrade = 1, kStraggler = 2, kLossBase = 16 };

} // namespace

bool FaultModel::enabled() const noexcept {
    return latency_jitter_us > 0.0 || loss_probability > 0.0 ||
           (degrade_probability > 0.0 && degrade_factor != 1.0) ||
           (straggler_fraction > 0.0 && straggler_factor != 1.0);
}

double FaultModel::uniform(int rank, std::uint64_t msg_index,
                           std::uint64_t salt) const noexcept {
    // 53 high bits -> [0, 1) with full double precision.
    return static_cast<double>(draw(seed, rank, msg_index, salt) >> 11) * 0x1.0p-53;
}

bool FaultModel::is_straggler(int rank) const noexcept {
    if (straggler_fraction <= 0.0 || straggler_factor == 1.0) return false;
    // Per-rank draw with a fixed message coordinate: straggling is a property
    // of the rank (slow node), not of any one message.
    return uniform(rank, 0, Salt::kStraggler) < straggler_fraction;
}

double FaultModel::rank_slowdown(int rank) const noexcept {
    return is_straggler(rank) ? straggler_factor : 1.0;
}

FaultPerturbation FaultModel::perturb(int rank, std::uint64_t msg_index,
                                      double base_seconds) const noexcept {
    FaultPerturbation p;
    if (latency_jitter_us > 0.0)
        p.extra_seconds += latency_jitter_us * kUs * uniform(rank, msg_index, Salt::kJitter);
    if (loss_probability > 0.0) {
        // Geometric number of lost transmissions, each costing the detection
        // timeout plus a full resend of the message.
        while (p.retransmits < max_retransmits &&
               uniform(rank, msg_index,
                       Salt::kLossBase + static_cast<std::uint64_t>(p.retransmits)) <
                   loss_probability)
            ++p.retransmits;
        p.extra_seconds +=
            p.retransmits * (retransmit_timeout_us * kUs + base_seconds);
    }
    if (degrade_probability > 0.0 && degrade_factor != 1.0 &&
        uniform(rank, msg_index, Salt::kDegrade) < degrade_probability)
        p.extra_seconds += (degrade_factor - 1.0) * base_seconds;
    return p;
}

double FaultModel::expected_extra_seconds(double base_seconds) const noexcept {
    double extra = 0.5 * latency_jitter_us * kUs;
    if (loss_probability > 0.0 && loss_probability < 1.0) {
        // E[retransmits] for a capped geometric; the cap matters only for
        // pathological loss rates.
        const double q = loss_probability;
        const double mean = q / (1.0 - q);
        extra += std::min(mean, static_cast<double>(max_retransmits)) *
                 (retransmit_timeout_us * kUs + base_seconds);
    }
    extra += degrade_probability * (degrade_factor - 1.0) * base_seconds;
    return extra;
}

double FaultModel::expected_inflation(double base_seconds) const noexcept {
    if (base_seconds <= 0.0) return 1.0;
    const double faulted = base_seconds + expected_extra_seconds(base_seconds);
    // Average the straggler slowdown over the rank population.
    const double slow =
        1.0 + straggler_fraction * (straggler_factor - 1.0);
    return faulted * slow / base_seconds;
}

} // namespace netsim
