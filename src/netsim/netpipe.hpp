#pragma once

#include <cstddef>
#include <vector>

#include "netsim/netmodel.hpp"

/// \file netpipe.hpp
/// NetPIPE-style ping-pong driver (the paper uses NetPIPE 2.3 for Figure 7).
///
/// NetPIPE walks message sizes in a geometric ladder with +/-1 byte
/// perturbations and reports, per size, the one-way latency and the
/// effective bandwidth of the best of several trials.  Our transport is the
/// analytic network model, so a "trial" is deterministic; the driver keeps
/// NetPIPE's sweep structure so the output series match the paper's axes.
namespace netsim {

struct PingPongSample {
    std::size_t message_bytes = 0;
    double latency_us = 0.0;    ///< one-way time for this size
    double bandwidth_mbps = 0.0;
};

struct PingPongSeries {
    std::string network;
    std::vector<PingPongSample> samples;
};

/// Sweeps sizes from `min_bytes` to `max_bytes` on the NetPIPE ladder.
[[nodiscard]] PingPongSeries run_pingpong(const NetworkModel& net, std::size_t min_bytes,
                                          std::size_t max_bytes);

/// The small-message linear sweep used for the latency plot of Figure 7
/// (0..600 bytes in `step` increments).
[[nodiscard]] PingPongSeries run_latency_sweep(const NetworkModel& net, std::size_t max_bytes,
                                               std::size_t step);

/// The paper's Alltoall measurement: a globally synchronised loop of
/// `reps` MPI_Alltoall calls, reporting per-process average bandwidth.
struct AlltoallSample {
    std::size_t message_bytes = 0;
    double avg_bandwidth_mbps = 0.0;
};

struct AlltoallSeries {
    std::string network;
    int nprocs = 0;
    std::vector<AlltoallSample> samples;
};

[[nodiscard]] AlltoallSeries run_alltoall_sweep(const NetworkModel& net, int nprocs,
                                                std::size_t min_bytes, std::size_t max_bytes);

} // namespace netsim
