#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "netsim/faultmodel.hpp"

/// \file netmodel.hpp
/// Analytic interconnect models for the paper's communication study.
///
/// The paper measures twelve network configurations with NetPIPE ping-pong
/// (Figure 7) and nine with an MPI_Alltoall loop (Figure 8).  We reproduce
/// them with piecewise latency/bandwidth models: a one-way message of m
/// bytes costs
///
///     t(m) = latency + m / bandwidth            (eager regime)
///     t(m) = latency + rendezvous + m / bandwidth   (m >= eager threshold)
///
/// and collectives compose these according to the topology: switched fabrics
/// run the (P-1)-round pairwise exchange concurrently, a shared Fast
/// Ethernet segment serialises every byte on one wire, and the Muses quad
/// point-to-point cards give each pair a dedicated link.
namespace netsim {

/// How concurrent transfers share the physical medium.
enum class Topology {
    Switched,      ///< full-bisection switch (vendor networks, Myrinet)
    SharedBus,     ///< single collision domain (RoadRunner Fast Ethernet)
    PointToPoint,  ///< dedicated pairwise links (Muses quad NICs)
    SharedMemory,  ///< intranode copies through memory
};

/// One network configuration (machine + interconnect + MPI stack).
struct NetworkModel {
    std::string name;
    double latency_us = 0.0;        ///< zero-byte one-way latency
    double bandwidth_mbps = 0.0;    ///< asymptotic one-way bandwidth
    double rendezvous_us = 0.0;     ///< extra handshake above the threshold
    std::size_t eager_bytes = 16 * 1024; ///< eager->rendezvous protocol switch
    Topology topology = Topology::Switched;
    /// Large-message derating (e.g. Myrinet/GM one-way bandwidth sags for
    /// multi-megabyte messages in the paper's Figure 7).
    double large_msg_factor = 1.0;
    std::size_t large_msg_bytes = 1 << 20;
    /// Fabric contention derating applied to the pairwise Alltoall schedule
    /// (vendor switches lose more of their ping-pong bandwidth to the
    /// all-pairs traffic pattern than a torus does).
    double alltoall_factor = 1.0;
    /// Fraction of communication wall time that also burns CPU.  Polling MPI
    /// stacks (Myrinet/GM, vendor switches, shared memory) spin at ~1.0; the
    /// kernel TCP path of MPICH/LAM on ethernet blocks in the kernel, which
    /// is what separates CPU from wall clock in the paper's Table 2.
    double cpu_poll_fraction = 1.0;
    /// Seeded fault injection (jitter, loss/retransmit, degradation,
    /// stragglers).  Default-constructed = perfect network; the analytic
    /// costs below are always the *unfaulted* means — faults are charged
    /// per-message by the simmpi runtime, which knows (rank, message index).
    FaultModel fault{};

    /// One-way point-to-point time for m bytes, in seconds.
    [[nodiscard]] double ptp_seconds(std::size_t m_bytes) const noexcept;

    /// Effective ping-pong bandwidth in MB/s for m bytes (NetPIPE metric).
    [[nodiscard]] double pingpong_bandwidth_mbps(std::size_t m_bytes) const noexcept;

    /// Time for MPI_Alltoall with P ranks each sending m bytes to every other
    /// rank, in seconds (pairwise-exchange schedule, topology-aware).
    /// `concurrent` is the number of sibling communicators (from one
    /// Comm::split) running the collective at the same time: a shared
    /// collision domain serialises them on the wire; switched and
    /// point-to-point fabrics carry them independently.
    [[nodiscard]] double alltoall_seconds(int nprocs, std::size_t m_bytes,
                                          int concurrent = 1) const noexcept;

    /// Bruck's log-round Alltoall: ceil(log2 P) rounds shipping P/2 blocks
    /// each.  Fewer handshakes (wins at small messages on high-latency
    /// links) at the price of shipping every byte log P / 2 times.
    [[nodiscard]] double alltoall_seconds_bruck(int nprocs,
                                                std::size_t m_bytes) const noexcept;

    /// The paper's Figure 8 metric: per-process average bandwidth, i.e. the
    /// (P-1)*m bytes each rank ships divided by the collective's duration.
    [[nodiscard]] double alltoall_bandwidth_mbps(int nprocs, std::size_t m_bytes) const noexcept;

    /// Cost share of one peer message of `part_bytes` inside a P-rank
    /// alltoall whose per-rank block is `block_bytes`.  The nonblocking
    /// chunked exchange charges each of its (P-1) x slices messages this
    /// share, so its background total equals alltoall_seconds(P, block):
    /// pipelining changes when the cost can be hidden, not how much the
    /// network works.
    [[nodiscard]] double alltoall_share_seconds(int nprocs, std::size_t block_bytes,
                                                std::size_t part_bytes,
                                                int concurrent = 1) const noexcept;

    /// Time for a recursive-doubling allreduce of m bytes across P ranks.
    [[nodiscard]] double allreduce_seconds(int nprocs, std::size_t m_bytes,
                                           int concurrent = 1) const noexcept;

    /// Time for a binomial-tree gather of m bytes per rank to the root.
    [[nodiscard]] double gather_seconds(int nprocs, std::size_t m_bytes,
                                        int concurrent = 1) const noexcept;

    /// Binomial-tree broadcast of m bytes from the root: ceil(log2 P) rounds
    /// of one full-payload hop each — the hierarchical schedule large-P MPI
    /// implementations use (a root that sent to every rank directly would pay
    /// (P-1) serial injections instead).
    [[nodiscard]] double bcast_tree_seconds(int nprocs, std::size_t m_bytes,
                                            int concurrent = 1) const noexcept;

    /// Barrier (tree up + tree down of empty messages).
    [[nodiscard]] double barrier_seconds(int nprocs, int concurrent = 1) const noexcept;

    /// Cost of the 2-D pencil transpose's staged exchange on a rows x cols
    /// process grid: every row communicator (there are `rows` of them, size
    /// `cols`, running concurrently) exchanges `stage1_bytes` per peer, then
    /// every column communicator (`cols` of size `rows`) exchanges
    /// `stage2_bytes` per peer.  The 1-D slab equivalent is
    /// alltoall_seconds(rows*cols, block): the pencil trades one P-wide
    /// exchange (latency term ~P) for two sqrt(P)-wide ones (~2 sqrt(P)) —
    /// the crossover behind strong scaling past the paper's P=16.
    [[nodiscard]] double hierarchical_alltoall_seconds(int rows, int cols,
                                                       std::size_t stage1_bytes,
                                                       std::size_t stage2_bytes) const noexcept;
};

/// The twelve ping-pong configurations of Figure 7, in legend order:
/// AP3000, SP2-Thin2, SP2-Silver inter/intranode, Muses MPICH, Muses LAM,
/// Onyx2, RoadRunner eth intra/internode, RoadRunner myrinet intra/internode,
/// T3E.
[[nodiscard]] const std::vector<NetworkModel>& pingpong_roster();

/// The nine Alltoall configurations of Figure 8: AP3000, T3E, RoadRunner
/// eth., RoadRunner myr., SP2-Silver inter/intranode, SP2-Thin2, NCSA, Muses.
[[nodiscard]] const std::vector<NetworkModel>& alltoall_roster();

/// Hypothetical large-cluster fabrics for the strong-scaling study beyond
/// the paper's P=16: the paper-era NICs (Fast Ethernet, Myrinet 2000) behind
/// an idealised full-bisection switch, so the P=64..4096 sweep isolates the
/// decomposition's scaling from the 1999 switch sizes.
[[nodiscard]] const std::vector<NetworkModel>& scaling_roster();

/// Finds a model by name in any roster; throws std::out_of_range.
[[nodiscard]] const NetworkModel& by_name(const std::string& name);

} // namespace netsim
