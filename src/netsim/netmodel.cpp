#include "netsim/netmodel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netsim {

namespace {
constexpr double kUs = 1e-6;

/// Sibling communicators sharing one collision domain serialise on the
/// wire; every other topology carries them independently.
double concurrency_factor(Topology topology, int concurrent) noexcept {
    return topology == Topology::SharedBus ? static_cast<double>(std::max(concurrent, 1)) : 1.0;
}
} // namespace

double NetworkModel::ptp_seconds(std::size_t m_bytes) const noexcept {
    double bw = bandwidth_mbps;
    if (m_bytes >= large_msg_bytes) bw *= large_msg_factor;
    double t = latency_us * kUs + static_cast<double>(m_bytes) / (bw * 1e6);
    if (m_bytes >= eager_bytes) t += rendezvous_us * kUs;
    return t;
}

double NetworkModel::pingpong_bandwidth_mbps(std::size_t m_bytes) const noexcept {
    return static_cast<double>(m_bytes) / ptp_seconds(m_bytes) / 1e6;
}

double NetworkModel::alltoall_seconds(int nprocs, std::size_t m_bytes,
                                      int concurrent) const noexcept {
    const int p = std::max(nprocs, 1);
    if (p == 1) return 0.0;
    const double conc = concurrency_factor(topology, concurrent);
    const double one = ptp_seconds(m_bytes);
    switch (topology) {
        case Topology::SharedBus: {
            // Every one of the P(P-1) messages crosses the same wire; only
            // the handshakes overlap.
            double bw = bandwidth_mbps;
            if (m_bytes >= large_msg_bytes) bw *= large_msg_factor;
            const double wire = static_cast<double>(p) * (p - 1) *
                                static_cast<double>(m_bytes) / (bw * 1e6);
            return ((p - 1) * latency_us * kUs + wire) * conc;
        }
        case Topology::PointToPoint:
            // Dedicated pairwise links: the P-1 exchange rounds each run at
            // full link speed.
            return (p - 1) * one;
        case Topology::SharedMemory:
        case Topology::Switched:
            // Concurrent pairwise exchange, derated for all-pairs contention.
            return (p - 1) * (latency_us * kUs +
                              (one - latency_us * kUs) / std::max(alltoall_factor, 1e-9));
    }
    return (p - 1) * one;
}

double NetworkModel::alltoall_seconds_bruck(int nprocs, std::size_t m_bytes) const noexcept {
    const int p = std::max(nprocs, 1);
    if (p == 1) return 0.0;
    const double rounds = std::ceil(std::log2(static_cast<double>(p)));
    const std::size_t per_round = static_cast<std::size_t>(p) / 2 * m_bytes;
    double t = 0.0;
    for (int r = 0; r < static_cast<int>(rounds); ++r) {
        double bw = bandwidth_mbps;
        if (per_round >= large_msg_bytes) bw *= large_msg_factor;
        double one = latency_us * kUs + static_cast<double>(per_round) / (bw * 1e6);
        if (per_round >= eager_bytes) one += rendezvous_us * kUs;
        if (topology == Topology::SharedBus) one *= static_cast<double>(p) / 2.0;
        t += one;
    }
    return t;
}

double NetworkModel::alltoall_bandwidth_mbps(int nprocs, std::size_t m_bytes) const noexcept {
    const int p = std::max(nprocs, 2);
    const double t = alltoall_seconds(p, m_bytes);
    return static_cast<double>(p - 1) * static_cast<double>(m_bytes) / t / 1e6;
}

double NetworkModel::alltoall_share_seconds(int nprocs, std::size_t block_bytes,
                                            std::size_t part_bytes,
                                            int concurrent) const noexcept {
    const int p = std::max(nprocs, 1);
    if (p == 1 || block_bytes == 0) return 0.0;
    const double whole = alltoall_seconds(p, block_bytes, concurrent);
    return whole * static_cast<double>(part_bytes) /
           (static_cast<double>(block_bytes) * static_cast<double>(p - 1));
}

double NetworkModel::allreduce_seconds(int nprocs, std::size_t m_bytes,
                                       int concurrent) const noexcept {
    const int p = std::max(nprocs, 1);
    if (p == 1) return 0.0;
    const double rounds = std::ceil(std::log2(static_cast<double>(p)));
    return rounds * ptp_seconds(m_bytes) * concurrency_factor(topology, concurrent);
}

double NetworkModel::gather_seconds(int nprocs, std::size_t m_bytes,
                                    int concurrent) const noexcept {
    const int p = std::max(nprocs, 1);
    if (p == 1) return 0.0;
    // Binomial tree: round k ships 2^k ranks' worth of payload.
    double t = 0.0;
    std::size_t chunk = m_bytes;
    int covered = 1;
    while (covered < p) {
        t += ptp_seconds(chunk);
        chunk *= 2;
        covered *= 2;
    }
    return t * concurrency_factor(topology, concurrent);
}

double NetworkModel::bcast_tree_seconds(int nprocs, std::size_t m_bytes,
                                        int concurrent) const noexcept {
    const int p = std::max(nprocs, 1);
    if (p == 1) return 0.0;
    const double rounds = std::ceil(std::log2(static_cast<double>(p)));
    return rounds * ptp_seconds(m_bytes) * concurrency_factor(topology, concurrent);
}

double NetworkModel::barrier_seconds(int nprocs, int concurrent) const noexcept {
    const int p = std::max(nprocs, 1);
    if (p == 1) return 0.0;
    const double rounds = std::ceil(std::log2(static_cast<double>(p)));
    return 2.0 * rounds * latency_us * kUs * concurrency_factor(topology, concurrent);
}

double NetworkModel::hierarchical_alltoall_seconds(int rows, int cols,
                                                   std::size_t stage1_bytes,
                                                   std::size_t stage2_bytes) const noexcept {
    // Stage 1: `rows` concurrent row communicators of size `cols`;
    // stage 2: `cols` concurrent column communicators of size `rows`.
    return alltoall_seconds(cols, stage1_bytes, rows) +
           alltoall_seconds(rows, stage2_bytes, cols);
}

const std::vector<NetworkModel>& pingpong_roster() {
    // Latency/bandwidth pairs reproduce the regimes of Figure 7: ethernet
    // high-latency/low-bandwidth, Myrinet supercomputer-class latency but
    // modest bandwidth (sagging for very large messages), T3E on top.
    static const std::vector<NetworkModel> nets = {
        {"AP3000", 70.0, 65.0, 30.0, 16 * 1024, Topology::Switched, 1.0, 1 << 20, 0.50},
        {"SP2-Thin2", 45.0, 33.0, 25.0, 16 * 1024, Topology::Switched, 1.0, 1 << 20, 1.00},
        {"SP2-Silver, internode", 29.0, 85.0, 20.0, 16 * 1024, Topology::Switched, 1.0,
         1 << 20, 0.45},
        {"SP2-Silver, intranode", 22.0, 65.0, 10.0, 32 * 1024, Topology::SharedMemory, 1.0,
         1 << 20, 0.60},
        {"Muses, MPICH", 120.0, 10.8, 60.0, 16 * 1024, Topology::PointToPoint, 1.0, 1 << 20,
         1.0, 0.55},
        {"Muses, LAM", 75.0, 11.2, 40.0, 16 * 1024, Topology::PointToPoint, 1.0, 1 << 20,
         1.0, 0.55},
        {"Onyx 2", 14.0, 140.0, 6.0, 64 * 1024, Topology::SharedMemory, 1.0, 1 << 20, 0.55},
        {"R.Run, eth.-intranode", 65.0, 35.0, 35.0, 16 * 1024, Topology::SharedMemory, 1.0,
         1 << 20, 0.70, 0.70},
        {"R.Run, eth.-internode", 180.0, 9.0, 90.0, 16 * 1024, Topology::SharedBus, 1.0,
         1 << 20, 1.0, 0.55},
        {"R.Run, myr.-intranode", 22.0, 45.0, 12.0, 32 * 1024, Topology::SharedMemory, 0.85,
         1 << 20, 0.85},
        {"R.Run, myr.-internode", 26.0, 38.0, 14.0, 32 * 1024, Topology::Switched, 0.80,
         1 << 20, 1.00},
        {"T3E", 11.0, 175.0, 5.0, 64 * 1024, Topology::Switched, 1.0, 1 << 22, 0.85},
    };
    return nets;
}

const std::vector<NetworkModel>& alltoall_roster() {
    // Figure 8's nine configurations, in its legend order.  The HITACHI
    // SR8000 is not plotted in the paper's figure but its text reports a
    // 450 MB/s floor; we keep it available via by_name().
    static const std::vector<NetworkModel> nets = [] {
        std::vector<NetworkModel> v;
        const auto& pp = pingpong_roster();
        const auto pick = [&](const std::string& n) {
            return *std::find_if(pp.begin(), pp.end(),
                                 [&](const NetworkModel& m) { return m.name == n; });
        };
        auto ap = pick("AP3000");
        ap.name = "AP3000";
        v.push_back(ap);
        auto t3e = pick("T3E");
        v.push_back(t3e);
        auto rre = pick("R.Run, eth.-internode");
        rre.name = "RoadRunner eth.";
        v.push_back(rre);
        auto rrm = pick("R.Run, myr.-internode");
        rrm.name = "RoadRunner myr.";
        v.push_back(rrm);
        auto spsi = pick("SP2-Silver, internode");
        spsi.name = "SP2-Silver internode";
        v.push_back(spsi);
        auto spsa = pick("SP2-Silver, intranode");
        spsa.name = "SP2-Silver intranode";
        v.push_back(spsa);
        auto thin = pick("SP2-Thin2");
        thin.name = "SP2-thin2";
        v.push_back(thin);
        v.push_back({"NCSA", 13.0, 130.0, 6.0, 64 * 1024, Topology::SharedMemory, 1.0,
                     1 << 20, 0.40});
        auto muses = pick("Muses, LAM");
        muses.name = "Muses";
        v.push_back(muses);
        v.push_back({"HITACHI", 8.0, 1000.0, 4.0, 64 * 1024, Topology::Switched, 1.0,
                     1 << 22, 0.50});
        return v;
    }();
    return nets;
}

const std::vector<NetworkModel>& scaling_roster() {
    // The paper-era NIC characteristics behind an idealised full-bisection
    // switch: per-link numbers from Figure 7 (RoadRunner Fast Ethernet, the
    // Myrinet 2000 generation), Topology::Switched so the P=64..4096 sweep
    // measures the decomposition rather than a 1999 switch radix.  Fast
    // Ethernet keeps the blocking-TCP cpu_poll_fraction; Myrinet/GM polls.
    static const std::vector<NetworkModel> nets = {
        {"FastEther switched", 180.0, 11.2, 90.0, 16 * 1024, Topology::Switched, 1.0, 1 << 20,
         1.0, 0.55},
        {"Myrinet2000 switched", 18.0, 140.0, 10.0, 32 * 1024, Topology::Switched, 0.9, 1 << 20,
         0.95, 1.0},
    };
    return nets;
}

const NetworkModel& by_name(const std::string& name) {
    for (const auto* roster : {&pingpong_roster(), &alltoall_roster(), &scaling_roster()}) {
        const auto it = std::find_if(roster->begin(), roster->end(),
                                     [&](const NetworkModel& m) { return m.name == name; });
        if (it != roster->end()) return *it;
    }
    throw std::out_of_range("unknown network: " + name);
}

} // namespace netsim
