#pragma once

#include <cstdint>

/// \file faultmodel.hpp
/// Seeded, deterministic fault injection for the interconnect models.
///
/// The paper's central question — can a commodity PC cluster with Fast
/// Ethernet sustain DNS against vendor machines — hinges on the *reliability*
/// of cheap interconnects, not just their mean latency/bandwidth: TCP
/// retransmit timeouts, collision-induced jitter on a shared segment, and
/// per-node stragglers all widen the CPU-vs-wall-clock gap the paper uses as
/// its network-inefficiency metric (§4.2).  This model perturbs individual
/// message costs with four mechanisms:
///
///   * latency jitter    — uniform extra latency in [0, latency_jitter_us],
///   * packet loss       — each transmission is lost with loss_probability;
///                         a loss costs a detection timeout plus a full
///                         retransmission of the message,
///   * link degradation  — with degrade_probability a message hits a
///                         transiently degraded link (duplex mismatch,
///                         collision storm) and its cost is multiplied by
///                         degrade_factor,
///   * stragglers        — a straggler_fraction of ranks (chosen by seed)
///                         pay straggler_factor on every communication.
///
/// Every draw is a pure function of (seed, rank, message index) via a
/// counter-mode splitmix64 hash: no global RNG state, so runs are
/// bit-reproducible regardless of host thread scheduling, and two ranks
/// never share a stream.  A model with all probabilities, jitter and factors
/// at their zero/identity defaults perturbs nothing — the arithmetic
/// reproduces the unfaulted costs bit-for-bit, which the determinism tests
/// assert.
namespace netsim {

struct FaultPerturbation {
    double extra_seconds = 0.0; ///< added on top of the unfaulted cost
    int retransmits = 0;        ///< lost transmissions charged to this message
};

struct FaultModel {
    std::uint64_t seed = 0;

    double latency_jitter_us = 0.0;     ///< max per-message extra latency
    double loss_probability = 0.0;      ///< per-transmission loss probability
    double retransmit_timeout_us = 0.0; ///< loss-detection timeout per retransmit
    int max_retransmits = 16;           ///< cap on consecutive losses of one message

    double degrade_probability = 0.0;   ///< per-message degraded-window probability
    double degrade_factor = 1.0;        ///< cost multiplier in a degraded window (>= 1)

    double straggler_fraction = 0.0;    ///< fraction of ranks that run slow
    double straggler_factor = 1.0;      ///< comm-cost multiplier for stragglers (>= 1)

    /// Kill event: rank `kill_rank` dies (its Comm throws
    /// simmpi::RankKilledError) the moment its per-rank comm-event counter
    /// reaches `kill_after_events`.  Anchoring the death to the fault-stream
    /// position — not host time — makes node failure a bit-deterministic
    /// event: the same seed and event index kill at the same virtual instant
    /// on every run, which is what lets the recovery tests compare a
    /// kill-then-recover run byte-for-byte against a failure-free one.
    /// `kill_rank < 0` (the default) disables the event.
    int kill_rank = -1;
    std::uint64_t kill_after_events = 0;

    /// Whether the kill event is armed at all.
    [[nodiscard]] bool kill_armed() const noexcept { return kill_rank >= 0; }

    /// Whether `rank`'s comm event number `msg_index` is where it dies.
    [[nodiscard]] bool should_kill(int rank, std::uint64_t msg_index) const noexcept {
        return kill_rank == rank && msg_index >= kill_after_events;
    }

    /// True if any mechanism can perturb a cost.  A disabled model is
    /// guaranteed to leave every message cost bit-identical to no model.
    [[nodiscard]] bool enabled() const noexcept;

    /// Deterministic uniform draw in [0, 1) for (seed, rank, msg_index, salt).
    [[nodiscard]] double uniform(int rank, std::uint64_t msg_index,
                                 std::uint64_t salt) const noexcept;

    /// Whether `rank` is one of the seeded stragglers.
    [[nodiscard]] bool is_straggler(int rank) const noexcept;

    /// Communication-cost multiplier for `rank` (straggler_factor or 1.0).
    [[nodiscard]] double rank_slowdown(int rank) const noexcept;

    /// Perturbation for one message/collective whose unfaulted cost is
    /// `base_seconds`, issued by `rank` as its `msg_index`-th comm event.
    /// The returned extra does NOT include the rank slowdown; callers apply
    ///     cost = (base + extra) * rank_slowdown(rank)
    /// so straggling also stretches the faulted part.
    [[nodiscard]] FaultPerturbation perturb(int rank, std::uint64_t msg_index,
                                            double base_seconds) const noexcept;

    /// Mean extra seconds per message of cost `base_seconds` (expectation of
    /// perturb() over the message index), for analytic pricing where no
    /// per-message stream exists (e.g. the cluster advisor).
    [[nodiscard]] double expected_extra_seconds(double base_seconds) const noexcept;

    /// Expected wall-cost inflation factor (faulted / unfaulted) for a
    /// message of cost `base_seconds`, averaged over ranks: 1.0 = perfect
    /// network, 1.25 = a quarter of the communication time is fault overhead.
    [[nodiscard]] double expected_inflation(double base_seconds) const noexcept;
};

} // namespace netsim
