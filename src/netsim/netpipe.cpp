#include "netsim/netpipe.hpp"

namespace netsim {

PingPongSeries run_pingpong(const NetworkModel& net, std::size_t min_bytes,
                            std::size_t max_bytes) {
    PingPongSeries out;
    out.network = net.name;
    for (std::size_t m = std::max<std::size_t>(min_bytes, 1); m <= max_bytes;
         m = m < 8 ? m + 1 : m + m / 2) {
        // NetPIPE perturbs each ladder point by +/- 1 byte; with an analytic
        // transport the three agree to rounding, so record the centre point.
        const double t = net.ptp_seconds(m);
        out.samples.push_back({m, t * 1e6, net.pingpong_bandwidth_mbps(m)});
    }
    return out;
}

PingPongSeries run_latency_sweep(const NetworkModel& net, std::size_t max_bytes,
                                 std::size_t step) {
    PingPongSeries out;
    out.network = net.name;
    for (std::size_t m = 0; m <= max_bytes; m += step) {
        const double t = net.ptp_seconds(m);
        out.samples.push_back({m, t * 1e6, m ? net.pingpong_bandwidth_mbps(m) : 0.0});
    }
    return out;
}

AlltoallSeries run_alltoall_sweep(const NetworkModel& net, int nprocs, std::size_t min_bytes,
                                  std::size_t max_bytes) {
    AlltoallSeries out;
    out.network = net.name;
    out.nprocs = nprocs;
    for (std::size_t m = std::max<std::size_t>(min_bytes, 1); m <= max_bytes; m *= 2) {
        out.samples.push_back({m, net.alltoall_bandwidth_mbps(nprocs, m)});
    }
    return out;
}

} // namespace netsim
