#include "mesh/mesh.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>
#include <stdexcept>

namespace mesh {

namespace {

/// Local edges as (a, b) local-vertex pairs, matching
/// spectral::Expansion::edge_vertices.
std::array<std::array<int, 2>, 4> local_edges(spectral::Shape s) {
    if (s == spectral::Shape::Quad) return {{{0, 1}, {1, 2}, {3, 2}, {0, 3}}};
    return {{{0, 1}, {1, 2}, {0, 2}, {-1, -1}}};
}

} // namespace

Mesh::Mesh(std::vector<Vertex> vertices, std::vector<Element> elements)
    : vertices_(std::move(vertices)), elements_(std::move(elements)) {
    build_edges();
}

void Mesh::build_edges() {
    elem_edges_.assign(elements_.size(), {-1, -1, -1, -1});
    std::map<std::pair<int, int>, int> index;
    for (std::size_t e = 0; e < elements_.size(); ++e) {
        const Element& el = elements_[e];
        const auto le = local_edges(el.shape);
        const int ne = el.num_vertices();
        for (int k = 0; k < ne; ++k) {
            const int a = el.v[static_cast<std::size_t>(le[static_cast<std::size_t>(k)][0])];
            const int b = el.v[static_cast<std::size_t>(le[static_cast<std::size_t>(k)][1])];
            if (a < 0 || b < 0 || a == b) throw std::invalid_argument("mesh: bad element");
            const std::pair<int, int> key{std::min(a, b), std::max(a, b)};
            auto [it, inserted] = index.try_emplace(key, static_cast<int>(edges_.size()));
            if (inserted) {
                Edge ed;
                ed.v0 = key.first;
                ed.v1 = key.second;
                ed.elem[0] = static_cast<int>(e);
                ed.local[0] = k;
                edges_.push_back(ed);
            } else {
                Edge& ed = edges_[static_cast<std::size_t>(it->second)];
                if (ed.elem[1] >= 0) throw std::invalid_argument("mesh: non-manifold edge");
                ed.elem[1] = static_cast<int>(e);
                ed.local[1] = k;
            }
            elem_edges_[e][static_cast<std::size_t>(k)] = it->second;
        }
    }
}

void Mesh::dual_graph(std::vector<int>& xadj, std::vector<int>& adjncy) const {
    const std::size_t n = elements_.size();
    std::vector<std::vector<int>> adj(n);
    for (const Edge& ed : edges_) {
        if (ed.is_boundary()) continue;
        adj[static_cast<std::size_t>(ed.elem[0])].push_back(ed.elem[1]);
        adj[static_cast<std::size_t>(ed.elem[1])].push_back(ed.elem[0]);
    }
    xadj.assign(n + 1, 0);
    adjncy.clear();
    for (std::size_t e = 0; e < n; ++e) {
        std::sort(adj[e].begin(), adj[e].end());
        for (int nb : adj[e]) adjncy.push_back(nb);
        xadj[e + 1] = static_cast<int>(adjncy.size());
    }
}

double Mesh::element_area(std::size_t e) const {
    const Element& el = elements_[e];
    const int n = el.num_vertices();
    double a = 0.0;
    for (int k = 0; k < n; ++k) {
        const Vertex& p = elem_vertex(e, static_cast<std::size_t>(k));
        const Vertex& q = elem_vertex(e, static_cast<std::size_t>((k + 1) % n));
        a += p.x * q.y - q.x * p.y;
    }
    return 0.5 * a;
}

double Mesh::total_area() const {
    double a = 0.0;
    for (std::size_t e = 0; e < elements_.size(); ++e) a += element_area(e);
    return a;
}

std::string Mesh::summary() const {
    std::size_t quads = 0, tris = 0, bnd = 0;
    for (const Element& el : elements_)
        (el.shape == spectral::Shape::Quad ? quads : tris) += 1;
    for (const Edge& ed : edges_)
        if (ed.is_boundary()) ++bnd;
    std::ostringstream os;
    os << elements_.size() << " elements (" << quads << " quad, " << tris << " tri), "
       << vertices_.size() << " vertices, " << edges_.size() << " edges (" << bnd
       << " boundary)";
    return os.str();
}

} // namespace mesh
