#pragma once

#include <cstddef>
#include <vector>

#include "mesh/mesh.hpp"

/// \file generators.hpp
/// Mesh generators for the reproduction's flow problems.
///
/// The paper's bluff-body mesh (Figure 11, left: 902 elements on
/// [-15, 25] x [-5, 5] around a cylinder) is replaced by a graded
/// quadrilateral mesh around a unit *square* cylinder: straight-sided
/// elements represent it exactly, and square-cylinder wakes exercise the
/// identical code path (see DESIGN.md substitution table).
namespace mesh {

/// Structured rectangle mesh of nx-by-ny quads on [x0,x1] x [y0,y1].
[[nodiscard]] Mesh rectangle_quads(std::size_t nx, std::size_t ny, double x0, double x1,
                                   double y0, double y1);

/// Same grid split into 2 nx ny triangles.
[[nodiscard]] Mesh rectangle_tris(std::size_t nx, std::size_t ny, double x0, double x1,
                                  double y0, double y1);

/// Tensor mesh from explicit coordinate lines (graded meshes).
[[nodiscard]] Mesh tensor_quads(const std::vector<double>& xs, const std::vector<double>& ys);

/// One-dimensional geometric grading: n intervals from a to b whose sizes
/// grow by `ratio` per step (ratio < 1 clusters toward a... toward b? sizes
/// multiply by ratio as x grows, so ratio > 1 clusters toward a).
[[nodiscard]] std::vector<double> graded_line(double a, double b, std::size_t n, double ratio);

/// Parameters of the bluff-body domain (defaults follow the paper's
/// Figure 11: x in [-15, 25], y in [-5, 5], unit body at the origin).
struct BluffBodyParams {
    double x_min = -15.0, x_max = 25.0;
    double y_min = -5.0, y_max = 5.0;
    double body_half = 0.5;    ///< body occupies [-h, h]^2
    std::size_t n_upstream = 8;
    std::size_t n_body = 4;    ///< cells along one body side
    std::size_t n_wake = 14;   ///< downstream resolution
    std::size_t n_side = 6;    ///< cells from body to each side wall
    double grading = 1.35;     ///< geometric growth away from the body
};

/// Quadrilateral mesh of the channel with the square bluff body removed.
/// Boundary tags: Inflow (x = x_min), Outflow (x = x_max), Side (y = +/-),
/// Body (hole boundary).
[[nodiscard]] Mesh bluff_body_mesh(const BluffBodyParams& params = {});

/// Domain for the ALE flapping-body runs: a shorter channel with the square
/// body; same tags.  The body boundary will be moved by the ALE solver.
[[nodiscard]] Mesh flapping_body_mesh(std::size_t refine = 1);

} // namespace mesh
