#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "spectral/expansion.hpp"

/// \file mesh.hpp
/// 2-D unstructured hybrid (triangle/quadrilateral) meshes.
///
/// NekTar "uses meshes similar to standard finite element and finite volume
/// meshes, consisting of structured or unstructured grids or a combination of
/// both" (paper §1.3).  This module provides the mesh container, the edge
/// connectivity the C0 assembly needs, and boundary tagging for the flow
/// problems' inflow/outflow/wall conditions.
namespace mesh {

struct Vertex {
    double x = 0.0;
    double y = 0.0;
};

/// Straight-sided element: 3 (triangle) or 4 (quad) vertex ids, CCW.
struct Element {
    spectral::Shape shape = spectral::Shape::Quad;
    std::array<int, 4> v = {-1, -1, -1, -1};
    [[nodiscard]] int num_vertices() const noexcept {
        return shape == spectral::Shape::Quad ? 4 : 3;
    }
};

/// Boundary condition tag attached to boundary edges.
enum class BoundaryTag : int {
    None = 0,   ///< interior edge
    Inflow,     ///< Dirichlet velocity (laminar inflow of 1 in the paper)
    Outflow,    ///< Neumann (zero flux)
    Side,       ///< Neumann sides of the domain (paper's bluff-body setup)
    Wall,       ///< no-slip wall
    Body,       ///< bluff body surface (no-slip; moving in the ALE case)
};

/// A unique mesh edge and the one or two elements sharing it.
struct Edge {
    int v0 = -1;                ///< global endpoint, v0 < v1
    int v1 = -1;
    int elem[2] = {-1, -1};     ///< adjacent elements (second -1 on boundary)
    int local[2] = {-1, -1};    ///< local edge index within each element
    BoundaryTag tag = BoundaryTag::None;
    [[nodiscard]] bool is_boundary() const noexcept { return elem[1] < 0; }
};

class Mesh {
public:
    Mesh() = default;
    Mesh(std::vector<Vertex> vertices, std::vector<Element> elements);

    [[nodiscard]] std::size_t num_vertices() const noexcept { return vertices_.size(); }
    [[nodiscard]] std::size_t num_elements() const noexcept { return elements_.size(); }
    [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }

    [[nodiscard]] const Vertex& vertex(std::size_t i) const noexcept { return vertices_[i]; }
    /// Moves a vertex (ALE mesh motion); connectivity is unchanged.
    void set_vertex(std::size_t i, const Vertex& v) noexcept { vertices_[i] = v; }
    [[nodiscard]] const Element& element(std::size_t e) const noexcept { return elements_[e]; }
    [[nodiscard]] const Edge& edge(std::size_t i) const noexcept { return edges_[i]; }
    [[nodiscard]] const std::vector<Element>& elements() const noexcept { return elements_; }
    [[nodiscard]] const std::vector<Edge>& edges() const noexcept { return edges_; }

    /// Edge id of local edge `le` of element `e`.
    [[nodiscard]] int element_edge(std::size_t e, std::size_t le) const noexcept {
        return elem_edges_[e][le];
    }

    /// Physical coordinates of element e's local vertex lv.
    [[nodiscard]] const Vertex& elem_vertex(std::size_t e, std::size_t lv) const noexcept {
        return vertices_[static_cast<std::size_t>(elements_[e].v[lv])];
    }

    /// Tags every boundary edge whose midpoint satisfies `pred`.
    template <typename Pred>
    void tag_boundary(BoundaryTag tag, Pred&& pred) {
        for (Edge& ed : edges_) {
            if (!ed.is_boundary()) continue;
            const Vertex& a = vertices_[static_cast<std::size_t>(ed.v0)];
            const Vertex& b = vertices_[static_cast<std::size_t>(ed.v1)];
            if (pred(0.5 * (a.x + b.x), 0.5 * (a.y + b.y))) ed.tag = tag;
        }
    }

    /// Element adjacency graph (across shared edges) in CSR form; this is the
    /// dual graph handed to the METIS-style partitioner.
    void dual_graph(std::vector<int>& xadj, std::vector<int>& adjncy) const;

    /// Total element area (sum over linear-geometry elements); sanity checks.
    [[nodiscard]] double total_area() const;

    /// Area of a single element.
    [[nodiscard]] double element_area(std::size_t e) const;

    /// One-line summary ("902 elements, 961 vertices, ...") for the examples.
    [[nodiscard]] std::string summary() const;

private:
    void build_edges();

    std::vector<Vertex> vertices_;
    std::vector<Element> elements_;
    std::vector<Edge> edges_;
    std::vector<std::array<int, 4>> elem_edges_;
};

} // namespace mesh
