#include "mesh/generators.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace mesh {

namespace {

std::vector<double> linspace(double a, double b, std::size_t n_intervals) {
    std::vector<double> x(n_intervals + 1);
    for (std::size_t i = 0; i <= n_intervals; ++i)
        x[i] = a + (b - a) * static_cast<double>(i) / static_cast<double>(n_intervals);
    return x;
}

/// Concatenates coordinate lines, dropping duplicated junction points.
std::vector<double> concat(std::initializer_list<std::vector<double>> parts) {
    std::vector<double> out;
    for (const auto& p : parts) {
        if (out.empty()) {
            out = p;
        } else {
            assert(std::abs(out.back() - p.front()) < 1e-12);
            out.insert(out.end(), p.begin() + 1, p.end());
        }
    }
    return out;
}

} // namespace

std::vector<double> graded_line(double a, double b, std::size_t n, double ratio) {
    if (n == 0) throw std::invalid_argument("graded_line: n must be positive");
    std::vector<double> x(n + 1);
    double total = 0.0, step = 1.0;
    std::vector<double> sizes(n);
    for (std::size_t i = 0; i < n; ++i) {
        sizes[i] = step;
        total += step;
        step *= ratio;
    }
    x[0] = a;
    for (std::size_t i = 0; i < n; ++i) x[i + 1] = x[i] + (b - a) * sizes[i] / total;
    x[n] = b; // exact endpoint despite rounding
    return x;
}

Mesh tensor_quads(const std::vector<double>& xs, const std::vector<double>& ys) {
    const std::size_t nx = xs.size() - 1;
    const std::size_t ny = ys.size() - 1;
    std::vector<Vertex> verts;
    verts.reserve((nx + 1) * (ny + 1));
    for (std::size_t j = 0; j <= ny; ++j)
        for (std::size_t i = 0; i <= nx; ++i) verts.push_back({xs[i], ys[j]});
    const auto vid = [&](std::size_t i, std::size_t j) {
        return static_cast<int>(j * (nx + 1) + i);
    };
    std::vector<Element> elems;
    elems.reserve(nx * ny);
    for (std::size_t j = 0; j < ny; ++j)
        for (std::size_t i = 0; i < nx; ++i)
            elems.push_back({spectral::Shape::Quad,
                             {vid(i, j), vid(i + 1, j), vid(i + 1, j + 1), vid(i, j + 1)}});
    return Mesh(std::move(verts), std::move(elems));
}

Mesh rectangle_quads(std::size_t nx, std::size_t ny, double x0, double x1, double y0,
                     double y1) {
    return tensor_quads(linspace(x0, x1, nx), linspace(y0, y1, ny));
}

Mesh rectangle_tris(std::size_t nx, std::size_t ny, double x0, double x1, double y0,
                    double y1) {
    const auto xs = linspace(x0, x1, nx);
    const auto ys = linspace(y0, y1, ny);
    std::vector<Vertex> verts;
    for (std::size_t j = 0; j <= ny; ++j)
        for (std::size_t i = 0; i <= nx; ++i) verts.push_back({xs[i], ys[j]});
    const auto vid = [&](std::size_t i, std::size_t j) {
        return static_cast<int>(j * (nx + 1) + i);
    };
    std::vector<Element> elems;
    for (std::size_t j = 0; j < ny; ++j) {
        for (std::size_t i = 0; i < nx; ++i) {
            // Alternate the diagonal for a symmetric union-jack-like pattern.
            if ((i + j) % 2 == 0) {
                elems.push_back({spectral::Shape::Triangle,
                                 {vid(i, j), vid(i + 1, j), vid(i + 1, j + 1), -1}});
                elems.push_back({spectral::Shape::Triangle,
                                 {vid(i, j), vid(i + 1, j + 1), vid(i, j + 1), -1}});
            } else {
                elems.push_back({spectral::Shape::Triangle,
                                 {vid(i, j), vid(i + 1, j), vid(i, j + 1), -1}});
                elems.push_back({spectral::Shape::Triangle,
                                 {vid(i + 1, j), vid(i + 1, j + 1), vid(i, j + 1), -1}});
            }
        }
    }
    return Mesh(std::move(verts), std::move(elems));
}

namespace {

/// Tensor mesh with the cells inside [hx0,hx1] x [hy0,hy1] removed.
Mesh punched_tensor(const std::vector<double>& xs, const std::vector<double>& ys, double hx0,
                    double hx1, double hy0, double hy1) {
    const std::size_t nx = xs.size() - 1;
    const std::size_t ny = ys.size() - 1;
    std::vector<Vertex> verts;
    std::vector<int> vmap((nx + 1) * (ny + 1), -1);
    std::vector<Element> elems;
    const auto grid = [&](std::size_t i, std::size_t j) { return j * (nx + 1) + i; };
    const auto inside_hole = [&](std::size_t i, std::size_t j) {
        const double cx = 0.5 * (xs[i] + xs[i + 1]);
        const double cy = 0.5 * (ys[j] + ys[j + 1]);
        return cx > hx0 && cx < hx1 && cy > hy0 && cy < hy1;
    };
    const auto use_vertex = [&](std::size_t i, std::size_t j) {
        int& id = vmap[grid(i, j)];
        if (id < 0) {
            id = static_cast<int>(verts.size());
            verts.push_back({xs[i], ys[j]});
        }
        return id;
    };
    for (std::size_t j = 0; j < ny; ++j) {
        for (std::size_t i = 0; i < nx; ++i) {
            if (inside_hole(i, j)) continue;
            elems.push_back({spectral::Shape::Quad,
                             {use_vertex(i, j), use_vertex(i + 1, j), use_vertex(i + 1, j + 1),
                              use_vertex(i, j + 1)}});
        }
    }
    return Mesh(std::move(verts), std::move(elems));
}

} // namespace

Mesh bluff_body_mesh(const BluffBodyParams& p) {
    const double h = p.body_half;
    // Coordinate lines hit the body corners exactly so the hole boundary is a
    // union of edges.
    const auto xs = concat({graded_line(p.x_min, -h, p.n_upstream, 1.0 / p.grading),
                            linspace(-h, h, p.n_body),
                            graded_line(h, p.x_max, p.n_wake, p.grading)});
    const auto ys = concat({graded_line(p.y_min, -h, p.n_side, 1.0 / p.grading),
                            linspace(-h, h, p.n_body),
                            graded_line(h, p.y_max, p.n_side, p.grading)});
    Mesh m = punched_tensor(xs, ys, -h, h, -h, h);
    const double eps = 1e-9;
    m.tag_boundary(BoundaryTag::Inflow,
                   [&](double x, double) { return std::abs(x - p.x_min) < eps; });
    m.tag_boundary(BoundaryTag::Outflow,
                   [&](double x, double) { return std::abs(x - p.x_max) < eps; });
    m.tag_boundary(BoundaryTag::Side, [&](double, double y) {
        return std::abs(y - p.y_min) < eps || std::abs(y - p.y_max) < eps;
    });
    m.tag_boundary(BoundaryTag::Body, [&](double x, double y) {
        return x > -h - eps && x < h + eps && y > -h - eps && y < h + eps;
    });
    return m;
}

Mesh flapping_body_mesh(std::size_t refine) {
    BluffBodyParams p;
    p.x_min = -5.0;
    p.x_max = 5.0;
    p.y_min = -2.5;
    p.y_max = 2.5;
    p.n_upstream = 3 * refine;
    p.n_wake = 4 * refine;
    p.n_side = 3 * refine;
    p.n_body = 2 * refine;
    p.grading = 1.3;
    return bluff_body_mesh(p);
}

} // namespace mesh
