#pragma once

#include <cstddef>
#include <span>

#include "blaslite/counters.hpp"

/// \file blas.hpp
/// A from-scratch subset of the BLAS used by the NekTar-style solvers.
///
/// The paper's kernel-level evaluation (Figures 1-6) times dcopy, daxpy,
/// ddot, dgemv and dgemm; those five routines "account for most of the work"
/// in the application codes.  This module implements them (plus the few
/// helpers the solvers need) with plain, cache-aware C++ so the whole
/// reproduction is self-contained.  All kernels charge the thread-local
/// operation counters (see counters.hpp).
///
/// Matrices are dense row-major unless stated otherwise; `lda` is the leading
/// (row) stride in elements.
namespace blaslite {

/// y <- x (BLAS dcopy).  Vectors must have equal length.
void dcopy(std::span<const double> x, std::span<double> y) noexcept;

/// y <- alpha*x + y (BLAS daxpy).
void daxpy(double alpha, std::span<const double> x, std::span<double> y) noexcept;

/// Returns x . y (BLAS ddot).
[[nodiscard]] double ddot(std::span<const double> x, std::span<const double> y) noexcept;

/// x <- alpha*x (BLAS dscal).
void dscal(double alpha, std::span<double> x) noexcept;

/// z <- x*y elementwise (NekTar's vmul; dominates the nonlinear step).
void dvmul(std::span<const double> x, std::span<const double> y, std::span<double> z) noexcept;

/// z <- x*y + z elementwise (vvtvp).
void dvvtvp(std::span<const double> x, std::span<const double> y, std::span<double> z) noexcept;

/// y <- alpha*A*x + beta*y with A m-by-n row-major (BLAS dgemv, no transpose).
void dgemv(double alpha, const double* a, std::size_t lda, std::size_t m, std::size_t n,
           const double* x, double beta, double* y) noexcept;

/// y <- alpha*A^T*x + beta*y with A m-by-n row-major (BLAS dgemv, transpose).
void dgemv_t(double alpha, const double* a, std::size_t lda, std::size_t m, std::size_t n,
             const double* x, double beta, double* y) noexcept;

/// C <- alpha*A*B + beta*C with A m-by-k, B k-by-n, C m-by-n, all row-major
/// (BLAS dgemm, NN case).  Blocked for cache reuse; the small-n regime the
/// paper highlights (n <= 20, Figure 6) takes a dedicated unblocked path.
void dgemm(double alpha, const double* a, std::size_t lda, const double* b, std::size_t ldb,
           double beta, double* c, std::size_t ldc, std::size_t m, std::size_t n,
           std::size_t k) noexcept;

/// Convenience dgemm for tightly packed square matrices.
void dgemm_square(double alpha, const double* a, const double* b, double beta, double* c,
                  std::size_t n) noexcept;

/// Infinity norm of x - y; handy for tests.
[[nodiscard]] double max_abs_diff(std::span<const double> x, std::span<const double> y) noexcept;

} // namespace blaslite
