#pragma once

#include <cstddef>
#include <span>

#include "blaslite/counters.hpp"

/// \file blas.hpp
/// A from-scratch subset of the BLAS used by the NekTar-style solvers.
///
/// The paper's kernel-level evaluation (Figures 1-6) times dcopy, daxpy,
/// ddot, dgemv and dgemm; those five routines "account for most of the work"
/// in the application codes.  This module implements them (plus the few
/// helpers the solvers need) with plain, cache-aware C++ so the whole
/// reproduction is self-contained.  All kernels charge the thread-local
/// operation counters (see counters.hpp).
///
/// Matrices are dense row-major unless stated otherwise; `lda` is the leading
/// (row) stride in elements.
namespace blaslite {

/// y <- x (BLAS dcopy).  Vectors must have equal length.
void dcopy(std::span<const double> x, std::span<double> y) noexcept;

/// y <- alpha*x + y (BLAS daxpy).
void daxpy(double alpha, std::span<const double> x, std::span<double> y) noexcept;

/// Returns x . y (BLAS ddot).
[[nodiscard]] double ddot(std::span<const double> x, std::span<const double> y) noexcept;

/// x <- alpha*x (BLAS dscal).
void dscal(double alpha, std::span<double> x) noexcept;

/// z <- x*y elementwise (NekTar's vmul; dominates the nonlinear step).
void dvmul(std::span<const double> x, std::span<const double> y, std::span<double> z) noexcept;

/// z <- x*y + z elementwise (vvtvp).
void dvvtvp(std::span<const double> x, std::span<const double> y, std::span<double> z) noexcept;

/// y <- alpha*A*x + beta*y with A m-by-n row-major (BLAS dgemv, no transpose).
void dgemv(double alpha, const double* a, std::size_t lda, std::size_t m, std::size_t n,
           const double* x, double beta, double* y) noexcept;

/// y <- alpha*A^T*x + beta*y with A m-by-n row-major (BLAS dgemv, transpose).
void dgemv_t(double alpha, const double* a, std::size_t lda, std::size_t m, std::size_t n,
             const double* x, double beta, double* y) noexcept;

/// C <- alpha*A*B + beta*C with A m-by-k, B k-by-n, C m-by-n, all row-major
/// (BLAS dgemm, NN case).  Runs a register-blocked (4x8 accumulator tile)
/// micro-kernel over packed panels of B; the small-n regime the paper
/// highlights (n <= 20, Figure 6) takes a dedicated unblocked path.  Large
/// row counts split across the parallel thread pool by blocks of C rows,
/// which is bitwise deterministic: each C element accumulates its k-products
/// in the same order regardless of tiling or thread count.
void dgemm(double alpha, const double* a, std::size_t lda, const double* b, std::size_t ldb,
           double beta, double* c, std::size_t ldc, std::size_t m, std::size_t n,
           std::size_t k) noexcept;

/// Convenience dgemm for tightly packed square matrices.
void dgemm_square(double alpha, const double* a, const double* b, double beta, double* c,
                  std::size_t n) noexcept;

/// C <- alpha*A*B + beta*C, all COLUMN-major: A m-by-k (lda >= m), B k-by-n
/// (ldb >= k), C m-by-n (ldc >= m).  The batched elemental engine packs
/// per-element coefficient blocks as columns, which makes the whole-group
/// operand a column-major panel; this entry point runs it through the same
/// micro-kernel (a column-major product is the row-major product of the
/// transposed views, so no data movement is needed).
void dgemm_cm(double alpha, const double* a, std::size_t lda, const double* b,
              std::size_t ldb, double beta, double* c, std::size_t ldc, std::size_t m,
              std::size_t n, std::size_t k) noexcept;

/// One batch item of the batched GEMMs: a per-item input panel and its
/// output panel (both column-major).  `b` is the right operand for
/// dgemm_batch_same_a and the left operand for dgemm_batch_same_b.
struct GemmBatchItem {
    const double* b = nullptr;
    double* c = nullptr;
};

/// Batched column-major GEMM sharing the left operand:
///   C_i <- alpha * A * B_i + beta * C_i     for every item i,
/// with A m-by-k (lda >= m) and every B_i k-by-n (ldb), C_i m-by-n (ldc).
/// This is the dgemv -> dgemm batching step of the elemental engine: one
/// operator matrix (basis, derivative, or Helmholtz block) multiplies many
/// element/plane panels in a single call.  A is packed into micro-panels
/// once and reused for every item; items split across the thread pool
/// (bitwise deterministic — items are independent).  Operation counters are
/// charged exactly as the equivalent sequence of dgemm_cm calls.
void dgemm_batch_same_a(double alpha, const double* a, std::size_t lda, std::size_t m,
                        std::size_t k, std::span<const GemmBatchItem> items, std::size_t n,
                        std::size_t ldb, std::size_t ldc, double beta) noexcept;

/// Batched column-major GEMM sharing the RIGHT operand:
///   C_i <- alpha * A_i * B + beta * C_i     for every item i,
/// with every A_i m-by-k (item.b, lda), B k-by-n (ldb >= k) and C_i m-by-n
/// (item.c, ldc).  This is the second contraction stage of sum-factorised
/// operator evaluation: each element's intermediate panel multiplies the
/// shared transposed 1-D basis from the right.  The shared operand needs no
/// packing (it is the row-major left factor of every item's transposed-view
/// product); items split across the thread pool, each packing its own panel
/// into thread-local scratch (bitwise deterministic — items are
/// independent).  Counters are charged exactly as the equivalent sequence of
/// dgemm_cm calls.
void dgemm_batch_same_b(double alpha, std::span<const GemmBatchItem> items, std::size_t lda,
                        const double* b, std::size_t ldb, std::size_t ldc, std::size_t m,
                        std::size_t n, std::size_t k, double beta) noexcept;

/// Infinity norm of x - y; handy for tests.
[[nodiscard]] double max_abs_diff(std::span<const double> x, std::span<const double> y) noexcept;

} // namespace blaslite
