#include "blaslite/blas.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "parallel/scratch.hpp"
#include "parallel/thread_pool.hpp"

/// Hot kernels are compiled once per x86-64 microarchitecture level and
/// dispatched at load time (GCC/Clang function multi-versioning).  The
/// baseline x86-64 ABI the default build targets has no FMA and only 16
/// SSE2 registers, which starves the register-blocked micro-kernel; the
/// v3 (AVX2+FMA) and v4 (AVX-512) clones give it the register file it was
/// designed for without changing global compile flags or dropping support
/// for older machines.  Dispatch is per-machine, not per-run, so results
/// stay bitwise reproducible on a given host.  Sanitizer builds disable
/// the clones: their IFUNC resolvers run during relocation, before the
/// sanitizer runtime is initialized, and crash at startup.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define REPRO_MULTIVERSION
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define REPRO_MULTIVERSION
#endif
#endif
#if !defined(REPRO_MULTIVERSION) && defined(__x86_64__) && defined(__has_attribute)
#if __has_attribute(target_clones)
#define REPRO_MULTIVERSION \
    __attribute__((target_clones("arch=x86-64-v4", "arch=x86-64-v3", "default")))
#endif
#endif
#ifndef REPRO_MULTIVERSION
#define REPRO_MULTIVERSION
#endif

namespace blaslite {

namespace {
constexpr std::size_t kDouble = sizeof(double);
} // namespace

void dcopy(std::span<const double> x, std::span<double> y) noexcept {
    assert(x.size() == y.size());
    std::copy(x.begin(), x.end(), y.begin());
    detail::charge(0, x.size() * kDouble, x.size() * kDouble);
}

REPRO_MULTIVERSION
void daxpy(double alpha, std::span<const double> x, std::span<double> y) noexcept {
    assert(x.size() == y.size());
    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
    detail::charge(2 * n, 2 * n * kDouble, n * kDouble);
}

REPRO_MULTIVERSION
double ddot(std::span<const double> x, std::span<const double> y) noexcept {
    assert(x.size() == y.size());
    const std::size_t n = x.size();
    // Four partial sums break the additive dependence chain so the loop is
    // limited by load bandwidth rather than FP-add latency.
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        s0 += x[i] * y[i];
        s1 += x[i + 1] * y[i + 1];
        s2 += x[i + 2] * y[i + 2];
        s3 += x[i + 3] * y[i + 3];
    }
    for (; i < n; ++i) s0 += x[i] * y[i];
    detail::charge(2 * n, 2 * n * kDouble, 0);
    return (s0 + s1) + (s2 + s3);
}

REPRO_MULTIVERSION
void dscal(double alpha, std::span<double> x) noexcept {
    for (double& v : x) v *= alpha;
    detail::charge(x.size(), x.size() * kDouble, x.size() * kDouble);
}

REPRO_MULTIVERSION
void dvmul(std::span<const double> x, std::span<const double> y, std::span<double> z) noexcept {
    assert(x.size() == y.size() && x.size() == z.size());
    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i) z[i] = x[i] * y[i];
    detail::charge(n, 2 * n * kDouble, n * kDouble);
}

REPRO_MULTIVERSION
void dvvtvp(std::span<const double> x, std::span<const double> y, std::span<double> z) noexcept {
    assert(x.size() == y.size() && x.size() == z.size());
    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i) z[i] += x[i] * y[i];
    detail::charge(2 * n, 3 * n * kDouble, n * kDouble);
}

REPRO_MULTIVERSION
void dgemv(double alpha, const double* a, std::size_t lda, std::size_t m, std::size_t n,
           const double* x, double beta, double* y) noexcept {
    for (std::size_t i = 0; i < m; ++i) {
        const double* row = a + i * lda;
        double s0 = 0.0, s1 = 0.0;
        std::size_t j = 0;
        for (; j + 2 <= n; j += 2) {
            s0 += row[j] * x[j];
            s1 += row[j + 1] * x[j + 1];
        }
        if (j < n) s0 += row[j] * x[j];
        y[i] = alpha * (s0 + s1) + beta * y[i];
    }
    detail::charge(2 * m * n + 3 * m, (m * n + n + m) * kDouble, m * kDouble);
}

REPRO_MULTIVERSION
void dgemv_t(double alpha, const double* a, std::size_t lda, std::size_t m, std::size_t n,
             const double* x, double beta, double* y) noexcept {
    if (beta == 0.0) {
        std::fill(y, y + n, 0.0);
    } else if (beta != 1.0) {
        for (std::size_t j = 0; j < n; ++j) y[j] *= beta;
    }
    for (std::size_t i = 0; i < m; ++i) {
        const double* row = a + i * lda;
        const double xi = alpha * x[i];
        for (std::size_t j = 0; j < n; ++j) y[j] += xi * row[j];
    }
    detail::charge(2 * m * n + m, (m * n + m + n) * kDouble, n * kDouble);
}

namespace {

/// Unblocked triple loop in ikj order: streams B and C rows, keeps a[i][p] in
/// a register.  Optimal for the tiny matrices (n <= 20) that dominate
/// spectral/hp elemental operations (paper, Figure 6).
REPRO_MULTIVERSION
void dgemm_small(double alpha, const double* a, std::size_t lda, const double* b,
                 std::size_t ldb, double beta, double* c, std::size_t ldc, std::size_t m,
                 std::size_t n, std::size_t k) noexcept {
    for (std::size_t i = 0; i < m; ++i) {
        double* crow = c + i * ldc;
        if (beta == 0.0) {
            std::fill(crow, crow + n, 0.0);
        } else if (beta != 1.0) {
            for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
        }
        const double* arow = a + i * lda;
        for (std::size_t p = 0; p < k; ++p) {
            const double aip = alpha * arow[p];
            const double* brow = b + p * ldb;
            for (std::size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
        }
    }
}

// --------------------------------------------------------------------------
// Register-blocked micro-kernel engine.
//
// C rows are processed kMR at a time against kNR-column panels of B that were
// packed (zero-padded) into contiguous micro-panels, so the inner loop is a
// rank-1 update of a kMR x kNR accumulator tile held entirely in registers.
// Every C element accumulates its k products in ascending-p order regardless
// of tiling, row blocking, or the thread count — the basis of the engine's
// bitwise-determinism guarantee.
// --------------------------------------------------------------------------

constexpr std::size_t kMR = 8;        ///< register tile rows
constexpr std::size_t kNR = 8;        ///< register tile columns
constexpr std::size_t kRowBlock = 128; ///< C rows per thread-pool work item
/// Below this flop count the unblocked ikj loop wins (no packing overhead);
/// this keeps the paper's small-n regime (Figure 6) on its dedicated path.
constexpr std::size_t kSmallFlops = 2 * 24 * 24 * 24;
/// Minimum whole-call flop count before the thread pool is worth waking.
constexpr std::size_t kParallelFlops = 1u << 21;

/// Packs b (k x n row-major, leading dimension ldb) into kNR-wide column
/// panels, zero-padded to a multiple of kNR columns.
REPRO_MULTIVERSION
void pack_b_panels(const double* b, std::size_t ldb, std::size_t k, std::size_t n,
                   double* bp) noexcept {
    const std::size_t npanels = (n + kNR - 1) / kNR;
    for (std::size_t j = 0; j < npanels; ++j) {
        const std::size_t j0 = j * kNR;
        const std::size_t nr = std::min(kNR, n - j0);
        double* panel = bp + j * k * kNR;
        for (std::size_t p = 0; p < k; ++p) {
            const double* brow = b + p * ldb + j0;
            double* prow = panel + p * kNR;
            for (std::size_t jj = 0; jj < nr; ++jj) prow[jj] = brow[jj];
            for (std::size_t jj = nr; jj < kNR; ++jj) prow[jj] = 0.0;
        }
    }
}

#if defined(__GNUC__) || defined(__clang__)
/// One packed-panel row: a kNR-wide vector.  Element-aligned (packed panels
/// come from generic scratch buffers) and may_alias (it is loaded straight
/// from double arrays).  The compiler lowers it to whatever the active clone
/// has — one zmm, two ymm, or four xmm.
typedef double PanelVec
    __attribute__((vector_size(kNR * sizeof(double)), aligned(alignof(double)), may_alias));
#endif

/// C tile (MR x nr) += alpha * A rows (MR x k, ld = lda) * packed panel.
/// Force-inlined so each multi-versioned caller compiles the tile with its
/// own ISA.  The accumulator block is MR named kNR-wide vectors — one
/// AVX-512 register per tile row — and the rank-1 update body is MR
/// broadcast-FMAs per packed panel row: MR independent dependence chains,
/// enough to hide FMA latency.  (Written with vector extensions rather than
/// a scalar array because the auto-vectorizer spills the scalar tile.)
template <std::size_t MR>
[[gnu::always_inline]] inline void micro_kernel(std::size_t k, double alpha, const double* a,
                                                std::size_t lda, const double* bp, double* c,
                                                std::size_t ldc, std::size_t nr) noexcept {
#if defined(__GNUC__) || defined(__clang__)
    PanelVec acc[MR] = {};
    for (std::size_t p = 0; p < k; ++p) {
        const PanelVec brow = *reinterpret_cast<const PanelVec*>(bp + p * kNR);
        for (std::size_t ii = 0; ii < MR; ++ii) acc[ii] += a[ii * lda + p] * brow;
    }
    for (std::size_t ii = 0; ii < MR; ++ii) {
        double* crow = c + ii * ldc;
        for (std::size_t jj = 0; jj < nr; ++jj) crow[jj] += alpha * acc[ii][jj];
    }
#else
    double acc[MR][kNR] = {};
    for (std::size_t p = 0; p < k; ++p) {
        const double* brow = bp + p * kNR;
        for (std::size_t ii = 0; ii < MR; ++ii) {
            const double aip = a[ii * lda + p];
            for (std::size_t jj = 0; jj < kNR; ++jj) acc[ii][jj] += aip * brow[jj];
        }
    }
    for (std::size_t ii = 0; ii < MR; ++ii) {
        double* crow = c + ii * ldc;
        for (std::size_t jj = 0; jj < nr; ++jj) crow[jj] += alpha * acc[ii][jj];
    }
#endif
}

/// Applies beta to rows [0, mb) of C, then accumulates alpha * A * B using
/// the packed panels of B.
REPRO_MULTIVERSION
void kernel_rows(double alpha, const double* a, std::size_t lda, const double* bp,
                 double beta, double* c, std::size_t ldc, std::size_t mb, std::size_t n,
                 std::size_t k) noexcept {
    for (std::size_t i = 0; i < mb; ++i) {
        double* crow = c + i * ldc;
        if (beta == 0.0) {
            std::fill(crow, crow + n, 0.0);
        } else if (beta != 1.0) {
            for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
        }
    }
    const std::size_t npanels = (n + kNR - 1) / kNR;
    std::size_t i = 0;
    for (; i + kMR <= mb; i += kMR) {
        for (std::size_t j = 0; j < npanels; ++j) {
            const std::size_t nr = std::min(kNR, n - j * kNR);
            micro_kernel<kMR>(k, alpha, a + i * lda, lda, bp + j * k * kNR,
                              c + i * ldc + j * kNR, ldc, nr);
        }
    }
    const std::size_t mr = mb - i;
    if (mr == 0) return;
    for (std::size_t j = 0; j < npanels; ++j) {
        const std::size_t nr = std::min(kNR, n - j * kNR);
        const double* arow = a + i * lda;
        double* crow = c + i * ldc + j * kNR;
        const double* panel = bp + j * k * kNR;
        switch (mr) {
            case 1: micro_kernel<1>(k, alpha, arow, lda, panel, crow, ldc, nr); break;
            case 2: micro_kernel<2>(k, alpha, arow, lda, panel, crow, ldc, nr); break;
            case 3: micro_kernel<3>(k, alpha, arow, lda, panel, crow, ldc, nr); break;
            case 4: micro_kernel<4>(k, alpha, arow, lda, panel, crow, ldc, nr); break;
            case 5: micro_kernel<5>(k, alpha, arow, lda, panel, crow, ldc, nr); break;
            case 6: micro_kernel<6>(k, alpha, arow, lda, panel, crow, ldc, nr); break;
            default: micro_kernel<7>(k, alpha, arow, lda, panel, crow, ldc, nr); break;
        }
    }
}

/// Packed-panel dgemm body shared by dgemm and the batched entry point:
/// assumes non-degenerate sizes and pre-packed B panels.
void dgemm_packed(double alpha, const double* a, std::size_t lda, const double* bp,
                  double beta, double* c, std::size_t ldc, std::size_t m, std::size_t n,
                  std::size_t k) noexcept {
    const std::size_t nblocks = (m + kRowBlock - 1) / kRowBlock;
    if (nblocks > 1 && parallel::num_threads() > 1 && 2 * m * n * k >= kParallelFlops) {
        // Split C rows across the pool; each row's accumulation order is
        // unchanged, so results are bitwise identical at any thread count.
        parallel::pool().parallel_for(nblocks, [&](std::size_t b0, std::size_t b1) {
            const std::size_t i0 = b0 * kRowBlock;
            const std::size_t i1 = std::min(m, b1 * kRowBlock);
            kernel_rows(alpha, a + i0 * lda, lda, bp, beta, c + i0 * ldc, ldc, i1 - i0, n,
                        k);
        });
        return;
    }
    kernel_rows(alpha, a, lda, bp, beta, c, ldc, m, n, k);
}

} // namespace

void dgemm(double alpha, const double* a, std::size_t lda, const double* b, std::size_t ldb,
           double beta, double* c, std::size_t ldc, std::size_t m, std::size_t n,
           std::size_t k) noexcept {
    detail::charge(2 * m * n * k + m * n, (m * k + k * n + m * n) * kDouble, m * n * kDouble);
    if (m == 0 || n == 0) return;
    if (k == 0 || n < kNR || 2 * m * n * k <= kSmallFlops) {
        dgemm_small(alpha, a, lda, b, ldb, beta, c, ldc, m, n, k);
        return;
    }
    const std::size_t npanels = (n + kNR - 1) / kNR;
    parallel::Scratch bp(npanels * kNR * k);
    pack_b_panels(b, ldb, k, n, bp.data());
    dgemm_packed(alpha, a, lda, bp.data(), beta, c, ldc, m, n, k);
}

void dgemm_cm(double alpha, const double* a, std::size_t lda, const double* b,
              std::size_t ldb, double beta, double* c, std::size_t ldc, std::size_t m,
              std::size_t n, std::size_t k) noexcept {
    // A column-major product is the row-major product of the transposed
    // views: C_cm(m x n) = A_cm(m x k) B_cm(k x n) is computed as
    // C'(n x m) = B'(n x k) A'(k x m) on the same buffers.
    dgemm(alpha, b, ldb, a, lda, beta, c, ldc, n, m, k);
}

void dgemm_batch_same_a(double alpha, const double* a, std::size_t lda, std::size_t m,
                        std::size_t k, std::span<const GemmBatchItem> items, std::size_t n,
                        std::size_t ldb, std::size_t ldc, double beta) noexcept {
    if (items.empty() || m == 0) return;
    // Charged exactly as the equivalent sequence of dgemm_cm calls, so the
    // op stream (and with it the virtual-clock pricing) does not depend on
    // whether a caller batches or loops.
    for (std::size_t i = 0; i < items.size(); ++i)
        detail::charge(2 * m * n * k + m * n, (m * k + k * n + m * n) * kDouble,
                       m * n * kDouble);
    if (n == 0) return;
    if (k == 0 || m < kNR) {
        // Degenerate or narrow-output batches take the same unblocked path the
        // per-item column-major call would (row-major views swap operands).
        for (const GemmBatchItem& it : items)
            dgemm_small(alpha, it.b, ldb, a, lda, beta, it.c, ldc, n, m, k);
        return;
    }
    // Row-major view of the shared operator: A_cm(m x k, lda) is A'(k x m)
    // row-major — the right operand of every item's row-major product
    // C'_i(n x m) = B'_i(n x k) A'(k x m).  Pack it once for all items.
    const std::size_t npanels = (m + kNR - 1) / kNR;
    parallel::Scratch ap(npanels * kNR * k);
    pack_b_panels(a, lda, k, m, ap.data());

    const auto run_item = [&](const GemmBatchItem& it) {
        kernel_rows(alpha, it.b, ldb, ap.data(), beta, it.c, ldc, n, m, k);
    };
    const std::size_t total_flops = 2 * m * n * k * items.size();
    if (items.size() > 1 && parallel::num_threads() > 1 && total_flops >= kParallelFlops) {
        parallel::pool().parallel_for(items.size(), [&](std::size_t i0, std::size_t i1) {
            for (std::size_t i = i0; i < i1; ++i) run_item(items[i]);
        });
    } else {
        for (const GemmBatchItem& it : items) run_item(it);
    }
}

void dgemm_batch_same_b(double alpha, std::span<const GemmBatchItem> items, std::size_t lda,
                        const double* b, std::size_t ldb, std::size_t ldc, std::size_t m,
                        std::size_t n, std::size_t k, double beta) noexcept {
    if (items.empty() || n == 0) return;
    // Same charging contract as dgemm_batch_same_a: the op stream matches the
    // equivalent loop of dgemm_cm calls.
    for (std::size_t i = 0; i < items.size(); ++i)
        detail::charge(2 * m * n * k + m * n, (m * k + k * n + m * n) * kDouble,
                       m * n * kDouble);
    if (m == 0) return;
    // Row-major transposed views: C'_i(n x m) = B'(n x k, ld = ldb) A'_i(k x m,
    // ld = lda).  The shared B' is the unpacked left factor of every product;
    // each item's A'_i packs into kNR-wide panels exactly as a standalone
    // dgemm call would.
    if (k == 0 || m < kNR) {
        for (const GemmBatchItem& it : items)
            dgemm_small(alpha, b, ldb, it.b, lda, beta, it.c, ldc, n, m, k);
        return;
    }
    const std::size_t npanels = (m + kNR - 1) / kNR;
    const auto run_item = [&](const GemmBatchItem& it) {
        parallel::Scratch ap(npanels * kNR * k);
        pack_b_panels(it.b, lda, k, m, ap.data());
        kernel_rows(alpha, b, ldb, ap.data(), beta, it.c, ldc, n, m, k);
    };
    const std::size_t total_flops = 2 * m * n * k * items.size();
    if (items.size() > 1 && parallel::num_threads() > 1 && total_flops >= kParallelFlops) {
        parallel::pool().parallel_for(items.size(), [&](std::size_t i0, std::size_t i1) {
            for (std::size_t i = i0; i < i1; ++i) run_item(items[i]);
        });
    } else {
        for (const GemmBatchItem& it : items) run_item(it);
    }
}

void dgemm_square(double alpha, const double* a, const double* b, double beta, double* c,
                  std::size_t n) noexcept {
    dgemm(alpha, a, n, b, n, beta, c, n, n, n, n);
}

double max_abs_diff(std::span<const double> x, std::span<const double> y) noexcept {
    assert(x.size() == y.size());
    double m = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) m = std::max(m, std::abs(x[i] - y[i]));
    return m;
}

} // namespace blaslite
