#include "blaslite/blas.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace blaslite {

namespace {
constexpr std::size_t kDouble = sizeof(double);
} // namespace

OpCounts& thread_counts() noexcept {
    thread_local OpCounts counts;
    return counts;
}

void reset_thread_counts() noexcept { thread_counts() = OpCounts{}; }

void dcopy(std::span<const double> x, std::span<double> y) noexcept {
    assert(x.size() == y.size());
    std::copy(x.begin(), x.end(), y.begin());
    detail::charge(0, x.size() * kDouble, x.size() * kDouble);
}

void daxpy(double alpha, std::span<const double> x, std::span<double> y) noexcept {
    assert(x.size() == y.size());
    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
    detail::charge(2 * n, 2 * n * kDouble, n * kDouble);
}

double ddot(std::span<const double> x, std::span<const double> y) noexcept {
    assert(x.size() == y.size());
    const std::size_t n = x.size();
    // Four partial sums break the additive dependence chain so the loop is
    // limited by load bandwidth rather than FP-add latency.
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        s0 += x[i] * y[i];
        s1 += x[i + 1] * y[i + 1];
        s2 += x[i + 2] * y[i + 2];
        s3 += x[i + 3] * y[i + 3];
    }
    for (; i < n; ++i) s0 += x[i] * y[i];
    detail::charge(2 * n, 2 * n * kDouble, 0);
    return (s0 + s1) + (s2 + s3);
}

void dscal(double alpha, std::span<double> x) noexcept {
    for (double& v : x) v *= alpha;
    detail::charge(x.size(), x.size() * kDouble, x.size() * kDouble);
}

void dvmul(std::span<const double> x, std::span<const double> y, std::span<double> z) noexcept {
    assert(x.size() == y.size() && x.size() == z.size());
    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i) z[i] = x[i] * y[i];
    detail::charge(n, 2 * n * kDouble, n * kDouble);
}

void dvvtvp(std::span<const double> x, std::span<const double> y, std::span<double> z) noexcept {
    assert(x.size() == y.size() && x.size() == z.size());
    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i) z[i] += x[i] * y[i];
    detail::charge(2 * n, 3 * n * kDouble, n * kDouble);
}

void dgemv(double alpha, const double* a, std::size_t lda, std::size_t m, std::size_t n,
           const double* x, double beta, double* y) noexcept {
    for (std::size_t i = 0; i < m; ++i) {
        const double* row = a + i * lda;
        double s0 = 0.0, s1 = 0.0;
        std::size_t j = 0;
        for (; j + 2 <= n; j += 2) {
            s0 += row[j] * x[j];
            s1 += row[j + 1] * x[j + 1];
        }
        if (j < n) s0 += row[j] * x[j];
        y[i] = alpha * (s0 + s1) + beta * y[i];
    }
    detail::charge(2 * m * n + 3 * m, (m * n + n + m) * kDouble, m * kDouble);
}

void dgemv_t(double alpha, const double* a, std::size_t lda, std::size_t m, std::size_t n,
             const double* x, double beta, double* y) noexcept {
    if (beta == 0.0) {
        std::fill(y, y + n, 0.0);
    } else if (beta != 1.0) {
        for (std::size_t j = 0; j < n; ++j) y[j] *= beta;
    }
    for (std::size_t i = 0; i < m; ++i) {
        const double* row = a + i * lda;
        const double xi = alpha * x[i];
        for (std::size_t j = 0; j < n; ++j) y[j] += xi * row[j];
    }
    detail::charge(2 * m * n + m, (m * n + m + n) * kDouble, n * kDouble);
}

namespace {

/// Unblocked triple loop in ikj order: streams B and C rows, keeps a[i][p] in
/// a register.  Optimal for the tiny matrices (n <= 20) that dominate
/// spectral/hp elemental operations (paper, Figure 6).
void dgemm_small(double alpha, const double* a, std::size_t lda, const double* b,
                 std::size_t ldb, double beta, double* c, std::size_t ldc, std::size_t m,
                 std::size_t n, std::size_t k) noexcept {
    for (std::size_t i = 0; i < m; ++i) {
        double* crow = c + i * ldc;
        if (beta == 0.0) {
            std::fill(crow, crow + n, 0.0);
        } else if (beta != 1.0) {
            for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
        }
        const double* arow = a + i * lda;
        for (std::size_t p = 0; p < k; ++p) {
            const double aip = alpha * arow[p];
            const double* brow = b + p * ldb;
            for (std::size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
        }
    }
}

constexpr std::size_t kBlockM = 64;
constexpr std::size_t kBlockN = 64;
constexpr std::size_t kBlockK = 64;

} // namespace

void dgemm(double alpha, const double* a, std::size_t lda, const double* b, std::size_t ldb,
           double beta, double* c, std::size_t ldc, std::size_t m, std::size_t n,
           std::size_t k) noexcept {
    detail::charge(2 * m * n * k + m * n, (m * k + k * n + m * n) * kDouble, m * n * kDouble);
    if (m <= kBlockM && n <= kBlockN && k <= kBlockK) {
        dgemm_small(alpha, a, lda, b, ldb, beta, c, ldc, m, n, k);
        return;
    }
    // Blocked path: apply beta once up front, then accumulate block products.
    for (std::size_t i = 0; i < m; ++i) {
        double* crow = c + i * ldc;
        if (beta == 0.0) {
            std::fill(crow, crow + n, 0.0);
        } else if (beta != 1.0) {
            for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
        }
    }
    for (std::size_t ii = 0; ii < m; ii += kBlockM) {
        const std::size_t mb = std::min(kBlockM, m - ii);
        for (std::size_t pp = 0; pp < k; pp += kBlockK) {
            const std::size_t kb = std::min(kBlockK, k - pp);
            for (std::size_t jj = 0; jj < n; jj += kBlockN) {
                const std::size_t nb = std::min(kBlockN, n - jj);
                dgemm_small(alpha, a + ii * lda + pp, lda, b + pp * ldb + jj, ldb, 1.0,
                            c + ii * ldc + jj, ldc, mb, nb, kb);
            }
        }
    }
}

void dgemm_square(double alpha, const double* a, const double* b, double beta, double* c,
                  std::size_t n) noexcept {
    dgemm(alpha, a, n, b, n, beta, c, n, n, n, n);
}

double max_abs_diff(std::span<const double> x, std::span<const double> y) noexcept {
    assert(x.size() == y.size());
    double m = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) m = std::max(m, std::abs(x[i] - y[i]));
    return m;
}

} // namespace blaslite
