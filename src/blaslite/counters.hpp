#pragma once

#include <cstdint>

/// \file counters.hpp
/// Thread-local operation counters for the BLAS-lite kernels.
///
/// The application-level benchmarks in this reproduction do not time the
/// paper's machines directly (they no longer exist); instead the solvers run
/// for real on this host while every kernel records the floating-point
/// operations and bytes it moved.  The per-machine performance models in
/// src/machine then convert those counts into predicted seconds.
namespace blaslite {

/// Aggregate operation counts recorded by the kernels on this thread.
struct OpCounts {
    std::uint64_t flops = 0;       ///< floating point operations executed
    std::uint64_t bytes_read = 0;  ///< bytes loaded from operands
    std::uint64_t bytes_written = 0; ///< bytes stored to results
    std::uint64_t calls = 0;       ///< kernel invocations

    OpCounts& operator+=(const OpCounts& o) noexcept {
        flops += o.flops;
        bytes_read += o.bytes_read;
        bytes_written += o.bytes_written;
        calls += o.calls;
        return *this;
    }
    friend OpCounts operator+(OpCounts a, const OpCounts& b) noexcept { return a += b; }
    friend OpCounts operator-(OpCounts a, const OpCounts& b) noexcept {
        a.flops -= b.flops;
        a.bytes_read -= b.bytes_read;
        a.bytes_written -= b.bytes_written;
        a.calls -= b.calls;
        return a;
    }
    /// Total bytes touched in either direction.
    [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_read + bytes_written; }
};

/// Counters for the calling thread.  Kernels accumulate here unconditionally;
/// the cost of four thread-local additions per call is negligible next to the
/// kernels themselves.  Header-only so that code which merely aggregates
/// counters (the parallel thread pool) needs no link dependency on blaslite.
inline OpCounts& thread_counts() noexcept {
    thread_local OpCounts counts;
    return counts;
}

/// Reset this thread's counters to zero.
inline void reset_thread_counts() noexcept { thread_counts() = OpCounts{}; }

/// RAII scope that measures the counts accumulated while it is alive.
class CountScope {
public:
    CountScope() noexcept : start_(thread_counts()) {}
    CountScope(const CountScope&) = delete;
    CountScope& operator=(const CountScope&) = delete;

    /// Counts accumulated since construction.
    [[nodiscard]] OpCounts delta() const noexcept { return thread_counts() - start_; }

private:
    OpCounts start_;
};

namespace detail {
inline void charge(std::uint64_t flops, std::uint64_t rd, std::uint64_t wr) noexcept {
    OpCounts& c = thread_counts();
    c.flops += flops;
    c.bytes_read += rd;
    c.bytes_written += wr;
    ++c.calls;
}
} // namespace detail

} // namespace blaslite
