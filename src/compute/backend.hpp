#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

/// \file backend.hpp
/// The pluggable compute backend behind nektar::Discretization.
///
/// A Backend evaluates the whole-field elemental transforms (modal->quad,
/// weak inner product, L2 projection, modal gradient, and the fused
/// nonlinear convective term) over the discretization's element groups.
/// Two implementations exist:
///
///  - DenseBackend: the reference engine — the batched dense-dgemm path
///    (one basis matrix times a panel of element columns), O(P^4) work per
///    quad element.
///  - SumFactorBackend: sum-factorised tensor contractions on quad groups —
///    the 2-D operator B (x) B applied as two staged 1-D contractions
///    (dgemm over the 1-D basis), O(P^3) per element, the core Nek5000-class
///    trick.  Groups without a tensor factorisation (triangles) fall back to
///    the dense per-group path, so mixed meshes work on either backend.
///
/// Selection is threaded through SolverOptions::backend; BackendKind::Auto
/// defers to the discretization's default, which reads $REPRO_BACKEND
/// ("dense" / "sumfact") so CI can sweep the whole test suite across
/// backends without code changes.  The resolved backend name is folded into
/// every solver's options fingerprint: checkpoints refuse cross-backend
/// restores.
namespace nektar {
class Discretization;
}

namespace compute {

enum class BackendKind : std::uint8_t {
    Auto = 0,      ///< defer to the discretization default ($REPRO_BACKEND)
    Dense = 1,     ///< batched dense elemental operators (reference)
    SumFactor = 2, ///< staged 1-D tensor contractions on quad groups
};

/// Stable lowercase name ("auto" / "dense" / "sumfact") for fingerprints,
/// reports and the environment toggle.
[[nodiscard]] const char* to_string(BackendKind k) noexcept;

/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] BackendKind parse_backend(std::string_view name);

/// The process-wide default for BackendKind::Auto: $REPRO_BACKEND when set
/// (and valid — unknown values throw at first use), Dense otherwise.
[[nodiscard]] BackendKind default_backend();

/// Resolves Auto to `fallback`; concrete kinds pass through.
[[nodiscard]] constexpr BackendKind resolve(BackendKind k, BackendKind fallback) noexcept {
    return k == BackendKind::Auto ? fallback : k;
}

/// One compute engine bound to a Discretization.  All field arguments use
/// the discretization's flat layouts; the `_planes` variants treat `nplanes`
/// whole fields stored back to back (the fused-Fourier batch dimension).
class Backend {
public:
    virtual ~Backend();
    Backend(const Backend&) = delete;
    Backend& operator=(const Backend&) = delete;

    [[nodiscard]] virtual BackendKind kind() const noexcept = 0;
    [[nodiscard]] const char* name() const noexcept { return to_string(kind()); }

    virtual void to_quad_planes(std::span<const double> modal, std::span<double> quad,
                                std::size_t nplanes) const = 0;
    /// rhs += weak inner product (f, phi_i), batched over every element.
    virtual void weak_inner_planes(std::span<const double> quad, std::span<double> rhs,
                                   std::size_t nplanes) const = 0;
    /// L2 projection: weak inner product + elemental mass solves.  The mass
    /// matrix of a general straight-sided element does not factorise, so the
    /// Cholesky solve stage is shared by all backends (mass_solve_planes).
    virtual void project_planes(std::span<const double> quad, std::span<double> modal,
                                std::size_t nplanes) const;
    virtual void grad_from_modal_planes(std::span<const double> modal, std::span<double> dudx,
                                        std::span<double> dudy, std::size_t nplanes) const = 0;

    /// Fused nonlinear convective term at the quadrature points:
    ///   nu = -(au * du/dx + av * du/dy),  nv = -(au * dv/dx + av * dv/dy),
    /// with (au, av) the advecting velocity (= (u, v) for the serial solver;
    /// the ALE solver passes av = v - w_mesh).  Derivatives are collocation
    /// derivatives batched per element group (quad elements only — the 1-D
    /// GLL differentiation matrix is applied along each tensor direction),
    /// and the chain rule, products and sign fold into one scatter pass.
    /// The contraction order is backend-independent, so both backends give
    /// bit-identical results here.
    virtual void convect_planes(std::span<const double> au, std::span<const double> av,
                                std::span<const double> u, std::span<const double> v,
                                std::span<double> nu, std::span<double> nv,
                                std::size_t nplanes) const;

protected:
    explicit Backend(const nektar::Discretization& disc) : disc_(&disc) {}

    /// Per-element mass-matrix Cholesky solves over every plane (runs of
    /// congruent elements share one factor and solve as one multi-RHS sweep).
    void mass_solve_planes(std::span<double> modal, std::size_t nplanes) const;

    const nektar::Discretization* disc_;
};

/// Builds a backend of concrete kind `kind` (Auto resolves to
/// default_backend()) bound to `disc`.
[[nodiscard]] std::unique_ptr<Backend> make_backend(BackendKind kind,
                                                    const nektar::Discretization& disc);

} // namespace compute
