#include <vector>

#include "blaslite/blas.hpp"
#include "compute/backend_impl.hpp"
#include "nektar/discretization.hpp"
#include "parallel/scratch.hpp"
#include "spectral/expansion.hpp"

/// \file sumfact_backend.cpp
/// Sum-factorised evaluation of the tensor-product elemental operators.
///
/// A quad mode is phi_p(xi1) * phi_q(xi2), so with the boundary-first
/// coefficients permuted into a lexicographic nm1d x nm1d tensor U the 2-D
/// transforms factor into staged 1-D contractions:
///
///     to_quad     Q  = B1 U B1^T
///     weak_inner  R  = B1^T diag(wj) F B1     (accumulated through the perm)
///     grad        E1 = D1 U B1^T,  E2 = B1 U D1^T,  then the chain rule
///
/// Stage one runs as a single dgemm over every element's columns side by
/// side; stage two is a dgemm_batch_same_b whose per-item outputs land
/// straight in the per-element field blocks, so no unpack pass is needed
/// even for non-contiguous groups.  Cost per element drops from the dense
/// engine's 2*nq*nm (O(P^4)) to 2*n1*m1*(m1+n1) + 2*n1^2*m1 (O(P^3)).
namespace compute {

SumFactorBackend::SumFactorBackend(const nektar::Discretization& disc) : DenseBackend(disc) {
    const auto& groups = disc.groups();
    plans_.resize(groups.size());
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        const spectral::TensorBasis* tb = groups[gi].exp->tensor_basis();
        if (tb == nullptr) continue; // dense fallback (triangles)
        Plan& pl = plans_[gi];
        pl.nq1d = tb->nq1d;
        pl.nm1d = tb->nm1d;
        pl.b1_cm = tb->b1.transposed();
        pl.d1_cm = tb->d1.transposed();
        pl.b1_rm = tb->b1;
        pl.d1_rm = tb->d1;
        pl.perm.resize(tb->pq.size());
        for (std::size_t m = 0; m < tb->pq.size(); ++m)
            pl.perm[m] = tb->pq[m][1] * pl.nm1d + tb->pq[m][0];
    }
}

std::size_t SumFactorBackend::num_factorised_groups() const noexcept {
    std::size_t n = 0;
    for (const Plan& pl : plans_)
        if (pl.nq1d != 0) ++n;
    return n;
}

void SumFactorBackend::to_quad_planes(std::span<const double> modal, std::span<double> quad,
                                      std::size_t nplanes) const {
    const auto& groups = disc_->groups();
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        if (plans_[gi].nq1d != 0)
            group_to_quad_sf(groups[gi], plans_[gi], modal, quad, nplanes);
        else
            group_to_quad(groups[gi], modal, quad, nplanes);
    }
}

void SumFactorBackend::weak_inner_planes(std::span<const double> quad, std::span<double> rhs,
                                         std::size_t nplanes) const {
    const auto& groups = disc_->groups();
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        if (plans_[gi].nq1d != 0)
            group_weak_inner_sf(groups[gi], plans_[gi], quad, rhs, nplanes);
        else
            group_weak_inner(groups[gi], quad, rhs, nplanes);
    }
}

void SumFactorBackend::grad_from_modal_planes(std::span<const double> modal,
                                              std::span<double> dudx, std::span<double> dudy,
                                              std::size_t nplanes) const {
    const auto& groups = disc_->groups();
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        if (plans_[gi].nq1d != 0)
            group_grad_sf(groups[gi], plans_[gi], modal, dudx, dudy, nplanes);
        else
            group_grad_from_modal(groups[gi], modal, dudx, dudy, nplanes);
    }
}

namespace {

/// Gathers per-element modal blocks into lexicographic coefficient tensors
/// (column-major nm1d x nm1d, one tensor per element and plane).
void gather_tensors(std::span<const double> modal, const nektar::Discretization& d,
                    const nektar::ElemGroup& g, const std::vector<std::size_t>& perm,
                    std::size_t nplanes, double* up) {
    const std::size_t nm = perm.size();
    const std::size_t cnt = g.elems.size();
    for (std::size_t p = 0; p < nplanes; ++p) {
        for (std::size_t j = 0; j < cnt; ++j) {
            const double* src =
                modal.data() + p * d.modal_size() + d.modal_offsets()[g.elems[j]];
            double* dst = up + (p * cnt + j) * nm;
            for (std::size_t m = 0; m < nm; ++m) dst[perm[m]] = src[m];
        }
    }
}

} // namespace

void SumFactorBackend::group_to_quad_sf(const nektar::ElemGroup& g, const Plan& pl,
                                        std::span<const double> modal, std::span<double> quad,
                                        std::size_t nplanes) const {
    const nektar::Discretization& d = *disc_;
    const std::size_t n1 = pl.nq1d, m1 = pl.nm1d;
    const std::size_t nm = m1 * m1;
    const std::size_t cnt = g.elems.size();
    const std::size_t nitems = cnt * nplanes;
    parallel::Scratch up(nm * nitems), tp(n1 * m1 * nitems);
    gather_tensors(modal, d, g, pl.perm, nplanes, up.data());
    // Stage one: T = B1 * U over every tensor's columns at once.
    blaslite::dgemm_cm(1.0, pl.b1_cm.data(), n1, up.data(), m1, 0.0, tp.data(), n1, n1,
                       m1 * nitems, m1);
    // Stage two: Q_e = T_e * B1^T, landing in the per-element quad blocks.
    std::vector<blaslite::GemmBatchItem> items(nitems);
    for (std::size_t p = 0; p < nplanes; ++p)
        for (std::size_t j = 0; j < cnt; ++j)
            items[p * cnt + j] = {tp.data() + (p * cnt + j) * n1 * m1,
                                  quad.data() + p * d.quad_size() +
                                      d.quad_offsets()[g.elems[j]]};
    blaslite::dgemm_batch_same_b(1.0, items, n1, pl.b1_rm.data(), m1, n1, n1, n1, m1, 0.0);
}

void SumFactorBackend::group_weak_inner_sf(const nektar::ElemGroup& g, const Plan& pl,
                                           std::span<const double> quad, std::span<double> rhs,
                                           std::size_t nplanes) const {
    const nektar::Discretization& d = *disc_;
    const std::size_t n1 = pl.nq1d, m1 = pl.nm1d;
    const std::size_t nm = m1 * m1, nq = n1 * n1;
    const std::size_t cnt = g.elems.size();
    const std::size_t nitems = cnt * nplanes;
    parallel::Scratch wp(nq * nitems), tp(m1 * n1 * nitems), rp(nm * nitems);
    // Quadrature weights fold into the input panel while packing.
    for (std::size_t p = 0; p < nplanes; ++p) {
        for (std::size_t j = 0; j < cnt; ++j) {
            const std::size_t e = g.elems[j];
            const double* src = quad.data() + p * d.quad_size() + d.quad_offsets()[e];
            const std::vector<double>& wj = d.ops(e).geometry().wj;
            double* dst = wp.data() + (p * cnt + j) * nq;
            for (std::size_t q = 0; q < nq; ++q) dst[q] = wj[q] * src[q];
        }
    }
    // Stage one: T = B1^T * W over every element's columns at once.
    blaslite::dgemm_cm(1.0, pl.b1_rm.data(), m1, wp.data(), n1, 0.0, tp.data(), m1, m1,
                       n1 * nitems, n1);
    // Stage two: R_e = T_e * B1 into per-element result tensors.
    std::vector<blaslite::GemmBatchItem> items(nitems);
    for (std::size_t i = 0; i < nitems; ++i)
        items[i] = {tp.data() + i * m1 * n1, rp.data() + i * nm};
    blaslite::dgemm_batch_same_b(1.0, items, m1, pl.b1_cm.data(), n1, m1, m1, m1, n1, 0.0);
    // Accumulate back through the boundary-first permutation.
    for (std::size_t p = 0; p < nplanes; ++p) {
        for (std::size_t j = 0; j < cnt; ++j) {
            double* dst = rhs.data() + p * d.modal_size() + d.modal_offsets()[g.elems[j]];
            const double* src = rp.data() + (p * cnt + j) * nm;
            for (std::size_t m = 0; m < nm; ++m) dst[m] += src[pl.perm[m]];
        }
    }
}

void SumFactorBackend::group_grad_sf(const nektar::ElemGroup& g, const Plan& pl,
                                     std::span<const double> modal, std::span<double> dudx,
                                     std::span<double> dudy, std::size_t nplanes) const {
    const nektar::Discretization& d = *disc_;
    const std::size_t n1 = pl.nq1d, m1 = pl.nm1d;
    const std::size_t nm = m1 * m1, nq = n1 * n1;
    const std::size_t cnt = g.elems.size();
    const std::size_t nitems = cnt * nplanes;
    parallel::Scratch up(nm * nitems), t1(n1 * m1 * nitems), t2(n1 * m1 * nitems);
    gather_tensors(modal, d, g, pl.perm, nplanes, up.data());
    // Stage one, sharing the gathered tensors: T1 = D1 * U, T2 = B1 * U.
    blaslite::dgemm_cm(1.0, pl.d1_cm.data(), n1, up.data(), m1, 0.0, t1.data(), n1, n1,
                       m1 * nitems, m1);
    blaslite::dgemm_cm(1.0, pl.b1_cm.data(), n1, up.data(), m1, 0.0, t2.data(), n1, n1,
                       m1 * nitems, m1);
    // Stage two: E1 = T1 * B1^T and E2 = T2 * D1^T, written straight into the
    // output blocks, then combined in place by the chain rule.
    std::vector<blaslite::GemmBatchItem> items(nitems);
    const auto stage_two = [&](parallel::Scratch& t, const la::DenseMatrix& op_rm,
                               std::span<double> out) {
        for (std::size_t p = 0; p < nplanes; ++p)
            for (std::size_t j = 0; j < cnt; ++j)
                items[p * cnt + j] = {t.data() + (p * cnt + j) * n1 * m1,
                                      out.data() + p * d.quad_size() +
                                          d.quad_offsets()[g.elems[j]]};
        blaslite::dgemm_batch_same_b(1.0, items, n1, op_rm.data(), m1, n1, n1, n1, m1, 0.0);
    };
    stage_two(t1, pl.b1_rm, dudx);
    stage_two(t2, pl.d1_rm, dudy);
    for (std::size_t p = 0; p < nplanes; ++p) {
        for (std::size_t j = 0; j < cnt; ++j) {
            const std::size_t e = g.elems[j];
            const nektar::ElemGeometry& geo = d.ops(e).geometry();
            double* dx = dudx.data() + p * d.quad_size() + d.quad_offsets()[e];
            double* dy = dudy.data() + p * d.quad_size() + d.quad_offsets()[e];
            for (std::size_t q = 0; q < nq; ++q) {
                const double e1 = dx[q], e2 = dy[q];
                dx[q] = geo.rx[q] * e1 + geo.sx[q] * e2;
                dy[q] = geo.ry[q] * e1 + geo.sy[q] * e2;
            }
        }
    }
}

} // namespace compute
