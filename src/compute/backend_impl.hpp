#pragma once

#include <vector>

#include "compute/backend.hpp"
#include "la/dense.hpp"

/// \file backend_impl.hpp
/// The two concrete compute backends.  Most callers only need the Backend
/// interface (backend.hpp) through nektar::Discretization; this header
/// exists for make_backend() and for tests that pin implementation
/// properties (operation counts, plan coverage).
namespace nektar {
struct ElemGroup;
}

namespace compute {

/// The reference engine: batched dense elemental operators.  A flat field
/// restricted to a group of same-size element blocks is a column-major
/// panel, and the whole-group transform is one dgemm against the shared
/// basis matrix (O(P^4) work per quad element at order P).
class DenseBackend : public Backend {
public:
    explicit DenseBackend(const nektar::Discretization& disc);

    [[nodiscard]] BackendKind kind() const noexcept override { return BackendKind::Dense; }

    void to_quad_planes(std::span<const double> modal, std::span<double> quad,
                        std::size_t nplanes) const override;
    void weak_inner_planes(std::span<const double> quad, std::span<double> rhs,
                           std::size_t nplanes) const override;
    void grad_from_modal_planes(std::span<const double> modal, std::span<double> dudx,
                                std::span<double> dudy, std::size_t nplanes) const override;

protected:
    // Per-group stages, reused by SumFactorBackend for groups without a
    // tensor factorisation (triangles).
    void group_to_quad(const nektar::ElemGroup& g, std::span<const double> modal,
                       std::span<double> quad, std::size_t nplanes) const;
    void group_weak_inner(const nektar::ElemGroup& g, std::span<const double> quad,
                          std::span<double> rhs, std::size_t nplanes) const;
    void group_grad_from_modal(const nektar::ElemGroup& g, std::span<const double> modal,
                               std::span<double> dudx, std::span<double> dudy,
                               std::size_t nplanes) const;
};

/// Sum-factorised engine: on tensor-product (quad) groups the 2-D operator
/// B2 (x) B1 is applied as two staged 1-D contractions,
///
///     T_e = B1 * U_e           (one dgemm over all elements' columns)
///     Q_e = T_e * B2^T         (dgemm_batch_same_b, shared right operand)
///
/// after permuting each element's boundary-first coefficients into a
/// lexicographic nm1d x nm1d tensor — O(P^3) work per element instead of the
/// dense path's O(P^4).  Groups without a TensorBasis fall back to the dense
/// per-group path (mixed meshes stay correct on either backend).
class SumFactorBackend final : public DenseBackend {
public:
    explicit SumFactorBackend(const nektar::Discretization& disc);

    [[nodiscard]] BackendKind kind() const noexcept override { return BackendKind::SumFactor; }

    void to_quad_planes(std::span<const double> modal, std::span<double> quad,
                        std::size_t nplanes) const override;
    void weak_inner_planes(std::span<const double> quad, std::span<double> rhs,
                           std::size_t nplanes) const override;
    void grad_from_modal_planes(std::span<const double> modal, std::span<double> dudx,
                                std::span<double> dudy, std::size_t nplanes) const override;

    /// Number of element groups running the sum-factorised path (the rest
    /// fall back to dense); exposed for tests.
    [[nodiscard]] std::size_t num_factorised_groups() const noexcept;

private:
    /// Per-group contraction plan (nq1d == 0 marks a dense-fallback group).
    struct Plan {
        std::size_t nq1d = 0, nm1d = 0;
        /// Column-major 1-D operators: value/derivative tables as
        /// nq1d-by-nm1d column-major buffers (DenseMatrix::transposed() of
        /// the row-major TensorBasis tables).
        la::DenseMatrix b1_cm, d1_cm;
        /// Row-major copies (= the transposed operators viewed column-major:
        /// B1^T as an nm1d-by-nq1d column-major buffer).
        la::DenseMatrix b1_rm, d1_rm;
        /// perm[m] = q*nm1d + p: boundary-first mode m -> lexicographic
        /// column-major index of the coefficient tensor.
        std::vector<std::size_t> perm;
    };
    std::vector<Plan> plans_; ///< parallel to disc_->groups()

    void group_to_quad_sf(const nektar::ElemGroup& g, const Plan& pl,
                          std::span<const double> modal, std::span<double> quad,
                          std::size_t nplanes) const;
    void group_weak_inner_sf(const nektar::ElemGroup& g, const Plan& pl,
                             std::span<const double> quad, std::span<double> rhs,
                             std::size_t nplanes) const;
    void group_grad_sf(const nektar::ElemGroup& g, const Plan& pl,
                       std::span<const double> modal, std::span<double> dudx,
                       std::span<double> dudy, std::size_t nplanes) const;
};

} // namespace compute
