#include <algorithm>
#include <vector>

#include "blaslite/blas.hpp"
#include "compute/backend_impl.hpp"
#include "nektar/discretization.hpp"
#include "parallel/scratch.hpp"

namespace compute {

namespace {

/// Gathers per-element modal blocks of one plane into a packed column-major
/// panel (one element per column).
void pack_cols(std::span<const double> field, const std::vector<std::size_t>& off,
               const std::vector<std::size_t>& elems, std::size_t plane_off,
               std::size_t width, double* dst) {
    for (std::size_t j = 0; j < elems.size(); ++j) {
        const double* src = field.data() + plane_off + off[elems[j]];
        std::copy(src, src + width, dst + j * width);
    }
}

/// Scatters a packed column-major panel back into per-element blocks.
void unpack_cols(const double* src, const std::vector<std::size_t>& off,
                 const std::vector<std::size_t>& elems, std::size_t plane_off,
                 std::size_t width, std::span<double> field) {
    for (std::size_t j = 0; j < elems.size(); ++j) {
        double* dst = field.data() + plane_off + off[elems[j]];
        std::copy(src + j * width, src + (j + 1) * width, dst);
    }
}

} // namespace

DenseBackend::DenseBackend(const nektar::Discretization& disc) : Backend(disc) {}

void DenseBackend::to_quad_planes(std::span<const double> modal, std::span<double> quad,
                                  std::size_t nplanes) const {
    for (const nektar::ElemGroup& g : disc_->groups())
        group_to_quad(g, modal, quad, nplanes);
}

void DenseBackend::group_to_quad(const nektar::ElemGroup& g, std::span<const double> modal,
                                 std::span<double> quad, std::size_t nplanes) const {
    const nektar::Discretization& d = *disc_;
    const std::size_t nm = g.exp->num_modes();
    const std::size_t nq = g.exp->num_quad();
    const std::size_t cnt = g.elems.size();
    if (d.single_group()) {
        // Whole mesh, planes back to back: one dgemm over every column.
        blaslite::dgemm_cm(1.0, g.basis_cm.data(), nq, modal.data(), nm, 0.0, quad.data(),
                           nq, nq, cnt * nplanes, nm);
    } else if (g.contiguous) {
        std::vector<blaslite::GemmBatchItem> items(nplanes);
        for (std::size_t p = 0; p < nplanes; ++p)
            items[p] = {modal.data() + p * d.modal_size() + g.modal_begin,
                        quad.data() + p * d.quad_size() + g.quad_begin};
        blaslite::dgemm_batch_same_a(1.0, g.basis_cm.data(), nq, nq, nm, items, cnt, nm, nq,
                                     0.0);
    } else {
        parallel::Scratch mp(nm * cnt * nplanes), qp(nq * cnt * nplanes);
        for (std::size_t p = 0; p < nplanes; ++p)
            pack_cols(modal, d.modal_offsets(), g.elems, p * d.modal_size(), nm,
                      mp.data() + p * nm * cnt);
        blaslite::dgemm_cm(1.0, g.basis_cm.data(), nq, mp.data(), nm, 0.0, qp.data(), nq, nq,
                           cnt * nplanes, nm);
        for (std::size_t p = 0; p < nplanes; ++p)
            unpack_cols(qp.data() + p * nq * cnt, d.quad_offsets(), g.elems,
                        p * d.quad_size(), nq, quad);
    }
}

void DenseBackend::weak_inner_planes(std::span<const double> quad, std::span<double> rhs,
                                     std::size_t nplanes) const {
    for (const nektar::ElemGroup& g : disc_->groups())
        group_weak_inner(g, quad, rhs, nplanes);
}

void DenseBackend::group_weak_inner(const nektar::ElemGroup& g, std::span<const double> quad,
                                    std::span<double> rhs, std::size_t nplanes) const {
    const nektar::Discretization& d = *disc_;
    const std::size_t nm = g.exp->num_modes();
    const std::size_t nq = g.exp->num_quad();
    const std::size_t cnt = g.elems.size();
    // The column-major transpose of the shared basis is its row-major
    // buffer itself: B^T (nm x nq column-major, lda = nm).
    const double* bt_cm = g.exp->basis().data();
    // Quadrature weights fold into the input panel while packing.
    parallel::Scratch wq(nq * cnt * nplanes);
    for (std::size_t p = 0; p < nplanes; ++p) {
        for (std::size_t j = 0; j < cnt; ++j) {
            const std::size_t e = g.elems[j];
            const double* src = quad.data() + p * d.quad_size() + d.quad_offsets()[e];
            const std::vector<double>& wj = d.ops(e).geometry().wj;
            double* dst = wq.data() + (p * cnt + j) * nq;
            for (std::size_t q = 0; q < nq; ++q) dst[q] = wj[q] * src[q];
        }
    }
    if (d.single_group()) {
        blaslite::dgemm_cm(1.0, bt_cm, nm, wq.data(), nq, 1.0, rhs.data(), nm, nm,
                           cnt * nplanes, nq);
    } else if (g.contiguous) {
        std::vector<blaslite::GemmBatchItem> items(nplanes);
        for (std::size_t p = 0; p < nplanes; ++p)
            items[p] = {wq.data() + p * nq * cnt,
                        rhs.data() + p * d.modal_size() + g.modal_begin};
        blaslite::dgemm_batch_same_a(1.0, bt_cm, nm, nm, nq, items, cnt, nq, nm, 1.0);
    } else {
        parallel::Scratch rp(nm * cnt * nplanes);
        blaslite::dgemm_cm(1.0, bt_cm, nm, wq.data(), nq, 0.0, rp.data(), nm, nm,
                           cnt * nplanes, nq);
        for (std::size_t p = 0; p < nplanes; ++p) {
            for (std::size_t j = 0; j < cnt; ++j) {
                double* dst =
                    rhs.data() + p * d.modal_size() + d.modal_offsets()[g.elems[j]];
                const double* src = rp.data() + (p * cnt + j) * nm;
                for (std::size_t i = 0; i < nm; ++i) dst[i] += src[i];
            }
        }
    }
}

void DenseBackend::grad_from_modal_planes(std::span<const double> modal,
                                          std::span<double> dudx, std::span<double> dudy,
                                          std::size_t nplanes) const {
    for (const nektar::ElemGroup& g : disc_->groups())
        group_grad_from_modal(g, modal, dudx, dudy, nplanes);
}

void DenseBackend::group_grad_from_modal(const nektar::ElemGroup& g,
                                         std::span<const double> modal,
                                         std::span<double> dudx, std::span<double> dudy,
                                         std::size_t nplanes) const {
    const nektar::Discretization& d = *disc_;
    const std::size_t nm = g.exp->num_modes();
    const std::size_t nq = g.exp->num_quad();
    const std::size_t cnt = g.elems.size();
    parallel::Scratch d1(nq * cnt * nplanes), d2(nq * cnt * nplanes);
    const auto apply = [&](const la::DenseMatrix& op_cm, double* out) {
        if (g.contiguous) {
            std::vector<blaslite::GemmBatchItem> items(nplanes);
            for (std::size_t p = 0; p < nplanes; ++p)
                items[p] = {modal.data() + p * d.modal_size() + g.modal_begin,
                            out + p * nq * cnt};
            blaslite::dgemm_batch_same_a(1.0, op_cm.data(), nq, nq, nm, items, cnt, nm, nq,
                                         0.0);
        } else {
            parallel::Scratch mp(nm * cnt * nplanes);
            for (std::size_t p = 0; p < nplanes; ++p)
                pack_cols(modal, d.modal_offsets(), g.elems, p * d.modal_size(), nm,
                          mp.data() + p * nm * cnt);
            blaslite::dgemm_cm(1.0, op_cm.data(), nq, mp.data(), nm, 0.0, out, nq, nq,
                               cnt * nplanes, nm);
        }
    };
    apply(g.d1_cm, d1.data());
    apply(g.d2_cm, d2.data());
    // Chain rule with per-element geometry factors while scattering back.
    for (std::size_t p = 0; p < nplanes; ++p) {
        for (std::size_t j = 0; j < cnt; ++j) {
            const std::size_t e = g.elems[j];
            const nektar::ElemGeometry& geo = d.ops(e).geometry();
            const double* c1 = d1.data() + (p * cnt + j) * nq;
            const double* c2 = d2.data() + (p * cnt + j) * nq;
            double* dx = dudx.data() + p * d.quad_size() + d.quad_offsets()[e];
            double* dy = dudy.data() + p * d.quad_size() + d.quad_offsets()[e];
            for (std::size_t q = 0; q < nq; ++q) {
                dx[q] = geo.rx[q] * c1[q] + geo.sx[q] * c2[q];
                dy[q] = geo.ry[q] * c1[q] + geo.sy[q] * c2[q];
            }
        }
    }
}

} // namespace compute
