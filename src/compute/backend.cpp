#include "compute/backend.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "blaslite/blas.hpp"
#include "compute/backend_impl.hpp"
#include "la/dense.hpp"
#include "nektar/discretization.hpp"
#include "parallel/scratch.hpp"

namespace compute {

const char* to_string(BackendKind k) noexcept {
    switch (k) {
        case BackendKind::Dense: return "dense";
        case BackendKind::SumFactor: return "sumfact";
        default: return "auto";
    }
}

BackendKind parse_backend(std::string_view name) {
    if (name == "auto") return BackendKind::Auto;
    if (name == "dense") return BackendKind::Dense;
    if (name == "sumfact") return BackendKind::SumFactor;
    throw std::invalid_argument("unknown compute backend \"" + std::string(name) +
                                "\" (expected auto, dense or sumfact)");
}

BackendKind default_backend() {
    // Resolved once: the toggle exists so CI can run the whole suite under
    // another backend, not for mid-run switching.
    static const BackendKind kind = [] {
        const char* env = std::getenv("REPRO_BACKEND");
        if (env == nullptr || *env == '\0') return BackendKind::Dense;
        return resolve(parse_backend(env), BackendKind::Dense);
    }();
    return kind;
}

Backend::~Backend() = default;

void Backend::project_planes(std::span<const double> quad, std::span<double> modal,
                             std::size_t nplanes) const {
    std::fill(modal.begin(), modal.end(), 0.0);
    weak_inner_planes(quad, modal, nplanes);
    mass_solve_planes(modal, nplanes);
}

void Backend::mass_solve_planes(std::span<double> modal, std::size_t nplanes) const {
    // Runs of congruent elements share one Cholesky factor, so a whole run of
    // columns goes through la::cholesky_solve_cols at once.
    const nektar::Discretization& d = *disc_;
    const auto& off = d.modal_offsets();
    for (const nektar::ElemGroup& g : d.groups()) {
        const std::size_t nm = g.exp->num_modes();
        for (std::size_t p = 0; p < nplanes; ++p) {
            double* base = modal.data() + p * d.modal_size();
            for (const nektar::ElemGroup::MatrixRun& run : g.runs) {
                const std::size_t first = g.elems[run.first];
                if (g.contiguous) {
                    la::cholesky_solve_cols(run.mats->mass_chol, base + off[first], nm,
                                            run.count);
                } else {
                    for (std::size_t j = 0; j < run.count; ++j)
                        la::cholesky_solve(
                            run.mats->mass_chol,
                            std::span<double>(base + off[g.elems[run.first + j]], nm));
                }
            }
        }
    }
}

void Backend::convect_planes(std::span<const double> au, std::span<const double> av,
                             std::span<const double> u, std::span<const double> v,
                             std::span<double> nu, std::span<double> nv,
                             std::size_t nplanes) const {
    const nektar::Discretization& d = *disc_;
    const auto& qoff = d.quad_offsets();
    const std::size_t qsize = d.quad_size();
    for (const nektar::ElemGroup& g : d.groups()) {
        const std::size_t cnt = g.elems.size();
        const nektar::ElementOps& ops0 = d.ops(g.elems.front());
        const std::size_t n1 = ops0.colloc_nq1d();
        if (n1 == 0)
            throw std::logic_error("convect_planes: quad elements only");
        const std::size_t nq = n1 * n1;
        // 1-D GLL differentiation matrix D (row-major) and its column-major
        // copy; shared by every element of the group (same nodes).
        const la::DenseMatrix& d_rm = ops0.colloc_diff_1d();
        const la::DenseMatrix d_cm = d_rm.transposed();
        const std::size_t nitems = cnt * nplanes;

        parallel::Scratch c1(nq * nitems), c2(nq * nitems);
        std::vector<blaslite::GemmBatchItem> items(nitems);
        const auto derivs = [&](std::span<const double> f) {
            // d/dxi1 = D * Q_e: per-plane panels when the group is contiguous
            // (n1*cnt columns each), per-element panels otherwise.
            if (g.contiguous) {
                items.resize(nplanes);
                for (std::size_t p = 0; p < nplanes; ++p)
                    items[p] = {f.data() + p * qsize + g.quad_begin,
                                c1.data() + p * nq * cnt};
                blaslite::dgemm_batch_same_a(1.0, d_cm.data(), n1, n1, n1, items, n1 * cnt,
                                             n1, n1, 0.0);
                items.resize(nitems);
            } else {
                for (std::size_t p = 0; p < nplanes; ++p)
                    for (std::size_t j = 0; j < cnt; ++j)
                        items[p * cnt + j] = {f.data() + p * qsize + qoff[g.elems[j]],
                                              c1.data() + (p * cnt + j) * nq};
                blaslite::dgemm_batch_same_a(1.0, d_cm.data(), n1, n1, n1, items, n1, n1, n1,
                                             0.0);
            }
            // d/dxi2 = Q_e * D^T: shared right operand (D row-major *is* D^T
            // column-major), one item per element and plane.
            for (std::size_t p = 0; p < nplanes; ++p)
                for (std::size_t j = 0; j < cnt; ++j)
                    items[p * cnt + j] = {f.data() + p * qsize + qoff[g.elems[j]],
                                          c2.data() + (p * cnt + j) * nq};
            blaslite::dgemm_batch_same_b(1.0, items, n1, d_rm.data(), n1, n1, n1, n1, n1,
                                         0.0);
        };
        // Chain rule, advecting products and sign fused into one scatter.
        const auto fuse = [&](std::span<double> out) {
            for (std::size_t p = 0; p < nplanes; ++p) {
                for (std::size_t j = 0; j < cnt; ++j) {
                    const std::size_t e = g.elems[j];
                    const nektar::ElemGeometry& geo = d.ops(e).geometry();
                    const double* e1 = c1.data() + (p * cnt + j) * nq;
                    const double* e2 = c2.data() + (p * cnt + j) * nq;
                    const double* a1 = au.data() + p * qsize + qoff[e];
                    const double* a2 = av.data() + p * qsize + qoff[e];
                    double* o = out.data() + p * qsize + qoff[e];
                    for (std::size_t q = 0; q < nq; ++q) {
                        const double fx = geo.rx[q] * e1[q] + geo.sx[q] * e2[q];
                        const double fy = geo.ry[q] * e1[q] + geo.sy[q] * e2[q];
                        o[q] = -(a1[q] * fx + a2[q] * fy);
                    }
                }
            }
            blaslite::detail::charge(10 * nq * nitems,
                                     9 * nq * nitems * sizeof(double),
                                     nq * nitems * sizeof(double));
        };
        derivs(u);
        fuse(nu);
        derivs(v);
        fuse(nv);
    }
}

std::unique_ptr<Backend> make_backend(BackendKind kind, const nektar::Discretization& disc) {
    switch (resolve(kind, default_backend())) {
        case BackendKind::SumFactor: return std::make_unique<SumFactorBackend>(disc);
        default: return std::make_unique<DenseBackend>(disc);
    }
}

} // namespace compute
