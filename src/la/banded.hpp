#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "la/dense.hpp"

/// \file banded.hpp
/// Symmetric banded storage and Cholesky solver.
///
/// The paper's serial and Fourier solvers spend ~60% of each time step in
/// "matrix inversions ... a direct solver (LAPACK), utilising the symmetric
/// and banded nature of the matrix" (stages 5 and 7, Figure 12).  This is the
/// from-scratch equivalent of LAPACK's dpbtrf/dpbtrs pair.
namespace la {

/// Symmetric positive-definite banded matrix, lower-band storage:
/// band(d, j) holds A(j + d, j) for diagonal offset d in [0, bandwidth].
class SymBandedMatrix {
public:
    SymBandedMatrix() = default;
    SymBandedMatrix(std::size_t n, std::size_t bandwidth)
        : n_(n), kd_(bandwidth), band_((bandwidth + 1) * n, 0.0) {}

    [[nodiscard]] std::size_t size() const noexcept { return n_; }
    [[nodiscard]] std::size_t bandwidth() const noexcept { return kd_; }

    /// Entry accessor in banded coordinates: offset d below the diagonal.
    double& band(std::size_t d, std::size_t j) noexcept { return band_[d * n_ + j]; }
    double band(std::size_t d, std::size_t j) const noexcept { return band_[d * n_ + j]; }

    /// Adds v to A(i, j) (and implicitly A(j, i)); |i - j| must be <= bandwidth.
    void add(std::size_t i, std::size_t j, double v) noexcept;

    /// Full A(i, j) (zero outside the band).
    [[nodiscard]] double at(std::size_t i, std::size_t j) const noexcept;

    /// y = A x using symmetric banded storage.
    void matvec(std::span<const double> x, std::span<double> y) const;

    /// Dense copy (tests / structure plots).
    [[nodiscard]] DenseMatrix to_dense() const;

private:
    std::size_t n_ = 0;
    std::size_t kd_ = 0;
    std::vector<double> band_;
};

/// Banded Cholesky factorization A = L L^T kept in banded storage, plus the
/// solve.  Factorization costs O(n * kd^2); each solve costs O(n * kd).
class BandedCholesky {
public:
    BandedCholesky() = default;

    /// Factors `a`; returns false if the matrix is not positive definite.
    bool factor(const SymBandedMatrix& a);

    /// Solves A x = b; b is overwritten with x.
    void solve(std::span<double> b) const;

    [[nodiscard]] bool factored() const noexcept { return n_ > 0; }
    [[nodiscard]] std::size_t size() const noexcept { return n_; }
    [[nodiscard]] std::size_t bandwidth() const noexcept { return kd_; }

    /// Flop count of one solve (forward + back substitution); used by the
    /// per-machine performance predictors.
    [[nodiscard]] std::size_t solve_flops() const noexcept {
        return 2 * (2 * n_ * (kd_ + 1));
    }

private:
    std::size_t n_ = 0;
    std::size_t kd_ = 0;
    std::vector<double> band_; // L in the same lower-band layout
    double lband(std::size_t d, std::size_t j) const noexcept { return band_[d * n_ + j]; }
    double& lband(std::size_t d, std::size_t j) noexcept { return band_[d * n_ + j]; }
};

} // namespace la
