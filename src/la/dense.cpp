#include "la/dense.hpp"

#include <algorithm>
#include <cmath>

#include "blaslite/blas.hpp"

namespace la {

void DenseMatrix::matvec(std::span<const double> x, std::span<double> y) const {
    assert(x.size() == cols_ && y.size() == rows_);
    blaslite::dgemv(1.0, data_.data(), cols_, rows_, cols_, x.data(), 0.0, y.data());
}

DenseMatrix DenseMatrix::transposed() const {
    DenseMatrix t(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
    return t;
}

double DenseMatrix::max_diff(const DenseMatrix& other) const {
    assert(rows_ == other.rows_ && cols_ == other.cols_);
    double m = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i)
        m = std::max(m, std::abs(data_[i] - other.data_[i]));
    return m;
}

double DenseMatrix::symmetry_defect() const {
    assert(rows_ == cols_);
    double m = 0.0;
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = i + 1; j < cols_; ++j)
            m = std::max(m, std::abs((*this)(i, j) - (*this)(j, i)));
    return m;
}

DenseMatrix matmul(const DenseMatrix& a, const DenseMatrix& b) {
    assert(a.cols() == b.rows());
    DenseMatrix c(a.rows(), b.cols());
    blaslite::dgemm(1.0, a.data(), a.cols(), b.data(), b.cols(), 0.0, c.data(), c.cols(),
                    a.rows(), b.cols(), a.cols());
    return c;
}

bool lu_factor(DenseMatrix& a, std::vector<std::size_t>& piv) {
    assert(a.rows() == a.cols());
    const std::size_t n = a.rows();
    piv.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
        std::size_t p = k;
        double best = std::abs(a(k, k));
        for (std::size_t i = k + 1; i < n; ++i) {
            if (std::abs(a(i, k)) > best) {
                best = std::abs(a(i, k));
                p = i;
            }
        }
        if (best == 0.0) return false;
        piv[k] = p;
        if (p != k)
            for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(p, j));
        const double inv = 1.0 / a(k, k);
        for (std::size_t i = k + 1; i < n; ++i) {
            const double lik = a(i, k) * inv;
            a(i, k) = lik;
            for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= lik * a(k, j);
        }
    }
    return true;
}

void lu_solve(const DenseMatrix& lu, const std::vector<std::size_t>& piv, std::span<double> b) {
    const std::size_t n = lu.rows();
    assert(b.size() == n && piv.size() == n);
    for (std::size_t k = 0; k < n; ++k)
        if (piv[k] != k) std::swap(b[k], b[piv[k]]);
    for (std::size_t i = 1; i < n; ++i) {
        double s = b[i];
        for (std::size_t j = 0; j < i; ++j) s -= lu(i, j) * b[j];
        b[i] = s;
    }
    for (std::size_t ii = n; ii-- > 0;) {
        double s = b[ii];
        for (std::size_t j = ii + 1; j < n; ++j) s -= lu(ii, j) * b[j];
        b[ii] = s / lu(ii, ii);
    }
}

bool cholesky_factor(DenseMatrix& a) {
    assert(a.rows() == a.cols());
    const std::size_t n = a.rows();
    for (std::size_t j = 0; j < n; ++j) {
        double d = a(j, j);
        for (std::size_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
        if (d <= 0.0) return false;
        const double ljj = std::sqrt(d);
        a(j, j) = ljj;
        const double inv = 1.0 / ljj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double s = a(i, j);
            for (std::size_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
            a(i, j) = s * inv;
        }
        for (std::size_t i = 0; i < j; ++i) a(i, j) = 0.0; // keep strict lower form
    }
    return true;
}

void cholesky_solve(const DenseMatrix& l, std::span<double> b) {
    const std::size_t n = l.rows();
    assert(b.size() == n);
    for (std::size_t i = 0; i < n; ++i) {
        double s = b[i];
        for (std::size_t j = 0; j < i; ++j) s -= l(i, j) * b[j];
        b[i] = s / l(i, i);
    }
    for (std::size_t ii = n; ii-- > 0;) {
        double s = b[ii];
        for (std::size_t j = ii + 1; j < n; ++j) s -= l(j, ii) * b[j];
        b[ii] = s / l(ii, ii);
    }
}

void cholesky_solve_cols(const DenseMatrix& l, double* b, std::size_t ld, std::size_t nrhs) {
    const std::size_t n = l.rows();
    assert(ld >= n);
    for (std::size_t c = 0; c < nrhs; ++c) cholesky_solve(l, std::span<double>(b + c * ld, n));
}

} // namespace la
