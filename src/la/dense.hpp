#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

/// \file dense.hpp
/// Minimal dense row-major matrix used throughout the spectral/hp stack.
namespace la {

/// Dense row-major matrix of doubles.
class DenseMatrix {
public:
    DenseMatrix() = default;
    DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0)
        : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

    double& operator()(std::size_t i, std::size_t j) noexcept {
        assert(i < rows_ && j < cols_);
        return data_[i * cols_ + j];
    }
    double operator()(std::size_t i, std::size_t j) const noexcept {
        assert(i < rows_ && j < cols_);
        return data_[i * cols_ + j];
    }

    [[nodiscard]] double* data() noexcept { return data_.data(); }
    [[nodiscard]] const double* data() const noexcept { return data_.data(); }
    [[nodiscard]] std::span<double> row(std::size_t i) noexcept {
        return {data_.data() + i * cols_, cols_};
    }
    [[nodiscard]] std::span<const double> row(std::size_t i) const noexcept {
        return {data_.data() + i * cols_, cols_};
    }

    /// y = A x.
    void matvec(std::span<const double> x, std::span<double> y) const;

    /// Returns the transpose.
    [[nodiscard]] DenseMatrix transposed() const;

    /// Maximum |A_ij - B_ij|.
    [[nodiscard]] double max_diff(const DenseMatrix& other) const;

    /// Maximum |A_ij - A_ji| (symmetry defect).
    [[nodiscard]] double symmetry_defect() const;

    friend bool operator==(const DenseMatrix& a, const DenseMatrix& b) = default;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// C = A * B.
[[nodiscard]] DenseMatrix matmul(const DenseMatrix& a, const DenseMatrix& b);

/// In-place dense LU with partial pivoting; returns false if singular.
/// `piv` receives the row permutation.
bool lu_factor(DenseMatrix& a, std::vector<std::size_t>& piv);

/// Solves L U x = P b using the output of lu_factor; b is overwritten with x.
void lu_solve(const DenseMatrix& lu, const std::vector<std::size_t>& piv, std::span<double> b);

/// Dense Cholesky (lower) of an SPD matrix, in place; returns false if not SPD.
bool cholesky_factor(DenseMatrix& a);

/// Solves L L^T x = b after cholesky_factor; b is overwritten with x.
void cholesky_solve(const DenseMatrix& l, std::span<double> b);

/// Solves L L^T X = B for `nrhs` right-hand sides stored as column-major
/// columns of B (column c starts at b + c*ld, length l.rows()); every column
/// is overwritten with its solution.  Each column is solved with exactly the
/// per-column substitution order of cholesky_solve, so results are bitwise
/// identical to nrhs independent calls — the batched elemental engine relies
/// on this when projecting whole element groups at once.
void cholesky_solve_cols(const DenseMatrix& l, double* b, std::size_t ld, std::size_t nrhs);

} // namespace la
