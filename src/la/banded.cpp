#include "la/banded.hpp"

#include <cassert>
#include <cmath>

#include "blaslite/counters.hpp"

namespace la {

void SymBandedMatrix::add(std::size_t i, std::size_t j, double v) noexcept {
    if (i < j) std::swap(i, j);
    const std::size_t d = i - j;
    assert(d <= kd_);
    band(d, j) += v;
}

double SymBandedMatrix::at(std::size_t i, std::size_t j) const noexcept {
    if (i < j) std::swap(i, j);
    const std::size_t d = i - j;
    if (d > kd_) return 0.0;
    return band(d, j);
}

void SymBandedMatrix::matvec(std::span<const double> x, std::span<double> y) const {
    assert(x.size() == n_ && y.size() == n_);
    for (std::size_t i = 0; i < n_; ++i) y[i] = band(0, i) * x[i];
    std::size_t flops = n_;
    for (std::size_t d = 1; d <= kd_; ++d) {
        for (std::size_t j = 0; j + d < n_; ++j) {
            const double v = band(d, j);
            y[j + d] += v * x[j];
            y[j] += v * x[j + d];
            flops += 4;
        }
    }
    blaslite::detail::charge(flops, (kd_ + 2) * n_ * sizeof(double), n_ * sizeof(double));
}

DenseMatrix SymBandedMatrix::to_dense() const {
    DenseMatrix a(n_, n_);
    for (std::size_t j = 0; j < n_; ++j) {
        for (std::size_t d = 0; d <= kd_ && j + d < n_; ++d) {
            a(j + d, j) = band(d, j);
            a(j, j + d) = band(d, j);
        }
    }
    return a;
}

bool BandedCholesky::factor(const SymBandedMatrix& a) {
    n_ = a.size();
    kd_ = a.bandwidth();
    band_.assign((kd_ + 1) * n_, 0.0);
    for (std::size_t d = 0; d <= kd_; ++d)
        for (std::size_t j = 0; j + d < n_; ++j) lband(d, j) = a.band(d, j);

    // Relative pivot threshold: a numerically singular matrix (e.g. an
    // all-Neumann Laplacian) must fail loudly rather than factor with a
    // roundoff-sized pivot.
    double scale = 0.0;
    for (std::size_t j = 0; j < n_; ++j) scale = std::max(scale, lband(0, j));
    const double pivot_floor = 1e-12 * scale;

    std::size_t flops = 0;
    for (std::size_t j = 0; j < n_; ++j) {
        double d = lband(0, j);
        if (d <= pivot_floor || !std::isfinite(d)) { n_ = 0; return false; }
        const double ljj = std::sqrt(d);
        lband(0, j) = ljj;
        const double inv = 1.0 / ljj;
        const std::size_t imax = std::min(kd_, n_ - 1 - j);
        for (std::size_t di = 1; di <= imax; ++di) lband(di, j) *= inv;
        flops += imax + 2;
        // Rank-1 update of the trailing band: A(j+di, j+dk) -= L(j+di,j)*L(j+dk,j).
        for (std::size_t dk = 1; dk <= imax; ++dk) {
            const double ljk = lband(dk, j);
            for (std::size_t di = dk; di <= imax; ++di) {
                lband(di - dk, j + dk) -= lband(di, j) * ljk;
            }
            flops += 2 * (imax - dk + 1);
        }
    }
    blaslite::detail::charge(flops, band_.size() * sizeof(double),
                             band_.size() * sizeof(double));
    return true;
}

void BandedCholesky::solve(std::span<double> b) const {
    assert(factored() && b.size() == n_);
    // Forward: L y = b.
    for (std::size_t j = 0; j < n_; ++j) {
        const double yj = b[j] / lband(0, j);
        b[j] = yj;
        const std::size_t imax = std::min(kd_, n_ - 1 - j);
        for (std::size_t d = 1; d <= imax; ++d) b[j + d] -= lband(d, j) * yj;
    }
    // Backward: L^T x = y.
    for (std::size_t jj = n_; jj-- > 0;) {
        double s = b[jj];
        const std::size_t imax = std::min(kd_, n_ - 1 - jj);
        for (std::size_t d = 1; d <= imax; ++d) s -= lband(d, jj) * b[jj + d];
        b[jj] = s / lband(0, jj);
    }
    blaslite::detail::charge(solve_flops(), (kd_ + 1) * n_ * sizeof(double) * 2,
                             2 * n_ * sizeof(double));
}

} // namespace la
