#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

/// \file cg.hpp
/// Diagonally preconditioned conjugate gradient.
///
/// "Instead of direct solvers, a diagonally preconditioned conjugate gradient
/// iterative solver is predominantly used" in the NekTar-ALE simulations
/// (paper §4.2.2).  The operator and the (optional) parallel reduction are
/// injected so the same driver runs serially and under the simulated MPI
/// runtime with gather-scatter assembly.
namespace la {

struct CgResult {
    std::size_t iterations = 0;    ///< iterations actually performed
    double residual_norm = 0.0;    ///< final ||r||_2
    bool converged = false;
};

struct CgOptions {
    std::size_t max_iterations = 1000;
    double tolerance = 1e-10;      ///< absolute tolerance on ||r||_2
};

/// Operator application y = A x.
using ApplyFn = std::function<void(std::span<const double>, std::span<double>)>;
/// Global dot product; defaults to the local one.  Parallel callers supply an
/// allreduce-backed version.
using DotFn = std::function<double(std::span<const double>, std::span<const double>)>;

/// Solves A x = b with Jacobi (diagonal) preconditioning.
/// `inv_diag` holds 1/diag(A); x holds the initial guess on entry.
CgResult pcg(const ApplyFn& apply, std::span<const double> inv_diag, std::span<const double> b,
             std::span<double> x, const CgOptions& opts = {}, const DotFn& dot = {});

} // namespace la
