#include "la/cg.hpp"

#include <cassert>
#include <cmath>

#include "blaslite/blas.hpp"

namespace la {

CgResult pcg(const ApplyFn& apply, std::span<const double> inv_diag, std::span<const double> b,
             std::span<double> x, const CgOptions& opts, const DotFn& dot_in) {
    const std::size_t n = b.size();
    assert(x.size() == n && inv_diag.size() == n);
    const DotFn dot = dot_in ? dot_in : DotFn{[](std::span<const double> u,
                                                 std::span<const double> v) {
        return blaslite::ddot(u, v);
    }};

    std::vector<double> r(n), z(n), p(n), ap(n);
    apply(x, std::span<double>(ap));
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];
    blaslite::dvmul(r, inv_diag, z);
    blaslite::dcopy(z, p);

    double rz = dot(r, z);
    CgResult res;
    res.residual_norm = std::sqrt(std::max(0.0, dot(r, r)));
    if (res.residual_norm <= opts.tolerance) {
        res.converged = true;
        return res;
    }

    for (std::size_t it = 0; it < opts.max_iterations; ++it) {
        apply(p, std::span<double>(ap));
        const double pap = dot(p, ap);
        if (pap <= 0.0) break; // lost positive definiteness (or exact solve)
        const double alpha = rz / pap;
        blaslite::daxpy(alpha, p, x);
        blaslite::daxpy(-alpha, ap, r);
        res.iterations = it + 1;
        res.residual_norm = std::sqrt(std::max(0.0, dot(r, r)));
        if (res.residual_norm <= opts.tolerance) {
            res.converged = true;
            return res;
        }
        blaslite::dvmul(r, inv_diag, z);
        const double rz_next = dot(r, z);
        const double beta = rz_next / rz;
        rz = rz_next;
        for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    }
    return res;
}

} // namespace la
