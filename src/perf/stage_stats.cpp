#include "perf/stage_stats.hpp"

namespace perf {

StageBreakdown& StageBreakdown::operator+=(const StageBreakdown& o) {
    for (std::size_t s = 0; s <= kNumStages; ++s) {
        counts[s] += o.counts[s];
        host_seconds[s] += o.host_seconds[s];
        retransmits[s] += o.retransmits[s];
        fault_seconds[s] += o.fault_seconds[s];
        overlap_seconds[s] += o.overlap_seconds[s];
    }
    steps += o.steps;
    return *this;
}

void StageBreakdown::add_comm_faults(std::size_t stage, std::uint64_t retransmit_count,
                                     double extra_seconds) {
    const std::size_t s = stage <= kNumStages ? stage : 0;
    retransmits[s] += retransmit_count;
    fault_seconds[s] += extra_seconds;
}

void StageBreakdown::add_comm_overlap(std::size_t stage, double hidden_seconds) {
    const std::size_t s = stage <= kNumStages ? stage : 0;
    overlap_seconds[s] += hidden_seconds;
}

blaslite::OpCounts StageBreakdown::total_counts() const {
    blaslite::OpCounts t;
    for (std::size_t s = 1; s <= kNumStages; ++s) t += counts[s];
    return t;
}

double StageBreakdown::total_host_seconds() const {
    double t = 0.0;
    for (std::size_t s = 1; s <= kNumStages; ++s) t += host_seconds[s];
    return t;
}

double StageBreakdown::predict_stage_seconds(const machine::MachineModel& m, std::size_t stage,
                                             const StageShape& shape) const {
    const blaslite::OpCounts& c = counts[stage];
    machine::KernelShape k;
    k.flops = static_cast<double>(c.flops);
    k.bytes = static_cast<double>(c.bytes());
    k.working_set = shape.working_set_bytes;
    k.compute_efficiency = shape.compute_efficiency;
    k.latency_bound = shape.latency_bound;
    const double body = machine::predict_seconds(m, k);
    // predict_seconds charges one call overhead; add the rest of the calls.
    const double extra_calls = c.calls > 0 ? static_cast<double>(c.calls - 1) : 0.0;
    return body + extra_calls * m.call_overhead_cycles / (m.clock_mhz * 1e6);
}

double StageBreakdown::predict_total_seconds(
    const machine::MachineModel& m,
    const std::array<StageShape, kNumStages + 1>& shapes) const {
    double t = 0.0;
    for (std::size_t s = 1; s <= kNumStages; ++s) t += predict_stage_seconds(m, s, shapes[s]);
    return t;
}

std::string stage_name(std::size_t stage) {
    switch (stage) {
        case 1: return "transform modal->quadrature";
        case 2: return "nonlinear terms";
        case 3: return "extrapolation weighting";
        case 4: return "Poisson RHS setup";
        case 5: return "Poisson (pressure) solve";
        case 6: return "Helmholtz RHS setup";
        case 7: return "Helmholtz (viscous) solve";
        default: return "unknown";
    }
}

std::string stage_short_name(std::size_t stage) {
    switch (stage) {
        case 1: return "transform";
        case 2: return "nonlinear";
        case 3: return "extrapolate";
        case 4: return "Poisson RHS";
        case 5: return "Poisson slv";
        case 6: return "Helm. RHS";
        case 7: return "Helm. slv";
        default: return "unknown";
    }
}

StageGroup stage_group(std::size_t stage) {
    switch (stage) {
        case 5: return StageGroup::PressureSolve;
        case 7: return StageGroup::ViscousSolve;
        default: return StageGroup::Setup;
    }
}

std::string stage_group_label(StageGroup group) {
    switch (group) {
        case StageGroup::PressureSolve: return "b";
        case StageGroup::ViscousSolve: return "c";
        default: return "a";
    }
}

std::vector<std::size_t> stages_in_group(StageGroup group) {
    std::vector<std::size_t> out;
    for (std::size_t s = 1; s <= kNumStages; ++s)
        if (stage_group(s) == group) out.push_back(s);
    return out;
}

} // namespace perf
