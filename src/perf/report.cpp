#include "perf/report.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace perf {

namespace {

void esc(std::string& out, const std::string& s) {
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

void num(std::string& out, double v) {
    if (!std::isfinite(v)) { // JSON has no inf/nan; clamp rather than corrupt
        out += v > 0 ? "1e308" : (v < 0 ? "-1e308" : "0");
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

void kv_str(std::string& out, const char* key, const std::string& v, bool& first) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += key;
    out += "\":\"";
    esc(out, v);
    out += "\"";
}

void kv_num(std::string& out, const char* key, double v, bool& first) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += key;
    out += "\":";
    num(out, v);
}

void str_map(std::string& out, const std::map<std::string, double>& m) {
    out += "{";
    bool first = true;
    for (const auto& [k, v] : m) {
        if (!first) out += ",";
        first = false;
        out += "\"";
        esc(out, k);
        out += "\":";
        num(out, v);
    }
    out += "}";
}

} // namespace

std::string RunReport::to_json() const {
    std::string out = "{\n";
    out += "\"schema_version\":" + std::to_string(kSchemaVersion) + ",\n";
    out += "\"bench\":\"";
    esc(out, bench);
    out += "\",\n";
    if (!backend.empty()) {
        out += "\"backend\":\"";
        esc(out, backend);
        out += "\",\n";
    }
    if (crossover_order >= 0.0) {
        out += "\"crossover_order\":";
        num(out, crossover_order);
        out += ",\n";
    }
    // Schema v2: the canonical ScenarioRequest echo ({} when the report was
    // not built from one) and the store/cache provenance.
    out += "\"request\":";
    out += request_json.empty() ? "{}" : request_json;
    out += ",\n\"cache\":{\"hit\":";
    out += cache_hit ? "true" : "false";
    out += ",\"store_key\":\"";
    esc(out, store_key);
    out += "\"},\n";
    out += "\"meta\":{";
    {
        bool first = true;
        for (const auto& [k, v] : meta) kv_str(out, k.c_str(), v, first);
    }
    out += "},\n\"steps\":" + std::to_string(steps) + ",\n";
    out += "\"stages\":[";
    for (std::size_t i = 0; i < stages.size(); ++i) {
        const StageRow& r = stages[i];
        out += i == 0 ? "\n" : ",\n";
        out += "{";
        bool first = true;
        kv_num(out, "stage", static_cast<double>(r.stage), first);
        kv_str(out, "name", r.name, first);
        kv_str(out, "group", r.group, first);
        kv_num(out, "flops", r.flops, first);
        kv_num(out, "bytes", r.bytes, first);
        kv_num(out, "calls", static_cast<double>(r.calls), first);
        kv_num(out, "host_seconds", r.host_seconds, first);
        kv_num(out, "fault_seconds", r.fault_seconds, first);
        kv_num(out, "overlap_seconds", r.overlap_seconds, first);
        kv_num(out, "retransmits", static_cast<double>(r.retransmits), first);
        out += "}";
    }
    out += "],\n\"metrics\":{\"counters\":";
    str_map(out, metrics.counters);
    out += ",\"gauges\":";
    str_map(out, metrics.gauges);
    out += ",\"histograms\":{";
    {
        bool hfirst = true;
        for (const auto& [name, h] : metrics.histograms) {
            if (!hfirst) out += ",";
            hfirst = false;
            out += "\"";
            esc(out, name);
            out += "\":{";
            bool first = true;
            kv_num(out, "count", static_cast<double>(h.count), first);
            kv_num(out, "sum", h.sum, first);
            kv_num(out, "min", h.count ? h.min : 0.0, first);
            kv_num(out, "max", h.count ? h.max : 0.0, first);
            out += ",\"buckets\":{";
            bool bfirst = true;
            for (const auto& [exp, n] : h.buckets) {
                if (!bfirst) out += ",";
                bfirst = false;
                out += "\"" + std::to_string(exp) + "\":" + std::to_string(n);
            }
            out += "}}";
        }
    }
    out += "}},\n\"cases\":[";
    for (std::size_t i = 0; i < cases.size(); ++i) {
        out += i == 0 ? "\n" : ",\n";
        out += "{";
        bool first = true;
        for (const auto& [k, v] : cases[i].labels) kv_str(out, k.c_str(), v, first);
        for (const auto& [k, v] : cases[i].values) kv_num(out, k.c_str(), v, first);
        out += "}";
    }
    out += "]\n}\n";
    return out;
}

std::string RunReport::to_canonical_json() const {
    RunReport masked = *this;
    masked.cache_hit = false; // serving provenance, not run content
    for (StageRow& r : masked.stages) r.host_seconds = 0.0;
    const auto mask = [](std::map<std::string, double>& m) {
        for (auto& [k, v] : m)
            if (k.find("host_seconds") != std::string::npos) v = 0.0;
    };
    mask(masked.metrics.counters);
    mask(masked.metrics.gauges);
    return masked.to_json();
}

void RunReport::write_json(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) throw std::runtime_error("cannot write RunReport to " + path);
    const std::string json = to_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
}

RunReport report(std::string bench, const StageBreakdown* bd, const simmpi::RankReport* rank,
                 bool with_global_metrics) {
    RunReport rep;
    rep.bench = std::move(bench);
    if (with_global_metrics) rep.metrics = obs::metrics().snapshot();

    if (bd != nullptr) {
        StageBreakdown folded = *bd;
        if (rank != nullptr) {
            for (const auto& [stage, fs] : rank->fault_log)
                folded.add_comm_faults(stage >= 0 ? static_cast<std::size_t>(stage) : 0,
                                       fs.retransmits, fs.extra_seconds);
            for (const auto& [stage, hidden] : rank->overlap_log)
                folded.add_comm_overlap(stage >= 0 ? static_cast<std::size_t>(stage) : 0, hidden);
        }
        rep.steps = folded.steps;
        double flops = 0.0, bytes = 0.0, host = 0.0, fault = 0.0, overlap = 0.0;
        std::uint64_t retrans = 0;
        for (std::size_t s = 0; s <= kNumStages; ++s) {
            StageRow row;
            row.stage = s;
            row.name = s == 0 ? "outside stages" : stage_short_name(s);
            row.group = s == 0 ? "" : stage_group_label(stage_group(s));
            row.flops = static_cast<double>(folded.counts[s].flops);
            row.bytes = static_cast<double>(folded.counts[s].bytes());
            row.calls = folded.counts[s].calls;
            row.host_seconds = folded.host_seconds[s];
            row.fault_seconds = folded.fault_seconds[s];
            row.overlap_seconds = folded.overlap_seconds[s];
            row.retransmits = folded.retransmits[s];
            flops += row.flops;
            bytes += row.bytes;
            host += row.host_seconds;
            fault += row.fault_seconds;
            overlap += row.overlap_seconds;
            retrans += row.retransmits;
            const bool empty = row.calls == 0 && row.flops == 0.0 && row.host_seconds == 0.0 &&
                               row.fault_seconds == 0.0 && row.overlap_seconds == 0.0 &&
                               row.retransmits == 0;
            if (s >= 1 || !empty) rep.stages.push_back(std::move(row));
        }
        rep.metrics.counters["ops.flops"] += flops;
        rep.metrics.counters["ops.bytes"] += bytes;
        rep.metrics.counters["stage.host_seconds"] += host;
        rep.metrics.counters["comm.retransmits"] += static_cast<double>(retrans);
        rep.metrics.counters["comm.fault_seconds"] += fault;
        rep.metrics.counters["comm.overlap_hidden_seconds"] += overlap;
    }
    return rep;
}

} // namespace perf
