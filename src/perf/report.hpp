#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "perf/stage_stats.hpp"
#include "simmpi/simmpi.hpp"

/// \file report.hpp
/// The RunReport: one versioned JSON schema every benchmark emits
/// (bench/run_report_schema.json is the committed contract), and
/// perf::report() — the single entry point that folds a StageBreakdown,
/// a rank's comm fault/overlap logs and the global obs metrics registry
/// into it.  This replaces both the per-bench hand-rolled JSON emitters
/// and the per-subsystem total_* getters that used to live on
/// StageBreakdown / simmpi::Comm.
namespace perf {

/// One stage of the 7-stage splitting pipeline (row 0 collects comm events
/// issued outside an explicit stage and appears only when it is nonempty).
struct StageRow {
    std::size_t stage = 0;
    std::string name;  ///< stage_short_name()
    std::string group; ///< paper grouping "a"/"b"/"c" ("" for row 0)
    double flops = 0.0;
    double bytes = 0.0;
    std::uint64_t calls = 0;
    double host_seconds = 0.0;
    double fault_seconds = 0.0;
    double overlap_seconds = 0.0;
    std::uint64_t retransmits = 0;
};

/// One benchmark data point: a flat bag of numeric values plus string
/// labels (platform names, network names, ...).  Serialised as a single
/// JSON object with the two maps merged; keys must not collide.
struct Case {
    std::map<std::string, std::string> labels;
    std::map<std::string, double> values;
};

struct RunReport {
    static constexpr int kSchemaVersion = 2;

    std::string bench;                       ///< benchmark id, e.g. "table2_nektar_f"
    /// Canonical lab::ScenarioRequest JSON describing the run this report
    /// answers (schema v2's `request` block).  Empty = no request attached;
    /// serialised as `{}` so the block is always present.  Kept as
    /// pre-rendered bytes rather than a typed member because perf sits
    /// below the lab library in the dependency order.
    std::string request_json;
    bool cache_hit = false;   ///< schema v2 `cache.hit`: served from the store
    std::string store_key;    ///< schema v2 `cache.store_key` ("" = not stored)
    /// Compute backend the run exercised ("dense", "sumfact", or
    /// "dense+sumfact" for side-by-side sweeps).  Optional: omitted from the
    /// JSON when empty, so pre-backend reports stay byte-identical.
    std::string backend;
    /// Smallest polynomial order at which the sum-factorised path beats the
    /// dense batched path (bench_hotpath's dense-vs-sumfact sweep).  Optional:
    /// emitted only when >= 0; -1 means "not measured / no crossover".
    double crossover_order = -1.0;
    std::map<std::string, std::string> meta; ///< machine/net/ranks/seed/threads/...
    int steps = 0;                           ///< solver time steps covered (0 = n/a)
    std::vector<StageRow> stages;            ///< empty for kernel micro-benches
    obs::MetricsRegistry::Snapshot metrics;
    std::vector<Case> cases;

    [[nodiscard]] std::string to_json() const;
    void write_json(const std::string& path) const;

    /// to_json() with every host-measured time zeroed — the per-stage
    /// host_seconds column and any metric key naming host_seconds — and the
    /// cache hit bit forced to false (how a report was served is not part
    /// of what it says).  The result is bit-deterministic for deterministic
    /// runs, so the restart and repro tests compare it byte-for-byte
    /// (bench/check_determinism.py applies the same masking to report
    /// files) and the lab's RunReport store persists exactly these bytes.
    [[nodiscard]] std::string to_canonical_json() const;
};

/// Builds a RunReport for `bench`.  When `bd` is given, its per-stage
/// accounting becomes the `stages` rows and the run totals land in
/// metrics.counters ("stage.host_seconds", "ops.flops", "ops.bytes",
/// "comm.retransmits", "comm.fault_seconds", "comm.overlap_hidden_seconds").
/// When `rank` is also given, its fault and overlap logs are folded on top
/// first (pass rank = nullptr if the breakdown already absorbed them via
/// add_comm_faults/add_comm_overlap).  The global obs::metrics() snapshot
/// is included unless `with_global_metrics` is false — the cluster lab's
/// evaluator opts out because that registry accumulates across requests
/// and a stored report must be a pure function of its request.
[[nodiscard]] RunReport report(std::string bench, const StageBreakdown* bd = nullptr,
                               const simmpi::RankReport* rank = nullptr,
                               bool with_global_metrics = true);

} // namespace perf
