#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "blaslite/counters.hpp"
#include "machine/machine_model.hpp"

/// \file stage_stats.hpp
/// Per-stage operation accounting for the application-level experiments.
///
/// The paper splits each time step into 7 stages (Figure 12):
///   1 modal->quadrature transform      5 Poisson (pressure) solve
///   2 nonlinear term evaluation        6 Helmholtz RHS setup
///   3 extrapolation weighting          7 Helmholtz (viscous) solve
///   4 Poisson RHS setup
/// Our solvers run for real on this host; every stage records the flops and
/// bytes its kernels moved (via the blaslite counters) plus the measured host
/// time.  The per-machine predictors then price the same operation stream on
/// each 1999 machine.
namespace perf {

inline constexpr std::size_t kNumStages = 7;

/// Characterisation used to price one stage on a machine model: which cache
/// level the stage's data lives in and how efficiently it uses the FPU.
struct StageShape {
    std::size_t working_set_bytes = 1 << 30; ///< default: streams from memory
    double compute_efficiency = 0.5;
    bool latency_bound = false; ///< dependency-chained access (back-substitution)
};

struct StageBreakdown {
    std::array<blaslite::OpCounts, kNumStages + 1> counts{}; ///< 1-based
    std::array<double, kNumStages + 1> host_seconds{};
    /// Fault accounting per stage, filled from a simulated run's per-stage
    /// fault log (simmpi::FaultLog): lost transmissions the network had to
    /// repeat, and the virtual seconds the fault model added on top of the
    /// unfaulted communication costs.  Zero for serial or perfect-network runs.
    std::array<std::uint64_t, kNumStages + 1> retransmits{};
    std::array<double, kNumStages + 1> fault_seconds{};
    /// Virtual comm seconds the nonblocking exchanges hid under computation
    /// per stage (simmpi::OverlapLog) — the "overlapped comm" column of the
    /// application tables.  Zero for blocking-only or serial runs.
    std::array<double, kNumStages + 1> overlap_seconds{};
    int steps = 0;

    StageBreakdown& operator+=(const StageBreakdown& o);

    /// Credits `stage` with fault overhead observed by the comm runtime.
    /// Events outside an explicit stage (simmpi stage -1) belong in slot 0.
    void add_comm_faults(std::size_t stage, std::uint64_t retransmit_count,
                         double extra_seconds);

    /// Credits `stage` with comm seconds the nonblocking path hid under
    /// computation.  Same slot rule as add_comm_faults.
    void add_comm_overlap(std::size_t stage, double hidden_seconds);

    [[nodiscard]] blaslite::OpCounts total_counts() const;
    [[nodiscard]] double total_host_seconds() const;
    // Fault/overlap/retransmit run totals deliberately have no getters here:
    // perf::report() (report.hpp) is the one entry point folding them into a
    // RunReport's metrics ("comm.retransmits", "comm.fault_seconds", ...).

    /// Predicted seconds a machine spends in `stage` over the recorded run.
    [[nodiscard]] double predict_stage_seconds(const machine::MachineModel& m,
                                               std::size_t stage,
                                               const StageShape& shape) const;
    /// Sum over all stages with per-stage shapes (array is 1-based like counts).
    [[nodiscard]] double predict_total_seconds(
        const machine::MachineModel& m,
        const std::array<StageShape, kNumStages + 1>& shapes) const;
};

/// RAII scope charging one stage: captures blaslite count deltas and host time.
class StageScope {
public:
    StageScope(StageBreakdown& bd, std::size_t stage)
        : bd_(&bd), stage_(stage), start_(std::chrono::steady_clock::now()) {}
    StageScope(const StageScope&) = delete;
    StageScope& operator=(const StageScope&) = delete;
    ~StageScope() {
        bd_->counts[stage_] += scope_.delta();
        bd_->host_seconds[stage_] +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    }

private:
    StageBreakdown* bd_;
    std::size_t stage_;
    blaslite::CountScope scope_;
    std::chrono::steady_clock::time_point start_;
};

/// Stage names as the paper labels them.
[[nodiscard]] std::string stage_name(std::size_t stage);

/// Compact stage labels for table columns ("transform", "nonlinear", ...).
[[nodiscard]] std::string stage_short_name(std::size_t stage);

/// The paper's coarse stage grouping (Figures 15-16): group a is the setup
/// work (stages 1-4 and 6), b the pressure solve (stage 5), c the viscous +
/// mesh-velocity solves (stage 7).  Shared by every solver's reporting so
/// the three codes bucket identically.
enum class StageGroup { Setup, PressureSolve, ViscousSolve };

[[nodiscard]] StageGroup stage_group(std::size_t stage);

/// The paper's one-letter label for a group: "a", "b" or "c".
[[nodiscard]] std::string stage_group_label(StageGroup group);

/// The stages belonging to `group`, in ascending order.
[[nodiscard]] std::vector<std::size_t> stages_in_group(StageGroup group);

} // namespace perf
