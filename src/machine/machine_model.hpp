#pragma once

#include <cstddef>
#include <string>
#include <vector>

/// \file machine_model.hpp
/// Analytic single-CPU performance models for the ten 1999-era machines of
/// the paper's Section 2.
///
/// None of this hardware exists any more, so the kernel-level comparison
/// (Figures 1-6) is reproduced from first principles: each machine is
/// described by its clock, peak floating-point issue rate and a small cache
/// hierarchy (level size + sustainable bandwidth), all taken from the paper's
/// hardware descriptions and vendor documentation of the period.  A BLAS
/// kernel is then characterised by its arithmetic intensity and working set,
/// and the achievable rate is the roofline minimum of the compute ceiling
/// and the bandwidth ceiling of the cache level the working set lives in.
namespace machine {

/// One level of the memory hierarchy.
struct CacheLevel {
    std::size_t size_bytes = 0;  ///< capacity (0 = main memory, unbounded)
    double bandwidth_mbps = 0.0; ///< sustainable load bandwidth, MB/s
};

/// A single-CPU machine description.
struct MachineModel {
    std::string name;
    double clock_mhz = 0.0;
    double peak_mflops = 0.0;      ///< hardware never-to-exceed rate
    double fp_efficiency = 1.0;    ///< fraction of peak reachable by tuned dgemm
    std::vector<CacheLevel> levels; ///< ordered L1, L2, ..., memory(size 0)
    double call_overhead_cycles = 0.0; ///< per-call cost (timing loop + BLAS entry)
    /// Sustainable bandwidth for dependency-chained (non-prefetchable)
    /// access such as banded back-substitution.  Streaming hardware (the
    /// T3E's STREAMS, the P2SC's wide buses) helps dcopy but not this, which
    /// is why the paper's Table 1 shows the T3E merely *tying* the PC whose
    /// low-latency SDRAM shines here.
    double latency_bound_mbps = 0.0;

    /// Bandwidth (MB/s) of the innermost level whose capacity holds
    /// `working_set` bytes; falls through to main memory.
    [[nodiscard]] double bandwidth_for(std::size_t working_set_bytes) const noexcept;
};

/// Characterisation of one kernel invocation at a given problem size.
struct KernelShape {
    double flops = 0.0;            ///< floating point ops per call
    double bytes = 0.0;            ///< bytes moved to/from the data's cache level
    std::size_t working_set = 0;   ///< resident bytes that must fit in cache
    double compute_efficiency = 1.0; ///< kernel-specific fraction of fp peak
    /// Dependency-chained access pattern (pointer-chase/back-substitution):
    /// capped by MachineModel::latency_bound_mbps instead of streaming rate.
    bool latency_bound = false;
};

/// Predicted execution time of one call, in seconds.
[[nodiscard]] double predict_seconds(const MachineModel& m, const KernelShape& k) noexcept;

/// Predicted rate in MFlop/s (flops / predicted time).
[[nodiscard]] double predict_mflops(const MachineModel& m, const KernelShape& k) noexcept;

/// Predicted data rate in MB/s (bytes / predicted time) — the dcopy metric.
[[nodiscard]] double predict_mbps(const MachineModel& m, const KernelShape& k) noexcept;

/// KernelShape builders for the five kernels of Figures 1-6.
/// `n` is the vector length (level 1), matrix dimension (dgemv/dgemm).
[[nodiscard]] KernelShape shape_dcopy(std::size_t n) noexcept;
[[nodiscard]] KernelShape shape_daxpy(std::size_t n) noexcept;
[[nodiscard]] KernelShape shape_ddot(std::size_t n) noexcept;
[[nodiscard]] KernelShape shape_dgemv(std::size_t n) noexcept;
[[nodiscard]] KernelShape shape_dgemm(std::size_t n) noexcept;

/// The machine roster of Section 2, in the paper's order.
/// Models appearing in the BLAS figures: SP2-Thin2, SP2-Silver, Muses,
/// AP3000, Onyx2 (left plots) and T3E, P2SC, Muses (right plots).
[[nodiscard]] const std::vector<MachineModel>& roster();

/// Finds a roster machine by name; throws std::out_of_range if unknown.
[[nodiscard]] const MachineModel& by_name(const std::string& name);

} // namespace machine
