#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "machine/machine_model.hpp"

/// \file accelerator_model.hpp
/// Analytic accelerator-class (GPU-era) machine descriptions.
///
/// The paper asked in 1999 whether commodity PC clusters could displace the
/// vector and SMP machines of the day.  The modern form of the same question
/// is CPU cluster vs GPU node, so the roster here extends the Section 2
/// methodology to accelerator-class hardware: the device is just another
/// roofline MachineModel (HBM standing in for "main memory", a device-wide
/// effective flop ceiling standing in for the single CPU's), plus a priced
/// host<->device link in the netsim idiom,
///
///     t_transfer(m) = latency + m / bandwidth,
///
/// because a spectral-element time step that keeps bouncing fields across
/// PCIe loses exactly the way a 1999 cluster lost to its interconnect.  All
/// parameters are public, sustained (not marketing-peak) figures; results
/// derived from them are projections, clearly labelled as such by callers.
namespace machine {

/// An accelerator node: device roofline + host link.
struct AcceleratorModel {
    std::string name;
    /// Device roofline: `peak_mflops`/`fp_efficiency` give the sustained
    /// dgemm ceiling, `levels` holds {shared/L2-class SRAM, HBM(size 0)}.
    MachineModel device;
    double link_latency_us = 0.0;    ///< kernel-launch + DMA setup latency
    double link_bandwidth_mbps = 0.0; ///< sustained host<->device bandwidth

    /// One host->device (or device->host) transfer of m bytes, seconds.
    [[nodiscard]] double transfer_seconds(std::size_t m_bytes) const noexcept;

    /// One kernel on the device plus `transfer_bytes` moved over the link:
    /// predict_seconds(device, k) + transfer_seconds(transfer_bytes).
    [[nodiscard]] double offload_seconds(const KernelShape& k,
                                         std::size_t transfer_bytes) const noexcept;

    /// Device-resident rate in MFlop/s (no link traffic).
    [[nodiscard]] double device_mflops(const KernelShape& k) const noexcept;
};

/// GPU-era accelerator roster (P100/V100/A100-class HBM devices), in
/// generation order.  Parameters are sustained figures from vendor
/// documentation: FP64 dgemm ceilings, measured-class HBM STREAM rates, and
/// PCIe gen3/gen4 effective host-link bandwidths.
[[nodiscard]] const std::vector<AcceleratorModel>& accelerator_roster();

/// Finds a roster accelerator by name; throws std::out_of_range if unknown.
[[nodiscard]] const AcceleratorModel& accelerator_by_name(const std::string& name);

} // namespace machine
