#include "machine/machine_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace machine {

double MachineModel::bandwidth_for(std::size_t working_set_bytes) const noexcept {
    for (const CacheLevel& lvl : levels) {
        if (lvl.size_bytes == 0 || working_set_bytes <= lvl.size_bytes) return lvl.bandwidth_mbps;
    }
    return levels.empty() ? 0.0 : levels.back().bandwidth_mbps;
}

double predict_seconds(const MachineModel& m, const KernelShape& k) noexcept {
    const double compute_s =
        k.flops / (m.peak_mflops * 1e6 * k.compute_efficiency * m.fp_efficiency);
    double bw_mbps = m.bandwidth_for(k.working_set);
    if (k.latency_bound && m.latency_bound_mbps > 0.0)
        bw_mbps = std::min(bw_mbps, m.latency_bound_mbps);
    const double bw = bw_mbps * 1e6; // bytes/s
    const double mem_s = bw > 0.0 ? k.bytes / bw : 0.0;
    const double overhead_s = m.call_overhead_cycles / (m.clock_mhz * 1e6);
    return std::max(compute_s, mem_s) + overhead_s;
}

double predict_mflops(const MachineModel& m, const KernelShape& k) noexcept {
    return k.flops / predict_seconds(m, k) / 1e6;
}

double predict_mbps(const MachineModel& m, const KernelShape& k) noexcept {
    return k.bytes / predict_seconds(m, k) / 1e6;
}

namespace {
constexpr double kD = sizeof(double);
} // namespace

KernelShape shape_dcopy(std::size_t n) noexcept {
    KernelShape k;
    k.flops = 0.0;
    k.bytes = 2.0 * kD * static_cast<double>(n);
    k.working_set = static_cast<std::size_t>(2 * n * kD);
    k.compute_efficiency = 1.0;
    return k;
}

KernelShape shape_daxpy(std::size_t n) noexcept {
    KernelShape k;
    k.flops = 2.0 * static_cast<double>(n);
    k.bytes = 3.0 * kD * static_cast<double>(n); // load x, load y, store y
    k.working_set = static_cast<std::size_t>(2 * n * kD);
    // One fused multiply-add per 3 memory ops: even in-cache it cannot dual
    // issue on most of these cores.
    k.compute_efficiency = 0.5;
    return k;
}

KernelShape shape_ddot(std::size_t n) noexcept {
    KernelShape k;
    k.flops = 2.0 * static_cast<double>(n);
    k.bytes = 2.0 * kD * static_cast<double>(n);
    k.working_set = static_cast<std::size_t>(2 * n * kD);
    // No store stream, so the multiply-add pipe runs closer to peak.
    k.compute_efficiency = 0.7;
    return k;
}

KernelShape shape_dgemv(std::size_t n) noexcept {
    KernelShape k;
    const double nn = static_cast<double>(n);
    k.flops = 2.0 * nn * nn;
    k.bytes = (nn * nn + 2.0 * nn) * kD; // matrix streamed once, vectors reused
    k.working_set = static_cast<std::size_t>((n * n + 2 * n) * kD);
    k.compute_efficiency = 0.6;
    return k;
}

KernelShape shape_dgemm(std::size_t n) noexcept {
    KernelShape k;
    const double nn = static_cast<double>(n);
    k.flops = 2.0 * nn * nn * nn;
    k.bytes = 4.0 * nn * nn * kD; // A, B read; C read+written (blocked reuse)
    k.working_set = static_cast<std::size_t>(3 * n * n * kD);
    // Asymptotic dgemm efficiency; the n-dependent ramp of Figure 6 comes
    // from call_overhead_cycles dominating tiny matrices.
    k.compute_efficiency = 0.9;
    return k;
}

const std::vector<MachineModel>& roster() {
    // Parameters: clock and cache sizes from the paper's Section 2; peak
    // MFlop/s from the paper where stated (450 for the PC, "up to 666" for
    // SP2-Silver) and from vendor documentation otherwise; bandwidths set to
    // sustainable (not burst) figures of the period.
    static const std::vector<MachineModel> machines = {
        // RoadRunner nodes are the same 450 MHz Pentium II as Muses.  The
        // PC's 100 MHz SDRAM gives it both solid streaming *and* low-latency
        // chained access — the paper's recurring explanation for its strong
        // application showing.
        {"RoadRunner", 450.0, 450.0, 0.65,
         {{16 * 1024, 3600.0}, {512 * 1024, 1800.0}, {0, 360.0}}, 220.0, 300.0},
        {"Muses", 450.0, 450.0, 0.65,
         {{16 * 1024, 3600.0}, {512 * 1024, 1800.0}, {0, 360.0}}, 220.0, 300.0},
        // IBM SP2 "Silver": 332 MHz PowerPC 604e, 2 FPUs -> 664 peak, 256 KB
        // L2; notoriously weak memory subsystem for its flop rate.
        {"SP2-Silver", 332.0, 664.0, 0.55,
         {{32 * 1024, 2650.0}, {256 * 1024, 1300.0}, {0, 430.0}}, 260.0, 190.0},
        // IBM SP2 "Thin2": 66 MHz Power2, 2 FMA/cycle -> 264 peak; the wide
        // 128-bit bus streams well but chained access pays 66 MHz latencies.
        {"SP2-Thin2", 66.0, 264.0, 0.85,
         {{128 * 1024, 1050.0}, {0, 620.0}}, 180.0, 170.0},
        // P2SC "Thin4": 160 MHz, 2 FMA/cycle -> 640 peak, 128 KB L1.
        {"P2SC", 160.0, 640.0, 0.9,
         {{128 * 1024, 2560.0}, {0, 1150.0}}, 190.0, 345.0},
        // SGI Onyx2: 195 MHz R10000, madd -> 390 peak, 32 KB L1, 4 MB L2.
        {"Onyx2", 195.0, 390.0, 0.8,
         {{32 * 1024, 1560.0}, {4 * 1024 * 1024, 780.0}, {0, 310.0}}, 240.0, 240.0},
        // NCSA Origin 2000: 250 MHz R10000 -> 500 peak, 4 MB L2.
        {"NCSA", 250.0, 500.0, 0.8,
         {{32 * 1024, 2000.0}, {4 * 1024 * 1024, 1000.0}, {0, 340.0}}, 240.0, 290.0},
        // Fujitsu AP3000: 300 MHz UltraSPARC-II -> 600 peak, 16 KB L1, 1 MB L2.
        {"AP3000", 300.0, 600.0, 0.55,
         {{16 * 1024, 2400.0}, {1024 * 1024, 1200.0}, {0, 290.0}}, 260.0, 200.0},
        // Cray T3E-900: 450 MHz Alpha 21164A -> 900 peak; 8 KB L1 + 96 KB
        // SCACHE; STREAMS prefetch gives superb *streaming* bandwidth, but
        // chained access sees ordinary DRAM latency (hence Table 1's tie
        // with the PC).
        {"T3E", 450.0, 900.0, 0.75,
         {{8 * 1024, 3600.0}, {96 * 1024, 2700.0}, {0, 1200.0}}, 160.0, 300.0},
        // Hitachi SR8000 pseudo-vector CPU (appears only in the comm tests).
        {"HITACHI", 250.0, 1000.0, 0.85,
         {{128 * 1024, 4000.0}, {0, 2000.0}}, 200.0, 500.0},
    };
    return machines;
}

const MachineModel& by_name(const std::string& name) {
    const auto& r = roster();
    const auto it = std::find_if(r.begin(), r.end(),
                                 [&](const MachineModel& m) { return m.name == name; });
    if (it == r.end()) throw std::out_of_range("unknown machine: " + name);
    return *it;
}

} // namespace machine
