#include "machine/accelerator_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace machine {

double AcceleratorModel::transfer_seconds(std::size_t m_bytes) const noexcept {
    const double bw = link_bandwidth_mbps * 1e6;
    const double body = bw > 0.0 ? static_cast<double>(m_bytes) / bw : 0.0;
    return link_latency_us * 1e-6 + body;
}

double AcceleratorModel::offload_seconds(const KernelShape& k,
                                         std::size_t transfer_bytes) const noexcept {
    return predict_seconds(device, k) + transfer_seconds(transfer_bytes);
}

double AcceleratorModel::device_mflops(const KernelShape& k) const noexcept {
    return predict_mflops(device, k);
}

const std::vector<AcceleratorModel>& accelerator_roster() {
    // Device "clock" is only used for call-overhead conversion, so it is set
    // to 1000 MHz and the kernel-launch cost carried in the link latency
    // instead (a GPU launch costs ~5-10 us regardless of the kernel).  The
    // SRAM level models the combined shared-memory/L2 working set a blocked
    // dgemm keeps resident; HBM is the size-0 backstop.  FP64 ceilings:
    // P100 ~4.7 TF, V100 ~7 TF, A100 ~9.7 TF (19.5 TF only via tensor
    // cores, which plain dgemm-class code does not hit); sustained dgemm
    // reaches ~85-90% of those.  HBM STREAM: ~550, ~830, ~1400 GB/s.
    // Host links: PCIe gen3 x16 ~12 GB/s effective, gen4 x16 ~24 GB/s.
    static const std::vector<AcceleratorModel> accels = {
        {"P100",
         {"P100-HBM2", 1000.0, 4.7e6, 0.85,
          {{4 * 1024 * 1024, 550.0e3 * 4.0}, {0, 550.0e3}}, 0.0, 550.0e3},
         8.0, 12.0e3},
        {"V100",
         {"V100-HBM2", 1000.0, 7.0e6, 0.88,
          {{6 * 1024 * 1024, 830.0e3 * 4.0}, {0, 830.0e3}}, 0.0, 830.0e3},
         7.0, 12.0e3},
        {"A100",
         {"A100-HBM2e", 1000.0, 9.7e6, 0.9,
          {{40 * 1024 * 1024, 1400.0e3 * 4.0}, {0, 1400.0e3}}, 0.0, 1400.0e3},
         6.0, 24.0e3},
    };
    return accels;
}

const AcceleratorModel& accelerator_by_name(const std::string& name) {
    const auto& r = accelerator_roster();
    const auto it = std::find_if(r.begin(), r.end(),
                                 [&](const AcceleratorModel& a) { return a.name == name; });
    if (it == r.end()) throw std::out_of_range("unknown accelerator: " + name);
    return *it;
}

} // namespace machine
