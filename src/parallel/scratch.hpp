#pragma once

#include <cstddef>
#include <span>
#include <vector>

/// \file scratch.hpp
/// Thread-local scratch buffers for the elemental hot paths.
///
/// The per-element operators used to allocate `std::vector` temporaries on
/// every call (weak_inner's weighted-quadrature copy, the Helmholtz apply's
/// per-element blocks).  A `Scratch` borrows a buffer from a thread-local
/// free list and returns it on scope exit, so steady-state steps allocate
/// nothing.  Buffers keep their capacity between uses and their contents are
/// unspecified on acquisition.
namespace parallel {

class Scratch {
public:
    explicit Scratch(std::size_t n);
    ~Scratch();
    Scratch(const Scratch&) = delete;
    Scratch& operator=(const Scratch&) = delete;

    [[nodiscard]] double* data() noexcept { return buf_->data(); }
    [[nodiscard]] std::span<double> span() noexcept { return {buf_->data(), n_}; }
    [[nodiscard]] std::size_t size() const noexcept { return n_; }
    [[nodiscard]] double& operator[](std::size_t i) noexcept { return (*buf_)[i]; }

private:
    std::vector<double>* buf_;
    std::size_t n_;
};

} // namespace parallel
