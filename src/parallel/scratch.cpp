#include "parallel/scratch.hpp"

#include <memory>

namespace parallel {

namespace {

/// Per-thread stack of idle buffers.  Scratch objects are strictly scoped, so
/// a stack discipline (borrow the most recently returned buffer) keeps the
/// working set small and cache-warm.
std::vector<std::unique_ptr<std::vector<double>>>& free_list() {
    thread_local std::vector<std::unique_ptr<std::vector<double>>> list;
    return list;
}

} // namespace

Scratch::Scratch(std::size_t n) : n_(n) {
    auto& list = free_list();
    std::unique_ptr<std::vector<double>> buf;
    if (!list.empty()) {
        buf = std::move(list.back());
        list.pop_back();
    } else {
        buf = std::make_unique<std::vector<double>>();
    }
    if (buf->size() < n) buf->resize(n);
    buf_ = buf.release();
}

Scratch::~Scratch() { free_list().emplace_back(buf_); }

} // namespace parallel
