#pragma once

#include <cstddef>
#include <functional>
#include <memory>

/// \file thread_pool.hpp
/// A small reusable host-thread pool for intra-rank parallelism.
///
/// The paper's machines overlap nothing within a rank; on a modern host the
/// batched elemental operators and the per-Fourier-mode Helmholtz solves are
/// embarrassingly parallel, so the solvers split them across a fixed set of
/// worker threads.  Determinism contract: `parallel_for` partitions the index
/// range into contiguous chunks whose *contents* never depend on the thread
/// count a body observes — every index is processed by exactly one thread
/// with the same per-index operation sequence — so floating-point results are
/// bitwise independent of the pool size as long as the body itself does not
/// reduce across indices.
///
/// The blaslite operation counters are thread-local; the pool measures every
/// worker's counter delta and adds it back to the calling thread's counters
/// (in chunk order, integer sums — order-independent anyway) before
/// `parallel_for` returns.  Virtual-clock compute charging therefore stays
/// counter-derived and identical at 1 and N threads.
namespace parallel {

class ThreadPool {
public:
    /// `threads` is the total concurrency including the calling thread;
    /// the pool owns `threads - 1` workers.  0 is treated as 1.
    explicit ThreadPool(unsigned threads);
    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] unsigned size() const noexcept { return threads_; }

    /// Runs body(begin, end) over a partition of [0, n) into at most size()
    /// contiguous chunks.  The caller executes the first chunk; workers run
    /// the rest.  Blocks until every chunk finished.  The first exception
    /// (in chunk order) is rethrown on the caller.  Nested calls from inside
    /// a body run inline on the calling thread.
    void parallel_for(std::size_t n,
                      const std::function<void(std::size_t, std::size_t)>& body);

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
    unsigned threads_ = 1;
};

/// The process-wide pool, sized from the REPRO_THREADS environment variable
/// on first use (default 1: no host parallelism unless asked for).
ThreadPool& pool();

/// Rebuilds the global pool with `threads` total threads (tests and tools;
/// not thread-safe against concurrent pool() users).
void set_num_threads(unsigned threads);

/// Total threads the global pool runs with.
[[nodiscard]] unsigned num_threads();

} // namespace parallel
