#include "parallel/thread_pool.hpp"

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "blaslite/counters.hpp"
#include "obs/trace.hpp"

namespace parallel {

namespace {
thread_local bool in_parallel_region = false;
/// Which pool thread this is: 0 = the calling (external) thread, 1.. = the
/// pool's own workers.  Names the per-thread obs lane.
thread_local unsigned worker_index = 0;
} // namespace

struct ThreadPool::Impl {
    /// Held by the one external caller currently fanning out.  Concurrent
    /// callers (e.g. simulated-MPI rank threads, which are already host
    /// threads of their own) run their range inline instead of queueing:
    /// the pool's task list and pending counter belong to a single
    /// parallel_for at a time, and inline execution is bitwise identical
    /// anyway.
    std::mutex active;
    std::mutex m;
    std::condition_variable cv_work;
    std::condition_variable cv_done;
    std::deque<std::function<void()>> tasks;
    std::size_t pending = 0; ///< queued + running tasks of the active parallel_for
    bool stop = false;
    std::vector<std::thread> workers;

    void worker_loop(unsigned index) {
        in_parallel_region = true; // nested parallel_for from a body runs inline
        worker_index = index;
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock lk(m);
                cv_work.wait(lk, [&] { return stop || !tasks.empty(); });
                if (stop && tasks.empty()) return;
                task = std::move(tasks.front());
                tasks.pop_front();
            }
            task();
            {
                std::lock_guard lk(m);
                if (--pending == 0) cv_done.notify_all();
            }
        }
    }
};

ThreadPool::ThreadPool(unsigned threads) : impl_(std::make_unique<Impl>()) {
    threads_ = threads == 0 ? 1 : threads;
    impl_->workers.reserve(threads_ - 1);
    for (unsigned t = 1; t < threads_; ++t)
        impl_->workers.emplace_back([this, t] { impl_->worker_loop(t); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lk(impl_->m);
        impl_->stop = true;
    }
    impl_->cv_work.notify_all();
    for (auto& w : impl_->workers) w.join();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t, std::size_t)>& body) {
    if (n == 0) return;
    const std::size_t chunks = std::min<std::size_t>(threads_, n);
    if (chunks <= 1 || in_parallel_region) {
        body(0, n);
        return;
    }
    std::unique_lock active_lk(impl_->active, std::try_to_lock);
    if (!active_lk.owns_lock()) {
        body(0, n);
        return;
    }

    struct ChunkResult {
        blaslite::OpCounts counts;
        std::exception_ptr error;
    };
    std::vector<ChunkResult> results(chunks);

    const auto chunk_bounds = [&](std::size_t c) {
        return std::pair{c * n / chunks, (c + 1) * n / chunks};
    };
    const auto run_chunk = [&](std::size_t c) {
        const auto [b, e] = chunk_bounds(c);
        // Host-clock chunk span on the executing thread's lane (dropped in
        // virtual_only mode; the chunk->thread mapping is scheduler noise).
        obs::Lane* lane = nullptr;
        std::uint32_t span_name = 0;
        if (obs::active() && !obs::tracer().virtual_only()) {
            obs::Tracer& tr = obs::tracer();
            lane = tr.lane("worker " + std::to_string(worker_index));
            span_name = tr.intern("pool.chunk");
            char args[96];
            std::snprintf(args, sizeof(args), "\"chunk\":%zu,\"begin\":%zu,\"end\":%zu", c, b, e);
            tr.begin(lane, span_name, tr.host_now(), /*virtual_time=*/false, tr.intern(args));
        }
        blaslite::CountScope scope;
        try {
            body(b, e);
        } catch (...) {
            results[c].error = std::current_exception();
        }
        results[c].counts = scope.delta();
        if (lane != nullptr && obs::active())
            obs::tracer().end(lane, span_name, obs::tracer().host_now(), /*virtual_time=*/false);
    };

    {
        std::lock_guard lk(impl_->m);
        impl_->pending = chunks - 1;
        for (std::size_t c = 1; c < chunks; ++c)
            impl_->tasks.emplace_back([&run_chunk, c] { run_chunk(c); });
    }
    impl_->cv_work.notify_all();

    in_parallel_region = true;
    run_chunk(0);
    in_parallel_region = false;

    {
        std::unique_lock lk(impl_->m);
        impl_->cv_done.wait(lk, [&] { return impl_->pending == 0; });
    }

    // Fold the workers' thread-local operation counts into the caller's so
    // StageScope deltas (and with them the virtual-clock compute charges) are
    // identical at any thread count.  The caller's own chunk already charged
    // its counters live; re-add only its scoped delta's complement — i.e. add
    // back chunks 1..N-1 plus nothing for chunk 0.
    blaslite::OpCounts& mine = blaslite::thread_counts();
    for (std::size_t c = 1; c < chunks; ++c) mine += results[c].counts;

    for (std::size_t c = 0; c < chunks; ++c)
        if (results[c].error) std::rethrow_exception(results[c].error);
}

namespace {

unsigned env_threads() {
    if (const char* s = std::getenv("REPRO_THREADS")) {
        const long v = std::strtol(s, nullptr, 10);
        if (v > 0) return static_cast<unsigned>(v);
    }
    return 1;
}

std::unique_ptr<ThreadPool>& global_pool() {
    static std::unique_ptr<ThreadPool> p = std::make_unique<ThreadPool>(env_threads());
    return p;
}

} // namespace

ThreadPool& pool() { return *global_pool(); }

void set_num_threads(unsigned threads) {
    global_pool() = std::make_unique<ThreadPool>(threads);
}

unsigned num_threads() { return pool().size(); }

} // namespace parallel
