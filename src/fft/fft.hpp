#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

/// \file fft.hpp
/// Self-contained FFT library for the Fourier (homogeneous) direction of the
/// NekTar-F solver.  Power-of-two sizes use an iterative radix-2
/// Cooley-Tukey; every other size falls back to Bluestein's chirp-z
/// algorithm, so any plane count works.
namespace fft {

using cplx = std::complex<double>;

/// A reusable plan for length-n complex transforms (twiddle tables etc.).
/// Plans are immutable after construction and safe to share across threads.
class Plan {
public:
    explicit Plan(std::size_t n);

    [[nodiscard]] std::size_t size() const noexcept { return n_; }

    /// In-place forward DFT: X_k = sum_j x_j exp(-2*pi*i*j*k/n).
    void forward(std::span<cplx> x) const;

    /// In-place inverse DFT including the 1/n normalisation.
    void inverse(std::span<cplx> x) const;

private:
    void radix2(std::span<cplx> x, bool inv) const;
    void bluestein(std::span<cplx> x, bool inv) const;

    std::size_t n_ = 0;
    bool pow2_ = false;
    std::vector<cplx> twiddle_;       // radix-2 twiddles (forward sign)
    std::vector<std::size_t> rev_;    // bit reversal permutation
    // Bluestein workspace (sized m = next pow2 >= 2n-1)
    std::size_t m_ = 0;
    std::vector<cplx> chirp_;         // exp(-i*pi*k^2/n)
    std::vector<cplx> bfilter_fft_;   // FFT of the chirp filter
    std::vector<cplx> mtwiddle_;
    std::vector<std::size_t> mrev_;
    void radix2_m(std::span<cplx> x, bool inv) const;
};

/// One-shot helpers (construct a plan internally).
void forward(std::span<cplx> x);
void inverse(std::span<cplx> x);

/// Real-to-half-complex transform: given n real samples, returns the n/2+1
/// non-redundant spectrum coefficients (n must be even).
std::vector<cplx> rfft(const Plan& plan, std::span<const double> x);

/// Inverse of rfft; `spec` has n/2+1 entries, result has n real samples.
std::vector<double> irfft(const Plan& plan, std::span<const cplx> spec);

/// Number of real flops charged for a length-n complex FFT (5 n log2 n).
[[nodiscard]] std::size_t fft_flops(std::size_t n) noexcept;

} // namespace fft
