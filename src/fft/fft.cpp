#include "fft/fft.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

#include "blaslite/counters.hpp"

namespace fft {

namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_pow2(std::size_t n) {
    std::size_t m = 1;
    while (m < n) m <<= 1;
    return m;
}

std::vector<std::size_t> bit_reversal(std::size_t n) {
    std::vector<std::size_t> rev(n, 0);
    std::size_t bits = 0;
    while ((std::size_t{1} << bits) < n) ++bits;
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t r = 0;
        for (std::size_t b = 0; b < bits; ++b)
            if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (bits - 1 - b);
        rev[i] = r;
    }
    return rev;
}

std::vector<cplx> make_twiddles(std::size_t n) {
    // twiddle[n/2 .. n-1] style table: for each stage length len, entries at
    // [len/2, len) hold exp(-2 pi i k / len).
    std::vector<cplx> tw(n, cplx{1.0, 0.0});
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double ang = -2.0 * std::numbers::pi / static_cast<double>(len);
        for (std::size_t k = 0; k < len / 2; ++k)
            tw[len / 2 + k] = std::polar(1.0, ang * static_cast<double>(k));
    }
    return tw;
}

void radix2_core(std::span<cplx> x, bool inv, std::span<const cplx> tw,
                 std::span<const std::size_t> rev) {
    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i)
        if (i < rev[i]) std::swap(x[i], x[rev[i]]);
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const std::size_t half = len / 2;
        for (std::size_t base = 0; base < n; base += len) {
            for (std::size_t k = 0; k < half; ++k) {
                cplx w = tw[half + k];
                if (inv) w = std::conj(w);
                const cplx u = x[base + k];
                const cplx v = x[base + half + k] * w;
                x[base + k] = u + v;
                x[base + half + k] = u - v;
            }
        }
    }
}

} // namespace

std::size_t fft_flops(std::size_t n) noexcept {
    if (n < 2) return 0;
    const double l = std::log2(static_cast<double>(n));
    return static_cast<std::size_t>(5.0 * static_cast<double>(n) * l);
}

Plan::Plan(std::size_t n) : n_(n), pow2_(is_pow2(n)) {
    assert(n >= 1);
    if (pow2_) {
        twiddle_ = make_twiddles(n_);
        rev_ = bit_reversal(n_);
        return;
    }
    // Bluestein setup.
    m_ = next_pow2(2 * n_ - 1);
    mtwiddle_ = make_twiddles(m_);
    mrev_ = bit_reversal(m_);
    chirp_.resize(n_);
    for (std::size_t k = 0; k < n_; ++k) {
        // k^2 mod 2n keeps the argument bounded for large k.
        const std::size_t k2 = (k * k) % (2 * n_);
        chirp_[k] = std::polar(1.0, -std::numbers::pi * static_cast<double>(k2) /
                                        static_cast<double>(n_));
    }
    bfilter_fft_.assign(m_, cplx{0.0, 0.0});
    bfilter_fft_[0] = std::conj(chirp_[0]);
    for (std::size_t k = 1; k < n_; ++k) {
        bfilter_fft_[k] = std::conj(chirp_[k]);
        bfilter_fft_[m_ - k] = std::conj(chirp_[k]);
    }
    radix2_core(bfilter_fft_, false, mtwiddle_, mrev_);
}

void Plan::radix2(std::span<cplx> x, bool inv) const { radix2_core(x, inv, twiddle_, rev_); }

void Plan::radix2_m(std::span<cplx> x, bool inv) const { radix2_core(x, inv, mtwiddle_, mrev_); }

void Plan::bluestein(std::span<cplx> x, bool inv) const {
    if (inv) {
        // DFT^{-1}(x) = conj(DFT(conj(x))) / n; the caller applies the 1/n.
        for (auto& v : x) v = std::conj(v);
        bluestein(x, false);
        for (auto& v : x) v = std::conj(v);
        return;
    }
    std::vector<cplx> a(m_, cplx{0.0, 0.0});
    for (std::size_t k = 0; k < n_; ++k) a[k] = x[k] * chirp_[k];
    radix2_m(a, false);
    for (std::size_t k = 0; k < m_; ++k) a[k] *= bfilter_fft_[k];
    radix2_m(a, true);
    // radix2_core(inv=true) omits the 1/m normalisation; apply it here.
    const double invm = 1.0 / static_cast<double>(m_);
    for (std::size_t k = 0; k < n_; ++k) x[k] = a[k] * chirp_[k] * invm;
}

void Plan::forward(std::span<cplx> x) const {
    assert(x.size() == n_);
    if (n_ == 1) return;
    if (pow2_) {
        radix2(x, false);
    } else {
        bluestein(x, false);
    }
    blaslite::detail::charge(fft_flops(n_), n_ * sizeof(cplx), n_ * sizeof(cplx));
}

void Plan::inverse(std::span<cplx> x) const {
    assert(x.size() == n_);
    if (n_ == 1) return;
    if (pow2_) {
        radix2(x, true);
        const double inv = 1.0 / static_cast<double>(n_);
        for (auto& v : x) v *= inv;
    } else {
        bluestein(x, true);
        const double inv = 1.0 / static_cast<double>(n_);
        for (auto& v : x) v *= inv;
    }
    blaslite::detail::charge(fft_flops(n_), n_ * sizeof(cplx), n_ * sizeof(cplx));
}

void forward(std::span<cplx> x) { Plan(x.size()).forward(x); }
void inverse(std::span<cplx> x) { Plan(x.size()).inverse(x); }

std::vector<cplx> rfft(const Plan& plan, std::span<const double> x) {
    const std::size_t n = plan.size();
    assert(x.size() == n && n % 2 == 0);
    std::vector<cplx> buf(n);
    for (std::size_t i = 0; i < n; ++i) buf[i] = cplx{x[i], 0.0};
    plan.forward(buf);
    buf.resize(n / 2 + 1);
    return buf;
}

std::vector<double> irfft(const Plan& plan, std::span<const cplx> spec) {
    const std::size_t n = plan.size();
    assert(spec.size() == n / 2 + 1 && n % 2 == 0);
    std::vector<cplx> buf(n);
    for (std::size_t k = 0; k <= n / 2; ++k) buf[k] = spec[k];
    for (std::size_t k = n / 2 + 1; k < n; ++k) buf[k] = std::conj(spec[n - k]);
    plan.inverse(buf);
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = buf[i].real();
    return out;
}

} // namespace fft
