#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "simmpi/simmpi.hpp"

/// \file gather_scatter.hpp
/// Tufo-Fischer "Gather-Scatter" (GS) library.
///
/// The NekTar-ALE communication interface "allows for the treatment of all
/// the communications using a 'binary-tree' algorithm, 'pairwise' exchanges,
/// or a mix of these two.  Pairwise exchange is used for communicating values
/// shared by only a few processors, while the 'binary-tree' approach is used
/// for values shared by many processors" (paper §4.2.2, citing Tufo 1998).
///
/// Each rank presents its local degrees of freedom as a list of global ids;
/// gs_sum() then replaces every local value by the sum of that global dof's
/// contributions across all ranks — i.e. the parallel direct-stiffness
/// assembly PCG needs after each local matrix-vector product.
namespace gs {

class GatherScatter {
public:
    /// Exchange strategy: Auto is Tufo-Fischer's mix (pairwise for dofs
    /// shared by exactly two ranks, tree for the rest); TreeOnly pushes
    /// everything through the packed tree reduction — the ablation baseline
    /// the mix is measured against.
    enum class Strategy { Auto, TreeOnly };

    /// How the pairwise stage moves its payloads: Blocking runs one
    /// sendrecv per partner; Nonblocking posts every partner's receive up
    /// front and overlaps each partner's packing with the transfers already
    /// in flight (isend/irecv).  Both orders apply the neighbour sums
    /// identically, so the results are bit-identical.
    enum class Exchange { Blocking, Nonblocking };

    /// Collective: every rank of `comm` must call this with its own id list.
    /// Ids may be any non-negative 64-bit values; a rank must not list the
    /// same id twice.
    GatherScatter(simmpi::Comm& comm, std::span<const std::int64_t> global_ids,
                  Strategy strategy = Strategy::Auto,
                  Exchange exchange = Exchange::Nonblocking);

    void set_exchange(Exchange e) noexcept { exchange_ = e; }
    [[nodiscard]] Exchange exchange() const noexcept { return exchange_; }

    /// Collective in-place assembly: values[i] becomes the global sum over
    /// every rank holding global_ids[i].
    void sum(simmpi::Comm& comm, std::span<double> values) const;

    /// Number of dofs exchanged pairwise / through the tree (diagnostics).
    [[nodiscard]] std::size_t pairwise_dofs() const noexcept { return n_pairwise_; }
    [[nodiscard]] std::size_t tree_dofs() const noexcept { return tree_local_.size(); }

private:
    struct Partner {
        int rank = -1;
        /// Local indices shared with exactly this one other rank, ordered by
        /// global id on both sides so payloads align.
        std::vector<std::size_t> indices;
    };

    Exchange exchange_ = Exchange::Nonblocking;
    std::vector<Partner> partners_;          ///< pairwise exchange lists
    std::vector<std::size_t> tree_local_;    ///< local index of each tree dof
    std::vector<std::size_t> tree_slot_;     ///< its slot in the packed tree vector
    std::size_t tree_size_ = 0;              ///< packed vector length (all ranks)
    std::size_t n_pairwise_ = 0;
};

} // namespace gs
