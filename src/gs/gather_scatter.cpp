#include "gs/gather_scatter.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>

#include "obs/trace.hpp"

namespace gs {

GatherScatter::GatherScatter(simmpi::Comm& comm, std::span<const std::int64_t> global_ids,
                             Strategy strategy, Exchange exchange)
    : exchange_(exchange) {
    const int p = comm.size();
    const int me = comm.rank();

    // Exchange everybody's id list (padded to a common length; ids fit
    // exactly in doubles below 2^53).
    const double maxlen_d =
        comm.allreduce_max(static_cast<double>(global_ids.size()));
    const std::size_t maxlen = static_cast<std::size_t>(maxlen_d);
    std::vector<double> mine(maxlen, -1.0);
    for (std::size_t i = 0; i < global_ids.size(); ++i) {
        if (global_ids[i] < 0) throw std::invalid_argument("gs: negative global id");
        mine[i] = static_cast<double>(global_ids[i]);
    }
    std::vector<double> all;
    comm.gather(mine, all, 0);
    all.resize(static_cast<std::size_t>(p) * maxlen);
    comm.bcast(all, 0);

    // gid -> sorted list of holding ranks.
    std::map<std::int64_t, std::vector<int>> holders;
    for (int r = 0; r < p; ++r) {
        for (std::size_t i = 0; i < maxlen; ++i) {
            const double v = all[static_cast<std::size_t>(r) * maxlen + i];
            if (v < 0.0) continue;
            holders[static_cast<std::int64_t>(v)].push_back(r);
        }
    }

    // Slots of the packed tree vector: identical on all ranks because it is
    // derived from the same gathered data.
    std::map<std::int64_t, std::size_t> tree_slot_of;
    const std::size_t pairwise_limit = strategy == Strategy::TreeOnly ? 1 : 2;
    for (const auto& [gid, ranks] : holders) {
        if (ranks.size() > pairwise_limit) tree_slot_of.emplace(gid, tree_slot_of.size());
    }
    tree_size_ = tree_slot_of.size();

    // Local index of each of my gids.
    std::map<std::int64_t, std::size_t> local_of;
    for (std::size_t i = 0; i < global_ids.size(); ++i) local_of[global_ids[i]] = i;

    std::map<int, std::vector<std::pair<std::int64_t, std::size_t>>> by_partner;
    for (const auto& [gid, ranks] : holders) {
        if (std::find(ranks.begin(), ranks.end(), me) == ranks.end()) continue;
        const auto lit = local_of.find(gid);
        if (lit == local_of.end()) continue;
        if (ranks.size() == 2 && pairwise_limit == 2) {
            const int other = ranks[0] == me ? ranks[1] : ranks[0];
            by_partner[other].emplace_back(gid, lit->second);
        } else if (ranks.size() > pairwise_limit) {
            tree_local_.push_back(lit->second);
            tree_slot_.push_back(tree_slot_of.at(gid));
        }
    }
    for (auto& [rank, list] : by_partner) {
        std::sort(list.begin(), list.end()); // by gid: both sides align
        Partner pt;
        pt.rank = rank;
        for (const auto& [gid, idx] : list) {
            (void)gid;
            pt.indices.push_back(idx);
        }
        n_pairwise_ += pt.indices.size();
        partners_.push_back(std::move(pt));
    }
}

void GatherScatter::sum(simmpi::Comm& comm, std::span<double> values) const {
    // The whole exchange as one span on this rank's lane; the Comm spans of
    // the sends/waits/allreduce nest inside it.
    obs::Lane* trace_lane = nullptr;
    std::uint32_t trace_name = 0;
    if (obs::active()) {
        obs::Tracer& tr = obs::tracer();
        trace_lane = tr.lane("rank " + std::to_string(comm.rank()));
        trace_name = tr.intern(exchange_ == Exchange::Nonblocking ? "gs.sum.nonblocking"
                                                                  : "gs.sum.blocking");
        tr.begin(trace_lane, trace_name, comm.wall_time(), /*virtual_time=*/true);
    }
    // Pairwise stage.
    if (exchange_ == Exchange::Nonblocking && !partners_.empty()) {
        // Post every partner's receive, then pack and ship each payload —
        // packing partner k+1 overlaps the transfers already in flight.
        // Sums apply in partners_ order, exactly like the blocking loop, so
        // the two modes are bit-identical.
        const std::size_t np = partners_.size();
        std::vector<std::vector<double>> send(np), recv(np);
        std::vector<simmpi::Request> reqs(np);
        for (std::size_t k = 0; k < np; ++k) {
            recv[k].resize(partners_[k].indices.size());
            reqs[k] = comm.irecv(partners_[k].rank, /*tag=*/917, recv[k]);
        }
        for (std::size_t k = 0; k < np; ++k) {
            const Partner& pt = partners_[k];
            send[k].resize(pt.indices.size());
            for (std::size_t i = 0; i < pt.indices.size(); ++i)
                send[k][i] = values[pt.indices[i]];
            comm.isend(pt.rank, /*tag=*/917, send[k]);
        }
        for (std::size_t k = 0; k < np; ++k) {
            const Partner& pt = partners_[k];
            comm.wait(reqs[k]);
            for (std::size_t i = 0; i < pt.indices.size(); ++i)
                values[pt.indices[i]] += recv[k][i];
        }
    } else {
        std::vector<double> sendbuf, recvbuf;
        for (const Partner& pt : partners_) {
            sendbuf.resize(pt.indices.size());
            recvbuf.resize(pt.indices.size());
            for (std::size_t i = 0; i < pt.indices.size(); ++i)
                sendbuf[i] = values[pt.indices[i]];
            comm.sendrecv(pt.rank, /*tag=*/917, sendbuf, recvbuf);
            for (std::size_t i = 0; i < pt.indices.size(); ++i)
                values[pt.indices[i]] += recvbuf[i];
        }
    }
    // Tree stage: packed allreduce over the widely shared dofs.
    if (tree_size_ > 0) {
        std::vector<double> packed(tree_size_, 0.0);
        for (std::size_t i = 0; i < tree_local_.size(); ++i)
            packed[tree_slot_[i]] = values[tree_local_[i]];
        comm.allreduce_sum(packed);
        for (std::size_t i = 0; i < tree_local_.size(); ++i)
            values[tree_local_[i]] = packed[tree_slot_[i]];
    }
    if (trace_lane != nullptr && obs::active())
        obs::tracer().end(trace_lane, trace_name, comm.wall_time(), /*virtual_time=*/true);
}

} // namespace gs
