#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file scenario.hpp
/// The canonical `lab::ScenarioRequest`: ONE versioned value type that
/// describes a run — machine x network x solver x P x fault profile x
/// backend — and is the single way clients, benches and the cluster-lab
/// service talk about one (DESIGN.md §5.9).
///
/// Canonicalisation contract:
///   * `canonical_json()` emits every field, in sorted key order, with a
///     fixed numeric format — two requests describing the same run always
///     serialize to the same bytes, regardless of how they were built.
///   * `parse()` accepts the fields in any order, fills defaults for absent
///     ones, and REJECTS unknown fields, wrong types and out-of-range enum
///     values with a lab::ParseError naming the offender.  parse() then
///     canonical_json() is therefore a normalising round trip.
///   * `fingerprint()` is FNV-1a over the canonical bytes; `store_key()` is
///     its 16-hex-digit rendering.  Because served RunReports are
///     byte-deterministic functions of the request (PR 5/6), the key is a
///     perfect memoisation key for the RunReport store.
namespace lab {

struct ScenarioRequest {
    /// Bump when a field changes meaning or serialization incompatibly.
    static constexpr int kSchemaVersion = 1;

    std::string bench;     ///< requesting tool/bench id ("" = ad-hoc query)
    std::string machine;   ///< machine::by_name key; for bench sweeps a
                           ///< substring filter ("" = all machines)
    std::string net;       ///< netsim::by_name key / sweep filter ("" = all)
    int ranks = 0;         ///< processor count P (0 = the bench's default sweep)
    std::uint64_t seed = 0;   ///< fault-model / synthetic-input seed
    bool smoke = false;       ///< CI-sized sweep
    std::string solver;    ///< "" | "serial" | "fourier" | "ale"
    std::string fidelity = "model"; ///< "model" (analytic) | "measured" (probe run)
    std::string backend;   ///< "" | "dense" | "sumfact" compute backend
    std::string fault;     ///< named fault profile (fault_profiles.hpp; "" = clean)
    std::string transpose; ///< "" | "slab" | "pencil" (fourier decomposition)
    double dof_per_rank = 0.0; ///< problem size per processor (0 = default)
    int steps = 0;         ///< steady time steps for measured fidelity (0 = default)

    /// Canonical JSON encoding: one object, all fields present, keys sorted.
    [[nodiscard]] std::string canonical_json() const;

    /// FNV-1a (64-bit) over canonical_json().
    [[nodiscard]] std::uint64_t fingerprint() const;

    /// fingerprint() as 16 lowercase hex digits — the RunReport store key.
    [[nodiscard]] std::string store_key() const;

    /// Parses a request from JSON text (any field order; absent fields keep
    /// their defaults).  Throws lab::ParseError on syntax errors, unknown
    /// fields, wrong types, or values validate() rejects.
    [[nodiscard]] static ScenarioRequest parse(const std::string& json);

    /// Throws lab::ParseError unless every enum-like field holds one of its
    /// documented values and every count is non-negative.
    void validate() const;

    /// Sweep-filter semantics shared by every bench: true when the filter
    /// field is empty or `name` contains it as a substring.  This replaces
    /// the free-form benchutil::Cli::matches() lookups.
    [[nodiscard]] bool selects_machine(const std::string& name) const {
        return machine.empty() || name.find(machine) != std::string::npos;
    }
    [[nodiscard]] bool selects_net(const std::string& name) const {
        return net.empty() || name.find(net) != std::string::npos;
    }

    /// Processor-count sweep after the `ranks` restriction (ranks > 0 pins
    /// the sweep to exactly that P).
    [[nodiscard]] std::vector<int> rank_sweep(std::vector<int> defaults) const {
        if (ranks > 0) return {ranks};
        return defaults;
    }

    bool operator==(const ScenarioRequest&) const = default;
};

} // namespace lab
