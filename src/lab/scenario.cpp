#include "lab/scenario.hpp"

#include <cmath>
#include <cstdio>

#include "ckpt/checkpoint.hpp"
#include "lab/json.hpp"

namespace lab {

namespace {

void esc(std::string& out, const std::string& s) {
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

void kv_str(std::string& out, const char* key, const std::string& v) {
    out += '"';
    out += key;
    out += "\":\"";
    esc(out, v);
    out += "\",";
}

void kv_u64(std::string& out, const char* key, std::uint64_t v) {
    out += '"';
    out += key;
    out += "\":";
    out += std::to_string(v);
    out += ',';
}

void kv_f64(std::string& out, const char* key, double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += '"';
    out += key;
    out += "\":";
    out += buf;
    out += ',';
}

/// Reads a non-negative integer field that our writers emit as a bare
/// integer token (doubles representing them exactly up to 2^53).
std::uint64_t as_count(const Json& v, const char* field) {
    const double d = v.as_number();
    if (d < 0.0 || d != std::floor(d))
        throw ParseError(std::string("field \"") + field +
                         "\" must be a non-negative integer");
    return static_cast<std::uint64_t>(d);
}

bool one_of(const std::string& v, std::initializer_list<const char*> allowed) {
    for (const char* a : allowed)
        if (v == a) return true;
    return false;
}

} // namespace

std::string ScenarioRequest::canonical_json() const {
    // Keys in sorted order, every field always present: the canonical bytes.
    std::string out = "{";
    kv_str(out, "backend", backend);
    kv_str(out, "bench", bench);
    kv_f64(out, "dof_per_rank", dof_per_rank);
    kv_str(out, "fault", fault);
    kv_str(out, "fidelity", fidelity);
    kv_str(out, "machine", machine);
    kv_str(out, "net", net);
    kv_u64(out, "ranks", static_cast<std::uint64_t>(ranks));
    kv_u64(out, "schema", static_cast<std::uint64_t>(kSchemaVersion));
    kv_u64(out, "seed", seed);
    out += smoke ? "\"smoke\":true," : "\"smoke\":false,";
    kv_str(out, "solver", solver);
    kv_u64(out, "steps", static_cast<std::uint64_t>(steps));
    kv_str(out, "transpose", transpose);
    out.back() = '}';
    return out;
}

std::uint64_t ScenarioRequest::fingerprint() const {
    ckpt::Fingerprint fp;
    fp.add(canonical_json());
    return fp.value();
}

std::string ScenarioRequest::store_key() const {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fingerprint()));
    return buf;
}

ScenarioRequest ScenarioRequest::parse(const std::string& json) {
    const Json doc = Json::parse(json);
    if (!doc.is_object()) throw ParseError("a ScenarioRequest must be a JSON object");
    ScenarioRequest req;
    for (const auto& [key, value] : doc.as_object()) {
        if (key == "schema") {
            if (as_count(value, "schema") != static_cast<std::uint64_t>(kSchemaVersion))
                throw ParseError("unsupported ScenarioRequest schema " +
                                 std::to_string(value.as_number()) + " (this build speaks " +
                                 std::to_string(kSchemaVersion) + ")");
        } else if (key == "bench") {
            req.bench = value.as_string();
        } else if (key == "machine") {
            req.machine = value.as_string();
        } else if (key == "net") {
            req.net = value.as_string();
        } else if (key == "ranks") {
            req.ranks = static_cast<int>(as_count(value, "ranks"));
        } else if (key == "seed") {
            req.seed = as_count(value, "seed");
        } else if (key == "smoke") {
            req.smoke = value.as_bool();
        } else if (key == "solver") {
            req.solver = value.as_string();
        } else if (key == "fidelity") {
            req.fidelity = value.as_string();
        } else if (key == "backend") {
            req.backend = value.as_string();
        } else if (key == "fault") {
            req.fault = value.as_string();
        } else if (key == "transpose") {
            req.transpose = value.as_string();
        } else if (key == "dof_per_rank") {
            req.dof_per_rank = value.as_number();
        } else if (key == "steps") {
            req.steps = static_cast<int>(as_count(value, "steps"));
        } else {
            throw ParseError("unknown ScenarioRequest field \"" + key + "\"");
        }
    }
    req.validate();
    return req;
}

void ScenarioRequest::validate() const {
    if (!one_of(solver, {"", "serial", "fourier", "ale"}))
        throw ParseError("solver must be one of \"\", \"serial\", \"fourier\", \"ale\"; got \"" +
                         solver + "\"");
    if (!one_of(fidelity, {"model", "measured"}))
        throw ParseError("fidelity must be \"model\" or \"measured\"; got \"" + fidelity + "\"");
    if (!one_of(backend, {"", "dense", "sumfact"}))
        throw ParseError("backend must be one of \"\", \"dense\", \"sumfact\"; got \"" +
                         backend + "\"");
    if (!one_of(transpose, {"", "slab", "pencil"}))
        throw ParseError("transpose must be one of \"\", \"slab\", \"pencil\"; got \"" +
                         transpose + "\"");
    if (ranks < 0) throw ParseError("ranks must be >= 0");
    if (steps < 0) throw ParseError("steps must be >= 0");
    if (!(dof_per_rank >= 0.0) || !std::isfinite(dof_per_rank))
        throw ParseError("dof_per_rank must be finite and >= 0");
}

} // namespace lab
