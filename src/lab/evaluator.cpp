#include "lab/evaluator.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "compute/backend.hpp"
#include "lab/fault_profiles.hpp"
#include "lab/json.hpp"
#include "lab/pricing.hpp"
#include "machine/machine_model.hpp"
#include "mesh/generators.hpp"
#include "nektar/ns_fourier.hpp"
#include "nektar/ns_serial.hpp"
#include "netsim/netmodel.hpp"

namespace lab {

namespace {

const machine::MachineModel& resolve_machine(const std::string& name) {
    if (name.empty())
        throw ParseError("this query needs a machine: set \"machine\" to a "
                         "machine::roster() name");
    try {
        return machine::by_name(name);
    } catch (const std::out_of_range&) {
        throw ParseError("unknown machine \"" + name + "\"");
    }
}

const netsim::NetworkModel& resolve_net(const std::string& name) {
    try {
        return netsim::by_name(name);
    } catch (const std::out_of_range&) {
        throw ParseError("unknown network \"" + name + "\"");
    }
}

compute::BackendKind resolve_backend(const std::string& name) {
    if (name.empty()) return compute::BackendKind::Auto;
    return compute::parse_backend(name); // "dense"/"sumfact"; pre-validated
}

/// Near-square factorisation of P for the pencil transpose model.
void pencil_grid(int nprocs, int& rows, int& cols) {
    rows = static_cast<int>(std::sqrt(static_cast<double>(nprocs)));
    while (rows > 1 && nprocs % rows != 0) --rows;
    cols = nprocs / rows;
}

/// Skeleton every evaluation shares: the request echo, the miss-marked
/// cache block and the descriptive meta strings.
perf::RunReport base_report(const ScenarioRequest& req) {
    perf::RunReport rep;
    rep.bench = req.bench.empty() ? "lab_scenario" : req.bench;
    rep.backend = req.backend;
    rep.request_json = req.canonical_json();
    rep.store_key = req.store_key();
    rep.cache_hit = false;
    rep.meta["source"] = "lab";
    rep.meta["fidelity"] = req.fidelity;
    if (!req.machine.empty()) rep.meta["machine"] = req.machine;
    if (!req.net.empty()) rep.meta["net"] = req.net;
    if (!req.fault.empty()) rep.meta["fault"] = req.fault;
    if (!req.solver.empty()) rep.meta["solver"] = req.solver;
    return rep;
}

netsim::NetworkModel probe_net() {
    netsim::NetworkModel probe; // any model; timings are re-priced later
    probe.name = "probe";
    probe.latency_us = 10.0;
    probe.bandwidth_mbps = 100.0;
    return probe;
}

} // namespace

perf::RunReport Evaluator::evaluate(const ScenarioRequest& req) {
    req.validate();
    return req.fidelity == "measured" ? evaluate_measured(req) : evaluate_model(req);
}

perf::RunReport Evaluator::evaluate_model(const ScenarioRequest& req) const {
    const auto& m = resolve_machine(req.machine);
    const int nprocs = req.ranks > 0 ? req.ranks : 8;
    const double dof = req.dof_per_rank > 0.0 ? req.dof_per_rank : 461000.0;

    // The cluster_advisor cost model: ~60 flops and ~48 bytes of
    // latency-bound solver traffic per dof per step (calibrated on the
    // Table 1 runs), plus the Alltoall transposes of the nonlinear step.
    machine::KernelShape solver;
    solver.flops = 60.0 * dof;
    solver.bytes = 48.0 * dof;
    solver.working_set = 1u << 30;
    solver.compute_efficiency = 0.6;
    solver.latency_bound = true;
    const double compute = machine::predict_seconds(m, solver);

    double comm = 0.0, poll = 0.0;
    if (!req.net.empty()) {
        const auto& net = resolve_net(req.net);
        poll = net.cpu_poll_fraction;
        const auto msg = static_cast<std::size_t>(dof * 8.0 / nprocs);
        // ~6 transposes of the per-proc field per step; the pencil variant
        // trades the P-wide exchange for two sqrt(P)-wide staged ones.
        if (req.transpose == "pencil") {
            int rows = 1, cols = nprocs;
            pencil_grid(nprocs, rows, cols);
            const auto s1 = static_cast<std::size_t>(dof * 8.0 / cols);
            const auto s2 = static_cast<std::size_t>(dof * 8.0 / rows);
            comm = 6.0 * net.hierarchical_alltoall_seconds(rows, cols, s1, s2);
        } else {
            comm = 6.0 * net.alltoall_seconds(nprocs, msg);
        }
    }
    const netsim::FaultModel fault = fault_by_name(req.fault, req.seed);
    const double inflation = comm > 0.0 ? fault.expected_inflation(comm) : 1.0;
    const double wall = compute + comm * inflation;
    const double cpu = compute + comm * inflation * poll;

    perf::RunReport rep = base_report(req);
    perf::Case kase;
    kase.labels["fidelity"] = "model";
    kase.labels["machine"] = req.machine;
    if (!req.net.empty()) kase.labels["net"] = req.net;
    if (!req.fault.empty()) kase.labels["fault"] = req.fault;
    kase.values["nprocs"] = static_cast<double>(nprocs);
    kase.values["dof_per_rank"] = dof;
    kase.values["compute_seconds_per_step"] = compute;
    kase.values["comm_seconds_per_step"] = comm;
    kase.values["fault_inflation"] = inflation;
    kase.values["cpu_seconds_per_step"] = cpu;
    kase.values["wall_seconds_per_step"] = wall;
    rep.cases.push_back(std::move(kase));
    return rep;
}

const Evaluator::ProbeData& Evaluator::probe(const std::string& solver,
                                             const std::string& backend, int nprocs,
                                             int steady_steps) {
    const std::string key = solver + "/" + (backend.empty() ? "auto" : backend) + "/" +
                            std::to_string(nprocs) + "/" + std::to_string(steady_steps);
    std::lock_guard<std::mutex> lock(probe_mu_);
    const auto hit = probes_.find(key);
    if (hit != probes_.end()) return hit->second;

    ProbeData data;
    if (solver == "serial") {
        mesh::BluffBodyParams p;
        p.n_upstream = 6;
        p.n_wake = 10;
        p.n_body = 3;
        p.n_side = 4;
        const auto disc = std::make_shared<nektar::Discretization>(
            std::make_shared<mesh::Mesh>(mesh::bluff_body_mesh(p)), 6);
        nektar::SerialNsOptions opts;
        opts.dt = 2e-3;
        opts.viscosity = 0.01;
        opts.backend = resolve_backend(backend);
        opts.u_bc = [](double x, double y, double) {
            const bool body = std::abs(x) <= 0.5 + 1e-6 && std::abs(y) <= 0.5 + 1e-6;
            return body ? 0.0 : 1.0;
        };
        nektar::SerialNS2d ns(disc, opts);
        ns.set_initial([](double, double) { return 1.0; },
                       [](double, double) { return 0.0; });
        ns.step();
        ns.breakdown() = {};
        for (int s = 0; s < steady_steps; ++s) ns.step();
        data.bd = ns.breakdown();
        data.field_bytes = disc->quad_size() * sizeof(double);
        data.solver_bytes = disc->dofmap().num_global() *
                            (disc->dofmap().bandwidth() + 1) * sizeof(double);
    } else { // "fourier": the Table-2 weak-scaling probe, 2 planes per proc
        mesh::BluffBodyParams p;
        p.n_upstream = 4;
        p.n_wake = 6;
        p.n_body = 2;
        p.n_side = 3;
        const auto base_mesh = std::make_shared<mesh::Mesh>(mesh::bluff_body_mesh(p));
        const int bootstrap = 1;
        simmpi::World world(nprocs, probe_net());
        std::vector<perf::StageBreakdown> bds(static_cast<std::size_t>(nprocs));
        const auto reports = world.run([&](simmpi::Comm& c) {
            const auto disc = std::make_shared<nektar::Discretization>(base_mesh, 4);
            nektar::FourierNsOptions opts;
            opts.dt = 2e-3;
            opts.viscosity = 0.01;
            opts.num_modes = static_cast<std::size_t>(c.size());
            opts.backend = resolve_backend(backend);
            opts.u_bc = [](double x, double y, double) {
                const bool body = std::abs(x) <= 0.5 + 1e-6 && std::abs(y) <= 0.5 + 1e-6;
                return body ? 0.0 : 1.0;
            };
            nektar::FourierNS ns(disc, opts, &c);
            ns.set_initial(
                [](double, double, double z) { return 1.0 + 0.05 * std::sin(z); },
                [](double, double, double) { return 0.0; },
                [](double, double, double z) { return 0.05 * std::cos(z); });
            for (int s = 0; s < bootstrap; ++s) ns.step();
            ns.breakdown() = {};
            for (int s = 0; s < steady_steps; ++s) ns.step();
            bds[static_cast<std::size_t>(c.rank())] = ns.breakdown();
            if (c.rank() == 0) {
                data.field_bytes = 2 * disc->quad_size() * sizeof(double);
                data.solver_bytes = disc->dofmap().num_global() *
                                    (disc->dofmap().bandwidth() + 1) * sizeof(double);
            }
        });
        data.bd = bds[0];
        data.log = reports[0].log;
        // The log covers set_initial's nonlinear evaluation plus every step.
        data.comm_groups = static_cast<double>(1 + bootstrap + steady_steps);
    }
    return probes_.emplace(key, std::move(data)).first->second;
}

perf::RunReport Evaluator::evaluate_measured(const ScenarioRequest& req) {
    if (req.solver != "serial" && req.solver != "fourier")
        throw ParseError("measured fidelity needs solver \"serial\" or \"fourier\" "
                         "(got \"" + req.solver + "\")");
    const auto& m = resolve_machine(req.machine);
    const bool parallel = req.solver == "fourier";
    if (parallel && req.net.empty())
        throw ParseError("measured fourier queries need a \"net\" to price the "
                         "transposes on");
    const int nprocs = parallel ? (req.ranks > 0 ? req.ranks : 4) : 1;
    const int steady = req.steps > 0 ? req.steps : (parallel ? 2 : 3);

    const ProbeData& data = probe(req.solver, req.backend, nprocs, steady);
    const auto shapes = app_model::solver_shapes(data.field_bytes, data.solver_bytes);
    const auto comp = app_model::compute_stage_seconds(data.bd, m, shapes);
    double cpu = 0.0;
    for (std::size_t s = 1; s <= perf::kNumStages; ++s) cpu += comp[s];
    cpu /= data.bd.steps > 0 ? data.bd.steps : 1;

    double comm = 0.0, poll = 0.0;
    if (parallel) {
        const auto& net = resolve_net(req.net);
        poll = net.cpu_poll_fraction;
        comm = simmpi::price_log(data.log, net, nprocs) / data.comm_groups;
    }
    const netsim::FaultModel fault = fault_by_name(req.fault, req.seed);
    const double inflation = comm > 0.0 ? fault.expected_inflation(comm) : 1.0;
    const double wall = cpu + comm * inflation;
    const double cpu_total = cpu + comm * inflation * poll;

    perf::RunReport rep = base_report(req);
    // Stage rows from the probe's instrumented breakdown (host times are
    // masked by to_canonical_json, so the stored bytes stay deterministic);
    // the global metrics snapshot is deliberately left out.
    perf::RunReport probe_rep =
        perf::report(rep.bench, &data.bd, nullptr, /*with_global_metrics=*/false);
    rep.steps = probe_rep.steps;
    rep.stages = std::move(probe_rep.stages);
    rep.metrics = std::move(probe_rep.metrics);

    perf::Case kase;
    kase.labels["fidelity"] = "measured";
    kase.labels["solver"] = req.solver;
    kase.labels["machine"] = req.machine;
    if (!req.net.empty()) kase.labels["net"] = req.net;
    if (!req.fault.empty()) kase.labels["fault"] = req.fault;
    kase.values["nprocs"] = static_cast<double>(nprocs);
    kase.values["steady_steps"] = static_cast<double>(steady);
    kase.values["compute_seconds_per_step"] = cpu;
    kase.values["comm_seconds_per_step"] = comm;
    kase.values["fault_inflation"] = inflation;
    kase.values["cpu_seconds_per_step"] = cpu_total;
    kase.values["wall_seconds_per_step"] = wall;
    rep.cases.push_back(std::move(kase));
    return rep;
}

std::size_t Evaluator::probe_runs() const {
    std::lock_guard<std::mutex> lock(probe_mu_);
    return probes_.size();
}

} // namespace lab
