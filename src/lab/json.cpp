#include "lab/json.hpp"

#include <cctype>
#include <cstdlib>

namespace lab {

namespace {

[[noreturn]] void fail(const std::string& what, std::size_t pos) {
    throw ParseError(what + " at byte " + std::to_string(pos));
}

} // namespace

class Parser {
public:
    explicit Parser(const std::string& text) : s_(text) {}

    Json run() {
        Json v = value();
        skip_ws();
        if (pos_ != s_.size()) fail("trailing garbage after JSON value", pos_);
        return v;
    }

private:
    const std::string& s_;
    std::size_t pos_ = 0;

    void skip_ws() {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    char peek() {
        if (pos_ >= s_.size()) fail("unexpected end of input", pos_);
        return s_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "', got '" + s_[pos_] + "'", pos_);
        ++pos_;
    }

    bool literal(const char* word) {
        std::size_t n = 0;
        while (word[n] != '\0') ++n;
        if (s_.compare(pos_, n, word) != 0) return false;
        pos_ += n;
        return true;
    }

    Json value() {
        skip_ws();
        const char c = peek();
        Json v;
        switch (c) {
        case '{': {
            v.kind_ = Json::Kind::Object;
            v.obj_ = std::make_shared<JsonObject>();
            ++pos_;
            skip_ws();
            if (peek() == '}') { ++pos_; return v; }
            for (;;) {
                skip_ws();
                const std::string key = string_body();
                skip_ws();
                expect(':');
                if (!v.obj_->emplace(key, value()).second)
                    throw ParseError("duplicate object key \"" + key + "\"");
                skip_ws();
                if (peek() == ',') { ++pos_; continue; }
                expect('}');
                return v;
            }
        }
        case '[': {
            v.kind_ = Json::Kind::Array;
            v.arr_ = std::make_shared<JsonArray>();
            ++pos_;
            skip_ws();
            if (peek() == ']') { ++pos_; return v; }
            for (;;) {
                v.arr_->push_back(value());
                skip_ws();
                if (peek() == ',') { ++pos_; continue; }
                expect(']');
                return v;
            }
        }
        case '"':
            v.kind_ = Json::Kind::String;
            v.str_ = string_body();
            return v;
        case 't':
            if (!literal("true")) fail("bad literal", pos_);
            v.kind_ = Json::Kind::Bool;
            v.bool_ = true;
            return v;
        case 'f':
            if (!literal("false")) fail("bad literal", pos_);
            v.kind_ = Json::Kind::Bool;
            v.bool_ = false;
            return v;
        case 'n':
            if (!literal("null")) fail("bad literal", pos_);
            v.kind_ = Json::Kind::Null;
            return v;
        default:
            return number();
        }
    }

    std::string string_body() {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= s_.size()) fail("unterminated string", pos_);
            const char c = s_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size()) fail("unterminated escape", pos_);
            const char e = s_[pos_++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos_ + 4 > s_.size()) fail("truncated \\u escape", pos_);
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = s_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                    else fail("bad \\u escape digit", pos_ - 1);
                }
                // UTF-8 encode the BMP code point (the repo's writers only
                // ever emit \u00xx control escapes; surrogates unsupported).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default: fail("unknown escape", pos_ - 1);
            }
        }
    }

    Json number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        if (pos_ == start || (pos_ == start + 1 && s_[start] == '-'))
            fail("expected a JSON value", start);
        const std::string tok = s_.substr(start, pos_ - start);
        char* end = nullptr;
        const double d = std::strtod(tok.c_str(), &end);
        if (end == nullptr || *end != '\0') fail("malformed number \"" + tok + "\"", start);
        Json v;
        v.kind_ = Json::Kind::Number;
        v.num_ = d;
        return v;
    }
};

Json Json::parse(const std::string& text) { return Parser(text).run(); }

bool Json::as_bool() const {
    if (kind_ != Kind::Bool) throw ParseError("expected a boolean");
    return bool_;
}

double Json::as_number() const {
    if (kind_ != Kind::Number) throw ParseError("expected a number");
    return num_;
}

const std::string& Json::as_string() const {
    if (kind_ != Kind::String) throw ParseError("expected a string");
    return str_;
}

const JsonArray& Json::as_array() const {
    if (kind_ != Kind::Array) throw ParseError("expected an array");
    return *arr_;
}

const JsonObject& Json::as_object() const {
    if (kind_ != Kind::Object) throw ParseError("expected an object");
    return *obj_;
}

const Json& Json::at(const std::string& key) const {
    const Json* v = find(key);
    if (v == nullptr) throw ParseError("missing key \"" + key + "\"");
    return *v;
}

const Json* Json::find(const std::string& key) const {
    if (kind_ != Kind::Object) throw ParseError("expected an object for key \"" + key + "\"");
    const auto it = obj_->find(key);
    return it == obj_->end() ? nullptr : &it->second;
}

} // namespace lab
