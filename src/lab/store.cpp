#include "lab/store.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace lab {

namespace fs = std::filesystem;

RunReportStore::RunReportStore(std::string dir) : dir_(std::move(dir)) {}

std::string RunReportStore::path_for(const std::string& key) const {
    return dir_ + "/" + key + ".json";
}

std::optional<std::string> RunReportStore::read_disk(const std::string& key) const {
    if (dir_.empty()) return std::nullopt;
    std::ifstream in(path_for(key), std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream body;
    body << in.rdbuf();
    return body.str();
}

std::optional<std::string> RunReportStore::get(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = mem_.find(key);
    if (it != mem_.end()) return it->second;
    auto disk = read_disk(key);
    if (disk) mem_.emplace(key, *disk);
    return disk;
}

bool RunReportStore::contains(const std::string& key) { return get(key).has_value(); }

void RunReportStore::put(const std::string& key, const std::string& canonical_bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    if (mem_.find(key) != mem_.end()) return; // first write wins
    if (!dir_.empty()) {
        if (read_disk(key)) { // adopt the existing on-disk entry
            mem_.emplace(key, *read_disk(key));
            return;
        }
        fs::create_directories(dir_);
        const std::string tmp = path_for(key) + ".tmp";
        {
            std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
            if (!out) throw std::runtime_error("RunReportStore: cannot write " + tmp);
            out << canonical_bytes;
        }
        fs::rename(tmp, path_for(key));
    }
    mem_.emplace(key, canonical_bytes);
}

std::vector<std::string> RunReportStore::keys() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::set<std::string> all;
    for (const auto& [k, v] : mem_) all.insert(k);
    if (!dir_.empty() && fs::exists(dir_)) {
        for (const auto& entry : fs::directory_iterator(dir_)) {
            const auto name = entry.path().filename().string();
            if (name.size() == 21 && name.compare(16, 5, ".json") == 0)
                all.insert(name.substr(0, 16));
        }
    }
    return {all.begin(), all.end()};
}

std::size_t RunReportStore::size() const { return keys().size(); }

} // namespace lab
