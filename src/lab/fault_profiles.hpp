#pragma once

#include <string>
#include <vector>

#include "netsim/faultmodel.hpp"

/// \file fault_profiles.hpp
/// Named interconnect fault profiles for ScenarioRequests.
///
/// A request names its unreliability assumption instead of carrying raw
/// FaultModel numbers: the name is part of the canonical encoding (and so of
/// the store key), while the calibration below can evolve with the models.
/// The profiles reproduce the cluster-advisor characterisation: commodity
/// TCP-over-ethernet retransmits and jitters (the shared Muses segment worst
/// of all), Myrinet's user-level stack is clean but its PC hosts straggle,
/// and the vendor fabrics with dedicated OS images barely misbehave.
namespace lab {

struct FaultProfile {
    std::string name;        ///< ScenarioRequest::fault key
    std::string description; ///< one-line characterisation
    netsim::FaultModel model;
};

/// All named profiles, sorted by name.  "clean" (and the empty string) is
/// the perfect network.
[[nodiscard]] const std::vector<FaultProfile>& fault_roster();

/// Profile lookup; "" means "clean".  Throws lab::ParseError (via a
/// std::runtime_error subclass) for unknown names.  When `seed` is nonzero
/// it replaces the profile's calibrated default seed, so requests can sweep
/// fault realisations without new profiles.
[[nodiscard]] netsim::FaultModel fault_by_name(const std::string& name,
                                               std::uint64_t seed = 0);

/// The advisor's five candidate platforms: a label, the machine/net model
/// keys, the characteristic fault profile and a rough 1999 acquisition cost
/// per processor — the cluster_advisor client builds its ScenarioRequests
/// from these.
struct PlatformPreset {
    std::string label;
    std::string machine;
    std::string network;
    std::string fault;         ///< fault_by_name key
    double cost_per_proc_kusd; ///< rough 1999 acquisition cost per processor
};

[[nodiscard]] const std::vector<PlatformPreset>& advisor_platforms();

} // namespace lab
