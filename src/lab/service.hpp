#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "lab/evaluator.hpp"
#include "lab/scenario.hpp"
#include "lab/store.hpp"

/// \file service.hpp
/// The cluster-lab scenario service: answer() maps a ScenarioRequest to its
/// canonical RunReport bytes, memoised in a RunReportStore.
///
/// Serving contract:
///   * The store holds to_canonical_json() bytes with the cache block
///     reading `"hit":false` — the value is a pure function of the request,
///     never of how it was served.  On a hit the service string-patches the
///     hit bit to true in the returned copy, so clients can see how they
///     were answered while mask_cache_hit() restores byte identity.
///   * Concurrent identical requests are single-flighted: one evaluates,
///     the rest wait on the store entry.  Distinct requests evaluate in
///     parallel (probe runs serialise internally; the analytic model path
///     is lock-free).
///   * Malformed or un-honourable requests never throw out of answer():
///     the Answer carries the error text, which the wire layer forwards.
namespace lab {

/// Rewrites the report's `"cache":{"hit":...}` bit in place (no reparse, so
/// the rest of the canonical bytes stay untouched).
[[nodiscard]] std::string set_cache_hit(std::string report_json, bool hit);

/// Normalises the hit bit to false: served-from-store and freshly-computed
/// copies of the same report compare byte-identical under this mask.
[[nodiscard]] std::string mask_cache_hit(std::string report_json);

struct Answer {
    std::string key;         ///< the request's store key ("" when parse failed)
    std::string report_json; ///< canonical RunReport bytes ("" on error)
    bool cache_hit = false;  ///< served from the store
    std::string error;       ///< nonempty iff the request could not be answered
};

class Service {
public:
    /// `store_dir` = "" keeps results memory-only for this service's
    /// lifetime; otherwise answers persist (and pre-existing entries are
    /// served) from `<store_dir>/<key>.json`.
    explicit Service(std::string store_dir = "");

    /// Answers one request, evaluating on a miss.
    [[nodiscard]] Answer answer(const ScenarioRequest& req);

    /// Parses request JSON then answers; parse failures come back as error
    /// Answers (the daemon's per-connection entry point).
    [[nodiscard]] Answer answer_json(const std::string& request_json);

    /// Answers a batch over the deterministic thread pool (parallel::pool());
    /// results are positionally aligned with `reqs`.
    [[nodiscard]] std::vector<Answer> answer_all(const std::vector<ScenarioRequest>& reqs);

    struct Stats {
        std::uint64_t queries = 0; ///< answer() calls that parsed
        std::uint64_t hits = 0;    ///< served from the store
        std::uint64_t misses = 0;  ///< evaluated (includes singleflight winners)
        std::uint64_t errors = 0;  ///< answered with an error
        [[nodiscard]] double hit_rate() const {
            const std::uint64_t served = hits + misses;
            return served == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(served);
        }
    };
    [[nodiscard]] Stats stats() const;

    [[nodiscard]] RunReportStore& store() noexcept { return store_; }
    [[nodiscard]] Evaluator& evaluator() noexcept { return eval_; }

private:
    RunReportStore store_;
    Evaluator eval_;

    std::mutex flight_mu_;
    std::condition_variable flight_cv_;
    std::set<std::string> inflight_;

    std::atomic<std::uint64_t> queries_{0}, hits_{0}, misses_{0}, errors_{0};
};

} // namespace lab
