#include "lab/wire.hpp"

#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace lab::wire {

namespace {

bool write_all(int fd, const char* data, std::size_t n) {
    while (n > 0) {
        const ssize_t w = ::write(fd, data, n);
        if (w <= 0) {
            if (w < 0 && errno == EINTR) continue;
            return false;
        }
        data += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

/// Reads exactly n bytes; 1 on success, 0 on clean EOF before any byte,
/// -1 on a mid-read EOF or error.
int read_all(int fd, char* data, std::size_t n) {
    bool any = false;
    while (n > 0) {
        const ssize_t r = ::read(fd, data, n);
        if (r < 0) {
            if (errno == EINTR) continue;
            return -1;
        }
        if (r == 0) return any ? -1 : 0;
        any = true;
        data += r;
        n -= static_cast<std::size_t>(r);
    }
    return 1;
}

std::string escape(const std::string& s) {
    std::string out;
    for (const char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            out += ' '; // control chars in error text add nothing
            continue;
        }
        out += c;
    }
    return out;
}

} // namespace

bool send_frame(int fd, const std::string& payload) {
    char header[8];
    std::memcpy(header, kMagic, 4);
    const auto n = static_cast<std::uint32_t>(payload.size());
    header[4] = static_cast<char>(n & 0xff);
    header[5] = static_cast<char>((n >> 8) & 0xff);
    header[6] = static_cast<char>((n >> 16) & 0xff);
    header[7] = static_cast<char>((n >> 24) & 0xff);
    return write_all(fd, header, sizeof(header)) &&
           write_all(fd, payload.data(), payload.size());
}

std::optional<std::string> recv_frame(int fd) {
    char header[8];
    const int got = read_all(fd, header, sizeof(header));
    if (got == 0) return std::nullopt; // clean EOF between frames
    if (got < 0) throw std::runtime_error("lab wire: truncated frame header");
    if (std::memcmp(header, kMagic, 4) != 0)
        throw std::runtime_error("lab wire: bad frame magic (peer is not a lab client)");
    const std::uint32_t n = static_cast<std::uint8_t>(header[4]) |
                            (static_cast<std::uint32_t>(static_cast<std::uint8_t>(header[5])) << 8) |
                            (static_cast<std::uint32_t>(static_cast<std::uint8_t>(header[6])) << 16) |
                            (static_cast<std::uint32_t>(static_cast<std::uint8_t>(header[7])) << 24);
    if (n > kMaxFrameBytes) throw std::runtime_error("lab wire: oversized frame");
    std::string payload(n, '\0');
    if (n > 0 && read_all(fd, payload.data(), n) != 1)
        throw std::runtime_error("lab wire: truncated frame payload");
    return payload;
}

int listen_unix(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("lab wire: socket path too long: " + path);
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("lab wire: socket() failed");
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        throw std::runtime_error("lab wire: cannot bind " + path);
    }
    if (::listen(fd, 64) != 0) {
        ::close(fd);
        throw std::runtime_error("lab wire: cannot listen on " + path);
    }
    return fd;
}

int connect_unix(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("lab wire: socket path too long: " + path);
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("lab wire: socket() failed");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        throw std::runtime_error("lab wire: cannot connect to " + path +
                                 " (is the daemon running?)");
    }
    return fd;
}

std::string response_payload(const Answer& answer) {
    if (answer.error.empty()) return answer.report_json;
    return "{\"error\":\"" + escape(answer.error) + "\"}";
}

void handle_connection(int fd, Service& svc) {
    try {
        for (;;) {
            const auto frame = recv_frame(fd);
            if (!frame) break;
            if (!send_frame(fd, response_payload(svc.answer_json(*frame)))) break;
        }
    } catch (const std::exception&) {
        // Protocol violation: drop the connection; the daemon stays up.
    }
}

void serve(int listen_fd, Service& svc, const std::atomic<bool>& stop) {
    std::vector<std::thread> workers;
    while (!stop.load(std::memory_order_relaxed)) {
        pollfd pfd{listen_fd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 200);
        if (ready <= 0) continue;
        const int conn = ::accept(listen_fd, nullptr, nullptr);
        if (conn < 0) continue;
        workers.emplace_back([conn, &svc] {
            handle_connection(conn, svc);
            ::close(conn);
        });
    }
    for (auto& w : workers) w.join();
}

std::string request(int fd, const std::string& request_json) {
    if (!send_frame(fd, request_json))
        throw std::runtime_error("lab wire: daemon hung up while sending");
    auto reply = recv_frame(fd);
    if (!reply) throw std::runtime_error("lab wire: daemon hung up before replying");
    return std::move(*reply);
}

} // namespace lab::wire
