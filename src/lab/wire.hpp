#pragma once

#include <atomic>
#include <optional>
#include <string>

#include "lab/service.hpp"

/// \file wire.hpp
/// The daemon/client wire protocol: length-prefixed JSON frames over an
/// AF_UNIX stream socket.
///
/// Frame layout: the 4-byte magic "RPL1", a u32 little-endian payload
/// length, then the payload bytes.  Requests are ScenarioRequest JSON;
/// responses are either the canonical RunReport bytes or an
/// `{"error":"..."}` object.  A connection carries any number of
/// request/response pairs in order; EOF from the client ends it.  The
/// framing is deliberately dumb — the interesting contract (canonical
/// requests, byte-deterministic answers) lives entirely in the payloads,
/// so the socketpair tests exercise the real serving path hermetically.
namespace lab::wire {

inline constexpr char kMagic[4] = {'R', 'P', 'L', '1'};
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

/// Writes one frame; returns false on a broken peer.
bool send_frame(int fd, const std::string& payload);

/// Reads one frame; nullopt on EOF.  Throws std::runtime_error on a
/// corrupt header (bad magic / oversized length) — the peer is not
/// speaking the protocol and the connection is unrecoverable.
[[nodiscard]] std::optional<std::string> recv_frame(int fd);

/// Binds + listens on a unix socket path (unlinking any stale file).
/// Returns the listening fd; throws std::runtime_error on failure.
[[nodiscard]] int listen_unix(const std::string& path);

/// Connects to a daemon's socket path; throws std::runtime_error.
[[nodiscard]] int connect_unix(const std::string& path);

/// Serves one established connection until EOF: for every request frame,
/// answers through `svc` and writes the report (or error JSON) back.
/// This is the per-connection body of serve() and the hermetic test entry.
void handle_connection(int fd, Service& svc);

/// Accept loop: every connection gets a thread running handle_connection.
/// Polls `stop` between accepts (~5 Hz) and returns once it is set;
/// in-flight connection threads are joined before returning.
void serve(int listen_fd, Service& svc, const std::atomic<bool>& stop);

/// Client round trip: frames `request_json`, awaits the response frame.
/// Throws std::runtime_error if the daemon hangs up mid-exchange.
[[nodiscard]] std::string request(int fd, const std::string& request_json);

/// Renders an Answer as a response payload: the report bytes on success,
/// an {"error":"..."} object otherwise.
[[nodiscard]] std::string response_payload(const Answer& answer);

} // namespace lab::wire
