#include "lab/fault_profiles.hpp"

#include "lab/json.hpp"

namespace lab {

namespace {

netsim::FaultModel profile(double loss, double timeout_us, double jitter_us,
                           double strag_frac, double strag_factor) {
    netsim::FaultModel f;
    f.seed = 1999; // the calibrated default; ScenarioRequest::seed overrides
    f.loss_probability = loss;
    f.retransmit_timeout_us = timeout_us;
    f.latency_jitter_us = jitter_us;
    f.straggler_fraction = strag_frac;
    f.straggler_factor = strag_factor;
    return f;
}

} // namespace

const std::vector<FaultProfile>& fault_roster() {
    static const std::vector<FaultProfile> r = {
        {"clean", "perfect network (no perturbation)", netsim::FaultModel{}},
        {"commodity-eth",
         "shared Fast Ethernet segment: TCP retransmits, collision jitter, slow PCs",
         profile(0.02, 800.0, 150.0, 0.25, 1.5)},
        {"myrinet", "user-level GM stack: clean wire, straggling PC hosts",
         profile(0.002, 120.0, 15.0, 0.12, 1.3)},
        {"vendor-sp2", "IBM SP2 switch with shared-node OS jitter",
         profile(0.0005, 60.0, 5.0, 0.02, 1.1)},
        {"vendor-origin", "SGI Origin interconnect, dedicated OS image",
         profile(0.0002, 30.0, 2.0, 0.02, 1.1)},
        {"vendor-t3e", "Cray T3E torus, microkernel nodes",
         profile(0.0001, 25.0, 1.0, 0.01, 1.05)},
    };
    return r;
}

netsim::FaultModel fault_by_name(const std::string& name, std::uint64_t seed) {
    netsim::FaultModel out;
    bool found = name.empty();
    if (!found) {
        for (const auto& p : fault_roster()) {
            if (p.name == name) {
                out = p.model;
                found = true;
                break;
            }
        }
    }
    if (!found) {
        std::string known;
        for (const auto& p : fault_roster()) known += " \"" + p.name + "\"";
        throw ParseError("unknown fault profile \"" + name + "\" (known:" + known + ")");
    }
    if (seed != 0) out.seed = seed;
    return out;
}

const std::vector<PlatformPreset>& advisor_platforms() {
    static const std::vector<PlatformPreset> p = {
        {"PC cluster, Fast Ethernet (Muses)", "Muses", "Muses, LAM", "commodity-eth", 2.5},
        {"PC cluster, Myrinet (RoadRunner)", "RoadRunner", "RoadRunner myr.", "myrinet", 4.5},
        {"IBM SP2 Silver", "SP2-Silver", "SP2-Silver internode", "vendor-sp2", 40.0},
        {"SGI Origin 2000 (NCSA)", "NCSA", "NCSA", "vendor-origin", 60.0},
        {"Cray T3E-900", "T3E", "T3E", "vendor-t3e", 80.0},
    };
    return p;
}

} // namespace lab
