#pragma once

#include <map>
#include <mutex>
#include <string>

#include "lab/scenario.hpp"
#include "perf/report.hpp"
#include "perf/stage_stats.hpp"
#include "simmpi/simmpi.hpp"

/// \file evaluator.hpp
/// Turns a ScenarioRequest into its canonical RunReport.
///
/// Two fidelities:
///   * "model"    — analytic: the machine roofline prices the solver's
///                  characteristic operation mix (the calibrated ~60 flops
///                  and ~48 bytes of latency-bound traffic per dof from the
///                  Table 1 runs), the network model prices the nonlinear
///                  step's transposes, and the named fault profile inflates
///                  them.  Microseconds per query; this is the generalised
///                  cluster_advisor math.
///   * "measured" — a real instrumented probe run of the serial or Fourier
///                  solver on this host (reduced mesh, same algorithm and
///                  comm pattern), re-priced onto the requested machine and
///                  network via lab/pricing.hpp.  Probe runs are memoised by
///                  (solver, backend, ranks, steps), so one run serves every
///                  platform query against it.
///
/// Every report the evaluator builds is a pure function of the request: the
/// global obs metrics snapshot is deliberately excluded (it accumulates
/// across requests and would break the store's byte-determinism), and host
/// times are masked by RunReport::to_canonical_json() as usual.
namespace lab {

class Evaluator {
public:
    /// Evaluates `req` and returns the schema-v2 report with the request
    /// echo attached and cache marked as a miss (the service flips the hit
    /// bit when serving from the store).  Throws lab::ParseError for
    /// requests naming unknown machines/networks/faults or combinations the
    /// evaluator cannot honour (e.g. measured fidelity with the ale solver).
    [[nodiscard]] perf::RunReport evaluate(const ScenarioRequest& req);

    /// Probe runs executed so far (distinct memo keys); model-fidelity
    /// queries never run one.
    [[nodiscard]] std::size_t probe_runs() const;

private:
    struct ProbeData {
        perf::StageBreakdown bd;     ///< steady-state steps only
        simmpi::CommLog log;         ///< cumulative comm events (fourier)
        double comm_groups = 1.0;    ///< nonlinear evaluations covered by log
        std::size_t field_bytes = 0;
        std::size_t solver_bytes = 0;
    };

    [[nodiscard]] perf::RunReport evaluate_model(const ScenarioRequest& req) const;
    [[nodiscard]] perf::RunReport evaluate_measured(const ScenarioRequest& req);

    /// Memoised probe run.  Probe execution is serialised: the solvers are
    /// internally parallel over parallel::pool() and share the congruent-
    /// element MatrixCache, so one at a time is both safe and fast.
    [[nodiscard]] const ProbeData& probe(const std::string& solver,
                                         const std::string& backend, int nprocs,
                                         int steady_steps);

    mutable std::mutex probe_mu_;
    std::map<std::string, ProbeData> probes_;
};

} // namespace lab
