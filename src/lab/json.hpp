#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

/// \file json.hpp
/// A minimal JSON value type and recursive-descent parser for the cluster
/// lab: ScenarioRequest::parse() reads client requests with it, and the
/// advisor/daemon clients use it to pull numbers back out of served
/// RunReports.  Parsing only — serialization stays with the dedicated
/// canonical writers (ScenarioRequest::canonical_json, RunReport::to_json)
/// so their byte layouts remain the single source of truth.
namespace lab {

/// Any malformed request or wire payload: syntax errors, wrong types,
/// unknown fields.  what() names the offending token/field.
class ParseError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

class Json;
using JsonObject = std::map<std::string, Json>;
using JsonArray = std::vector<Json>;

/// One parsed JSON value.  Numbers are doubles (the repo's reports and
/// requests never need 2^53-class integers); object keys are kept sorted by
/// std::map, which is exactly the canonical field order.
class Json {
public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Json() = default;
    static Json parse(const std::string& text); ///< throws ParseError

    [[nodiscard]] Kind kind() const noexcept { return kind_; }
    [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::Object; }
    [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::Array; }
    [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::String; }
    [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::Number; }
    [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::Bool; }

    /// Typed accessors; each throws ParseError when the kind disagrees.
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] double as_number() const;
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const JsonArray& as_array() const;
    [[nodiscard]] const JsonObject& as_object() const;

    /// Object member lookup; throws ParseError when absent or not an object.
    [[nodiscard]] const Json& at(const std::string& key) const;
    /// Object member lookup returning nullptr when absent.
    [[nodiscard]] const Json* find(const std::string& key) const;

private:
    friend class Parser;
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    // Indirection keeps Json regular (map values) without recursive layout.
    std::shared_ptr<JsonArray> arr_;
    std::shared_ptr<JsonObject> obj_;
};

} // namespace lab
