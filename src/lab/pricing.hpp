#pragma once

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "machine/accelerator_model.hpp"
#include "machine/machine_model.hpp"
#include "netsim/netmodel.hpp"
#include "perf/stage_stats.hpp"
#include "simmpi/simmpi.hpp"

/// \file pricing.hpp
/// Pricing of an instrumented solver run on the paper's machines.
/// (Formerly bench/app_model.hpp; now part of the lab library so the
/// scenario evaluator's "measured" fidelity and the table/figure benches
/// price probe runs through the same helpers.)
///
/// The solvers execute for real on this host and record, per stage, the
/// flops/bytes their kernels moved plus every communication event.  These
/// helpers map that operation stream onto a (machine, network) pair:
///   cpu  = predicted compute + comm * cpu_poll_fraction
///   wall = predicted compute + comm            (+ idle from imbalance)
/// reproducing the paper's CPU-vs-wall-clock methodology (§4.2).
namespace app_model {

/// A machine/interconnect pairing used in the application tables.
struct Platform {
    std::string label;          ///< row/column label, as in the paper's tables
    std::string machine;        ///< machine::by_name key
    std::string network;        ///< netsim::by_name key ("" = serial)
};

/// Stage shapes for the spectral/hp solvers: stages 1-4 and 6 are
/// quadrature-space vector algebra over the whole field; stages 5 and 7
/// stream the banded factors (direct path) or elemental matrices (PCG path).
[[nodiscard]] inline std::array<perf::StageShape, perf::kNumStages + 1> solver_shapes(
    std::size_t field_bytes, std::size_t solver_bytes) {
    std::array<perf::StageShape, perf::kNumStages + 1> shapes;
    for (std::size_t s = 1; s <= perf::kNumStages; ++s) {
        shapes[s].working_set_bytes = field_bytes;
        shapes[s].compute_efficiency = 0.45;
    }
    shapes[5].working_set_bytes = solver_bytes;
    shapes[7].working_set_bytes = solver_bytes;
    shapes[5].compute_efficiency = 0.6; // dgemv-like back-substitution
    shapes[7].compute_efficiency = 0.6;
    shapes[5].latency_bound = true;     // dependent loads along the band
    shapes[7].latency_bound = true;
    return shapes;
}

/// Per-stage predicted seconds for one platform (computation only).
[[nodiscard]] inline std::array<double, perf::kNumStages + 1> compute_stage_seconds(
    const perf::StageBreakdown& bd, const machine::MachineModel& m,
    const std::array<perf::StageShape, perf::kNumStages + 1>& shapes) {
    std::array<double, perf::kNumStages + 1> out{};
    for (std::size_t s = 1; s <= perf::kNumStages; ++s)
        out[s] = bd.predict_stage_seconds(m, s, shapes[s]);
    return out;
}

/// Per-stage communication seconds priced from a rank's comm log.
[[nodiscard]] inline std::array<double, perf::kNumStages + 1> comm_stage_seconds(
    const simmpi::CommLog& log, const netsim::NetworkModel& net, int nprocs) {
    std::array<double, perf::kNumStages + 1> out{};
    for (std::size_t s = 1; s <= perf::kNumStages; ++s)
        out[s] = simmpi::price_stage(log, static_cast<int>(s), net, nprocs);
    // Events outside an explicit stage (setup, diagnostics) are ignored: the
    // paper times the steady time-stepping loop.
    return out;
}

/// Per-stage communication splits (blocking vs overlapped events).
[[nodiscard]] inline std::array<simmpi::SplitSeconds, perf::kNumStages + 1> comm_stage_splits(
    const simmpi::CommLog& log, const netsim::NetworkModel& net, int nprocs) {
    std::array<simmpi::SplitSeconds, perf::kNumStages + 1> out{};
    for (std::size_t s = 1; s <= perf::kNumStages; ++s)
        out[s] = simmpi::price_stage_split(log, static_cast<int>(s), net, nprocs);
    return out;
}

/// Fraction of the overlapped-comm price the probe run actually hid behind
/// computation: hidden seconds from the rank's overlap log over the price of
/// the same events on the probe network, clamped to [0, 1].  This ratio is a
/// property of the *schedule* (how much compute sat between post and wait),
/// so it transfers to the target networks.
[[nodiscard]] inline double overlap_efficiency(double hidden_seconds,
                                               double overlapped_price_probe) {
    if (overlapped_price_probe <= 0.0) return 0.0;
    return std::clamp(hidden_seconds / overlapped_price_probe, 0.0, 1.0);
}

/// Wall seconds a target network recovers from the overlapped events: the
/// hidden fraction of their price, scaled by the CPU-free share of comm time
/// — a polling stack (cpu_poll_fraction = 1) burns the CPU during transfers
/// and cannot overlap, kernel-offloaded stacks recover (1 - poll) of it.
[[nodiscard]] inline double recovered_seconds(double rho, double overlapped_price,
                                              double cpu_poll_fraction) {
    return rho * overlapped_price * (1.0 - cpu_poll_fraction);
}

/// GPU-era projection of one rank's instrumented step onto an accelerator
/// (machine/accelerator_model.hpp).  Three numbers per device, all seconds
/// per time step:
///   device   — every stage priced on the device roofline, fields in HBM
///   resident — device + two host<->device field crossings per step (the
///              IO/boundary slice a resident port still ships)
///   staged   — device + two crossings per *stage* (the naive per-kernel
///              offload; the host link becomes 1999's Fast Ethernet)
struct AccelProjection {
    double device = 0.0;
    double resident = 0.0;
    double staged = 0.0;
};

[[nodiscard]] inline AccelProjection project_accelerated(
    const perf::StageBreakdown& bd, const machine::AcceleratorModel& acc,
    const std::array<perf::StageShape, perf::kNumStages + 1>& shapes,
    std::size_t field_bytes) {
    const auto comp = compute_stage_seconds(bd, acc.device, shapes);
    AccelProjection t;
    for (std::size_t s = 1; s <= perf::kNumStages; ++s) t.device += comp[s];
    const double steps = bd.steps > 0 ? static_cast<double>(bd.steps) : 1.0;
    t.device /= steps;
    const double xfer = acc.transfer_seconds(field_bytes);
    t.resident = t.device + 2.0 * xfer;
    t.staged = t.device + 2.0 * static_cast<double>(perf::kNumStages) * xfer;
    return t;
}

struct CpuWall {
    double cpu = 0.0;
    double wall = 0.0;
};

/// Totals for one platform; `steps` normalises to per-time-step numbers.
[[nodiscard]] inline CpuWall price_run(
    const perf::StageBreakdown& bd, const simmpi::CommLog& log, const Platform& plat,
    int nprocs, const std::array<perf::StageShape, perf::kNumStages + 1>& shapes) {
    const auto& m = machine::by_name(plat.machine);
    const auto comp = compute_stage_seconds(bd, m, shapes);
    CpuWall t;
    double comm = 0.0, poll = 1.0;
    if (!plat.network.empty()) {
        const auto& net = netsim::by_name(plat.network);
        poll = net.cpu_poll_fraction;
        const auto cs = comm_stage_seconds(log, net, nprocs);
        for (std::size_t s = 1; s <= perf::kNumStages; ++s) comm += cs[s];
    }
    for (std::size_t s = 1; s <= perf::kNumStages; ++s) t.cpu += comp[s];
    t.wall = t.cpu + comm;
    t.cpu += comm * poll;
    const double steps = bd.steps > 0 ? static_cast<double>(bd.steps) : 1.0;
    t.cpu /= steps;
    t.wall /= steps;
    return t;
}

} // namespace app_model

namespace lab {
/// The lab-native spelling; `app_model` remains for the existing benches.
namespace pricing = ::app_model;
} // namespace lab
