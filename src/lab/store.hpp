#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

/// \file store.hpp
/// The persistent RunReport store: store_key -> canonical RunReport bytes.
///
/// Layout is one file per entry, `<dir>/<key>.json`, where `key` is the
/// request's 16-hex-digit fingerprint.  Because every value is the
/// byte-deterministic canonical report for its request, the store's on-disk
/// contents are a pure function of the set of requests answered — two
/// daemons fed the same mix produce directories that `diff -r` clean, which
/// CI exploits as a determinism gate.  Writes go through a tmp file +
/// rename so a crashed daemon never leaves a torn entry.
namespace lab {

class RunReportStore {
public:
    /// `dir` = "" keeps the store memory-only (tests, one-shot clients);
    /// otherwise the directory is created on first put().
    explicit RunReportStore(std::string dir = "");

    /// The stored canonical bytes for `key`, or nullopt.  Disk entries are
    /// pulled into the in-memory map on first access.
    [[nodiscard]] std::optional<std::string> get(const std::string& key);

    /// Inserts `canonical_bytes` under `key` (atomic tmp+rename on disk).
    /// Re-putting an existing key is a no-op: first write wins, which keeps
    /// concurrent singleflight losers from rewriting identical bytes.
    void put(const std::string& key, const std::string& canonical_bytes);

    [[nodiscard]] bool contains(const std::string& key);

    /// Keys currently known (memory + disk), sorted.
    [[nodiscard]] std::vector<std::string> keys() const;

    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

private:
    [[nodiscard]] std::string path_for(const std::string& key) const;
    [[nodiscard]] std::optional<std::string> read_disk(const std::string& key) const;

    std::string dir_;
    mutable std::mutex mu_;
    std::map<std::string, std::string> mem_;
};

} // namespace lab
